package loki_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"loki"
)

// TestHardwareSingleClassParity pins the hardware-class refactor to the
// homogeneous serving path: declaring the pre-refactor fleet explicitly —
// one class named "default" holding all servers at speed 1.0 and zero cost —
// must reproduce the implicit default bit for bit, whole Report (series
// included) compared by DeepEqual and the rendered report compared by bytes.
// Together with TestSinglePipelineParityWithSeedBehavior (which pins the
// default path to the pre-refactor golden numbers) this bounds the refactor:
// single default class ≡ pre-hardware-class system.
func TestHardwareSingleClassParity(t *testing.T) {
	cases := []struct {
		name    string
		pipe    *loki.Pipeline
		tr      *loki.Trace
		servers int
		opts    []loki.Option
	}{
		// The roomy solve limit keeps every MILP in its deterministic
		// regime on loaded machines (never binding on idle ones), so the
		// two Serve runs below cannot drift apart via wall-clock-truncated
		// incumbents.
		{
			name: "traffic-azure", pipe: loki.TrafficAnalysisPipeline(),
			tr: loki.AzureTrace(1, 24, 5, 450), servers: 20,
			opts: []loki.Option{loki.WithSeed(3), loki.WithSolveTimeLimit(10 * time.Second)},
		},
		{
			name: "chain-ramp-pertask", pipe: loki.TrafficChainPipeline(),
			tr: loki.RampTrace(100, 900, 16, 5), servers: 10,
			opts: []loki.Option{loki.WithSeed(7), loki.WithPolicy(loki.PerTaskPolicy),
				loki.WithSolveTimeLimit(10 * time.Second)},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			implicit, err := loki.Serve(c.pipe, c.tr,
				append([]loki.Option{loki.WithServers(c.servers)}, c.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			explicit, err := loki.Serve(c.pipe, c.tr,
				append([]loki.Option{loki.WithHardware(
					loki.HardwareClass{Name: "default", Count: c.servers, Speed: 1.0},
				)}, c.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(implicit, explicit) {
				t.Errorf("explicit default class diverged from the implicit homogeneous pool\nimplicit: %+v\nexplicit: %+v", implicit, explicit)
			}
			if implicit.String() != explicit.String() {
				t.Errorf("rendered reports differ:\n%s\n%s", implicit, explicit)
			}
			if strings.Contains(explicit.String(), "cost=") {
				t.Errorf("zero-cost fleet leaked cost columns into the report: %s", explicit)
			}
		})
	}
}

// A heterogeneous priced fleet flows through the whole public surface: the
// plan spreads over classes and names them, snapshots break occupancy down
// per class, and the report carries cost accounting.
func TestHardwareHeterogeneousSurface(t *testing.T) {
	sys, err := loki.New(loki.TrafficAnalysisPipeline(),
		loki.WithSeed(5),
		loki.WithHardware(
			loki.HardwareClass{Name: "fast", Count: 6, Speed: 2.0, CostPerHour: 3.0},
			loki.HardwareClass{Name: "slow", Count: 12, Speed: 1.0, CostPerHour: 1.0},
		))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Feed(loki.AzureTrace(1, 12, 5, 500)); err != nil {
		t.Fatal(err)
	}
	snap := sys.Snapshot()
	if err := sys.Stop(); err != nil {
		t.Fatal(err)
	}
	plan := sys.Plan()
	if plan == nil {
		t.Fatal("no standing plan")
	}
	if len(plan.ServersByClass) != 2 {
		t.Fatalf("plan.ServersByClass = %v, want a 2-class vector", plan.ServersByClass)
	}
	usage := plan.ClassUsage()
	if usage["fast"]+usage["slow"] != plan.ServersUsed {
		t.Fatalf("class usage %v does not add up to %d servers", usage, plan.ServersUsed)
	}
	if plan.CostPerHour <= 0 {
		t.Fatalf("priced fleet plan has no cost rate: %+v", plan)
	}
	if len(snap.ActiveServersByClass) != 2 || len(snap.GrantedServersByClass) != 2 {
		t.Fatalf("snapshot missing per-class occupancy: %+v", snap)
	}
	rep := sys.Report()
	if rep.ServerCostHours <= 0 || rep.CostPerQuery <= 0 {
		t.Fatalf("priced fleet report has no cost accounting: %+v", rep)
	}
	if len(rep.MeanServersByClass) != 2 {
		t.Fatalf("report missing per-class servers: %+v", rep.MeanServersByClass)
	}
	if !strings.Contains(rep.String(), "cost=$") {
		t.Fatalf("priced report does not render cost: %s", rep)
	}
	// Every worker spec must carry a class the engines can place.
	for _, spec := range sys.Routes().Specs {
		if spec.ClassName != "fast" && spec.ClassName != "slow" {
			t.Fatalf("spec with unknown class: %+v", spec)
		}
	}
}

// WithHardware validation surfaces at construction.
func TestHardwareValidation(t *testing.T) {
	bad := [][]loki.HardwareClass{
		{{Name: "", Count: 4, Speed: 1}},
		{{Name: "a", Count: 0, Speed: 1}},
		{{Name: "a", Count: 4, Speed: 0}},
		{{Name: "a", Count: 4, Speed: 1, CostPerHour: -1}},
		{{Name: "a", Count: 4, Speed: 1}, {Name: "a", Count: 2, Speed: 2}},
	}
	for i, classes := range bad {
		if _, err := loki.New(loki.TrafficChainPipeline(), loki.WithHardware(classes...)); err == nil {
			t.Errorf("case %d: invalid fleet %+v accepted", i, classes)
		}
	}
}

// ParseHardware round-trips the CLI fleet syntax.
func TestParseHardware(t *testing.T) {
	classes, err := loki.ParseHardware("a100:4@2.0@3.5, v100:8@1.0, cpu:16@0.25@0.2")
	if err != nil {
		t.Fatal(err)
	}
	want := []loki.HardwareClass{
		{Name: "a100", Count: 4, Speed: 2.0, CostPerHour: 3.5},
		{Name: "v100", Count: 8, Speed: 1.0},
		{Name: "cpu", Count: 16, Speed: 0.25, CostPerHour: 0.2},
	}
	if !reflect.DeepEqual(classes, want) {
		t.Fatalf("ParseHardware = %+v, want %+v", classes, want)
	}
	if classes, err := loki.ParseHardware(""); err != nil || classes != nil {
		t.Fatalf("empty spec: got %v, %v", classes, err)
	}
	for _, bad := range []string{"a100", "a100:x@1", "a100:4", "a100:4@", "a100:4@1@x", "a100:0@1"} {
		if _, err := loki.ParseHardware(bad); err == nil {
			t.Errorf("bad spec %q accepted", bad)
		}
	}
}
