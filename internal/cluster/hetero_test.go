package cluster

import (
	"testing"

	"loki/internal/core"
	"loki/internal/metrics"
	"loki/internal/pipeline"
	"loki/internal/policy"
	"loki/internal/profiles"
	"loki/internal/sim"
)

// heteroRig builds a two-class cluster (2 fast@2.0 + 4 slow@1.0) over the
// deterministic test graph.
func heteroRig(t *testing.T) *rig {
	t.Helper()
	g := testGraph()
	classes := []profiles.Class{
		{Name: "fast", Count: 2, Speed: 2.0, CostPerHour: 2.0},
		{Name: "slow", Count: 4, Speed: 1.0, CostPerHour: 0.5},
	}
	prof := (&profiles.Profiler{}).ProfileGraphClasses(g, profiles.Batches, classes)
	meta := core.NewMetadataStoreHetero(g, classes, prof, 0.250, profiles.Batches)
	eng := &sim.Engine{}
	col := metrics.NewCollector(10, 6)
	col.SetClasses([]string{"fast", "slow"}, []float64{2.0, 0.5})
	cl, err := New(eng, meta, policy.Opportunistic{}, col, Options{
		Classes: classes, SLOSec: 0.250, NetLatencySec: 0.001, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{eng: eng, meta: meta, cl: cl, col: col}
}

// heteroPlan deploys nFast replicas of task 0 on the fast class and nSlow of
// task 1 on the slow class, at batch 4.
func heteroPlan(nFast, nSlow int) *core.Plan {
	g := testGraph()
	mk := func(task pipeline.TaskID, class int, name string, speed float64, n int) core.Assignment {
		v := g.Tasks[task].Variants[0]
		lat := v.Latency(4) / speed
		return core.Assignment{
			Task: task, Variant: 0, MaxBatch: 4, Replicas: n,
			Class: class, ClassName: name,
			QPS: 4 / lat, LatencySec: lat, Accuracy: v.Accuracy, BudgetSec: 2 * lat,
		}
	}
	p := &core.Plan{Mode: core.HardwareScaling, ServedFraction: 1}
	p.Assignments = []core.Assignment{
		mk(0, 0, "fast", 2.0, nFast),
		mk(1, 1, "slow", 1.0, nSlow),
	}
	p.ServersUsed = nFast + nSlow
	p.ServersByClass = []int{nFast, nSlow}
	return p
}

// Specs land only on workers of their own class, and per-class occupancy
// reports them.
func TestHeteroPlacementRespectsClasses(t *testing.T) {
	r := heteroRig(t)
	r.apply(heteroPlan(2, 3), 100)
	by := r.cl.ActiveByClass()
	if by[0] != 2 || by[1] != 3 {
		t.Fatalf("ActiveByClass = %v, want [2 3]", by)
	}
	if got := r.cl.ActiveServers(); got != 5 {
		t.Fatalf("ActiveServers = %d, want 5", got)
	}
}

// A class-full plan never spills onto the other class: asking for more fast
// replicas than the fast class holds leaves the overflow unhosted rather
// than placing it on slow hardware it was not profiled for.
func TestHeteroNoCrossClassSpill(t *testing.T) {
	r := heteroRig(t)
	r.apply(heteroPlan(3, 2), 100) // fast class holds only 2
	by := r.cl.ActiveByClass()
	if by[0] != 2 {
		t.Fatalf("fast class hosts %d workers, capacity 2", by[0])
	}
	if by[1] != 2 {
		t.Fatalf("slow-class overflow: ActiveByClass = %v", by)
	}
}

// Reconfigurations swap models within a class: re-applying an identical
// hetero plan keeps every worker, and moving a task between classes reloads
// models instead of silently relabeling foreign workers.
func TestHeteroSwapStaysWithinClass(t *testing.T) {
	r := heteroRig(t)
	r.cl.Opts.SwapLatencySec = 1.0
	r.apply(heteroPlan(2, 3), 100)
	swaps := r.cl.TotalSwaps
	r.apply(heteroPlan(2, 3), 100)
	if r.cl.TotalSwaps != swaps {
		t.Fatalf("identical hetero plan triggered %d swaps", r.cl.TotalSwaps-swaps)
	}

	// Move task 0 from the fast class to the slow class (and task 1 onto
	// fast): every replica changes class, so every replica must reload.
	g := testGraph()
	flip := &core.Plan{Mode: core.HardwareScaling, ServedFraction: 1, ServersByClass: []int{2, 2}}
	v0, v1 := g.Tasks[0].Variants[0], g.Tasks[1].Variants[0]
	flip.Assignments = []core.Assignment{
		{Task: 0, Variant: 0, MaxBatch: 4, Replicas: 2, Class: 1, ClassName: "slow",
			QPS: 4 / v0.Latency(4), LatencySec: v0.Latency(4), Accuracy: v0.Accuracy, BudgetSec: 2 * v0.Latency(4)},
		{Task: 1, Variant: 0, MaxBatch: 4, Replicas: 2, Class: 0, ClassName: "fast",
			QPS: 4 / (v1.Latency(4) / 2), LatencySec: v1.Latency(4) / 2, Accuracy: v1.Accuracy, BudgetSec: v1.Latency(4)},
	}
	flip.ServersUsed = 4
	r.apply(flip, 100)
	if got := r.cl.TotalSwaps - swaps; got != 4 {
		t.Fatalf("cross-class move swapped %d workers, want 4", got)
	}
	by := r.cl.ActiveByClass()
	if by[0] != 2 || by[1] != 2 {
		t.Fatalf("ActiveByClass after flip = %v, want [2 2]", by)
	}
}

// Fast-class workers execute batches at their class speed: with both classes
// hosting the same variant, a run on the fast class completes roughly twice
// the work per unit time.
func TestHeteroExecutionSpeedScalesPerClass(t *testing.T) {
	g := testGraph()
	onClass := func(class int, name string, speed float64) int64 {
		classes := []profiles.Class{
			{Name: "fast", Count: 2, Speed: 2.0},
			{Name: "slow", Count: 2, Speed: 1.0},
		}
		prof := (&profiles.Profiler{}).ProfileGraphClasses(g, profiles.Batches, classes)
		meta := core.NewMetadataStoreHetero(g, classes, prof, 0.250, profiles.Batches)
		eng := &sim.Engine{}
		cl, err := New(eng, meta, policy.NoDrop{}, nil, Options{
			Classes: classes, SLOSec: 0.250, NetLatencySec: 0.0001, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		v0 := g.Tasks[0].Variants[0]
		lat := v0.Latency(4) / speed
		plan := &core.Plan{Mode: core.HardwareScaling, ServedFraction: 1, ServersUsed: 2}
		plan.Assignments = []core.Assignment{
			{Task: 0, Variant: 0, MaxBatch: 4, Replicas: 1, Class: class, ClassName: name,
				QPS: 4 / lat, LatencySec: lat, Accuracy: 1, BudgetSec: 2 * lat},
			{Task: 1, Variant: 0, MaxBatch: 4, Replicas: 1, Class: class, ClassName: name,
				QPS: 4 / lat, LatencySec: lat, Accuracy: 0.9, BudgetSec: 2 * lat},
		}
		specs := core.ExpandPlan(plan)
		routes := core.MostAccurateFirst(g, specs, 1e9, meta.MultFactor)
		cl.ApplyPlan(plan, routes)
		// Saturate: inject far more than capacity, run 10 simulated seconds.
		for i := 0; i < 4000; i++ {
			at := float64(i) * 0.0025
			cl.Eng.At(at, cl.InjectRequest)
		}
		eng.Run(10)
		return cl.TotalCompleted
	}
	slow := onClass(1, "slow", 1.0)
	fast := onClass(0, "fast", 2.0)
	if fast < slow*3/2 {
		t.Fatalf("fast class completed %d vs slow %d; expected ≈2× speedup", fast, slow)
	}
}

// The load balancer weights routes by class-specific service rate: with one
// fast and one slow replica of the same variant, the fast worker receives
// the larger routing share.
func TestHeteroRoutingWeightsByClassRate(t *testing.T) {
	g := testGraph()
	v0 := g.Tasks[0].Variants[0]
	fastLat, slowLat := v0.Latency(4)/2, v0.Latency(4)
	specs := []core.WorkerSpec{
		{ID: 0, Task: 0, Variant: 0, MaxBatch: 4, Class: 0, ClassName: "fast",
			QPS: 4 / fastLat, LatencySec: fastLat, Accuracy: 1, BudgetSec: 2 * fastLat},
		{ID: 1, Task: 0, Variant: 0, MaxBatch: 4, Class: 1, ClassName: "slow",
			QPS: 4 / slowLat, LatencySec: slowLat, Accuracy: 1, BudgetSec: 2 * slowLat},
		{ID: 2, Task: 1, Variant: 0, MaxBatch: 4, Class: 1, ClassName: "slow",
			QPS: 4 / slowLat, LatencySec: slowLat, Accuracy: 0.9, BudgetSec: 2 * slowLat},
	}
	prof := (&profiles.Profiler{}).ProfileGraph(g, profiles.Batches)
	meta := core.NewMetadataStore(g, prof, 0.250, profiles.Batches)
	demand := 4/fastLat + 4/slowLat // saturate both task-0 workers
	routes := core.MostAccurateFirst(g, specs, demand, meta.MultFactor)
	var probFast, probSlow float64
	for _, e := range routes.Frontend {
		switch e.Worker {
		case 0:
			probFast = e.Prob
		case 1:
			probSlow = e.Prob
		}
	}
	if probFast <= probSlow {
		t.Fatalf("fast worker got %.3f of the demand vs slow %.3f; want rate-weighted routing", probFast, probSlow)
	}
	if probFast < 0.6 || probFast > 0.7 {
		t.Fatalf("fast share %.3f, want ≈2/3 (its share of the aggregate service rate)", probFast)
	}
}
