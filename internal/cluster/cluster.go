// Package cluster is the discrete-event serving substrate: a fixed-size
// cluster of batching workers executing inference pipelines under a
// homogeneous network delay. It reproduces the mechanisms of the paper's
// testbed and of the simulator its evaluation runs on (§6.1): per-worker
// FIFO queues, work-conserving batch formation up to the plan's max batch
// size, batch-size-dependent execution latency, stochastic intermediate
// query fan-out (the multiplicative factors of §4.2), worker heartbeats
// reporting observed factors, model-swap pauses on reconfiguration, and the
// early-dropping policies of §5.2 at every task boundary.
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"loki/internal/core"
	"loki/internal/metrics"
	"loki/internal/pipeline"
	"loki/internal/policy"
	"loki/internal/profiles"
	"loki/internal/sim"
	"loki/internal/telemetry"
)

// Options configures the simulated cluster.
type Options struct {
	// Servers is the number of physical workers. With Classes set it must
	// equal (or be left zero to inherit) the classes' total count.
	Servers int
	// Classes partitions the workers into hardware classes: the first
	// Classes[0].Count physical workers belong to class 0, the next to
	// class 1, and so on. Each worker executes at its class's Speed and a
	// plan's specs are placed only on workers of their own class (model
	// swaps never cross classes). Nil means one "default" class holding
	// every server at speed 1.0 — the pre-class behavior, bit for bit.
	Classes []profiles.Class
	// SLOSec is the end-to-end latency SLO attached to every request.
	SLOSec float64
	// NetLatencySec is the homogeneous one-hop communication latency.
	NetLatencySec float64
	// Seed drives all stochastic choices (routing, fan-out, jitter).
	Seed int64
	// SwapLatencySec stalls a worker that changes model variant (model
	// load time). Zero disables swap modeling.
	SwapLatencySec float64
	// ExecJitter adds ±relative noise to every batch execution, modeling
	// the real-hardware variance the paper cites when validating its
	// simulator. Zero means deterministic execution.
	ExecJitter float64
	// QueueFactor caps each worker's queue at QueueFactor × QPS × SLO
	// requests (≥ 2×MaxBatch); beyond that a request is hopeless and is
	// dropped at enqueue. Zero means 2.0.
	QueueFactor float64
	// Telemetry, when non-nil, receives per-worker enqueue/batch/swap/fault
	// events; it updates on the simulator's single event goroutine so the
	// seeded run is untouched. Nil disables collection.
	Telemetry *telemetry.Collector
	// Tracer, when non-nil, samples root requests into span trees using its
	// own RNG (never this cluster's seeded stream). Nil disables tracing.
	Tracer *telemetry.Tracer
}

// Cluster is the simulated worker pool. Drive it by scheduling
// InjectRequest calls on its engine and applying plans from a controller.
type Cluster struct {
	Eng     *sim.Engine
	Meta    *core.MetadataStore
	Opts    Options
	Policy  policy.Policy
	Metrics *metrics.Collector

	g       *pipeline.Graph
	rng     *rand.Rand
	workers []*worker
	logical map[core.WorkerID]*worker
	routes  *core.Routes
	plan    *core.Plan

	backupLeft map[core.WorkerID]float64
	minTail    []float64 // per task: fastest possible time to finish its subtree

	arrivals     int   // since the last FlushDemand
	taskArrivals []int // per-task enqueues since the last FlushTaskArrivals
	nextRootID   int64
	inflight     int

	// Totals for invariant checks and reporting.
	TotalInjected  int64
	TotalCompleted int64
	TotalDropped   int64
	TotalRerouted  int64
	TotalSwaps     int64

	// Drop-cause breakdown (per subrequest, not per root).
	DropsQueueFull int64
	DropsNoRoute   int64
	DropsPolicy    int64
	DropsStale     int64
	DropsFault     int64
}

type worker struct {
	phys      int
	class     int              // hardware class index (fixed for the worker's lifetime)
	speed     float64          // current execution speed (baseSpeed × straggler factor)
	baseSpeed float64          // the class's nominal execution speed
	spec      *core.WorkerSpec // nil when idle (server shut down)
	queue     []*subrequest
	busy      bool
	swapUntil float64
	qcap      int

	// Fault state: a down worker is invisible to plan claiming and active
	// counts; gen increments on every crash so a stale completion closure
	// can tell its batch died with the old incarnation.
	down bool
	gen  int

	// Heartbeat accumulators: inputs executed and outputs emitted.
	hbIn, hbOut int
}

type rootRequest struct {
	id          int64
	arrived     float64
	deadline    float64
	outstanding int
	dropped     bool
	accSum      float64
	accN        int
	tr          *telemetry.ReqTrace // nil unless sampled
}

type subrequest struct {
	root     *rootRequest
	task     pipeline.TaskID
	acc      float64 // product of variant accuracies before this task
	enqueued float64
}

// New creates a cluster on the given engine.
func New(eng *sim.Engine, meta *core.MetadataStore, pol policy.Policy, col *metrics.Collector, opts Options) (*Cluster, error) {
	if opts.Classes == nil {
		opts.Classes = profiles.DefaultClasses(opts.Servers)
	}
	if total := profiles.TotalCount(opts.Classes); opts.Servers == 0 {
		opts.Servers = total
	} else if opts.Servers != total {
		return nil, fmt.Errorf("cluster: Servers (%d) disagrees with the hardware classes' total count (%d)", opts.Servers, total)
	}
	if opts.Servers <= 0 {
		return nil, fmt.Errorf("cluster: need a positive server count")
	}
	if opts.QueueFactor == 0 {
		opts.QueueFactor = 2.0
	}
	c := &Cluster{
		Eng:        eng,
		Meta:       meta,
		Opts:       opts,
		Policy:     pol,
		Metrics:    col,
		g:          meta.Graph(),
		rng:        rand.New(rand.NewSource(opts.Seed)),
		logical:    map[core.WorkerID]*worker{},
		backupLeft: map[core.WorkerID]float64{},
	}
	// Physical workers are laid out class by class: the first
	// Classes[0].Count servers belong to class 0, and so on.
	for cl, class := range opts.Classes {
		speed := class.Speed
		if speed == 0 {
			speed = 1.0
		}
		for i := 0; i < class.Count; i++ {
			c.workers = append(c.workers, &worker{phys: len(c.workers), class: cl, speed: speed, baseSpeed: speed})
		}
	}
	c.taskArrivals = make([]int, len(c.g.Tasks))

	// minTail[t]: network hop + fastest execution of t (over every hardware
	// class) + deepest child tail — the optimistic remaining latency the
	// Opportunistic policy compares against the deadline.
	classProf := meta.ClassProfiles()
	c.minTail = make([]float64, len(c.g.Tasks))
	var tail func(t pipeline.TaskID) float64
	tail = func(t pipeline.TaskID) float64 {
		minExec := math.Inf(1)
		for _, prof := range classProf {
			for k := range prof[t] {
				for _, l := range prof[t][k].LatencySec {
					if l < minExec {
						minExec = l
					}
				}
			}
		}
		worstChild := 0.0
		for _, ch := range c.g.Tasks[t].Children {
			if v := tail(ch.Task); v > worstChild {
				worstChild = v
			}
		}
		c.minTail[t] = opts.NetLatencySec + minExec + worstChild
		return c.minTail[t]
	}
	tail(0)
	return c, nil
}

// ActiveServers returns the number of workers currently hosting a model.
func (c *Cluster) ActiveServers() int {
	n := 0
	for _, w := range c.workers {
		if w.spec != nil {
			n++
		}
	}
	return n
}

// ActiveByClass returns the number of workers currently hosting a model in
// each hardware class, in class order.
func (c *Cluster) ActiveByClass() []int {
	out := make([]int, len(c.Opts.Classes))
	for _, w := range c.workers {
		if w.spec != nil {
			out[w.class]++
		}
	}
	return out
}

// Inflight returns the number of root requests still in the system.
func (c *Cluster) Inflight() int { return c.inflight }

// Totals returns the cumulative request counters in one shot (the
// engine-facing accessor behind engine.Stats).
func (c *Cluster) Totals() (injected, completed, dropped, rerouted, swaps int64) {
	return c.TotalInjected, c.TotalCompleted, c.TotalDropped, c.TotalRerouted, c.TotalSwaps
}

// FlushDemand returns the arrivals since the previous call (the Frontend's
// per-interval demand report to the Controller).
func (c *Cluster) FlushDemand() int {
	n := c.arrivals
	c.arrivals = 0
	return n
}

// FlushTaskArrivals returns per-task enqueue counts since the previous call.
// The Proteus-like baseline scales each task against this per-task history.
func (c *Cluster) FlushTaskArrivals() []int {
	out := append([]int(nil), c.taskArrivals...)
	for i := range c.taskArrivals {
		c.taskArrivals[i] = 0
	}
	return out
}

// ApplyPlan reconfigures the cluster to a new plan and routing tables (the
// Resource Manager adjusting worker↔variant assignments, §3). Workers that
// keep their exact configuration are untouched; workers that change variant
// or batch size stall for SwapLatencySec; workers whose task changes also
// forfeit their queued requests.
func (c *Cluster) ApplyPlan(plan *core.Plan, routes *core.Routes) {
	now := c.Eng.Now()
	c.plan = plan
	c.routes = routes

	key := func(s *core.WorkerSpec) string {
		return fmt.Sprintf("%d/%d/%d/%d", s.Task, s.Variant, s.MaxBatch, s.Class)
	}
	// Claim physical workers whose current config matches a spec, so
	// unchanged replicas keep serving through the reconfiguration. A spec
	// only ever lands on a worker of its own hardware class — swaps happen
	// within a class, never across.
	claimed := make([]bool, len(c.workers))
	assign := make([]*core.WorkerSpec, len(c.workers))
	var unmatched []*core.WorkerSpec
	for i := range routes.Specs {
		s := &routes.Specs[i]
		found := false
		for wi, w := range c.workers {
			if !claimed[wi] && !w.down && w.spec != nil && key(w.spec) == key(s) {
				claimed[wi] = true
				assign[wi] = s
				found = true
				break
			}
		}
		if !found {
			unmatched = append(unmatched, s)
		}
	}
	for _, s := range unmatched {
		for wi, w := range c.workers {
			if !claimed[wi] && !w.down && w.class == s.Class {
				claimed[wi] = true
				assign[wi] = s
				break
			}
		}
	}

	c.logical = make(map[core.WorkerID]*worker, len(routes.Specs))
	for wi, w := range c.workers {
		ns := assign[wi]
		if ns != nil {
			c.logical[ns.ID] = w
		}
		switch {
		case ns == nil && w.spec == nil:
			// stays idle
		case ns == nil:
			// Server shut down (hardware scaling): queued requests at a
			// vanishing worker are lost.
			c.dropQueue(w)
			w.spec = nil
		case w.spec == nil || key(w.spec) != key(ns):
			// New model (or batch limit) must be loaded.
			if w.spec != nil && w.spec.Task != ns.Task {
				c.dropQueue(w)
			}
			w.spec = ns
			if c.Opts.SwapLatencySec > 0 {
				w.swapUntil = now + c.Opts.SwapLatencySec
				c.TotalSwaps++
				c.Opts.Telemetry.Swap(now, w.phys)
				wq := w
				c.Eng.At(w.swapUntil, func() { c.tryStart(wq) })
			}
			c.tryStart(w)
		default:
			w.spec = ns // same config, possibly new ID
			c.tryStart(w)
		}
		if w.spec != nil {
			w.qcap = c.queueCap(w.spec)
		}
		c.Opts.Telemetry.SetAssigned(now, w.phys, c.assignedName(w.spec))
	}

	// Refresh rerouting capacity from the new backup tables.
	c.backupLeft = map[core.WorkerID]float64{}
	for _, entries := range routes.Backup {
		for _, e := range entries {
			c.backupLeft[e.Worker] = e.Leftover
		}
	}
}

func (c *Cluster) queueCap(s *core.WorkerSpec) int {
	byRate := int(math.Ceil(c.Opts.QueueFactor * s.QPS * c.Opts.SLOSec))
	if m := 2 * s.MaxBatch; byRate < m {
		byRate = m
	}
	return byRate
}

func (c *Cluster) dropQueue(w *worker) {
	for _, sub := range w.queue {
		c.abandon(sub)
	}
	w.queue = nil
	c.Opts.Telemetry.QueueCleared(c.Eng.Now(), w.phys)
}

// assignedName renders a spec as "task/variant" for the telemetry row, or ""
// for an idle worker.
func (c *Cluster) assignedName(s *core.WorkerSpec) string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("%s/%d", c.g.Tasks[s.Task].Name, s.Variant)
}

// SetWorkerDown crashes physical worker phys: queued requests are lost, the
// in-flight batch (if any) is discarded when its completion timer fires, the
// worker leaves the logical route table, and it stops counting toward class
// capacity until SetWorkerUp. Idempotent.
func (c *Cluster) SetWorkerDown(phys int) {
	w := c.workers[phys]
	if w.down {
		return
	}
	w.down = true
	w.gen++ // in-flight batch, if any, dies with the old incarnation
	if w.spec != nil {
		if c.logical[w.spec.ID] == w {
			delete(c.logical, w.spec.ID)
		}
		w.spec = nil
	}
	w.busy = false
	w.swapUntil = 0
	c.DropsFault += int64(len(w.queue))
	c.dropQueue(w)
	c.Opts.Telemetry.SetDown(c.Eng.Now(), phys, true)
}

// SetWorkerUp brings a crashed worker back as an idle server; the next
// ApplyPlan may claim it again. Idempotent.
func (c *Cluster) SetWorkerUp(phys int) {
	c.workers[phys].down = false
	c.Opts.Telemetry.SetDown(c.Eng.Now(), phys, false)
}

// SetWorkerSpeedFactor scales a worker's execution speed relative to its
// class's nominal speed (a straggler at factor 0.25 runs four times slower);
// factor 1 restores full speed. A batch already executing keeps the latency
// it started with.
func (c *Cluster) SetWorkerSpeedFactor(phys int, factor float64) {
	w := c.workers[phys]
	w.speed = w.baseSpeed * factor
	c.Opts.Telemetry.SetSpeed(c.Eng.Now(), phys, factor)
}

// InjectRequest admits one client query at the current time.
func (c *Cluster) InjectRequest() {
	now := c.Eng.Now()
	c.arrivals++
	c.TotalInjected++
	if c.Metrics != nil {
		c.Metrics.Arrival(now)
	}
	c.nextRootID++
	root := &rootRequest{
		id:       c.nextRootID,
		arrived:  now,
		deadline: now + c.Opts.SLOSec,
	}
	root.tr = c.Opts.Tracer.Start(root.id, now)
	c.inflight++

	if c.routes == nil || len(c.routes.Frontend) == 0 {
		root.dropped = true
		c.finish(root)
		return
	}
	target, ok := c.pick(c.routes.Frontend)
	if !ok {
		root.dropped = true
		c.finish(root)
		return
	}
	root.outstanding = 1
	sub := &subrequest{root: root, task: 0, acc: 1}
	c.deliver(sub, target)
}

// deliver moves a subrequest to a logical worker after one network hop.
func (c *Cluster) deliver(sub *subrequest, target core.WorkerID) {
	c.Eng.After(c.Opts.NetLatencySec, func() {
		w := c.logical[target]
		if w == nil || w.spec == nil || w.spec.Task != sub.task {
			// The worker was reassigned while the request was in flight.
			c.DropsStale++
			c.abandon(sub)
			return
		}
		if len(w.queue) >= w.qcap {
			c.DropsQueueFull++
			c.abandon(sub) // queue overflow
			return
		}
		sub.enqueued = c.Eng.Now()
		c.taskArrivals[sub.task]++
		w.queue = append(w.queue, sub)
		c.Opts.Telemetry.Enqueue(sub.enqueued, w.phys)
		c.tryStart(w)
	})
}

// tryStart begins a batch if the worker is free: a work-conserving policy
// that takes min(queue, maxBatch) requests immediately.
func (c *Cluster) tryStart(w *worker) {
	now := c.Eng.Now()
	if w.busy || w.down || w.spec == nil || now < w.swapUntil || len(w.queue) == 0 {
		return
	}
	b := len(w.queue)
	if b > w.spec.MaxBatch {
		b = w.spec.MaxBatch
	}
	batch := append([]*subrequest(nil), w.queue[:b]...)
	w.queue = w.queue[b:]
	w.busy = true
	spec := w.spec // capture: reconfiguration must not affect a running batch
	gen := w.gen   // capture: a crash mid-batch discards the results
	startT := now
	c.Opts.Telemetry.BatchStart(now, w.phys, b)

	v := &c.g.Tasks[spec.Task].Variants[spec.Variant]
	lat := v.Latency(b) / w.speed
	if c.Opts.ExecJitter > 0 {
		lat *= 1 + c.Opts.ExecJitter*(2*c.rng.Float64()-1)
	}
	c.Eng.After(lat, func() {
		if w.gen != gen {
			// The worker crashed while this batch was executing: the
			// results never materialize and the roots are lost. (The crash
			// already cleared the worker's telemetry in-flight state.)
			c.DropsFault += int64(len(batch))
			for _, sub := range batch {
				c.abandon(sub)
			}
			return
		}
		w.busy = false
		endT := c.Eng.Now()
		c.Opts.Telemetry.BatchEnd(endT, w.phys, len(batch))
		if c.Opts.Tracer != nil {
			for _, sub := range batch {
				if sub.root.tr != nil {
					c.Opts.Tracer.AddSpan(sub.root.tr, telemetry.Span{
						Stage:       c.g.Tasks[spec.Task].Name,
						Worker:      w.phys,
						Class:       c.Opts.Classes[w.class].Name,
						EnqueuedSec: sub.enqueued,
						StartSec:    startT,
						EndSec:      endT,
						Batch:       len(batch),
					})
				}
			}
		}
		for _, sub := range batch {
			c.completeAt(sub, w, spec)
		}
		c.tryStart(w)
	})
}

// completeAt handles one request finishing execution at a worker: record the
// variant's accuracy, emit intermediate queries to children (with sampled
// multiplicative factors), run the drop policy per branch, and detect sink
// completions.
func (c *Cluster) completeAt(sub *subrequest, w *worker, spec *core.WorkerSpec) {
	now := c.Eng.Now()
	task := &c.g.Tasks[spec.Task]
	v := &task.Variants[spec.Variant]
	acc := sub.acc * v.Accuracy

	w.hbIn++

	if task.IsSink() {
		sub.root.accSum += acc
		sub.root.accN++
	}

	table := c.tableFor(w, spec)
	totalOut := 0
	for _, child := range task.Children {
		mean := c.g.Tasks[spec.Task].Variants[spec.Variant].MultFactor * child.BranchRatio
		k := c.poisson(mean)
		totalOut += k
		for i := 0; i < k; i++ {
			c.forward(sub, spec, child.Task, table, acc, now)
		}
	}
	w.hbOut += totalOut

	sub.root.outstanding--
	if sub.root.outstanding == 0 {
		c.finish(sub.root)
	}
}

// tableFor resolves the routing table for queries leaving a worker. A batch
// captures its spec at start, so after a reconfiguration the spec's logical
// ID may be stale; prefer the worker's current table when it still serves
// the same task.
func (c *Cluster) tableFor(w *worker, spec *core.WorkerSpec) *core.WorkerTable {
	if c.routes == nil {
		return nil
	}
	if w.spec != nil && w.spec.Task == spec.Task {
		if t := c.routes.Tables[w.spec.ID]; t != nil {
			return t
		}
	}
	return c.routes.Tables[spec.ID]
}

// anyWorkerOf returns some live worker currently serving the task, used as
// a fallback route across reconfigurations.
func (c *Cluster) anyWorkerOf(task pipeline.TaskID) (core.WorkerID, bool) {
	if c.routes == nil {
		return 0, false
	}
	for i := range c.routes.Specs {
		s := &c.routes.Specs[i]
		if s.Task != task {
			continue
		}
		if w := c.logical[s.ID]; w != nil && w.spec != nil && w.spec.Task == task {
			return s.ID, true
		}
	}
	return 0, false
}

// forward routes one intermediate query to a child-task worker, applying
// the early-dropping policy.
func (c *Cluster) forward(sub *subrequest, spec *core.WorkerSpec, childTask pipeline.TaskID, table *core.WorkerTable, acc float64, now float64) {
	var entries []core.RouteEntry
	if table != nil {
		entries = table.PerChild[childTask]
	}
	target, ok := c.pick(entries)
	if !ok {
		// Stale table after a reconfiguration: fall back to any live
		// worker of the child task before giving up.
		target, ok = c.anyWorkerOf(childTask)
	}
	if !ok {
		c.DropsNoRoute++
		sub.root.dropped = true
		return
	}
	nextExec := 0.0
	if tw := c.logical[target]; tw != nil && tw.spec != nil {
		nextExec = tw.spec.LatencySec
	}

	ctx := policy.Context{
		Now:         now,
		Deadline:    sub.root.deadline,
		EnteredTask: sub.enqueued,
		Budget:      spec.BudgetSec,
		HasNext:     true,
		NextTask:    childTask,
		NextIsSink:  len(c.g.Tasks[childTask].Children) == 0,
		NextExec:    nextExec,
		NetLatency:  c.Opts.NetLatencySec,
		MinTail:     c.minTail[childTask],
		FindBackup:  c.findBackup,
	}
	d := c.Policy.OnTaskComplete(&ctx)
	if d.Drop {
		c.DropsPolicy++
		sub.root.dropped = true
		return
	}
	if d.Reroute {
		target = d.Alternate
		c.TotalRerouted++
	}
	sub.root.outstanding++
	child := &subrequest{root: sub.root, task: childTask, acc: acc}
	c.deliver(child, target)
}

// findBackup implements the §5.2 backup-table lookup: the most accurate
// worker of the task with leftover capacity and execution time ≤ maxExec.
func (c *Cluster) findBackup(task pipeline.TaskID, maxExec float64) (core.WorkerID, bool) {
	if c.routes == nil {
		return 0, false
	}
	for _, e := range c.routes.Backup[task] {
		if e.ExecSec <= maxExec && c.backupLeft[e.Worker] >= 1 {
			c.backupLeft[e.Worker]--
			return e.Worker, true
		}
	}
	return 0, false
}

// abandon drops one subrequest (queue overflow, lost worker, or no route).
func (c *Cluster) abandon(sub *subrequest) {
	sub.root.dropped = true
	sub.root.outstanding--
	if sub.root.outstanding == 0 {
		c.finish(sub.root)
	}
}

// finish closes out a root request and records its outcome.
func (c *Cluster) finish(root *rootRequest) {
	now := c.Eng.Now()
	c.inflight--
	if root.dropped {
		c.TotalDropped++
		if c.Metrics != nil {
			c.Metrics.Dropped(now, root.arrived)
		}
		c.Opts.Tracer.Finish(root.tr, now, true, false)
		return
	}
	c.TotalCompleted++
	late := now > root.deadline+1e-9
	c.Opts.Tracer.Finish(root.tr, now, false, late)
	accuracy := math.NaN()
	if root.accN > 0 {
		accuracy = root.accSum / float64(root.accN)
	}
	if c.Metrics != nil {
		c.Metrics.Completed(now, late, now-root.arrived, accuracy)
	}
}

// pick samples a route entry. Probabilities may sum below 1: the Load
// Balancer leaves demand beyond capacity unrouted, and the unlucky share is
// shed here (admission control at the frontend, forwarding drops between
// tasks) rather than poured into full queues.
func (c *Cluster) pick(entries []core.RouteEntry) (core.WorkerID, bool) {
	if len(entries) == 0 {
		return 0, false
	}
	r := c.rng.Float64()
	total := 0.0
	for _, e := range entries {
		total += e.Prob
		r -= e.Prob
		if r <= 0 {
			return e.Worker, true
		}
	}
	if total >= 1-1e-9 {
		// Fully-routed table; r landed in floating-point dust.
		return entries[len(entries)-1].Worker, true
	}
	return 0, false
}

// poisson samples a Poisson variate (Knuth's method; means here are small).
func (c *Cluster) poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= c.rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k // mean pathologically large; bound the loop
		}
	}
}

// Heartbeat flushes worker-observed multiplicative factors to the Metadata
// Store (§3's heartbeat messages) and samples utilization. The observed
// output count is thinned by the branch ratios (only e.g. cars reach the
// classifier), so the raw factor is recovered by dividing the ratio sum
// back out before reporting.
func (c *Cluster) Heartbeat() {
	now := c.Eng.Now()
	for _, w := range c.workers {
		if w.spec == nil || w.hbIn == 0 {
			continue
		}
		task := &c.g.Tasks[w.spec.Task]
		sumRatio := 0.0
		for _, ch := range task.Children {
			sumRatio += ch.BranchRatio
		}
		if sumRatio > 0 {
			observed := float64(w.hbOut) / (float64(w.hbIn) * sumRatio)
			c.Meta.ReportMultFactor(w.spec.Task, w.spec.Variant, observed)
		}
		w.hbIn, w.hbOut = 0, 0
	}
	if c.Metrics != nil {
		c.Metrics.SampleServers(now, c.ActiveServers())
		c.Metrics.SampleClassServers(c.ActiveByClass())
	}
	c.Opts.Telemetry.Sample(now)
}
