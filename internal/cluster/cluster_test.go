package cluster

import (
	"math"
	"math/rand"
	"testing"

	"loki/internal/core"
	"loki/internal/metrics"
	"loki/internal/pipeline"
	"loki/internal/policy"
	"loki/internal/profiles"
	"loki/internal/sim"
	"loki/internal/trace"
)

// testGraph is a 2-task chain with deterministic profiles.
func testGraph() *pipeline.Graph {
	return &pipeline.Graph{
		Name: "t",
		Tasks: []pipeline.Task{
			{ID: 0, Name: "a", Variants: []pipeline.Variant{
				{Name: "a0", Accuracy: 1.0, Alpha: 0.005, Beta: 0.005, MultFactor: 1.0},
			}, Children: []pipeline.Child{{Task: 1, BranchRatio: 1.0}}},
			{ID: 1, Name: "b", Variants: []pipeline.Variant{
				{Name: "b0", Accuracy: 0.9, Alpha: 0.005, Beta: 0.005, MultFactor: 1.0},
			}},
		},
	}
}

type rig struct {
	eng  *sim.Engine
	meta *core.MetadataStore
	cl   *Cluster
	col  *metrics.Collector
}

func newRig(t *testing.T, servers int, pol policy.Policy) *rig {
	t.Helper()
	g := testGraph()
	prof := (&profiles.Profiler{}).ProfileGraph(g, profiles.Batches)
	meta := core.NewMetadataStore(g, prof, 0.250, profiles.Batches)
	eng := &sim.Engine{}
	col := metrics.NewCollector(10, servers)
	cl, err := New(eng, meta, pol, col, Options{
		Servers: servers, SLOSec: 0.250, NetLatencySec: 0.001, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{eng: eng, meta: meta, cl: cl, col: col}
}

// plan2 deploys n replicas of each task's single variant at batch 4.
func plan2(n int) *core.Plan {
	g := testGraph()
	mk := func(task pipeline.TaskID) core.Assignment {
		v := g.Tasks[task].Variants[0]
		lat := v.Latency(4)
		return core.Assignment{
			Task: task, Variant: 0, MaxBatch: 4, Replicas: n,
			QPS: 4 / lat, LatencySec: lat, Accuracy: v.Accuracy, BudgetSec: 2 * lat,
		}
	}
	p := &core.Plan{Mode: core.HardwareScaling, ServedFraction: 1}
	p.Assignments = []core.Assignment{mk(0), mk(1)}
	p.ServersUsed = 2 * n
	return p
}

func (r *rig) apply(p *core.Plan, demand float64) {
	specs := core.ExpandPlan(p)
	routes := core.MostAccurateFirst(r.meta.Graph(), specs, demand, r.meta.MultFactor)
	r.cl.ApplyPlan(p, routes)
}

func (r *rig) injectPoisson(t *testing.T, qps, duration float64, seed int64) {
	t.Helper()
	tr := &trace.Trace{Interval: duration, QPS: []float64{qps}}
	arr := tr.Arrivals(rand.New(rand.NewSource(seed)))
	for _, at := range arr {
		at := at
		r.eng.At(at, func() { r.cl.InjectRequest() })
	}
}

func TestSteadyStateServesWithinSLO(t *testing.T) {
	r := newRig(t, 8, policy.Opportunistic{})
	// Capacity per task: 4 replicas × 160 qps = 640; offer 300.
	r.apply(plan2(4), 400)
	r.injectPoisson(t, 300, 30, 1)
	r.eng.RunAll()

	s := r.col.Summarize()
	if s.Arrivals == 0 {
		t.Fatal("no arrivals")
	}
	if s.ViolationRatio > 0.02 {
		t.Fatalf("violation ratio %.4f at 47%% utilization, want ≈0", s.ViolationRatio)
	}
	// End-to-end accuracy = 1.0 × 0.9.
	if math.Abs(s.MeanAccuracy-0.9) > 1e-9 {
		t.Fatalf("accuracy = %g, want 0.9", s.MeanAccuracy)
	}
}

func TestConservationInjectedEqualsCompletedPlusDropped(t *testing.T) {
	r := newRig(t, 8, policy.Opportunistic{})
	r.apply(plan2(2), 500)
	r.injectPoisson(t, 800, 10, 2) // heavy overload → drops
	r.eng.RunAll()

	if r.cl.Inflight() != 0 {
		t.Fatalf("%d requests still in flight after drain", r.cl.Inflight())
	}
	if r.cl.TotalInjected != r.cl.TotalCompleted+r.cl.TotalDropped {
		t.Fatalf("conservation broken: injected %d != completed %d + dropped %d",
			r.cl.TotalInjected, r.cl.TotalCompleted, r.cl.TotalDropped)
	}
	if r.cl.TotalDropped == 0 {
		t.Fatal("expected drops under 2.5× overload")
	}
}

func TestNoRoutesDropsAtIngress(t *testing.T) {
	r := newRig(t, 4, policy.Opportunistic{})
	r.eng.At(1, func() { r.cl.InjectRequest() })
	r.eng.RunAll()
	if r.cl.TotalDropped != 1 || r.cl.TotalCompleted != 0 {
		t.Fatalf("dropped=%d completed=%d, want 1/0 before any plan", r.cl.TotalDropped, r.cl.TotalCompleted)
	}
}

func TestThroughputMatchesBatchProfile(t *testing.T) {
	// One replica per task at batch 4: per-replica rate 4/lat(4) = 160/s.
	// Offered 150/s must be served nearly fully; offered load beyond
	// capacity is shed by the routing table.
	r := newRig(t, 2, policy.NoDrop{})
	r.apply(plan2(1), 150)
	r.injectPoisson(t, 150, 20, 3)
	r.eng.RunAll()
	served := float64(r.cl.TotalCompleted) / 20
	if served < 135 {
		t.Fatalf("served %.1f qps with 160 qps capacity at offered 150", served)
	}
}

func TestReconfigurationKeepsMatchingWorkers(t *testing.T) {
	r := newRig(t, 8, policy.Opportunistic{})
	r.cl.Opts.SwapLatencySec = 1.0
	r.apply(plan2(2), 100)
	swaps := r.cl.TotalSwaps
	// Re-apply an identical plan: no worker should reload a model.
	r.apply(plan2(2), 100)
	if r.cl.TotalSwaps != swaps {
		t.Fatalf("identical plan triggered %d swaps", r.cl.TotalSwaps-swaps)
	}
	// Growing the deployment swaps only the new workers.
	r.apply(plan2(3), 100)
	if got := r.cl.TotalSwaps - swaps; got != 2 {
		t.Fatalf("grew by 2 replicas but %d swaps", got)
	}
}

func TestScaleDownShutsWorkersOff(t *testing.T) {
	r := newRig(t, 8, policy.Opportunistic{})
	r.apply(plan2(4), 100)
	if got := r.cl.ActiveServers(); got != 8 {
		t.Fatalf("active = %d, want 8", got)
	}
	r.apply(plan2(1), 100)
	if got := r.cl.ActiveServers(); got != 2 {
		t.Fatalf("active after scale-down = %d, want 2", got)
	}
}

func TestHeartbeatRefinesMultFactor(t *testing.T) {
	r := newRig(t, 4, policy.Opportunistic{})
	r.apply(plan2(2), 200)
	r.injectPoisson(t, 200, 10, 4)
	done := false
	r.eng.At(9.5, func() { r.cl.Heartbeat(); done = true })
	r.eng.RunAll()
	if !done {
		t.Fatal("heartbeat not executed")
	}
	// The observed factor is a Poisson(1.0) sample mean — near 1.0.
	got := r.meta.MultFactor(0, 0)
	if got < 0.8 || got > 1.2 {
		t.Fatalf("refined mult factor = %g, want ≈1.0", got)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (int64, int64) {
		r := newRig(t, 8, policy.Opportunistic{})
		r.apply(plan2(2), 300)
		r.injectPoisson(t, 300, 15, 7)
		r.eng.RunAll()
		return r.cl.TotalCompleted, r.cl.TotalDropped
	}
	c1, d1 := run()
	c2, d2 := run()
	if c1 != c2 || d1 != d2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", c1, d1, c2, d2)
	}
}

func TestQueueCapBoundsQueues(t *testing.T) {
	r := newRig(t, 2, policy.NoDrop{})
	r.apply(plan2(1), 100)
	// Slam 10× capacity for 5 seconds; queue-full drops must appear and
	// queues must never exceed their cap.
	r.injectPoisson(t, 1600, 5, 8)
	maxQ := 0
	r.eng.At(2.5, func() {
		for _, w := range r.cl.workers {
			if len(w.queue) > maxQ {
				maxQ = len(w.queue)
			}
		}
	})
	r.eng.RunAll()
	if r.cl.DropsQueueFull == 0 {
		t.Fatal("no queue-full drops under 10× overload")
	}
	cap0 := r.cl.queueCap(&core.WorkerSpec{QPS: 160, MaxBatch: 4})
	if maxQ > cap0 {
		t.Fatalf("queue grew to %d, cap %d", maxQ, cap0)
	}
}

func TestInteriorOutputTaskRecordsBothSinks(t *testing.T) {
	// Social-media-style graph: task 0 is an output AND feeds task 1.
	g := &pipeline.Graph{
		Name: "io",
		Tasks: []pipeline.Task{
			{ID: 0, Name: "cls", Output: true, Variants: []pipeline.Variant{
				{Name: "c", Accuracy: 1.0, Alpha: 0.005, Beta: 0.005, MultFactor: 1.0},
			}, Children: []pipeline.Child{{Task: 1, BranchRatio: 1.0}}},
			{ID: 1, Name: "cap", Variants: []pipeline.Variant{
				{Name: "p", Accuracy: 0.8, Alpha: 0.005, Beta: 0.005, MultFactor: 1.0},
			}},
		},
	}
	prof := (&profiles.Profiler{}).ProfileGraph(g, profiles.Batches)
	meta := core.NewMetadataStore(g, prof, 0.250, profiles.Batches)
	eng := &sim.Engine{}
	col := metrics.NewCollector(10, 4)
	cl, err := New(eng, meta, policy.Opportunistic{}, col, Options{
		Servers: 4, SLOSec: 0.250, NetLatencySec: 0.001, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := plan2(2)
	specs := core.ExpandPlan(plan)
	routes := core.MostAccurateFirst(g, specs, 100, meta.MultFactor)
	cl.ApplyPlan(plan, routes)
	tr := &trace.Trace{Interval: 10, QPS: []float64{100}}
	for _, at := range tr.Arrivals(rand.New(rand.NewSource(9))) {
		at := at
		eng.At(at, func() { cl.InjectRequest() })
	}
	eng.RunAll()
	s := col.Summarize()
	// Request accuracy averages the two sink results: (1.0 + 0.8)/2 = 0.9
	// for requests whose captioning branch materialized (Poisson mean 1 can
	// yield 0 children → accuracy 1.0 for those), so the mean sits in
	// (0.9, 1.0).
	if s.MeanAccuracy <= 0.9 || s.MeanAccuracy >= 1.0 {
		t.Fatalf("accuracy = %g, want in (0.9, 1.0)", s.MeanAccuracy)
	}
}
