// Package profiles provides the model-variant profiles and pipeline
// definitions used throughout the reproduction, plus the Model Profiler
// component of Loki's Controller (§3).
//
// The paper evaluates 32 model variants from five families (YOLOv5,
// EfficientNet, VGG, ResNet, CLIP-ViT) profiled on NVIDIA GTX 1080 Ti GPUs.
// We have no GPUs, so each variant here is a synthetic profile
// latency(b) = α + β·b whose constants are calibrated so that the published
// macro results hold: the accuracy spread within each family matches the
// real models (normalized by the family's most accurate variant, as §6.1
// does), and throughput spreads are set so the traffic-analysis pipeline on
// a 20-server cluster transitions between scaling phases near the demands
// Figure 1 reports (hardware-scaling limit ≈ 560 QPS, accuracy-scaling limit
// ≈ 2.7× higher). Absolute numbers are synthetic; shapes are the target.
package profiles

import "loki/internal/pipeline"

// Batches is the set of allowed batch sizes B (§4.1).
var Batches = []int{1, 2, 4, 8, 16, 32}

// v is a shorthand constructor.
func v(name string, accNorm, accRaw, alpha, beta, mult float64) pipeline.Variant {
	return pipeline.Variant{
		Name:        name,
		Accuracy:    accNorm,
		RawAccuracy: accRaw,
		Alpha:       alpha,
		Beta:        beta,
		MultFactor:  mult,
	}
}

// YOLOv5 returns the object-detection family (5 variants, n→x). Accuracy is
// COCO mAP50-95 normalized by YOLOv5x. The multiplicative factor is the mean
// number of objects each variant detects per frame: more accurate detectors
// find more objects (§4.2's workload-multiplication effect). Throughput
// spread within the family is narrow — calibrated so the phase-3 capacity
// bump in Figure 1 stays small relative to phase 2, as published.
func YOLOv5() []pipeline.Variant {
	return []pipeline.Variant{
		v("yolov5n", 0.552, 28.0, 0.0032, 0.00672, 1.57),
		v("yolov5s", 0.738, 37.4, 0.0040, 0.00688, 1.71),
		v("yolov5m", 0.895, 45.4, 0.0048, 0.00704, 1.86),
		v("yolov5l", 0.966, 49.0, 0.0056, 0.00728, 1.93),
		v("yolov5x", 1.000, 50.7, 0.0064, 0.00760, 2.00),
	}
}

// EfficientNet returns the car-classification family (8 variants, B0→B7).
// Accuracy is ImageNet top-1 normalized by B7; the B0 normalized accuracy of
// 0.87 makes the end-to-end accuracy at the end of Figure 1's phase 2 drop
// by the paper's reported ≈13%.
func EfficientNet() []pipeline.Variant {
	// Throughput targets fall geometrically from ≈990 QPS (B0) to ≈58 QPS
	// (B7); β = 1/(1.15·target) puts saturation 15% above target and α
	// grows with model size.
	names := []string{"efficientnet-b0", "efficientnet-b1", "efficientnet-b2", "efficientnet-b3",
		"efficientnet-b4", "efficientnet-b5", "efficientnet-b6", "efficientnet-b7"}
	accs := []float64{0.870, 0.888, 0.906, 0.924, 0.942, 0.960, 0.978, 1.000}
	qs := []float64{1238, 825, 550, 368, 245, 164, 109, 73}
	out := make([]pipeline.Variant, len(names))
	for i := range names {
		out[i] = v(names[i], accs[i], accs[i]*84.3, 0.0010+0.0004*float64(i), 1/(1.15*qs[i]), 1.0)
	}
	return out
}

// VGG returns the facial-recognition family (6 variants). Accuracy is LFW
// verification accuracy normalized by the best fine-tuned variant.
func VGG() []pipeline.Variant {
	names := []string{"vgg11-face", "vgg13-face", "vgg16-face", "vgg19-face", "vggface-m", "vggface-l"}
	accs := []float64{0.905, 0.928, 0.950, 0.966, 0.984, 1.000}
	qs := []float64{388, 319, 256, 206, 156, 119}
	out := make([]pipeline.Variant, len(names))
	for i := range names {
		out[i] = v(names[i], accs[i], accs[i]*0.974, 0.0012+0.0005*float64(i), 1/(1.15*qs[i]), 1.0)
	}
	return out
}

// ResNet returns the image-classification family for the social-media
// pipeline (6 variants). Accuracy is ImageNet top-1 normalized by the widest
// variant.
func ResNet() []pipeline.Variant {
	names := []string{"resnet18", "resnet34", "resnet50", "resnet101", "resnet152", "wide-resnet101"}
	accs := []float64{0.885, 0.929, 0.965, 0.981, 0.993, 1.000}
	qs := []float64{650, 481, 350, 231, 169, 131}
	out := make([]pipeline.Variant, len(names))
	for i := range names {
		// Classification emits one captioning request per image that
		// contains recognizable content; better classifiers pass slightly
		// more images downstream.
		mult := 0.92 + 0.016*float64(i)
		out[i] = v(names[i], accs[i], accs[i]*78.8, 0.0010+0.0004*float64(i), 1/(1.15*qs[i]), mult)
	}
	return out
}

// CLIPViT returns the image-captioning family (7 variants). Accuracy is
// CIDEr-proxy normalized by the largest variant.
func CLIPViT() []pipeline.Variant {
	names := []string{"clip-rn50", "clip-rn101", "clip-vit-b32", "clip-vit-b16",
		"clip-rn50x4", "clip-vit-l14", "clip-vit-l14-336"}
	accs := []float64{0.872, 0.894, 0.918, 0.944, 0.962, 0.986, 1.000}
	qs := []float64{269, 219, 175, 138, 103, 73, 53}
	out := make([]pipeline.Variant, len(names))
	for i := range names {
		out[i] = v(names[i], accs[i], accs[i]*1.0, 0.0015+0.0006*float64(i), 1/(1.15*qs[i]), 1.0)
	}
	return out
}

// TotalVariants returns the number of variants across all families (the
// paper uses 32 across its two pipelines; we define 32 as well).
func TotalVariants() int {
	return len(YOLOv5()) + len(EfficientNet()) + len(VGG()) + len(ResNet()) + len(CLIPViT())
}

// Families returns the built-in variant families keyed by registry name.
// Each call returns fresh slices, so callers may mutate them freely.
func Families() map[string][]pipeline.Variant {
	return map[string][]pipeline.Variant{
		"yolov5":       YOLOv5(),
		"efficientnet": EfficientNet(),
		"vgg":          VGG(),
		"resnet":       ResNet(),
		"clip-vit":     CLIPViT(),
	}
}

// TrafficChain returns the two-task pipeline of Figure 1 and §1's
// walkthrough: object detection followed by car classification. The branch
// ratio 0.70 is the fraction of detected objects that are cars.
func TrafficChain() *pipeline.Graph {
	return &pipeline.Graph{
		Name: "traffic-chain",
		Tasks: []pipeline.Task{
			{ID: 0, Name: "object-detection", Variants: YOLOv5(),
				Children: []pipeline.Child{{Task: 1, BranchRatio: 0.70}}},
			{ID: 1, Name: "car-classification", Variants: EfficientNet()},
		},
	}
}

// TrafficTree returns the full traffic-analysis pipeline of Figure 2a:
// object detection fans out to car classification (cars, 70% of detected
// objects) and facial recognition (persons, 30%).
func TrafficTree() *pipeline.Graph {
	return &pipeline.Graph{
		Name: "traffic-analysis",
		Tasks: []pipeline.Task{
			{ID: 0, Name: "object-detection", Variants: YOLOv5(),
				Children: []pipeline.Child{
					{Task: 1, BranchRatio: 0.70},
					{Task: 2, BranchRatio: 0.30},
				}},
			{ID: 1, Name: "car-classification", Variants: EfficientNet()},
			{ID: 2, Name: "facial-recognition", Variants: VGG()},
		},
	}
}

// SocialMedia returns the social-media pipeline of Figure 2b: image
// classification whose labels are a pipeline output (sink 2) and also feed
// image captioning (sink 1). 90% of classified images proceed to
// captioning.
func SocialMedia() *pipeline.Graph {
	return &pipeline.Graph{
		Name: "social-media",
		Tasks: []pipeline.Task{
			{ID: 0, Name: "image-classification", Variants: ResNet(), Output: true,
				Children: []pipeline.Child{{Task: 1, BranchRatio: 0.90}}},
			{ID: 1, Name: "image-captioning", Variants: CLIPViT()},
		},
	}
}
