package profiles

import (
	"fmt"
	"math/rand"

	"loki/internal/pipeline"
)

// Profile is the measured performance table of one model variant: for every
// allowed batch size, the batch processing latency and the resulting
// steady-state throughput q(i,k,b). The Resource Manager consumes these
// tables, never the underlying analytic model — exactly as the paper's
// Resource Manager consumes the Model Profiler's measurements from the
// Metadata Store.
type Profile struct {
	Batches    []int
	LatencySec []float64 // batch latency at Batches[j]
	QPS        []float64 // throughput at Batches[j]
}

// Latency returns the profiled latency for batch size b.
func (p *Profile) Latency(b int) (float64, bool) {
	for j, pb := range p.Batches {
		if pb == b {
			return p.LatencySec[j], true
		}
	}
	return 0, false
}

// Throughput returns the profiled throughput for batch size b.
func (p *Profile) Throughput(b int) (float64, bool) {
	for j, pb := range p.Batches {
		if pb == b {
			return p.QPS[j], true
		}
	}
	return 0, false
}

// MaxQPS returns the largest profiled throughput and its batch size.
func (p *Profile) MaxQPS() (float64, int) {
	best, bestB := 0.0, 0
	for j, q := range p.QPS {
		if q > best {
			best, bestB = q, p.Batches[j]
		}
	}
	return best, bestB
}

// Profiler is Loki's Model Profiler (§3): during initial setup it measures
// the processing time of every model variant at every allowed batch size.
// DeviceSpeed scales all latencies (1.0 models the paper's homogeneous GTX
// 1080 Ti cluster); on a heterogeneous fleet it is the reference speed that
// each hardware class's own Speed multiplies. Jitter adds relative
// measurement noise so simulator validation does not compare a model against
// itself bit-for-bit.
type Profiler struct {
	DeviceSpeed float64
	Jitter      float64 // e.g. 0.01 for ±1% multiplicative noise
	Seed        int64
}

// ProfileVariant measures one variant over the given batch sizes at the
// profiler's reference speed.
func (pr *Profiler) ProfileVariant(v *pipeline.Variant, batches []int) Profile {
	return pr.profileVariantAt(v, batches, 1.0)
}

// profileVariantAt measures one variant with latencies divided by
// classSpeed × DeviceSpeed. The jitter stream is re-seeded per variant, so
// every class observes the same relative measurement noise — a slow class is
// exactly a speed-scaled copy of the reference measurement, which is what
// lets a Speed-1.0 class reproduce the homogeneous profiles bit for bit.
func (pr *Profiler) profileVariantAt(v *pipeline.Variant, batches []int, classSpeed float64) Profile {
	speed := pr.DeviceSpeed
	if speed == 0 {
		speed = 1.0
	}
	speed *= classSpeed
	rng := rand.New(rand.NewSource(pr.Seed + int64(len(v.Name))*7919))
	p := Profile{
		Batches:    append([]int(nil), batches...),
		LatencySec: make([]float64, len(batches)),
		QPS:        make([]float64, len(batches)),
	}
	for j, b := range batches {
		lat := v.Latency(b) / speed
		if pr.Jitter > 0 {
			lat *= 1 + pr.Jitter*(2*rng.Float64()-1)
		}
		p.LatencySec[j] = lat
		p.QPS[j] = float64(b) / lat
	}
	return p
}

// ProfileGraph measures every variant of every task of the graph, returning
// tables indexed [task][variant].
func (pr *Profiler) ProfileGraph(g *pipeline.Graph, batches []int) [][]Profile {
	out := make([][]Profile, len(g.Tasks))
	for i := range g.Tasks {
		out[i] = make([]Profile, len(g.Tasks[i].Variants))
		for k := range g.Tasks[i].Variants {
			out[i][k] = pr.ProfileVariant(&g.Tasks[i].Variants[k], batches)
		}
	}
	return out
}

// ProfileGraphClasses measures every variant on every hardware class,
// returning tables indexed [class][task][variant]. Each class's table is the
// reference measurement scaled by the class Speed (a Speed of 0 is treated
// as 1.0), so a single class at Speed 1.0 reproduces ProfileGraph exactly.
func (pr *Profiler) ProfileGraphClasses(g *pipeline.Graph, batches []int, classes []Class) [][][]Profile {
	out := make([][][]Profile, len(classes))
	for c, cl := range classes {
		speed := cl.Speed
		if speed == 0 {
			speed = 1.0
		}
		out[c] = make([][]Profile, len(g.Tasks))
		for i := range g.Tasks {
			out[c][i] = make([]Profile, len(g.Tasks[i].Variants))
			for k := range g.Tasks[i].Variants {
				out[c][i][k] = pr.profileVariantAt(&g.Tasks[i].Variants[k], batches, speed)
			}
		}
	}
	return out
}

// String renders the profile as an aligned table (used by cmd/lokiprofile
// to regenerate Figure 3-style tradeoff tables).
func (p *Profile) String() string {
	s := "batch  latency(ms)  throughput(qps)\n"
	for j, b := range p.Batches {
		s += fmt.Sprintf("%5d  %11.2f  %15.1f\n", b, p.LatencySec[j]*1e3, p.QPS[j])
	}
	return s
}
