package profiles

import (
	"fmt"
	"strconv"
	"strings"

	"loki/internal/pipeline"
)

// Class describes one hardware class of a heterogeneous cluster: Count
// interchangeable servers of the same accelerator generation, all running at
// Speed × the profiled reference speed (1.0 = the homogeneous GTX 1080 Ti
// testbed) and costing CostPerHour per active server-hour. Workers never
// migrate across classes — a model swap keeps a server inside its class —
// and the Resource Manager holds one capacity constraint per class.
type Class struct {
	Name        string
	Count       int
	Speed       float64
	CostPerHour float64
}

// DefaultClassName names the implicit single class of a homogeneous cluster.
const DefaultClassName = "default"

// Latency returns the variant's batch latency on this class: the analytic
// curve scaled by the class speed — the per-class latency curve that
// replaces the profiler's old single device-speed scalar. A zero Speed is
// treated as 1.0.
func (c Class) Latency(v *pipeline.Variant, b int) float64 {
	speed := c.Speed
	if speed == 0 {
		speed = 1.0
	}
	return v.Latency(b) / speed
}

// DefaultClasses returns the homogeneous fleet every pre-hetero entry point
// implies: one class named "default" holding all servers at Speed 1.0 and
// zero cost, which reproduces the pre-class planner and engines bit for bit.
func DefaultClasses(servers int) []Class {
	return []Class{{Name: DefaultClassName, Count: servers, Speed: 1.0}}
}

// TotalCount returns the number of servers across all classes.
func TotalCount(classes []Class) int {
	n := 0
	for _, c := range classes {
		n += c.Count
	}
	return n
}

// ValidateClasses checks a class set: at least one class, unique non-empty
// names, positive counts and speeds, non-negative costs.
func ValidateClasses(classes []Class) error {
	if len(classes) == 0 {
		return fmt.Errorf("profiles: need at least one hardware class")
	}
	seen := map[string]bool{}
	for _, c := range classes {
		if c.Name == "" {
			return fmt.Errorf("profiles: hardware class needs a name")
		}
		if seen[c.Name] {
			return fmt.Errorf("profiles: duplicate hardware class %q", c.Name)
		}
		seen[c.Name] = true
		if c.Count <= 0 {
			return fmt.Errorf("profiles: hardware class %q needs a positive count, got %d", c.Name, c.Count)
		}
		if c.Speed <= 0 {
			return fmt.Errorf("profiles: hardware class %q needs a positive speed, got %g", c.Name, c.Speed)
		}
		if c.CostPerHour < 0 {
			return fmt.Errorf("profiles: hardware class %q has negative cost %g", c.Name, c.CostPerHour)
		}
	}
	return nil
}

// SameClasses reports whether two class sets are identical (same order,
// names, counts, speeds, costs) — the check multi-tenant arbitration uses to
// ensure every tenant describes the one shared pool the same way.
func SameClasses(a, b []Class) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ParseClasses parses a fleet specification of the form
// "a100:4@2.0,v100:8@1.0,cpu:16@0.25" — comma-separated name:count@speed
// entries, each with an optional fourth @cost-per-hour part
// ("a100:4@2.0@3.5"). An empty spec returns nil (the caller's default
// fleet).
func ParseClasses(spec string) ([]Class, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []Class
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		name, rest, ok := strings.Cut(part, ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("profiles: hardware class %q: want name:count@speed[@cost]", part)
		}
		fields := strings.Split(rest, "@")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("profiles: hardware class %q: want name:count@speed[@cost]", part)
		}
		count, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("profiles: hardware class %q: bad count: %v", part, err)
		}
		speed, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("profiles: hardware class %q: bad speed: %v", part, err)
		}
		cl := Class{Name: name, Count: count, Speed: speed}
		if len(fields) == 3 {
			cost, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("profiles: hardware class %q: bad cost: %v", part, err)
			}
			cl.CostPerHour = cost
		}
		out = append(out, cl)
	}
	if err := ValidateClasses(out); err != nil {
		return nil, err
	}
	return out, nil
}
