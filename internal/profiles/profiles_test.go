package profiles

import (
	"math"
	"testing"

	"loki/internal/pipeline"
)

func TestAllPipelinesValidate(t *testing.T) {
	for _, g := range []*pipeline.Graph{TrafficChain(), TrafficTree(), SocialMedia()} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestThirtyTwoVariants(t *testing.T) {
	if got := TotalVariants(); got != 32 {
		t.Fatalf("TotalVariants = %d, want 32 (as in the paper)", got)
	}
}

func TestFamiliesNormalizedByBest(t *testing.T) {
	fams := map[string][]pipeline.Variant{
		"yolo": YOLOv5(), "effnet": EfficientNet(), "vgg": VGG(),
		"resnet": ResNet(), "clip": CLIPViT(),
	}
	for name, fam := range fams {
		best := 0.0
		for _, v := range fam {
			if v.Accuracy > best {
				best = v.Accuracy
			}
			if v.Accuracy <= 0 || v.Accuracy > 1 {
				t.Errorf("%s/%s: accuracy %g outside (0,1]", name, v.Name, v.Accuracy)
			}
		}
		if math.Abs(best-1.0) > 1e-9 {
			t.Errorf("%s: best normalized accuracy %g, want exactly 1", name, best)
		}
	}
}

// TestAccuracyThroughputTradeoff checks the Figure-3 property: within a
// family, higher accuracy comes with strictly lower peak throughput.
func TestAccuracyThroughputTradeoff(t *testing.T) {
	pr := &Profiler{}
	for _, fam := range [][]pipeline.Variant{YOLOv5(), EfficientNet(), VGG(), ResNet(), CLIPViT()} {
		for i := 1; i < len(fam); i++ {
			if fam[i].Accuracy <= fam[i-1].Accuracy {
				t.Fatalf("%s: accuracy not increasing along family", fam[i].Name)
			}
			pPrev := pr.ProfileVariant(&fam[i-1], Batches)
			pCur := pr.ProfileVariant(&fam[i], Batches)
			qPrev, _ := pPrev.MaxQPS()
			qCur, _ := pCur.MaxQPS()
			if qCur >= qPrev {
				t.Errorf("%s: more accurate variant is not slower (%.1f ≥ %.1f qps)",
					fam[i].Name, qCur, qPrev)
			}
		}
	}
}

// TestMultFactorGrowsWithDetectorAccuracy checks §4.2's workload
// multiplication effect: more accurate detectors emit more intermediate
// queries.
func TestMultFactorGrowsWithDetectorAccuracy(t *testing.T) {
	fam := YOLOv5()
	for i := 1; i < len(fam); i++ {
		if fam[i].MultFactor < fam[i-1].MultFactor {
			t.Fatalf("mult factor not monotone: %s %.2f < %s %.2f",
				fam[i].Name, fam[i].MultFactor, fam[i-1].Name, fam[i-1].MultFactor)
		}
	}
}

func TestProfilerMatchesAnalyticModel(t *testing.T) {
	v := YOLOv5()[4]
	p := (&Profiler{}).ProfileVariant(&v, Batches)
	for j, b := range p.Batches {
		wantLat := v.Latency(b)
		if math.Abs(p.LatencySec[j]-wantLat) > 1e-12 {
			t.Fatalf("batch %d latency %g, want %g", b, p.LatencySec[j], wantLat)
		}
		if math.Abs(p.QPS[j]-float64(b)/wantLat) > 1e-9 {
			t.Fatalf("batch %d qps %g, want %g", b, p.QPS[j], float64(b)/wantLat)
		}
	}
}

func TestProfilerJitterIsBounded(t *testing.T) {
	v := EfficientNet()[0]
	pr := &Profiler{Jitter: 0.05, Seed: 9}
	p := pr.ProfileVariant(&v, Batches)
	for j, b := range p.Batches {
		ref := v.Latency(b)
		if rel := math.Abs(p.LatencySec[j]-ref) / ref; rel > 0.05+1e-12 {
			t.Fatalf("batch %d jitter %g exceeds 5%%", b, rel)
		}
	}
}

func TestProfilerDeviceSpeedScales(t *testing.T) {
	v := ResNet()[0]
	slow := (&Profiler{DeviceSpeed: 0.5}).ProfileVariant(&v, Batches)
	fast := (&Profiler{DeviceSpeed: 1.0}).ProfileVariant(&v, Batches)
	for j := range slow.Batches {
		if math.Abs(slow.LatencySec[j]-2*fast.LatencySec[j]) > 1e-12 {
			t.Fatalf("device speed scaling broken at batch %d", slow.Batches[j])
		}
	}
}

func TestProfileGraphShape(t *testing.T) {
	g := TrafficTree()
	tables := (&Profiler{}).ProfileGraph(g, Batches)
	if len(tables) != len(g.Tasks) {
		t.Fatalf("got %d task tables, want %d", len(tables), len(g.Tasks))
	}
	for i := range tables {
		if len(tables[i]) != len(g.Tasks[i].Variants) {
			t.Fatalf("task %d: %d profiles for %d variants", i, len(tables[i]), len(g.Tasks[i].Variants))
		}
	}
}

func TestProfileLookupMissingBatch(t *testing.T) {
	v := VGG()[0]
	p := (&Profiler{}).ProfileVariant(&v, Batches)
	if _, ok := p.Throughput(3); ok {
		t.Fatal("batch 3 should not be profiled")
	}
	if _, ok := p.Latency(8); !ok {
		t.Fatal("batch 8 should be profiled")
	}
}
