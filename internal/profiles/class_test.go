package profiles

import (
	"reflect"
	"testing"
)

// A single speed-1.0 class reproduces the homogeneous profiler bit for bit —
// the profile-layer half of the hardware-class parity contract — including
// under measurement jitter (the per-variant jitter stream is re-seeded per
// class).
func TestProfileGraphClassesSpeedOneParity(t *testing.T) {
	g := TrafficTree()
	for _, jitter := range []float64{0, 0.02} {
		pr := &Profiler{Seed: 9, Jitter: jitter}
		ref := pr.ProfileGraph(g, Batches)
		got := pr.ProfileGraphClasses(g, Batches, DefaultClasses(20))
		if len(got) != 1 {
			t.Fatalf("jitter %g: %d class tables, want 1", jitter, len(got))
		}
		if !reflect.DeepEqual(ref, got[0]) {
			t.Fatalf("jitter %g: speed-1.0 class diverged from the homogeneous profiler", jitter)
		}
	}
}

// Per-class tables are the reference measurement scaled by the class speed:
// latency divides, throughput multiplies, and the jitter pattern is shared.
func TestProfileGraphClassesSpeedScaling(t *testing.T) {
	g := TrafficChain()
	classes := []Class{
		{Name: "fast", Count: 2, Speed: 2.0},
		{Name: "ref", Count: 2, Speed: 1.0},
	}
	pr := &Profiler{Seed: 3, Jitter: 0.01}
	tabs := pr.ProfileGraphClasses(g, Batches, classes)
	for i := range g.Tasks {
		for k := range g.Tasks[i].Variants {
			for j := range Batches {
				fast, ref := tabs[0][i][k].LatencySec[j], tabs[1][i][k].LatencySec[j]
				if diff := fast*2 - ref; diff > 1e-12 || diff < -1e-12 {
					t.Fatalf("task %d variant %d batch %d: fast latency %g not half of %g", i, k, Batches[j], fast, ref)
				}
			}
		}
	}
}

// Class.Latency is the analytic curve divided by the class speed.
func TestClassLatency(t *testing.T) {
	v := YOLOv5()[0]
	fast := Class{Name: "fast", Speed: 2.0}
	if got, want := fast.Latency(&v, 8), v.Latency(8)/2; got != want {
		t.Fatalf("fast.Latency = %g, want %g", got, want)
	}
	zero := Class{Name: "z"}
	if got, want := zero.Latency(&v, 8), v.Latency(8); got != want {
		t.Fatalf("zero-speed class Latency = %g, want the reference %g", got, want)
	}
}

// ParseClasses handles the CLI fleet syntax and validation.
func TestParseClasses(t *testing.T) {
	got, err := ParseClasses("a:2@1.5@0.8,b:4@0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []Class{
		{Name: "a", Count: 2, Speed: 1.5, CostPerHour: 0.8},
		{Name: "b", Count: 4, Speed: 0.5},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseClasses = %+v, want %+v", got, want)
	}
	if cs, err := ParseClasses("  "); err != nil || cs != nil {
		t.Fatalf("blank spec: %v, %v", cs, err)
	}
	for _, bad := range []string{"a", "a:2", "a:2@0", "a:0@1", "a:2@1,a:3@1", ":2@1"} {
		if _, err := ParseClasses(bad); err == nil {
			t.Errorf("bad spec %q accepted", bad)
		}
	}
}
