package engine

import (
	"errors"
	"math/rand"

	"loki/internal/cluster"
	"loki/internal/core"
	"loki/internal/pipeline"
	"loki/internal/sim"
	"loki/internal/trace"
)

// simulated drives internal/cluster on the discrete-event engine. Virtual
// time advances only inside Feed and Stop, so the adapter is deterministic
// for a fixed seed and must not be called from multiple goroutines.
type simulated struct {
	cfg  Config
	eng  *sim.Engine
	cl   *cluster.Cluster
	ctrl *core.Controller

	arrRng  *rand.Rand
	started bool
	stopped bool
	stepErr error
}

// NewSimulated builds the discrete-event backend.
func NewSimulated(cfg Config) (Engine, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	eng := &sim.Engine{}
	cl, err := cluster.New(eng, cfg.Meta, cfg.Policy, cfg.Collector, cluster.Options{
		Servers:        cfg.Servers,
		Classes:        cfg.Classes,
		SLOSec:         cfg.SLOSec,
		NetLatencySec:  cfg.NetLatencySec,
		Seed:           cfg.Seed + 1,
		SwapLatencySec: cfg.SwapLatencySec,
		ExecJitter:     cfg.ExecJitter,
		QueueFactor:    cfg.QueueFactor,
		Telemetry:      cfg.Telemetry,
		Tracer:         cfg.Tracer,
	})
	if err != nil {
		return nil, err
	}
	return &simulated{cfg: cfg, eng: eng, cl: cl}, nil
}

func (s *simulated) ApplyPlan(plan *core.Plan, routes *core.Routes) {
	s.cl.ApplyPlan(plan, routes)
}

func (s *simulated) Start(ctrl *core.Controller) error {
	if s.started {
		return errors.New("engine: already started")
	}
	s.started = true
	s.ctrl = ctrl
	s.arrRng = rand.New(rand.NewSource(s.cfg.Seed + 2))
	return nil
}

func (s *simulated) Submit() error {
	if !s.started {
		return ErrNotStarted
	}
	if s.stopped {
		return ErrStopped
	}
	s.cl.InjectRequest()
	return nil
}

// Feed schedules the trace's arrivals and the housekeeping ticks, then runs
// virtual time through the trace and drains in-flight requests — exactly the
// event program the old experiments.Run hand-wired.
func (s *simulated) Feed(tr *trace.Trace) error {
	if !s.started {
		return ErrNotStarted
	}
	if s.stopped {
		return ErrStopped
	}
	start := s.eng.Now()
	end := start + tr.Duration()

	// Arrivals: lazily chained Poisson events keep the event heap small.
	arrivals := tr.Arrivals(s.arrRng)
	var scheduleArrival func(i int)
	scheduleArrival = func(i int) {
		if i >= len(arrivals) {
			return
		}
		s.eng.At(start+arrivals[i], func() {
			s.cl.InjectRequest()
			scheduleArrival(i + 1)
		})
	}
	scheduleArrival(0)

	// Per-second housekeeping: demand reports, heartbeats, reactive
	// reallocation, demand sampling.
	var secTick func()
	secTick = func() {
		now := s.eng.Now()
		s.housekeep(now, tr.RateAt(now-start))
		if now+1 <= end {
			s.eng.After(1, secTick)
		}
	}
	s.eng.After(1, secTick)

	var lbTick func()
	lbTick = func() {
		s.ctrl.Rebalance()
		if s.eng.Now()+s.cfg.LBIntervalSec <= end {
			s.eng.After(s.cfg.LBIntervalSec, lbTick)
		}
	}
	s.eng.After(s.cfg.LBIntervalSec, lbTick)

	var rmTick func()
	rmTick = func() {
		if err := s.ctrl.Step(true); err != nil && s.stepErr == nil {
			s.stepErr = err
		}
		if s.eng.Now()+s.cfg.RMIntervalSec <= end {
			s.eng.After(s.cfg.RMIntervalSec, rmTick)
		}
	}
	s.eng.After(s.cfg.RMIntervalSec, rmTick)

	// Run the trace, then drain in-flight requests (the tick chains stop
	// rescheduling past end, so the queue empties).
	s.eng.Run(end)
	s.eng.RunAll()
	return s.stepErr
}

func (s *simulated) housekeep(now, rateQPS float64) {
	count := s.cl.FlushDemand()
	s.cfg.Meta.ObserveDemandAt(now, float64(count))
	if s.cfg.OnTaskDemand != nil {
		for task, n := range s.cl.FlushTaskArrivals() {
			s.cfg.OnTaskDemand(pipeline.TaskID(task), float64(n))
		}
	}
	s.cfg.Collector.SampleDemand(now, rateQPS)
	s.cl.Heartbeat()
	if err := s.ctrl.Step(false); err != nil && s.stepErr == nil {
		s.stepErr = err
	}
}

// Stop drains whatever Submit injected since the last Feed and freezes the
// backend.
func (s *simulated) Stop() error {
	if !s.started || s.stopped {
		s.stopped = true
		return s.stepErr
	}
	s.stopped = true
	s.eng.RunAll()
	return s.stepErr
}

func (s *simulated) Stats() Stats {
	injected, completed, dropped, rerouted, swaps := s.cl.Totals()
	return Stats{
		Injected:  injected,
		Completed: completed,
		Dropped:   dropped,
		Rerouted:  rerouted,
		Swaps:     swaps,
	}
}

func (s *simulated) Now() float64 { return s.eng.Now() }

func (s *simulated) ActiveServers() int { return s.cl.ActiveServers() }

func (s *simulated) ActiveByClass() []int { return s.cl.ActiveByClass() }
