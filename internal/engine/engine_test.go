package engine

import (
	"errors"
	"testing"

	"loki/internal/core"
	"loki/internal/metrics"
	"loki/internal/policy"
	"loki/internal/profiles"
	"loki/internal/trace"
)

func newSimHarness(t *testing.T, seed int64) (Engine, *core.Controller) {
	t.Helper()
	g := profiles.TrafficChain()
	prof := (&profiles.Profiler{Seed: seed}).ProfileGraph(g, profiles.Batches)
	meta := core.NewMetadataStore(g, prof, 0.250, profiles.Batches)
	alloc, err := core.NewAllocator(meta, core.AllocatorOptions{
		Servers: 10, NetLatencySec: 0.002, KeepWarm: true, Headroom: 0.30,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewSimulated(Config{
		Meta:      meta,
		Policy:    policy.Opportunistic{},
		Collector: metrics.NewCollector(10, 10),
		Servers:   10, SLOSec: 0.250, NetLatencySec: 0.002, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := core.NewController(meta, alloc, eng.ApplyPlan)
	ctrl.RouteHeadroom = 0.30
	meta.ObserveDemand(100)
	if err := ctrl.Step(true); err != nil {
		t.Fatal(err)
	}
	return eng, ctrl
}

func runOnce(t *testing.T, seed int64) Stats {
	t.Helper()
	eng, ctrl := newSimHarness(t, seed)
	if err := eng.Start(ctrl); err != nil {
		t.Fatal(err)
	}
	tr := trace.Ramp(80, 160, 8, 2)
	if err := eng.Feed(tr); err != nil {
		t.Fatal(err)
	}
	if err := eng.Stop(); err != nil {
		t.Fatal(err)
	}
	return eng.Stats()
}

func TestSimulatedConservation(t *testing.T) {
	st := runOnce(t, 1)
	if st.Injected == 0 {
		t.Fatal("no traffic")
	}
	if st.Injected != st.Completed+st.Dropped {
		t.Fatalf("conservation: %d != %d + %d", st.Injected, st.Completed, st.Dropped)
	}
}

func TestSimulatedDeterministicPerSeed(t *testing.T) {
	if a, b := runOnce(t, 7), runOnce(t, 7); a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestSimulatedLifecycleErrors(t *testing.T) {
	eng, ctrl := newSimHarness(t, 2)
	if err := eng.Submit(); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("Submit before Start = %v", err)
	}
	if err := eng.Feed(trace.Ramp(10, 20, 2, 1)); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("Feed before Start = %v", err)
	}
	if err := eng.Start(ctrl); err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Stop(); err != nil {
		t.Fatalf("Stop must be idempotent, got %v", err)
	}
	if err := eng.Submit(); !errors.Is(err, ErrStopped) {
		t.Fatalf("Submit after Stop = %v", err)
	}
	st := eng.Stats()
	if st.Injected != 1 || st.Completed+st.Dropped != 1 {
		t.Fatalf("submitted request not drained by Stop: %+v", st)
	}
}

func TestSubmitOnlyDrainsAtStop(t *testing.T) {
	eng, ctrl := newSimHarness(t, 3)
	if err := eng.Start(ctrl); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := eng.Submit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Stop(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Injected != 25 || st.Completed == 0 {
		t.Fatalf("stats after drain: %+v", st)
	}
}
