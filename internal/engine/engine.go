// Package engine defines the common serving-backend abstraction behind the
// public loki.System API. A backend hosts the worker pool: it accepts plan
// publications from the core.Controller, admits requests (one at a time via
// Submit or as a whole arrival process via Feed), and runs the per-second
// housekeeping loop (demand reports, heartbeats, controller steps) that the
// paper's Controller relies on. Two implementations exist: the discrete-event
// simulator (internal/sim + internal/cluster, virtual time) and the
// wall-clock prototype (internal/live, real goroutine workers). Everything
// above this interface — loki.System, loki.Serve, internal/experiments.Run —
// is backend-agnostic.
package engine

import (
	"errors"
	"fmt"

	"loki/internal/core"
	"loki/internal/metrics"
	"loki/internal/pipeline"
	"loki/internal/policy"
	"loki/internal/profiles"
	"loki/internal/telemetry"
	"loki/internal/trace"
)

// Stats are cumulative request totals of a backend. Injected counts root
// requests admitted; every injected request eventually lands in exactly one
// of Completed or Dropped. Shed counts requests refused by an admission
// controller before injection — they are not part of Injected (offered load
// is Injected + Shed) and stay zero when no controller is armed.
type Stats struct {
	Injected  int64
	Completed int64
	Dropped   int64
	Rerouted  int64
	Swaps     int64
	Shed      int64
}

// Config assembles the pieces every backend needs. Meta, Policy, and
// Collector are required; the scalar knobs fall back to the paper's defaults
// where zero.
type Config struct {
	Meta      *core.MetadataStore
	Policy    policy.Policy
	Collector *metrics.Collector

	Servers int
	// Classes partitions the pool into hardware classes (see
	// cluster.Options.Classes). Nil means one homogeneous "default" class
	// of Servers workers at speed 1.0.
	Classes        []profiles.Class
	SLOSec         float64
	NetLatencySec  float64
	Seed           int64
	SwapLatencySec float64
	ExecJitter     float64
	QueueFactor    float64

	RMIntervalSec float64 // Resource Manager period (paper: 10 s)
	LBIntervalSec float64 // Load Balancer refresh period

	// TimeScale compresses the wall-clock backend's real time
	// (wall = profiled × TimeScale); ignored by the simulator.
	TimeScale float64

	// OnTaskDemand, when non-nil, receives per-task arrival counts every
	// housekeeping second (the Proteus-like baseline scales each task
	// against this history).
	OnTaskDemand func(task pipeline.TaskID, count float64)

	// Telemetry, when non-nil, is the per-worker collector the backend feeds
	// with enqueue/batch/swap/fault events (see internal/telemetry). Nil
	// disables collection.
	Telemetry *telemetry.Collector
	// Tracer, when non-nil, samples requests into span trees.
	Tracer *telemetry.Tracer
}

func (c *Config) defaults() error {
	if c.Meta == nil {
		return errors.New("engine: Config.Meta is required")
	}
	if c.Policy == nil {
		c.Policy = policy.Opportunistic{}
	}
	if c.Collector == nil {
		return errors.New("engine: Config.Collector is required")
	}
	if c.RMIntervalSec == 0 {
		c.RMIntervalSec = 10
	}
	if c.LBIntervalSec == 0 {
		c.LBIntervalSec = 1
	}
	return nil
}

// Lifecycle errors shared by both backends.
var (
	ErrNotStarted = errors.New("engine: not started")
	ErrStopped    = errors.New("engine: stopped")
)

// Kind selects a backend implementation.
type Kind int

const (
	KindSimulated Kind = iota
	KindWallclock
)

// New builds the backend of the given kind. This is the single constructor
// behind loki.System and internal/experiments.Run.
func New(k Kind, cfg Config) (Engine, error) {
	switch k {
	case KindSimulated:
		return NewSimulated(cfg)
	case KindWallclock:
		return NewWallclock(cfg)
	default:
		return nil, fmt.Errorf("engine: unknown kind %d", k)
	}
}

// Engine is a serving backend. The lifecycle is
// Start → {Submit | Feed}* → Stop; Stop drains in-flight requests and is
// idempotent. ApplyPlan may be called at any point after construction (the
// Controller publishes through it, including for the pre-warm plan installed
// before Start).
type Engine interface {
	// ApplyPlan installs a plan and routing tables (the Controller's
	// publish target).
	ApplyPlan(plan *core.Plan, routes *core.Routes)

	// Start launches the backend's workers and housekeeping. The given
	// controller is stepped on its periodic intervals until Stop.
	Start(ctrl *core.Controller) error

	// Submit admits a single request at the backend's current time. On the
	// simulated backend the request is processed when virtual time next
	// advances (a Feed or Stop call).
	Submit() error

	// Feed plays a trace's Poisson arrival process, blocking until the last
	// arrival has been admitted — in virtual time on the simulator, in
	// (scaled) wall time on the live backend.
	Feed(tr *trace.Trace) error

	// Stop drains in-flight requests and shuts the backend down.
	Stop() error

	// Stats returns cumulative request totals.
	Stats() Stats

	// Now returns the backend's time in seconds since Start (virtual or
	// scaled wall time).
	Now() float64

	// ActiveServers counts workers currently hosting a model.
	ActiveServers() int

	// ActiveByClass counts workers currently hosting a model in each
	// hardware class, in class order (a single-element slice on
	// homogeneous pools).
	ActiveByClass() []int
}
