package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"loki/internal/cluster"
	"loki/internal/core"
	"loki/internal/fault"
	"loki/internal/ingress"
	"loki/internal/live"
	"loki/internal/metrics"
	"loki/internal/pipeline"
	"loki/internal/policy"
	"loki/internal/profiles"
	"loki/internal/sim"
	"loki/internal/telemetry"
	"loki/internal/trace"
)

// TenantConfig is the per-pipeline slice of a multi-tenant backend: its own
// Metadata Store, metrics collector, SLO, and drop policy. The host pool,
// clock, and network model are shared across tenants (MultiConfig).
type TenantConfig struct {
	Meta      *core.MetadataStore
	Policy    policy.Policy
	Collector *metrics.Collector
	SLOSec    float64

	// OnTaskDemand receives this tenant's per-task arrival counts every
	// housekeeping second (the Proteus-like baseline's per-task history).
	OnTaskDemand func(task pipeline.TaskID, count float64)

	// Admission, when non-nil, fronts every injection path of this tenant
	// (Submit and FeedAll alike): requests it refuses are shed — counted in
	// Stats.Shed and the collector's shed series, still part of the observed
	// demand the planner sees, but never queued.
	Admission *ingress.Admission

	// Tier is the tenant's service tier, echoed on every shed decision
	// (ingress.ShedError.Tier) so 429 responses carry which class of
	// traffic was refused.
	Tier int

	// Telemetry, when non-nil, is this tenant's per-worker collector; the
	// backend feeds it enqueue/batch/swap/fault events and samples it each
	// housekeeping second. Nil disables collection.
	Telemetry *telemetry.Collector
	// Tracer, when non-nil, samples this tenant's requests into span trees.
	Tracer *telemetry.Tracer
}

// MultiConfig assembles a multi-tenant backend: the shared pool-level knobs
// plus one TenantConfig per pipeline. Tenant order is significant — it must
// match the tenant order of the core.MultiController driving the backend.
type MultiConfig struct {
	// Servers is the shared pool size. Each tenant engine exposes this many
	// physical slots; the joint controller's grants keep the sum of active
	// workers within it.
	Servers int
	// Classes partitions the shared pool into hardware classes, identically
	// for every tenant (see cluster.Options.Classes). Nil means one
	// homogeneous "default" class.
	Classes        []profiles.Class
	NetLatencySec  float64
	Seed           int64
	SwapLatencySec float64
	ExecJitter     float64
	QueueFactor    float64
	RMIntervalSec  float64
	LBIntervalSec  float64

	// TimeScale compresses the wall-clock backend's real time; ignored by
	// the simulator.
	TimeScale float64

	// Faults, when non-nil, is the fault schedule injected into the shared
	// pool. Event times are anchored to the start of the first FeedAll (the
	// simulator schedules them as virtual-time events, the wall-clock
	// backend as scaled timers from Start). Every fault updates each
	// tenant's MetadataStore live counts and, when the controller
	// implements core.CapacityObserver, triggers a re-plan within a round.
	Faults *fault.Schedule

	// OnFault, when non-nil, observes every fault and recovery event with
	// the backend's time and a human-readable description (the lokiserve
	// status line).
	OnFault func(timeSec float64, desc string)

	Tenants []TenantConfig
}

func (c *MultiConfig) defaults() error {
	if len(c.Tenants) == 0 {
		return errors.New("engine: MultiConfig needs at least one tenant")
	}
	for i := range c.Tenants {
		t := &c.Tenants[i]
		if t.Meta == nil {
			return fmt.Errorf("engine: tenant %d: Meta is required", i)
		}
		if t.Collector == nil {
			return fmt.Errorf("engine: tenant %d: Collector is required", i)
		}
		if t.Policy == nil {
			t.Policy = policy.Opportunistic{}
		}
	}
	if c.RMIntervalSec == 0 {
		c.RMIntervalSec = 10
	}
	if c.LBIntervalSec == 0 {
		c.LBIntervalSec = 1
	}
	return nil
}

// MultiEngine is a serving backend hosting several pipelines on one shared
// pool and clock. Tenants are addressed by their index in
// MultiConfig.Tenants. The lifecycle mirrors Engine:
// Start → {Submit | Feed | FeedAll}* → Stop.
type MultiEngine interface {
	// ApplyPlan installs one tenant's plan and routing tables (the joint
	// controller's per-tenant publish target).
	ApplyPlan(tenant int, plan *core.Plan, routes *core.Routes)

	// Start launches workers and housekeeping; the given controller is
	// stepped jointly on the periodic intervals until Stop.
	Start(ctrl core.Control) error

	// Submit admits a single request for one tenant at the backend's
	// current time.
	Submit(tenant int) error

	// FeedAll plays one trace per tenant (indexed like MultiConfig.Tenants;
	// nil entries idle) as concurrent Poisson arrival processes on the
	// shared clock, blocking until the last arrival of the longest trace
	// has been admitted.
	FeedAll(traces []*trace.Trace) error

	// Stop drains in-flight requests of every tenant and shuts the backend
	// down.
	Stop() error

	// Stats returns one tenant's cumulative request totals.
	Stats(tenant int) Stats

	// Now returns the backend's shared time in seconds since Start.
	Now() float64

	// ActiveServers counts one tenant's workers currently hosting a model.
	ActiveServers(tenant int) int

	// ActiveByClass counts one tenant's workers currently hosting a model
	// in each hardware class, in class order.
	ActiveByClass(tenant int) []int
}

// NewMulti builds the multi-tenant backend of the given kind — the shared
// constructor behind loki.MultiSystem and the multi-tenant experiments.
func NewMulti(k Kind, cfg MultiConfig) (MultiEngine, error) {
	switch k {
	case KindSimulated:
		return newMultiSimulated(cfg)
	case KindWallclock:
		return newMultiWallclock(cfg)
	default:
		return nil, fmt.Errorf("engine: unknown kind %d", k)
	}
}

// multiSimulated hosts one cluster.Cluster per tenant on a single
// discrete-event clock. Virtual time advances only inside FeedAll and Stop,
// so the adapter must be driven from one goroutine. Seeds are offset per
// tenant (tenant i: cluster Seed+1+2i, arrivals Seed+2+2i) so tenant 0 of a
// one-tenant system reproduces the single-pipeline backend bit for bit.
type multiSimulated struct {
	cfg  MultiConfig
	eng  *sim.Engine
	cls  []*cluster.Cluster
	ctrl core.Control

	arrRngs []*rand.Rand
	started bool
	stopped bool
	stepErr error

	shed      []int64 // cumulative per-tenant shed counts
	shedFlush []int64 // shed since the last housekeeping flush (offered demand)

	// Fault injection: the pool-level fault state, the compiled timeline,
	// and whether FeedAll has armed it (events anchor to the first feed).
	fp          *faultPool
	timeline    []fault.Timed
	faultsArmed bool
}

func newMultiSimulated(cfg MultiConfig) (MultiEngine, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	eng := &sim.Engine{}
	m := &multiSimulated{cfg: cfg, eng: eng}
	for i, t := range cfg.Tenants {
		cl, err := cluster.New(eng, t.Meta, t.Policy, t.Collector, cluster.Options{
			Servers:        cfg.Servers,
			Classes:        cfg.Classes,
			SLOSec:         t.SLOSec,
			NetLatencySec:  cfg.NetLatencySec,
			Seed:           cfg.Seed + 1 + 2*int64(i),
			SwapLatencySec: cfg.SwapLatencySec,
			ExecJitter:     cfg.ExecJitter,
			QueueFactor:    cfg.QueueFactor,
			Telemetry:      t.Telemetry,
			Tracer:         t.Tracer,
		})
		if err != nil {
			return nil, fmt.Errorf("engine: tenant %d: %w", i, err)
		}
		m.cls = append(m.cls, cl)
	}
	m.shed = make([]int64, len(cfg.Tenants))
	m.shedFlush = make([]int64, len(cfg.Tenants))
	if cfg.Faults != nil {
		m.fp = newFaultPool(cfg.Servers, cfg.Classes)
		tl, err := compileFaults(cfg.Faults, m.fp)
		if err != nil {
			return nil, err
		}
		m.timeline = tl
	}
	return m, nil
}

// Fail, Recover, Slow, and Restore implement fault.Target on the shared
// pool: victims are chosen once at the pool level and applied to every
// tenant's cluster (each models the same physical machines), then the live
// per-class counts are pushed to the metadata stores and the controller.
func (m *multiSimulated) Fail(class, n int) []int {
	phys := m.fp.pickFail(class, n)
	for _, cl := range m.cls {
		for _, p := range phys {
			cl.SetWorkerDown(p)
		}
	}
	m.publishLive()
	return phys
}

func (m *multiSimulated) Recover(phys []int) {
	m.fp.recover(phys)
	for _, cl := range m.cls {
		for _, p := range phys {
			cl.SetWorkerUp(p)
		}
	}
	m.publishLive()
}

func (m *multiSimulated) Slow(class, n int, factor float64) []int {
	phys := m.fp.pickSlow(class, n)
	for _, cl := range m.cls {
		for _, p := range phys {
			cl.SetWorkerSpeedFactor(p, factor)
		}
	}
	return phys
}

func (m *multiSimulated) Restore(phys []int) {
	m.fp.restore(phys)
	for _, cl := range m.cls {
		for _, p := range phys {
			cl.SetWorkerSpeedFactor(p, 1)
		}
	}
}

// publishLive pushes the pool's per-class up counts to every tenant's
// MetadataStore (Snapshot reports them) and to the controller when it
// re-plans against live capacity.
func (m *multiSimulated) publishLive() {
	live := m.fp.live()
	var forMeta []int
	if m.fp.anyDown() {
		forMeta = live
	}
	for i := range m.cfg.Tenants {
		m.cfg.Tenants[i].Meta.SetLiveClassCounts(forMeta)
	}
	if co, ok := m.ctrl.(core.CapacityObserver); ok {
		co.ObserveCapacity(live)
	}
}

// admit consults tenant i's admission controller at the current virtual
// instant. A refused request is shed: counted, reported to the collector, and
// folded into the next demand observation (housekeepTenant), but never
// injected. Tenants without a controller always admit.
func (m *multiSimulated) admit(i int) (ok bool, retryAfterSec float64) {
	t := &m.cfg.Tenants[i]
	if t.Admission == nil {
		return true, 0
	}
	now := m.eng.Now()
	inj, comp, drop, _, _ := m.cls[i].Totals()
	ok, retry := t.Admission.Admit(now, inj-comp-drop)
	if ok {
		t.Collector.Admitted(now)
		return true, 0
	}
	m.shed[i]++
	m.shedFlush[i]++
	t.Collector.Shed(now)
	return false, retry
}

func (m *multiSimulated) ApplyPlan(tenant int, plan *core.Plan, routes *core.Routes) {
	m.cls[tenant].ApplyPlan(plan, routes)
}

func (m *multiSimulated) Start(ctrl core.Control) error {
	if m.started {
		return errors.New("engine: already started")
	}
	m.started = true
	m.ctrl = ctrl
	m.arrRngs = make([]*rand.Rand, len(m.cls))
	for i := range m.cls {
		m.arrRngs[i] = rand.New(rand.NewSource(m.cfg.Seed + 2 + 2*int64(i)))
	}
	return nil
}

func (m *multiSimulated) Submit(tenant int) error {
	if !m.started {
		return ErrNotStarted
	}
	if m.stopped {
		return ErrStopped
	}
	if ok, retry := m.admit(tenant); !ok {
		return &ingress.ShedError{RetryAfterSec: retry, Tier: m.cfg.Tenants[tenant].Tier}
	}
	m.cls[tenant].InjectRequest()
	return nil
}

// FeedAll schedules every tenant's arrivals plus the shared housekeeping
// ticks, then runs virtual time through the longest trace and drains
// in-flight requests. With a single tenant this is exactly the event program
// of the single-pipeline simulated backend.
func (m *multiSimulated) FeedAll(traces []*trace.Trace) error {
	if !m.started {
		return ErrNotStarted
	}
	if m.stopped {
		return ErrStopped
	}
	if len(traces) != len(m.cls) {
		return fmt.Errorf("engine: FeedAll got %d traces for %d tenants", len(traces), len(m.cls))
	}
	start := m.eng.Now()
	dur := 0.0
	any := false
	for _, tr := range traces {
		if tr == nil {
			continue
		}
		any = true
		if d := tr.Duration(); d > dur {
			dur = d
		}
	}
	if !any {
		return errors.New("engine: FeedAll needs at least one trace")
	}
	end := start + dur

	// Fault events: anchored to the first feed's start. Recoveries landing
	// beyond the trace end still fire during the drain (RunAll).
	if len(m.timeline) > 0 && !m.faultsArmed {
		m.faultsArmed = true
		for _, tc := range m.timeline {
			tc := tc
			m.eng.At(start+tc.At, func() {
				desc := tc.Fire(m)
				if m.cfg.OnFault != nil {
					m.cfg.OnFault(m.eng.Now(), desc)
				}
			})
		}
	}

	// Arrivals: per tenant, lazily chained Poisson events on the shared
	// clock keep the event heap small.
	for i, tr := range traces {
		if tr == nil {
			continue
		}
		cl := m.cls[i]
		arrivals := tr.Arrivals(m.arrRngs[i])
		var schedule func(j int)
		schedule = func(j int) {
			if j >= len(arrivals) {
				return
			}
			m.eng.At(start+arrivals[j], func() {
				if ok, _ := m.admit(i); ok {
					cl.InjectRequest()
				}
				schedule(j + 1)
			})
		}
		schedule(0)
	}

	// Per-second housekeeping: every tenant's demand report, heartbeat, and
	// demand sample, then one joint reactive controller step.
	var secTick func()
	secTick = func() {
		now := m.eng.Now()
		for i := range m.cls {
			rate := 0.0
			if traces[i] != nil {
				rate = traces[i].RateAt(now - start)
			}
			m.housekeepTenant(i, now, rate)
		}
		if err := m.ctrl.Step(false); err != nil && m.stepErr == nil {
			m.stepErr = err
		}
		if now+1 <= end {
			m.eng.After(1, secTick)
		}
	}
	m.eng.After(1, secTick)

	var lbTick func()
	lbTick = func() {
		m.ctrl.Rebalance()
		if m.eng.Now()+m.cfg.LBIntervalSec <= end {
			m.eng.After(m.cfg.LBIntervalSec, lbTick)
		}
	}
	m.eng.After(m.cfg.LBIntervalSec, lbTick)

	var rmTick func()
	rmTick = func() {
		if err := m.ctrl.Step(true); err != nil && m.stepErr == nil {
			m.stepErr = err
		}
		if m.eng.Now()+m.cfg.RMIntervalSec <= end {
			m.eng.After(m.cfg.RMIntervalSec, rmTick)
		}
	}
	m.eng.After(m.cfg.RMIntervalSec, rmTick)

	m.eng.Run(end)
	m.eng.RunAll()
	return m.stepErr
}

func (m *multiSimulated) housekeepTenant(i int, now, rateQPS float64) {
	t := &m.cfg.Tenants[i]
	cl := m.cls[i]
	// Offered demand: shed requests never reached the cluster, but the
	// planner must still see them or it could never scale out of overload.
	count := float64(cl.FlushDemand()) + float64(m.shedFlush[i])
	m.shedFlush[i] = 0
	t.Meta.ObserveDemandAt(now, count)
	if t.OnTaskDemand != nil {
		for task, n := range cl.FlushTaskArrivals() {
			t.OnTaskDemand(pipeline.TaskID(task), float64(n))
		}
	}
	t.Collector.SampleDemand(now, rateQPS)
	cl.Heartbeat()
}

func (m *multiSimulated) Stop() error {
	if !m.started || m.stopped {
		m.stopped = true
		return m.stepErr
	}
	m.stopped = true
	m.eng.RunAll()
	return m.stepErr
}

func (m *multiSimulated) Stats(tenant int) Stats {
	injected, completed, dropped, rerouted, swaps := m.cls[tenant].Totals()
	return Stats{
		Injected:  injected,
		Completed: completed,
		Dropped:   dropped,
		Rerouted:  rerouted,
		Swaps:     swaps,
		Shed:      m.shed[tenant],
	}
}

func (m *multiSimulated) Now() float64 { return m.eng.Now() }

func (m *multiSimulated) ActiveServers(tenant int) int { return m.cls[tenant].ActiveServers() }

func (m *multiSimulated) ActiveByClass(tenant int) []int { return m.cls[tenant].ActiveByClass() }

// multiWallclock hosts one live.Engine per tenant. Real time is naturally
// shared, so tenant engines run their own goroutine workers and FeedAll
// plays the traces concurrently. Only tenant 0's housekeeping loop drives
// the joint controller (the others pass a nil control), so the
// MultiController is stepped exactly once per interval.
type multiWallclock struct {
	cfg MultiConfig
	es  []*live.Engine

	mu      sync.Mutex
	started bool

	// Fault injection: pool-level fault state, compiled timeline, the
	// controller observing capacity, and the injector goroutine lifecycle.
	fp        *faultPool
	timeline  []fault.Timed
	ctrl      core.Control
	faultDone chan struct{}
	faultWG   sync.WaitGroup
}

func newMultiWallclock(cfg MultiConfig) (MultiEngine, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	m := &multiWallclock{cfg: cfg}
	for i, t := range cfg.Tenants {
		e, err := live.New(t.Meta, t.Policy, t.Collector, live.Options{
			Servers:       cfg.Servers,
			Classes:       cfg.Classes,
			SLOSec:        t.SLOSec,
			NetLatencySec: cfg.NetLatencySec,
			Seed:          cfg.Seed + 1 + 2*int64(i),
			TimeScale:     cfg.TimeScale,
			RMIntervalSec: cfg.RMIntervalSec,
			LBIntervalSec: cfg.LBIntervalSec,
			QueueFactor:   cfg.QueueFactor,
			OnTaskDemand:  t.OnTaskDemand,
			Admission:     t.Admission,
			Tier:          t.Tier,
			Telemetry:     t.Telemetry,
			Tracer:        t.Tracer,
		})
		if err != nil {
			return nil, fmt.Errorf("engine: tenant %d: %w", i, err)
		}
		m.es = append(m.es, e)
	}
	if cfg.Faults != nil {
		m.fp = newFaultPool(cfg.Servers, cfg.Classes)
		tl, err := compileFaults(cfg.Faults, m.fp)
		if err != nil {
			return nil, err
		}
		m.timeline = tl
	}
	return m, nil
}

// Fail, Recover, Slow, and Restore implement fault.Target — see the
// simulated twin for the semantics. They are only called from the single
// fault-injector goroutine, so the pool state needs no extra locking; the
// per-engine mutations take each engine's own lock.
func (m *multiWallclock) Fail(class, n int) []int {
	phys := m.fp.pickFail(class, n)
	for _, e := range m.es {
		for _, p := range phys {
			e.SetWorkerDown(p)
		}
	}
	m.publishLive()
	return phys
}

func (m *multiWallclock) Recover(phys []int) {
	m.fp.recover(phys)
	for _, e := range m.es {
		for _, p := range phys {
			e.SetWorkerUp(p)
		}
	}
	m.publishLive()
}

func (m *multiWallclock) Slow(class, n int, factor float64) []int {
	phys := m.fp.pickSlow(class, n)
	for _, e := range m.es {
		for _, p := range phys {
			e.SetWorkerSpeedFactor(p, factor)
		}
	}
	return phys
}

func (m *multiWallclock) Restore(phys []int) {
	m.fp.restore(phys)
	for _, e := range m.es {
		for _, p := range phys {
			e.SetWorkerSpeedFactor(p, 1)
		}
	}
}

func (m *multiWallclock) publishLive() {
	live := m.fp.live()
	var forMeta []int
	if m.fp.anyDown() {
		forMeta = live
	}
	for i := range m.cfg.Tenants {
		m.cfg.Tenants[i].Meta.SetLiveClassCounts(forMeta)
	}
	if co, ok := m.ctrl.(core.CapacityObserver); ok {
		co.ObserveCapacity(live)
	}
}

// runFaults fires the compiled timeline on scaled wall time until Stop.
func (m *multiWallclock) runFaults() {
	defer m.faultWG.Done()
	ts := m.cfg.TimeScale
	if ts == 0 {
		ts = 1.0
	}
	begin := time.Now()
	for _, tc := range m.timeline {
		wait := time.Until(begin.Add(time.Duration(tc.At * ts * float64(time.Second))))
		if wait > 0 {
			select {
			case <-m.faultDone:
				return
			case <-time.After(wait):
			}
		} else {
			select {
			case <-m.faultDone:
				return
			default:
			}
		}
		desc := tc.Fire(m)
		if m.cfg.OnFault != nil {
			m.cfg.OnFault(m.es[0].Now(), desc)
		}
	}
}

func (m *multiWallclock) ApplyPlan(tenant int, plan *core.Plan, routes *core.Routes) {
	m.es[tenant].ApplyPlan(plan, routes)
}

func (m *multiWallclock) Start(ctrl core.Control) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return errors.New("engine: already started")
	}
	for i, e := range m.es {
		var c core.Control
		if i == 0 {
			c = ctrl
		}
		if err := e.Start(c); err != nil {
			for j := 0; j < i; j++ {
				m.es[j].Stop()
			}
			return err
		}
	}
	m.started = true
	if len(m.timeline) > 0 {
		m.ctrl = ctrl
		m.faultDone = make(chan struct{})
		m.faultWG.Add(1)
		go m.runFaults()
	}
	return nil
}

func (m *multiWallclock) Submit(tenant int) error {
	return m.es[tenant].Submit()
}

func (m *multiWallclock) FeedAll(traces []*trace.Trace) error {
	if len(traces) != len(m.es) {
		return fmt.Errorf("engine: FeedAll got %d traces for %d tenants", len(traces), len(m.es))
	}
	any := false
	for _, tr := range traces {
		if tr != nil {
			any = true
		}
	}
	if !any {
		return errors.New("engine: FeedAll needs at least one trace")
	}
	var wg sync.WaitGroup
	errs := make([]error, len(traces))
	for i, tr := range traces {
		if tr == nil {
			continue
		}
		wg.Add(1)
		go func(i int, tr *trace.Trace) {
			defer wg.Done()
			errs[i] = m.es[i].Feed(tr)
		}(i, tr)
	}
	wg.Wait()
	return errors.Join(errs...)
}

func (m *multiWallclock) Stop() error {
	m.mu.Lock()
	if m.faultDone != nil {
		close(m.faultDone)
		m.faultDone = nil
	}
	m.mu.Unlock()
	m.faultWG.Wait()
	var errs []error
	for _, e := range m.es {
		errs = append(errs, e.Stop())
	}
	return errors.Join(errs...)
}

func (m *multiWallclock) Stats(tenant int) Stats {
	injected, completed, dropped, rerouted, shed := m.es[tenant].Totals()
	return Stats{
		Injected:  injected,
		Completed: completed,
		Dropped:   dropped,
		Rerouted:  rerouted,
		Shed:      shed,
	}
}

func (m *multiWallclock) Now() float64 { return m.es[0].Now() }

func (m *multiWallclock) ActiveServers(tenant int) int { return m.es[tenant].ActiveServers() }

func (m *multiWallclock) ActiveByClass(tenant int) []int { return m.es[tenant].ActiveByClass() }
