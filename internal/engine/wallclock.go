package engine

import (
	"loki/internal/core"
	"loki/internal/live"
	"loki/internal/trace"
)

// wallclock adapts the real-time goroutine engine (internal/live) to the
// Engine interface. Unlike the simulator it is safe to Submit and read Stats
// concurrently with a running Feed.
type wallclock struct {
	e *live.Engine
}

// NewWallclock builds the wall-clock backend. The live engine has no swap
// or execution-jitter modeling (real scheduling jitter stands in for both),
// so those Config fields are ignored.
func NewWallclock(cfg Config) (Engine, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	e, err := live.New(cfg.Meta, cfg.Policy, cfg.Collector, live.Options{
		Servers:       cfg.Servers,
		Classes:       cfg.Classes,
		SLOSec:        cfg.SLOSec,
		NetLatencySec: cfg.NetLatencySec,
		Seed:          cfg.Seed + 1,
		TimeScale:     cfg.TimeScale,
		RMIntervalSec: cfg.RMIntervalSec,
		LBIntervalSec: cfg.LBIntervalSec,
		QueueFactor:   cfg.QueueFactor,
		OnTaskDemand:  cfg.OnTaskDemand,
		Telemetry:     cfg.Telemetry,
		Tracer:        cfg.Tracer,
	})
	if err != nil {
		return nil, err
	}
	return &wallclock{e: e}, nil
}

func (w *wallclock) ApplyPlan(plan *core.Plan, routes *core.Routes) { w.e.ApplyPlan(plan, routes) }

func (w *wallclock) Start(ctrl *core.Controller) error {
	// A nil *Controller must reach live.Engine as a nil interface, or its
	// nil-ctrl guard would pass a typed nil on to Step.
	if ctrl == nil {
		return w.e.Start(nil)
	}
	return w.e.Start(ctrl)
}

func (w *wallclock) Submit() error { return w.e.Submit() }

func (w *wallclock) Feed(tr *trace.Trace) error { return w.e.Feed(tr) }

func (w *wallclock) Stop() error { return w.e.Stop() }

func (w *wallclock) Stats() Stats {
	injected, completed, dropped, rerouted, shed := w.e.Totals()
	return Stats{
		Injected:  injected,
		Completed: completed,
		Dropped:   dropped,
		Rerouted:  rerouted,
		Shed:      shed,
	}
}

func (w *wallclock) Now() float64 { return w.e.Now() }

func (w *wallclock) ActiveServers() int { return w.e.ActiveServers() }

func (w *wallclock) ActiveByClass() []int { return w.e.ActiveByClass() }
