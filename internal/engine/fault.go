package engine

import (
	"loki/internal/fault"
	"loki/internal/profiles"
)

// faultPool tracks the shared pool's fault state at the physical-server
// level. Every tenant backend models the same physical machines (tenant
// worker i is the same server in each engine), so victim selection happens
// once here and the same physical ids are applied to every tenant's engine —
// all views of the pool agree on which servers are down or slow.
//
// Selection is deterministic: within a class, the highest-index healthy
// worker fails (or straggles) first, and recovery restores exactly the ids
// the fault returned.
type faultPool struct {
	classes []profiles.Class
	offset  []int // first physical index of each class
	down    []bool
	slowed  []bool
}

func newFaultPool(servers int, classes []profiles.Class) *faultPool {
	if classes == nil {
		classes = profiles.DefaultClasses(servers)
	}
	if len(classes) == 1 && classes[0].Count == 0 {
		// Homogeneous compatibility path: a single class whose Count
		// defers to the configured pool size.
		cl := classes[0]
		cl.Count = servers
		classes = []profiles.Class{cl}
	}
	p := &faultPool{classes: classes}
	total := 0
	for _, cl := range classes {
		p.offset = append(p.offset, total)
		total += cl.Count
	}
	p.down = make([]bool, total)
	p.slowed = make([]bool, total)
	return p
}

// classIndex resolves a class name for fault.Compile.
func (p *faultPool) classIndex(name string) (int, bool) {
	for i, cl := range p.classes {
		if cl.Name == name {
			return i, true
		}
	}
	return 0, false
}

// pickFail marks up to n healthy workers of the class down (n <= 0: the
// whole class) and returns their physical ids, highest index first.
func (p *faultPool) pickFail(class, n int) []int {
	return p.pick(class, n, p.down, p.down)
}

// pickSlow marks up to n healthy, full-speed workers of the class as
// stragglers and returns their physical ids, highest index first.
func (p *faultPool) pickSlow(class, n int) []int {
	return p.pick(class, n, p.slowed, p.down)
}

// pick selects up to n workers of the class that are neither marked nor
// excluded, marking them as it goes; n <= 0 selects every eligible worker.
func (p *faultPool) pick(class, n int, mark, exclude []bool) []int {
	lo := p.offset[class]
	hi := lo + p.classes[class].Count
	if n <= 0 {
		n = hi - lo
	}
	var out []int
	for i := hi - 1; i >= lo && len(out) < n; i-- {
		if mark[i] || exclude[i] {
			continue
		}
		mark[i] = true
		out = append(out, i)
	}
	return out
}

func (p *faultPool) recover(phys []int) {
	for _, i := range phys {
		p.down[i] = false
	}
}

func (p *faultPool) restore(phys []int) {
	for _, i := range phys {
		p.slowed[i] = false
	}
}

// live returns the per-class count of servers currently up.
func (p *faultPool) live() []int {
	out := make([]int, len(p.classes))
	for c, cl := range p.classes {
		n := cl.Count
		for i := p.offset[c]; i < p.offset[c]+cl.Count; i++ {
			if p.down[i] {
				n--
			}
		}
		out[c] = n
	}
	return out
}

// anyDown reports whether some server is currently crashed.
func (p *faultPool) anyDown() bool {
	for _, d := range p.down {
		if d {
			return true
		}
	}
	return false
}

// compileFaults validates a schedule against the pool's classes and returns
// the engine-timeline actions.
func compileFaults(sched *fault.Schedule, p *faultPool) ([]fault.Timed, error) {
	return fault.Compile(sched, p.classIndex)
}
