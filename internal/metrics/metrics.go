// Package metrics collects the evaluation metrics of §6.1: system accuracy
// (mean accuracy over answered requests), SLO violation ratio (requests that
// finish late or are dropped), and cluster utilization (active workers over
// cluster size), both as whole-run summaries and as time series for the
// Figure 5/6 plots.
package metrics

import (
	"fmt"
	"math"
	"strings"
	"sync"
)

// Collector aggregates request outcomes into fixed-width time buckets.
// All methods are safe for concurrent use, so live readers (System.Report
// on the wall-clock engine) may summarize while workers record.
type Collector struct {
	BucketSec float64
	Servers   int // cluster size, for utilization

	mu      sync.Mutex
	buckets []bucket

	// Hardware-class accounting, armed by SetClasses: per-class occupancy
	// sums (server-seconds, at the engines' one-second sampling cadence)
	// and the accrued dollar cost.
	classNames []string
	classCost  []float64 // $/server-hour, aligned with classNames
	classSum   []float64
	classN     int
	costHours  float64 // accrued dollars (cost/hour × hours)

	// latHist counts answered requests per latency bucket (LatencyBounds
	// upper bounds plus a +Inf overflow bucket), feeding the summary's
	// latency quantiles.
	latHist []int64
}

// LatencyBounds are the upper bounds (seconds) of the response-time
// histogram every collector records in Completed; the histogram has one
// extra +Inf bucket past the last bound. Fixed bounds keep per-tenant
// histograms mergeable elementwise (see Merge).
var LatencyBounds = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

type bucket struct {
	arrivals    int
	admitted    int // passed an admission controller (zero when none is armed)
	shed        int // refused by admission control before entering the system
	completed   int // answered in time
	late        int // answered past the deadline
	dropped     int // preemptively dropped or lost
	violByArr   int // late or dropped, attributed to the arrival's bucket
	accuracySum float64
	accuracyN   int
	latencySum  float64
	latencyMax  float64
	demandSum   float64 // integral of offered demand (QPS × samples)
	demandN     int
	serversSum  float64
	serversN    int
}

// NewCollector creates a collector with the given bucket width.
func NewCollector(bucketSec float64, servers int) *Collector {
	return &Collector{BucketSec: bucketSec, Servers: servers}
}

func (c *Collector) at(t float64) *bucket {
	i := int(t / c.BucketSec)
	if i < 0 {
		i = 0
	}
	for len(c.buckets) <= i {
		c.buckets = append(c.buckets, bucket{})
	}
	return &c.buckets[i]
}

// Arrival records a request entering the system at time t.
func (c *Collector) Arrival(t float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.at(t).arrivals++
}

// Admitted records a request passing admission control at time t. It is
// recorded in addition to Arrival (admitted requests are arrivals), only on
// systems with an admission controller armed — on systems without one both
// admitted and shed stay zero, which is how reports distinguish "no
// admission control" from "nothing shed".
func (c *Collector) Admitted(t float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.at(t).admitted++
}

// Shed records a request refused by admission control at time t. Shed
// requests never entered the system: they are not arrivals, and they carry
// no SLO violation — attainment is measured over the admitted population,
// with the shed series reported alongside.
func (c *Collector) Shed(t float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.at(t).shed++
}

// Completed records a request answered at time t. late marks completion past
// its deadline; latency is the end-to-end response time; accuracy is the
// mean end-to-end accuracy of its answers.
func (c *Collector) Completed(t float64, late bool, latency, accuracy float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.at(t)
	if late {
		b.late++
		// Also charge the violation to the bucket the request *arrived* in
		// (t-latency), so windowed attainment can pair violations with the
		// same population as the arrival counts.
		c.at(t-latency).violByArr++
	} else {
		b.completed++
	}
	b.latencySum += latency
	if latency > b.latencyMax {
		b.latencyMax = latency
	}
	if c.latHist == nil {
		c.latHist = make([]int64, len(LatencyBounds)+1)
	}
	i := 0
	for i < len(LatencyBounds) && latency > LatencyBounds[i] {
		i++
	}
	c.latHist[i]++
	if !math.IsNaN(accuracy) {
		b.accuracySum += accuracy
		b.accuracyN++
	}
}

// Dropped records a request dropped (fully or partially) at time t; arrived
// is when the request entered the system, which is the bucket the violation
// is charged to for windowed attainment (see Point.Violations).
func (c *Collector) Dropped(t, arrived float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.at(t).dropped++
	c.at(arrived).violByArr++
}

// SampleDemand records the instantaneous offered demand at time t.
func (c *Collector) SampleDemand(t, qps float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.at(t)
	b.demandSum += qps
	b.demandN++
}

// SampleServers records the number of active servers at time t.
func (c *Collector) SampleServers(t float64, servers int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.at(t)
	b.serversSum += float64(servers)
	b.serversN++
}

// SetClasses arms hardware-class accounting: names and per-server-hour
// costs, in class order. Until it is called, SampleClassServers is a no-op
// and the summary carries no class or cost columns — the homogeneous
// zero-cost compatibility path.
func (c *Collector) SetClasses(names []string, costPerHour []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.classNames = append([]string(nil), names...)
	c.classCost = append([]float64(nil), costPerHour...)
	c.classSum = make([]float64, len(names))
}

// SampleClassServers records one second of per-class occupancy (the engines
// sample on their one-second housekeeping cadence): counts[i] active servers
// of class i, each accruing its class's per-hour cost for that second.
func (c *Collector) SampleClassServers(counts []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.classSum == nil || len(counts) != len(c.classSum) {
		return
	}
	c.classN++
	for i, n := range counts {
		c.classSum[i] += float64(n)
		c.costHours += float64(n) * c.classCost[i] / 3600
	}
}

// Point is one time-bucket of the series.
type Point struct {
	TimeSec        float64
	DemandQPS      float64
	ServedQPS      float64 // completed (on time or late) per second
	Accuracy       float64 // mean accuracy of answers in the bucket
	ViolationRatio float64 // (late+dropped)/arrivals
	Utilization    float64 // active servers / cluster size
	Servers        float64
	// GoodputQPS counts only on-time completions per second (ServedQPS
	// minus the late ones) — the overload-sweep metric that shedding is
	// meant to protect.
	GoodputQPS float64
	Arrivals   int // requests arriving in the bucket
	// Shed counts requests refused by admission control in the bucket; they
	// are not part of Arrivals (they never entered the system).
	Shed int
	// Violations counts requests that finished late or were dropped,
	// attributed to the bucket they *arrived* in (late/dropped above are
	// attributed to completion/drop time). Pairing Violations with Arrivals
	// gives exact request-weighted SLO attainment over a window of buckets.
	Violations int
}

// Series returns per-bucket points.
func (c *Collector) Series() []Point {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Point, len(c.buckets))
	for i, b := range c.buckets {
		p := Point{TimeSec: float64(i) * c.BucketSec, Arrivals: b.arrivals, Shed: b.shed, Violations: b.violByArr}
		if b.demandN > 0 {
			p.DemandQPS = b.demandSum / float64(b.demandN)
		}
		p.ServedQPS = float64(b.completed+b.late) / c.BucketSec
		p.GoodputQPS = float64(b.completed) / c.BucketSec
		if b.accuracyN > 0 {
			p.Accuracy = b.accuracySum / float64(b.accuracyN)
		}
		if b.arrivals > 0 {
			p.ViolationRatio = float64(b.late+b.dropped) / float64(b.arrivals)
		}
		if b.serversN > 0 {
			p.Servers = b.serversSum / float64(b.serversN)
			if c.Servers > 0 {
				p.Utilization = p.Servers / float64(c.Servers)
			}
		}
		out[i] = p
	}
	return out
}

// Summary is the whole-run aggregate.
type Summary struct {
	Arrivals       int
	Admitted       int // passed admission control (zero when none is armed)
	Shed           int // refused by admission control; offered load = Arrivals + Shed
	Completed      int // answered on time
	Late           int
	Dropped        int
	ViolationRatio float64 // (late+dropped)/arrivals
	MeanAccuracy   float64 // over answered requests
	MinAccuracy    float64 // lowest bucket mean (the "max accuracy drop" metric)
	MeanLatency    float64 // over answered requests (seconds)
	MaxLatency     float64
	MeanServers    float64
	MinServers     float64
	MaxServers     float64
	MeanUtiliz     float64

	// Hardware-class accounting (nil/zero unless the collector's SetClasses
	// armed it): mean active servers per class, the class names, and the
	// accrued server cost in dollars (Σ active × $/h × hours).
	ClassNames         []string
	MeanServersByClass []float64
	CostHours          float64

	// LatencyHistogram counts answered requests per LatencyBounds bucket
	// (plus the final +Inf bucket); LatencyP50 and LatencyP99 are response
	// -time quantiles interpolated from it (seconds). Nil/zero before the
	// first answer.
	LatencyHistogram []int64
	LatencyP50       float64
	LatencyP99       float64
}

// histogramQuantile interpolates the q-quantile from a LatencyBounds-shaped
// bucket histogram, Prometheus histogram_quantile style: the target rank is
// located in its bucket and placed linearly between the bucket's bounds. A
// rank landing in the +Inf bucket reports the last finite bound.
func histogramQuantile(hist []int64, q float64) float64 {
	var total int64
	for _, n := range hist {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, n := range hist {
		cum += n
		if float64(cum) >= rank {
			if i >= len(LatencyBounds) {
				return LatencyBounds[len(LatencyBounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = LatencyBounds[i-1]
			}
			hi := LatencyBounds[i]
			if n == 0 {
				return hi
			}
			frac := (rank - float64(cum-n)) / float64(n)
			return lo + (hi-lo)*frac
		}
	}
	return LatencyBounds[len(LatencyBounds)-1]
}

// Summarize aggregates the whole run.
func (c *Collector) Summarize() Summary {
	c.mu.Lock()
	defer c.mu.Unlock()
	var s Summary
	accSum := 0.0
	accN := 0
	srvSum, srvN := 0.0, 0
	s.MinAccuracy = math.Inf(1)
	s.MinServers = math.Inf(1)
	latSum := 0.0
	for _, b := range c.buckets {
		s.Arrivals += b.arrivals
		s.Admitted += b.admitted
		s.Shed += b.shed
		s.Completed += b.completed
		s.Late += b.late
		s.Dropped += b.dropped
		accSum += b.accuracySum
		accN += b.accuracyN
		latSum += b.latencySum
		if b.latencyMax > s.MaxLatency {
			s.MaxLatency = b.latencyMax
		}
		if b.accuracyN > 0 {
			if m := b.accuracySum / float64(b.accuracyN); m < s.MinAccuracy {
				s.MinAccuracy = m
			}
		}
		if b.serversN > 0 {
			mean := b.serversSum / float64(b.serversN)
			srvSum += mean
			srvN++
			if mean < s.MinServers {
				s.MinServers = mean
			}
			if mean > s.MaxServers {
				s.MaxServers = mean
			}
		}
	}
	if s.Arrivals > 0 {
		s.ViolationRatio = float64(s.Late+s.Dropped) / float64(s.Arrivals)
	}
	if accN > 0 {
		s.MeanAccuracy = accSum / float64(accN)
	}
	if n := s.Completed + s.Late; n > 0 {
		s.MeanLatency = latSum / float64(n)
	}
	if srvN > 0 {
		s.MeanServers = srvSum / float64(srvN)
		if c.Servers > 0 {
			s.MeanUtiliz = s.MeanServers / float64(c.Servers)
		}
	}
	if math.IsInf(s.MinAccuracy, 1) {
		s.MinAccuracy = 0
	}
	if math.IsInf(s.MinServers, 1) {
		s.MinServers = 0
	}
	if c.classN > 0 {
		s.ClassNames = append([]string(nil), c.classNames...)
		s.MeanServersByClass = make([]float64, len(c.classSum))
		for i, sum := range c.classSum {
			s.MeanServersByClass[i] = sum / float64(c.classN)
		}
		s.CostHours = c.costHours
	}
	if c.latHist != nil {
		s.LatencyHistogram = append([]int64(nil), c.latHist...)
		s.LatencyP50 = histogramQuantile(c.latHist, 0.50)
		s.LatencyP99 = histogramQuantile(c.latHist, 0.99)
	}
	return s
}

// Merge combines per-tenant summaries into one pool-wide aggregate:
// request counts sum; the violation ratio is recomputed from the summed
// counts; mean accuracy and latency are weighted by each summary's answered
// requests; the server columns add across summaries (tenants partition one
// pool, so the sum is the pool's activity — Min/Max sums are bounds, not
// exact joint extrema, since the per-tenant extremes need not coincide in
// time). MeanUtiliz is left zero: the per-tenant utilizations already share
// the pool denominator, so an aggregate would double-count.
func Merge(sums ...Summary) Summary {
	var out Summary
	accSum, latSum := 0.0, 0.0
	answered := 0
	for _, s := range sums {
		out.Arrivals += s.Arrivals
		out.Admitted += s.Admitted
		out.Shed += s.Shed
		out.Completed += s.Completed
		out.Late += s.Late
		out.Dropped += s.Dropped
		n := s.Completed + s.Late
		accSum += s.MeanAccuracy * float64(n)
		latSum += s.MeanLatency * float64(n)
		answered += n
		if s.MaxLatency > out.MaxLatency {
			out.MaxLatency = s.MaxLatency
		}
		out.MeanServers += s.MeanServers
		out.MinServers += s.MinServers
		out.MaxServers += s.MaxServers
		out.CostHours += s.CostHours
		// Per-class means add across tenants sharing one pool, like the
		// server columns; the first summary with classes fixes the names.
		if len(s.MeanServersByClass) > 0 {
			if out.MeanServersByClass == nil {
				out.ClassNames = append([]string(nil), s.ClassNames...)
				out.MeanServersByClass = make([]float64, len(s.MeanServersByClass))
			}
			if len(s.MeanServersByClass) == len(out.MeanServersByClass) {
				for i, v := range s.MeanServersByClass {
					out.MeanServersByClass[i] += v
				}
			}
		}
		// Latency histograms share the fixed LatencyBounds layout, so they
		// merge by elementwise sum; the quantiles are recomputed below from
		// the pooled population.
		if len(s.LatencyHistogram) > 0 {
			if out.LatencyHistogram == nil {
				out.LatencyHistogram = make([]int64, len(s.LatencyHistogram))
			}
			if len(s.LatencyHistogram) == len(out.LatencyHistogram) {
				for i, v := range s.LatencyHistogram {
					out.LatencyHistogram[i] += v
				}
			}
		}
	}
	if out.LatencyHistogram != nil {
		out.LatencyP50 = histogramQuantile(out.LatencyHistogram, 0.50)
		out.LatencyP99 = histogramQuantile(out.LatencyHistogram, 0.99)
	}
	if out.Arrivals > 0 {
		out.ViolationRatio = float64(out.Late+out.Dropped) / float64(out.Arrivals)
	}
	if answered > 0 {
		out.MeanAccuracy = accSum / float64(answered)
		out.MeanLatency = latSum / float64(answered)
	}
	minAcc := math.Inf(1)
	for _, s := range sums {
		if s.Completed+s.Late > 0 && s.MinAccuracy < minAcc {
			minAcc = s.MinAccuracy
		}
	}
	if !math.IsInf(minAcc, 1) {
		out.MinAccuracy = minAcc
	}
	return out
}

// String renders the summary in one line.
func (s Summary) String() string {
	return fmt.Sprintf("arrivals=%d completed=%d late=%d dropped=%d viol=%.4f acc=%.4f servers=%.1f util=%.2f",
		s.Arrivals, s.Completed, s.Late, s.Dropped, s.ViolationRatio, s.MeanAccuracy, s.MeanServers, s.MeanUtiliz)
}

// FormatSeries renders series points as an aligned table, one row per
// bucket, for the experiment CLIs.
func FormatSeries(points []Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %12s %12s %10s %10s %12s\n",
		"time(s)", "demand(qps)", "served(qps)", "accuracy", "util", "slo-viol")
	for _, p := range points {
		fmt.Fprintf(&b, "%10.0f %12.1f %12.1f %10.4f %10.2f %12.4f\n",
			p.TimeSec, p.DemandQPS, p.ServedQPS, p.Accuracy, p.Utilization, p.ViolationRatio)
	}
	return b.String()
}
