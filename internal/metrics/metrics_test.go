package metrics

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestViolationRatioCountsLateAndDropped(t *testing.T) {
	c := NewCollector(10, 4)
	for i := 0; i < 10; i++ {
		c.Arrival(1)
	}
	for i := 0; i < 6; i++ {
		c.Completed(2, false, 0.1, 0.9)
	}
	c.Completed(2, true, 0.4, 0.8) // late
	c.Dropped(3, 1)
	c.Dropped(3, 1)
	c.Dropped(3, 1)
	s := c.Summarize()
	if s.Arrivals != 10 || s.Completed != 6 || s.Late != 1 || s.Dropped != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.ViolationRatio-0.4) > 1e-12 {
		t.Fatalf("violation ratio = %g, want 0.4", s.ViolationRatio)
	}
}

// Violations are charged to the bucket the request arrived in, even when the
// late completion or drop lands in a later bucket — the pairing that makes
// windowed attainment exact.
func TestViolationsAttributedToArrivalBucket(t *testing.T) {
	c := NewCollector(10, 4)
	c.Arrival(9.5)
	c.Completed(10.2, true, 0.7, 1.0) // arrived 9.5, completed late next bucket
	c.Arrival(9.8)
	c.Dropped(11, 9.8) // dropped in the next bucket too
	pts := c.Series()
	if len(pts) != 2 {
		t.Fatalf("got %d buckets, want 2", len(pts))
	}
	if pts[0].Arrivals != 2 || pts[0].Violations != 2 {
		t.Fatalf("arrival bucket: arrivals=%d violations=%d, want 2/2", pts[0].Arrivals, pts[0].Violations)
	}
	if pts[1].Violations != 0 {
		t.Fatalf("completion bucket charged %d violations, want 0", pts[1].Violations)
	}
	// Completion-time attribution of the legacy fields is unchanged: the
	// late answer is served in bucket 1 (ServedQPS = 1 answer / 10 s), not
	// in the arrival bucket.
	if pts[0].ServedQPS != 0 || math.Abs(pts[1].ServedQPS-0.1) > 1e-12 {
		t.Fatalf("legacy served attribution moved: served=%g,%g want 0,0.1", pts[0].ServedQPS, pts[1].ServedQPS)
	}
}

func TestAccuracyAveragesOverAnswered(t *testing.T) {
	c := NewCollector(10, 4)
	c.Arrival(0)
	c.Arrival(0)
	c.Completed(1, false, 0.1, 0.8)
	c.Completed(1, true, 0.3, 1.0)
	s := c.Summarize()
	if math.Abs(s.MeanAccuracy-0.9) > 1e-12 {
		t.Fatalf("accuracy = %g, want 0.9", s.MeanAccuracy)
	}
	if math.Abs(s.MeanLatency-0.2) > 1e-12 {
		t.Fatalf("latency = %g, want 0.2", s.MeanLatency)
	}
}

func TestNaNAccuracySkipped(t *testing.T) {
	c := NewCollector(10, 4)
	c.Arrival(0)
	c.Completed(1, false, 0.1, math.NaN())
	s := c.Summarize()
	if s.MeanAccuracy != 0 {
		t.Fatalf("NaN accuracy leaked into the mean: %g", s.MeanAccuracy)
	}
}

func TestUtilizationFromServerSamples(t *testing.T) {
	c := NewCollector(10, 20)
	c.SampleServers(1, 10)
	c.SampleServers(2, 10)
	s := c.Summarize()
	if math.Abs(s.MeanUtiliz-0.5) > 1e-12 {
		t.Fatalf("utilization = %g, want 0.5", s.MeanUtiliz)
	}
}

func TestSeriesBucketsByTime(t *testing.T) {
	c := NewCollector(10, 4)
	c.Arrival(5)
	c.Completed(5, false, 0.1, 1.0)
	c.Arrival(15)
	c.Dropped(15, 15)
	c.SampleDemand(5, 100)
	c.SampleDemand(15, 200)
	pts := c.Series()
	if len(pts) != 2 {
		t.Fatalf("got %d buckets, want 2", len(pts))
	}
	if pts[0].ViolationRatio != 0 || pts[1].ViolationRatio != 1 {
		t.Fatalf("bucket violation ratios = %g, %g", pts[0].ViolationRatio, pts[1].ViolationRatio)
	}
	if pts[0].DemandQPS != 100 || pts[1].DemandQPS != 200 {
		t.Fatalf("bucket demands = %g, %g", pts[0].DemandQPS, pts[1].DemandQPS)
	}
}

func TestMinAccuracyTracksWorstBucket(t *testing.T) {
	c := NewCollector(10, 4)
	c.Arrival(1)
	c.Completed(1, false, 0.1, 1.0)
	c.Arrival(11)
	c.Completed(11, false, 0.1, 0.7)
	s := c.Summarize()
	if math.Abs(s.MinAccuracy-0.7) > 1e-12 {
		t.Fatalf("min accuracy = %g, want 0.7", s.MinAccuracy)
	}
}

func TestNegativeTimeClampsToFirstBucket(t *testing.T) {
	c := NewCollector(10, 4)
	c.Arrival(-5)
	if c.Summarize().Arrivals != 1 {
		t.Fatal("negative-time arrival lost")
	}
}

func TestFormatSeriesHasHeaderAndRows(t *testing.T) {
	c := NewCollector(10, 4)
	c.Arrival(0)
	c.Completed(1, false, 0.1, 0.5)
	out := FormatSeries(c.Series())
	if !strings.Contains(out, "slo-viol") {
		t.Fatal("missing header")
	}
	if got := strings.Count(out, "\n"); got != 2 {
		t.Fatalf("got %d lines, want 2 (header + 1 row)", got)
	}
}

// TestSummaryConservation: completed + late + dropped never exceeds
// arrivals when events are recorded consistently.
func TestSummaryConservation(t *testing.T) {
	f := func(nOK, nLate, nDrop uint8) bool {
		c := NewCollector(5, 4)
		total := int(nOK) + int(nLate) + int(nDrop)
		for i := 0; i < total; i++ {
			c.Arrival(float64(i % 50))
		}
		for i := 0; i < int(nOK); i++ {
			c.Completed(float64(i%50), false, 0.1, 1)
		}
		for i := 0; i < int(nLate); i++ {
			c.Completed(float64(i%50), true, 0.6, 1)
		}
		for i := 0; i < int(nDrop); i++ {
			c.Dropped(float64(i%50), float64(i%50))
		}
		s := c.Summarize()
		if s.Completed+s.Late+s.Dropped != s.Arrivals {
			return false
		}
		if total > 0 && (s.ViolationRatio < 0 || s.ViolationRatio > 1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Merge must sum counts, recompute the violation ratio, and weight accuracy
// and latency by answered requests.
func TestMergeSummaries(t *testing.T) {
	a := Summary{
		Arrivals: 100, Completed: 80, Late: 10, Dropped: 10,
		ViolationRatio: 0.2, MeanAccuracy: 0.9, MinAccuracy: 0.85,
		MeanLatency: 0.1, MaxLatency: 0.3,
		MeanServers: 6, MinServers: 4, MaxServers: 8,
	}
	b := Summary{
		Arrivals: 300, Completed: 270, Late: 0, Dropped: 30,
		ViolationRatio: 0.1, MeanAccuracy: 0.8, MinAccuracy: 0.7,
		MeanLatency: 0.2, MaxLatency: 0.25,
		MeanServers: 10, MinServers: 9, MaxServers: 12,
	}
	m := Merge(a, b)
	if m.Arrivals != 400 || m.Completed != 350 || m.Late != 10 || m.Dropped != 40 {
		t.Fatalf("count sums wrong: %+v", m)
	}
	if want := 50.0 / 400; m.ViolationRatio != want {
		t.Fatalf("ViolationRatio = %v, want %v", m.ViolationRatio, want)
	}
	// 90 answered at 0.9, 270 answered at 0.8.
	if want := (90*0.9 + 270*0.8) / 360; math.Abs(m.MeanAccuracy-want) > 1e-12 {
		t.Fatalf("MeanAccuracy = %v, want %v", m.MeanAccuracy, want)
	}
	if want := (90*0.1 + 270*0.2) / 360; math.Abs(m.MeanLatency-want) > 1e-12 {
		t.Fatalf("MeanLatency = %v, want %v", m.MeanLatency, want)
	}
	if m.MinAccuracy != 0.7 || m.MaxLatency != 0.3 {
		t.Fatalf("extrema wrong: %+v", m)
	}
	if m.MeanServers != 16 || m.MinServers != 13 || m.MaxServers != 20 {
		t.Fatalf("server sums wrong: %+v", m)
	}
	if got := Merge(); got.Arrivals != 0 || got.ViolationRatio != 0 {
		t.Fatalf("empty merge not zero: %+v", got)
	}
}

// Merge has silently dropped newly added count fields before (a field added to
// Summary without a matching line in Merge just vanishes from aggregates).
// This test walks every int field reflectively: seed two summaries with
// distinct nonzero values in each, merge, and require the sum — so a future
// field that Merge forgets fails here by name.
func TestMergeSumsEveryIntField(t *testing.T) {
	mk := func(base int) Summary {
		var s Summary
		v := reflect.ValueOf(&s).Elem()
		for i := 0; i < v.NumField(); i++ {
			if v.Field(i).Kind() == reflect.Int {
				v.Field(i).SetInt(int64(base + i))
			}
		}
		return s
	}
	a, b := mk(10), mk(1000)
	m := Merge(a, b)
	va, vb, vm := reflect.ValueOf(a), reflect.ValueOf(b), reflect.ValueOf(m)
	typ := reflect.TypeOf(a)
	for i := 0; i < typ.NumField(); i++ {
		if typ.Field(i).Type.Kind() != reflect.Int {
			continue
		}
		want := va.Field(i).Int() + vb.Field(i).Int()
		if got := vm.Field(i).Int(); got != want {
			t.Errorf("Merge dropped Summary.%s: got %d, want %d", typ.Field(i).Name, got, want)
		}
	}
}

// Merge must sum latency histograms elementwise and recompute the quantiles
// from the pooled population — a histogram bucket Merge drops would skew
// every aggregate latency percentile.
func TestMergeLatencyHistogram(t *testing.T) {
	a := NewCollector(30, 4)
	b := NewCollector(30, 4)
	for i := 0; i < 90; i++ {
		a.Completed(1, false, 0.02, 1.0) // bucket le=0.025
	}
	for i := 0; i < 10; i++ {
		b.Completed(1, true, 2.0, 1.0) // bucket le=2.5
	}
	sa, sb := a.Summarize(), b.Summarize()
	if sa.LatencyP50 <= 0.01 || sa.LatencyP50 > 0.025 {
		t.Fatalf("per-tenant LatencyP50 = %g, want in (0.01, 0.025]", sa.LatencyP50)
	}
	m := Merge(sa, sb)
	if len(m.LatencyHistogram) != len(LatencyBounds)+1 {
		t.Fatalf("merged histogram has %d buckets, want %d", len(m.LatencyHistogram), len(LatencyBounds)+1)
	}
	var total int64
	for _, n := range m.LatencyHistogram {
		total += n
	}
	if total != 100 {
		t.Fatalf("merged histogram holds %d answers, want 100", total)
	}
	// The p50 of the pooled population stays in a's bucket; the p99 lands in
	// b's slow bucket — so the quantiles really were recomputed, not copied.
	if m.LatencyP50 <= 0.01 || m.LatencyP50 > 0.025 {
		t.Fatalf("merged LatencyP50 = %g, want in (0.01, 0.025]", m.LatencyP50)
	}
	if m.LatencyP99 <= 1 || m.LatencyP99 > 2.5 {
		t.Fatalf("merged LatencyP99 = %g, want in (1, 2.5]", m.LatencyP99)
	}
}

// Shed requests are accounted beside, not inside, the admitted population.
func TestShedAndAdmittedCounters(t *testing.T) {
	c := NewCollector(10, 4)
	for i := 0; i < 3; i++ {
		c.Arrival(1)
		c.Admitted(1)
	}
	c.Shed(2)
	c.Shed(12) // next bucket
	s := c.Summarize()
	if s.Arrivals != 3 || s.Admitted != 3 || s.Shed != 2 {
		t.Fatalf("summary = %+v, want arrivals=admitted=3 shed=2", s)
	}
	pts := c.Series()
	if len(pts) != 2 || pts[0].Shed != 1 || pts[1].Shed != 1 {
		t.Fatalf("per-bucket shed = %+v", pts)
	}
}

// GoodputQPS counts only on-time completions; ServedQPS keeps counting both.
func TestGoodputExcludesLate(t *testing.T) {
	c := NewCollector(10, 4)
	c.Arrival(0)
	c.Arrival(0)
	c.Completed(1, false, 0.1, 1.0)
	c.Completed(1, true, 0.6, 1.0)
	pts := c.Series()
	if math.Abs(pts[0].ServedQPS-0.2) > 1e-12 {
		t.Fatalf("ServedQPS = %g, want 0.2", pts[0].ServedQPS)
	}
	if math.Abs(pts[0].GoodputQPS-0.1) > 1e-12 {
		t.Fatalf("GoodputQPS = %g, want 0.1 (the on-time answer only)", pts[0].GoodputQPS)
	}
}
