package experiments

import (
	"fmt"
	"strings"
	"time"

	"loki/internal/core"
	"loki/internal/metrics"
	"loki/internal/pipeline"
	"loki/internal/policy"
	"loki/internal/profiles"
	"loki/internal/trace"
)

// ---------------------------------------------------------------------------
// Figure 1: capacity phases of hardware + accuracy scaling.
// ---------------------------------------------------------------------------

// Fig1Point is one demand level of the Figure 1 sweep.
type Fig1Point struct {
	DemandQPS    float64
	Mode         core.Mode
	Servers      int
	Accuracy     float64 // expected system accuracy of the plan
	Task1Acc     float64 // flow-weighted accuracy of the detection task
	Task2Acc     float64 // flow-weighted accuracy of the classification task
	ServedFrac   float64
	SolveMillis  float64
	Phase        int // 1 = hardware scaling, 2 = task-2 degradation, 3 = task-1 degradation
	PhaseComment string
}

// Fig1Result is the full Figure 1 reproduction.
type Fig1Result struct {
	Points []Fig1Point
	// Phase boundaries (QPS at which the system transitions).
	HardwareLimitQPS float64 // end of phase 1
	Phase2LimitQPS   float64 // end of phase 2 (task-1 accuracy still maximal)
	MaxCapacityQPS   float64 // end of phase 3 (largest fully-served demand)
	// Headline ratios the paper reports.
	Phase2CapacityGain float64 // Phase2Limit / HardwareLimit (paper: ≈2.7×)
	TotalCapacityGain  float64 // MaxCapacity / HardwareLimit (paper: ≈3.15×)
	AccuracyAtPhase2   float64 // system accuracy at the end of phase 2 (paper: ≈0.87)
}

// Figure1 sweeps demand over the two-task traffic chain on a fixed cluster
// and reports how Loki's Resource Manager moves through the three scaling
// phases of Figure 1.
func Figure1(servers int, sloSec float64, steps int) (*Fig1Result, error) {
	g := profiles.TrafficChain()
	prof := (&profiles.Profiler{}).ProfileGraph(g, profiles.Batches)
	meta := core.NewMetadataStore(g, prof, sloSec, profiles.Batches)
	alloc, err := core.NewAllocator(meta, core.AllocatorOptions{
		Servers: servers, NetLatencySec: 0.002, KeepWarm: true,
		Headroom: 0.30, SolveTimeLimit: time.Second,
		DisableStall: true, // capacity probes prefer exhaustive solves
	})
	if err != nil {
		return nil, err
	}

	res := &Fig1Result{}
	maxDemand := 2200.0
	for i := 0; i <= steps; i++ {
		d := maxDemand * float64(i) / float64(steps)
		t0 := time.Now()
		plan, err := alloc.Allocate(d)
		if err != nil {
			return nil, err
		}
		pt := Fig1Point{
			DemandQPS:   d,
			Mode:        plan.Mode,
			Servers:     plan.ServersUsed,
			Accuracy:    plan.ExpectedAccuracy,
			ServedFrac:  plan.ServedFraction,
			SolveMillis: float64(time.Since(t0).Microseconds()) / 1000,
		}
		pt.Task1Acc, pt.Task2Acc = taskAccuracies(plan)
		switch {
		case plan.Mode == core.HardwareScaling:
			pt.Phase = 1
			pt.PhaseComment = "hardware scaling, max accuracy"
		case plan.Mode == core.AccuracyScaling && pt.Task1Acc > 0.995:
			pt.Phase = 2
			pt.PhaseComment = "accuracy scaling on task 2 only"
		case plan.Mode == core.AccuracyScaling:
			pt.Phase = 3
			pt.PhaseComment = "accuracy scaling on both tasks"
		default:
			pt.Phase = 4
			pt.PhaseComment = "saturated"
		}
		res.Points = append(res.Points, pt)

		if pt.Phase == 1 {
			res.HardwareLimitQPS = d
		}
		if pt.Phase <= 2 {
			res.Phase2LimitQPS = d
			res.AccuracyAtPhase2 = pt.Accuracy
		}
		if plan.Mode != core.Saturated {
			res.MaxCapacityQPS = d
		}
	}
	if res.HardwareLimitQPS > 0 {
		res.Phase2CapacityGain = res.Phase2LimitQPS / res.HardwareLimitQPS
		res.TotalCapacityGain = res.MaxCapacityQPS / res.HardwareLimitQPS
	}
	return res, nil
}

// taskAccuracies returns the flow-weighted mean accuracy of task 0 and of
// the final task across the plan's path flows.
func taskAccuracies(plan *core.Plan) (t0, tLast float64) {
	w0, wL, f := 0.0, 0.0, 0.0
	for _, pf := range plan.PathFlows {
		if len(pf.Tasks) == 0 {
			continue
		}
		f += pf.Fraction
		w0 += pf.Fraction * variantAccOf(plan, pf.Tasks[0], pf.Variants[0])
		last := len(pf.Tasks) - 1
		wL += pf.Fraction * variantAccOf(plan, pf.Tasks[last], pf.Variants[last])
	}
	if f > 0 {
		return w0 / f, wL / f
	}
	return 1, 1
}

func variantAccOf(plan *core.Plan, task pipeline.TaskID, variant int) float64 {
	for _, a := range plan.Assignments {
		if a.Task == task && a.Variant == variant {
			return a.Accuracy
		}
	}
	return 1
}

// FormatFigure1 renders the sweep as the figure's series.
func FormatFigure1(r *Fig1Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %7s %8s %9s %9s %9s %7s  %s\n",
		"demand", "servers", "acc", "task1acc", "task2acc", "served", "phase", "regime")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%10.0f %7d %8.4f %9.4f %9.4f %9.3f %7d  %s\n",
			p.DemandQPS, p.Servers, p.Accuracy, p.Task1Acc, p.Task2Acc, p.ServedFrac, p.Phase, p.PhaseComment)
	}
	fmt.Fprintf(&b, "\nhardware-scaling limit : %6.0f QPS (paper: ≈560)\n", r.HardwareLimitQPS)
	fmt.Fprintf(&b, "phase-2 limit          : %6.0f QPS (paper: ≈1550)\n", r.Phase2LimitQPS)
	fmt.Fprintf(&b, "max capacity           : %6.0f QPS (paper: ≈1765)\n", r.MaxCapacityQPS)
	fmt.Fprintf(&b, "phase-2 capacity gain  : %6.2f×   (paper: ≈2.7×)\n", r.Phase2CapacityGain)
	fmt.Fprintf(&b, "total capacity gain    : %6.2f×   (paper: ≈3.15×)\n", r.TotalCapacityGain)
	fmt.Fprintf(&b, "accuracy at phase-2 end: %6.1f%%  drop %4.1f%% (paper: ≈13%%)\n",
		100*r.AccuracyAtPhase2, 100*(1-r.AccuracyAtPhase2))
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 3: accuracy-throughput tradeoff of the EfficientNet family.
// ---------------------------------------------------------------------------

// Fig3Row is one EfficientNet variant's profile point.
type Fig3Row struct {
	Variant     string
	Accuracy    float64 // raw (top-1-equivalent)
	MaxQPS      float64
	BestBatch   int
	LatencyB1Ms float64
}

// Figure3 regenerates the accuracy-throughput tradeoff (profiled on the
// simulated device instead of a V100).
func Figure3() []Fig3Row {
	pr := &profiles.Profiler{}
	var rows []Fig3Row
	for _, v := range profiles.EfficientNet() {
		v := v
		p := pr.ProfileVariant(&v, profiles.Batches)
		q, b := p.MaxQPS()
		l1, _ := p.Latency(1)
		rows = append(rows, Fig3Row{
			Variant:     v.Name,
			Accuracy:    v.RawAccuracy,
			MaxQPS:      q,
			BestBatch:   b,
			LatencyB1Ms: l1 * 1e3,
		})
	}
	return rows
}

// FormatFigure3 renders the tradeoff table.
func FormatFigure3(rows []Fig3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %10s %12s %10s %14s\n", "variant", "top1(%)", "max qps", "batch", "latency@1 (ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %10.1f %12.1f %10d %14.2f\n", r.Variant, r.Accuracy, r.MaxQPS, r.BestBatch, r.LatencyB1Ms)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figures 5 & 6: end-to-end comparisons against InferLine and Proteus.
// ---------------------------------------------------------------------------

// ComparisonResult bundles the three systems' runs on one pipeline.
type ComparisonResult struct {
	Pipeline  string
	Loki      *RunResult
	InferLine *RunResult
	Proteus   *RunResult

	// Headline numbers (paper: ≥10× fewer violations than Proteus, ≈2.67×
	// fewer servers off-peak, 2.5-2.7× capacity vs InferLine).
	ViolationGainVsProteus  float64
	ServerGainVsProteus     float64
	CapacityGainVsInferLine float64
}

// CompareConfig parameterizes Figure 5/6 runs.
type CompareConfig struct {
	TrafficNotSocial bool
	Servers          int
	SLOSec           float64
	Seed             int64
	TraceSteps       int
	StepSec          float64
	PeakQPS          float64
}

// Comparison runs Loki, InferLine-like, and Proteus-like on the same trace
// and substrate (Figure 5 for the traffic pipeline, Figure 6 for social
// media).
func Comparison(cfg CompareConfig) (*ComparisonResult, error) {
	if cfg.Servers == 0 {
		cfg.Servers = 20
	}
	if cfg.SLOSec == 0 {
		cfg.SLOSec = 0.250
	}
	if cfg.TraceSteps == 0 {
		cfg.TraceSteps = 144
	}
	if cfg.StepSec == 0 {
		cfg.StepSec = 10
	}

	g := profiles.SocialMedia()
	tr := trace.TwitterLike(cfg.Seed, cfg.TraceSteps, cfg.StepSec)
	if cfg.TrafficNotSocial {
		g = profiles.TrafficTree()
		tr = trace.AzureLike(cfg.Seed, cfg.TraceSteps, cfg.StepSec)
	}
	if cfg.PeakQPS == 0 {
		// Scale the trace so the peak lands beyond the hardware-scaling
		// limit but within accuracy-scaling capacity — the regime where the
		// three systems differ (the vertical lines in Figures 5 and 6). The
		// social pipeline's variant families span a wider throughput range,
		// so its peak sits higher.
		cfg.PeakQPS = 1100
		if !cfg.TrafficNotSocial {
			cfg.PeakQPS = 1600
		}
	}
	tr = tr.ScaleToPeak(cfg.PeakQPS)

	out := &ComparisonResult{Pipeline: g.Name}
	for _, ap := range []Approach{Loki, InferLine, Proteus} {
		res, err := Run(RunConfig{
			Graph: g, Trace: tr, Approach: ap,
			Servers: cfg.Servers, SLOSec: cfg.SLOSec, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", ap, err)
		}
		switch ap {
		case Loki:
			out.Loki = res
		case InferLine:
			out.InferLine = res
		case Proteus:
			out.Proteus = res
		}
	}

	if v := out.Loki.Summary.ViolationRatio; v > 0 {
		out.ViolationGainVsProteus = out.Proteus.Summary.ViolationRatio / v
	}
	if s := out.Loki.Summary.MinServers; s > 0 {
		out.ServerGainVsProteus = out.Proteus.Summary.MinServers / s
	}
	// Capacity gain vs InferLine: the demand at which each system's
	// violation ratio crosses 10%, read from the demand-vs-violation series.
	lokiCap := servedCapacity(out.Loki.Series)
	inferCap := servedCapacity(out.InferLine.Series)
	if inferCap > 0 {
		out.CapacityGainVsInferLine = lokiCap / inferCap
	}
	return out, nil
}

// servedCapacity estimates the largest demand a run served with a bucket
// violation ratio below 10%. Buckets that merely drained leftover work
// (served far below offered demand) do not count.
func servedCapacity(series []metrics.Point) float64 {
	capQPS := 0.0
	for _, p := range series {
		if p.ViolationRatio < 0.10 && p.ServedQPS >= 0.5*p.DemandQPS && p.DemandQPS > capQPS {
			capQPS = p.DemandQPS
		}
	}
	return capQPS
}

// FormatComparison renders Figure 5/6 as summary plus aligned series.
func FormatComparison(r *ComparisonResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline: %s\n\n", r.Pipeline)
	fmt.Fprintf(&b, "%-11s %9s %9s %9s %9s %9s\n", "system", "acc", "slo-viol", "servers", "min-srv", "rerouted")
	for _, rr := range []*RunResult{r.Loki, r.InferLine, r.Proteus} {
		s := rr.Summary
		fmt.Fprintf(&b, "%-11s %9.4f %9.4f %9.1f %9.0f %9d\n",
			rr.Approach.String(), s.MeanAccuracy, s.ViolationRatio, s.MeanServers, s.MinServers, rr.Rerouted)
	}
	fmt.Fprintf(&b, "\nSLO-violation reduction vs Proteus : %5.1f× (paper: ≥10×)\n", r.ViolationGainVsProteus)
	fmt.Fprintf(&b, "off-peak server reduction vs Proteus: %5.2f× (paper: ≈2.67×)\n", r.ServerGainVsProteus)
	fmt.Fprintf(&b, "capacity gain vs InferLine          : %5.2f× (paper: ≈2.5-2.7×)\n", r.CapacityGainVsInferLine)
	for _, rr := range []*RunResult{r.Loki, r.InferLine, r.Proteus} {
		fmt.Fprintf(&b, "\n--- %s timeseries ---\n%s", rr.Approach, metrics.FormatSeries(rr.Series))
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 7: load balancer / early-dropping ablation.
// ---------------------------------------------------------------------------

// Fig7Row is one ablation arm.
type Fig7Row struct {
	Policy         string
	ViolationRatio float64
	Accuracy       float64
	Dropped        int64
	Rerouted       int64
}

// Figure7 compares the four §5.2 mechanisms under a bursty overload that
// stresses the latency budgets (the regime the ablation isolates).
func Figure7(seed int64) ([]Fig7Row, error) {
	g := profiles.TrafficTree()
	// A plateau near capacity with a burst well above it: early dropping
	// only matters when some requests genuinely cannot make their SLOs, and
	// the differences between the mechanisms show at the overload boundary.
	tr := &trace.Trace{Interval: 5, QPS: make([]float64, 72)}
	for i := range tr.QPS {
		switch {
		case i < 24:
			tr.QPS[i] = 1100
		case i < 40:
			tr.QPS[i] = 1600
		default:
			tr.QPS[i] = 1100
		}
	}
	pols := []policy.Policy{policy.NoDrop{}, policy.LastTask{}, policy.PerTask{}, policy.Opportunistic{}}
	var rows []Fig7Row
	for _, pol := range pols {
		res, err := Run(RunConfig{
			Graph: g, Trace: tr, Approach: Loki, Policy: pol, Seed: seed,
			// Deep queues isolate the policies themselves: with shallow
			// queues the overflow cap acts as an implicit dropper and
			// masks the no-early-dropping arm's cost.
			QueueFactor: 8,
			// The four arms differ by fractions of a percent; a roomy solve
			// budget (with the stall cutoff off, so no wall-clock boundary
			// can cut a solve short under load) lets every MILP reach its
			// incumbent regardless of machine speed, keeping the
			// comparison deterministic.
			SolveTimeLimit: 2 * time.Second,
			DisableStall:   true,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig7Row{
			Policy:         pol.Name(),
			ViolationRatio: res.Summary.ViolationRatio,
			Accuracy:       res.Summary.MeanAccuracy,
			Dropped:        res.Dropped,
			Rerouted:       res.Rerouted,
		})
	}
	return rows, nil
}

// FormatFigure7 renders the ablation.
func FormatFigure7(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %10s %10s %10s %10s\n", "policy", "slo-viol", "accuracy", "dropped", "rerouted")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %10.4f %10.4f %10d %10d\n", r.Policy, r.ViolationRatio, r.Accuracy, r.Dropped, r.Rerouted)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 8: SLO sensitivity.
// ---------------------------------------------------------------------------

// Fig8Row is one SLO setting.
type Fig8Row struct {
	SLOMs          float64
	AvgAccuracy    float64
	MaxAccDrop     float64 // degradation from max at peak demand
	ViolationRatio float64
	Feasible       bool
}

// Figure8 sweeps the pipeline latency SLO for the traffic-analysis pipeline
// (paper: 200-400 ms; below 200 ms the pipeline is infeasible).
func Figure8(seed int64, sloMs []float64) ([]Fig8Row, error) {
	if len(sloMs) == 0 {
		sloMs = []float64{150, 200, 250, 300, 350, 400}
	}
	g := profiles.TrafficTree()
	tr := trace.AzureLike(seed, 120, 5).ScaleToPeak(1100)
	var rows []Fig8Row
	for _, ms := range sloMs {
		res, err := Run(RunConfig{
			Graph: g, Trace: tr, Approach: Loki, Seed: seed, SLOSec: ms / 1000,
		})
		if err != nil {
			// Below ≈200 ms even batch-1 latencies of the fastest variants
			// exceed the halved compute budget: infeasible, as the paper
			// reports.
			rows = append(rows, Fig8Row{SLOMs: ms, Feasible: false})
			continue
		}
		s := res.Summary
		rows = append(rows, Fig8Row{
			SLOMs:          ms,
			AvgAccuracy:    s.MeanAccuracy,
			MaxAccDrop:     1 - s.MinAccuracy,
			ViolationRatio: s.ViolationRatio,
			Feasible:       true,
		})
	}
	return rows, nil
}

// FormatFigure8 renders the sweep.
func FormatFigure8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %12s %14s %12s\n", "slo(ms)", "avg-acc(%)", "max-drop(%)", "slo-viol")
	for _, r := range rows {
		if !r.Feasible {
			fmt.Fprintf(&b, "%8.0f %12s %14s %12s\n", r.SLOMs, "infeasible", "-", "-")
			continue
		}
		fmt.Fprintf(&b, "%8.0f %12.2f %14.2f %12.4f\n", r.SLOMs, 100*r.AvgAccuracy, 100*r.MaxAccDrop, r.ViolationRatio)
	}
	return b.String()
}
