package experiments

import (
	"fmt"
	"strings"
	"time"

	"loki/internal/core"
	"loki/internal/engine"
	"loki/internal/metrics"
	"loki/internal/pipeline"
	"loki/internal/profiles"
	"loki/internal/trace"
)

// MultiTenantConfig describes the shared-pool contention experiment: two
// pipelines (traffic analysis and social media, the paper's two evaluation
// workloads) co-located on one cluster, with a flash-crowd spike injected
// into the traffic pipeline mid-run.
type MultiTenantConfig struct {
	Servers    int
	SLOSec     float64
	Seed       int64
	TraceSteps int
	StepSec    float64
	// PeakA and PeakB are the two traces' steady peaks (QPS).
	PeakA, PeakB float64
	// SpikeMult multiplies pipeline A's rate over the middle fifth of the
	// run (≤ 1 disables the spike).
	SpikeMult float64
	// ShareA and ShareB are the guaranteed pool fractions under contention
	// (0 = split the unreserved fraction equally).
	ShareA, ShareB float64
}

func (c *MultiTenantConfig) defaults() {
	if c.Servers == 0 {
		c.Servers = 20
	}
	if c.SLOSec == 0 {
		c.SLOSec = 0.250
	}
	if c.TraceSteps == 0 {
		c.TraceSteps = 48
	}
	if c.StepSec == 0 {
		c.StepSec = 10
	}
	if c.PeakA == 0 {
		c.PeakA = 350
	}
	if c.PeakB == 0 {
		c.PeakB = 250
	}
	if c.SpikeMult == 0 {
		c.SpikeMult = 3
	}
}

// TenantOutcome is one pipeline's share of a multi-tenant run.
type TenantOutcome struct {
	Name    string
	Summary metrics.Summary
	// MinGrant/MaxGrant bound the servers the joint allocator granted this
	// pipeline across adaptation rounds; FinalGrant is the standing grant.
	MinGrant, MaxGrant, FinalGrant int
}

// MultiTenantResult aggregates the contention experiment.
type MultiTenantResult struct {
	Tenants []TenantOutcome
	// GrantHistory is the per-allocation grant vector (one row per joint
	// allocation, in step order).
	GrantHistory [][]int
	// Allocates counts MILP invocations across both tenants.
	Allocates int
}

// MultiTenant runs the shared-pool contention experiment on the
// discrete-event simulator: both pipelines feed concurrently, pipeline A
// spikes mid-run, and the joint allocator re-partitions the pool on each
// adaptation round. It reports the SLO attainment each tenant keeps while
// the pool is contended — the multi-tenant analogue of the paper's Figure
// 5/6 serving runs.
func MultiTenant(cfg MultiTenantConfig) (*MultiTenantResult, error) {
	cfg.defaults()

	specs := []struct {
		name  string
		graph func() *pipeline.Graph
		peak  float64
		share float64
	}{
		{"traffic", profiles.TrafficTree, cfg.PeakA, cfg.ShareA},
		{"social", profiles.SocialMedia, cfg.PeakB, cfg.ShareB},
	}

	prof := &profiles.Profiler{Seed: cfg.Seed}
	mcfg := engine.MultiConfig{
		Servers:       cfg.Servers,
		NetLatencySec: 0.002,
		Seed:          cfg.Seed,
	}
	var tenants []*core.Tenant
	var cols []*metrics.Collector
	for _, sp := range specs {
		g := sp.graph()
		meta := core.NewMetadataStore(g, prof.ProfileGraph(g, profiles.Batches), cfg.SLOSec, profiles.Batches)
		alloc, err := core.NewAllocator(meta, core.AllocatorOptions{
			Servers:        cfg.Servers,
			NetLatencySec:  0.002,
			KeepWarm:       true,
			Headroom:       0.30,
			SolveTimeLimit: 500 * time.Millisecond,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: tenant %q: %w", sp.name, err)
		}
		col := metrics.NewCollector(30, cfg.Servers)
		cols = append(cols, col)
		mcfg.Tenants = append(mcfg.Tenants, engine.TenantConfig{
			Meta: meta, Collector: col, SLOSec: cfg.SLOSec,
		})
		tenants = append(tenants, &core.Tenant{
			Name: sp.name, Meta: meta, Alloc: alloc,
			MinShare: sp.share, RouteHeadroom: 0.30,
		})
	}

	eng, err := engine.NewMulti(engine.KindSimulated, mcfg)
	if err != nil {
		return nil, err
	}
	for i, t := range tenants {
		i := i
		t.Publish = func(plan *core.Plan, routes *core.Routes) { eng.ApplyPlan(i, plan, routes) }
	}
	ctrl, err := core.NewMultiController(cfg.Servers, tenants)
	if err != nil {
		return nil, err
	}
	res := &MultiTenantResult{}
	ctrl.OnGrants = func(step int, grants []int) {
		res.GrantHistory = append(res.GrantHistory, grants)
	}

	trA := trace.AzureLike(cfg.Seed, cfg.TraceSteps, cfg.StepSec).ScaleToPeak(cfg.PeakA)
	if cfg.SpikeMult > 1 {
		trA = trA.WithSpike(0.4, 0.2, cfg.SpikeMult)
	}
	trB := trace.TwitterLike(cfg.Seed+1, cfg.TraceSteps, cfg.StepSec).ScaleToPeak(cfg.PeakB)

	// Pre-warm for the opening rates, then serve both traces concurrently.
	tenants[0].Meta.ObserveDemand(trA.QPS[0])
	tenants[1].Meta.ObserveDemand(trB.QPS[0])
	if err := ctrl.Step(true); err != nil {
		return nil, err
	}
	if err := eng.Start(ctrl); err != nil {
		return nil, err
	}
	if err := eng.FeedAll([]*trace.Trace{trA, trB}); err != nil {
		return nil, err
	}
	if err := eng.Stop(); err != nil {
		return nil, err
	}

	final := ctrl.Grants()
	for i, sp := range specs {
		out := TenantOutcome{
			Name:       sp.name,
			Summary:    cols[i].Summarize(),
			FinalGrant: final[i],
		}
		for _, row := range res.GrantHistory {
			g := row[i]
			if out.MinGrant == 0 || g < out.MinGrant {
				out.MinGrant = g
			}
			if g > out.MaxGrant {
				out.MaxGrant = g
			}
		}
		res.Tenants = append(res.Tenants, out)
	}
	res.Allocates = ctrl.Allocates()
	return res, nil
}

// FormatMultiTenant renders the contention experiment as a per-tenant
// table plus the grant timeline.
func FormatMultiTenant(r *MultiTenantResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %10s %8s %18s\n",
		"pipeline", "arrivals", "completed", "slo-viol", "accuracy", "servers", "grant min/max/end")
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, "%-10s %10d %10d %10.4f %10.4f %8.1f %12d/%d/%d\n",
			t.Name, t.Summary.Arrivals, t.Summary.Completed+t.Summary.Late,
			t.Summary.ViolationRatio, t.Summary.MeanAccuracy, t.Summary.MeanServers,
			t.MinGrant, t.MaxGrant, t.FinalGrant)
	}
	fmt.Fprintf(&b, "\njoint allocations: %d (MILP solves %d)\ngrant timeline:", len(r.GrantHistory), r.Allocates)
	for _, row := range r.GrantHistory {
		fmt.Fprintf(&b, " %v", row)
	}
	b.WriteString("\n")
	return b.String()
}
