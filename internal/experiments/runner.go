// Package experiments assembles full serving runs — pipeline, workload
// trace, controller (Loki or a baseline), cluster — and the per-figure
// drivers that regenerate every table and figure of the paper's evaluation
// (§6). The CLIs in cmd/ and the benchmarks in bench_test.go are thin
// wrappers over this package.
package experiments

import (
	"fmt"
	"time"

	"loki/internal/baselines"
	"loki/internal/core"
	"loki/internal/engine"
	"loki/internal/metrics"
	"loki/internal/pipeline"
	"loki/internal/policy"
	"loki/internal/profiles"
	"loki/internal/trace"
)

// Approach selects the resource-management strategy under test.
type Approach int

// The three systems compared in §6.2.
const (
	Loki      Approach = iota // hardware + pipeline-aware accuracy scaling
	InferLine                 // hardware scaling only (fixed variants)
	Proteus                   // pipeline-agnostic per-task accuracy scaling
)

// String names the approach.
func (a Approach) String() string {
	switch a {
	case Loki:
		return "loki"
	case InferLine:
		return "inferline"
	case Proteus:
		return "proteus"
	default:
		return "unknown"
	}
}

// Backend selects the serving substrate a run executes on. Both backends
// implement the same engine.Engine interface; the run wiring is identical.
type Backend = engine.Kind

const (
	// Simulated runs on the discrete-event simulator in virtual time
	// (the default, and what every figure experiment uses).
	Simulated = engine.KindSimulated
	// Wallclock runs on the real-time goroutine engine (internal/live),
	// taking TimeScale × trace-duration of wall time.
	Wallclock = engine.KindWallclock
)

// RunConfig describes one end-to-end serving run.
type RunConfig struct {
	Graph    *pipeline.Graph
	Trace    *trace.Trace
	Approach Approach
	Backend  Backend
	Policy   policy.Policy // nil means opportunistic rerouting (Loki default)

	Servers int
	// Classes partitions the cluster into hardware classes (nil = one
	// homogeneous "default" class of Servers workers); when set, Servers is
	// derived from the class counts.
	Classes        []profiles.Class
	SLOSec         float64
	NetLatencySec  float64
	Seed           int64
	RMIntervalSec  float64 // Resource Manager period (paper: 10 s)
	LBIntervalSec  float64 // Load Balancer refresh period
	BucketSec      float64 // metrics bucket width
	SwapLatencySec float64 // model-load pause on reconfiguration
	ExecJitter     float64 // relative execution-latency noise
	Headroom       float64 // demand over-provisioning factor
	QueueFactor    float64 // per-worker queue cap multiplier (see cluster.Options)
	MinAccuracy    float64 // floor on end-to-end path accuracy (0 = none)
	SolveTimeLimit time.Duration
	// DisableStall turns off the planner's wall-clock stall cutoff so
	// every MILP runs its full budget: the choice for experiments that
	// pick a roomy SolveTimeLimit precisely so results do not depend on
	// machine load.
	DisableStall  bool
	ProfileJitter float64 // measurement noise in the Model Profiler
	TimeScale     float64 // wall-time compression (Wallclock backend only)
}

func (cfg *RunConfig) defaults() {
	if len(cfg.Classes) > 0 {
		cfg.Servers = profiles.TotalCount(cfg.Classes)
	}
	if cfg.Servers == 0 {
		cfg.Servers = 20
	}
	if cfg.SLOSec == 0 {
		cfg.SLOSec = 0.250
	}
	if cfg.NetLatencySec == 0 {
		cfg.NetLatencySec = 0.002
	}
	// RMIntervalSec, LBIntervalSec, and Policy default inside
	// engine.Config.defaults — the one authoritative site for the
	// engine-level knobs.
	if cfg.BucketSec == 0 {
		cfg.BucketSec = 30
	}
	if cfg.SolveTimeLimit == 0 {
		cfg.SolveTimeLimit = 500 * time.Millisecond
	}
	if cfg.Headroom == 0 {
		// Provisioning 30% above the demand estimate keeps per-worker
		// utilization near 0.77, where batch-queue waits stay inside the
		// SLO/2 allowance. With the calibrated profiles this also puts the
		// hardware-scaling limit of the traffic pipeline at ≈560 QPS on 20
		// servers, matching Figure 1.
		cfg.Headroom = 0.30
	}
}

// RunResult is the outcome of one run.
type RunResult struct {
	Name      string
	Approach  Approach
	Summary   metrics.Summary
	Series    []metrics.Point
	Allocates int // MILP invocations (plan-cache misses)

	Injected  int64
	Completed int64
	Dropped   int64
	Rerouted  int64
	Swaps     int64

	// SolveWall aggregates the wall-clock time of planner invocations for
	// the §6.5 runtime-overhead analysis.
	SolveWall      time.Duration
	SolveWallCount int
}

// MeanSolveMillis returns the mean planner wall time in milliseconds.
func (r *RunResult) MeanSolveMillis() float64 {
	if r.SolveWallCount == 0 {
		return 0
	}
	return float64(r.SolveWall.Milliseconds()) / float64(r.SolveWallCount)
}

// timedPlanner wraps a Planner to record wall-clock solve times.
type timedPlanner struct {
	inner core.Planner
	total time.Duration
	n     int
}

func (t *timedPlanner) Allocate(d float64) (*core.Plan, error) {
	t0 := time.Now()
	p, err := t.inner.Allocate(d)
	t.total += time.Since(t0)
	t.n++
	return p, err
}

// NewPlanner builds the Resource Manager planner for an approach: Loki's
// MILP allocator or one of the baselines. The returned Proteus pointer is
// non-nil only for the Proteus approach, whose planner additionally needs
// per-task demand observations (wire it to the engine's OnTaskDemand hook).
func NewPlanner(ap Approach, meta *core.MetadataStore, aopts core.AllocatorOptions) (core.Planner, *baselines.Proteus, error) {
	switch ap {
	case Loki:
		a, err := core.NewAllocator(meta, aopts)
		if err != nil {
			return nil, nil, err
		}
		return a, nil, nil
	case InferLine:
		b, err := baselines.NewInferLine(meta, aopts)
		if err != nil {
			return nil, nil, err
		}
		return &inferLinePlanner{b}, nil, nil
	case Proteus:
		p, err := baselines.NewProteus(meta, aopts)
		if err != nil {
			return nil, nil, err
		}
		return p, p, nil
	default:
		return nil, nil, fmt.Errorf("experiments: unknown approach %d", ap)
	}
}

// Run executes one serving run on the configured backend — the
// discrete-event simulator in virtual time by default, or the wall-clock
// prototype. The wiring is backend-agnostic: both substrates sit behind the
// shared engine.Engine interface.
func Run(cfg RunConfig) (*RunResult, error) {
	cfg.defaults()
	if err := cfg.Graph.Validate(); err != nil {
		return nil, err
	}

	pr := &profiles.Profiler{Jitter: cfg.ProfileJitter, Seed: cfg.Seed}
	var meta *core.MetadataStore
	if len(cfg.Classes) > 0 {
		meta = core.NewMetadataStoreHetero(cfg.Graph, cfg.Classes,
			pr.ProfileGraphClasses(cfg.Graph, profiles.Batches, cfg.Classes), cfg.SLOSec, profiles.Batches)
	} else {
		meta = core.NewMetadataStore(cfg.Graph, pr.ProfileGraph(cfg.Graph, profiles.Batches),
			cfg.SLOSec, profiles.Batches)
	}

	aopts := core.AllocatorOptions{
		Servers:         cfg.Servers,
		NetLatencySec:   cfg.NetLatencySec,
		KeepWarm:        true,
		Headroom:        cfg.Headroom,
		MinPathAccuracy: cfg.MinAccuracy,
		SolveTimeLimit:  cfg.SolveTimeLimit,
		DisableStall:    cfg.DisableStall,
	}
	planner, proteus, err := NewPlanner(cfg.Approach, meta, aopts)
	if err != nil {
		return nil, err
	}
	timed := &timedPlanner{inner: planner}

	col := metrics.NewCollector(cfg.BucketSec, cfg.Servers)
	if len(cfg.Classes) > 0 {
		names := make([]string, len(cfg.Classes))
		costs := make([]float64, len(cfg.Classes))
		for i, cl := range cfg.Classes {
			names[i] = cl.Name
			costs[i] = cl.CostPerHour
		}
		col.SetClasses(names, costs)
	}
	ecfg := engine.Config{
		Meta:           meta,
		Policy:         cfg.Policy,
		Collector:      col,
		Servers:        cfg.Servers,
		Classes:        cfg.Classes,
		SLOSec:         cfg.SLOSec,
		NetLatencySec:  cfg.NetLatencySec,
		Seed:           cfg.Seed,
		SwapLatencySec: cfg.SwapLatencySec,
		ExecJitter:     cfg.ExecJitter,
		QueueFactor:    cfg.QueueFactor,
		RMIntervalSec:  cfg.RMIntervalSec,
		LBIntervalSec:  cfg.LBIntervalSec,
		TimeScale:      cfg.TimeScale,
	}
	if proteus != nil {
		ecfg.OnTaskDemand = proteus.ObserveTaskDemand
	}
	eng, err := engine.New(cfg.Backend, ecfg)
	if err != nil {
		return nil, err
	}

	ctrl := core.NewController(meta, timed, eng.ApplyPlan)
	ctrl.RouteHeadroom = cfg.Headroom

	// Pre-warm: allocate for the trace's opening demand before traffic.
	meta.ObserveDemand(cfg.Trace.QPS[0])
	if err := ctrl.Step(true); err != nil {
		return nil, err
	}

	if err := eng.Start(ctrl); err != nil {
		return nil, err
	}
	feedErr := eng.Feed(cfg.Trace)
	stopErr := eng.Stop()
	if feedErr != nil {
		return nil, feedErr
	}
	if stopErr != nil {
		return nil, stopErr
	}

	st := eng.Stats()
	res := &RunResult{
		Name:           fmt.Sprintf("%s/%s", cfg.Graph.Name, cfg.Approach),
		Approach:       cfg.Approach,
		Summary:        col.Summarize(),
		Series:         col.Series(),
		Allocates:      ctrl.Allocates(),
		Injected:       st.Injected,
		Completed:      st.Completed,
		Dropped:        st.Dropped,
		Rerouted:       st.Rerouted,
		Swaps:          st.Swaps,
		SolveWall:      timed.total,
		SolveWallCount: timed.n,
	}
	return res, nil
}

// inferLinePlanner adapts the InferLine baseline to the Planner interface,
// forwarding capped solves so an InferLine-managed pipeline can live inside
// a multi-tenant partition.
type inferLinePlanner struct{ b *baselines.InferLine }

func (p *inferLinePlanner) Allocate(d float64) (*core.Plan, error) {
	return p.b.Allocate(d)
}

func (p *inferLinePlanner) AllocateCapped(d float64, caps []int) (*core.Plan, error) {
	return p.b.AllocateCapped(d, caps)
}
