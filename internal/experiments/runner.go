// Package experiments assembles full serving runs — pipeline, workload
// trace, controller (Loki or a baseline), cluster — and the per-figure
// drivers that regenerate every table and figure of the paper's evaluation
// (§6). The CLIs in cmd/ and the benchmarks in bench_test.go are thin
// wrappers over this package.
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"loki/internal/baselines"
	"loki/internal/cluster"
	"loki/internal/core"
	"loki/internal/metrics"
	"loki/internal/pipeline"
	"loki/internal/policy"
	"loki/internal/profiles"
	"loki/internal/sim"
	"loki/internal/trace"
)

// Approach selects the resource-management strategy under test.
type Approach int

// The three systems compared in §6.2.
const (
	Loki      Approach = iota // hardware + pipeline-aware accuracy scaling
	InferLine                 // hardware scaling only (fixed variants)
	Proteus                   // pipeline-agnostic per-task accuracy scaling
)

// String names the approach.
func (a Approach) String() string {
	switch a {
	case Loki:
		return "loki"
	case InferLine:
		return "inferline"
	case Proteus:
		return "proteus"
	default:
		return "unknown"
	}
}

// RunConfig describes one end-to-end serving run.
type RunConfig struct {
	Graph    *pipeline.Graph
	Trace    *trace.Trace
	Approach Approach
	Policy   policy.Policy // nil means opportunistic rerouting (Loki default)

	Servers        int
	SLOSec         float64
	NetLatencySec  float64
	Seed           int64
	RMIntervalSec  float64 // Resource Manager period (paper: 10 s)
	LBIntervalSec  float64 // Load Balancer refresh period
	BucketSec      float64 // metrics bucket width
	SwapLatencySec float64 // model-load pause on reconfiguration
	ExecJitter     float64 // relative execution-latency noise
	Headroom       float64 // demand over-provisioning factor
	QueueFactor    float64 // per-worker queue cap multiplier (see cluster.Options)
	MinAccuracy    float64 // floor on end-to-end path accuracy (0 = none)
	SolveTimeLimit time.Duration
	ProfileJitter  float64 // measurement noise in the Model Profiler
}

func (cfg *RunConfig) defaults() {
	if cfg.Servers == 0 {
		cfg.Servers = 20
	}
	if cfg.SLOSec == 0 {
		cfg.SLOSec = 0.250
	}
	if cfg.NetLatencySec == 0 {
		cfg.NetLatencySec = 0.002
	}
	if cfg.RMIntervalSec == 0 {
		cfg.RMIntervalSec = 10
	}
	if cfg.LBIntervalSec == 0 {
		cfg.LBIntervalSec = 1
	}
	if cfg.BucketSec == 0 {
		cfg.BucketSec = 30
	}
	if cfg.SolveTimeLimit == 0 {
		cfg.SolveTimeLimit = 500 * time.Millisecond
	}
	if cfg.Policy == nil {
		cfg.Policy = policy.Opportunistic{}
	}
	if cfg.Headroom == 0 {
		// Provisioning 30% above the demand estimate keeps per-worker
		// utilization near 0.77, where batch-queue waits stay inside the
		// SLO/2 allowance. With the calibrated profiles this also puts the
		// hardware-scaling limit of the traffic pipeline at ≈560 QPS on 20
		// servers, matching Figure 1.
		cfg.Headroom = 0.30
	}
}

// RunResult is the outcome of one run.
type RunResult struct {
	Name      string
	Approach  Approach
	Summary   metrics.Summary
	Series    []metrics.Point
	Allocates int // MILP invocations (plan-cache misses)

	Injected  int64
	Completed int64
	Dropped   int64
	Rerouted  int64
	Swaps     int64

	// SolveWall aggregates the wall-clock time of planner invocations for
	// the §6.5 runtime-overhead analysis.
	SolveWall      time.Duration
	SolveWallCount int
}

// MeanSolveMillis returns the mean planner wall time in milliseconds.
func (r *RunResult) MeanSolveMillis() float64 {
	if r.SolveWallCount == 0 {
		return 0
	}
	return float64(r.SolveWall.Milliseconds()) / float64(r.SolveWallCount)
}

// timedPlanner wraps a Planner to record wall-clock solve times.
type timedPlanner struct {
	inner core.Planner
	total time.Duration
	n     int
}

func (t *timedPlanner) Allocate(d float64) (*core.Plan, error) {
	t0 := time.Now()
	p, err := t.inner.Allocate(d)
	t.total += time.Since(t0)
	t.n++
	return p, err
}

// Run executes one serving run in virtual time.
func Run(cfg RunConfig) (*RunResult, error) {
	cfg.defaults()
	if err := cfg.Graph.Validate(); err != nil {
		return nil, err
	}

	prof := (&profiles.Profiler{Jitter: cfg.ProfileJitter, Seed: cfg.Seed}).
		ProfileGraph(cfg.Graph, profiles.Batches)
	meta := core.NewMetadataStore(cfg.Graph, prof, cfg.SLOSec, profiles.Batches)

	aopts := core.AllocatorOptions{
		Servers:         cfg.Servers,
		NetLatencySec:   cfg.NetLatencySec,
		KeepWarm:        true,
		Headroom:        cfg.Headroom,
		MinPathAccuracy: cfg.MinAccuracy,
		SolveTimeLimit:  cfg.SolveTimeLimit,
	}

	var planner core.Planner
	var proteus *baselines.Proteus
	switch cfg.Approach {
	case Loki:
		a, err := core.NewAllocator(meta, aopts)
		if err != nil {
			return nil, err
		}
		planner = a
	case InferLine:
		b, err := baselines.NewInferLine(meta, aopts)
		if err != nil {
			return nil, err
		}
		planner = &inferLinePlanner{b}
	case Proteus:
		p, err := baselines.NewProteus(meta, aopts)
		if err != nil {
			return nil, err
		}
		proteus = p
		planner = p
	default:
		return nil, fmt.Errorf("experiments: unknown approach %d", cfg.Approach)
	}
	timed := &timedPlanner{inner: planner}

	eng := &sim.Engine{}
	col := metrics.NewCollector(cfg.BucketSec, cfg.Servers)
	cl, err := cluster.New(eng, meta, cfg.Policy, col, cluster.Options{
		Servers:        cfg.Servers,
		SLOSec:         cfg.SLOSec,
		NetLatencySec:  cfg.NetLatencySec,
		Seed:           cfg.Seed + 1,
		SwapLatencySec: cfg.SwapLatencySec,
		ExecJitter:     cfg.ExecJitter,
		QueueFactor:    cfg.QueueFactor,
	})
	if err != nil {
		return nil, err
	}

	ctrl := core.NewController(meta, timed, cl.ApplyPlan)
	ctrl.RouteHeadroom = cfg.Headroom

	// Pre-warm: allocate for the trace's opening demand before traffic.
	meta.ObserveDemand(cfg.Trace.QPS[0])
	if err := ctrl.Step(true); err != nil {
		return nil, err
	}

	duration := cfg.Trace.Duration()

	// Arrivals: lazily chained Poisson events keep the event heap small.
	arrivals := cfg.Trace.Arrivals(rand.New(rand.NewSource(cfg.Seed + 2)))
	var scheduleArrival func(i int)
	scheduleArrival = func(i int) {
		if i >= len(arrivals) {
			return
		}
		eng.At(arrivals[i], func() {
			cl.InjectRequest()
			scheduleArrival(i + 1)
		})
	}
	scheduleArrival(0)

	// Per-second housekeeping: demand reports, heartbeats, reactive
	// reallocation, demand sampling.
	var stepErr error
	var secTick func()
	secTick = func() {
		now := eng.Now()
		count := cl.FlushDemand()
		meta.ObserveDemand(float64(count))
		if proteus != nil {
			for task, n := range cl.FlushTaskArrivals() {
				proteus.ObserveTaskDemand(pipeline.TaskID(task), float64(n))
			}
		}
		col.SampleDemand(now, cfg.Trace.RateAt(now))
		cl.Heartbeat()
		if err := ctrl.Step(false); err != nil && stepErr == nil {
			stepErr = err
		}
		if now+1 <= duration {
			eng.After(1, secTick)
		}
	}
	eng.After(1, secTick)

	var lbTick func()
	lbTick = func() {
		ctrl.Rebalance()
		if eng.Now()+cfg.LBIntervalSec <= duration {
			eng.After(cfg.LBIntervalSec, lbTick)
		}
	}
	eng.After(cfg.LBIntervalSec, lbTick)

	var rmTick func()
	rmTick = func() {
		if err := ctrl.Step(true); err != nil && stepErr == nil {
			stepErr = err
		}
		if eng.Now()+cfg.RMIntervalSec <= duration {
			eng.After(cfg.RMIntervalSec, rmTick)
		}
	}
	eng.After(cfg.RMIntervalSec, rmTick)

	// Run the trace, then drain in-flight requests.
	eng.Run(duration)
	eng.RunAll()
	if stepErr != nil {
		return nil, stepErr
	}

	res := &RunResult{
		Name:           fmt.Sprintf("%s/%s", cfg.Graph.Name, cfg.Approach),
		Approach:       cfg.Approach,
		Summary:        col.Summarize(),
		Series:         col.Series(),
		Allocates:      ctrl.Allocates(),
		Injected:       cl.TotalInjected,
		Completed:      cl.TotalCompleted,
		Dropped:        cl.TotalDropped,
		Rerouted:       cl.TotalRerouted,
		Swaps:          cl.TotalSwaps,
		SolveWall:      timed.total,
		SolveWallCount: timed.n,
	}
	return res, nil
}

// inferLinePlanner adapts the InferLine baseline to the Planner interface.
type inferLinePlanner struct{ b *baselines.InferLine }

func (p *inferLinePlanner) Allocate(d float64) (*core.Plan, error) {
	return p.b.Allocate(d)
}
