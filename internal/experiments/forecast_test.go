package experiments

import "testing"

// The acceptance gate of the forecasting subsystem: on the flash-crowd
// trace, proactive provisioning with Envelope(HoltWinters) keeps strictly
// higher SLO attainment inside the spike window than the reactive baseline,
// and the learned forecasters beat persistence on offline error for the
// diurnal trace.
func TestForecastProactiveBeatsReactiveOnFlashCrowd(t *testing.T) {
	results, err := Forecast(ForecastConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatForecast(results))

	byName := func(r *ForecastResult, name string) ForecastOutcome {
		for _, o := range r.Outcomes {
			if o.Name == name {
				return o
			}
		}
		t.Fatalf("scenario %s has no %q outcome", r.Scenario, name)
		return ForecastOutcome{}
	}
	var flash, diurnal *ForecastResult
	for _, r := range results {
		switch r.Scenario {
		case "flash-crowd":
			flash = r
		case "diurnal":
			diurnal = r
		}
	}
	if flash == nil || diurnal == nil {
		t.Fatalf("missing scenarios in %v", results)
	}

	reactive := byName(flash, "reactive")
	hw := byName(flash, "holtwinters")
	if reactive.WindowArrivals == 0 || hw.WindowArrivals == 0 {
		t.Fatal("spike window saw no arrivals; window misaligned with the trace")
	}
	if hw.WindowAttainment <= reactive.WindowAttainment {
		t.Fatalf("proactive holtwinters spike-window SLO %.4f is not strictly above reactive %.4f",
			hw.WindowAttainment, reactive.WindowAttainment)
	}

	// Forecast accuracy: on the smooth diurnal trace the learned models
	// must beat the persistence error the reactive plane implies.
	dReactive := byName(diurnal, "reactive")
	for _, name := range []string{"trend", "holtwinters"} {
		if o := byName(diurnal, name); o.ForecastMAE >= dReactive.ForecastMAE {
			t.Errorf("%s diurnal MAE %.1f is not below persistence %.1f", name, o.ForecastMAE, dReactive.ForecastMAE)
		}
	}
}
