package experiments

import (
	"fmt"
	"strings"

	"loki/internal/profiles"
	"loki/internal/trace"
)

// HeteroConfig describes the mixed-fleet experiment: the same pipeline and
// trace served twice, once on a heterogeneous fleet of hardware classes and
// once on a speed-equivalent homogeneous fleet (same server count, each
// server running at the fleet's mean speed, each costing the fleet's mean
// dollar rate — the "one mid-range SKU" purchase an operator would make for
// the same aggregate capacity and budget). The comparison isolates what the
// planner extracts from heterogeneity itself: with per-class capacity rows
// and the cost-aware objective it steers small/fast variants onto the slow
// cheap classes and the big accurate variants onto the fast ones, where the
// homogeneous fleet has no such knob.
type HeteroConfig struct {
	Servers    int // ignored; the fleets define their own sizes
	SLOSec     float64
	Seed       int64
	TraceSteps int
	StepSec    float64
	PeakQPS    float64
	// Classes is the heterogeneous fleet. Nil means the recorded default:
	// a100:4@2.0@3.2, v100:8@1.0@1.2, t4:12@0.5@0.55.
	Classes []profiles.Class
}

func (c *HeteroConfig) defaults() {
	if c.Seed == 0 {
		c.Seed = 11
	}
	if c.SLOSec == 0 {
		c.SLOSec = 0.250
	}
	if c.TraceSteps == 0 {
		c.TraceSteps = 48
	}
	if c.StepSec == 0 {
		c.StepSec = 10
	}
	if c.PeakQPS == 0 {
		c.PeakQPS = 700
	}
	if c.Classes == nil {
		c.Classes = []profiles.Class{
			{Name: "a100", Count: 4, Speed: 2.0, CostPerHour: 3.2},
			{Name: "v100", Count: 8, Speed: 1.0, CostPerHour: 1.2},
			{Name: "t4", Count: 12, Speed: 0.5, CostPerHour: 0.55},
		}
	}
}

// HomogeneousEquivalent returns the speed- and budget-equivalent homogeneous
// fleet of a class set: the same number of servers, each at the fleet's mean
// speed and mean cost per hour.
func HomogeneousEquivalent(classes []profiles.Class) []profiles.Class {
	n := profiles.TotalCount(classes)
	speed, cost := 0.0, 0.0
	for _, cl := range classes {
		speed += float64(cl.Count) * cl.Speed
		cost += float64(cl.Count) * cl.CostPerHour
	}
	return []profiles.Class{{
		Name:        "uniform",
		Count:       n,
		Speed:       speed / float64(n),
		CostPerHour: cost / float64(n),
	}}
}

// HeteroOutcome is one fleet's serving run.
type HeteroOutcome struct {
	Name string // hetero or homogeneous
	Run  *RunResult
	// SLOAttainment is 1 - violation ratio.
	SLOAttainment float64
	// CostPerQuery is accrued server dollars per answered request.
	CostPerQuery float64
	// ServersByClass is the mean active servers per class name.
	ServersByClass map[string]float64
}

// HeteroResult aggregates the mixed-fleet experiment.
type HeteroResult struct {
	Hetero, Homogeneous HeteroOutcome
	// CostSavingsPct is how much cheaper per query the heterogeneous fleet
	// served the identical workload (positive = hetero cheaper).
	CostSavingsPct float64
}

// Hetero runs the mixed-fleet experiment on the discrete-event simulator:
// the traffic-analysis pipeline over an Azure-shaped diurnal trace, once on
// the heterogeneous fleet and once on its speed-equivalent homogeneous twin.
func Hetero(cfg HeteroConfig) (*HeteroResult, error) {
	cfg.defaults()
	tr := trace.AzureLike(cfg.Seed, cfg.TraceSteps, cfg.StepSec).ScaleToPeak(cfg.PeakQPS)

	run := func(name string, classes []profiles.Class) (HeteroOutcome, error) {
		res, err := Run(RunConfig{
			Graph:   profiles.TrafficTree(),
			Trace:   tr,
			Classes: classes,
			SLOSec:  cfg.SLOSec,
			Seed:    cfg.Seed,
		})
		if err != nil {
			return HeteroOutcome{}, fmt.Errorf("experiments: %s fleet: %w", name, err)
		}
		out := HeteroOutcome{
			Name:           name,
			Run:            res,
			SLOAttainment:  1 - res.Summary.ViolationRatio,
			ServersByClass: map[string]float64{},
		}
		for i, n := range res.Summary.ClassNames {
			out.ServersByClass[n] = res.Summary.MeanServersByClass[i]
		}
		if answered := res.Summary.Completed + res.Summary.Late; answered > 0 {
			out.CostPerQuery = res.Summary.CostHours / float64(answered)
		}
		return out, nil
	}

	het, err := run("hetero", cfg.Classes)
	if err != nil {
		return nil, err
	}
	hom, err := run("homogeneous", HomogeneousEquivalent(cfg.Classes))
	if err != nil {
		return nil, err
	}
	r := &HeteroResult{Hetero: het, Homogeneous: hom}
	if hom.CostPerQuery > 0 {
		r.CostSavingsPct = 100 * (1 - het.CostPerQuery/hom.CostPerQuery)
	}
	return r, nil
}

// FormatHetero renders the mixed-fleet experiment as a comparison table plus
// the per-class occupancy of the heterogeneous run.
func FormatHetero(r *HeteroResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %10s %12s %14s %8s\n",
		"fleet", "slo-attain", "accuracy", "cost($)", "cost/query($)", "servers")
	for _, o := range []HeteroOutcome{r.Hetero, r.Homogeneous} {
		fmt.Fprintf(&b, "%-12s %12.4f %10.4f %12.3f %14.7f %8.1f\n",
			o.Name, o.SLOAttainment, o.Run.Summary.MeanAccuracy,
			o.Run.Summary.CostHours, o.CostPerQuery, o.Run.Summary.MeanServers)
	}
	fmt.Fprintf(&b, "\nhetero cost savings per query: %.1f%%\n", r.CostSavingsPct)
	fmt.Fprintf(&b, "hetero mean occupancy by class:")
	for _, name := range sortedKeys(r.Hetero.ServersByClass) {
		fmt.Fprintf(&b, " %s=%.1f", name, r.Hetero.ServersByClass[name])
	}
	b.WriteString("\n(the planner steers the small fast variants onto the slow cheap class and\nthe accurate heavy variants onto the fast class; the uniform fleet cannot)\n")
	return b.String()
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
