package experiments

import (
	"testing"

	"loki/internal/policy"
	"loki/internal/profiles"
	"loki/internal/trace"
)

func shortTrace(peak float64) *trace.Trace {
	return trace.AzureLike(1, 24, 5).ScaleToPeak(peak)
}

func TestRunLokiBasicInvariants(t *testing.T) {
	res, err := Run(RunConfig{
		Graph: profiles.TrafficTree(), Trace: shortTrace(600),
		Approach: Loki, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected == 0 {
		t.Fatal("no traffic")
	}
	if res.Injected != res.Completed+res.Dropped {
		t.Fatalf("conservation: %d != %d + %d", res.Injected, res.Completed, res.Dropped)
	}
	s := res.Summary
	if s.MeanAccuracy <= 0.5 || s.MeanAccuracy > 1.0 {
		t.Fatalf("accuracy = %g", s.MeanAccuracy)
	}
	if s.ViolationRatio < 0 || s.ViolationRatio > 0.3 {
		t.Fatalf("violations = %g, want small at 600 qps peak", s.ViolationRatio)
	}
	if res.Allocates == 0 {
		t.Fatal("controller never allocated")
	}
}

func TestRunIsDeterministicPerSeed(t *testing.T) {
	cfg := RunConfig{Graph: profiles.TrafficChain(), Trace: shortTrace(500), Approach: Loki, Seed: 9}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Injected != b.Injected || a.Completed != b.Completed || a.Dropped != b.Dropped {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
}

func TestRunBaselinesShareSubstrate(t *testing.T) {
	for _, ap := range []Approach{InferLine, Proteus} {
		res, err := Run(RunConfig{
			Graph: profiles.TrafficTree(), Trace: shortTrace(500),
			Approach: ap, Seed: 2,
		})
		if err != nil {
			t.Fatalf("%v: %v", ap, err)
		}
		if res.Injected == 0 || res.Injected != res.Completed+res.Dropped {
			t.Fatalf("%v: conservation broken", ap)
		}
	}
}

func TestLokiBeatsBaselinesUnderPressure(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run comparison")
	}
	tr := shortTrace(1100)
	viol := map[Approach]float64{}
	for _, ap := range []Approach{Loki, InferLine, Proteus} {
		res, err := Run(RunConfig{Graph: profiles.TrafficTree(), Trace: tr, Approach: ap, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		viol[ap] = res.Summary.ViolationRatio
	}
	if viol[Loki] >= viol[InferLine] || viol[Loki] >= viol[Proteus] {
		t.Fatalf("Loki %0.4f vs InferLine %.4f, Proteus %.4f — Loki must win", viol[Loki], viol[InferLine], viol[Proteus])
	}
}

func TestFigure1ShapeMatchesPaper(t *testing.T) {
	r, err := Figure1(20, 0.250, 11)
	if err != nil {
		t.Fatal(err)
	}
	if r.HardwareLimitQPS <= 0 || r.Phase2LimitQPS <= r.HardwareLimitQPS {
		t.Fatalf("phase boundaries: hw=%g p2=%g", r.HardwareLimitQPS, r.Phase2LimitQPS)
	}
	if r.Phase2CapacityGain < 2.0 || r.Phase2CapacityGain > 4.0 {
		t.Fatalf("phase-2 gain %.2f×, paper ≈2.7×", r.Phase2CapacityGain)
	}
	drop := 1 - r.AccuracyAtPhase2
	if drop < 0.05 || drop > 0.2 {
		t.Fatalf("phase-2 accuracy drop %.1f%%, paper ≈13%%", 100*drop)
	}
	// Phase 2 must degrade task 2 before task 1 (the figure's key insight).
	for _, p := range r.Points {
		if p.Phase == 2 && p.Task2Acc > p.Task1Acc {
			t.Fatalf("phase 2 point degrades task 1 first: %+v", p)
		}
	}
}

func TestFigure3TradeoffShape(t *testing.T) {
	rows := Figure3()
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8 EfficientNet variants", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Accuracy <= rows[i-1].Accuracy {
			t.Fatal("accuracy not increasing along family")
		}
		if rows[i].MaxQPS >= rows[i-1].MaxQPS {
			t.Fatal("throughput not decreasing along family")
		}
	}
}

func TestFigure7OpportunisticWins(t *testing.T) {
	if testing.Short() {
		t.Skip("four full runs")
	}
	rows, err := Figure7(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d arms", len(rows))
	}
	opp := rows[3]
	if opp.Policy != "opportunistic-rerouting" {
		t.Fatalf("unexpected order: %+v", rows)
	}
	for _, r := range rows[:3] {
		if opp.ViolationRatio > r.ViolationRatio+1e-9 {
			t.Fatalf("opportunistic (%.4f) lost to %s (%.4f)", opp.ViolationRatio, r.Policy, r.ViolationRatio)
		}
	}
	if opp.Rerouted == 0 {
		t.Fatal("opportunistic rerouting never rerouted")
	}
}

func TestFigure8TightSLOInfeasible(t *testing.T) {
	if testing.Short() {
		t.Skip("serving sweep")
	}
	// The paper's cliff is at 200 ms; our synthetic variants have shorter
	// batch-1 latencies than the real models, so the cliff sits near 35 ms
	// (fastest path ≈ 14 ms must fit SLO/2 − network). The qualitative
	// behaviour — an SLO below the fastest path's doubled latency is
	// rejected outright — is the reproduced property.
	rows, err := Figure8(3, []float64{30, 250})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Feasible {
		t.Fatal("30 ms SLO should be infeasible (below the fastest path)")
	}
	if !rows[1].Feasible {
		t.Fatal("250 ms SLO must be feasible")
	}
}

func TestRuntimeOverheadMeasured(t *testing.T) {
	r, err := Runtime(20, 0.250)
	if err != nil {
		t.Fatal(err)
	}
	if r.MILPMeanMillis <= 0 {
		t.Fatal("no MILP timing")
	}
	if r.LBMeanMicros <= 0 || r.LBMeanMicros > 10_000 {
		t.Fatalf("LB mean %.1fµs, want fast (paper ≈150µs)", r.LBMeanMicros)
	}
}

func TestPolicyPluggedIntoRun(t *testing.T) {
	res, err := Run(RunConfig{
		Graph: profiles.TrafficChain(), Trace: shortTrace(400),
		Approach: Loki, Seed: 5, Policy: policy.NoDrop{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rerouted != 0 {
		t.Fatalf("NoDrop rerouted %d requests", res.Rerouted)
	}
}

// The multi-tenant contention experiment: both tenants keep serving while
// the pool is shared, the grant history shows the spike-driven
// re-partitioning, and grants never oversubscribe the pool.
func TestMultiTenantContentionExperiment(t *testing.T) {
	res, err := MultiTenant(MultiTenantConfig{
		Servers: 20, Seed: 11, TraceSteps: 24, StepSec: 5,
		PeakA: 350, PeakB: 250, SpikeMult: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tenants) != 2 {
		t.Fatalf("want 2 tenants, got %d", len(res.Tenants))
	}
	for _, tn := range res.Tenants {
		if tn.Summary.Arrivals == 0 || tn.Summary.Completed == 0 {
			t.Fatalf("tenant %q served nothing: %+v", tn.Name, tn.Summary)
		}
		if tn.Summary.ViolationRatio > 0.5 {
			t.Fatalf("tenant %q lost most of its SLO under contention: %+v", tn.Name, tn.Summary)
		}
	}
	if len(res.GrantHistory) == 0 {
		t.Fatal("no joint allocations recorded")
	}
	for _, row := range res.GrantHistory {
		if row[0]+row[1] > 20 {
			t.Fatalf("grant row %v oversubscribes the pool", row)
		}
	}
	// The spike must move the partition: traffic's grant varies across the run.
	a := res.Tenants[0]
	if a.MaxGrant <= a.MinGrant {
		t.Fatalf("traffic grant never moved: min %d max %d", a.MinGrant, a.MaxGrant)
	}
}
