package experiments

import (
	"os"
	"testing"
	"time"

	"loki/internal/core"
	"loki/internal/ingress"
	"loki/internal/profiles"
)

// TestCappedClaimProbe is a diagnostic, not a regression test: it prints the
// plan the MILP produces at various (demand, per-class cap) points of the
// chaos scenario, the behaviour behind the arbiter's fragment-drop retry —
// the truncated search can plan caps like [1,6] at half the frontend rate of
// the [0,6] block alone, and the breakage is demand-sensitive. It only runs
// when LOKI_PROBE is set:
//
//	LOKI_PROBE=1 go test ./internal/experiments -run CappedClaimProbe -v
//
// The production-facing counterpart of this probe lives in the telemetry
// registry: loki_planner_truncated_solves_total{tenant} counts MILP solves
// cut short by a resource limit, and loki_planner_round_seconds gauges the
// last allocation round — scrape GET /metrics (or read
// MultiSystem.Telemetry) instead of rerunning the probe to spot truncation
// in a live system.
func TestCappedClaimProbe(t *testing.T) {
	if os.Getenv("LOKI_PROBE") == "" {
		t.Skip("diagnostic probe; set LOKI_PROBE=1 to run")
	}
	classes := []profiles.Class{
		{Name: "res", Count: 12, Speed: 1.0},
		{Name: "spot", Count: 8, Speed: 1.0},
	}
	g := profiles.TrafficTree()
	prof := &profiles.Profiler{Seed: 11}
	meta := core.NewMetadataStoreHetero(g, classes,
		prof.ProfileGraphClasses(g, profiles.Batches, classes), 0.25, profiles.Batches)
	alloc, err := core.NewAllocator(meta, core.AllocatorOptions{
		Servers:        20,
		NetLatencySec:  0.002,
		KeepWarm:       true,
		Headroom:       0.30,
		SolveTimeLimit: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, demand := range []float64{240, 250, 260} {
		for _, caps := range [][]int{{1, 6}, {0, 6}, {5, 2}, {0, 7}, {7, 0}, {6, 6}, {1, 8}} {
			plan, err := alloc.AllocateCapped(demand, caps)
			if err != nil {
				t.Logf("demand=%.0f caps=%v err=%v", demand, caps, err)
				continue
			}
			routes := core.MostAccurateFirst(g, core.ExpandPlan(plan), demand*1.3, meta.MultFactor)
			t.Logf("demand=%.0f caps=%v servers=%v rate=%.0f acc=%.3f mode=%v served=%.2f stats=%+v",
				demand, caps, plan.ServersByClass, ingress.FrontendRate(routes),
				plan.ExpectedAccuracy, plan.Mode, plan.ServedFraction, plan.SolveStats)
		}
	}
}
