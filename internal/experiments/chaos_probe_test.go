package experiments

import (
	"fmt"
	"os"
	"testing"
)

// TestChaosGrantProbe is a diagnostic, not a regression test: it replays the
// chaos grid's headline outage cell in both arms and prints the per-step
// grant totals, the three window scores, and the per-second series around
// the fault, so tier engagement and shedding behaviour are visible. It only
// runs when LOKI_PROBE is set:
//
//	LOKI_PROBE=1 go test ./internal/experiments -run ChaosGrantProbe -v
//
// For live systems the same grant trajectory is exported as structured
// telemetry: loki_planner_grant_servers{tenant} gauges each tenant's grant
// after every allocation round, and loki_planner_rounds_total counts the
// rounds — scrape GET /metrics (or read MultiSystem.Telemetry) to watch
// tier engagement without a replay.
func TestChaosGrantProbe(t *testing.T) {
	if os.Getenv("LOKI_PROBE") == "" {
		t.Skip("diagnostic probe; set LOKI_PROBE=1 to run")
	}
	for _, tiered := range []bool{true, false} {
		cfg := ChaosConfig{Quick: true, Seed: 11}
		cfg.defaults()
		var lines []string
		chaosOnGrants = func(step int, totals []int) {
			lines = append(lines, fmt.Sprintf("step=%d totals=%v", step, totals))
		}
		cols, sums, events, err := chaosRun(cfg, tiered, cfg.chaosFaults("outage", false))
		chaosOnGrants = nil
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("tiered=%v events=%v", tiered, events)
		for _, l := range lines {
			t.Logf("  %s", l)
		}
		b0, b1, d0, d1, a0, a1 := cfg.windows()
		for i, s := range sums {
			series := cols[i].Series()
			bw := windowScore(series, b0, b1)
			dw := windowScore(series, d0, d1)
			aw := windowScore(series, a0, a1)
			t.Logf("  tenant=%d before=%.4f during=%.4f(shed%%=%.1f) after=%.4f | viol=%.4f shed=%d late=%d dropped=%d completed=%d",
				i, bw.Attainment, dw.Attainment, dw.ShedPct, aw.Attainment,
				s.ViolationRatio, s.Shed, s.Late, s.Dropped, s.Completed)
			for _, p := range series {
				if p.TimeSec >= cfg.FaultAtSec-5 && p.TimeSec < cfg.FaultAtSec+cfg.FaultDurSec+10 {
					t.Logf("    t=%2.0f arr=%3d shed=%3d viol=%3d", p.TimeSec, p.Arrivals, p.Shed, p.Violations)
				}
			}
		}
	}
}
