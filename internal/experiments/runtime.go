package experiments

import (
	"fmt"
	"strings"
	"time"

	"loki/internal/core"
	"loki/internal/profiles"
)

// RuntimeResult reproduces §6.5: the wall-clock cost of one Resource
// Manager MILP solve and one Load Balancer MostAccurateFirst run.
type RuntimeResult struct {
	MILPMillis       []float64 // per demand level
	MILPMeanMillis   float64
	LBMicros         []float64
	LBMeanMicros     float64
	Paths            int
	Vars             int
	Workers          int
	DemandsEvaluated []float64
}

// Runtime measures both components on the traffic-analysis pipeline
// (paper: MILP ≈ 500 ms with Gurobi, Load Balancer ≈ 0.15 ms).
func Runtime(servers int, sloSec float64) (*RuntimeResult, error) {
	g := profiles.TrafficTree()
	prof := (&profiles.Profiler{}).ProfileGraph(g, profiles.Batches)
	meta := core.NewMetadataStore(g, prof, sloSec, profiles.Batches)
	alloc, err := core.NewAllocator(meta, core.AllocatorOptions{
		Servers: servers, NetLatencySec: 0.002, KeepWarm: true,
		Headroom: 0.30, SolveTimeLimit: 2 * time.Second,
		// Measure the full optimizer, not the stall-truncated serving
		// variant: the paper's §6.5 numbers are per-solve costs.
		DisableStall: true,
	})
	if err != nil {
		return nil, err
	}

	res := &RuntimeResult{Workers: servers}
	demands := []float64{100, 300, 500, 700, 900, 1100, 1300}
	var lastPlan *core.Plan
	for _, d := range demands {
		t0 := time.Now()
		plan, err := alloc.Allocate(d)
		if err != nil {
			return nil, err
		}
		ms := float64(time.Since(t0).Microseconds()) / 1000
		res.MILPMillis = append(res.MILPMillis, ms)
		res.MILPMeanMillis += ms / float64(len(demands))
		res.DemandsEvaluated = append(res.DemandsEvaluated, d)
		res.Paths = plan.SolveStats.Paths
		res.Vars = plan.SolveStats.Vars
		lastPlan = plan
	}

	specs := core.ExpandPlan(lastPlan)
	const reps = 200
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		core.MostAccurateFirst(g, specs, 900, meta.MultFactor)
		us := float64(time.Since(t0).Nanoseconds()) / 1000
		if i < 10 {
			res.LBMicros = append(res.LBMicros, us)
		}
		res.LBMeanMicros += us / reps
	}
	return res, nil
}

// FormatRuntime renders the §6.5 table.
func FormatRuntime(r *RuntimeResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Resource Manager MILP (paths=%d vars=%d cluster=%d):\n", r.Paths, r.Vars, r.Workers)
	for i, d := range r.DemandsEvaluated {
		fmt.Fprintf(&b, "  demand %6.0f qps : %8.1f ms\n", d, r.MILPMillis[i])
	}
	fmt.Fprintf(&b, "  mean            : %8.1f ms   (paper, Gurobi: ≈500 ms)\n\n", r.MILPMeanMillis)
	fmt.Fprintf(&b, "Load Balancer MostAccurateFirst:\n")
	fmt.Fprintf(&b, "  mean            : %8.1f µs   (paper: ≈150 µs)\n", r.LBMeanMicros)
	return b.String()
}
