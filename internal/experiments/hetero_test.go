package experiments

import "testing"

// The mixed-fleet acceptance: on the recorded scenario the planner must
// extract real value from heterogeneity — SLO attainment at least matching
// the speed-equivalent homogeneous fleet at strictly lower cost per query —
// and the plan must actually spread across classes rather than collapsing
// onto one.
func TestHeteroBeatsSpeedEquivalentHomogeneous(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size serving runs; skipped with -short")
	}
	r, err := Hetero(HeteroConfig{TraceSteps: 24, StepSec: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatHetero(r))
	if r.Hetero.SLOAttainment < r.Homogeneous.SLOAttainment {
		t.Errorf("hetero SLO attainment %.4f below the homogeneous baseline %.4f",
			r.Hetero.SLOAttainment, r.Homogeneous.SLOAttainment)
	}
	if r.Hetero.CostPerQuery >= r.Homogeneous.CostPerQuery {
		t.Errorf("hetero cost/query %.8f not strictly below homogeneous %.8f",
			r.Hetero.CostPerQuery, r.Homogeneous.CostPerQuery)
	}
	used := 0
	for _, mean := range r.Hetero.ServersByClass {
		if mean > 0.5 {
			used++
		}
	}
	if used < 2 {
		t.Errorf("hetero plan collapsed onto %d hardware class(es): %v", used, r.Hetero.ServersByClass)
	}
}
