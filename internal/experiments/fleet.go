package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"time"

	"loki/internal/core"
	"loki/internal/profiles"
)

// The fleet experiment measures the planner's scaling story end to end: a
// MultiController arbitration round — the desire pass, contention handling,
// and grant assembly over every tenant — timed across a grid of pool sizes,
// tenant counts, and hardware-class counts, with the greedy-replace budget on
// versus off. This is the regime the incremental re-solve path, the greedy
// first pass, and the sparse LP core were built for: at 1,000 servers and 24
// tenants a round must stay under 100 ms at p95, and the greedy budget must
// cut branch-and-bound invocations at least 3× against the MILP-only arbiter
// on the identical demand walk.

// FleetConfig parameterizes the grid.
type FleetConfig struct {
	// Servers, Tenants, and Classes are the grid axes. Nil means the
	// recorded defaults: {100, 400, 1000} × {4, 12, 24} × {1, 3}.
	Servers []int
	Tenants []int
	Classes []int
	// Rounds is the number of measured arbitration rounds per cell (after 2
	// warm-up rounds that absorb the cold solves). Zero means 12.
	Rounds int
	Seed   int64
	SLOSec float64
	// Quick shrinks the grid to {100} × {4, 12} × {1, 3} with 6 rounds for
	// CI smoke passes.
	Quick bool
}

// FleetCell is one grid point's measurements. The latency percentiles cover
// the measured rounds of the greedy-enabled arm; the MILP-solve counters
// compare the two arms over the identical demand walk.
type FleetCell struct {
	Servers int `json:"servers"`
	Tenants int `json:"tenants"`
	Classes int `json:"classes"`
	Rounds  int `json:"rounds"`

	P50Millis float64 `json:"p50_ms"`
	P95Millis float64 `json:"p95_ms"`
	MaxMillis float64 `json:"max_ms"`

	// MILPSolves counts branch-and-bound invocations across the measured
	// rounds with the greedy-replace budget armed; MILPSolvesNoGreedy the
	// same walk with the budget off (the pre-greedy arbiter).
	MILPSolves         int     `json:"milp_solves"`
	MILPSolvesNoGreedy int     `json:"milp_solves_no_greedy"`
	SolveReduction     float64 `json:"solve_reduction_x"`

	// GreedyHitRate is the fraction of dirty-tenant refreshes the greedy
	// pass served without any branch and bound.
	GreedyHitRate  float64 `json:"greedy_hit_rate"`
	AllocsPerRound float64 `json:"allocs_per_round"`
}

// FleetResult is the full grid.
type FleetResult struct {
	Cells []FleetCell
}

// fleetClasses builds a cell's hardware classes: one uniform class, or a
// 20/40/40 fast/mid/slow split whose speed-weighted capacity equals the
// uniform fleet (0.2×2.0 + 0.4×1.0 + 0.4×0.5 = 1.0). Costs stay zero so the
// planner runs in the unpriced regime the greedy warm start seeds.
func fleetClasses(servers, classes int) []profiles.Class {
	if classes <= 1 {
		return profiles.DefaultClasses(servers)
	}
	fast := servers / 5
	mid := 2 * servers / 5
	return []profiles.Class{
		{Name: "fast", Count: fast, Speed: 2.0},
		{Name: "mid", Count: mid, Speed: 1.0},
		{Name: "slow", Count: servers - fast - mid, Speed: 0.5},
	}
}

// fleetController stands up one cell: T chain-pipeline tenants sharing an
// S-server pool. Profiling runs once per cell; every tenant gets its own
// metadata store and allocator (the arbiter's parallel desire pass relies on
// tenants owning distinct solvers).
func fleetController(servers, tenants, classes int, sloSec float64, budget int) (*core.MultiController, []*core.Tenant, error) {
	cls := fleetClasses(servers, classes)
	g := profiles.TrafficChain()
	prof := (&profiles.Profiler{}).ProfileGraphClasses(g, profiles.Batches, cls)
	ts := make([]*core.Tenant, tenants)
	for i := range ts {
		meta := core.NewMetadataStoreHetero(g, cls, prof, sloSec, profiles.Batches)
		alloc, err := core.NewAllocator(meta, core.AllocatorOptions{
			NetLatencySec: 0.002, KeepWarm: true,
			Headroom: 0.30, SolveTimeLimit: 2 * time.Second,
		})
		if err != nil {
			return nil, nil, err
		}
		ts[i] = &core.Tenant{
			Name: fmt.Sprintf("t%02d", i), Meta: meta, Alloc: alloc,
			RouteHeadroom: 0.30,
		}
	}
	m, err := core.NewMultiController(servers, ts)
	if err != nil {
		return nil, nil, err
	}
	m.GreedyReplaceBudget = budget
	return m, ts, nil
}

// fleetWalk drives one arm through the cell's demand walk and returns the
// per-round wall times of the measured rounds plus counter deltas. The walk
// is a seeded ±4% random drift around each tenant's base demand — inside the
// 20% greedy-replace window, across the 1.04 fine cache buckets, and over a
// 1.2 arbiter bucket boundary every few rounds — the steady-state fleet
// regime where most tenants are clean and the dirty ones barely moved.
func fleetWalk(m *core.MultiController, ts []*core.Tenant, seed int64, rounds int) (roundMillis []float64, milpSolves, allocates, greedyReplaced int, allocsPerRound float64, err error) {
	rng := rand.New(rand.NewSource(seed))
	base := make([]float64, len(ts))
	level := make([]float64, len(ts))
	for i := range ts {
		// ~60% of an even pool split, converted through the chain pipeline's
		// ≈28 QPS per speed-1.0 server, so desires stay uncontended and the
		// round cost isolates the planning path.
		base[i] = 16.8 * float64(m.Pool()) / float64(len(ts))
		level[i] = base[i]
	}
	observe := func() {
		for i, t := range ts {
			for k := 0; k < 8; k++ { // converge the EWMA onto the target
				t.Meta.ObserveDemand(level[i])
			}
		}
	}
	drift := func() {
		for i := range level {
			level[i] *= 1 + 0.08*rng.Float64() - 0.04
			if level[i] < 0.5*base[i] {
				level[i] = 0.5 * base[i]
			}
			if level[i] > 1.5*base[i] {
				level[i] = 1.5 * base[i]
			}
		}
	}
	perf := func() (solves int) {
		for _, t := range ts {
			solves += t.Alloc.(*core.Allocator).Perf().MILPSolves
		}
		return solves
	}

	for w := 0; w < 2; w++ { // warm-up: cold solves + bucket state
		observe()
		if err = m.Step(true); err != nil {
			return
		}
		drift()
	}

	solves0, alloc0, greedy0 := perf(), m.Allocates(), m.GreedyReplaced()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mallocs0 := ms.Mallocs
	for r := 0; r < rounds; r++ {
		observe()
		t0 := time.Now()
		if err = m.Step(true); err != nil {
			return
		}
		roundMillis = append(roundMillis, float64(time.Since(t0).Nanoseconds())/1e6)
		drift()
	}
	runtime.ReadMemStats(&ms)
	milpSolves = perf() - solves0
	allocates = m.Allocates() - alloc0
	greedyReplaced = m.GreedyReplaced() - greedy0
	allocsPerRound = float64(ms.Mallocs-mallocs0) / float64(rounds)
	return
}

// Fleet runs the grid. Each cell runs the identical seeded demand walk twice:
// once with the greedy-replace budget covering every tenant and once with it
// off, so the MILP-solve reduction is an apples-to-apples count.
func Fleet(cfg FleetConfig) (*FleetResult, error) {
	if cfg.SLOSec == 0 {
		cfg.SLOSec = 0.250
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 12
	}
	if cfg.Servers == nil {
		cfg.Servers = []int{100, 400, 1000}
	}
	if cfg.Tenants == nil {
		cfg.Tenants = []int{4, 12, 24}
	}
	if cfg.Classes == nil {
		cfg.Classes = []int{1, 3}
	}
	if cfg.Quick {
		cfg.Servers = []int{100}
		cfg.Tenants = []int{4, 12}
		if cfg.Rounds > 6 {
			cfg.Rounds = 6
		}
	}

	res := &FleetResult{}
	for _, s := range cfg.Servers {
		for _, t := range cfg.Tenants {
			for _, c := range cfg.Classes {
				cell := FleetCell{Servers: s, Tenants: t, Classes: c, Rounds: cfg.Rounds}

				m, ts, err := fleetController(s, t, c, cfg.SLOSec, t)
				if err != nil {
					return nil, err
				}
				millis, solves, allocates, greedy, allocs, err := fleetWalk(m, ts, cfg.Seed, cfg.Rounds)
				if err != nil {
					return nil, err
				}
				sort.Float64s(millis)
				cell.P50Millis = percentile(millis, 0.50)
				cell.P95Millis = percentile(millis, 0.95)
				cell.MaxMillis = millis[len(millis)-1]
				cell.MILPSolves = solves
				cell.AllocsPerRound = allocs
				if refreshed := allocates + greedy; refreshed > 0 {
					cell.GreedyHitRate = float64(greedy) / float64(refreshed)
				}

				m2, ts2, err := fleetController(s, t, c, cfg.SLOSec, 0)
				if err != nil {
					return nil, err
				}
				_, solvesOff, _, _, _, err := fleetWalk(m2, ts2, cfg.Seed, cfg.Rounds)
				if err != nil {
					return nil, err
				}
				cell.MILPSolvesNoGreedy = solvesOff
				switch {
				case solves > 0:
					cell.SolveReduction = float64(solvesOff) / float64(solves)
				case solvesOff > 0:
					// Greedy arm needed no MILP at all: report the count it
					// saved as the ratio floor.
					cell.SolveReduction = float64(solvesOff)
				default:
					cell.SolveReduction = 1
				}

				res.Cells = append(res.Cells, cell)
			}
		}
	}
	return res, nil
}

// percentile reads the p-quantile from an ascending slice (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// FormatFleet renders the grid.
func FormatFleet(r *FleetResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %8s %8s %9s %9s %9s %7s %9s %9s %11s %10s\n",
		"servers", "tenants", "classes", "p50(ms)", "p95(ms)", "max(ms)",
		"milp", "milp-off", "reduce(x)", "greedy-hit", "allocs/rd")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%8d %8d %8d %9.2f %9.2f %9.2f %7d %9d %9.1f %10.0f%% %10.0f\n",
			c.Servers, c.Tenants, c.Classes, c.P50Millis, c.P95Millis, c.MaxMillis,
			c.MILPSolves, c.MILPSolvesNoGreedy, c.SolveReduction,
			100*c.GreedyHitRate, c.AllocsPerRound)
	}
	worst := worstCell(r)
	if worst != nil {
		fmt.Fprintf(&b, "\nlargest cell (%d×%d×%d): round p95 %.2f ms (target < 100 ms), MILP solves %d vs %d greedy-disabled (%.1f×)\n",
			worst.Servers, worst.Tenants, worst.Classes,
			worst.P95Millis, worst.MILPSolves, worst.MILPSolvesNoGreedy, worst.SolveReduction)
	}
	return b.String()
}

// worstCell returns the grid's largest cell (the acceptance target).
func worstCell(r *FleetResult) *FleetCell {
	var w *FleetCell
	for i := range r.Cells {
		c := &r.Cells[i]
		if w == nil || c.Servers*c.Tenants*c.Classes > w.Servers*w.Tenants*w.Classes {
			w = c
		}
	}
	return w
}
