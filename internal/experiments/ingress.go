package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"time"

	"loki/internal/core"
	"loki/internal/engine"
	"loki/internal/ingress"
	"loki/internal/metrics"
	"loki/internal/policy"
	"loki/internal/profiles"
	"loki/internal/trace"
)

// IngressConfig describes the overload-shedding experiment: the traffic
// chain serves an open-loop HTTP load swept from below to far past its
// measured capacity, once with the front door wide open (every request
// admitted — today's trace-fed behaviour) and once with per-tenant admission
// control armed. The whole sweep runs on the wall-clock engine over real
// sockets — the load generator and the serving system only meet at the HTTP
// boundary, exactly as lokiload meets lokiserve.
type IngressConfig struct {
	Servers int
	SLOSec  float64
	Seed    int64
	// Mults are the offered-load multipliers of the measured cluster
	// capacity (MaxCapacity of the planner's own allocator).
	Mults []float64
	// DurSec is the seconds of load per sweep point; WarmupSec buckets at
	// the head of each point are excluded from attainment and goodput (plan
	// priming and socket ramp).
	DurSec    float64
	WarmupSec float64
	// Conns bounds the load generator's in-flight requests per point.
	Conns int
}

func (c *IngressConfig) defaults() {
	if c.Servers == 0 {
		c.Servers = 20
	}
	if c.SLOSec == 0 {
		c.SLOSec = 0.250
	}
	if len(c.Mults) == 0 {
		c.Mults = []float64{0.5, 1.0, 1.5, 2.0}
	}
	if c.DurSec == 0 {
		c.DurSec = 20
	}
	if c.WarmupSec == 0 {
		// Must outlast the fresh token bucket's burst allowance (BurstSec of
		// capacity) plus the drain the plan's route headroom affords — about
		// BurstSec/headroom seconds — or every overloaded point measures the
		// start-up transient instead of steady state.
		c.WarmupSec = 5
	}
	if c.Conns == 0 {
		c.Conns = 256
	}
}

// IngressPoint is one sweep point: one offered rate served through one front
// door configuration.
type IngressPoint struct {
	Mult       float64
	OfferedQPS float64
	Admission  bool
	// Load is the client-side view: what the generator sent and what came
	// back (202 / 429 / errors).
	Load ingress.LoadResult
	// Attainment is the SLO attainment of admitted requests after warmup —
	// with admission off every request is admitted, so this is the
	// all-requests attainment the no-front-door system delivers.
	Attainment float64
	// GoodputQPS is the mean rate of on-time completions after warmup.
	GoodputQPS float64
	// ShedRate is the shed fraction of the offered load (client-observed).
	ShedRate float64
	Summary  metrics.Summary
}

// IngressResult is the full sweep: capacity-normalised points with and
// without admission control, pairwise comparable by index.
type IngressResult struct {
	CapacityQPS float64
	SLOSec      float64
	// Baseline is the open front door (no admission); Admitted is the same
	// sweep with admission control armed. Same Mults order as the config.
	Baseline []IngressPoint
	Admitted []IngressPoint
}

// Ingress runs the overload sweep. Wall-clock time: each point costs DurSec
// real seconds, so the default config runs ~2×4×20s plus drains.
func Ingress(cfg IngressConfig) (*IngressResult, error) {
	cfg.defaults()
	capacity, err := measureCapacity(&cfg)
	if err != nil {
		return nil, err
	}
	res := &IngressResult{CapacityQPS: capacity, SLOSec: cfg.SLOSec}
	for _, withAdmission := range []bool{false, true} {
		for _, mult := range cfg.Mults {
			p, err := serveIngressPoint(&cfg, capacity, capacity*mult, withAdmission)
			if err != nil {
				return nil, fmt.Errorf("experiments: ingress %.2gx admission=%v: %w", mult, withAdmission, err)
			}
			p.Mult = mult
			if withAdmission {
				res.Admitted = append(res.Admitted, p)
			} else {
				res.Baseline = append(res.Baseline, p)
			}
		}
	}
	return res, nil
}

// measureCapacity asks a fresh allocator for the largest demand the cluster
// can fully serve — the 1× anchor of the sweep.
func measureCapacity(cfg *IngressConfig) (float64, error) {
	g := profiles.TrafficTree()
	prof := (&profiles.Profiler{Seed: cfg.Seed}).ProfileGraph(g, profiles.Batches)
	meta := core.NewMetadataStore(g, prof, cfg.SLOSec, profiles.Batches)
	alloc, err := core.NewAllocator(meta, core.AllocatorOptions{
		Servers:        cfg.Servers,
		NetLatencySec:  0.002,
		KeepWarm:       true,
		Headroom:       0.30,
		SolveTimeLimit: 500 * time.Millisecond,
	})
	if err != nil {
		return 0, err
	}
	return alloc.MaxCapacity(0, 20000), nil
}

// serveIngressPoint stands up a fresh single-tenant wall-clock stack behind
// an ingress HTTP server and drives it at the offered rate over real sockets
// for DurSec, returning the point's client- and server-side outcomes.
//
// Both arms run the NoDrop completion policy: the baseline must actually
// exhibit queueing-then-missing — excess arrivals rotting in the queue past
// their SLO — which is exactly what admission control prevents. The §5.2
// early-drop triage is a different, downstream mechanism with its own
// ablation (Figure 7); leaving it on here would conflate the two.
func serveIngressPoint(cfg *IngressConfig, capacity, offered float64, withAdmission bool) (IngressPoint, error) {
	g := profiles.TrafficTree()
	prof := (&profiles.Profiler{Seed: cfg.Seed}).ProfileGraph(g, profiles.Batches)
	meta := core.NewMetadataStore(g, prof, cfg.SLOSec, profiles.Batches)
	alloc, err := core.NewAllocator(meta, core.AllocatorOptions{
		Servers:        cfg.Servers,
		NetLatencySec:  0.002,
		KeepWarm:       true,
		Headroom:       0.30,
		SolveTimeLimit: 500 * time.Millisecond,
	})
	if err != nil {
		return IngressPoint{}, err
	}
	var adm *ingress.Admission
	if withAdmission {
		// Granted routes carry the 0.30 route headroom; admit at the demand
		// the plan was sized for, not its throughput ceiling.
		adm = ingress.NewAdmission(ingress.Config{SLOSec: cfg.SLOSec, TargetUtilization: 1 / 1.30})
	}
	col := metrics.NewCollector(1.0, cfg.Servers)
	eng, err := engine.NewMulti(engine.KindWallclock, engine.MultiConfig{
		Servers:       cfg.Servers,
		NetLatencySec: 0.002,
		Seed:          cfg.Seed,
		TimeScale:     1.0, // admission rates are per engine second; keep them equal to the socket clock's
		Tenants: []engine.TenantConfig{{
			Meta: meta, Collector: col, SLOSec: cfg.SLOSec, Admission: adm,
			Policy: policy.NoDrop{},
		}},
	})
	if err != nil {
		return IngressPoint{}, err
	}
	tenant := &core.Tenant{
		Name: "pipeline", Meta: meta, Alloc: alloc,
		RouteHeadroom: 0.30,
		Publish: func(plan *core.Plan, routes *core.Routes) {
			eng.ApplyPlan(0, plan, routes)
			if adm != nil {
				adm.SetRate(eng.Now(), ingress.FrontendRate(routes))
			}
		},
	}
	// Both arms plan for at most the pool's SLO-feasible capacity, so the
	// data plane is identical and the front door is the only variable. With
	// admission the cap is what production uses (tenancy wires it whenever a
	// gate is armed): the plan stays feasible — SLO-honest batches — and the
	// excess is the gate's to shed. For the open baseline the cap is what
	// makes it the ISSUE's queueing-then-missing door: excess arrivals pile
	// up behind a capacity-sized plan and rot past the SLO. Uncapped, the
	// planner would instead absorb overload with a saturated throughput-
	// optimal plan — a different overload response (degraded accuracy, ~53%
	// attainment at any load) that conflates planning policy with the
	// admission mechanism this sweep isolates.
	tenant.DemandCapQPS = capacity
	ctrl, err := core.NewMultiController(cfg.Servers, []*core.Tenant{tenant})
	if err != nil {
		return IngressPoint{}, err
	}
	// Pre-warm to the offered rate so the sweep measures steady-state
	// shedding, not cold-start planning lag (MaxCapacity caps what the plan
	// can actually grant).
	meta.ObserveDemand(offered)
	if err := ctrl.Step(true); err != nil {
		return IngressPoint{}, err
	}
	if err := eng.Start(ctrl); err != nil {
		return IngressPoint{}, err
	}

	srv := httptest.NewServer(ingress.NewServer(ingress.ServerConfig{
		Pipelines: []string{"pipeline"},
		Submit:    func(ctx context.Context, _ string) error { return eng.Submit(0) },
		Snapshot:  func(string) (any, error) { return eng.Stats(0), nil },
	}))
	lg := &ingress.LoadGen{BaseURL: srv.URL, Pipeline: "pipeline", Conns: cfg.Conns, Client: srv.Client()}
	load, runErr := lg.Run(context.Background(),
		trace.Ramp(offered, offered, 1, cfg.DurSec), rand.New(rand.NewSource(cfg.Seed+1)))
	srv.Close()
	if err := eng.Stop(); err != nil {
		return IngressPoint{}, err
	}
	if runErr != nil {
		return IngressPoint{}, runErr
	}

	att, _ := windowAttainment(col.Series(), cfg.WarmupSec, cfg.DurSec)
	p := IngressPoint{
		OfferedQPS: offered,
		Admission:  withAdmission,
		Load:       load,
		Attainment: att,
		GoodputQPS: windowGoodput(col.Series(), cfg.WarmupSec, cfg.DurSec),
		Summary:    col.Summarize(),
	}
	if n := load.Accepted + load.Shed; n > 0 {
		p.ShedRate = float64(load.Shed) / float64(n)
	}
	return p, nil
}

// windowGoodput averages on-time completions per second over buckets whose
// start lies in [start, end) — the steady-state goodput, excluding both the
// warmup head and the post-load drain tail.
func windowGoodput(series []metrics.Point, start, end float64) float64 {
	n := 0
	sum := 0.0
	for _, p := range series {
		if p.TimeSec < start || p.TimeSec >= end {
			continue
		}
		sum += p.GoodputQPS
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// FormatIngress renders the sweep: one row per (mode, multiplier) with the
// client-side outcome counts and the server-side attainment/goodput, then
// the pairwise admission-vs-baseline deltas the experiment exists to show.
func FormatIngress(r *IngressResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "measured capacity %.0f qps, SLO %.0f ms\n", r.CapacityQPS, r.SLOSec*1000)
	fmt.Fprintf(&b, "  %-10s %6s %9s %8s %8s %7s %10s %10s %9s\n",
		"front door", "mult", "offered", "sent", "shed", "shed-%", "attainment", "goodput", "maxlag-s")
	rows := func(name string, pts []IngressPoint) {
		for _, p := range pts {
			fmt.Fprintf(&b, "  %-10s %5.2gx %7.0f/s %8d %8d %6.1f%% %10.4f %8.0f/s %9.2f\n",
				name, p.Mult, p.OfferedQPS, p.Load.Sent, p.Load.Shed, 100*p.ShedRate,
				p.Attainment, p.GoodputQPS, p.Load.MaxLagSec)
		}
	}
	rows("open", r.Baseline)
	rows("admission", r.Admitted)
	for i := range r.Admitted {
		if i >= len(r.Baseline) {
			break
		}
		base, adm := r.Baseline[i], r.Admitted[i]
		fmt.Fprintf(&b, "  %.2gx: attainment %.4f -> %.4f (%+.4f), goodput %.0f -> %.0f qps (%+.0f)\n",
			adm.Mult, base.Attainment, adm.Attainment, adm.Attainment-base.Attainment,
			base.GoodputQPS, adm.GoodputQPS, adm.GoodputQPS-base.GoodputQPS)
	}
	return b.String()
}
