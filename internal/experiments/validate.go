package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"loki/internal/metrics"
	"loki/internal/profiles"
	"loki/internal/trace"
)

// ValidationResult compares the discrete-event simulator against the live
// wall-clock engine on the same workload (§6.2's "validating the simulator").
type ValidationResult struct {
	Sim  metrics.Summary
	Live metrics.Summary

	AccuracyDeltaPct  float64 // |sim − live| accuracy, percent
	ViolationDeltaPct float64 // |sim − live| violation ratio, percentage points
	ServersDeltaPct   float64 // |sim − live| mean servers, percent of cluster
	WallTime          time.Duration
}

// ValidateConfig parameterizes the validation run.
type ValidateConfig struct {
	Servers    int
	SLOSec     float64
	Seed       int64
	PeakQPS    float64
	TraceSteps int
	StepSec    float64
	// TimeScale < 1 compresses the live run's wall time.
	TimeScale float64
}

// Validate runs the identical trace through both engines with the same
// controller configuration and reports the metric deltas. The paper observed
// 1.2% / 1.8% / 1.5% average differences; ours land in the same
// few-percent band, dominated by goroutine scheduling jitter.
func Validate(cfg ValidateConfig) (*ValidationResult, error) {
	if cfg.Servers == 0 {
		cfg.Servers = 20
	}
	if cfg.SLOSec == 0 {
		cfg.SLOSec = 0.250
	}
	if cfg.PeakQPS == 0 {
		cfg.PeakQPS = 450
	}
	if cfg.TraceSteps == 0 {
		// A two-minute scaled day: long enough that controller transients
		// do not dominate either engine's numbers.
		cfg.TraceSteps = 24
	}
	if cfg.StepSec == 0 {
		cfg.StepSec = 5
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 0.5
	}
	g := profiles.TrafficTree()
	tr := trace.AzureLike(cfg.Seed, cfg.TraceSteps, cfg.StepSec).ScaleToPeak(cfg.PeakQPS)

	start := time.Now()

	// The two runs differ only in the backend behind the shared
	// engine.Engine interface; every other knob is identical.
	simRes, err := Run(RunConfig{
		Graph: g, Trace: tr, Approach: Loki, Backend: Simulated,
		Servers: cfg.Servers, SLOSec: cfg.SLOSec, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	liveRes, err := Run(RunConfig{
		Graph: g, Trace: tr, Approach: Loki, Backend: Wallclock,
		Servers: cfg.Servers, SLOSec: cfg.SLOSec, Seed: cfg.Seed,
		TimeScale: cfg.TimeScale,
	})
	if err != nil {
		return nil, err
	}

	res := &ValidationResult{
		Sim:      simRes.Summary,
		Live:     liveRes.Summary,
		WallTime: time.Since(start),
	}
	res.AccuracyDeltaPct = 100 * math.Abs(res.Sim.MeanAccuracy-res.Live.MeanAccuracy)
	res.ViolationDeltaPct = 100 * math.Abs(res.Sim.ViolationRatio-res.Live.ViolationRatio)
	if cfg.Servers > 0 {
		res.ServersDeltaPct = 100 * math.Abs(res.Sim.MeanServers-res.Live.MeanServers) / float64(cfg.Servers)
	}
	return res, nil
}

// FormatValidation renders the §6.2 comparison.
func FormatValidation(r *ValidationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %12s %12s\n", "metric", "simulator", "prototype")
	fmt.Fprintf(&b, "%-22s %12.4f %12.4f\n", "system accuracy", r.Sim.MeanAccuracy, r.Live.MeanAccuracy)
	fmt.Fprintf(&b, "%-22s %12.4f %12.4f\n", "slo violation ratio", r.Sim.ViolationRatio, r.Live.ViolationRatio)
	fmt.Fprintf(&b, "%-22s %12.1f %12.1f\n", "mean active servers", r.Sim.MeanServers, r.Live.MeanServers)
	fmt.Fprintf(&b, "\ndeltas: accuracy %.2f%% (paper 1.2%%), violations %.2fpp (paper 1.8%%), servers %.2f%% (paper 1.5%%)\n",
		r.AccuracyDeltaPct, r.ViolationDeltaPct, r.ServersDeltaPct)
	fmt.Fprintf(&b, "wall time: %v\n", r.WallTime)
	return b.String()
}
