package experiments

import (
	"fmt"
	"strings"
	"time"

	"loki/internal/core"
	"loki/internal/engine"
	"loki/internal/fault"
	"loki/internal/ingress"
	"loki/internal/metrics"
	"loki/internal/profiles"
	"loki/internal/trace"
)

// ChaosConfig describes the fault-injection suite: two pipelines — a
// high-tier "gold" and a low-tier "free" — share a reserved+spot pool at
// full load while the spot class suffers a mid-run fault (a partial crash,
// a whole-class outage, or a straggler slowdown) with a timed recovery.
// Every fault runs twice, with tiers and without, and each arm is scored in
// three windows (before, during, after the fault) against an
// instantly-replanning oracle: the during-oracle serves the same load with
// the fault active from the start (no stale state to converge from), the
// after-oracle is a fault-free run.
type ChaosConfig struct {
	// Reserved and Spot size the two hardware classes (defaults 12 and 8).
	Reserved, Spot int
	SLOSec         float64
	Seed           int64
	// QPS is the steady per-pipeline offered load (default 240 — the
	// two pipelines together run the healthy pool near capacity, so the
	// spot outage forces a real shortfall).
	QPS float64
	// DurSec is the run length; FaultAtSec and FaultDurSec place the fault
	// (defaults 120, 40, 40).
	DurSec, FaultAtSec, FaultDurSec float64
	// CrashN and StraggleN/StraggleFactor shape the partial-fault cells.
	CrashN, StraggleN int
	StraggleFactor    float64
	// Faults selects which fault kinds to run (subset of "crash",
	// "outage", "straggle"; empty = all three). The benchmark canary uses
	// it to run the headline outage cell alone.
	Faults []string
	// Quick shrinks the run for smoke passes.
	Quick bool
}

func (c *ChaosConfig) defaults() {
	if c.Reserved == 0 {
		c.Reserved = 12
	}
	if c.Spot == 0 {
		c.Spot = 8
	}
	if c.SLOSec == 0 {
		c.SLOSec = 0.250
	}
	if c.QPS == 0 {
		c.QPS = 240
	}
	if c.DurSec == 0 {
		c.DurSec = 120
	}
	if c.FaultAtSec == 0 {
		c.FaultAtSec = 40
	}
	if c.FaultDurSec == 0 {
		c.FaultDurSec = 40
	}
	if c.CrashN == 0 {
		c.CrashN = 2
	}
	if c.StraggleN == 0 {
		c.StraggleN = 4
	}
	if c.StraggleFactor == 0 {
		c.StraggleFactor = 0.25
	}
	if c.Quick {
		c.DurSec, c.FaultAtSec, c.FaultDurSec = 60, 20, 20
	}
}

// windows returns the three scoring windows: before starts after warmup,
// during leaves a short grace for detection and re-planning, after starts
// one adaptation round past recovery (the oracle-convergence acceptance is
// "within one round", so the window begins where that promise ends).
func (c *ChaosConfig) windows() (b0, b1, d0, d1, a0, a1 float64) {
	grace := 5.0
	round := 10.0
	if c.Quick {
		grace, round = 4, 10
	}
	return 10, c.FaultAtSec,
		c.FaultAtSec + grace, c.FaultAtSec + c.FaultDurSec,
		c.FaultAtSec + c.FaultDurSec + round, c.DurSec
}

// ChaosWindow is one tenant's score over one window. Attainment is the SLO
// attainment of the admitted population; GoodputRatio divides on-time
// completions by the offered load (admitted + shed), so front-door shedding
// — invisible to Attainment, since shed requests never arrive — still
// counts as degradation; ShedPct is the shed share of offered load.
type ChaosWindow struct {
	Attainment   float64
	GoodputRatio float64
	ShedPct      float64
}

// ChaosTenant is one pipeline's outcome across the three windows of one
// cell, alongside the oracle's score for the during and after windows.
type ChaosTenant struct {
	Name                      string
	Tier                      int
	Before, During, After     ChaosWindow
	OracleDuring, OracleAfter ChaosWindow
	Summary                   metrics.Summary
}

// ChaosCell is one grid cell: a fault kind served with or without tiers.
type ChaosCell struct {
	Fault   string
	Tiered  bool
	Events  []string
	Tenants []ChaosTenant
}

// ChaosResult is the full grid.
type ChaosResult struct {
	Cells []ChaosCell
}

// chaosFaults returns the cell's fault schedule. permanent anchors the
// fault at the start of the run with no recovery — the oracle arm, whose
// control plane never holds state from a healthier pool.
func (c *ChaosConfig) chaosFaults(kind string, permanent bool) *fault.Schedule {
	at, rec := c.FaultAtSec, c.FaultDurSec
	if permanent {
		at, rec = 0, 0
	}
	ev := fault.Event{At: at, Class: "spot", RecoverAfter: rec}
	switch kind {
	case "crash":
		ev.Kind = fault.Crash
		ev.N = c.CrashN
	case "outage":
		ev.Kind = fault.Outage
	case "straggle":
		ev.Kind = fault.Straggler
		ev.N = c.StraggleN
		ev.Factor = c.StraggleFactor
	}
	return &fault.Schedule{Events: []fault.Event{ev}}
}

// chaosOnGrants, when set by a test, observes every joint allocation of a
// chaos run (step, per-tenant granted-server totals).
var chaosOnGrants func(step int, totals []int)

// chaosRun serves the two-pipeline scenario once on the simulator and
// returns each tenant's collector series plus the fault events observed.
func chaosRun(cfg ChaosConfig, tiered bool, sched *fault.Schedule) ([]*metrics.Collector, []metrics.Summary, []string, error) {
	names := []string{"gold", "free"}
	tiers := []int{0, 0}
	if tiered {
		tiers[0] = 1
	}
	classes := []profiles.Class{
		{Name: "res", Count: cfg.Reserved, Speed: 1.0},
		{Name: "spot", Count: cfg.Spot, Speed: 1.0},
	}
	pool := cfg.Reserved + cfg.Spot

	var events []string
	prof := &profiles.Profiler{Seed: cfg.Seed}
	mcfg := engine.MultiConfig{
		Servers:       pool,
		Classes:       classes,
		NetLatencySec: 0.002,
		Seed:          cfg.Seed,
		Faults:        sched,
		OnFault: func(timeSec float64, desc string) {
			events = append(events, fmt.Sprintf("t=%.0fs %s", timeSec, desc))
		},
	}
	var tenants []*core.Tenant
	var cols []*metrics.Collector
	var adms []*ingress.Admission
	for i, name := range names {
		g := profiles.TrafficTree()
		meta := core.NewMetadataStoreHetero(g, classes,
			prof.ProfileGraphClasses(g, profiles.Batches, classes), cfg.SLOSec, profiles.Batches)
		alloc, err := core.NewAllocator(meta, core.AllocatorOptions{
			Servers:        pool,
			NetLatencySec:  0.002,
			KeepWarm:       true,
			Headroom:       0.30,
			SolveTimeLimit: 500 * time.Millisecond,
		})
		if err != nil {
			return nil, nil, nil, fmt.Errorf("experiments: chaos tenant %q: %w", name, err)
		}
		// One-second buckets: the windows are scored at fault granularity.
		col := metrics.NewCollector(1, pool)
		cols = append(cols, col)
		adm := ingress.NewAdmission(ingress.Config{
			SLOSec:            cfg.SLOSec,
			TargetUtilization: 1 / 1.30,
		})
		adms = append(adms, adm)
		mcfg.Tenants = append(mcfg.Tenants, engine.TenantConfig{
			Meta: meta, Collector: col, SLOSec: cfg.SLOSec,
			Tier: tiers[i], Admission: adm,
		})
		tenants = append(tenants, &core.Tenant{
			Name: name, Tier: tiers[i], Meta: meta, Alloc: alloc,
			RouteHeadroom: 0.30,
		})
	}

	eng, err := engine.NewMulti(engine.KindSimulated, mcfg)
	if err != nil {
		return nil, nil, nil, err
	}
	for i, t := range tenants {
		i, adm := i, adms[i]
		t.Publish = func(plan *core.Plan, routes *core.Routes) {
			eng.ApplyPlan(i, plan, routes)
			adm.SetRate(eng.Now(), ingress.FrontendRate(routes))
		}
	}
	ctrl, err := core.NewMultiController(pool, tenants)
	if err != nil {
		return nil, nil, nil, err
	}
	ctrl.OnGrants = chaosOnGrants

	steps := int(cfg.DurSec / 4)
	tr := trace.Ramp(cfg.QPS, cfg.QPS, steps, 4)
	for _, t := range tenants {
		t.Meta.ObserveDemand(cfg.QPS)
	}
	if err := ctrl.Step(true); err != nil {
		return nil, nil, nil, err
	}
	if err := eng.Start(ctrl); err != nil {
		return nil, nil, nil, err
	}
	if err := eng.FeedAll([]*trace.Trace{tr, tr}); err != nil {
		return nil, nil, nil, err
	}
	if err := eng.Stop(); err != nil {
		return nil, nil, nil, err
	}
	sums := make([]metrics.Summary, len(cols))
	for i, col := range cols {
		sums[i] = col.Summarize()
	}
	return cols, sums, events, nil
}

// windowScore aggregates one window of a series into attainment, goodput
// ratio, and shed share.
func windowScore(series []metrics.Point, start, end float64) ChaosWindow {
	arr, viol, shed := 0, 0, 0
	for _, p := range series {
		if p.TimeSec < start || p.TimeSec >= end {
			continue
		}
		arr += p.Arrivals
		viol += p.Violations
		shed += p.Shed
	}
	w := ChaosWindow{Attainment: 1, GoodputRatio: 1}
	offered := arr + shed
	if arr > 0 {
		w.Attainment = 1 - float64(viol)/float64(arr)
	}
	if offered > 0 {
		w.GoodputRatio = float64(arr-viol) / float64(offered)
		w.ShedPct = 100 * float64(shed) / float64(offered)
	}
	return w
}

// Chaos runs the full fault × tiering grid on the simulator. Every cell
// serves the same full-load scenario; its oracle arms share the cell's
// seed, so main-vs-oracle gaps measure adaptation lag, not workload noise.
func Chaos(cfg ChaosConfig) (*ChaosResult, error) {
	cfg.defaults()
	b0, b1, d0, d1, a0, a1 := cfg.windows()
	res := &ChaosResult{}
	kinds := cfg.Faults
	if len(kinds) == 0 {
		kinds = []string{"crash", "outage", "straggle"}
	}
	for _, kind := range kinds {
		for _, tiered := range []bool{true, false} {
			cols, sums, events, err := chaosRun(cfg, tiered, cfg.chaosFaults(kind, false))
			if err != nil {
				return nil, err
			}
			// During-oracle: the same fault, active from the start and
			// never recovered — a control plane with nothing stale to
			// unlearn in the during window.
			oCols, _, _, err := chaosRun(cfg, tiered, cfg.chaosFaults(kind, true))
			if err != nil {
				return nil, err
			}
			// After-oracle: no fault at all, scored in the after window.
			cCols, _, _, err := chaosRun(cfg, tiered, nil)
			if err != nil {
				return nil, err
			}
			cell := ChaosCell{Fault: kind, Tiered: tiered, Events: events}
			tiers := []int{0, 0}
			if tiered {
				tiers[0] = 1
			}
			for i, name := range []string{"gold", "free"} {
				s := cols[i].Series()
				cell.Tenants = append(cell.Tenants, ChaosTenant{
					Name:         name,
					Tier:         tiers[i],
					Before:       windowScore(s, b0, b1),
					During:       windowScore(s, d0, d1),
					After:        windowScore(s, a0, a1),
					OracleDuring: windowScore(oCols[i].Series(), d0, d1),
					OracleAfter:  windowScore(cCols[i].Series(), a0, a1),
					Summary:      sums[i],
				})
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// FormatChaos renders the grid: one row per (fault, arm, tenant) with the
// three windows' goodput ratio (and attainment), the oracle's during/after
// scores, and the recovery gap.
func FormatChaos(r *ChaosResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %-9s %-5s %-5s %8s %8s %8s %9s %9s %8s %8s\n",
		"fault", "arm", "tenant", "tier", "before", "during", "after", "oracle-d", "oracle-a", "shed%%d", "att-d")
	for _, c := range r.Cells {
		arm := "untiered"
		if c.Tiered {
			arm = "tiered"
		}
		for _, t := range c.Tenants {
			fmt.Fprintf(&b, "%-9s %-9s %-5s %5d %8.4f %8.4f %8.4f %9.4f %9.4f %8.1f %8.4f\n",
				c.Fault, arm, t.Name, t.Tier,
				t.Before.GoodputRatio, t.During.GoodputRatio, t.After.GoodputRatio,
				t.OracleDuring.GoodputRatio, t.OracleAfter.GoodputRatio,
				t.During.ShedPct, t.During.Attainment)
		}
	}
	b.WriteString("\ngoodput ratio = on-time completions / offered load (admitted + shed);\n")
	b.WriteString("att-d = SLO attainment of the admitted population during the fault;\n")
	b.WriteString("oracle-d reruns the cell with the fault active from t=0 (instant replan),\n")
	b.WriteString("oracle-a is a fault-free run scored in the after window.\n")
	for _, c := range r.Cells {
		if c.Tiered {
			fmt.Fprintf(&b, "%s events: %s\n", c.Fault, strings.Join(c.Events, "; "))
		}
	}
	return b.String()
}
