package experiments

import (
	"testing"
)

// TestIngressShedBeatsQueueRot is the overload-sweep acceptance check: on a
// capacity-matched data plane, admission control must keep the admitted
// population's SLO attainment at the baseline's healthy-load level while the
// open door's queues rot, and its goodput under 2x overload must strictly
// beat the open door's. Wall-clock: the sweep costs 4 points x DurSec real
// seconds over real sockets.
func TestIngressShedBeatsQueueRot(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock HTTP sweep")
	}
	r, err := Ingress(IngressConfig{
		Seed:  11,
		Mults: []float64{1.0, 2.0},
		// The warmup window must outlast the fresh bucket's burst (BurstSec
		// of capacity) plus the drain the plan's headroom affords, or the 2x
		// points measure the start-up transient.
		DurSec:    8,
		WarmupSec: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Baseline) != 2 || len(r.Admitted) != 2 {
		t.Fatalf("sweep shape: %d baseline, %d admitted points", len(r.Baseline), len(r.Admitted))
	}
	if r.CapacityQPS <= 0 {
		t.Fatalf("measured capacity %.0f", r.CapacityQPS)
	}
	base1, base2 := r.Baseline[0], r.Baseline[1]
	adm1, adm2 := r.Admitted[0], r.Admitted[1]

	// At 1x nobody should shed and the doors should be indistinguishable.
	if adm1.ShedRate > 0.02 {
		t.Errorf("admission sheds %.1f%% at 1x capacity", 100*adm1.ShedRate)
	}
	if adm1.Attainment < base1.Attainment-0.02 {
		t.Errorf("admission at 1x: attainment %.4f vs open %.4f", adm1.Attainment, base1.Attainment)
	}

	// At 2x the gate must shed a substantial fraction...
	if adm2.ShedRate < 0.25 {
		t.Errorf("admission sheds only %.1f%% at 2x capacity", 100*adm2.ShedRate)
	}
	// ...and the admitted population must keep the healthy-load attainment
	// (the acceptance bar: no worse than the open door under no overload).
	if adm2.Attainment < base1.Attainment-0.02 {
		t.Errorf("admitted attainment %.4f at 2x, open door at 1x %.4f", adm2.Attainment, base1.Attainment)
	}
	// Shedding early must strictly beat queueing-then-missing on goodput.
	if adm2.GoodputQPS <= base2.GoodputQPS {
		t.Errorf("goodput at 2x: admission %.0f qps, open %.0f qps — shedding must win",
			adm2.GoodputQPS, base2.GoodputQPS)
	}
	// And the open door must actually have rotted — if it still attains the
	// SLO under 2x overload the sweep is not measuring overload at all.
	if base2.Attainment > 0.5 {
		t.Errorf("open door attains %.4f at 2x capacity; expected queue rot", base2.Attainment)
	}
}
