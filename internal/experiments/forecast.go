package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"loki/internal/core"
	"loki/internal/engine"
	"loki/internal/forecast"
	"loki/internal/metrics"
	"loki/internal/profiles"
	"loki/internal/trace"
)

// ForecastConfig describes the proactive-provisioning experiment: the same
// pipeline serves a flash-crowd trace and a diurnal trace, once reactively
// (no forecaster — today's control plane) and once per forecaster, and the
// runs are compared on SLO attainment inside the stress window. Model-swap
// pauses are on (SwapSec), because the cost the forecaster avoids is paying
// those pauses at the spike crest instead of during the ramp.
type ForecastConfig struct {
	Servers    int
	SLOSec     float64
	Seed       int64
	TraceSteps int
	StepSec    float64
	// BaseQPS and SpikeMult shape the flash-crowd trace: a flat base with a
	// sudden SpikeMult× burst over [SpikeStart, SpikeStart+SpikeDur) of the
	// run (fractions).
	BaseQPS              float64
	SpikeMult            float64
	SpikeStart, SpikeDur float64
	// TroughQPS/PeakQPS/Periods shape the diurnal trace.
	TroughQPS, PeakQPS float64
	Periods            int
	// Season is the Holt-Winters seasonal period, in per-second samples,
	// used on the diurnal scenario (zero means one diurnal cycle:
	// TraceSteps×StepSec/Periods). The flash-crowd scenario always runs
	// season-free — a one-off burst has no cycle to learn, and a seasonal
	// model would still be in its first-period warmup when the burst hits.
	Season int
	// SwapSec is the model-load pause when a worker changes variant.
	SwapSec float64
	// HorizonSec and Headroom configure the forecasters' envelope.
	HorizonSec float64
	Headroom   float64
}

func (c *ForecastConfig) defaults() {
	if c.Servers == 0 {
		c.Servers = 20
	}
	if c.SLOSec == 0 {
		c.SLOSec = 0.250
	}
	if c.TraceSteps == 0 {
		c.TraceSteps = 36
	}
	if c.StepSec == 0 {
		c.StepSec = 10
	}
	if c.BaseQPS == 0 {
		c.BaseQPS = 200
	}
	if c.SpikeMult == 0 {
		c.SpikeMult = 3
	}
	if c.SpikeStart == 0 {
		c.SpikeStart = 0.4
	}
	if c.SpikeDur == 0 {
		c.SpikeDur = 0.25
	}
	if c.TroughQPS == 0 {
		c.TroughQPS = 60
	}
	if c.PeakQPS == 0 {
		c.PeakQPS = 520
	}
	if c.Periods == 0 {
		c.Periods = 2
	}
	if c.SwapSec == 0 {
		c.SwapSec = 0.5
	}
	if c.HorizonSec == 0 {
		c.HorizonSec = core.DefaultForecastHorizonSec
	}
	if c.Headroom == 0 {
		c.Headroom = 0.10
	}
	if c.Season == 0 {
		c.Season = int(float64(c.TraceSteps) * c.StepSec / float64(c.Periods))
	}
}

// ForecastOutcome is one (trace, forecaster) serving run.
type ForecastOutcome struct {
	Name    string // reactive, trend, holtwinters
	Summary metrics.Summary
	// WindowAttainment is the SLO attainment (1 - violation ratio) over the
	// stress window only: the burst steps of the flash-crowd trace, the
	// whole run for the diurnal trace.
	WindowAttainment float64
	// WindowArrivals counts requests arriving inside the window.
	WindowArrivals int
	// ForecastMAE is the offline mean absolute error of the forecaster's
	// horizon-ahead predictions against the trace's true rates, over the
	// whole trace (persistence error for the reactive baseline).
	ForecastMAE float64
}

// ForecastResult is one scenario (trace shape) of the experiment.
type ForecastResult struct {
	Scenario                     string // flash-crowd or diurnal
	WindowStartSec, WindowEndSec float64
	Outcomes                     []ForecastOutcome
}

// forecasterSpec names one forecaster under test. build constructs the
// serving instance (envelope-wrapped, what the control plane plans against);
// point constructs the raw model for offline accuracy scoring — the envelope
// is deliberately biased high (window max plus headroom), so scoring it on
// MAE would punish exactly the asymmetry that makes it a good planning
// signal. Fresh instances each call: serving and evaluation must not share
// model state.
type forecasterSpec struct {
	name  string
	build func() forecast.Forecaster
	point func() forecast.Forecaster
}

// specs builds the forecaster roster for one scenario; season is the
// Holt-Winters period in samples (0 = trend-only Holt).
func (cfg *ForecastConfig) specs(season int) []forecasterSpec {
	envelope := func(base forecast.Forecaster) forecast.Forecaster {
		return &forecast.Envelope{Base: base, HorizonSec: cfg.HorizonSec, Headroom: cfg.Headroom}
	}
	return []forecasterSpec{
		{
			"reactive",
			func() forecast.Forecaster { return nil },
			func() forecast.Forecaster { return &forecast.Last{} },
		},
		{
			"trend",
			func() forecast.Forecaster { return envelope(&forecast.Trend{}) },
			func() forecast.Forecaster { return &forecast.Trend{} },
		},
		{
			"holtwinters",
			func() forecast.Forecaster { return envelope(&forecast.HoltWinters{Period: season}) },
			func() forecast.Forecaster { return &forecast.HoltWinters{Period: season} },
		},
	}
}

// Forecast runs the proactive-provisioning comparison on the discrete-event
// simulator: for each trace shape, the identical workload is served once per
// forecaster (the reactive baseline is a nil forecaster — the unchanged
// control plane), and SLO attainment inside the stress window plus offline
// forecast error are reported. Deterministic for a fixed seed.
func Forecast(cfg ForecastConfig) ([]*ForecastResult, error) {
	cfg.defaults()
	dur := float64(cfg.TraceSteps) * cfg.StepSec

	flash := trace.FlashCrowd(cfg.BaseQPS, cfg.TraceSteps, cfg.StepSec, cfg.SpikeStart, cfg.SpikeDur, cfg.SpikeMult)
	diurnal := trace.Diurnal(cfg.TraceSteps, cfg.StepSec, cfg.TroughQPS, cfg.PeakQPS, cfg.Periods)

	scenarios := []struct {
		name       string
		tr         *trace.Trace
		start, end float64
		season     int
	}{
		{
			name: "flash-crowd",
			tr:   flash,
			// Mirror trace.FlashCrowd's step arithmetic exactly — the burst
			// spans [Round(start·steps), Round(start·steps)+Round(dur·steps))
			// — so the attainment window never misaligns with the burst for
			// fractions whose sum rounds differently than their parts.
			start: math.Round(cfg.SpikeStart*float64(cfg.TraceSteps)) * cfg.StepSec,
			end: (math.Round(cfg.SpikeStart*float64(cfg.TraceSteps)) +
				math.Round(cfg.SpikeDur*float64(cfg.TraceSteps))) * cfg.StepSec,
		},
		{name: "diurnal", tr: diurnal, start: 0, end: dur, season: cfg.Season},
	}

	var out []*ForecastResult
	for _, sc := range scenarios {
		res := &ForecastResult{Scenario: sc.name, WindowStartSec: sc.start, WindowEndSec: sc.end}
		for _, spec := range cfg.specs(sc.season) {
			sum, win, arr, err := serveWithForecaster(&cfg, sc.tr, spec.build(), sc.start, sc.end)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %w", sc.name, spec.name, err)
			}
			res.Outcomes = append(res.Outcomes, ForecastOutcome{
				Name:             spec.name,
				Summary:          sum,
				WindowAttainment: win,
				WindowArrivals:   arr,
				ForecastMAE:      offlineMAE(spec.point(), sc.tr, cfg.HorizonSec),
			})
		}
		out = append(out, res)
	}
	return out, nil
}

// serveWithForecaster plays one trace through a fresh single-tenant stack
// with the given forecaster installed (nil = reactive) and returns the run
// summary plus SLO attainment over [winStart, winEnd).
func serveWithForecaster(cfg *ForecastConfig, tr *trace.Trace, fc forecast.Forecaster, winStart, winEnd float64) (metrics.Summary, float64, int, error) {
	g := profiles.TrafficTree()
	prof := (&profiles.Profiler{Seed: cfg.Seed}).ProfileGraph(g, profiles.Batches)
	meta := core.NewMetadataStore(g, prof, cfg.SLOSec, profiles.Batches)
	if fc != nil {
		meta.SetForecaster(fc)
	}
	alloc, err := core.NewAllocator(meta, core.AllocatorOptions{
		Servers:        cfg.Servers,
		NetLatencySec:  0.002,
		KeepWarm:       true,
		Headroom:       0.30,
		SolveTimeLimit: 500 * time.Millisecond,
	})
	if err != nil {
		return metrics.Summary{}, 0, 0, err
	}
	// Buckets aligned to the trace step so the spike window cuts cleanly.
	col := metrics.NewCollector(cfg.StepSec, cfg.Servers)
	eng, err := engine.NewMulti(engine.KindSimulated, engine.MultiConfig{
		Servers:        cfg.Servers,
		NetLatencySec:  0.002,
		Seed:           cfg.Seed,
		SwapLatencySec: cfg.SwapSec,
		Tenants:        []engine.TenantConfig{{Meta: meta, Collector: col, SLOSec: cfg.SLOSec}},
	})
	if err != nil {
		return metrics.Summary{}, 0, 0, err
	}
	tenant := &core.Tenant{
		Name: "pipeline", Meta: meta, Alloc: alloc,
		RouteHeadroom:      0.30,
		ForecastHorizonSec: cfg.HorizonSec,
		Publish: func(plan *core.Plan, routes *core.Routes) {
			eng.ApplyPlan(0, plan, routes)
		},
	}
	ctrl, err := core.NewMultiController(cfg.Servers, []*core.Tenant{tenant})
	if err != nil {
		return metrics.Summary{}, 0, 0, err
	}
	meta.ObserveDemand(tr.QPS[0])
	if err := ctrl.Step(true); err != nil {
		return metrics.Summary{}, 0, 0, err
	}
	if err := eng.Start(ctrl); err != nil {
		return metrics.Summary{}, 0, 0, err
	}
	if err := eng.FeedAll([]*trace.Trace{tr}); err != nil {
		return metrics.Summary{}, 0, 0, err
	}
	if err := eng.Stop(); err != nil {
		return metrics.Summary{}, 0, 0, err
	}
	att, arr := windowAttainment(col.Series(), winStart, winEnd)
	return col.Summarize(), att, arr, nil
}

// windowAttainment aggregates SLO attainment over buckets whose start lies
// in [start, end). Both counts are attributed by *arrival* time —
// Point.Violations charges a late/dropped request to the bucket it arrived
// in — so the ratio is exact and request-weighted: a request that arrives at
// the crest but completes late just past the window edge still counts
// against the window it arrived in.
func windowAttainment(series []metrics.Point, start, end float64) (float64, int) {
	arrivals := 0
	violations := 0
	for _, p := range series {
		if p.TimeSec < start || p.TimeSec >= end {
			continue
		}
		arrivals += p.Arrivals
		violations += p.Violations
	}
	if arrivals == 0 {
		return 1, 0
	}
	return 1 - float64(violations)/float64(arrivals), arrivals
}

// offlineMAE replays the trace's true per-second rates through a fresh
// point forecaster and scores its horizon-ahead predictions against the
// rates that actually followed — the forecast-accuracy half of the
// experiment, decoupled from serving noise. The reactive baseline is scored
// as persistence (predict the current rate), which is exactly what the
// reactive control plane implicitly assumes.
func offlineMAE(fc forecast.Forecaster, tr *trace.Trace, horizonSec float64) float64 {
	dur := tr.Duration()
	n := 0
	sum := 0.0
	for t := 0.0; t+horizonSec < dur; t++ {
		fc.Observe(t, tr.RateAt(t))
		sum += math.Abs(fc.Predict(horizonSec) - tr.RateAt(t+horizonSec))
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// FormatForecast renders the experiment: one table per scenario comparing
// reactive and proactive runs on window attainment, whole-run violations,
// accuracy, servers, and offline forecast error.
func FormatForecast(results []*ForecastResult) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "%s (stress window %.0fs-%.0fs):\n", r.Scenario, r.WindowStartSec, r.WindowEndSec)
		fmt.Fprintf(&b, "  %-12s %12s %12s %10s %10s %8s %12s\n",
			"forecaster", "window-slo", "window-arr", "run-viol", "accuracy", "servers", "forecast-mae")
		for _, o := range r.Outcomes {
			fmt.Fprintf(&b, "  %-12s %12.4f %12d %10.4f %10.4f %8.1f %12.1f\n",
				o.Name, o.WindowAttainment, o.WindowArrivals,
				o.Summary.ViolationRatio, o.Summary.MeanAccuracy, o.Summary.MeanServers, o.ForecastMAE)
		}
		base := r.Outcomes[0]
		for _, o := range r.Outcomes[1:] {
			fmt.Fprintf(&b, "  %s vs %s: window SLO %.4f -> %.4f (%+.4f)\n",
				o.Name, base.Name, base.WindowAttainment, o.WindowAttainment,
				o.WindowAttainment-base.WindowAttainment)
		}
		b.WriteString("\n")
	}
	return b.String()
}
