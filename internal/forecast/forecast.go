// Package forecast predicts near-future demand from an observed arrival-rate
// series, the missing half of a proactive control plane. The reactive
// Resource Manager plans against a smoothed estimate of *current* demand, so
// every spike is absorbed as drops until the estimator catches up and the
// swapped-in capacity finishes warming; InferLine (Crankshaw et al.) showed
// that planning against a predicted envelope of the next planning period is
// what lets tight-latency pipelines survive bursts. The models here are
// deliberately small and deterministic: an identity forecaster that
// reproduces reactive behavior exactly, a sliding-window linear trend, and
// Holt-Winters exponential smoothing for diurnal traces, plus the
// InferLine-style Envelope combinator that takes the max prediction over the
// planning horizon with a configurable headroom factor.
//
// Implementations are not safe for concurrent use; the MetadataStore (the
// one shared consumer) serializes Observe and Predict under its own lock.
package forecast

import "math"

// Forecaster is a demand-prediction model. Observe folds one rate sample,
// taken at time t (seconds on the caller's clock), into the model; Predict
// extrapolates the rate `horizon` seconds past the most recent observation.
// A horizon of zero asks for the model's current level, and predictions are
// never negative.
type Forecaster interface {
	// Observe folds a rate sample taken at time t into the model. Times must
	// be non-decreasing across calls.
	Observe(t, rate float64)
	// Predict returns the forecast rate `horizon` seconds after the latest
	// observation (clamped to zero from below). Before any observation it
	// returns 0.
	Predict(horizon float64) float64
}

// Last is the identity forecaster: it predicts that demand stays at the most
// recently observed value, for every horizon. Planning against it reproduces
// the reactive control plane bit for bit — it exists so "no forecasting" and
// "forecasting disabled" are the same code path.
type Last struct {
	val float64
}

// Observe records the sample; the time is irrelevant to a persistence model.
func (l *Last) Observe(t, rate float64) { l.val = rate }

// Predict returns the last observed rate unchanged, whatever the horizon.
func (l *Last) Predict(horizon float64) float64 { return l.val }

// DefaultTrendWindow is the sliding-window length (in samples) a Trend
// forecaster uses when Window is zero. With per-second observations it spans
// half a minute — long enough to average sampling noise, short enough that a
// flash crowd dominates the fit within a few seconds.
const DefaultTrendWindow = 30

// Trend predicts by least-squares linear regression over a sliding window of
// recent samples: the fitted line is extrapolated to the prediction instant.
// On an exactly linear ramp the prediction is exact; on a step change the
// fresh samples swing the slope within a few observations, which is what
// makes it useful as a cheap spike detector.
type Trend struct {
	// Window is the number of recent samples regressed over (0 means
	// DefaultTrendWindow).
	Window int

	ts, xs []float64
	a, b   float64 // cached fit: rate ≈ a + b·t
}

// Observe appends the sample to the window and refreshes the cached fit.
func (tr *Trend) Observe(t, rate float64) {
	w := tr.Window
	if w <= 0 {
		w = DefaultTrendWindow
	}
	if len(tr.ts) >= w {
		n := copy(tr.ts, tr.ts[len(tr.ts)-w+1:])
		tr.ts = tr.ts[:n]
		n = copy(tr.xs, tr.xs[len(tr.xs)-w+1:])
		tr.xs = tr.xs[:n]
	}
	tr.ts = append(tr.ts, t)
	tr.xs = append(tr.xs, rate)
	tr.refit()
}

// refit recomputes the least-squares line through the window, with the mean
// subtracted first so the normal equations stay well-conditioned for large
// absolute times.
func (tr *Trend) refit() {
	n := float64(len(tr.ts))
	mt, mx := 0.0, 0.0
	for i := range tr.ts {
		mt += tr.ts[i]
		mx += tr.xs[i]
	}
	mt /= n
	mx /= n
	stt, stx := 0.0, 0.0
	for i := range tr.ts {
		dt := tr.ts[i] - mt
		stt += dt * dt
		stx += dt * (tr.xs[i] - mx)
	}
	if stt == 0 {
		// One sample, or all samples at one instant: flat line.
		tr.a, tr.b = mx, 0
		return
	}
	tr.b = stx / stt
	tr.a = mx - tr.b*mt
}

// Predict extrapolates the fitted line `horizon` seconds past the latest
// sample. With fewer than two samples it degrades to persistence.
func (tr *Trend) Predict(horizon float64) float64 {
	if len(tr.ts) == 0 {
		return 0
	}
	if len(tr.ts) == 1 {
		return math.Max(0, tr.xs[0])
	}
	return math.Max(0, tr.a+tr.b*(tr.ts[len(tr.ts)-1]+horizon))
}

// Default Holt-Winters gains: a fast level (spikes move the forecast within
// a couple of samples), a moderately damped trend, and a slow seasonal
// update (each season slot is revisited only once per period).
const (
	DefaultHWAlpha = 0.45
	DefaultHWBeta  = 0.25
	DefaultHWGamma = 0.15
)

// HoltWinters is double exponential smoothing (Holt's level + trend method),
// optionally extended to additive triple smoothing when Period is set: the
// model then also learns a repeating seasonal profile of Period samples,
// which fits diurnal traces once a full day of history has streamed in.
// Samples are treated as evenly spaced; the observed spacing is smoothed and
// used to convert Predict's horizon from seconds into sample steps.
type HoltWinters struct {
	// Alpha, Beta, Gamma are the level, trend, and season gains in (0,1];
	// zero selects the package defaults.
	Alpha, Beta, Gamma float64
	// Period is the season length in samples; 0 disables seasonality
	// (plain Holt's method).
	Period int

	level, trend float64
	season       []float64
	warmup       []float64 // first-period buffer seeding the seasonal profile
	n            int       // samples folded in
	lastT        float64
	dt           float64 // smoothed observation spacing, seconds/sample
}

// Observe folds one sample into the level/trend (and, past the first period,
// seasonal) state. A seasonal model buffers its first full period and seeds
// the seasonal profile from that period's deviations around its mean — the
// textbook initialization; zero-seeded seasons let the cycle leak into the
// trend term, which a multi-step extrapolation then amplifies.
func (h *HoltWinters) Observe(t, rate float64) {
	if h.n == 0 {
		h.level = rate
		h.trend = 0
		h.lastT = t
		h.n = 1
		if h.Period > 1 {
			h.warmup = append(h.warmup, rate)
		}
		return
	}
	if gap := t - h.lastT; gap > 0 {
		if h.dt == 0 {
			h.dt = gap
		} else {
			h.dt += 0.1 * (gap - h.dt)
		}
	}
	h.lastT = t

	if h.warmup != nil {
		// Still collecting the seeding period: run plain persistence on the
		// level so pre-warmup predictions stay sane.
		h.warmup = append(h.warmup, rate)
		h.level = rate
		h.n++
		if len(h.warmup) == h.Period {
			mean := 0.0
			for _, x := range h.warmup {
				mean += x
			}
			mean /= float64(h.Period)
			h.level = mean
			h.trend = 0
			h.season = make([]float64, h.Period)
			for i, x := range h.warmup {
				h.season[i] = x - mean
			}
			h.warmup = nil
		}
		return
	}

	alpha, beta, gamma := h.Alpha, h.Beta, h.Gamma
	if alpha == 0 {
		alpha = DefaultHWAlpha
	}
	if beta == 0 {
		beta = DefaultHWBeta
	}
	if gamma == 0 {
		gamma = DefaultHWGamma
	}
	s := 0.0
	si := 0
	if h.season != nil {
		si = h.n % h.Period
		s = h.season[si]
	}
	prev := h.level
	h.level = alpha*(rate-s) + (1-alpha)*(h.level+h.trend)
	h.trend = beta*(h.level-prev) + (1-beta)*h.trend
	if h.season != nil {
		h.season[si] = gamma*(rate-h.level) + (1-gamma)*s
	}
	h.n++
}

// Predict extrapolates level + trend (plus the seasonal component once a
// full period of history exists) `horizon` seconds ahead.
func (h *HoltWinters) Predict(horizon float64) float64 {
	if h.n == 0 {
		return 0
	}
	dt := h.dt
	if dt <= 0 {
		dt = 1
	}
	k := horizon / dt
	if k < 0 {
		k = 0
	}
	out := h.level + k*h.trend
	if h.season != nil {
		out += h.season[(h.n-1+int(math.Round(k)))%h.Period]
	}
	return math.Max(0, out)
}

// Envelope default geometry: the planning horizon matches the Resource
// Manager's 10-second periodic interval, sampled at the per-second
// housekeeping cadence.
const (
	DefaultEnvelopeHorizonSec = 10
	DefaultEnvelopeStepSec    = 1
)

// Envelope wraps a base forecaster InferLine-style: instead of the point
// prediction at the horizon, Predict returns the *maximum* base prediction
// over the whole window from now to the horizon (sampled every StepSec),
// inflated by the Headroom factor. Planning against the envelope provisions
// for the worst moment of the next planning period, not just its endpoint —
// a prediction that demand ramps up and back down within one period still
// provisions for the crest.
//
// Envelope{Base: &Last{}} with zero Headroom is exactly the identity: the
// max over a constant is the constant.
type Envelope struct {
	// Base supplies the point predictions.
	Base Forecaster
	// HorizonSec is the minimum window the max is taken over (0 means
	// DefaultEnvelopeHorizonSec). Predict extends it when asked for a longer
	// horizon.
	HorizonSec float64
	// StepSec is the sampling granularity within the window (0 means
	// DefaultEnvelopeStepSec).
	StepSec float64
	// Headroom inflates the enveloped prediction by 1+Headroom, the
	// InferLine-style provisioning margin for forecast error.
	Headroom float64
}

// Observe forwards the sample to the base forecaster.
func (e *Envelope) Observe(t, rate float64) { e.Base.Observe(t, rate) }

// Predict returns (1+Headroom) × max of the base prediction over
// [0, max(horizon, HorizonSec)] sampled every StepSec, always including both
// endpoints.
func (e *Envelope) Predict(horizon float64) float64 {
	window := e.HorizonSec
	if window <= 0 {
		window = DefaultEnvelopeHorizonSec
	}
	if horizon > window {
		window = horizon
	}
	step := e.StepSec
	if step <= 0 {
		step = DefaultEnvelopeStepSec
	}
	m := e.Base.Predict(0)
	for i := 1; ; i++ {
		s := float64(i) * step
		if s > window {
			s = window
		}
		if p := e.Base.Predict(s); p > m {
			m = p
		}
		if s >= window {
			break
		}
	}
	return (1 + e.Headroom) * m
}
