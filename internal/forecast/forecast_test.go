package forecast

import (
	"math"
	"testing"
)

// Last is a persistence model: every horizon predicts the latest sample.
func TestLastIsPersistence(t *testing.T) {
	var l Last
	if got := l.Predict(10); got != 0 {
		t.Fatalf("Predict before any observation = %v, want 0", got)
	}
	l.Observe(1, 120)
	l.Observe(2, 80)
	for _, h := range []float64{0, 1, 10, 1000} {
		if got := l.Predict(h); got != 80 {
			t.Fatalf("Predict(%v) = %v, want 80", h, got)
		}
	}
}

// Trend must recover an exactly linear ramp: the regression line through
// noiseless ramp samples extrapolates to the true future value.
func TestTrendRecoversLinearRamp(t *testing.T) {
	tr := &Trend{Window: 20}
	const a, b = 40.0, 2.5 // rate = a + b·t
	for i := 0; i <= 60; i++ {
		ti := float64(i)
		tr.Observe(ti, a+b*ti)
	}
	for _, h := range []float64{0, 1, 5, 10, 30} {
		want := a + b*(60+h)
		got := tr.Predict(h)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("Predict(%v) = %v, want %v (ramp not recovered)", h, got, want)
		}
	}
}

// A downward trend never predicts a negative rate.
func TestTrendClampsAtZero(t *testing.T) {
	tr := &Trend{Window: 10}
	for i := 0; i < 10; i++ {
		tr.Observe(float64(i), math.Max(0, 100-20*float64(i)))
	}
	if got := tr.Predict(100); got != 0 {
		t.Fatalf("deep extrapolation of a decaying series = %v, want clamp to 0", got)
	}
}

// Seasonal Holt-Winters converges on a synthetic sine: after several periods
// of history, horizon-ahead predictions track the wave within a fraction of
// its amplitude (a persistence forecast is off by up to the full peak-to-peak
// swing at a quarter-period horizon).
func TestHoltWintersConvergesOnSine(t *testing.T) {
	const (
		period = 60
		mean   = 200.0
		amp    = 80.0
	)
	rate := func(i int) float64 {
		return mean + amp*math.Sin(2*math.Pi*float64(i)/period)
	}
	hw := &HoltWinters{Period: period}
	n := 10 * period
	for i := 0; i < n; i++ {
		hw.Observe(float64(i), rate(i))
	}
	// Mean absolute error of predictions across a whole future period, at a
	// quarter-period horizon — where persistence is at its worst.
	const horizon = period / 4
	mae := 0.0
	persist := 0.0
	for k := 0; k < period; k++ {
		hw2 := &HoltWinters{Period: period}
		for i := 0; i < n+k; i++ {
			hw2.Observe(float64(i), rate(i))
		}
		truth := rate(n + k - 1 + horizon)
		mae += math.Abs(hw2.Predict(horizon) - truth)
		persist += math.Abs(rate(n+k-1) - truth)
	}
	mae /= period
	persist /= period
	if mae > 0.25*amp {
		t.Fatalf("seasonal HW MAE %.2f exceeds tolerance %.2f (amplitude %.0f)", mae, 0.25*amp, amp)
	}
	if mae >= persist {
		t.Fatalf("seasonal HW MAE %.2f is no better than persistence %.2f", mae, persist)
	}
}

// Trend-only Holt-Winters reacts to a step: within a few samples of a flash
// crowd the horizon prediction overshoots the reactive estimate toward (or
// past) the new level.
func TestHoltWintersChasesStep(t *testing.T) {
	hw := &HoltWinters{}
	for i := 0; i < 60; i++ {
		hw.Observe(float64(i), 100)
	}
	if got := hw.Predict(10); math.Abs(got-100) > 1e-6 {
		t.Fatalf("steady state Predict = %v, want 100", got)
	}
	hw.Observe(60, 300)
	hw.Observe(61, 300)
	if got := hw.Predict(10); got < 250 {
		t.Fatalf("two samples into a 3x step, Predict(10) = %v, want ≥ 250 (proactive overshoot)", got)
	}
}

// Envelope headroom is monotone: a larger headroom never predicts less, and
// any headroom stays above the raw envelope.
func TestEnvelopeHeadroomMonotone(t *testing.T) {
	mk := func(head float64) *Envelope {
		base := &Trend{Window: 10}
		for i := 0; i < 10; i++ {
			base.Observe(float64(i), 50+10*float64(i))
		}
		return &Envelope{Base: base, HorizonSec: 10, Headroom: head}
	}
	prev := -1.0
	for _, head := range []float64{0, 0.05, 0.1, 0.3, 1.0} {
		got := mk(head).Predict(10)
		if got < prev {
			t.Fatalf("headroom %.2f predicts %v < previous %v (not monotone)", head, got, prev)
		}
		if raw := mk(0).Predict(10); got < raw-1e-9 {
			t.Fatalf("headroom %.2f predicts %v below raw envelope %v", head, got, raw)
		}
		prev = got
	}
}

// The envelope takes the max over the window, not the endpoint: with a base
// model that peaks mid-window, Predict returns the crest.
func TestEnvelopeTakesWindowMax(t *testing.T) {
	// A decaying trend: current level high, endpoint lower.
	base := &Trend{Window: 5}
	for i := 0; i < 5; i++ {
		base.Observe(float64(i), 500-50*float64(i))
	}
	env := &Envelope{Base: base, HorizonSec: 10}
	if got, now := env.Predict(10), base.Predict(0); got < now {
		t.Fatalf("envelope %v below current level %v: window max must include now", got, now)
	}
}

// Envelope(Last) with zero headroom is the identity — the bit-for-bit
// parity guarantee behind the public default.
func TestEnvelopeOfLastIsIdentity(t *testing.T) {
	env := &Envelope{Base: &Last{}}
	env.Observe(1, 123.456)
	env.Observe(2, 78.9)
	for _, h := range []float64{0, 1, 10, 60} {
		if got := env.Predict(h); got != 78.9 {
			t.Fatalf("Envelope(Last).Predict(%v) = %v, want exactly 78.9", h, got)
		}
	}
}
