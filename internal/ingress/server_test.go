package ingress

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"loki/internal/trace"
)

// fakeBackend builds a Server over canned hooks: submitErr is returned by
// every Submit, and submits counts the calls that reached the backend.
func fakeBackend(submitErr error, submits *atomic.Int64, draining *atomic.Bool) *Server {
	return NewServer(ServerConfig{
		Pipelines: []string{"vision", "speech"},
		Submit: func(ctx context.Context, pipeline string) error {
			if submits != nil {
				submits.Add(1)
			}
			return submitErr
		},
		Snapshot: func(pipeline string) (any, error) {
			return map[string]any{"pipeline": pipeline, "arrivals": 7}, nil
		},
		Draining: func() bool { return draining != nil && draining.Load() },
	})
}

func TestInferAcceptsAndAcks(t *testing.T) {
	var submits atomic.Int64
	srv := httptest.NewServer(fakeBackend(nil, &submits, nil))
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/v1/vision/infer", "application/json", strings.NewReader(`{"id":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	if submits.Load() != 1 {
		t.Fatalf("backend saw %d submits, want 1", submits.Load())
	}
}

func TestInferEmptyBodyAllowed(t *testing.T) {
	srv := httptest.NewServer(fakeBackend(nil, nil, nil))
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/v1/vision/infer", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
}

func TestInferRejectsMalformedJSON(t *testing.T) {
	var submits atomic.Int64
	srv := httptest.NewServer(fakeBackend(nil, &submits, nil))
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/v1/vision/infer", "application/json", strings.NewReader(`{broken`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if submits.Load() != 0 {
		t.Fatal("malformed request reached the backend")
	}
}

func TestInferUnknownPipeline404(t *testing.T) {
	srv := httptest.NewServer(fakeBackend(nil, nil, nil))
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/v1/nope/infer", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestInferShedTranslatesTo429WithRetryAfter(t *testing.T) {
	srv := httptest.NewServer(fakeBackend(&ShedError{RetryAfterSec: 0.4}, nil, nil))
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/v1/vision/infer", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	// 0.4s rounds UP to the whole-second header — never telling a client to
	// retry before capacity exists.
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra != 1 {
		t.Fatalf("Retry-After = %q, want \"1\"", resp.Header.Get("Retry-After"))
	}
	var body struct {
		Error         string  `json:"error"`
		RetryAfterSec float64 `json:"retry_after_sec"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error != "shed" || body.RetryAfterSec != 0.4 {
		t.Fatalf("body = %+v, want shed with the sub-second hint", body)
	}
}

func TestInferBackendErrorTranslatesTo503(t *testing.T) {
	srv := httptest.NewServer(fakeBackend(errors.New("stopped"), nil, nil))
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/v1/vision/infer", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
}

func TestDrainingSheds503ButServesSnapshots(t *testing.T) {
	var draining atomic.Bool
	srv := httptest.NewServer(fakeBackend(nil, nil, &draining))
	defer srv.Close()
	draining.Store(true)

	resp, err := srv.Client().Post(srv.URL+"/v1/vision/infer", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("draining infer status = %d, want 503", resp.StatusCode)
	}

	resp, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("draining healthz status = %d, want 503", resp.StatusCode)
	}

	// Observation endpoints stay up through a drain.
	resp, err = srv.Client().Get(srv.URL + "/v1/speech/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("draining snapshot status = %d, want 200", resp.StatusCode)
	}
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap["pipeline"] != "speech" {
		t.Fatalf("snapshot = %v, want the speech pipeline's", snap)
	}
}

func TestHealthzOKWhileServing(t *testing.T) {
	srv := httptest.NewServer(fakeBackend(nil, nil, nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
}

func TestLoadGenCountsOutcomes(t *testing.T) {
	// A backend that sheds every third request exercises all LoadGen
	// counters at once.
	var n atomic.Int64
	srv := httptest.NewServer(NewServer(ServerConfig{
		Pipelines: []string{"vision"},
		Submit: func(ctx context.Context, pipeline string) error {
			if n.Add(1)%3 == 0 {
				return &ShedError{RetryAfterSec: 0.2}
			}
			return nil
		},
		Snapshot: func(pipeline string) (any, error) { return nil, nil },
	}))
	defer srv.Close()

	g := &LoadGen{BaseURL: srv.URL, Pipeline: "vision", Conns: 8, Client: srv.Client()}
	// 90 arrivals across 0.3s of trace keeps the test fast.
	res, err := g.Run(context.Background(), trace.Ramp(300, 300, 3, 0.1), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 || res.Sent != res.Accepted+res.Shed+res.Errors {
		t.Fatalf("counts don't add up: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("unexpected transport errors: %+v", res)
	}
	if res.Shed == 0 || res.Accepted == 0 {
		t.Fatalf("want a mix of accepted and shed, got %+v", res)
	}
	if res.RetryAfterMeanSec < 0.5 { // header rounds 0.2 up to 1
		t.Fatalf("RetryAfterMeanSec = %g, want ≈1 from the rounded header", res.RetryAfterMeanSec)
	}
}

func TestLoadGenRetriesSalvageShedRequests(t *testing.T) {
	// A backend that sheds only its first few calls: with a retry budget, the
	// shed requests sleep out the Retry-After hint and land on the recovered
	// server, so nothing counts as Shed and the salvage shows up in RetriedOK.
	var n atomic.Int64
	srv := httptest.NewServer(NewServer(ServerConfig{
		Pipelines: []string{"vision"},
		Submit: func(ctx context.Context, pipeline string) error {
			if n.Add(1) <= 4 {
				return &ShedError{RetryAfterSec: 0.2}
			}
			return nil
		},
		Snapshot: func(pipeline string) (any, error) { return nil, nil },
	}))
	defer srv.Close()

	g := &LoadGen{BaseURL: srv.URL, Pipeline: "vision", Conns: 8, Retries: 2, Client: srv.Client()}
	res, err := g.Run(context.Background(), trace.Ramp(100, 100, 1, 0.1), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 || res.Accepted != res.Sent {
		t.Fatalf("every request should succeed after retries: %+v", res)
	}
	if res.Shed != 0 {
		t.Fatalf("retry budget should absorb the transient shed: %+v", res)
	}
	if res.Retries == 0 || res.RetriedOK == 0 {
		t.Fatalf("want salvaged retries recorded, got %+v", res)
	}
	if res.Retries < res.RetriedOK {
		t.Fatalf("each salvage takes at least one retry: %+v", res)
	}
}

func TestLoadGenUnknownPipelineCountsErrors(t *testing.T) {
	srv := httptest.NewServer(fakeBackend(nil, nil, nil))
	defer srv.Close()
	g := &LoadGen{BaseURL: srv.URL, Pipeline: "nope", Conns: 2, Client: srv.Client()}
	res, err := g.Run(context.Background(), trace.Ramp(100, 100, 1, 0.1), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != res.Sent || res.Sent == 0 {
		t.Fatalf("404s must count as errors: %+v", res)
	}
}
