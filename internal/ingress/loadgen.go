package ingress

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"loki/internal/trace"
)

// LoadResult aggregates one load-generation run. Sent = Accepted + Shed +
// Errors; the offered schedule the server actually saw is Accepted + Shed.
type LoadResult struct {
	Sent     int64 // requests attempted
	Accepted int64 // 202: admitted into the serving system
	Shed     int64 // 429: refused by admission control (after retries, if any)
	Errors   int64 // transport failures or unexpected statuses
	// Retries counts re-sends after a 429, honoring its Retry-After hint
	// (zero unless LoadGen.Retries is set).
	Retries int64
	// RetriedOK counts requests that were shed at least once and then
	// accepted on a retry — the work Retry-After hints salvaged.
	RetriedOK int64
	// RetryAfterMeanSec averages the Retry-After hints on shed responses
	// (zero when nothing was shed).
	RetryAfterMeanSec float64
	// MaxLagSec is the worst lag between a request's scheduled arrival and
	// its actual send — nonzero lag means the connection pool saturated and
	// the open-loop schedule degraded toward closed-loop.
	MaxLagSec float64
}

// LoadGen drives an ingress front door over real sockets: the open-loop
// Poisson arrival schedule of a workload trace, sent from a bounded
// connection pool. While a connection is free each arrival is sent at its
// scheduled instant (open loop); when all Conns are busy the schedule blocks
// until one frees (the closed-loop bound that keeps a slow server from
// accumulating unbounded sockets), surfacing as MaxLagSec.
type LoadGen struct {
	BaseURL  string // e.g. "http://127.0.0.1:8080"
	Pipeline string
	// Conns bounds concurrent in-flight requests (default 64).
	Conns int
	// Retries is the per-request retry budget on 429 responses. Each retry
	// sleeps for the server's Retry-After hint scaled by a deterministic
	// jitter in [0.75, 1.25) before re-sending; the request holds its
	// connection slot throughout, so retries self-limit under overload. A
	// request counts as Shed only after the budget is exhausted.
	Retries int
	// Client overrides the pooled default (tests inject
	// httptest.Server.Client()).
	Client *http.Client
}

// Run plays the trace's arrival schedule against the server, blocking until
// every response is in. The context cancels outstanding sleeps and requests.
func (g *LoadGen) Run(ctx context.Context, tr *trace.Trace, rng *rand.Rand) (LoadResult, error) {
	conns := g.Conns
	if conns <= 0 {
		conns = 64
	}
	client := g.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        conns,
			MaxIdleConnsPerHost: conns,
		}}
	}
	url := fmt.Sprintf("%s/v1/%s/infer", g.BaseURL, g.Pipeline)

	var res LoadResult
	var retrySum atomic.Int64 // micros, summed across shed responses
	var maxLagMicros atomic.Int64
	sem := make(chan struct{}, conns)
	var wg sync.WaitGroup
	start := time.Now()
	arrivals := tr.Arrivals(rng)
loop:
	for i, at := range arrivals {
		if d := time.Duration(at*float64(time.Second)) - time.Since(start); d > 0 {
			select {
			case <-ctx.Done():
				break loop
			case <-time.After(d):
			}
		}
		select {
		case <-ctx.Done():
			break loop
		case sem <- struct{}{}:
		}
		lag := time.Since(start) - time.Duration(at*float64(time.Second))
		if mu := lag.Microseconds(); mu > maxLagMicros.Load() {
			maxLagMicros.Store(mu)
		}
		atomic.AddInt64(&res.Sent, 1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			payload := []byte(fmt.Sprintf(`{"id":%d}`, i))
			for attempt := 0; ; attempt++ {
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
				if err != nil {
					atomic.AddInt64(&res.Errors, 1)
					return
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err != nil {
					atomic.AddInt64(&res.Errors, 1)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusAccepted:
					atomic.AddInt64(&res.Accepted, 1)
					if attempt > 0 {
						atomic.AddInt64(&res.RetriedOK, 1)
					}
					return
				case http.StatusTooManyRequests:
					var ra float64
					fmt.Sscanf(resp.Header.Get("Retry-After"), "%f", &ra)
					retrySum.Add(int64(ra * 1e6))
					if attempt < g.Retries {
						// Deterministic jitter keyed off the request index
						// spreads retries within the hinted window without
						// perturbing the seeded arrival schedule.
						jitter := 0.75 + 0.5*float64((i+attempt)%16)/16
						if ra <= 0 {
							ra = 0.05
						}
						select {
						case <-ctx.Done():
							atomic.AddInt64(&res.Shed, 1)
							return
						case <-time.After(time.Duration(ra * jitter * float64(time.Second))):
						}
						atomic.AddInt64(&res.Retries, 1)
						continue
					}
					atomic.AddInt64(&res.Shed, 1)
					return
				default:
					atomic.AddInt64(&res.Errors, 1)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if n := res.Shed + res.Retries; n > 0 {
		res.RetryAfterMeanSec = float64(retrySum.Load()) / 1e6 / float64(n)
	}
	res.MaxLagSec = float64(maxLagMicros.Load()) / 1e6
	return res, ctx.Err()
}
