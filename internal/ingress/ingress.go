// Package ingress is the serving system's front door: per-tenant admission
// control and load shedding ahead of the worker queues, an HTTP server
// exposing each pipeline over real sockets, and the load-generator library
// behind cmd/lokiload.
//
// The admission controller is the piece the queues cannot provide on their
// own. Worker queues bound *waiting* work, but by the time an over-demand
// request is dropped at a full queue it has already burned a network hop and
// queue slots, and every request behind it waits longer — under sustained
// overload the whole admitted population drifts past the SLO before any
// feedback reaches the client. Admission control inverts that: each tenant's
// token bucket tracks the capacity the joint allocator actually granted it
// (refreshed on every plan publication), and arrivals beyond that rate are
// refused immediately with a Retry-After hint, before they touch a queue.
// Shed requests never enter the serving metrics' admitted population; they
// are accounted separately so goodput and shed rate are both visible.
package ingress

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"loki/internal/core"
)

// ErrShed is the sentinel admission failures unwrap to: the request was
// refused by a tenant's admission controller (rate or saturation), not
// failed by the serving system. Callers match it with errors.Is and recover
// the retry hint with errors.As on *ShedError.
var ErrShed = errors.New("ingress: request shed by admission control")

// ShedError is a shed admission decision carrying the controller's
// Retry-After hint. It unwraps to ErrShed.
type ShedError struct {
	// RetryAfterSec is the controller's estimate of when capacity will next
	// be available: the token bucket's refill time for rate sheds, a
	// queue-drain allowance for saturation sheds.
	RetryAfterSec float64

	// Tier is the service tier of the pipeline whose traffic was refused
	// (zero for untiered pipelines). Under contention the arbiter grants
	// low tiers less capacity, so their admission rates fall first and
	// their traffic sheds first; the tier on the error lets 429 responses
	// carry that decision to the client.
	Tier int
}

// Error renders the shed decision with its retry hint.
func (e *ShedError) Error() string {
	return fmt.Sprintf("ingress: request shed, retry after %.3fs", e.RetryAfterSec)
}

// Unwrap ties ShedError to the ErrShed sentinel for errors.Is.
func (e *ShedError) Unwrap() error { return ErrShed }

// TokenBucket is a refill-on-demand token bucket over an external clock (the
// engines' scaled seconds, so admission math is identical on virtual and
// wall time). Allow refills rate×elapsed tokens capped at the burst depth
// and admits by consuming one.
type TokenBucket struct {
	rate   float64 // tokens (requests) per second
	burst  float64 // bucket depth
	tokens float64
	last   float64
}

// NewTokenBucket returns a bucket that starts full (a fresh tenant may burst
// up to its depth immediately).
func NewTokenBucket(rate, burst, now float64) *TokenBucket {
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// refill advances the bucket to now at the current rate.
func (b *TokenBucket) refill(now float64) {
	if now > b.last {
		b.tokens = math.Min(b.burst, b.tokens+(now-b.last)*b.rate)
		b.last = now
	}
}

// SetRate retargets the bucket. The elapsed interval is refilled at the old
// rate first; a deeper bucket is topped up by the depth increase (a freshly
// granted tenant may burst immediately), a shallower one is clipped (a
// shrinking grant takes effect immediately). A refresh to the same rate and
// depth — the steady state, since grants are re-published every adaptation
// round — changes nothing.
func (b *TokenBucket) SetRate(rate, burst, now float64) {
	b.refill(now)
	if burst > b.burst {
		b.tokens += burst - b.burst
	}
	b.rate = rate
	b.burst = burst
	if b.tokens > burst {
		b.tokens = burst
	}
}

// Allow consumes one token if available. On refusal it returns the time
// until the next token refills (infinite while the rate is zero).
func (b *TokenBucket) Allow(now float64) (ok bool, waitSec float64) {
	b.refill(now)
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if b.rate <= 0 {
		return false, math.Inf(1)
	}
	return false, (1 - b.tokens) / b.rate
}

// Tokens reports the level the bucket would hold at now (for tests and
// introspection; nothing is consumed).
func (b *TokenBucket) Tokens(now float64) float64 {
	b.refill(now)
	return b.tokens
}

// rateWindowSec is the trailing window the admitted/shed QPS gauges average
// over.
const rateWindowSec = 5

// Config tunes one tenant's admission controller. Zero values take the
// defaults noted on each field.
type Config struct {
	// SLOSec is the tenant's end-to-end latency SLO, used to size the
	// saturation limit and the saturation Retry-After hint. Required.
	SLOSec float64
	// BurstSec is the token bucket's depth in seconds of target rate
	// (default 1.0): how much of an instantaneous burst is absorbed before
	// rate shedding starts.
	BurstSec float64
	// SaturationFactor bounds in-flight work at factor × rate × SLOSec
	// (default 1.0). By Little's law an in-flight population of rate × SLOSec
	// is exactly the backlog the granted capacity can drain within one SLO —
	// admitting beyond it guarantees the queueing delay alone exceeds the
	// SLO, so even under-rate arrivals are shed past that point.
	SaturationFactor float64
	// TargetUtilization scales the granted rate handed to SetRate before it
	// becomes the admission target (default 1.0). Granted routes carry the
	// planner's headroom-inflated throughput ceiling; a tenant admitted at
	// 100% of that ceiling serves at full utilization, where queueing delay
	// alone blows the SLO. Callers that know the planner's headroom should
	// pass 1/(1+headroom) so admission targets the demand the plan was
	// actually sized for.
	TargetUtilization float64
}

func (c *Config) defaults() {
	if c.BurstSec == 0 {
		c.BurstSec = 1.0
	}
	if c.SaturationFactor == 0 {
		c.SaturationFactor = 1.0
	}
	if c.TargetUtilization == 0 {
		c.TargetUtilization = 1.0
	}
}

// rateSlot is one second of the trailing admitted/shed gauge window.
type rateSlot struct {
	sec            int64
	admitted, shed int64
}

// Admission is one tenant's admission controller: a token bucket whose
// target rate follows the tenant's granted capacity, plus a saturation
// limiter on in-flight work. It sits in front of the tenant's queues — every
// injection path (HTTP, Submit, trace Feed) consults Admit before a request
// touches the serving system. All methods are safe for concurrent use.
type Admission struct {
	mu          sync.Mutex
	cfg         Config
	tb          *TokenBucket
	rate        float64
	maxInFlight int64
	admitted    int64
	shed        int64
	slots       [rateWindowSec + 1]rateSlot
}

// NewAdmission builds an admission controller with no capacity granted yet:
// everything is shed until the first SetRate (the control plane publishes a
// plan before the first injection returns, so in practice the window is
// empty).
func NewAdmission(cfg Config) *Admission {
	cfg.defaults()
	return &Admission{cfg: cfg, tb: NewTokenBucket(0, 0, 0)}
}

// SetRate retargets the controller to a new granted rate (requests per
// second) at the given engine time: the rate is scaled by TargetUtilization,
// the bucket refills at the result with a BurstSec-deep burst allowance, and
// the saturation limit becomes SaturationFactor × qps × SLOSec. Called on
// every plan publication.
func (a *Admission) SetRate(now, qps float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	qps *= a.cfg.TargetUtilization
	if qps < 0 {
		qps = 0
	}
	a.rate = qps
	burst := math.Max(qps*a.cfg.BurstSec, 1)
	a.tb.SetRate(qps, burst, now)
	a.maxInFlight = int64(math.Ceil(a.cfg.SaturationFactor * qps * a.cfg.SLOSec))
	if a.maxInFlight < 1 {
		a.maxInFlight = 1
	}
}

// Rate returns the current target rate (the granted capacity at the last
// SetRate).
func (a *Admission) Rate() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rate
}

// Admit decides one arrival at the given engine time with the tenant's
// current in-flight count. Saturation is checked first (a saturated tenant
// keeps its tokens for when the backlog drains); then the token bucket. On
// refusal retryAfterSec carries the Retry-After hint: the bucket's refill
// time for rate sheds, half an SLO for saturation sheds, floored at a
// millisecond so a hint is never zero.
func (a *Admission) Admit(now float64, inFlight int64) (ok bool, retryAfterSec float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if inFlight >= a.maxInFlight {
		a.record(now, false)
		return false, math.Max(a.cfg.SLOSec/2, 0.001)
	}
	ok, wait := a.tb.Allow(now)
	a.record(now, ok)
	if ok {
		return true, 0
	}
	if math.IsInf(wait, 1) {
		wait = 1
	}
	return false, math.Max(wait, 0.001)
}

// record updates the totals and the trailing per-second gauge window.
// Callers hold a.mu.
func (a *Admission) record(now float64, admitted bool) {
	sec := int64(now)
	if sec < 0 {
		sec = 0
	}
	s := &a.slots[sec%int64(len(a.slots))]
	if s.sec != sec {
		*s = rateSlot{sec: sec}
	}
	if admitted {
		a.admitted++
		s.admitted++
	} else {
		a.shed++
		s.shed++
	}
}

// Totals returns the cumulative admitted and shed counts.
func (a *Admission) Totals() (admitted, shed int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.admitted, a.shed
}

// Rates returns the admitted and shed request rates averaged over the
// trailing window (a few seconds), the live gauges behind the public
// Snapshot's AdmittedQPS/ShedQPS.
func (a *Admission) Rates(now float64) (admittedQPS, shedQPS float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	sec := int64(now)
	var adm, shed int64
	for i := range a.slots {
		s := &a.slots[i]
		if s.sec > sec-rateWindowSec && s.sec <= sec {
			adm += s.admitted
			shed += s.shed
		}
	}
	return float64(adm) / rateWindowSec, float64(shed) / rateWindowSec
}

// FrontendRate derives a tenant's admission target from its standing routing
// tables: the summed service rate (per-class profiled QPS) of the root-task
// replicas — exactly the entry capacity the joint allocator granted on the
// last adaptation round. Plans are sized for headroom-inflated demand, so
// admitting at this rate keeps the granted capacity fully usable without
// letting arrivals outrun it. Returns zero before the first publication.
func FrontendRate(r *core.Routes) float64 {
	if r == nil {
		return 0
	}
	sum := 0.0
	for i := range r.Specs {
		if r.Specs[i].Task == 0 {
			sum += r.Specs[i].QPS
		}
	}
	return sum
}
