package ingress

import (
	"errors"
	"math"
	"testing"

	"loki/internal/core"
)

func TestTokenBucketRefillMath(t *testing.T) {
	b := NewTokenBucket(10, 5, 0) // 10 tokens/s, depth 5, starts full
	for i := 0; i < 5; i++ {
		if ok, _ := b.Allow(0); !ok {
			t.Fatalf("token %d of the initial burst refused", i)
		}
	}
	ok, wait := b.Allow(0)
	if ok {
		t.Fatal("6th token admitted from a depth-5 bucket")
	}
	if math.Abs(wait-0.1) > 1e-9 {
		t.Fatalf("empty bucket at 10 qps should refill a token in 0.1s, got %g", wait)
	}
	// 0.35s refills 3.5 tokens: three admits, then a refusal 0.05s short.
	if got := b.Tokens(0.35); math.Abs(got-3.5) > 1e-9 {
		t.Fatalf("tokens at t=0.35 = %g, want 3.5", got)
	}
	for i := 0; i < 3; i++ {
		if ok, _ := b.Allow(0.35); !ok {
			t.Fatalf("refill admit %d refused", i)
		}
	}
	ok, wait = b.Allow(0.35)
	if ok {
		t.Fatal("admitted with only 0.5 tokens")
	}
	if math.Abs(wait-0.05) > 1e-9 {
		t.Fatalf("wait = %g, want 0.05", wait)
	}
}

func TestTokenBucketBurstCap(t *testing.T) {
	b := NewTokenBucket(100, 8, 0)
	// A long idle period must not accumulate beyond the depth.
	if got := b.Tokens(60); got != 8 {
		t.Fatalf("tokens after a minute idle = %g, want the burst cap 8", got)
	}
	n := 0
	for {
		ok, _ := b.Allow(60)
		if !ok {
			break
		}
		n++
		if n > 9 {
			break
		}
	}
	if n != 8 {
		t.Fatalf("burst admitted %d, want exactly the depth 8", n)
	}
}

func TestTokenBucketSetRateRefillsAtOldRateFirst(t *testing.T) {
	b := NewTokenBucket(10, 10, 0)
	for i := 0; i < 10; i++ {
		b.Allow(0)
	}
	// One second at the old 10 qps refills 10 tokens; the new depth 4 clips
	// them, and the new rate governs from here on.
	b.SetRate(2, 4, 1)
	if got := b.Tokens(1); got != 4 {
		t.Fatalf("tokens after shrink = %g, want clipped to 4", got)
	}
	for i := 0; i < 4; i++ {
		b.Allow(1)
	}
	if ok, wait := b.Allow(1); ok || math.Abs(wait-0.5) > 1e-9 {
		t.Fatalf("after shrink want refusal with 0.5s wait at 2 qps, got ok=%v wait=%g", ok, wait)
	}
}

func TestTokenBucketZeroRate(t *testing.T) {
	b := NewTokenBucket(0, 0, 0)
	if ok, wait := b.Allow(5); ok || !math.IsInf(wait, 1) {
		t.Fatalf("zero-rate bucket: ok=%v wait=%g, want refusal with infinite wait", ok, wait)
	}
}

func TestAdmissionRateShed(t *testing.T) {
	a := NewAdmission(Config{SLOSec: 0.25})
	a.SetRate(0, 100) // burst 100 (1s of rate)
	admitted, shed := 0, 0
	var retry float64
	for i := 0; i < 250; i++ {
		// 250 arrivals inside one second against a 100 qps grant with a
		// 100-token burst: ~200 admitted (burst + refill), rest shed.
		now := float64(i) / 250
		ok, ra := a.Admit(now, 0)
		if ok {
			admitted++
		} else {
			shed++
			retry = ra
		}
	}
	if shed == 0 {
		t.Fatal("sustained 250 qps against a 100 qps grant shed nothing")
	}
	if admitted < 150 || admitted > 220 {
		t.Fatalf("admitted %d of 250, want burst+refill ≈ 200", admitted)
	}
	if retry <= 0 || retry > 1 {
		t.Fatalf("rate-shed Retry-After %g, want a positive sub-second refill hint", retry)
	}
	gotA, gotS := a.Totals()
	if gotA != int64(admitted) || gotS != int64(shed) {
		t.Fatalf("Totals = (%d, %d), want (%d, %d)", gotA, gotS, admitted, shed)
	}
}

func TestAdmissionSaturationShed(t *testing.T) {
	a := NewAdmission(Config{SLOSec: 0.25, SaturationFactor: 4})
	a.SetRate(0, 100) // maxInFlight = ceil(4 × 100 × 0.25) = 100
	ok, retry := a.Admit(0.5, 100)
	if ok {
		t.Fatal("admitted at the saturation limit")
	}
	if math.Abs(retry-0.125) > 1e-9 {
		t.Fatalf("saturation Retry-After %g, want SLO/2 = 0.125", retry)
	}
	// Under the limit, tokens still govern.
	if ok, _ := a.Admit(0.5, 99); !ok {
		t.Fatal("refused below the saturation limit with a full bucket")
	}
}

func TestAdmissionShedsEverythingBeforeFirstGrant(t *testing.T) {
	a := NewAdmission(Config{SLOSec: 0.25})
	ok, retry := a.Admit(0, 0)
	if ok {
		t.Fatal("admitted before any capacity was granted")
	}
	if retry <= 0 {
		t.Fatalf("Retry-After %g, want positive", retry)
	}
}

func TestAdmissionRatesWindow(t *testing.T) {
	a := NewAdmission(Config{SLOSec: 0.25})
	a.SetRate(0, 10)
	// Second 10: 10 admits (bucket holds 10) then 15 sheds.
	for i := 0; i < 25; i++ {
		a.Admit(10.0, 0)
	}
	adm, shed := a.Rates(10.0)
	if math.Abs(adm-10.0/rateWindowSec) > 1e-9 {
		t.Fatalf("admitted rate %g, want %g", adm, 10.0/rateWindowSec)
	}
	if math.Abs(shed-15.0/rateWindowSec) > 1e-9 {
		t.Fatalf("shed rate %g, want %g", shed, 15.0/rateWindowSec)
	}
	// The window forgets: far in the future both gauges read zero.
	adm, shed = a.Rates(100)
	if adm != 0 || shed != 0 {
		t.Fatalf("rates long after traffic = (%g, %g), want zeros", adm, shed)
	}
}

func TestShedErrorUnwrapsToErrShed(t *testing.T) {
	err := error(&ShedError{RetryAfterSec: 0.2})
	if !errors.Is(err, ErrShed) {
		t.Fatal("ShedError does not unwrap to ErrShed")
	}
	var se *ShedError
	if !errors.As(err, &se) || se.RetryAfterSec != 0.2 {
		t.Fatal("errors.As lost the Retry-After hint")
	}
}

func TestFrontendRateSumsRootTaskSpecQPS(t *testing.T) {
	r := &core.Routes{Specs: []core.WorkerSpec{
		{ID: 0, Task: 0, QPS: 120},
		{ID: 1, Task: 0, QPS: 80}, // second root replica, slower class
		{ID: 2, Task: 1, QPS: 500},
		{ID: 3, Task: 2, QPS: 300},
	}}
	if got := FrontendRate(r); got != 200 {
		t.Fatalf("FrontendRate = %g, want 200 (root-task replicas only)", got)
	}
	if got := FrontendRate(nil); got != 0 {
		t.Fatalf("FrontendRate(nil) = %g, want 0", got)
	}
}
