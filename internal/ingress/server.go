package ingress

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"sync/atomic"
)

// maxBodyBytes bounds an infer request's JSON body; the serving engines carry
// no payload, so the body is validated and discarded.
const maxBodyBytes = 1 << 20

// ServerConfig wires a Server to its serving system. The Server holds plain
// funcs rather than a concrete system type so the root loki package (which
// imports ingress) can hand its MultiSystem over without a dependency cycle.
type ServerConfig struct {
	// Pipelines are the mounted pipeline names; requests naming any other
	// pipeline answer 404.
	Pipelines []string
	// Submit admits one request for a pipeline at the system's current time.
	// An admission refusal returns an error unwrapping to ErrShed (answered
	// 429 with its Retry-After hint); any other error answers 503.
	Submit func(ctx context.Context, pipeline string) error
	// Snapshot returns a pipeline's live counters; the value is marshaled to
	// JSON verbatim.
	Snapshot func(pipeline string) (any, error)
	// Draining, when non-nil and true, fails fast: new infer requests and
	// health checks answer 503 while in-flight work keeps draining.
	// Observation endpoints stay up.
	Draining func() bool
	// Metrics, when non-nil, renders the system's telemetry registry in
	// Prometheus text exposition format; it is mounted at GET /metrics.
	// Nil leaves the endpoint unregistered (404) — the telemetry plane is
	// off. Like the other observation endpoints it stays up while draining.
	Metrics func(w io.Writer)
}

// Server is the HTTP front door: it mounts per-pipeline infer and snapshot
// endpoints plus a health check, translating admission decisions into HTTP
// status codes (202 admitted, 429 + Retry-After shed, 503 draining).
//
//	POST /v1/{pipeline}/infer     admit one request (optional JSON body)
//	GET  /v1/{pipeline}/snapshot  live counters as JSON
//	GET  /metrics                 Prometheus text exposition (when wired)
//	GET  /healthz                 200 while serving, 503 while draining
type Server struct {
	cfg    ServerConfig
	known  map[string]bool
	mux    *http.ServeMux
	panics atomic.Int64
}

// NewServer builds the front door over the given system hooks.
func NewServer(cfg ServerConfig) *Server {
	s := &Server{cfg: cfg, known: make(map[string]bool, len(cfg.Pipelines)), mux: http.NewServeMux()}
	for _, name := range cfg.Pipelines {
		s.known[name] = true
	}
	s.mux.HandleFunc("POST /v1/{pipeline}/infer", s.recovered(s.infer))
	s.mux.HandleFunc("GET /v1/{pipeline}/snapshot", s.recovered(s.snapshot))
	if cfg.Metrics != nil {
		s.mux.HandleFunc("GET /metrics", s.recovered(s.metrics))
	}
	s.mux.HandleFunc("GET /healthz", s.healthz)
	return s
}

// Panics returns how many handler panics the recovery middleware has caught.
func (s *Server) Panics() int64 { return s.panics.Load() }

// recovered wraps a handler so a panic in the serving hooks (Submit and
// Snapshot run arbitrary system code) downgrades to a 500 on that one
// request instead of killing the whole front door: the panic is counted,
// logged, and the connection closed, but the listener keeps serving.
func (s *Server) recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			s.panics.Add(1)
			log.Printf("ingress: panic serving %s %s: %v", r.Method, r.URL.Path, rec)
			// Best effort: if the handler already wrote a status line this
			// write is a no-op error, and the closed connection signals the
			// failure instead.
			w.Header().Set("Connection", "close")
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: "internal error"})
		}()
		h(w, r)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) draining() bool { return s.cfg.Draining != nil && s.cfg.Draining() }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
	// RetryAfterSec repeats the Retry-After header with sub-second
	// precision (the header is whole seconds, rounded up).
	RetryAfterSec float64 `json:"retry_after_sec,omitempty"`
	// Tier, on shed responses, is the service tier of the pipeline that was
	// refused — load-shedding dashboards can confirm the low tiers degrade
	// first without knowing the tenant layout.
	Tier *int `json:"tier,omitempty"`
}

func (s *Server) infer(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("pipeline")
	if !s.known[name] {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("unknown pipeline %q", name)})
		return
	}
	if s.draining() {
		// Draining is transient from the client's view — another replica (or
		// a restart) takes over shortly, so the 503 carries a retry hint too.
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Connection", "close")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining", RetryAfterSec: 1})
		return
	}
	// The engines carry no request payload, so the body only needs to be
	// well-formed JSON (or empty); it is read fully to keep the connection
	// reusable.
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "unreadable body"})
		return
	}
	if len(body) > 0 && !json.Valid(body) {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "body is not valid JSON"})
		return
	}
	if err := s.cfg.Submit(r.Context(), name); err != nil {
		var se *ShedError
		if errors.As(err, &se) {
			// Retry-After is whole seconds per RFC 9110; round up so the
			// header never tells a client to retry before capacity exists.
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(math.Ceil(se.RetryAfterSec))))
			tier := se.Tier
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "shed", RetryAfterSec: se.RetryAfterSec, Tier: &tier})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	// The engines complete requests asynchronously (no per-request completion
	// signal reaches the frontend), so admission is acknowledged rather than
	// answered: 202, with outcomes visible through the snapshot endpoint.
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "accepted"})
}

func (s *Server) snapshot(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("pipeline")
	if !s.known[name] {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("unknown pipeline %q", name)})
		return
	}
	snap, err := s.cfg.Snapshot(name)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// metrics serves the Prometheus text exposition. The version=0.0.4 media
// type is the text-format contract Prometheus scrapers negotiate.
func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	s.cfg.Metrics(w)
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	if s.draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
