package fault

import (
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	spec := "crash@30s:class=a100:n=2:recover=20s,outage@60s:class=spot:recover=30s,straggle@10s:class=spot:n=4:factor=0.25"
	s, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(s.Events) != 3 {
		t.Fatalf("want 3 events, got %d", len(s.Events))
	}
	e := s.Events[0]
	if e.Kind != Crash || e.At != 30 || e.Class != "a100" || e.N != 2 || e.RecoverAfter != 20 {
		t.Fatalf("crash event parsed wrong: %+v", e)
	}
	if s.Events[1].Kind != Outage || s.Events[1].RecoverAfter != 30 {
		t.Fatalf("outage event parsed wrong: %+v", s.Events[1])
	}
	if s.Events[2].Factor != 0.25 || s.Events[2].N != 4 {
		t.Fatalf("straggler event parsed wrong: %+v", s.Events[2])
	}
	// Round trip: String must re-parse to the same schedule.
	again, err := Parse(s.String())
	if err != nil {
		t.Fatalf("re-Parse(%q): %v", s.String(), err)
	}
	if again.String() != s.String() {
		t.Fatalf("round trip mismatch: %q vs %q", again.String(), s.String())
	}
}

func TestParsePlainSeconds(t *testing.T) {
	s, err := Parse("crash@30:n=1")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Events[0].At != 30 {
		t.Fatalf("want At=30, got %g", s.Events[0].At)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"boom@30s",                 // unknown kind
		"crash",                    // missing @time
		"crash@-5s",                // negative time
		"crash@5s:n=0",             // non-positive n
		"straggle@5s:n=2:factor=2", // factor out of range
		"crash@5s:recover=-1s",     // negative recover
		"crash@5s:wat=1",           // unknown key
		"crash@5s:n",               // missing value
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): want error, got nil", spec)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	s, err := Parse("  ")
	if err != nil || s != nil {
		t.Fatalf("empty spec: want (nil, nil), got (%v, %v)", s, err)
	}
}

// mockTarget records the calls Compile's actions make.
type mockTarget struct {
	calls []string
}

func (m *mockTarget) Fail(class, n int) []int {
	m.calls = append(m.calls, "fail")
	if n <= 0 {
		return []int{7, 8, 9}
	}
	out := make([]int, n)
	for i := range out {
		out[i] = 10 + i
	}
	return out
}
func (m *mockTarget) Recover(phys []int) { m.calls = append(m.calls, "recover") }
func (m *mockTarget) Slow(class, n int, factor float64) []int {
	m.calls = append(m.calls, "slow")
	return []int{3}
}
func (m *mockTarget) Restore(phys []int) { m.calls = append(m.calls, "restore") }

func TestCompileOrdersAndPairsRecovery(t *testing.T) {
	s := &Schedule{Events: []Event{
		{At: 40, Kind: Outage, Class: "spot", RecoverAfter: 20},
		{At: 10, Kind: Straggler, Class: "spot", N: 1, Factor: 0.5, RecoverAfter: 5},
	}}
	idx := func(name string) (int, bool) { return 1, name == "spot" }
	timeline, err := Compile(s, idx)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// straggle@10, restore@15, outage@40, recover@60 — sorted by time.
	wantAt := []float64{10, 15, 40, 60}
	if len(timeline) != len(wantAt) {
		t.Fatalf("want %d actions, got %d", len(wantAt), len(timeline))
	}
	tgt := &mockTarget{}
	for i, tc := range timeline {
		if tc.At != wantAt[i] {
			t.Errorf("action %d at %g, want %g", i, tc.At, wantAt[i])
		}
		desc := tc.Fire(tgt)
		if desc == "" {
			t.Errorf("action %d: empty description", i)
		}
	}
	want := []string{"slow", "restore", "fail", "recover"}
	if strings.Join(tgt.calls, ",") != strings.Join(want, ",") {
		t.Fatalf("calls %v, want %v", tgt.calls, want)
	}
}

func TestCompileUnknownClass(t *testing.T) {
	s := &Schedule{Events: []Event{{At: 1, Kind: Crash, Class: "nope", N: 1}}}
	if _, err := Compile(s, func(string) (int, bool) { return 0, false }); err == nil {
		t.Fatal("want unknown-class error")
	}
}

func TestCompileNil(t *testing.T) {
	if tl, err := Compile(nil, nil); err != nil || tl != nil {
		t.Fatalf("nil schedule: want (nil, nil), got (%v, %v)", tl, err)
	}
}
