// Package fault is the deterministic fault injector behind the chaos
// experiments and the -fault CLI flags. A Schedule is a list of timed events
// — single-server crashes, whole-class outages, slow-node stragglers, and
// their timed recoveries — that both serving backends (the discrete-event
// simulator and the wall-clock prototype) consume. The package itself holds
// no clock and no randomness: Compile turns a Schedule into (time, action)
// pairs and the engine schedules them on its own timeline, so the same seed
// and the same schedule reproduce the same run bit for bit.
//
// Target selection is deterministic too: within a class, the highest-index
// healthy workers fail first and recover in the same order, so every
// tenant's view of the pool (each tenant models the same physical machines)
// agrees on which servers are down.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the failure modes the injector can produce.
type Kind int

const (
	// Crash takes N servers of a class down; their queued and in-flight
	// batches are lost.
	Crash Kind = iota
	// Outage takes a whole hardware class down (the spot pool vanishes).
	Outage
	// Straggler multiplies the speed of N servers of a class by Factor
	// (0.25 = four times slower) without dropping their work.
	Straggler
)

// String names the kind the way the spec grammar spells it.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Outage:
		return "outage"
	case Straggler:
		return "straggle"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one scheduled fault. At is seconds after serving begins (the
// engines anchor it to the first FeedAll). Class selects the hardware class
// by name; empty means the pool's first class. N bounds how many servers are
// hit (ignored by Outage, which always takes the whole class). Factor is the
// straggler speed multiplier. RecoverAfter, when positive, schedules the
// inverse event that many seconds after the fault fires; zero means the
// fault is permanent.
type Event struct {
	At           float64
	Kind         Kind
	Class        string
	N            int
	Factor       float64
	RecoverAfter float64
}

// String renders the event in the spec grammar accepted by Parse.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%gs", e.Kind, e.At)
	if e.Class != "" {
		fmt.Fprintf(&b, ":class=%s", e.Class)
	}
	if e.N > 0 && e.Kind != Outage {
		fmt.Fprintf(&b, ":n=%d", e.N)
	}
	if e.Kind == Straggler {
		fmt.Fprintf(&b, ":factor=%g", e.Factor)
	}
	if e.RecoverAfter > 0 {
		fmt.Fprintf(&b, ":recover=%gs", e.RecoverAfter)
	}
	return b.String()
}

func (e Event) validate() error {
	if e.At < 0 {
		return fmt.Errorf("fault: event %q: negative time", e.String())
	}
	switch e.Kind {
	case Crash, Straggler:
		if e.N <= 0 {
			return fmt.Errorf("fault: event %q: n must be positive", e.String())
		}
	case Outage:
		// whole class; N ignored
	default:
		return fmt.Errorf("fault: unknown kind %d", int(e.Kind))
	}
	if e.Kind == Straggler && (e.Factor <= 0 || e.Factor >= 1) {
		return fmt.Errorf("fault: event %q: factor must be in (0,1)", e.String())
	}
	if e.RecoverAfter < 0 {
		return fmt.Errorf("fault: event %q: negative recover", e.String())
	}
	return nil
}

// Schedule is an ordered set of fault events. The zero value (or nil) means
// no faults, and every engine hook is bypassed so fault-free runs stay
// bit-identical with the pre-fault code paths.
type Schedule struct {
	Events []Event
}

// Validate checks every event for well-formedness.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for _, e := range s.Events {
		if err := e.validate(); err != nil {
			return err
		}
	}
	return nil
}

// String renders the schedule in the comma-separated spec grammar.
func (s *Schedule) String() string {
	if s == nil || len(s.Events) == 0 {
		return ""
	}
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ",")
}

// Parse reads the CLI spec grammar: comma-separated events of the form
//
//	kind@time[:key=value]...
//
// where kind is crash, outage, or straggle; time is a Go duration ("30s") or
// plain seconds ("30"); and the keys are class=<name>, n=<count>,
// factor=<mult>, and recover=<duration>. Example:
//
//	crash@30s:class=a100:n=2:recover=20s,outage@60s:class=spot:recover=30s
func Parse(spec string) (*Schedule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var s Schedule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseEvent(part)
		if err != nil {
			return nil, err
		}
		s.Events = append(s.Events, ev)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

func parseEvent(part string) (Event, error) {
	fields := strings.Split(part, ":")
	head := fields[0]
	kindStr, atStr, ok := strings.Cut(head, "@")
	if !ok {
		return Event{}, fmt.Errorf("fault: %q: want kind@time", part)
	}
	var ev Event
	switch strings.ToLower(kindStr) {
	case "crash":
		ev.Kind = Crash
		ev.N = 1
	case "outage":
		ev.Kind = Outage
	case "straggle", "straggler":
		ev.Kind = Straggler
		ev.N = 1
		ev.Factor = 0.5
	default:
		return Event{}, fmt.Errorf("fault: %q: unknown kind %q", part, kindStr)
	}
	at, err := parseSeconds(atStr)
	if err != nil {
		return Event{}, fmt.Errorf("fault: %q: bad time %q: %v", part, atStr, err)
	}
	ev.At = at
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return Event{}, fmt.Errorf("fault: %q: want key=value, got %q", part, f)
		}
		switch strings.ToLower(key) {
		case "class":
			ev.Class = val
		case "n":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Event{}, fmt.Errorf("fault: %q: bad n %q", part, val)
			}
			ev.N = n
		case "factor":
			x, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Event{}, fmt.Errorf("fault: %q: bad factor %q", part, val)
			}
			ev.Factor = x
		case "recover":
			d, err := parseSeconds(val)
			if err != nil {
				return Event{}, fmt.Errorf("fault: %q: bad recover %q: %v", part, val, err)
			}
			ev.RecoverAfter = d
		default:
			return Event{}, fmt.Errorf("fault: %q: unknown key %q", part, key)
		}
	}
	return ev, ev.validate()
}

func parseSeconds(s string) (float64, error) {
	if d, err := time.ParseDuration(s); err == nil {
		return d.Seconds(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Target is the engine-side surface the compiled schedule drives. Fail and
// Slow pick their victims (deterministically, highest healthy index first)
// and return the affected physical worker ids so the matching recovery can
// restore exactly those; n <= 0 means the whole class.
type Target interface {
	Fail(class, n int) []int
	Recover(phys []int)
	Slow(class, n int, factor float64) []int
	Restore(phys []int)
}

// Timed is one compiled action on the engine's timeline. Fire applies it to
// the target and returns a human-readable description for status logging.
type Timed struct {
	At   float64
	Fire func(Target) string
}

// Compile turns a schedule into timeline actions, resolving class names via
// classIndex (empty name resolves to class 0). Recovery events share state
// with their fault so exactly the affected workers are restored. The result
// is sorted by time, ties in schedule order.
func Compile(s *Schedule, classIndex func(name string) (int, bool)) ([]Timed, error) {
	if s == nil || len(s.Events) == 0 {
		return nil, nil
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var out []Timed
	for _, e := range s.Events {
		e := e
		ci := 0
		if e.Class != "" {
			idx, ok := classIndex(e.Class)
			if !ok {
				return nil, fmt.Errorf("fault: unknown class %q in %q", e.Class, e.String())
			}
			ci = idx
		}
		var affected []int
		label := e.Class
		if label == "" {
			label = "class0"
		}
		switch e.Kind {
		case Crash, Outage:
			n := e.N
			if e.Kind == Outage {
				n = 0 // whole class
			}
			out = append(out, Timed{At: e.At, Fire: func(t Target) string {
				affected = t.Fail(ci, n)
				return fmt.Sprintf("%s %s: %d server(s) down %v", e.Kind, label, len(affected), affected)
			}})
			if e.RecoverAfter > 0 {
				out = append(out, Timed{At: e.At + e.RecoverAfter, Fire: func(t Target) string {
					t.Recover(affected)
					return fmt.Sprintf("recover %s: %d server(s) back %v", label, len(affected), affected)
				}})
			}
		case Straggler:
			out = append(out, Timed{At: e.At, Fire: func(t Target) string {
				affected = t.Slow(ci, e.N, e.Factor)
				return fmt.Sprintf("straggle %s: %d server(s) at %gx %v", label, len(affected), e.Factor, affected)
			}})
			if e.RecoverAfter > 0 {
				out = append(out, Timed{At: e.At + e.RecoverAfter, Fire: func(t Target) string {
					t.Restore(affected)
					return fmt.Sprintf("restore %s: %d server(s) full speed %v", label, len(affected), affected)
				}})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out, nil
}
