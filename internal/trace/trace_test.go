package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRampEndpoints(t *testing.T) {
	tr := Ramp(10, 100, 10, 1)
	if tr.QPS[0] != 10 || tr.QPS[9] != 100 {
		t.Fatalf("ramp endpoints %g..%g, want 10..100", tr.QPS[0], tr.QPS[9])
	}
	for i := 1; i < len(tr.QPS); i++ {
		if tr.QPS[i] < tr.QPS[i-1] {
			t.Fatal("ramp not monotone")
		}
	}
}

func TestRampSingleStep(t *testing.T) {
	tr := Ramp(5, 50, 1, 1)
	if len(tr.QPS) != 1 || tr.QPS[0] != 5 {
		t.Fatalf("single-step ramp = %v", tr.QPS)
	}
}

func TestScaleToPeak(t *testing.T) {
	tr := AzureLike(1, 288, 300)
	scaled := tr.ScaleToPeak(1500)
	if math.Abs(scaled.Peak()-1500) > 1e-9 {
		t.Fatalf("peak = %g, want 1500", scaled.Peak())
	}
	// Shape preserved: ratios unchanged.
	f := scaled.QPS[10] / tr.QPS[10]
	for i := range tr.QPS {
		if math.Abs(scaled.QPS[i]/tr.QPS[i]-f) > 1e-9 {
			t.Fatalf("shape not preserved at %d", i)
		}
	}
}

func TestAzureLikeHasDiurnalSwing(t *testing.T) {
	tr := AzureLike(7, 288, 300).ScaleToPeak(1000)
	ratio := tr.Peak() / tr.Min()
	if ratio < 3 {
		t.Fatalf("peak/trough = %.2f, want a pronounced diurnal swing (>3)", ratio)
	}
}

func TestTwitterLikeHasDiurnalSwing(t *testing.T) {
	tr := TwitterLike(7, 288, 300).ScaleToPeak(1000)
	if ratio := tr.Peak() / tr.Min(); ratio < 3 {
		t.Fatalf("peak/trough = %.2f, want > 3", ratio)
	}
}

func TestTracesAreDeterministicPerSeed(t *testing.T) {
	a := AzureLike(42, 100, 60)
	b := AzureLike(42, 100, 60)
	for i := range a.QPS {
		if a.QPS[i] != b.QPS[i] {
			t.Fatal("same seed produced different traces")
		}
	}
	c := AzureLike(43, 100, 60)
	same := true
	for i := range a.QPS {
		if a.QPS[i] != c.QPS[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// Diurnal pins its shape: exact trough/peak endpoints, the configured
// peak/trough ratio, and exactly `periods` crests at the expected phase.
func TestDiurnalShape(t *testing.T) {
	const (
		steps   = 240
		trough  = 50.0
		peak    = 500.0
		periods = 3
	)
	tr := Diurnal(steps, 10, trough, peak, periods)
	if len(tr.QPS) != steps || tr.Interval != 10 {
		t.Fatalf("got %d steps interval %g", len(tr.QPS), tr.Interval)
	}
	if math.Abs(tr.Min()-trough) > 1e-9 || math.Abs(tr.Peak()-peak) > 1e-9 {
		t.Fatalf("range [%g, %g], want [%g, %g]", tr.Min(), tr.Peak(), trough, peak)
	}
	if ratio := tr.Peak() / tr.Min(); math.Abs(ratio-peak/trough) > 1e-9 {
		t.Fatalf("peak/trough = %g, want %g", ratio, peak/trough)
	}
	// Period: a crest sits at the midpoint of each cycle (steps/periods
	// intervals per cycle, cos phase starting at the trough).
	cycle := steps / periods
	for p := 0; p < periods; p++ {
		crest := p*cycle + cycle/2
		if math.Abs(tr.QPS[crest]-peak) > 1e-9 {
			t.Fatalf("cycle %d crest at step %d is %g, want %g", p, crest, tr.QPS[crest], peak)
		}
		if p > 0 {
			if valley := tr.QPS[p*cycle]; math.Abs(valley-trough) > 1e-9 {
				t.Fatalf("cycle %d valley at step %d is %g, want %g", p, p*cycle, valley, trough)
			}
		}
	}
}

// FlashCrowd pins its shape: flat base outside the burst, exactly mult×
// inside, and a burst width matching durFrac.
func TestFlashCrowdShape(t *testing.T) {
	const (
		steps = 100
		base  = 200.0
		mult  = 3.0
	)
	tr := FlashCrowd(base, steps, 5, 0.4, 0.2, mult)
	elevated := 0
	for i, q := range tr.QPS {
		switch {
		case q == base:
		case q == base*mult:
			elevated++
		default:
			t.Fatalf("step %d rate %g is neither base nor burst", i, q)
		}
	}
	if elevated != 20 {
		t.Fatalf("burst spans %d steps, want 20 (durFrac 0.2 of %d)", elevated, steps)
	}
	if tr.QPS[39] != base || tr.QPS[40] != base*mult || tr.QPS[59] != base*mult || tr.QPS[60] != base {
		t.Fatal("burst window misaligned with [0.4, 0.6)")
	}
}

func TestRateAtClamps(t *testing.T) {
	tr := Ramp(1, 10, 10, 2) // 20 seconds long
	if tr.RateAt(-5) != tr.QPS[0] {
		t.Fatal("negative time should clamp to first interval")
	}
	if tr.RateAt(1e9) != tr.QPS[9] {
		t.Fatal("far future should clamp to last interval")
	}
	if tr.RateAt(3) != tr.QPS[1] {
		t.Fatalf("RateAt(3) = %g, want %g", tr.RateAt(3), tr.QPS[1])
	}
}

func TestClip(t *testing.T) {
	tr := Ramp(0, 100, 11, 1).Clip(10, 90)
	if tr.Min() < 10 || tr.Peak() > 90 {
		t.Fatalf("clip failed: min %g peak %g", tr.Min(), tr.Peak())
	}
}

// TestArrivalsMatchRate checks the Poisson sampler: empirical rate within a
// few percent of the configured rate over a long window, and timestamps
// strictly inside the trace and sorted.
func TestArrivalsMatchRate(t *testing.T) {
	tr := &Trace{Interval: 100, QPS: []float64{50}}
	rng := rand.New(rand.NewSource(1))
	arr := tr.Arrivals(rng)
	got := float64(len(arr)) / 100
	if math.Abs(got-50)/50 > 0.1 {
		t.Fatalf("empirical rate %.1f, want ≈50", got)
	}
	for i, at := range arr {
		if at < 0 || at >= 100 {
			t.Fatalf("arrival %d at %g outside trace", i, at)
		}
		if i > 0 && at < arr[i-1] {
			t.Fatal("arrivals not sorted")
		}
	}
}

func TestArrivalsSkipZeroRate(t *testing.T) {
	tr := &Trace{Interval: 10, QPS: []float64{0, 20, 0}}
	rng := rand.New(rand.NewSource(2))
	for _, at := range tr.Arrivals(rng) {
		if at < 10 || at >= 20 {
			t.Fatalf("arrival at %g outside the only active interval", at)
		}
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := EWMA{Alpha: 0.3}
	for i := 0; i < 100; i++ {
		e.Observe(42)
	}
	if math.Abs(e.Value()-42) > 1e-9 {
		t.Fatalf("EWMA = %g, want 42", e.Value())
	}
}

func TestEWMAFirstObservationInitializes(t *testing.T) {
	e := EWMA{Alpha: 0.1}
	if e.Initialized() {
		t.Fatal("initialized before any observation")
	}
	e.Observe(10)
	if !e.Initialized() || e.Value() != 10 {
		t.Fatalf("after first obs: %g", e.Value())
	}
}

// TestEWMABetweenMinAndMax: the estimate never escapes the observed range.
func TestEWMABetweenMinAndMax(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := EWMA{Alpha: 0.05 + 0.9*rng.Float64()}
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 50; i++ {
			x := rng.Float64() * 1000
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
			e.Observe(x)
			if e.Value() < lo-1e-9 || e.Value() > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
