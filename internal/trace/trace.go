// Package trace generates the query workloads used in the evaluation.
//
// The paper drives the traffic-analysis pipeline with one day of the
// Microsoft Azure Functions trace and the social-media pipeline with the
// 2018 Twitter streaming trace, in both cases using only the aggregated
// arrival counts and rescaling them to cluster capacity with
// shape-preserving transformations (§6.1). Neither trace ships with this
// repository, so AzureLike and TwitterLike synthesize arrival-rate series
// with the same gross shape (diurnal swing between a low off-peak and a high
// peak, with noise/bursts), and ScaleToPeak performs the same
// shape-preserving rescaling. Within each interval arrivals are Poisson, the
// standard open-loop model.
package trace

import (
	"math"
	"math/rand"
)

// Trace is a demand series: QPS[i] is the mean arrival rate during the i-th
// interval of length Interval seconds.
type Trace struct {
	Interval float64 // seconds per step
	QPS      []float64
}

// Duration returns the total trace duration in seconds.
func (t *Trace) Duration() float64 { return float64(len(t.QPS)) * t.Interval }

// Peak returns the maximum rate in the trace.
func (t *Trace) Peak() float64 {
	p := 0.0
	for _, q := range t.QPS {
		if q > p {
			p = q
		}
	}
	return p
}

// Min returns the minimum rate in the trace.
func (t *Trace) Min() float64 {
	if len(t.QPS) == 0 {
		return 0
	}
	m := math.Inf(1)
	for _, q := range t.QPS {
		if q < m {
			m = q
		}
	}
	return m
}

// RateAt returns the demand at absolute time ts (seconds from trace start),
// clamping beyond-the-end queries to the final interval.
func (t *Trace) RateAt(ts float64) float64 {
	if len(t.QPS) == 0 {
		return 0
	}
	i := int(ts / t.Interval)
	if i < 0 {
		i = 0
	}
	if i >= len(t.QPS) {
		i = len(t.QPS) - 1
	}
	return t.QPS[i]
}

// ScaleToPeak returns a shape-preserving rescaling of the trace so its peak
// equals peak (the §6.1 transformation that fits a public trace to the
// capacity of a 20-server cluster).
func (t *Trace) ScaleToPeak(peak float64) *Trace {
	cur := t.Peak()
	out := &Trace{Interval: t.Interval, QPS: make([]float64, len(t.QPS))}
	if cur == 0 {
		return out
	}
	f := peak / cur
	for i, q := range t.QPS {
		out.QPS[i] = q * f
	}
	return out
}

// Clip returns a copy whose rates are clamped to [lo, hi].
func (t *Trace) Clip(lo, hi float64) *Trace {
	out := &Trace{Interval: t.Interval, QPS: make([]float64, len(t.QPS))}
	for i, q := range t.QPS {
		out.QPS[i] = math.Min(hi, math.Max(lo, q))
	}
	return out
}

// WithSpike returns a copy with a multiplicative burst overlaid: rates in
// the window [startFrac, startFrac+durFrac) of the trace (fractions of its
// duration, clamped to [0,1]) are multiplied by mult. It synthesizes the
// flash-crowd contention scenarios of the multi-tenant experiments — one
// pipeline spikes while its neighbours' demand stays put.
func (t *Trace) WithSpike(startFrac, durFrac, mult float64) *Trace {
	clamp := func(x float64) float64 { return math.Min(1, math.Max(0, x)) }
	startFrac = clamp(startFrac)
	endFrac := clamp(startFrac + durFrac)
	out := &Trace{Interval: t.Interval, QPS: append([]float64(nil), t.QPS...)}
	n := float64(len(t.QPS))
	for i := range out.QPS {
		x := float64(i) / n
		if x >= startFrac && x < endFrac {
			out.QPS[i] *= mult
		}
	}
	return out
}

// Diurnal synthesizes a deterministic day/night demand cycle: the rate
// swings sinusoidally between trough and peak, starting at the trough and
// completing `periods` full cycles over the trace. Unlike AzureLike it is
// noise-free and exactly periodic, which makes it the reference workload for
// seasonal forecasters (the cycle is learnable, so a prediction-driven
// control plane should lead every rising edge).
func Diurnal(steps int, interval, trough, peak float64, periods int) *Trace {
	if periods < 1 {
		periods = 1
	}
	t := &Trace{Interval: interval, QPS: make([]float64, steps)}
	for i := range t.QPS {
		x := float64(i) / float64(steps)
		t.QPS[i] = trough + (peak-trough)*0.5*(1-math.Cos(2*math.Pi*float64(periods)*x))
	}
	return t
}

// FlashCrowd synthesizes a flash-crowd workload: a flat base rate with a
// sudden mult× burst over the window [startFrac, startFrac+durFrac) of the
// trace — the unforecastable-onset scenario a proactive control plane must
// survive by reacting to the first elevated samples instead of the smoothed
// estimate.
func FlashCrowd(base float64, steps int, interval, startFrac, durFrac, mult float64) *Trace {
	t := &Trace{Interval: interval, QPS: make([]float64, steps)}
	for i := range t.QPS {
		t.QPS[i] = base
	}
	// The window is resolved to whole steps up front (unlike WithSpike's
	// per-step fraction test) so the burst width is exactly
	// round(durFrac·steps) intervals, immune to float rounding at the edges.
	start := int(math.Round(startFrac * float64(steps)))
	end := start + int(math.Round(durFrac*float64(steps)))
	for i := start; i < end && i < steps; i++ {
		if i >= 0 {
			t.QPS[i] *= mult
		}
	}
	return t
}

// Ramp returns a linear ramp from startQPS to endQPS over steps intervals —
// the demand pattern of Figure 1's capacity walkthrough.
func Ramp(startQPS, endQPS float64, steps int, interval float64) *Trace {
	t := &Trace{Interval: interval, QPS: make([]float64, steps)}
	for i := range t.QPS {
		f := 0.0
		if steps > 1 {
			f = float64(i) / float64(steps-1)
		}
		t.QPS[i] = startQPS + f*(endQPS-startQPS)
	}
	return t
}

// AzureLike synthesizes a diurnal arrival-rate series shaped like one day of
// the Azure Functions trace: a deep overnight trough, a broad daytime
// plateau with two peaks (late morning, evening) and multiplicative noise.
// steps intervals of the given length cover one simulated "day" regardless
// of wall duration, so short experiments keep the full shape.
func AzureLike(seed int64, steps int, interval float64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	t := &Trace{Interval: interval, QPS: make([]float64, steps)}
	for i := range t.QPS {
		x := float64(i) / float64(steps) // position within the day [0,1)
		// Base diurnal swing: deep overnight trough (≈0.08 of peak) at the
		// start of the trace, plateau through the day.
		base := 0.50 - 0.42*math.Cos(2*math.Pi*x)
		// Two extra peaks: late morning and evening.
		base += 0.26 * gauss(x, 0.45, 0.06)
		base += 0.31 * gauss(x, 0.72, 0.05)
		noise := 1 + 0.05*rng.NormFloat64()
		if noise < 0.7 {
			noise = 0.7
		}
		t.QPS[i] = math.Max(0.02, base*noise)
	}
	return t
}

// TwitterLike synthesizes a diurnal series shaped like the Twitter streaming
// trace: a single broad daily peak plus short bursts (viral events).
func TwitterLike(seed int64, steps int, interval float64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	t := &Trace{Interval: interval, QPS: make([]float64, steps)}
	// Pre-place a few bursts.
	type burst struct {
		at, width, height float64
	}
	var bursts []burst
	for b := 0; b < 3; b++ {
		bursts = append(bursts, burst{
			at:     0.25 + 0.6*rng.Float64(),
			width:  0.008 + 0.012*rng.Float64(),
			height: 0.25 + 0.30*rng.Float64(),
		})
	}
	for i := range t.QPS {
		x := float64(i) / float64(steps)
		base := 0.50 - 0.42*math.Cos(2*math.Pi*x)
		for _, b := range bursts {
			base += b.height * gauss(x, b.at, b.width)
		}
		noise := 1 + 0.06*rng.NormFloat64()
		if noise < 0.65 {
			noise = 0.65
		}
		t.QPS[i] = math.Max(0.02, base*noise)
	}
	return t
}

func gauss(x, mu, sigma float64) float64 {
	d := (x - mu) / sigma
	return math.Exp(-0.5 * d * d)
}

// Arrivals samples Poisson arrival timestamps (seconds from trace start)
// over the whole trace: within interval i, inter-arrival gaps are
// exponential with rate QPS[i].
func (t *Trace) Arrivals(rng *rand.Rand) []float64 {
	var out []float64
	for i, rate := range t.QPS {
		if rate <= 0 {
			continue
		}
		start := float64(i) * t.Interval
		end := start + t.Interval
		at := start
		for {
			at += rng.ExpFloat64() / rate
			if at >= end {
				break
			}
			out = append(out, at)
		}
	}
	return out
}

// EWMA is the exponentially weighted moving average demand estimator the
// Resource Manager uses on recent demand history (§4.2).
type EWMA struct {
	Alpha float64 // smoothing weight of the newest observation, in (0,1]
	val   float64
	init  bool
}

// Observe folds one demand observation into the estimate.
func (e *EWMA) Observe(x float64) {
	if !e.init {
		e.val = x
		e.init = true
		return
	}
	e.val = e.Alpha*x + (1-e.Alpha)*e.val
}

// Value returns the current estimate (zero before any observation).
func (e *EWMA) Value() float64 { return e.val }

// Initialized reports whether at least one observation was folded in.
func (e *EWMA) Initialized() bool { return e.init }
