// Package live is the wall-clock serving engine: the same pipelines,
// controller, routing tables, and drop policies as internal/cluster, but
// with real goroutine workers whose "inference" occupies them for the
// profiled batch duration in real time. It plays the role of the paper's
// Python/ONNX prototype in the §6.2 "validating the simulator" experiment:
// the same workload is served by this engine and by the discrete-event
// simulator, and the metric deltas between the two quantify how faithful
// the simulator is.
package live

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"loki/internal/core"
	"loki/internal/ingress"
	"loki/internal/metrics"
	"loki/internal/pipeline"
	"loki/internal/policy"
	"loki/internal/profiles"
	"loki/internal/telemetry"
	"loki/internal/trace"
)

// Options configures the live engine.
type Options struct {
	Servers int
	// Classes partitions the workers into hardware classes exactly as in
	// cluster.Options: contiguous physical ranges, per-class execution
	// speed, swaps confined to a class. Nil means one "default" class at
	// speed 1.0.
	Classes       []profiles.Class
	SLOSec        float64
	NetLatencySec float64
	Seed          int64
	// TimeScale stretches simulated model latencies into wall time:
	// wall = profiled × TimeScale. 1.0 runs in real time; smaller values
	// compress long experiments (the SLO is compared in scaled time, so
	// results are invariant up to scheduler jitter).
	TimeScale float64
	// RMIntervalSec and LBIntervalSec are controller periods in scaled
	// seconds.
	RMIntervalSec float64
	LBIntervalSec float64
	QueueFactor   float64

	// OnTaskDemand, when non-nil, receives per-task arrival counts every
	// housekeeping second (the Proteus-like baseline's per-task history).
	OnTaskDemand func(task pipeline.TaskID, count float64)

	// Admission, when non-nil, is consulted on every injection path (Submit
	// and Feed alike) before a request enters the system; refused requests
	// are shed — counted, reported to the collector, never queued.
	Admission *ingress.Admission

	// Tier is the pipeline's service tier, echoed on every shed decision
	// (ingress.ShedError.Tier) so 429 responses carry which class of
	// traffic was refused.
	Tier int

	// Telemetry, when non-nil, receives per-worker enqueue/batch/fault
	// events (internally synchronized; safe under or outside e.mu). Nil
	// disables collection.
	Telemetry *telemetry.Collector
	// Tracer, when non-nil, samples root requests into span trees with its
	// own RNG. Wall-clock traces are real measurements, not reproducible.
	Tracer *telemetry.Tracer
}

// Engine is the live serving system.
type Engine struct {
	meta *core.MetadataStore
	pol  policy.Policy
	col  *metrics.Collector
	opts Options
	g    *pipeline.Graph

	mu           sync.Mutex
	rng          *rand.Rand
	routes       *core.Routes
	logical      map[core.WorkerID]*worker
	workers      []*worker
	backupLeft   map[core.WorkerID]float64
	minTail      []float64
	arrivals     int
	taskArrivals []int
	inflight     sync.WaitGroup
	start        time.Time
	started      bool
	stopped      bool

	// Lifecycle state between Start and Stop.
	ctrl      core.Control
	arrRng    *rand.Rand
	done      chan struct{}
	workersWG sync.WaitGroup
	hkWG      sync.WaitGroup
	injectors sync.WaitGroup // in-progress Feed/Submit calls
	curTrace  *trace.Trace
	traceBase float64
	stepErr   error

	TotalInjected  int64
	TotalCompleted int64
	TotalDropped   int64
	TotalRerouted  int64
	TotalShed      int64
	inFlightN      int64 // admitted roots not yet finished (the saturation signal)
	nextRootID     int64 // trace identity for sampled requests
}

type worker struct {
	phys      int
	class     int        // hardware class index
	speed     float64    // current execution speed (baseSpeed × straggler factor)
	baseSpeed float64    // the class's nominal execution speed
	cond      *sync.Cond // waits on the engine mutex
	spec      *core.WorkerSpec
	queue     []*subreq
	qcap      int
	hbIn      int
	hbOut     int

	// Fault state (guarded by e.mu): a down worker is skipped by plan
	// claiming; gen increments on every crash so the worker goroutine can
	// tell that the batch it just executed died with the old incarnation.
	down bool
	gen  int
}

type rootReq struct {
	arrived     float64 // scaled seconds since engine start
	deadline    float64
	mu          sync.Mutex
	outstanding int
	dropped     bool
	accSum      float64
	accN        int
	tr          *telemetry.ReqTrace // nil unless sampled; set once at injection
}

type subreq struct {
	root     *rootReq
	task     pipeline.TaskID
	acc      float64
	enqueued float64
}

// New builds a live engine.
func New(meta *core.MetadataStore, pol policy.Policy, col *metrics.Collector, opts Options) (*Engine, error) {
	if opts.Classes == nil {
		opts.Classes = profiles.DefaultClasses(opts.Servers)
	}
	if total := profiles.TotalCount(opts.Classes); opts.Servers == 0 {
		opts.Servers = total
	} else if opts.Servers != total {
		return nil, fmt.Errorf("live: Servers (%d) disagrees with the hardware classes' total count (%d)", opts.Servers, total)
	}
	if opts.Servers <= 0 {
		return nil, fmt.Errorf("live: need a positive server count")
	}
	if opts.TimeScale == 0 {
		opts.TimeScale = 1.0
	}
	if opts.QueueFactor == 0 {
		opts.QueueFactor = 2.0
	}
	if opts.RMIntervalSec == 0 {
		opts.RMIntervalSec = 10
	}
	if opts.LBIntervalSec == 0 {
		opts.LBIntervalSec = 1
	}
	e := &Engine{
		meta:       meta,
		pol:        pol,
		col:        col,
		opts:       opts,
		g:          meta.Graph(),
		rng:        rand.New(rand.NewSource(opts.Seed)),
		logical:    map[core.WorkerID]*worker{},
		backupLeft: map[core.WorkerID]float64{},
	}
	for cl, class := range opts.Classes {
		speed := class.Speed
		if speed == 0 {
			speed = 1.0
		}
		for i := 0; i < class.Count; i++ {
			w := &worker{phys: len(e.workers), class: cl, speed: speed, baseSpeed: speed}
			w.cond = sync.NewCond(&e.mu)
			e.workers = append(e.workers, w)
		}
	}
	e.taskArrivals = make([]int, len(meta.Graph().Tasks))
	classProf := meta.ClassProfiles()
	e.minTail = make([]float64, len(e.g.Tasks))
	var tail func(t pipeline.TaskID) float64
	tail = func(t pipeline.TaskID) float64 {
		minExec := math.Inf(1)
		for _, prof := range classProf {
			for k := range prof[t] {
				for _, l := range prof[t][k].LatencySec {
					if l < minExec {
						minExec = l
					}
				}
			}
		}
		worst := 0.0
		for _, ch := range e.g.Tasks[t].Children {
			if v := tail(ch.Task); v > worst {
				worst = v
			}
		}
		e.minTail[t] = opts.NetLatencySec + minExec + worst
		return e.minTail[t]
	}
	tail(0)
	return e, nil
}

// now returns the scaled time since the run started.
func (e *Engine) now() float64 {
	return time.Since(e.start).Seconds() / e.opts.TimeScale
}

// sleepScaled sleeps for d scaled seconds.
func (e *Engine) sleepScaled(d float64) {
	if d <= 0 {
		return
	}
	time.Sleep(time.Duration(d * e.opts.TimeScale * float64(time.Second)))
}

// ApplyPlan installs a plan and routing tables (Controller publish target).
func (e *Engine) ApplyPlan(plan *core.Plan, routes *core.Routes) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.routes = routes

	key := func(s *core.WorkerSpec) string {
		return fmt.Sprintf("%d/%d/%d/%d", s.Task, s.Variant, s.MaxBatch, s.Class)
	}
	claimed := make([]bool, len(e.workers))
	assign := make([]*core.WorkerSpec, len(e.workers))
	var unmatched []*core.WorkerSpec
	for i := range routes.Specs {
		s := &routes.Specs[i]
		found := false
		for wi, w := range e.workers {
			if !claimed[wi] && !w.down && w.spec != nil && key(w.spec) == key(s) {
				claimed[wi] = true
				assign[wi] = s
				found = true
				break
			}
		}
		if !found {
			unmatched = append(unmatched, s)
		}
	}
	for _, s := range unmatched {
		for wi, w := range e.workers {
			if !claimed[wi] && !w.down && w.class == s.Class {
				claimed[wi] = true
				assign[wi] = s
				break
			}
		}
	}
	e.logical = make(map[core.WorkerID]*worker, len(routes.Specs))
	for wi, w := range e.workers {
		ns := assign[wi]
		if ns != nil {
			e.logical[ns.ID] = w
		}
		if ns == nil && w.spec != nil {
			for _, sub := range w.queue {
				e.abandonLocked(sub)
			}
			w.queue = nil
			e.opts.Telemetry.QueueCleared(e.now(), w.phys)
		}
		if ns != nil && w.spec != nil && w.spec.Task != ns.Task {
			for _, sub := range w.queue {
				e.abandonLocked(sub)
			}
			w.queue = nil
			e.opts.Telemetry.QueueCleared(e.now(), w.phys)
		}
		if ns != nil && w.spec != nil && (w.spec.Task != ns.Task || w.spec.Variant != ns.Variant) {
			e.opts.Telemetry.Swap(e.now(), w.phys)
		}
		w.spec = ns
		if ns != nil {
			w.qcap = queueCap(e.opts, ns)
			w.cond.Signal()
		}
		e.opts.Telemetry.SetAssigned(e.now(), w.phys, e.assignedName(ns))
	}
	e.backupLeft = map[core.WorkerID]float64{}
	for _, entries := range routes.Backup {
		for _, b := range entries {
			e.backupLeft[b.Worker] = b.Leftover
		}
	}
}

// assignedName renders a spec as "task/variant" for the telemetry row, or ""
// for an idle worker.
func (e *Engine) assignedName(s *core.WorkerSpec) string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("%s/%d", e.g.Tasks[s.Task].Name, s.Variant)
}

func queueCap(o Options, s *core.WorkerSpec) int {
	byRate := int(math.Ceil(o.QueueFactor * s.QPS * o.SLOSec))
	if m := 2 * s.MaxBatch; byRate < m {
		byRate = m
	}
	return byRate
}

// ActiveServers counts workers hosting a model.
func (e *Engine) ActiveServers() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, w := range e.workers {
		if w.spec != nil {
			n++
		}
	}
	return n
}

// ActiveByClass counts workers hosting a model in each hardware class, in
// class order.
func (e *Engine) ActiveByClass() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]int, len(e.opts.Classes))
	for _, w := range e.workers {
		if w.spec != nil {
			out[w.class]++
		}
	}
	return out
}

// SetWorkerDown crashes physical worker phys: queued requests are lost, the
// batch executing right now (if any) is discarded when its worker goroutine
// wakes, the worker leaves the logical route table, and it stops counting
// toward class capacity until SetWorkerUp. Idempotent and safe from any
// goroutine.
func (e *Engine) SetWorkerDown(phys int) {
	e.mu.Lock()
	w := e.workers[phys]
	if w.down {
		e.mu.Unlock()
		return
	}
	w.down = true
	w.gen++ // the executing batch, if any, dies with the old incarnation
	if w.spec != nil {
		if e.logical[w.spec.ID] == w {
			delete(e.logical, w.spec.ID)
		}
		w.spec = nil
	}
	queue := w.queue
	w.queue = nil
	for _, sub := range queue {
		e.abandonLocked(sub)
	}
	e.mu.Unlock()
	e.opts.Telemetry.SetDown(e.now(), phys, true)
}

// SetWorkerUp brings a crashed worker back as an idle server; the next
// ApplyPlan may claim it again. Idempotent.
func (e *Engine) SetWorkerUp(phys int) {
	e.mu.Lock()
	e.workers[phys].down = false
	e.mu.Unlock()
	e.opts.Telemetry.SetDown(e.now(), phys, false)
}

// SetWorkerSpeedFactor scales a worker's execution speed relative to its
// class's nominal speed (a straggler at factor 0.25 runs four times slower);
// factor 1 restores full speed. A batch already executing keeps the latency
// it started with.
func (e *Engine) SetWorkerSpeedFactor(phys int, factor float64) {
	e.mu.Lock()
	w := e.workers[phys]
	w.speed = w.baseSpeed * factor
	e.mu.Unlock()
	e.opts.Telemetry.SetSpeed(e.now(), phys, factor)
}

// Start launches the worker goroutines and the housekeeping loop
// (per-second demand reports, heartbeats, reactive and periodic controller
// steps). The engine then accepts Submit and Feed until Stop.
//
// ctrl is any core.Control — the single-pipeline Controller or the
// multi-tenant MultiController. A nil ctrl runs demand reports and
// heartbeats but no controller stepping; a multi-tenant harness passes nil
// for all but one member engine so the joint controller is stepped exactly
// once per interval.
func (e *Engine) Start(ctrl core.Control) error {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return fmt.Errorf("live: engine already started")
	}
	e.started = true
	e.stopped = false
	e.ctrl = ctrl
	e.arrRng = rand.New(rand.NewSource(e.opts.Seed + 2))
	e.stepErr = nil
	e.curTrace = nil
	e.start = time.Now()
	e.done = make(chan struct{})
	e.mu.Unlock()

	for _, w := range e.workers {
		e.workersWG.Add(1)
		go func(w *worker) {
			defer e.workersWG.Done()
			e.workerLoop(w)
		}(w)
	}
	e.hkWG.Add(1)
	go e.housekeeping()
	return nil
}

// housekeeping ticks once per scaled second until Stop.
func (e *Engine) housekeeping() {
	defer e.hkWG.Done()
	tick := time.NewTicker(time.Duration(e.opts.TimeScale * float64(time.Second)))
	defer tick.Stop()
	lastRM := 0.0
	lastLB := 0.0
	for {
		select {
		case <-e.done:
			return
		case <-tick.C:
		}
		now := e.now()
		e.mu.Lock()
		count := e.arrivals
		e.arrivals = 0
		var taskCounts []int
		if e.opts.OnTaskDemand != nil {
			taskCounts = append([]int(nil), e.taskArrivals...)
			for i := range e.taskArrivals {
				e.taskArrivals[i] = 0
			}
		}
		for _, w := range e.workers {
			if w.spec == nil || w.hbIn == 0 {
				continue
			}
			sumRatio := 0.0
			for _, ch := range e.g.Tasks[w.spec.Task].Children {
				sumRatio += ch.BranchRatio
			}
			if sumRatio > 0 {
				e.meta.ReportMultFactor(w.spec.Task, w.spec.Variant,
					float64(w.hbOut)/(float64(w.hbIn)*sumRatio))
			}
			w.hbIn, w.hbOut = 0, 0
		}
		active := 0
		activeByClass := make([]int, len(e.opts.Classes))
		for _, w := range e.workers {
			if w.spec != nil {
				active++
				activeByClass[w.class]++
			}
		}
		tr := e.curTrace
		base := e.traceBase
		ctrl := e.ctrl
		e.mu.Unlock()

		e.meta.ObserveDemandAt(now, float64(count))
		for task, n := range taskCounts {
			e.opts.OnTaskDemand(pipeline.TaskID(task), float64(n))
		}
		e.colLocked(func(c *metrics.Collector) {
			if tr != nil {
				c.SampleDemand(now, tr.RateAt(now-base))
			}
			c.SampleServers(now, active)
			c.SampleClassServers(activeByClass)
		})
		e.opts.Telemetry.Sample(now)
		if ctrl == nil {
			continue
		}
		if err := ctrl.Step(false); err != nil {
			e.recordErr(err)
		}
		if now-lastLB >= e.opts.LBIntervalSec {
			ctrl.Rebalance()
			lastLB = now
		}
		if now-lastRM >= e.opts.RMIntervalSec {
			if err := ctrl.Step(true); err != nil {
				e.recordErr(err)
			}
			lastRM = now
		}
	}
}

func (e *Engine) recordErr(err error) {
	e.mu.Lock()
	if e.stepErr == nil {
		e.stepErr = err
	}
	e.mu.Unlock()
}

// Submit admits one request at the current wall-clock instant. With an
// admission controller armed, a refused request returns *ingress.ShedError
// (carrying the Retry-After hint) and never enters the system.
func (e *Engine) Submit() error {
	e.mu.Lock()
	if !e.started || e.stopped {
		e.mu.Unlock()
		return fmt.Errorf("live: engine not running")
	}
	e.injectors.Add(1)
	e.mu.Unlock()
	defer e.injectors.Done()
	if ok, retry := e.inject(); !ok {
		return &ingress.ShedError{RetryAfterSec: retry, Tier: e.opts.Tier}
	}
	return nil
}

// Feed plays the trace's open-loop Poisson arrival process in (scaled) wall
// time, blocking until the last arrival has been injected.
func (e *Engine) Feed(tr *trace.Trace) error {
	e.mu.Lock()
	if !e.started || e.stopped {
		e.mu.Unlock()
		return fmt.Errorf("live: engine not running")
	}
	base := time.Since(e.start).Seconds() / e.opts.TimeScale
	e.curTrace = tr
	e.traceBase = base
	arrRng := e.arrRng
	e.injectors.Add(1)
	e.mu.Unlock()
	defer e.injectors.Done()

	for _, at := range tr.Arrivals(arrRng) {
		// A concurrent Stop aborts the remaining arrivals at the next
		// inter-arrival boundary.
		e.mu.Lock()
		running := e.started
		e.mu.Unlock()
		if !running {
			break
		}
		e.sleepScaled(base + at - e.now())
		e.inject()
	}
	return nil
}

// Stop waits for in-flight requests to drain, then shuts down the
// housekeeping loop and the worker goroutines. Idempotent; returns the first
// controller-step error observed while running, if any.
func (e *Engine) Stop() error {
	e.mu.Lock()
	if !e.started {
		err := e.stepErr
		e.mu.Unlock()
		return err
	}
	e.started = false
	e.mu.Unlock()

	// New injections are refused above; wait out the in-progress ones so no
	// inflight.Add can race the Wait below.
	e.injectors.Wait()
	e.inflight.Wait()
	close(e.done)
	e.hkWG.Wait()

	e.mu.Lock()
	e.stopped = true
	for _, w := range e.workers {
		w.cond.Broadcast()
	}
	err := e.stepErr
	e.mu.Unlock()
	e.workersWG.Wait()
	return err
}

// Serve drives the engine over a workload trace, blocking until the trace
// finishes and in-flight requests drain. The controller is stepped on its
// periodic intervals exactly as in the simulator. It is Start → Feed → Stop.
func (e *Engine) Serve(tr *trace.Trace, ctrl core.Control) error {
	if err := e.Start(ctrl); err != nil {
		return err
	}
	if err := e.Feed(tr); err != nil {
		e.Stop()
		return err
	}
	return e.Stop()
}

// Now returns the scaled seconds since Start (0 before the first Start).
func (e *Engine) Now() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.start.IsZero() {
		return 0
	}
	return time.Since(e.start).Seconds() / e.opts.TimeScale
}

// Totals returns the cumulative request counters under the engine lock.
func (e *Engine) Totals() (injected, completed, dropped, rerouted, shed int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.TotalInjected, e.TotalCompleted, e.TotalDropped, e.TotalRerouted, e.TotalShed
}

// InFlight returns the number of admitted requests not yet resolved.
func (e *Engine) InFlight() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.inFlightN
}

// colLocked guards against a nil collector; the Collector itself is
// internally synchronized.
func (e *Engine) colLocked(f func(*metrics.Collector)) {
	if e.col == nil {
		return
	}
	f(e.col)
}

// inject admits one client request. With an admission controller armed the
// request may instead be shed, returning false and a Retry-After hint.
func (e *Engine) inject() (admitted bool, retryAfterSec float64) {
	now := e.now()
	e.mu.Lock()
	// Offered demand counts shed requests too: the demand observation feeds
	// the planner, and the admission rate follows the planner's grants — if
	// shedding hid the excess, observed demand would be capped at the granted
	// rate and the system could never scale up out of an overload.
	e.arrivals++
	adm := e.opts.Admission
	if adm != nil {
		if ok, retry := adm.Admit(now, e.inFlightN); !ok {
			e.TotalShed++
			e.mu.Unlock()
			e.colLocked(func(c *metrics.Collector) { c.Shed(now) })
			return false, retry
		}
	}
	e.TotalInjected++
	e.inFlightN++
	e.nextRootID++
	rootID := e.nextRootID
	routes := e.routes
	var target core.WorkerID
	ok := false
	if routes != nil {
		target, ok = e.pickLocked(routes.Frontend)
	}
	e.mu.Unlock()

	e.colLocked(func(c *metrics.Collector) {
		c.Arrival(now)
		if adm != nil {
			c.Admitted(now)
		}
	})
	root := &rootReq{arrived: now, deadline: now + e.opts.SLOSec}
	root.tr = e.opts.Tracer.Start(rootID, now)
	if !ok {
		root.dropped = true
		e.finish(root)
		return true, 0
	}
	root.outstanding = 1
	e.inflight.Add(1)
	sub := &subreq{root: root, task: 0, acc: 1}
	go e.deliver(sub, target)
	return true, 0
}

// deliver moves a subrequest to a worker after one (scaled) network hop.
func (e *Engine) deliver(sub *subreq, target core.WorkerID) {
	e.sleepScaled(e.opts.NetLatencySec)
	e.mu.Lock()
	w := e.logical[target]
	if w == nil || w.spec == nil || w.spec.Task != sub.task || len(w.queue) >= w.qcap {
		e.mu.Unlock()
		e.abandon(sub)
		return
	}
	sub.enqueued = e.now()
	w.queue = append(w.queue, sub)
	e.taskArrivals[sub.task]++
	w.cond.Signal()
	e.mu.Unlock()
	e.opts.Telemetry.Enqueue(sub.enqueued, w.phys)
}

// workerLoop executes batches until the engine stops.
func (e *Engine) workerLoop(w *worker) {
	for {
		e.mu.Lock()
		for !e.stopped && (w.spec == nil || len(w.queue) == 0) {
			w.cond.Wait()
		}
		if e.stopped {
			e.mu.Unlock()
			return
		}
		spec := w.spec
		gen := w.gen     // capture: a crash mid-batch discards the results
		speed := w.speed // capture: straggler factor at batch start
		b := len(w.queue)
		if b > spec.MaxBatch {
			b = spec.MaxBatch
		}
		batch := append([]*subreq(nil), w.queue[:b]...)
		w.queue = w.queue[b:]
		e.mu.Unlock()
		startT := e.now()
		e.opts.Telemetry.BatchStart(startT, w.phys, b)

		v := &e.g.Tasks[spec.Task].Variants[spec.Variant]
		e.sleepScaled(v.Latency(b) / speed)

		e.mu.Lock()
		stale := w.gen != gen
		e.mu.Unlock()
		if stale {
			// The worker crashed while this batch was executing: the
			// results never materialize and the roots are lost. (The crash
			// already cleared the worker's telemetry in-flight state.)
			for _, sub := range batch {
				e.abandon(sub)
			}
			continue
		}
		endT := e.now()
		e.opts.Telemetry.BatchEnd(endT, w.phys, len(batch))
		if e.opts.Tracer != nil {
			for _, sub := range batch {
				if sub.root.tr != nil {
					e.opts.Tracer.AddSpan(sub.root.tr, telemetry.Span{
						Stage:       e.g.Tasks[spec.Task].Name,
						Worker:      w.phys,
						Class:       e.opts.Classes[w.class].Name,
						EnqueuedSec: sub.enqueued,
						StartSec:    startT,
						EndSec:      endT,
						Batch:       len(batch),
					})
				}
			}
		}
		for _, sub := range batch {
			e.complete(sub, w, spec)
		}
	}
}

// complete mirrors cluster.completeAt under the live mutex.
func (e *Engine) complete(sub *subreq, w *worker, spec *core.WorkerSpec) {
	now := e.now()
	task := &e.g.Tasks[spec.Task]
	v := &task.Variants[spec.Variant]
	acc := sub.acc * v.Accuracy

	if task.IsSink() {
		sub.root.mu.Lock()
		sub.root.accSum += acc
		sub.root.accN++
		sub.root.mu.Unlock()
	}

	e.mu.Lock()
	w.hbIn++
	routes := e.routes
	var table *core.WorkerTable
	if routes != nil {
		if w.spec != nil && w.spec.Task == spec.Task {
			table = routes.Tables[w.spec.ID]
		}
		if table == nil {
			table = routes.Tables[spec.ID]
		}
	}
	type fwd struct {
		child  pipeline.TaskID
		target core.WorkerID
		drop   bool
	}
	var fwds []fwd
	totalOut := 0
	for _, child := range task.Children {
		mean := v.MultFactor * child.BranchRatio
		k := e.poissonLocked(mean)
		totalOut += k
		for i := 0; i < k; i++ {
			var entries []core.RouteEntry
			if table != nil {
				entries = table.PerChild[child.Task]
			}
			target, ok := e.pickLocked(entries)
			if !ok {
				fwds = append(fwds, fwd{child: child.Task, drop: true})
				continue
			}
			nextExec := 0.0
			if tw := e.logical[target]; tw != nil && tw.spec != nil {
				nextExec = tw.spec.LatencySec
			}
			ctx := policy.Context{
				Now:         now,
				Deadline:    sub.root.deadline,
				EnteredTask: sub.enqueued,
				Budget:      spec.BudgetSec,
				HasNext:     true,
				NextTask:    child.Task,
				NextIsSink:  len(e.g.Tasks[child.Task].Children) == 0,
				NextExec:    nextExec,
				NetLatency:  e.opts.NetLatencySec,
				MinTail:     e.minTail[child.Task],
				FindBackup:  e.findBackupLocked,
			}
			d := e.pol.OnTaskComplete(&ctx)
			if d.Drop {
				fwds = append(fwds, fwd{child: child.Task, drop: true})
				continue
			}
			if d.Reroute {
				target = d.Alternate
				e.TotalRerouted++
			}
			fwds = append(fwds, fwd{child: child.Task, target: target})
		}
	}
	w.hbOut += totalOut
	e.mu.Unlock()

	dropped := false
	spawned := 0
	for _, f := range fwds {
		if f.drop {
			dropped = true
			continue
		}
		spawned++
	}
	sub.root.mu.Lock()
	if dropped {
		sub.root.dropped = true
	}
	sub.root.outstanding += spawned
	sub.root.mu.Unlock()
	for _, f := range fwds {
		if f.drop {
			continue
		}
		child := &subreq{root: sub.root, task: f.child, acc: acc}
		e.inflight.Add(1)
		go e.deliver(child, f.target)
	}

	e.release(sub.root)
}

// release decrements a root's outstanding count and finishes it at zero.
// The caller must have accounted for the just-finished subrequest.
func (e *Engine) release(root *rootReq) {
	root.mu.Lock()
	root.outstanding--
	fin := root.outstanding == 0
	root.mu.Unlock()
	if fin {
		e.finish(root)
	}
	e.inflight.Done()
}

func (e *Engine) abandon(sub *subreq) {
	sub.root.mu.Lock()
	sub.root.dropped = true
	sub.root.mu.Unlock()
	e.release(sub.root)
}

// abandonLocked is abandon for subrequests still queued when a worker is
// reassigned; e.mu is held, so only the root is touched.
func (e *Engine) abandonLocked(sub *subreq) {
	go e.abandon(sub)
}

func (e *Engine) finish(root *rootReq) {
	now := e.now()
	e.mu.Lock()
	e.inFlightN--
	if root.dropped {
		e.TotalDropped++
	} else {
		e.TotalCompleted++
	}
	e.mu.Unlock()
	if root.dropped {
		e.colLocked(func(c *metrics.Collector) { c.Dropped(now, root.arrived) })
		e.opts.Tracer.Finish(root.tr, now, true, false)
		return
	}
	late := now > root.deadline+1e-9
	e.opts.Tracer.Finish(root.tr, now, false, late)
	accuracy := math.NaN()
	if root.accN > 0 {
		accuracy = root.accSum / float64(root.accN)
	}
	e.colLocked(func(c *metrics.Collector) { c.Completed(now, late, now-root.arrived, accuracy) })
}

func (e *Engine) pickLocked(entries []core.RouteEntry) (core.WorkerID, bool) {
	if len(entries) == 0 {
		return 0, false
	}
	r := e.rng.Float64()
	total := 0.0
	for _, en := range entries {
		total += en.Prob
		r -= en.Prob
		if r <= 0 {
			return en.Worker, true
		}
	}
	if total >= 1-1e-9 {
		return entries[len(entries)-1].Worker, true
	}
	return 0, false
}

func (e *Engine) findBackupLocked(task pipeline.TaskID, maxExec float64) (core.WorkerID, bool) {
	if e.routes == nil {
		return 0, false
	}
	for _, b := range e.routes.Backup[task] {
		if b.ExecSec <= maxExec && e.backupLeft[b.Worker] >= 1 {
			e.backupLeft[b.Worker]--
			return b.Worker, true
		}
	}
	return 0, false
}

func (e *Engine) poissonLocked(mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= e.rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}
