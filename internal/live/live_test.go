package live

import (
	"testing"
	"time"

	"loki/internal/core"
	"loki/internal/metrics"
	"loki/internal/policy"
	"loki/internal/profiles"
	"loki/internal/trace"
)

// TestLiveEngineServesTrace runs a short real-time workload end to end: the
// controller allocates, goroutine workers batch and forward, and the
// metrics must show the traffic served with sane accuracy. This is the unit
// test under the §6.2 validation experiment.
func TestLiveEngineServesTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time test (~8s wall)")
	}
	g := profiles.TrafficTree()
	prof := (&profiles.Profiler{}).ProfileGraph(g, profiles.Batches)
	meta := core.NewMetadataStore(g, prof, 0.250, profiles.Batches)
	alloc, err := core.NewAllocator(meta, core.AllocatorOptions{
		Servers: 20, NetLatencySec: 0.002, KeepWarm: true,
		Headroom: 0.30, SolveTimeLimit: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	col := metrics.NewCollector(5, 20)
	eng, err := New(meta, policy.Opportunistic{}, col, Options{
		Servers: 20, SLOSec: 0.250, NetLatencySec: 0.002, Seed: 3,
		TimeScale: 0.5, // 2× compressed wall time
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := core.NewController(meta, alloc, eng.ApplyPlan)
	ctrl.RouteHeadroom = 0.30

	// Constant load: ramps stress controller lag identically in both
	// engines (that is the validation experiment's job); the unit test
	// checks the steady-state machinery.
	tr := &trace.Trace{Interval: 4, QPS: []float64{200, 200, 200, 200}}
	meta.ObserveDemand(tr.QPS[0])
	if err := ctrl.Step(true); err != nil {
		t.Fatal(err)
	}
	if err := eng.Serve(tr, ctrl); err != nil {
		t.Fatal(err)
	}

	if eng.TotalInjected == 0 {
		t.Fatal("no traffic injected")
	}
	if eng.TotalInjected != eng.TotalCompleted+eng.TotalDropped {
		t.Fatalf("conservation: %d != %d + %d", eng.TotalInjected, eng.TotalCompleted, eng.TotalDropped)
	}
	s := col.Summarize()
	if s.MeanAccuracy < 0.9 {
		t.Fatalf("accuracy %.4f, want ≈1.0 at low demand", s.MeanAccuracy)
	}
	if s.ViolationRatio > 0.15 {
		t.Fatalf("violation ratio %.4f, too high for a steady lightly-loaded run", s.ViolationRatio)
	}
	if eng.ActiveServers() == 0 {
		t.Fatal("no active servers after run")
	}
}

func TestLiveEngineRejectsZeroServers(t *testing.T) {
	g := profiles.TrafficChain()
	prof := (&profiles.Profiler{}).ProfileGraph(g, profiles.Batches)
	meta := core.NewMetadataStore(g, prof, 0.250, profiles.Batches)
	if _, err := New(meta, policy.NoDrop{}, nil, Options{}); err == nil {
		t.Fatal("want error for zero servers")
	}
}
