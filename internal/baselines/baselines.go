// Package baselines implements the two comparison systems of §6.1 as
// core.Planner implementations, so every approach runs on the identical
// cluster substrate and differs only in how it allocates resources:
//
//   - InferLine-like: pipeline-aware hardware scaling with a fixed,
//     client-specified model variant per task (we use the most accurate, as
//     the paper's experiments do). It can add and remove replicas but never
//     switches variants, so once the cluster saturates, demand goes unmet.
//
//   - Proteus-like: accuracy scaling applied to each task independently.
//     It is pipeline-agnostic: the cluster is statically partitioned across
//     tasks, every server stays active (no hardware scaling), each task's
//     demand is estimated from the task's own recent arrivals without
//     modeling upstream multiplicative factors, and each task receives an
//     equal share of the latency SLO rather than a jointly optimized split.
package baselines

import (
	"fmt"
	"math"

	"loki/internal/core"
	"loki/internal/pipeline"
	"loki/internal/profiles"
)

// InferLine performs hardware scaling only (§6.1 baseline 1). It reuses
// Loki's step-1 MILP restricted to the most accurate variants; when even the
// full cluster cannot serve the demand at fixed accuracy, it keeps the
// biggest feasible deployment — exactly the regime where its SLO violations
// explode in Figures 5 and 6.
type InferLine struct {
	Meta *core.MetadataStore
	Opts core.AllocatorOptions

	alloc *core.Allocator
}

// NewInferLine builds the baseline planner.
func NewInferLine(meta *core.MetadataStore, opts core.AllocatorOptions) (*InferLine, error) {
	// Restricting to the most accurate variants is done by the hardware
	// step itself; MinPathAccuracy 0 keeps the path set unrestricted.
	a, err := core.NewAllocator(meta, opts)
	if err != nil {
		return nil, err
	}
	return &InferLine{Meta: meta, Opts: opts, alloc: a}, nil
}

// Allocate serves the demand with the fixed most-accurate variants if
// possible, and otherwise provisions the whole cluster for the largest
// fraction it can sustain at fixed accuracy.
func (b *InferLine) Allocate(demand float64) (*core.Plan, error) {
	plan, err := b.alloc.AllocateHardwareOnly(demand)
	if err != nil {
		return nil, err
	}
	return plan, nil
}

// AllocateCapped is Allocate with the per-class server counts temporarily
// bounded to caps, so an InferLine-managed pipeline can live inside a
// multi-tenant partition (core.CappedPlanner). Homogeneous pools pass a
// single-element vector.
func (b *InferLine) AllocateCapped(demand float64, caps []int) (*core.Plan, error) {
	if want := len(b.Meta.Classes()); len(caps) != want {
		return nil, fmt.Errorf("baselines: capped allocation got %d class grants for %d hardware classes", len(caps), want)
	}
	total := 0
	for _, n := range caps {
		total += n
	}
	if total <= 0 {
		return nil, fmt.Errorf("baselines: capped allocation needs a positive server budget, got %d", total)
	}
	if warm := len(b.Meta.Graph().Tasks); total < warm {
		return nil, fmt.Errorf("baselines: capped allocation of %d servers cannot hold one replica of each of %d tasks", total, warm)
	}
	return b.alloc.Capped(caps).AllocateHardwareOnly(demand)
}

// Proteus performs per-task accuracy scaling without pipeline awareness
// (§6.1 baseline 2).
type Proteus struct {
	Meta *core.MetadataStore
	Opts core.AllocatorOptions

	// taskShare[i] is the static number of servers dedicated to task i.
	taskShare []int
	// taskDemand tracks each task's own observed arrival rate; Observe
	// feeds it (the cluster harness reports per-task arrivals).
	taskDemand []float64
	allocs     []*core.Allocator
}

// NewProteus builds the baseline planner. The cluster is partitioned across
// tasks proportionally to each task's compute demand per root query at
// maximum accuracy — the natural static split an operator would configure —
// and the partition never changes afterwards (that is the point of the
// baseline).
func NewProteus(meta *core.MetadataStore, opts core.AllocatorOptions) (*Proteus, error) {
	if len(meta.Classes()) > 1 {
		// The static per-task partition has no notion of hardware classes:
		// an operator-configured split of a heterogeneous fleet is a
		// different (and stronger) baseline than the paper compares against.
		return nil, fmt.Errorf("baselines: the Proteus-like baseline supports homogeneous clusters only")
	}
	g := meta.Graph()
	n := len(g.Tasks)
	p := &Proteus{
		Meta:       meta,
		Opts:       opts,
		taskShare:  make([]int, n),
		taskDemand: make([]float64, n),
	}

	// Static partition: weight each task by (expected load per root query)
	// / (throughput of its most accurate variant at a mid batch size).
	weights := make([]float64, n)
	loads := rootLoads(g)
	prof := meta.Profiles()
	total := 0.0
	for i := range g.Tasks {
		best := g.Tasks[i].MostAccurate()
		q, _ := prof[i][best].MaxQPS()
		if q <= 0 {
			return nil, fmt.Errorf("baselines: task %d has no throughput", i)
		}
		weights[i] = loads[i] / q
		total += weights[i]
	}
	assigned := 0
	for i := range g.Tasks {
		s := int(math.Floor(float64(opts.Servers) * weights[i] / total))
		if s < 1 {
			s = 1
		}
		p.taskShare[i] = s
		assigned += s
	}
	// Distribute the remainder to the heaviest tasks.
	for assigned < opts.Servers {
		best := 0
		for i := range weights {
			if weights[i]/float64(p.taskShare[i]) > weights[best]/float64(p.taskShare[best]) {
				best = i
			}
		}
		p.taskShare[best]++
		assigned++
	}
	for assigned > opts.Servers {
		// Extremely small clusters: shrink the lightest tasks, floor 1.
		best := -1
		for i := range weights {
			if p.taskShare[i] > 1 && (best < 0 || weights[i]/float64(p.taskShare[i]) < weights[best]/float64(p.taskShare[best])) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		p.taskShare[best]--
		assigned--
	}

	// One single-task allocator per task, with an equal share of the SLO.
	for i := range g.Tasks {
		sub := &pipeline.Graph{
			Name:  fmt.Sprintf("%s/task-%d", g.Name, i),
			Tasks: []pipeline.Task{{ID: 0, Name: g.Tasks[i].Name, Variants: g.Tasks[i].Variants}},
		}
		subMeta := core.NewMetadataStore(sub,
			[][]profiles.Profile{append([]profiles.Profile(nil), prof[i]...)},
			meta.SLO()/float64(len(g.Tasks)), meta.Batches())
		a, err := core.NewAllocator(subMeta, core.AllocatorOptions{
			Servers:        p.taskShare[i],
			NetLatencySec:  opts.NetLatencySec,
			KeepWarm:       true,
			Headroom:       opts.Headroom,
			SolveTimeLimit: opts.SolveTimeLimit,
		})
		if err != nil {
			return nil, fmt.Errorf("baselines: task %d (share %d servers): %w", i, p.taskShare[i], err)
		}
		p.allocs = append(p.allocs, a)
	}
	return p, nil
}

// rootLoads returns the expected number of requests reaching each task per
// root query, using the most accurate variants' multiplicative factors.
func rootLoads(g *pipeline.Graph) []float64 {
	loads := make([]float64, len(g.Tasks))
	var walk func(id pipeline.TaskID, mult float64)
	walk = func(id pipeline.TaskID, mult float64) {
		loads[id] += mult
		best := g.Tasks[id].MostAccurate()
		out := mult * g.Tasks[id].Variants[best].MultFactor
		for _, c := range g.Tasks[id].Children {
			walk(c.Task, out*c.BranchRatio)
		}
	}
	walk(0, 1)
	return loads
}

// ObserveTaskDemand records a task's own arrival rate (QPS). The harness
// reports these; Proteus scales each task against its *own* history instead
// of deriving downstream demand from the pipeline structure — the
// pipeline-agnosticism that costs it accuracy and SLO compliance.
func (p *Proteus) ObserveTaskDemand(task pipeline.TaskID, qps float64) {
	const alpha = 0.35
	if p.taskDemand[task] == 0 {
		p.taskDemand[task] = qps
		return
	}
	p.taskDemand[task] = alpha*qps + (1-alpha)*p.taskDemand[task]
}

// Allocate runs one independent accuracy-scaling optimization per task and
// stitches the results into a whole-cluster plan. All servers remain active:
// Proteus performs no hardware scaling.
func (p *Proteus) Allocate(demand float64) (*core.Plan, error) {
	g := p.Meta.Graph()
	merged := &core.Plan{
		Mode:           core.AccuracyScaling,
		Demand:         demand,
		ServedFraction: 1,
	}
	loads := rootLoads(g)
	accW, accN := 0.0, 0.0
	for i := range g.Tasks {
		taskDemand := p.taskDemand[i]
		if taskDemand == 0 {
			// No per-task telemetry yet: fall back to the root demand
			// (still pipeline-agnostic — no multiplicative factors).
			taskDemand = demand
		}
		sub, err := p.allocs[i].Allocate(taskDemand)
		if err != nil {
			return nil, err
		}
		// Proteus keeps its entire partition active regardless of need: if
		// the sub-plan used fewer servers than the task's share, pad with
		// extra replicas of its most accurate deployed configuration.
		used := 0
		bestIdx := -1
		for ai, a := range sub.Assignments {
			used += a.Replicas
			if bestIdx < 0 || a.Accuracy > sub.Assignments[bestIdx].Accuracy {
				bestIdx = ai
			}
		}
		if bestIdx >= 0 && used < p.taskShare[i] {
			sub.Assignments[bestIdx].Replicas += p.taskShare[i] - used
		}
		for _, a := range sub.Assignments {
			merged.Assignments = append(merged.Assignments, core.Assignment{
				Task: pipeline.TaskID(i), Variant: a.Variant, MaxBatch: a.MaxBatch,
				Replicas: a.Replicas, QPS: a.QPS, LatencySec: a.LatencySec,
				Accuracy: a.Accuracy, BudgetSec: a.BudgetSec,
			})
		}
		accW += sub.ExpectedAccuracy * loads[i]
		accN += loads[i]
		if sub.ServedFraction < merged.ServedFraction {
			merged.ServedFraction = sub.ServedFraction
			if sub.ServedFraction < 1 {
				merged.Mode = core.Saturated
			}
		}
	}
	merged.ServersUsed = p.Opts.Servers // no hardware scaling: all active
	if accN > 0 {
		merged.ExpectedAccuracy = accW / accN
	}
	merged.SolveStats = core.SolveStats{Step: 2}
	return merged, nil
}

// TaskShares exposes the static partition, mostly for tests.
func (p *Proteus) TaskShares() []int { return append([]int(nil), p.taskShare...) }
