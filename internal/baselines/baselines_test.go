package baselines

import (
	"testing"
	"time"

	"loki/internal/core"
	"loki/internal/profiles"
)

func aopts() core.AllocatorOptions {
	return core.AllocatorOptions{
		Servers: 20, NetLatencySec: 0.002, KeepWarm: true,
		Headroom: 0.30, SolveTimeLimit: 2 * time.Second,
	}
}

func trafficMeta() *core.MetadataStore {
	g := profiles.TrafficTree()
	prof := (&profiles.Profiler{}).ProfileGraph(g, profiles.Batches)
	return core.NewMetadataStore(g, prof, 0.250, profiles.Batches)
}

func TestInferLineUsesOnlyMostAccurateVariants(t *testing.T) {
	meta := trafficMeta()
	b, err := NewInferLine(meta, aopts())
	if err != nil {
		t.Fatal(err)
	}
	g := meta.Graph()
	for _, d := range []float64{100, 400, 900} {
		plan, err := b.Allocate(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range plan.Assignments {
			if a.Variant != g.Tasks[a.Task].MostAccurate() {
				t.Fatalf("demand %g: InferLine hosted variant %d of task %d", d, a.Variant, a.Task)
			}
		}
		if plan.ExpectedAccuracy < 1-1e-9 {
			t.Fatalf("demand %g: InferLine accuracy %g, must stay 1.0", d, plan.ExpectedAccuracy)
		}
	}
}

func TestInferLineScalesHardwareThenSaturates(t *testing.T) {
	meta := trafficMeta()
	b, err := NewInferLine(meta, aopts())
	if err != nil {
		t.Fatal(err)
	}
	low, err := b.Allocate(150)
	if err != nil {
		t.Fatal(err)
	}
	if low.Mode != core.HardwareScaling || low.ServersUsed >= 20 {
		t.Fatalf("low demand: mode=%v servers=%d", low.Mode, low.ServersUsed)
	}
	high, err := b.Allocate(1200)
	if err != nil {
		t.Fatal(err)
	}
	if high.Mode != core.Saturated {
		t.Fatalf("high demand: mode=%v, want saturated (no accuracy scaling available)", high.Mode)
	}
	if high.ServedFraction >= 1 {
		t.Fatalf("high demand: served=%g, want <1", high.ServedFraction)
	}
}

func TestProteusPartitionSumsToCluster(t *testing.T) {
	meta := trafficMeta()
	p, err := NewProteus(meta, aopts())
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, s := range p.TaskShares() {
		if s < 1 {
			t.Fatalf("task share %d < 1", s)
		}
		sum += s
	}
	if sum != 20 {
		t.Fatalf("shares sum to %d, want 20", sum)
	}
}

func TestProteusAlwaysUsesWholeCluster(t *testing.T) {
	meta := trafficMeta()
	p, err := NewProteus(meta, aopts())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []float64{50, 400, 900} {
		plan, err := p.Allocate(d)
		if err != nil {
			t.Fatal(err)
		}
		if plan.ServersUsed != 20 {
			t.Fatalf("demand %g: Proteus reports %d active servers, want all 20", d, plan.ServersUsed)
		}
		replicas := 0
		for _, a := range plan.Assignments {
			replicas += a.Replicas
		}
		if replicas != 20 {
			t.Fatalf("demand %g: %d replicas deployed, want the full partition", d, replicas)
		}
	}
}

func TestProteusRespectsPartitionBoundaries(t *testing.T) {
	meta := trafficMeta()
	p, err := NewProteus(meta, aopts())
	if err != nil {
		t.Fatal(err)
	}
	shares := p.TaskShares()
	plan, err := p.Allocate(600)
	if err != nil {
		t.Fatal(err)
	}
	perTask := map[int]int{}
	for _, a := range plan.Assignments {
		perTask[int(a.Task)] += a.Replicas
	}
	for task, n := range perTask {
		if n != shares[task] {
			t.Fatalf("task %d deployed %d replicas, share is %d", task, n, shares[task])
		}
	}
}

func TestProteusReactsToObservedTaskDemand(t *testing.T) {
	meta := trafficMeta()
	p, err := NewProteus(meta, aopts())
	if err != nil {
		t.Fatal(err)
	}
	// Without telemetry both allocations use the root demand fallback.
	before, err := p.Allocate(300)
	if err != nil {
		t.Fatal(err)
	}
	// Report heavy downstream demand on task 1: Proteus (scaling tasks
	// independently) must degrade task 1's accuracy to absorb it.
	for i := 0; i < 10; i++ {
		p.ObserveTaskDemand(1, 1800)
	}
	after, err := p.Allocate(300)
	if err != nil {
		t.Fatal(err)
	}
	if after.ExpectedAccuracy >= before.ExpectedAccuracy {
		t.Fatalf("accuracy %.4f → %.4f; observed overload on task 1 should reduce it",
			before.ExpectedAccuracy, after.ExpectedAccuracy)
	}
}

func TestProteusSocialMediaPartition(t *testing.T) {
	g := profiles.SocialMedia()
	prof := (&profiles.Profiler{}).ProfileGraph(g, profiles.Batches)
	meta := core.NewMetadataStore(g, prof, 0.250, profiles.Batches)
	p, err := NewProteus(meta, aopts())
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, s := range p.TaskShares() {
		sum += s
	}
	if sum != 20 {
		t.Fatalf("social shares sum to %d", sum)
	}
}
