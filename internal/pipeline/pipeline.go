// Package pipeline models ML inference pipelines as directed rooted trees,
// following §2.1 of the Loki paper: each vertex is a task served by a family
// of model variants, each edge carries the flow of intermediate queries from
// a task to one of its children, and every root-to-sink path has its own
// end-to-end accuracy.
package pipeline

import (
	"errors"
	"fmt"
	"math"
)

// TaskID identifies a task within a Graph (its index in Graph.Tasks).
type TaskID int

// Variant is one model variant of a task: a concrete network (e.g.
// YOLOv5n) with a profiled accuracy, a batch-latency profile, and a
// multiplicative factor (the mean number of intermediate queries it emits
// downstream per input query, r(i,k) in the paper).
type Variant struct {
	Name string

	// Accuracy is the profiled accuracy normalized by the most accurate
	// variant of the same family, as the paper does in §6.1. In (0, 1].
	Accuracy float64

	// RawAccuracy is the unnormalized profiled metric (e.g. top-1 or mAP),
	// kept for reporting.
	RawAccuracy float64

	// Alpha and Beta define the batch latency profile
	// latency(b) = Alpha + Beta·b seconds, the standard linear model for
	// GPU batch inference. Throughput at batch b is b/latency(b).
	Alpha, Beta float64

	// MultFactor is the mean number of downstream queries emitted per
	// input query (before edge branch ratios are applied).
	MultFactor float64
}

// Latency returns the batch processing latency in seconds for batch size b.
func (v *Variant) Latency(b int) float64 {
	return v.Alpha + v.Beta*float64(b)
}

// Throughput returns the steady-state queries/second one replica sustains at
// batch size b.
func (v *Variant) Throughput(b int) float64 {
	l := v.Latency(b)
	if l <= 0 {
		return math.Inf(1)
	}
	return float64(b) / l
}

// Child is a directed edge from a task to one of its children.
type Child struct {
	Task TaskID
	// BranchRatio is the fraction of the parent's output queries that flow
	// down this edge (e.g. the fraction of detected objects that are cars).
	// The ratios of a task's children need not sum to 1 if some outputs are
	// discarded, but must each lie in (0, 1].
	BranchRatio float64
}

// Task is one stage of the pipeline.
type Task struct {
	ID       TaskID
	Name     string
	Variants []Variant
	Children []Child

	// Output marks a task whose result is also a pipeline output even
	// though it has children (§2.1 draws sinks as separate vertices, so an
	// interior task may feed both a sink and downstream tasks — the
	// social-media pipeline's classification task does). Leaves are
	// outputs regardless of this flag.
	Output bool
}

// IsSink reports whether the task terminates a root-to-sink path.
func (t *Task) IsSink() bool { return t.Output || len(t.Children) == 0 }

// MostAccurate returns the index of the task's most accurate variant.
func (t *Task) MostAccurate() int {
	best := 0
	for k := 1; k < len(t.Variants); k++ {
		if t.Variants[k].Accuracy > t.Variants[best].Accuracy {
			best = k
		}
	}
	return best
}

// Graph is an inference pipeline: a directed rooted tree of tasks. Task 0 is
// the root (the source feeds it); leaves are sinks.
type Graph struct {
	Name  string
	Tasks []Task
}

// Errors returned by Validate.
var (
	ErrEmpty     = errors.New("pipeline: graph has no tasks")
	ErrNotATree  = errors.New("pipeline: graph is not a rooted tree")
	ErrBadDef    = errors.New("pipeline: malformed definition")
	ErrNoVariant = errors.New("pipeline: task has no variants")
)

// Validate checks that the graph is a well-formed rooted tree with sane
// variant profiles.
func (g *Graph) Validate() error {
	if len(g.Tasks) == 0 {
		return ErrEmpty
	}
	indeg := make([]int, len(g.Tasks))
	for i, t := range g.Tasks {
		if t.ID != TaskID(i) {
			return fmt.Errorf("%w: task %d has ID %d", ErrBadDef, i, t.ID)
		}
		if len(t.Variants) == 0 {
			return fmt.Errorf("%w: task %q", ErrNoVariant, t.Name)
		}
		for _, v := range t.Variants {
			if v.Accuracy <= 0 || v.Accuracy > 1+1e-9 {
				return fmt.Errorf("%w: variant %q accuracy %g outside (0,1]", ErrBadDef, v.Name, v.Accuracy)
			}
			if v.Alpha < 0 || v.Beta <= 0 {
				return fmt.Errorf("%w: variant %q latency profile (α=%g, β=%g)", ErrBadDef, v.Name, v.Alpha, v.Beta)
			}
			if v.MultFactor < 0 {
				return fmt.Errorf("%w: variant %q negative multiplicative factor", ErrBadDef, v.Name)
			}
		}
		for _, c := range t.Children {
			if c.Task <= 0 || int(c.Task) >= len(g.Tasks) {
				return fmt.Errorf("%w: task %q has child %d", ErrBadDef, t.Name, c.Task)
			}
			if c.BranchRatio <= 0 || c.BranchRatio > 1+1e-9 {
				return fmt.Errorf("%w: edge %q→%d branch ratio %g outside (0,1]", ErrBadDef, t.Name, c.Task, c.BranchRatio)
			}
			indeg[c.Task]++
		}
	}
	if indeg[0] != 0 {
		return fmt.Errorf("%w: root has incoming edges", ErrNotATree)
	}
	for i := 1; i < len(g.Tasks); i++ {
		if indeg[i] != 1 {
			return fmt.Errorf("%w: task %q has in-degree %d", ErrNotATree, g.Tasks[i].Name, indeg[i])
		}
	}
	// Reachability from the root guarantees connectedness (with the
	// in-degree conditions above, it also excludes cycles).
	seen := make([]bool, len(g.Tasks))
	var walk func(TaskID) bool
	walk = func(id TaskID) bool {
		if seen[id] {
			return false
		}
		seen[id] = true
		for _, c := range g.Tasks[id].Children {
			if !walk(c.Task) {
				return false
			}
		}
		return true
	}
	if !walk(0) {
		return fmt.Errorf("%w: cycle reachable from root", ErrNotATree)
	}
	for i, s := range seen {
		if !s {
			return fmt.Errorf("%w: task %q unreachable from root", ErrNotATree, g.Tasks[i].Name)
		}
	}
	return nil
}

// Sinks returns the tasks that terminate root-to-sink paths: all leaves plus
// interior tasks marked Output.
func (g *Graph) Sinks() []TaskID {
	var out []TaskID
	for i := range g.Tasks {
		if g.Tasks[i].IsSink() {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// TopoOrder returns the tasks in topological (parent-before-child) order.
// For a rooted tree this is a preorder walk from the root.
func (g *Graph) TopoOrder() []TaskID {
	out := make([]TaskID, 0, len(g.Tasks))
	var walk func(TaskID)
	walk = func(id TaskID) {
		out = append(out, id)
		for _, c := range g.Tasks[id].Children {
			walk(c.Task)
		}
	}
	walk(0)
	return out
}

// Parent returns the parent of task id and the edge's branch ratio, or
// (-1, 0) for the root.
func (g *Graph) Parent(id TaskID) (TaskID, float64) {
	for i, t := range g.Tasks {
		for _, c := range t.Children {
			if c.Task == id {
				return TaskID(i), c.BranchRatio
			}
		}
	}
	return -1, 0
}

// TaskPath is a root-to-sink sequence of tasks together with the branch
// ratio of each hop (BranchRatios[i] is the ratio on the edge entering
// Tasks[i]; it is 1 for the root).
type TaskPath struct {
	Tasks        []TaskID
	BranchRatios []float64
}

// TaskPaths enumerates every root-to-sink path of the tree. A path ends at
// every leaf and at every interior task marked Output.
func (g *Graph) TaskPaths() []TaskPath {
	var out []TaskPath
	var tasks []TaskID
	var ratios []float64
	var walk func(id TaskID, ratio float64)
	walk = func(id TaskID, ratio float64) {
		tasks = append(tasks, id)
		ratios = append(ratios, ratio)
		if g.Tasks[id].IsSink() {
			out = append(out, TaskPath{
				Tasks:        append([]TaskID(nil), tasks...),
				BranchRatios: append([]float64(nil), ratios...),
			})
		}
		for _, c := range g.Tasks[id].Children {
			walk(c.Task, c.BranchRatio)
		}
		tasks = tasks[:len(tasks)-1]
		ratios = ratios[:len(ratios)-1]
	}
	walk(0, 1)
	return out
}

// VariantPath is a root-to-sink path through the augmented graph (§4.1):
// a task path with a concrete variant chosen at every hop.
type VariantPath struct {
	TaskPath
	Variants []int // Variants[i] indexes Tasks[i]'s variant list
}

// Accuracy returns the end-to-end accuracy Â(p) of the path: the product of
// the normalized accuracies of its variants. It is monotone in every
// single-model accuracy, the property §5.1 relies on.
func (g *Graph) Accuracy(p VariantPath) float64 {
	acc := 1.0
	for i, t := range p.Tasks {
		acc *= g.Tasks[t].Variants[p.Variants[i]].Accuracy
	}
	return acc
}

// Multiplier returns m(p, hop): the expected number of requests reaching
// hop h of the path per request entering the pipeline — the product of the
// multiplicative factors of the variants before h and the branch ratios up
// to and including h (Eq. 1 of the paper).
func (g *Graph) Multiplier(p VariantPath, hop int) float64 {
	m := 1.0
	for i := 0; i <= hop; i++ {
		m *= p.BranchRatios[i]
		if i < hop {
			v := g.Tasks[p.Tasks[i]].Variants[p.Variants[i]]
			m *= v.MultFactor
		}
	}
	return m
}

// VariantPaths enumerates every root-to-sink path of the augmented graph:
// the Cartesian product of variant choices along every task path.
func (g *Graph) VariantPaths() []VariantPath {
	var out []VariantPath
	for _, tp := range g.TaskPaths() {
		choice := make([]int, len(tp.Tasks))
		var rec func(i int)
		rec = func(i int) {
			if i == len(tp.Tasks) {
				out = append(out, VariantPath{
					TaskPath: tp,
					Variants: append([]int(nil), choice...),
				})
				return
			}
			for k := range g.Tasks[tp.Tasks[i]].Variants {
				choice[i] = k
				rec(i + 1)
			}
		}
		rec(0)
	}
	return out
}

// MaxAccuracy returns the end-to-end pipeline accuracy when every task uses
// its most accurate variant, averaged over all root-to-sink paths (the
// paper's definition of pipeline accuracy in §2.1).
func (g *Graph) MaxAccuracy() float64 {
	paths := g.TaskPaths()
	sum := 0.0
	for _, tp := range g.TaskPaths() {
		acc := 1.0
		for _, t := range tp.Tasks {
			task := &g.Tasks[t]
			acc *= task.Variants[task.MostAccurate()].Accuracy
		}
		sum += acc
	}
	return sum / float64(len(paths))
}

// VariantRef names one variant of one task.
type VariantRef struct {
	Task    TaskID
	Variant int
}

// String renders the reference using graph naming.
func (r VariantRef) String() string { return fmt.Sprintf("t%d/v%d", r.Task, r.Variant) }
