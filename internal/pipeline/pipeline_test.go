package pipeline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// chain builds a linear pipeline with the given variant counts per task.
func chain(variantCounts ...int) *Graph {
	g := &Graph{Name: "chain"}
	for i, n := range variantCounts {
		t := Task{ID: TaskID(i), Name: "t"}
		for k := 0; k < n; k++ {
			t.Variants = append(t.Variants, Variant{
				Name: "v", Accuracy: 0.5 + 0.5*float64(k+1)/float64(n),
				Alpha: 0.001, Beta: 0.001, MultFactor: 1,
			})
		}
		if i+1 < len(variantCounts) {
			t.Children = []Child{{Task: TaskID(i + 1), BranchRatio: 1}}
		}
		g.Tasks = append(g.Tasks, t)
	}
	return g
}

func twoSinkTree() *Graph {
	g := &Graph{
		Name: "tree",
		Tasks: []Task{
			{ID: 0, Name: "det", Variants: []Variant{
				{Name: "d0", Accuracy: 0.8, Alpha: 0.01, Beta: 0.01, MultFactor: 2.0},
				{Name: "d1", Accuracy: 1.0, Alpha: 0.01, Beta: 0.01, MultFactor: 2.5},
			}, Children: []Child{{Task: 1, BranchRatio: 0.7}, {Task: 2, BranchRatio: 0.3}}},
			{ID: 1, Name: "car", Variants: []Variant{
				{Name: "c0", Accuracy: 0.9, Alpha: 0.001, Beta: 0.002, MultFactor: 1},
				{Name: "c1", Accuracy: 1.0, Alpha: 0.002, Beta: 0.003, MultFactor: 1},
			}},
			{ID: 2, Name: "face", Variants: []Variant{
				{Name: "f0", Accuracy: 1.0, Alpha: 0.001, Beta: 0.002, MultFactor: 1},
			}},
		},
	}
	return g
}

func TestValidateAcceptsTree(t *testing.T) {
	if err := twoSinkTree().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsEmptyGraph(t *testing.T) {
	g := &Graph{}
	if err := g.Validate(); err == nil {
		t.Fatal("want error on empty graph")
	}
}

func TestValidateRejectsTwoParents(t *testing.T) {
	g := twoSinkTree()
	// Give task 2 a second parent.
	g.Tasks[1].Children = append(g.Tasks[1].Children, Child{Task: 2, BranchRatio: 1})
	if err := g.Validate(); err == nil {
		t.Fatal("want error when a task has two parents")
	}
}

func TestValidateRejectsRootIncomingEdge(t *testing.T) {
	g := twoSinkTree()
	g.Tasks[2].Children = []Child{{Task: 0, BranchRatio: 1}}
	if err := g.Validate(); err == nil {
		t.Fatal("want error when root has an incoming edge")
	}
}

func TestValidateRejectsBadAccuracy(t *testing.T) {
	g := chain(2)
	g.Tasks[0].Variants[0].Accuracy = 1.5
	if err := g.Validate(); err == nil {
		t.Fatal("want error on accuracy > 1")
	}
}

func TestValidateRejectsZeroBeta(t *testing.T) {
	g := chain(2)
	g.Tasks[0].Variants[0].Beta = 0
	if err := g.Validate(); err == nil {
		t.Fatal("want error on zero beta")
	}
}

func TestValidateRejectsBadBranchRatio(t *testing.T) {
	g := twoSinkTree()
	g.Tasks[0].Children[0].BranchRatio = 0
	if err := g.Validate(); err == nil {
		t.Fatal("want error on zero branch ratio")
	}
}

func TestVariantThroughputMonotoneInBatch(t *testing.T) {
	v := Variant{Alpha: 0.01, Beta: 0.002}
	prev := 0.0
	for _, b := range []int{1, 2, 4, 8, 16, 32} {
		q := v.Throughput(b)
		if q <= prev {
			t.Fatalf("throughput not increasing at batch %d: %g <= %g", b, q, prev)
		}
		prev = q
	}
}

func TestSinksAndTopoOrder(t *testing.T) {
	g := twoSinkTree()
	sinks := g.Sinks()
	if len(sinks) != 2 || sinks[0] != 1 || sinks[1] != 2 {
		t.Fatalf("sinks = %v, want [1 2]", sinks)
	}
	topo := g.TopoOrder()
	if len(topo) != 3 || topo[0] != 0 {
		t.Fatalf("topo = %v", topo)
	}
	pos := map[TaskID]int{}
	for i, id := range topo {
		pos[id] = i
	}
	for _, task := range g.Tasks {
		for _, c := range task.Children {
			if pos[task.ID] >= pos[c.Task] {
				t.Fatalf("topo order violates edge %d→%d", task.ID, c.Task)
			}
		}
	}
}

func TestParent(t *testing.T) {
	g := twoSinkTree()
	p, ratio := g.Parent(2)
	if p != 0 || ratio != 0.3 {
		t.Fatalf("Parent(2) = %d, %g; want 0, 0.3", p, ratio)
	}
	if p, _ := g.Parent(0); p != -1 {
		t.Fatalf("root parent = %d, want -1", p)
	}
}

func TestTaskPathsOfTree(t *testing.T) {
	g := twoSinkTree()
	paths := g.TaskPaths()
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	if paths[0].Tasks[1] != 1 || paths[1].Tasks[1] != 2 {
		t.Fatalf("unexpected paths %+v", paths)
	}
}

func TestTaskPathsWithInteriorOutput(t *testing.T) {
	// classification (output) → captioning, as in the social-media graph.
	g := chain(2, 2)
	g.Tasks[0].Output = true
	paths := g.TaskPaths()
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2 (interior sink + leaf)", len(paths))
	}
	if len(paths[0].Tasks) != 1 || len(paths[1].Tasks) != 2 {
		t.Fatalf("unexpected path lengths %+v", paths)
	}
}

func TestVariantPathCount(t *testing.T) {
	g := twoSinkTree()
	// det(2) × car(2) + det(2) × face(1) = 6 paths.
	if n := len(g.VariantPaths()); n != 6 {
		t.Fatalf("got %d variant paths, want 6", n)
	}
}

func TestAccuracyIsProductAlongPath(t *testing.T) {
	g := twoSinkTree()
	vp := VariantPath{
		TaskPath: TaskPath{Tasks: []TaskID{0, 1}, BranchRatios: []float64{1, 0.7}},
		Variants: []int{0, 0},
	}
	if got, want := g.Accuracy(vp), 0.8*0.9; math.Abs(got-want) > 1e-12 {
		t.Fatalf("accuracy = %g, want %g", got, want)
	}
}

func TestMultiplierAppliesFactorsAndRatios(t *testing.T) {
	g := twoSinkTree()
	vp := VariantPath{
		TaskPath: TaskPath{Tasks: []TaskID{0, 1}, BranchRatios: []float64{1, 0.7}},
		Variants: []int{1, 0}, // det variant d1 has mult 2.5
	}
	// Hop 0 (root): branch ratio 1 → m = 1.
	if got := g.Multiplier(vp, 0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("m(root) = %g, want 1", got)
	}
	// Hop 1: 2.5 objects/frame × 0.7 cars → 1.75 requests per query.
	if got, want := g.Multiplier(vp, 1), 2.5*0.7; math.Abs(got-want) > 1e-12 {
		t.Fatalf("m(hop1) = %g, want %g", got, want)
	}
}

func TestMostAccurate(t *testing.T) {
	g := twoSinkTree()
	if got := g.Tasks[0].MostAccurate(); got != 1 {
		t.Fatalf("MostAccurate = %d, want 1", got)
	}
}

func TestMaxAccuracyAveragesPaths(t *testing.T) {
	g := twoSinkTree()
	// Best variants: det d1 (1.0), car c1 (1.0), face f0 (1.0) →
	// both paths have accuracy 1.0, average 1.0.
	if got := g.MaxAccuracy(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("MaxAccuracy = %g, want 1", got)
	}
	// Lower the detector's best accuracy; both paths shrink.
	g.Tasks[0].Variants[1].Accuracy = 0.9
	if got := g.MaxAccuracy(); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("MaxAccuracy = %g, want 0.9", got)
	}
}

// randomTree generates a random rooted tree for property tests.
func randomTree(rng *rand.Rand, n int) *Graph {
	g := &Graph{Name: "rand"}
	for i := 0; i < n; i++ {
		t := Task{ID: TaskID(i), Name: "t"}
		nv := 1 + rng.Intn(3)
		for k := 0; k < nv; k++ {
			t.Variants = append(t.Variants, Variant{
				Name:       "v",
				Accuracy:   0.5 + 0.5*rng.Float64(),
				Alpha:      0.001 + 0.01*rng.Float64(),
				Beta:       0.001 + 0.01*rng.Float64(),
				MultFactor: 0.5 + 2*rng.Float64(),
			})
		}
		g.Tasks = append(g.Tasks, t)
	}
	for i := 1; i < n; i++ {
		parent := rng.Intn(i)
		g.Tasks[parent].Children = append(g.Tasks[parent].Children,
			Child{Task: TaskID(i), BranchRatio: 0.2 + 0.8*rng.Float64()})
	}
	return g
}

func TestRandomTreesValidateAndEnumerate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		g := randomTree(rng, n)
		if err := g.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Leaf count equals task-path count (no interior outputs).
		leaves := 0
		for i := range g.Tasks {
			if len(g.Tasks[i].Children) == 0 {
				leaves++
			}
		}
		paths := g.TaskPaths()
		if len(paths) != leaves {
			t.Logf("seed %d: %d paths for %d leaves", seed, len(paths), leaves)
			return false
		}
		// Every path starts at the root, ends at a sink, follows edges.
		for _, p := range paths {
			if p.Tasks[0] != 0 {
				return false
			}
			if !g.Tasks[p.Tasks[len(p.Tasks)-1]].IsSink() {
				return false
			}
			for i := 0; i+1 < len(p.Tasks); i++ {
				found := false
				for _, c := range g.Tasks[p.Tasks[i]].Children {
					if c.Task == p.Tasks[i+1] {
						found = true
						if math.Abs(c.BranchRatio-p.BranchRatios[i+1]) > 1e-12 {
							return false
						}
					}
				}
				if !found {
					return false
				}
			}
		}
		// Variant-path count is the sum over task paths of the product of
		// variant counts.
		want := 0
		for _, p := range paths {
			prod := 1
			for _, id := range p.Tasks {
				prod *= len(g.Tasks[id].Variants)
			}
			want += prod
		}
		if got := len(g.VariantPaths()); got != want {
			t.Logf("seed %d: %d variant paths, want %d", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestAccuracyMonotoneInVariantAccuracy verifies the monotonicity property
// §5.1's optimality argument relies on: raising any single variant's
// accuracy cannot lower any path accuracy.
func TestAccuracyMonotoneInVariantAccuracy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomTree(rng, 1+rng.Intn(5))
		paths := g.VariantPaths()
		if len(paths) == 0 {
			return true
		}
		before := make([]float64, len(paths))
		for i, p := range paths {
			before[i] = g.Accuracy(p)
		}
		// Raise one random variant's accuracy.
		ti := rng.Intn(len(g.Tasks))
		vi := rng.Intn(len(g.Tasks[ti].Variants))
		va := &g.Tasks[ti].Variants[vi]
		va.Accuracy = math.Min(1, va.Accuracy*(1+0.3*rng.Float64()))
		for i, p := range paths {
			if g.Accuracy(p) < before[i]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
