// Package policy implements the early-dropping mechanisms of §5.2: requests
// that have fallen behind their per-task latency budgets can be dropped (to
// free resources for requests that can still meet their SLOs) or, with
// opportunistic rerouting, redirected to a faster downstream worker that has
// leftover capacity.
//
// The four policies here are exactly the four arms of the Figure 7 ablation.
package policy

import (
	"loki/internal/core"
	"loki/internal/pipeline"
)

// Context is everything a policy may consult when a request finishes
// executing at a worker.
type Context struct {
	Now      float64
	Deadline float64 // absolute SLO deadline of the root request

	// EnteredTask is when the request was enqueued at the just-finished
	// worker; Budget is that worker's per-task latency budget (twice its
	// batch latency, §4.2).
	EnteredTask float64
	Budget      float64

	// HasNext is false when the completing task was this path's sink.
	HasNext    bool
	NextTask   pipeline.TaskID
	NextIsSink bool
	// NextExec is the profiled execution time of the worker the routing
	// table picked for the next task.
	NextExec float64
	// NetLatency is one worker-to-worker hop.
	NetLatency float64
	// MinTail is the minimal time (fastest configurations, empty queues)
	// still needed to finish this branch of the pipeline, network hops
	// included. now + MinTail > deadline means the request cannot make its
	// SLO on any path.
	MinTail float64

	// FindBackup searches the Load Balancer's backup table for a worker of
	// the given task with leftover capacity and profiled execution time at
	// most maxExec, preferring higher accuracy (§5.2). It returns false if
	// none qualifies.
	FindBackup func(task pipeline.TaskID, maxExec float64) (core.WorkerID, bool)
}

// Decision is a policy verdict.
type Decision struct {
	Drop bool
	// Reroute, when true, redirects the request to Alternate instead of the
	// routing-table worker.
	Reroute   bool
	Alternate core.WorkerID
}

var forward = Decision{}

// Policy decides the fate of a request after each task execution.
type Policy interface {
	Name() string
	OnTaskComplete(ctx *Context) Decision
}

// NoDrop never drops: requests follow the original routing plan to the end
// (the "No early dropping" arm).
type NoDrop struct{}

// Name identifies the policy.
func (NoDrop) Name() string { return "no-early-dropping" }

// OnTaskComplete always forwards.
func (NoDrop) OnTaskComplete(*Context) Decision { return forward }

// LastTask drops only at the boundary to a path's final task: if the
// remaining time cannot cover the final execution, the request is abandoned
// (the "Last-task dropping" arm).
type LastTask struct{}

// Name identifies the policy.
func (LastTask) Name() string { return "last-task-dropping" }

// OnTaskComplete drops when the next task is the sink and the leftover
// budget is smaller than its expected processing time.
func (LastTask) OnTaskComplete(ctx *Context) Decision {
	if !ctx.HasNext || !ctx.NextIsSink {
		return forward
	}
	leftover := ctx.Deadline - ctx.Now - ctx.NetLatency
	if leftover < ctx.NextExec {
		return Decision{Drop: true}
	}
	return forward
}

// PerTask drops a request as soon as it exceeds the latency budget of any
// task along its path (the "Per-task early dropping" arm). It can be overly
// aggressive: a request over budget early may still catch up later.
type PerTask struct{}

// Name identifies the policy.
func (PerTask) Name() string { return "per-task-dropping" }

// OnTaskComplete drops when the time spent at the task (queueing plus
// execution) exceeded the task's budget.
func (PerTask) OnTaskComplete(ctx *Context) Decision {
	if ctx.Now-ctx.EnteredTask > ctx.Budget {
		return Decision{Drop: true}
	}
	return forward
}

// Opportunistic implements early dropping with opportunistic rerouting, the
// full §5.2 mechanism: a request that overran its budget by x is redirected
// to a backup worker whose execution time is at most (nextExec − x), making
// up the deficit downstream; only if no such worker exists is it dropped.
type Opportunistic struct{}

// Name identifies the policy.
func (Opportunistic) Name() string { return "opportunistic-rerouting" }

// OnTaskComplete forwards on-budget requests, reroutes recoverable
// stragglers, and drops requests that cannot meet their SLO on any
// remaining path.
func (Opportunistic) OnTaskComplete(ctx *Context) Decision {
	x := (ctx.Now - ctx.EnteredTask) - ctx.Budget
	if x <= 0 {
		return forward
	}
	if !ctx.HasNext {
		// The path is finished; lateness is judged at completion.
		return forward
	}
	if ctx.FindBackup != nil {
		if w, ok := ctx.FindBackup(ctx.NextTask, ctx.NextExec-x); ok {
			return Decision{Reroute: true, Alternate: w}
		}
	}
	// No backup can absorb the deficit. Drop only if the request is
	// genuinely unlikely to meet its SLO — if even the planned route's
	// remaining work fits the deadline, forwarding is still the better
	// bet (dropping it would waste the work already done).
	if ctx.Now+ctx.MinTail <= ctx.Deadline {
		return forward
	}
	return Decision{Drop: true}
}
