package policy

import (
	"testing"

	"loki/internal/core"
	"loki/internal/pipeline"
)

func baseCtx() *Context {
	return &Context{
		Now:         10.0,
		Deadline:    10.25,
		EnteredTask: 9.95,
		Budget:      0.10,
		HasNext:     true,
		NextTask:    1,
		NextIsSink:  true,
		NextExec:    0.06,
		NetLatency:  0.002,
		MinTail:     0.07,
	}
}

func TestNoDropNeverDrops(t *testing.T) {
	ctx := baseCtx()
	ctx.Now = 99 // hopelessly late
	if d := (NoDrop{}).OnTaskComplete(ctx); d.Drop || d.Reroute {
		t.Fatalf("NoDrop returned %+v", d)
	}
}

func TestPerTaskDropsOnBudgetOverrun(t *testing.T) {
	ctx := baseCtx()
	ctx.EnteredTask = ctx.Now - ctx.Budget - 0.01 // over budget
	if d := (PerTask{}).OnTaskComplete(ctx); !d.Drop {
		t.Fatal("PerTask should drop an over-budget request")
	}
	ctx.EnteredTask = ctx.Now - ctx.Budget + 0.01 // within budget
	if d := (PerTask{}).OnTaskComplete(ctx); d.Drop {
		t.Fatal("PerTask dropped a within-budget request")
	}
}

func TestLastTaskOnlyActsAtFinalHop(t *testing.T) {
	ctx := baseCtx()
	ctx.NextIsSink = false
	ctx.Deadline = ctx.Now + 0.01 // cannot possibly finish
	if d := (LastTask{}).OnTaskComplete(ctx); d.Drop {
		t.Fatal("LastTask dropped before the final hop")
	}
	ctx.NextIsSink = true
	if d := (LastTask{}).OnTaskComplete(ctx); !d.Drop {
		t.Fatal("LastTask should drop when leftover budget < next execution time")
	}
	ctx.Deadline = ctx.Now + 1.0
	if d := (LastTask{}).OnTaskComplete(ctx); d.Drop {
		t.Fatal("LastTask dropped a request with ample slack")
	}
}

func TestOpportunisticForwardsOnBudget(t *testing.T) {
	ctx := baseCtx() // within budget (0.05 spent of 0.10)
	if d := (Opportunistic{}).OnTaskComplete(ctx); d.Drop || d.Reroute {
		t.Fatalf("got %+v, want plain forward", d)
	}
}

func TestOpportunisticReroutesToFasterBackup(t *testing.T) {
	ctx := baseCtx()
	ctx.EnteredTask = ctx.Now - 0.13 // 30 ms over the 100 ms budget
	wantMax := ctx.NextExec - 0.03
	called := false
	ctx.FindBackup = func(task pipeline.TaskID, maxExec float64) (core.WorkerID, bool) {
		called = true
		if task != ctx.NextTask {
			t.Fatalf("FindBackup task = %d, want %d", task, ctx.NextTask)
		}
		if maxExec > wantMax+1e-9 || maxExec < wantMax-1e-9 {
			t.Fatalf("maxExec = %g, want %g (nextExec − deficit)", maxExec, wantMax)
		}
		return 7, true
	}
	d := (Opportunistic{}).OnTaskComplete(ctx)
	if !called {
		t.Fatal("FindBackup not consulted")
	}
	if !d.Reroute || d.Alternate != 7 || d.Drop {
		t.Fatalf("got %+v, want reroute to worker 7", d)
	}
}

func TestOpportunisticForwardsWhenDeadlineStillReachable(t *testing.T) {
	ctx := baseCtx()
	ctx.EnteredTask = ctx.Now - 0.2 // way over budget
	ctx.FindBackup = func(pipeline.TaskID, float64) (core.WorkerID, bool) { return 0, false }
	ctx.MinTail = 0.07
	ctx.Deadline = ctx.Now + 0.10 // 70 ms tail fits in 100 ms
	if d := (Opportunistic{}).OnTaskComplete(ctx); d.Drop {
		t.Fatal("dropped a request that can still meet its SLO")
	}
}

func TestOpportunisticDropsHopelessRequest(t *testing.T) {
	ctx := baseCtx()
	ctx.EnteredTask = ctx.Now - 0.2
	ctx.FindBackup = func(pipeline.TaskID, float64) (core.WorkerID, bool) { return 0, false }
	ctx.MinTail = 0.07
	ctx.Deadline = ctx.Now + 0.05 // cannot finish even on the fastest path
	if d := (Opportunistic{}).OnTaskComplete(ctx); !d.Drop {
		t.Fatal("should drop a request that cannot meet its SLO")
	}
}

func TestOpportunisticAtSinkForwards(t *testing.T) {
	ctx := baseCtx()
	ctx.HasNext = false
	ctx.EnteredTask = ctx.Now - 1.0
	if d := (Opportunistic{}).OnTaskComplete(ctx); d.Drop {
		t.Fatal("a finished path must not be dropped retroactively")
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]Policy{
		"no-early-dropping":       NoDrop{},
		"last-task-dropping":      LastTask{},
		"per-task-dropping":       PerTask{},
		"opportunistic-rerouting": Opportunistic{},
	}
	for want, p := range names {
		if got := p.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}
