package milp

import (
	"math"
	"math/rand"
	"testing"

	"loki/internal/lp"
)

// milpCorpus rebuilds this package's fixed test problems: knapsack,
// fractional rounding, integer-infeasible windows, LP-infeasible rows, mixed
// integer/continuous, and minimization.
func milpCorpus() map[string]*Problem {
	out := map[string]*Problem{}

	p := lp.NewProblem(3)
	p.Maximize = true
	p.Obj = []float64{10, 13, 7}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 3}, {Var: 1, Coef: 4}, {Var: 2, Coef: 2}}, lp.LE, 9)
	for j := 0; j < 3; j++ {
		p.AddConstraint([]lp.Term{{Var: j, Coef: 1}}, lp.LE, 1)
	}
	out["knapsack"] = &Problem{LP: p, Integer: allInt(3)}

	p = lp.NewProblem(1)
	p.Maximize = true
	p.Obj = []float64{1}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 2}}, lp.LE, 5)
	out["fractional"] = &Problem{LP: p, Integer: allInt(1)}

	p = lp.NewProblem(1)
	p.Maximize = true
	p.Obj = []float64{1}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}}, lp.GE, 0.4)
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}}, lp.LE, 0.6)
	out["int-infeasible"] = &Problem{LP: p, Integer: allInt(1)}

	p = lp.NewProblem(1)
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}}, lp.GE, 2)
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}}, lp.LE, 1)
	out["lp-infeasible"] = &Problem{LP: p, Integer: allInt(1)}

	p = lp.NewProblem(2)
	p.Maximize = true
	p.Obj = []float64{2, 1}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, lp.LE, 3.5)
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}}, lp.LE, 2.2)
	out["mixed"] = &Problem{LP: p, Integer: []bool{true, false}}

	p = lp.NewProblem(2)
	p.Obj = []float64{3, 2}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, lp.GE, 3.5)
	out["minimize"] = &Problem{LP: p, Integer: allInt(2)}

	return out
}

// solveBothLPCores solves the MILP once with the revised LP path forced on
// and once through the lp.Dense hatch, returning both results.
func solveBothLPCores(t *testing.T, prob *Problem) (revised, dense *Result) {
	t.Helper()
	oldMin := lp.RevisedMinSize
	lp.RevisedMinSize = 0
	r1, err := Solve(prob)
	lp.RevisedMinSize = oldMin
	if err != nil {
		t.Fatalf("revised-core solve: %v", err)
	}
	lp.Dense = true
	r2, err := Solve(prob)
	lp.Dense = false
	if err != nil {
		t.Fatalf("dense-core solve: %v", err)
	}
	return r1, r2
}

// TestBranchAndBoundSparseLPParity pins branch and bound over the revised LP
// core to the dense tableau on the package's fixed corpus: same status, same
// optimal objective.
func TestBranchAndBoundSparseLPParity(t *testing.T) {
	for name, prob := range milpCorpus() {
		rev, den := solveBothLPCores(t, prob)
		if rev.Status != den.Status {
			t.Errorf("%s: status revised=%v dense=%v", name, rev.Status, den.Status)
			continue
		}
		if rev.Status == Optimal && math.Abs(rev.Objective-den.Objective) > 1e-6 {
			t.Errorf("%s: objective revised=%g dense=%g", name, rev.Objective, den.Objective)
		}
	}
}

// TestBranchAndBoundSparseLPParityRandom extends the pin to random small
// integer programs in the same style as the brute-force cross-check.
func TestBranchAndBoundSparseLPParityRandom(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		p := lp.NewProblem(n)
		p.Maximize = rng.Intn(2) == 0
		p.Obj = make([]float64, n)
		for j := range p.Obj {
			p.Obj[j] = float64(rng.Intn(13) - 6)
		}
		for j := 0; j < n; j++ {
			p.AddConstraint([]lp.Term{{Var: j, Coef: 1}}, lp.LE, 3)
		}
		extra := 1 + rng.Intn(3)
		for i := 0; i < extra; i++ {
			var terms []lp.Term
			for j := 0; j < n; j++ {
				if c := rng.Intn(9) - 4; c != 0 {
					terms = append(terms, lp.Term{Var: j, Coef: float64(c)})
				}
			}
			if len(terms) == 0 {
				continue
			}
			p.AddConstraint(terms, lp.Sense(rng.Intn(3)), float64(rng.Intn(17)-4))
		}
		prob := &Problem{LP: p, Integer: allInt(n)}
		rev, den := solveBothLPCores(t, prob)
		if rev.Status != den.Status {
			t.Fatalf("seed %d: status revised=%v dense=%v", seed, rev.Status, den.Status)
		}
		if rev.Status == Optimal && math.Abs(rev.Objective-den.Objective) > 1e-6 {
			t.Fatalf("seed %d: objective revised=%g dense=%g", seed, rev.Objective, den.Objective)
		}
	}
}
