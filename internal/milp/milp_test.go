package milp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"loki/internal/lp"
)

func allInt(n int) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = true
	}
	return b
}

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 9, a,b,c ∈ {0,1}.
	// Best: a=1, b=1, c=1 → weight 9, value 30.
	p := lp.NewProblem(3)
	p.Maximize = true
	p.Obj = []float64{10, 13, 7}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 3}, {Var: 1, Coef: 4}, {Var: 2, Coef: 2}}, lp.LE, 9)
	for j := 0; j < 3; j++ {
		p.AddConstraint([]lp.Term{{Var: j, Coef: 1}}, lp.LE, 1)
	}
	r, err := Solve(&Problem{LP: p, Integer: allInt(3)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || math.Abs(r.Objective-30) > 1e-6 {
		t.Fatalf("got %v obj %g, want optimal 30 (x=%v)", r.Status, r.Objective, r.X)
	}
}

func TestFractionalLPRoundsDown(t *testing.T) {
	// max x s.t. 2x <= 5, x integer → x = 2.
	p := lp.NewProblem(1)
	p.Maximize = true
	p.Obj = []float64{1}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 2}}, lp.LE, 5)
	r, err := Solve(&Problem{LP: p, Integer: allInt(1)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || math.Abs(r.Objective-2) > 1e-6 {
		t.Fatalf("got %v obj %g, want optimal 2", r.Status, r.Objective)
	}
}

func TestIntegerInfeasible(t *testing.T) {
	// 0.4 <= x <= 0.6 has no integer point.
	p := lp.NewProblem(1)
	p.Maximize = true
	p.Obj = []float64{1}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}}, lp.GE, 0.4)
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}}, lp.LE, 0.6)
	r, err := Solve(&Problem{LP: p, Integer: allInt(1)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Infeasible {
		t.Fatalf("got %v, want infeasible", r.Status)
	}
}

func TestLPInfeasible(t *testing.T) {
	p := lp.NewProblem(1)
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}}, lp.GE, 2)
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}}, lp.LE, 1)
	r, err := Solve(&Problem{LP: p, Integer: allInt(1)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Infeasible {
		t.Fatalf("got %v, want infeasible", r.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := lp.NewProblem(1)
	p.Maximize = true
	p.Obj = []float64{1}
	r, err := Solve(&Problem{LP: p, Integer: allInt(1)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Unbounded {
		t.Fatalf("got %v, want unbounded", r.Status)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max 2x + y, x integer, y continuous, x + y <= 3.5, x <= 2.2 →
	// x = 2, y = 1.5, obj 5.5.
	p := lp.NewProblem(2)
	p.Maximize = true
	p.Obj = []float64{2, 1}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, lp.LE, 3.5)
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}}, lp.LE, 2.2)
	r, err := Solve(&Problem{LP: p, Integer: []bool{true, false}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || math.Abs(r.Objective-5.5) > 1e-6 {
		t.Fatalf("got %v obj %g (x=%v), want optimal 5.5", r.Status, r.Objective, r.X)
	}
	if math.Abs(r.X[0]-2) > 1e-9 {
		t.Fatalf("integer variable not integral: %v", r.X)
	}
}

func TestMinimizationDirection(t *testing.T) {
	// min 3x + 2y s.t. x + y >= 3.5, integers → x=0, y=4 costs 8;
	// x=1,y=3 → 9; x=2,y=2 → 10; x=3,y=1→11... best is y=4 → 8.
	// But also x=0,y=4 =8 vs x=1,y=3=9; optimum 8? y only:
	// 2*4=8. And x=0,y=4 feasible (4>=3.5). Want 8.
	p := lp.NewProblem(2)
	p.Obj = []float64{3, 2}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, lp.GE, 3.5)
	r, err := Solve(&Problem{LP: p, Integer: allInt(2)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || math.Abs(r.Objective-8) > 1e-6 {
		t.Fatalf("got %v obj %g (x=%v), want optimal 8", r.Status, r.Objective, r.X)
	}
}

func TestSeedIncumbentIsUsed(t *testing.T) {
	// Seed the optimum; the solver should terminate optimal with it even
	// with a node budget of 1 per branch direction.
	p := lp.NewProblem(1)
	p.Maximize = true
	p.Obj = []float64{1}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 2}}, lp.LE, 5)
	r, err := SolveWithOptions(&Problem{LP: p, Integer: allInt(1)}, Options{Incumbent: []float64{2}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || math.Abs(r.Objective-2) > 1e-6 {
		t.Fatalf("got %v obj %g, want optimal 2", r.Status, r.Objective)
	}
}

func TestInfeasibleSeedIsRejected(t *testing.T) {
	p := lp.NewProblem(1)
	p.Maximize = true
	p.Obj = []float64{1}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 2}}, lp.LE, 5)
	// Seed violates the constraint; solver must ignore it and still find 2.
	r, err := SolveWithOptions(&Problem{LP: p, Integer: allInt(1)}, Options{Incumbent: []float64{7}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || math.Abs(r.Objective-2) > 1e-6 {
		t.Fatalf("got %v obj %g, want optimal 2", r.Status, r.Objective)
	}
}

func TestNodeLimitReturnsFeasibleOrNoSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 14
	p := lp.NewProblem(n)
	p.Maximize = true
	p.Obj = make([]float64, n)
	terms := make([]lp.Term, n)
	for j := 0; j < n; j++ {
		p.Obj[j] = 1 + rng.Float64()
		terms[j] = lp.Term{Var: j, Coef: 1 + 2*rng.Float64()}
		p.AddConstraint([]lp.Term{{Var: j, Coef: 1}}, lp.LE, 1)
	}
	p.AddConstraint(terms, lp.LE, float64(n)/3)
	r, err := SolveWithOptions(&Problem{LP: p, Integer: allInt(n)}, Options{MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status == Optimal {
		t.Skip("solved within 3 nodes; nothing to assert")
	}
	if r.Status != Feasible && r.Status != NoSolution {
		t.Fatalf("got %v, want feasible/no-solution under node limit", r.Status)
	}
	if r.Status == Feasible && r.Gap() < 0 {
		t.Fatalf("negative gap %g", r.Gap())
	}
}

func TestTimeLimitHonored(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 24
	p := lp.NewProblem(n)
	p.Maximize = true
	p.Obj = make([]float64, n)
	terms := make([]lp.Term, n)
	for j := 0; j < n; j++ {
		p.Obj[j] = 1 + rng.Float64()
		terms[j] = lp.Term{Var: j, Coef: 1 + 2*rng.Float64()}
		p.AddConstraint([]lp.Term{{Var: j, Coef: 1}}, lp.LE, 1)
	}
	p.AddConstraint(terms, lp.LE, float64(n)/2.5)
	start := time.Now()
	_, err := SolveWithOptions(&Problem{LP: p, Integer: allInt(n)}, Options{TimeLimit: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("time limit grossly exceeded: %v", elapsed)
	}
}

// bruteForceILP enumerates all integer points in [0,ub]^n.
func bruteForceILP(p *lp.Problem, ub int) (float64, bool) {
	n := p.NumVars
	x := make([]float64, n)
	best := math.Inf(-1)
	if !p.Maximize {
		best = math.Inf(1)
	}
	found := false
	var rec func(j int)
	rec = func(j int) {
		if j == n {
			for _, c := range p.Cons {
				lhs := 0.0
				for _, t := range c.Terms {
					lhs += t.Coef * x[t.Var]
				}
				switch c.Sense {
				case lp.LE:
					if lhs > c.RHS+1e-9 {
						return
					}
				case lp.GE:
					if lhs < c.RHS-1e-9 {
						return
					}
				case lp.EQ:
					if math.Abs(lhs-c.RHS) > 1e-9 {
						return
					}
				}
			}
			obj := 0.0
			for k, c := range p.Obj {
				obj += c * x[k]
			}
			found = true
			if p.Maximize {
				best = math.Max(best, obj)
			} else {
				best = math.Min(best, obj)
			}
			return
		}
		for v := 0; v <= ub; v++ {
			x[j] = float64(v)
			rec(j + 1)
		}
	}
	rec(0)
	return best, found
}

// TestAgainstBruteForceILP cross-checks branch and bound against exhaustive
// enumeration on random small pure-integer programs.
func TestAgainstBruteForceILP(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3) // 2..4 vars
		ub := 3
		p := lp.NewProblem(n)
		p.Maximize = rng.Intn(2) == 0
		p.Obj = make([]float64, n)
		for j := range p.Obj {
			p.Obj[j] = float64(rng.Intn(13) - 6)
		}
		for j := 0; j < n; j++ {
			p.AddConstraint([]lp.Term{{Var: j, Coef: 1}}, lp.LE, float64(ub))
		}
		extra := 1 + rng.Intn(3)
		for i := 0; i < extra; i++ {
			var terms []lp.Term
			for j := 0; j < n; j++ {
				if c := rng.Intn(9) - 4; c != 0 {
					terms = append(terms, lp.Term{Var: j, Coef: float64(c)})
				}
			}
			if len(terms) == 0 {
				continue
			}
			p.AddConstraint(terms, lp.Sense(rng.Intn(3)), float64(rng.Intn(17)-4))
		}
		r, err := Solve(&Problem{LP: p, Integer: allInt(n)})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want, found := bruteForceILP(p, ub)
		switch r.Status {
		case Optimal:
			if !found {
				t.Logf("seed %d: solver optimal %g, brute force found nothing", seed, r.Objective)
				return false
			}
			if math.Abs(r.Objective-want) > 1e-5 {
				t.Logf("seed %d: solver %g vs brute force %g (x=%v)", seed, r.Objective, want, r.X)
				return false
			}
		case Infeasible:
			if found {
				t.Logf("seed %d: solver infeasible, brute force found %g", seed, want)
				return false
			}
		default:
			t.Logf("seed %d: unexpected status %v", seed, r.Status)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGapOfOptimalIsZero(t *testing.T) {
	p := lp.NewProblem(1)
	p.Maximize = true
	p.Obj = []float64{1}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}}, lp.LE, 3)
	r, err := Solve(&Problem{LP: p, Integer: allInt(1)})
	if err != nil {
		t.Fatal(err)
	}
	if g := r.Gap(); g != 0 {
		t.Fatalf("gap = %g, want 0", g)
	}
}

func BenchmarkKnapsack20(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	n := 20
	p := lp.NewProblem(n)
	p.Maximize = true
	p.Obj = make([]float64, n)
	terms := make([]lp.Term, n)
	for j := 0; j < n; j++ {
		p.Obj[j] = 1 + rng.Float64()*9
		terms[j] = lp.Term{Var: j, Coef: 1 + rng.Float64()*9}
		p.AddConstraint([]lp.Term{{Var: j, Coef: 1}}, lp.LE, 1)
	}
	p.AddConstraint(terms, lp.LE, 25)
	prob := &Problem{LP: p, Integer: allInt(n)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(prob); err != nil {
			b.Fatal(err)
		}
	}
}
