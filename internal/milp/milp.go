// Package milp implements an exact mixed-integer linear programming solver
// using LP-relaxation branch and bound on top of internal/lp.
//
// It plays the role Gurobi plays in the Loki paper: the Resource Manager
// formulates hardware-scaling and accuracy-scaling allocations as MILPs and
// needs proven-optimal solutions on problems with a few hundred integer
// variables. The solver is anytime — give it a time limit and it returns the
// best incumbent found with a bound on the remaining gap, mirroring how a
// production controller invokes a commercial solver on a fixed control
// period.
package milp

import (
	"container/heap"
	"errors"
	"math"
	"time"

	"loki/internal/lp"
)

// Problem is a linear program plus integrality marks.
type Problem struct {
	LP      *lp.Problem
	Integer []bool // len LP.NumVars; true marks an integer-constrained variable
}

// Status reports the outcome of a solve.
type Status int8

// Solve outcomes.
const (
	// Optimal means the incumbent is proven optimal.
	Optimal Status = iota
	// Feasible means an integer-feasible incumbent was found but a limit
	// (time or nodes) stopped the proof of optimality.
	Feasible
	// Infeasible means no integer-feasible point exists.
	Infeasible
	// Unbounded means the LP relaxation is unbounded.
	Unbounded
	// NoSolution means a limit was hit before any incumbent was found.
	NoSolution
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case NoSolution:
		return "no-solution"
	default:
		return "unknown"
	}
}

// Options tunes the branch-and-bound search.
type Options struct {
	// TimeLimit stops the search after the given wall-clock duration.
	// Zero means no limit.
	TimeLimit time.Duration
	// MaxNodes bounds the number of branch-and-bound nodes. Zero means
	// 200 000.
	MaxNodes int
	// IntTol is the integrality tolerance. Zero means 1e-6.
	IntTol float64
	// RelGap stops the search once (bestBound-incumbent)/|incumbent| falls
	// below this value. Zero means prove optimality exactly (up to IntTol).
	RelGap float64
	// AbsGap prunes nodes whose bound exceeds the incumbent by at most
	// this amount — the search stops once no node can improve the
	// incumbent by more than AbsGap.
	AbsGap float64
	// ObjIntegral asserts that the objective takes integer values on every
	// integer-feasible point (true for pure counting objectives such as
	// "minimize servers"), which lets the solver round every relaxation
	// bound to the nearest achievable integer and prune far more
	// aggressively.
	ObjIntegral bool
	// Incumbent optionally seeds the search with a known integer-feasible
	// point (e.g. from a greedy heuristic). It is verified before use.
	Incumbent []float64
	// LPOptions is passed through to the LP solver at every node.
	LPOptions lp.Options
}

// Result is the outcome of a solve.
type Result struct {
	Status    Status
	X         []float64 // incumbent (valid for Optimal/Feasible)
	Objective float64   // incumbent objective in the problem's direction
	BestBound float64   // proven bound on the optimum
	Nodes     int       // branch-and-bound nodes explored
	LPIters   int       // total simplex pivots across all nodes
}

// Gap returns the relative optimality gap of the result, 0 for a proven
// optimum and +Inf when no incumbent exists.
func (r *Result) Gap() float64 {
	if r.Status == Optimal {
		return 0
	}
	if r.X == nil {
		return math.Inf(1)
	}
	denom := math.Abs(r.Objective)
	if denom < 1e-12 {
		denom = 1e-12
	}
	return math.Abs(r.BestBound-r.Objective) / denom
}

// ErrBadProblem reports a malformed problem.
var ErrBadProblem = errors.New("milp: malformed problem")

// node is one branch-and-bound subproblem, defined by a chain of variable
// bound overrides hanging off the root relaxation.
type node struct {
	parent *node
	branch int     // variable the parent branched on (-1 at root)
	lo, hi float64 // bound override for the branch variable
	depth  int
	bound  float64 // LP relaxation objective (in maximize-normalized form)
	order  int64   // LIFO tie-break: newer nodes first → diving behaviour
}

// nodeHeap is a max-heap on relaxation bound with LIFO tie-breaking so the
// search dives for early incumbents while still expanding best-bound first.
type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound > h[j].bound
	}
	return h[i].order > h[j].order
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Solve runs branch and bound with default options.
func Solve(p *Problem) (*Result, error) {
	return SolveWithOptions(p, Options{})
}

// SolveWithOptions runs branch and bound.
func SolveWithOptions(p *Problem, opt Options) (*Result, error) {
	if p.LP == nil {
		return nil, ErrBadProblem
	}
	if p.Integer != nil && len(p.Integer) != p.LP.NumVars {
		return nil, ErrBadProblem
	}
	intTol := opt.IntTol
	if intTol == 0 {
		intTol = 1e-6
	}
	maxNodes := opt.MaxNodes
	if maxNodes == 0 {
		maxNodes = 200_000
	}
	var deadline time.Time
	if opt.TimeLimit > 0 {
		deadline = time.Now().Add(opt.TimeLimit)
	}

	s := &search{
		p:      p,
		intTol: intTol,
		lpOpt:  opt.LPOptions,
		// Normalize to maximization internally.
		sign: 1.0,
	}
	if !p.LP.Maximize {
		s.sign = -1.0
	}

	res := &Result{Status: NoSolution, BestBound: math.Inf(1)}

	incumbentVal := math.Inf(-1) // maximize-normalized incumbent objective
	var incumbentX []float64
	if opt.Incumbent != nil {
		if v, ok := s.checkFeasible(opt.Incumbent); ok {
			incumbentVal = v
			incumbentX = append([]float64(nil), opt.Incumbent...)
		}
	}

	root := &node{branch: -1}
	sol, err := s.solveNode(root)
	if err != nil {
		return nil, err
	}
	res.LPIters += sol.Iters
	switch sol.Status {
	case lp.Infeasible:
		if incumbentX != nil {
			// The seed incumbent passed feasibility but the relaxation is
			// infeasible — numerically impossible; trust the relaxation.
			return &Result{Status: Infeasible, Nodes: 1, LPIters: res.LPIters}, nil
		}
		return &Result{Status: Infeasible, Nodes: 1, LPIters: res.LPIters}, nil
	case lp.Unbounded:
		return &Result{Status: Unbounded, Nodes: 1, LPIters: res.LPIters}, nil
	case lp.IterLimit:
		return &Result{Status: NoSolution, Nodes: 1, LPIters: res.LPIters}, nil
	}
	root.bound = s.sign * sol.Objective

	var order int64
	h := nodeHeap{root}
	rootSolutions := map[*node]*lp.Solution{root: sol}
	nodes := 0
	provenOptimal := true

	for len(h) > 0 {
		if nodes >= maxNodes || (!deadline.IsZero() && time.Now().After(deadline)) {
			provenOptimal = false
			break
		}
		nd := heap.Pop(&h).(*node)
		if nd.bound <= incumbentVal+opt.AbsGap+1e-9 {
			continue // pruned by bound
		}
		if opt.RelGap > 0 && incumbentX != nil {
			denom := math.Max(math.Abs(incumbentVal), 1e-12)
			if (nd.bound-incumbentVal)/denom <= opt.RelGap {
				continue
			}
		}
		nodes++

		sol, cached := rootSolutions[nd]
		if cached {
			delete(rootSolutions, nd)
		} else {
			var err error
			sol, err = s.solveNode(nd)
			if err != nil {
				return nil, err
			}
			res.LPIters += sol.Iters
		}
		switch sol.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			// A child cannot be unbounded if the root was bounded, but be
			// conservative.
			return &Result{Status: Unbounded, Nodes: nodes, LPIters: res.LPIters}, nil
		case lp.IterLimit:
			provenOptimal = false
			continue
		}
		bound := s.sign * sol.Objective
		if opt.ObjIntegral {
			// On integer points the objective is integral, so the best
			// achievable value below this relaxation bound is its floor.
			bound = math.Floor(bound + 1e-6)
		}
		if bound <= incumbentVal+opt.AbsGap+1e-9 {
			continue
		}

		frac := s.mostFractional(sol.X)
		if frac < 0 {
			// Integer feasible: new incumbent.
			if bound > incumbentVal {
				incumbentVal = bound
				incumbentX = roundIntegral(sol.X, p.Integer)
			}
			continue
		}

		// Early stop on relative gap.
		if opt.RelGap > 0 && incumbentX != nil {
			top := bound
			if len(h) > 0 && h[0].bound > top {
				top = h[0].bound
			}
			denom := math.Abs(incumbentVal)
			if denom < 1e-12 {
				denom = 1e-12
			}
			if (top-incumbentVal)/denom <= opt.RelGap {
				provenOptimal = false
				break
			}
		}

		v := sol.X[frac]
		lo := math.Floor(v)
		order++
		down := &node{parent: nd, branch: frac, lo: 0, hi: lo, depth: nd.depth + 1, bound: bound, order: order}
		order++
		up := &node{parent: nd, branch: frac, lo: lo + 1, hi: math.Inf(1), depth: nd.depth + 1, bound: bound, order: order}
		heap.Push(&h, up) // explore the round-up branch first (dives toward capacity)
		heap.Push(&h, down)
	}

	// Best remaining bound over open nodes.
	best := incumbentVal
	for _, nd := range h {
		if nd.bound > best {
			best = nd.bound
		}
	}

	res.Nodes = nodes
	if incumbentX == nil {
		if len(h) == 0 && provenOptimal {
			res.Status = Infeasible
		} else {
			res.Status = NoSolution
		}
		res.BestBound = s.sign * best
		return res, nil
	}
	res.X = incumbentX
	res.Objective = s.sign * incumbentVal
	res.BestBound = s.sign * best
	if len(h) == 0 && provenOptimal {
		res.Status = Optimal
		res.BestBound = res.Objective
	} else {
		res.Status = Feasible
	}
	return res, nil
}

type search struct {
	p      *Problem
	intTol float64
	lpOpt  lp.Options
	sign   float64 // +1 maximize, -1 minimize (normalizes bounds)
}

// solveNode materializes the node's bound chain as extra LP rows and solves
// the relaxation.
func (s *search) solveNode(nd *node) (*lp.Solution, error) {
	// Collapse the bound chain: the tightest interval per variable wins.
	lo := map[int]float64{}
	hi := map[int]float64{}
	for n := nd; n != nil && n.branch >= 0; n = n.parent {
		if v, ok := lo[n.branch]; !ok || n.lo > v {
			lo[n.branch] = n.lo
		}
		if v, ok := hi[n.branch]; !ok || n.hi < v {
			hi[n.branch] = n.hi
		}
	}
	q := s.p.LP.Clone()
	for v, b := range lo {
		if b > 0 {
			q.AddConstraint([]lp.Term{{Var: v, Coef: 1}}, lp.GE, b)
		}
	}
	for v, b := range hi {
		if !math.IsInf(b, 1) {
			q.AddConstraint([]lp.Term{{Var: v, Coef: 1}}, lp.LE, b)
		}
	}
	return lp.SolveWithOptions(q, s.lpOpt)
}

// mostFractional returns the integer variable whose relaxation value is
// farthest from integral, or -1 if all are integral within tolerance.
func (s *search) mostFractional(x []float64) int {
	best, bestDist := -1, s.intTol
	for j, isInt := range s.p.Integer {
		if !isInt {
			continue
		}
		f := x[j] - math.Floor(x[j])
		d := math.Min(f, 1-f)
		if d > bestDist {
			bestDist = d
			best = j
		}
	}
	return best
}

// checkFeasible verifies a candidate point against all constraints and
// integrality, returning its maximize-normalized objective.
func (s *search) checkFeasible(x []float64) (float64, bool) {
	if len(x) != s.p.LP.NumVars {
		return 0, false
	}
	const tol = 1e-6
	for j, v := range x {
		if v < -tol {
			return 0, false
		}
		if s.p.Integer != nil && s.p.Integer[j] {
			if math.Abs(v-math.Round(v)) > tol {
				return 0, false
			}
		}
	}
	for _, c := range s.p.LP.Cons {
		lhs := 0.0
		for _, t := range c.Terms {
			lhs += t.Coef * x[t.Var]
		}
		switch c.Sense {
		case lp.LE:
			if lhs > c.RHS+tol {
				return 0, false
			}
		case lp.GE:
			if lhs < c.RHS-tol {
				return 0, false
			}
		case lp.EQ:
			if math.Abs(lhs-c.RHS) > tol {
				return 0, false
			}
		}
	}
	obj := 0.0
	for j, c := range s.p.LP.Obj {
		obj += c * x[j]
	}
	return s.sign * obj, true
}

// roundIntegral snaps near-integral values exactly onto integers so
// downstream consumers (replica counts) see clean numbers.
func roundIntegral(x []float64, isInt []bool) []float64 {
	out := append([]float64(nil), x...)
	for j := range out {
		if isInt != nil && isInt[j] {
			out[j] = math.Round(out[j])
		}
	}
	return out
}
