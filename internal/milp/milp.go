// Package milp implements an exact mixed-integer linear programming solver
// using LP-relaxation branch and bound on top of internal/lp.
//
// It plays the role Gurobi plays in the Loki paper: the Resource Manager
// formulates hardware-scaling and accuracy-scaling allocations as MILPs and
// needs proven-optimal solutions on problems with a few hundred integer
// variables. The solver is anytime — give it a time limit and it returns the
// best incumbent found with a bound on the remaining gap, mirroring how a
// production controller invokes a commercial solver on a fixed control
// period.
package milp

import (
	"container/heap"
	"errors"
	"math"
	"time"

	"loki/internal/lp"
)

// Problem is a linear program plus integrality marks.
type Problem struct {
	LP      *lp.Problem
	Integer []bool // len LP.NumVars; true marks an integer-constrained variable
}

// Status reports the outcome of a solve.
type Status int8

// Solve outcomes.
const (
	// Optimal means the incumbent is proven optimal.
	Optimal Status = iota
	// Feasible means an integer-feasible incumbent was found but a limit
	// (time or nodes) stopped the proof of optimality.
	Feasible
	// Infeasible means no integer-feasible point exists.
	Infeasible
	// Unbounded means the LP relaxation is unbounded.
	Unbounded
	// NoSolution means a limit was hit before any incumbent was found.
	NoSolution
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case NoSolution:
		return "no-solution"
	default:
		return "unknown"
	}
}

// Options tunes the branch-and-bound search.
type Options struct {
	// TimeLimit stops the search after the given wall-clock duration.
	// Zero means no limit.
	TimeLimit time.Duration
	// MaxNodes bounds the number of branch-and-bound nodes. Zero means
	// 200 000.
	MaxNodes int
	// IntTol is the integrality tolerance. Zero means 1e-6.
	IntTol float64
	// RelGap stops the search once (bestBound-incumbent)/|incumbent| falls
	// below this value. Zero means prove optimality exactly (up to IntTol).
	RelGap float64
	// AbsGap prunes nodes whose bound exceeds the incumbent by at most
	// this amount — the search stops once no node can improve the
	// incumbent by more than AbsGap.
	AbsGap float64
	// ObjIntegral asserts that the objective takes integer values on every
	// integer-feasible point (true for pure counting objectives such as
	// "minimize servers"), which lets the solver round every relaxation
	// bound to the nearest achievable integer and prune far more
	// aggressively.
	ObjIntegral bool
	// Incumbent optionally seeds the search with a known integer-feasible
	// point (e.g. from a greedy heuristic). It is verified before use.
	Incumbent []float64
	// WarmStarts optionally seeds the search with integer-feasible points
	// remembered from related, earlier solves (e.g. the previous adaptation
	// round's plan). Every candidate is verified against the current
	// problem — a point that violates a tightened constraint is silently
	// dropped. On proof-seeking searches (RelGap and AbsGap both zero) the
	// best feasible candidate becomes a pruning floor from the very first
	// node; it never displaces an equally good solution found by the
	// search itself and never participates in the termination tests, so a
	// proof-terminated run returns a bit-identical result with or without
	// warm starts. Gap-tolerant searches explore exactly as a cold solve
	// would (no floor pruning — it would shift the bounds the gap tests
	// observe); there the warm start acts purely as an incumbent fallback:
	// it is returned only when it strictly beats whatever the search found
	// before stopping, which on a gap-terminated run means an improvement
	// inside the gap tolerance and on a truncated run (time, nodes, stall)
	// can mean rescuing a search that found nothing at all.
	WarmStarts [][]float64
	// StallNodes, together with StallAfter, bounds unproductive tail
	// exploration on hard instances: once StallAfter wall-clock time has
	// elapsed, the search stops as soon as StallNodes consecutive nodes —
	// and at least half of all explored nodes, so a steadily improving
	// search is never cut however slow the host — have been explored
	// without improving the best known solution (search-found or warm
	// start), returning it as Feasible. Zero disables stalling. A search
	// that reaches its deterministic end before StallAfter elapses is
	// unaffected, which keeps fast solves reproducible; only searches
	// already deep into their wall-clock budget — whose outcome is
	// timing-dependent anyway — stop early.
	StallNodes int
	// StallAfter is the wall-clock delay before StallNodes arms.
	StallAfter time.Duration
	// Workspace optionally supplies a reusable LP workspace for the node
	// relaxations, letting a caller that solves many MILPs share one set
	// of tableau buffers. Nil makes the search use a private workspace
	// (per-node allocations are avoided either way).
	Workspace *lp.Workspace
	// LPOptions is passed through to the LP solver at every node.
	LPOptions lp.Options
}

// Result is the outcome of a solve.
type Result struct {
	Status    Status
	X         []float64 // incumbent (valid for Optimal/Feasible)
	Objective float64   // incumbent objective in the problem's direction
	BestBound float64   // proven bound on the optimum
	Nodes     int       // branch-and-bound nodes explored
	LPIters   int       // total simplex pivots across all nodes
	// Truncated reports that a resource limit (wall clock, node budget,
	// stall cutoff) stopped the search, as opposed to a deterministic end
	// (optimality proof or gap test). Truncated results are
	// timing-dependent; callers that memoize solutions should treat them
	// as provisional.
	Truncated bool
}

// Gap returns the relative optimality gap of the result, 0 for a proven
// optimum and +Inf when no incumbent exists.
func (r *Result) Gap() float64 {
	if r.Status == Optimal {
		return 0
	}
	if r.X == nil {
		return math.Inf(1)
	}
	denom := math.Abs(r.Objective)
	if denom < 1e-12 {
		denom = 1e-12
	}
	return math.Abs(r.BestBound-r.Objective) / denom
}

// ErrBadProblem reports a malformed problem.
var ErrBadProblem = errors.New("milp: malformed problem")

// node is one branch-and-bound subproblem, defined by a chain of variable
// bound overrides hanging off the root relaxation.
type node struct {
	parent *node
	branch int     // variable the parent branched on (-1 at root)
	lo, hi float64 // bound override for the branch variable
	depth  int
	bound  float64 // LP relaxation objective (in maximize-normalized form)
	order  int64   // LIFO tie-break: newer nodes first → diving behaviour
}

// nodeHeap is a max-heap on relaxation bound with LIFO tie-breaking so the
// search dives for early incumbents while still expanding best-bound first.
type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound > h[j].bound
	}
	return h[i].order > h[j].order
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Solve runs branch and bound with default options.
func Solve(p *Problem) (*Result, error) {
	return SolveWithOptions(p, Options{})
}

// SolveWithOptions runs branch and bound.
func SolveWithOptions(p *Problem, opt Options) (*Result, error) {
	if p.LP == nil {
		return nil, ErrBadProblem
	}
	if p.Integer != nil && len(p.Integer) != p.LP.NumVars {
		return nil, ErrBadProblem
	}
	intTol := opt.IntTol
	if intTol == 0 {
		intTol = 1e-6
	}
	maxNodes := opt.MaxNodes
	if maxNodes == 0 {
		maxNodes = 200_000
	}
	var deadline time.Time
	if opt.TimeLimit > 0 {
		deadline = time.Now().Add(opt.TimeLimit)
	}

	s := &search{
		p:      p,
		intTol: intTol,
		lpOpt:  opt.LPOptions,
		ws:     opt.Workspace,
		// Normalize to maximization internally.
		sign: 1.0,
	}
	if !p.LP.Maximize {
		s.sign = -1.0
	}
	if s.ws == nil {
		s.ws = &lp.Workspace{}
	}
	// Shared node model: the base constraint rows are copied once and every
	// node appends its branching-bound rows behind them, truncating back
	// after the relaxation solve. This replaces the per-node Problem.Clone
	// (and the per-node tableau allocation, via the workspace) that
	// dominated the solver's allocation profile.
	s.cons = append(make([]lp.Constraint, 0, len(p.LP.Cons)+16), p.LP.Cons...)
	s.nodeProb = lp.Problem{NumVars: p.LP.NumVars, Maximize: p.LP.Maximize, Obj: p.LP.Obj}

	res := &Result{Status: NoSolution, BestBound: math.Inf(1)}

	incumbentVal := math.Inf(-1) // maximize-normalized incumbent objective
	var incumbentX []float64
	if opt.Incumbent != nil {
		if v, ok := s.checkFeasible(opt.Incumbent); ok {
			incumbentVal = v
			incumbentX = append([]float64(nil), opt.Incumbent...)
		}
	}

	// Warm starts prune but never displace an equally good search result.
	warmVal := math.Inf(-1)
	var warmX []float64
	for _, cand := range opt.WarmStarts {
		if v, ok := s.checkFeasible(cand); ok && v > warmVal {
			warmVal = v
			warmX = append([]float64(nil), cand...)
		}
	}
	pruneFloor := math.Inf(-1)
	if warmX != nil && opt.RelGap == 0 && opt.AbsGap == 0 {
		// Floor pruning applies only to proof-seeking searches, and
		// strictly below the warm value: nodes whose bound ties the warm
		// start stay open so the search can find its own equally good
		// incumbent, keeping proof-terminated runs bit-identical to a cold
		// solve. Gap-tolerant searches skip the floor entirely — pruning
		// would shift which bounds the gap tests observe and so change
		// where a cold-identical search stops — and use the warm start
		// only as an end-of-search incumbent fallback.
		pruneFloor = warmVal - 1e-7*math.Max(1, math.Abs(warmVal))
	}

	root := &node{branch: -1}
	sol, err := s.solveNode(root)
	if err != nil {
		return nil, err
	}
	res.LPIters += sol.Iters
	switch sol.Status {
	case lp.Infeasible:
		// A warm start or seed that passed the feasibility check while the
		// relaxation is infeasible would be numerically contradictory;
		// trust the relaxation.
		return &Result{Status: Infeasible, Nodes: 1, LPIters: res.LPIters}, nil
	case lp.Unbounded:
		return &Result{Status: Unbounded, Nodes: 1, LPIters: res.LPIters}, nil
	case lp.IterLimit:
		return &Result{Status: NoSolution, Nodes: 1, LPIters: res.LPIters}, nil
	}
	root.bound = s.sign * sol.Objective

	var order int64
	h := nodeHeap{root}
	rootSolutions := map[*node]*lp.Solution{root: sol}
	nodes := 0
	provenOptimal := true

	// Stall tracking: bestKnown is the best returnable value (search
	// incumbent or warm start); lastImprove the node count when it last
	// rose. The stall cutoff arms only after StallAfter wall-clock time.
	start := time.Now()
	bestKnown := math.Max(incumbentVal, warmVal)
	lastImprove := 0
	stallArmed := false

	for len(h) > 0 {
		if nodes >= maxNodes || (!deadline.IsZero() && time.Now().After(deadline)) {
			provenOptimal = false
			res.Truncated = true
			break
		}
		// Stall cutoff: past the arming delay, a search that has explored
		// StallNodes nodes without improving its best solution — and whose
		// plateau dominates its whole history (≥ half of all explored
		// nodes, so steadily-improving searches are never cut no matter
		// how slow the host) — is spending the rest of its budget on
		// bound-tightening only; stop it. With no incumbent at all the
		// same plateau means the step is (near-)integer-infeasible, and
		// stopping lets the caller fall through to its next regime instead
		// of burning the whole control period.
		if opt.StallNodes > 0 && nodes-lastImprove >= opt.StallNodes && nodes-lastImprove >= nodes/2 {
			if !stallArmed && time.Since(start) >= opt.StallAfter {
				stallArmed = true
			}
			if stallArmed {
				provenOptimal = false
				res.Truncated = true
				break
			}
		}
		nd := heap.Pop(&h).(*node)
		if nd.bound <= math.Max(incumbentVal, pruneFloor)+opt.AbsGap+1e-9 {
			continue // pruned by bound (or by the warm-start floor)
		}
		if opt.RelGap > 0 && incumbentX != nil {
			denom := math.Max(math.Abs(incumbentVal), 1e-12)
			if (nd.bound-incumbentVal)/denom <= opt.RelGap {
				continue
			}
		}
		nodes++

		sol, cached := rootSolutions[nd]
		if cached {
			delete(rootSolutions, nd)
		} else {
			var err error
			sol, err = s.solveNode(nd)
			if err != nil {
				return nil, err
			}
			res.LPIters += sol.Iters
		}
		switch sol.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			// A child cannot be unbounded if the root was bounded, but be
			// conservative.
			return &Result{Status: Unbounded, Nodes: nodes, LPIters: res.LPIters}, nil
		case lp.IterLimit:
			provenOptimal = false
			continue
		}
		bound := s.sign * sol.Objective
		if opt.ObjIntegral {
			// On integer points the objective is integral, so the best
			// achievable value below this relaxation bound is its floor.
			bound = math.Floor(bound + 1e-6)
		}
		if bound <= math.Max(incumbentVal, pruneFloor)+opt.AbsGap+1e-9 {
			continue
		}

		frac := s.mostFractional(sol.X)
		if frac < 0 {
			// Integer feasible: new incumbent.
			if bound > incumbentVal {
				incumbentVal = bound
				incumbentX = roundIntegral(sol.X, p.Integer)
				if incumbentVal > bestKnown {
					bestKnown = incumbentVal
					lastImprove = nodes
				}
			}
			continue
		}

		// Early stop on relative gap.
		if opt.RelGap > 0 && incumbentX != nil {
			top := bound
			if len(h) > 0 && h[0].bound > top {
				top = h[0].bound
			}
			denom := math.Abs(incumbentVal)
			if denom < 1e-12 {
				denom = 1e-12
			}
			if (top-incumbentVal)/denom <= opt.RelGap {
				provenOptimal = false
				break
			}
		}

		v := sol.X[frac]
		lo := math.Floor(v)
		order++
		down := &node{parent: nd, branch: frac, lo: 0, hi: lo, depth: nd.depth + 1, bound: bound, order: order}
		order++
		up := &node{parent: nd, branch: frac, lo: lo + 1, hi: math.Inf(1), depth: nd.depth + 1, bound: bound, order: order}
		heap.Push(&h, up) // explore the round-up branch first (dives toward capacity)
		heap.Push(&h, down)
	}

	// A warm start strictly better than anything the search found is the
	// returnable incumbent; ties prefer the search's own solution so that
	// proof-terminated runs match a cold solve bit for bit. (A search that
	// runs to proof always rediscovers a value at least as good as the warm
	// start — its subtree is never pruned — so on proof-terminated runs
	// this replacement never fires; it surfaces from truncated runs and,
	// within the gap tolerance, from gap-terminated ones.)
	if warmX != nil && (incumbentX == nil || warmVal > incumbentVal) {
		incumbentX = warmX
		incumbentVal = warmVal
	}

	// Best remaining bound over open nodes.
	best := incumbentVal
	for _, nd := range h {
		if nd.bound > best {
			best = nd.bound
		}
	}

	res.Nodes = nodes
	if incumbentX == nil {
		if len(h) == 0 && provenOptimal {
			res.Status = Infeasible
		} else {
			res.Status = NoSolution
		}
		res.BestBound = s.sign * best
		return res, nil
	}
	res.X = incumbentX
	res.Objective = s.sign * incumbentVal
	res.BestBound = s.sign * best
	if len(h) == 0 && provenOptimal {
		res.Status = Optimal
		res.BestBound = res.Objective
	} else {
		res.Status = Feasible
	}
	return res, nil
}

type search struct {
	p      *Problem
	intTol float64
	lpOpt  lp.Options
	sign   float64 // +1 maximize, -1 minimize (normalizes bounds)

	// Shared node model: cons holds the base rows once, each node appends
	// its bound rows behind them and truncates back after the solve, and
	// ws recycles the tableau buffers — no per-node model or tableau
	// allocations.
	ws       *lp.Workspace
	cons     []lp.Constraint
	nodeProb lp.Problem
	bvars    []varBound
	terms    []lp.Term
}

// varBound is one collapsed branching interval lo ≤ x_v ≤ hi.
type varBound struct {
	v      int
	lo, hi float64
}

// solveNode materializes the node's bound chain as extra rows on the shared
// model and solves the relaxation. Bound rows are emitted in ascending
// variable order (lower bounds first), so the row layout — and therefore the
// pivot sequence — is deterministic for a given node.
func (s *search) solveNode(nd *node) (*lp.Solution, error) {
	// Collapse the bound chain: the tightest interval per variable wins.
	s.bvars = s.bvars[:0]
	for n := nd; n != nil && n.branch >= 0; n = n.parent {
		at := -1
		for i := range s.bvars {
			if s.bvars[i].v == n.branch {
				at = i
				break
			}
		}
		if at < 0 {
			at = len(s.bvars)
			s.bvars = append(s.bvars, varBound{v: n.branch, lo: n.lo, hi: n.hi})
			for at > 0 && s.bvars[at-1].v > s.bvars[at].v {
				s.bvars[at-1], s.bvars[at] = s.bvars[at], s.bvars[at-1]
				at--
			}
			continue
		}
		if n.lo > s.bvars[at].lo {
			s.bvars[at].lo = n.lo
		}
		if n.hi < s.bvars[at].hi {
			s.bvars[at].hi = n.hi
		}
	}

	s.cons = s.cons[:len(s.p.LP.Cons)]
	if need := 2 * len(s.bvars); cap(s.terms) < need {
		s.terms = make([]lp.Term, 0, need+16)
	}
	s.terms = s.terms[:0]
	for _, b := range s.bvars {
		if b.lo > 0 {
			s.terms = append(s.terms, lp.Term{Var: b.v, Coef: 1})
			s.cons = append(s.cons, lp.Constraint{Terms: s.terms[len(s.terms)-1 : len(s.terms)], Sense: lp.GE, RHS: b.lo})
		}
	}
	for _, b := range s.bvars {
		if !math.IsInf(b.hi, 1) {
			s.terms = append(s.terms, lp.Term{Var: b.v, Coef: 1})
			s.cons = append(s.cons, lp.Constraint{Terms: s.terms[len(s.terms)-1 : len(s.terms)], Sense: lp.LE, RHS: b.hi})
		}
	}
	s.nodeProb.Cons = s.cons
	return lp.SolveWS(&s.nodeProb, s.lpOpt, s.ws)
}

// mostFractional returns the integer variable whose relaxation value is
// farthest from integral, or -1 if all are integral within tolerance.
func (s *search) mostFractional(x []float64) int {
	best, bestDist := -1, s.intTol
	for j, isInt := range s.p.Integer {
		if !isInt {
			continue
		}
		f := x[j] - math.Floor(x[j])
		d := math.Min(f, 1-f)
		if d > bestDist {
			bestDist = d
			best = j
		}
	}
	return best
}

// checkFeasible verifies a candidate point against all constraints and
// integrality, returning its maximize-normalized objective.
func (s *search) checkFeasible(x []float64) (float64, bool) {
	if len(x) != s.p.LP.NumVars {
		return 0, false
	}
	const tol = 1e-6
	for j, v := range x {
		if v < -tol {
			return 0, false
		}
		if s.p.Integer != nil && s.p.Integer[j] {
			if math.Abs(v-math.Round(v)) > tol {
				return 0, false
			}
		}
	}
	for _, c := range s.p.LP.Cons {
		lhs := 0.0
		for _, t := range c.Terms {
			lhs += t.Coef * x[t.Var]
		}
		switch c.Sense {
		case lp.LE:
			if lhs > c.RHS+tol {
				return 0, false
			}
		case lp.GE:
			if lhs < c.RHS-tol {
				return 0, false
			}
		case lp.EQ:
			if math.Abs(lhs-c.RHS) > tol {
				return 0, false
			}
		}
	}
	obj := 0.0
	for j, c := range s.p.LP.Obj {
		obj += c * x[j]
	}
	return s.sign * obj, true
}

// roundIntegral snaps near-integral values exactly onto integers so
// downstream consumers (replica counts) see clean numbers.
func roundIntegral(x []float64, isInt []bool) []float64 {
	out := append([]float64(nil), x...)
	for j := range out {
		if isInt != nil && isInt[j] {
			out[j] = math.Round(out[j])
		}
	}
	return out
}
