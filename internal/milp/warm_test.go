package milp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"loki/internal/lp"
)

// hardKnapsack builds an n-item knapsack whose LP relaxation is fractional
// almost everywhere, so branch and bound has real work to do.
func hardKnapsack(rng *rand.Rand, n int) *Problem {
	p := lp.NewProblem(n)
	p.Maximize = true
	terms := make([]lp.Term, n)
	capSum := 0.0
	for j := 0; j < n; j++ {
		w := 1 + rng.Float64()*9
		p.Obj[j] = w + rng.Float64() // value correlated with weight → weak bounds
		terms[j] = lp.Term{Var: j, Coef: w}
		capSum += w
	}
	p.AddConstraint(terms, lp.LE, capSum/2)
	for j := 0; j < n; j++ {
		p.AddConstraint([]lp.Term{{Var: j, Coef: 1}}, lp.LE, 1)
	}
	return &Problem{LP: p, Integer: allInt(n)}
}

// TestWarmStartPreservesProvenResults is the warm-start parity contract: on
// searches that run to their deterministic end, seeding with feasible (even
// optimal) warm starts must not change the returned solution at all.
func TestWarmStartPreservesProvenResults(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		p := hardKnapsack(rng, 10+rng.Intn(6))
		cold, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if cold.Status != Optimal {
			t.Fatalf("trial %d: cold solve not optimal: %v", trial, cold.Status)
		}

		// Three seeds: the all-zero point (weak), a greedy point, and the
		// cold optimum itself (ties must prefer the search's own result,
		// which for an identical search is the same point).
		zero := make([]float64, p.LP.NumVars)
		greedy := make([]float64, p.LP.NumVars)
		greedy[0] = 1
		warm, err := SolveWithOptions(p, Options{
			WarmStarts: [][]float64{zero, greedy, cold.X},
		})
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != Optimal || warm.Objective != cold.Objective {
			t.Fatalf("trial %d: warm result diverged: %v obj %v, cold %v obj %v",
				trial, warm.Status, warm.Objective, cold.Status, cold.Objective)
		}
		for j := range cold.X {
			if cold.X[j] != warm.X[j] {
				t.Fatalf("trial %d: warm incumbent differs at %d: %v vs %v", trial, j, warm.X[j], cold.X[j])
			}
		}
		if warm.Nodes > cold.Nodes {
			t.Fatalf("trial %d: warm start explored more nodes (%d) than cold (%d)", trial, warm.Nodes, cold.Nodes)
		}
	}
}

// TestWarmStartSurfacesOnTruncation checks the anytime half of the
// contract: when a limit truncates the search before it finds anything as
// good, the best feasible warm start is returned.
func TestWarmStartSurfacesOnTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := hardKnapsack(rng, 26)
	full, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if full.Status != Optimal {
		t.Fatalf("reference solve not optimal: %v", full.Status)
	}

	// MaxNodes 1 explores only the root: the search has no incumbent of its
	// own, so the warm start must come back.
	warm, err := SolveWithOptions(p, Options{
		MaxNodes:   1,
		WarmStarts: [][]float64{full.X},
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Feasible {
		t.Fatalf("truncated warm solve: got %v, want Feasible", warm.Status)
	}
	if warm.Objective != full.Objective {
		t.Fatalf("truncated warm solve returned %v, want the warm start's %v", warm.Objective, full.Objective)
	}

	// Without the warm start the same truncation has nothing to return.
	bare, err := SolveWithOptions(p, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if bare.Status != NoSolution {
		t.Fatalf("truncated bare solve: got %v, want NoSolution", bare.Status)
	}
}

// TestWarmStartRejectsBadSeeds: wrong-length, infeasible, and fractional
// seeds are dropped silently.
func TestWarmStartRejectsBadSeeds(t *testing.T) {
	p := lp.NewProblem(2)
	p.Maximize = true
	p.Obj = []float64{3, 2}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, lp.LE, 4)
	prob := &Problem{LP: p, Integer: allInt(2)}

	r, err := SolveWithOptions(prob, Options{
		WarmStarts: [][]float64{
			{1},        // wrong length
			{9, 0},     // violates the row
			{0.5, 0.5}, // fractional
			{-1, 0},    // negative
			nil,        // nil candidate
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || math.Abs(r.Objective-12) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal 12", r.Status, r.Objective)
	}
}

// TestStallCutoffStopsPlateauedSearch: with the stall armed from the start
// and a one-node plateau window, a hard instance stops almost immediately
// and reports Feasible with whatever incumbent it has.
func TestStallCutoffStopsPlateauedSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := hardKnapsack(rng, 24)

	full, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]float64, p.LP.NumVars)
	stalled, err := SolveWithOptions(p, Options{
		WarmStarts: [][]float64{zero},
		StallNodes: 1,
		StallAfter: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stalled.Status != Feasible {
		t.Fatalf("stalled solve: got %v, want Feasible", stalled.Status)
	}
	if stalled.Nodes >= full.Nodes {
		t.Fatalf("stall did not cut the search: %d nodes vs full %d", stalled.Nodes, full.Nodes)
	}

	// Zero StallNodes disables the cutoff entirely.
	off, err := SolveWithOptions(p, Options{StallAfter: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if off.Status != Optimal {
		t.Fatalf("stall-disabled solve: got %v, want Optimal", off.Status)
	}
}

// BenchmarkMILPSolve measures one branch-and-bound solve of a fractional
// knapsack (a stand-in for the allocator's step MILPs), cold versus seeded
// with the optimum as a warm start, with allocations reported — the
// shared-model node solver should allocate almost nothing per node.
func BenchmarkMILPSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	p := hardKnapsack(rng, 18)
	full, err := Solve(p)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Solve(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		opts := Options{WarmStarts: [][]float64{full.X}}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := SolveWithOptions(p, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
