// Package lp implements a two-phase primal simplex solver for linear
// programs, with a sparse revised-simplex hot path and a dense tableau
// fallback.
//
// The solver handles problems of the form
//
//	minimize (or maximize)  cᵀx
//	subject to              aᵢᵀx {≤,=,≥} bᵢ   for every constraint i
//	                        x ≥ 0
//
// Upper bounds and general variable bounds are expressed as ordinary
// constraints by the caller (the MILP layer in internal/milp does exactly
// that for branching bounds).
//
// Both implementations share a Phase-1 artificial-variable start, Dantzig
// pricing, and an automatic switch to Bland's rule when the pivot sequence
// degenerates, which guarantees termination. The revised simplex (the
// default) keeps the constraints as sparse columns and maintains only the
// m×m basis inverse, which suits the allocator's wide, mostly-zero
// formulations; the dense tableau remains as the Dense escape hatch and as
// the automatic fallback whenever the revised path declines to certify an
// answer (unboundedness, iteration limits, or a failed feasibility
// re-check).
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the direction of a linear constraint.
type Sense int8

// Constraint senses.
const (
	LE Sense = iota // aᵀx ≤ b
	GE              // aᵀx ≥ b
	EQ              // aᵀx = b
)

// String returns the conventional symbol for the sense.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Term is a single coefficient of a linear expression.
type Term struct {
	Var  int     // variable index in [0, NumVars)
	Coef float64 // coefficient
}

// Constraint is one linear constraint of a Problem. Terms may mention a
// variable more than once; coefficients are summed.
type Constraint struct {
	Terms []Term
	Sense Sense
	RHS   float64
}

// Problem is a linear program over NumVars non-negative variables.
// The zero value is an empty problem; use AddConstraint and SetObjectiveTerm
// (or fill the fields directly) to populate it.
type Problem struct {
	NumVars  int
	Maximize bool      // objective direction; false means minimize
	Obj      []float64 // dense objective, len NumVars (nil means all-zero)
	Cons     []Constraint
}

// NewProblem returns an empty problem over n non-negative variables.
func NewProblem(n int) *Problem {
	return &Problem{NumVars: n, Obj: make([]float64, n)}
}

// SetObjectiveTerm sets the objective coefficient of variable v.
func (p *Problem) SetObjectiveTerm(v int, c float64) {
	if p.Obj == nil {
		p.Obj = make([]float64, p.NumVars)
	}
	p.Obj[v] = c
}

// AddConstraint appends the constraint Σ terms {sense} rhs and returns its
// row index.
func (p *Problem) AddConstraint(terms []Term, sense Sense, rhs float64) int {
	p.Cons = append(p.Cons, Constraint{Terms: terms, Sense: sense, RHS: rhs})
	return len(p.Cons) - 1
}

// Clone returns a deep copy of the problem. The term slices of individual
// constraints are shared (they are never mutated by the solver), but the
// constraint list and objective are copied, so the clone may gain additional
// constraints without affecting the original.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		NumVars:  p.NumVars,
		Maximize: p.Maximize,
		Obj:      append([]float64(nil), p.Obj...),
		Cons:     append([]Constraint(nil), p.Cons...),
	}
	return q
}

// Status reports the outcome of a solve.
type Status int8

// Solve outcomes.
const (
	Optimal    Status = iota // an optimal basic feasible solution was found
	Infeasible               // the constraints admit no solution
	Unbounded                // the objective is unbounded over the feasible set
	IterLimit                // the iteration budget was exhausted
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	X         []float64 // primal values, len NumVars (valid when Status == Optimal)
	Objective float64   // objective value in the problem's own direction
	Iters     int       // simplex pivots performed across both phases
}

// Options tunes the solver.
type Options struct {
	// Tol is the feasibility/optimality tolerance. Zero means 1e-9.
	Tol float64
	// MaxIter bounds total pivots. Zero means 200*(rows+cols)+2000.
	MaxIter int
}

const defaultTol = 1e-9

// ErrBadProblem reports a structurally invalid problem (e.g. a term indexing
// a variable outside [0, NumVars)).
var ErrBadProblem = errors.New("lp: malformed problem")

// Solve solves the problem with default options.
func Solve(p *Problem) (*Solution, error) {
	return SolveWithOptions(p, Options{})
}

// SolveWithOptions solves the problem.
func SolveWithOptions(p *Problem, opt Options) (*Solution, error) {
	return SolveWS(p, opt, nil)
}

// SolveWS solves the problem using the given Workspace for the solver's
// working state. It runs the exact same pivot sequence as SolveWithOptions —
// the workspace only recycles buffers — so results are bit-identical. When
// ws is non-nil the returned Solution's X slice is owned by the workspace
// and is only valid until the next solve through it; callers that keep the
// point must copy it. A nil ws allocates fresh buffers (and a fresh X).
//
// Problems at or above the RevisedMinSize crossover run the sparse revised
// simplex (revised.go); smaller problems, and every solve when the Dense
// escape hatch is set, use the dense tableau — which is also the automatic
// fallback whenever the revised path declines to certify its answer.
func SolveWS(p *Problem, opt Options, ws *Workspace) (*Solution, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	tol := opt.Tol
	if tol == 0 {
		tol = defaultTol
	}
	if !Dense && revisedEligible(p) {
		if sol, ok := solveRevised(p, tol, opt.MaxIter, ws); ok {
			return sol, nil
		}
	}

	t := newTableau(p, tol, ws)
	maxIter := opt.MaxIter
	if maxIter == 0 {
		maxIter = 200*(t.m+t.ncols) + 2000
	}

	// Phase 1: minimize the sum of artificial variables.
	if t.nart > 0 {
		st := t.iterate(maxIter)
		if st == iterLimit {
			return &Solution{Status: IterLimit, Iters: t.iters}, nil
		}
		// st cannot be unbounded in phase 1 (objective bounded below by 0).
		if t.objVal() > 1e-7 {
			return &Solution{Status: Infeasible, Iters: t.iters}, nil
		}
		t.dropArtificials()
	}

	// Phase 2: the real objective.
	t.setPhase2Objective(p)
	st := t.iterate(maxIter)
	switch st {
	case iterLimit:
		return &Solution{Status: IterLimit, Iters: t.iters}, nil
	case unbounded:
		return &Solution{Status: Unbounded, Iters: t.iters}, nil
	}

	var x []float64
	if ws != nil {
		x = ws.solution(p.NumVars)
	} else {
		x = make([]float64, p.NumVars)
	}
	for i, bv := range t.basis {
		if bv < p.NumVars {
			x[bv] = t.rhs[i]
		}
	}
	obj := 0.0
	for j, c := range p.Obj {
		obj += c * x[j]
	}
	return &Solution{Status: Optimal, X: x, Objective: obj, Iters: t.iters}, nil
}

func validate(p *Problem) error {
	if p.NumVars < 0 {
		return fmt.Errorf("%w: negative NumVars", ErrBadProblem)
	}
	if p.Obj != nil && len(p.Obj) != p.NumVars {
		return fmt.Errorf("%w: objective has %d coefficients for %d variables", ErrBadProblem, len(p.Obj), p.NumVars)
	}
	for i, c := range p.Cons {
		for _, t := range c.Terms {
			if t.Var < 0 || t.Var >= p.NumVars {
				return fmt.Errorf("%w: constraint %d references variable %d (have %d)", ErrBadProblem, i, t.Var, p.NumVars)
			}
			if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
				return fmt.Errorf("%w: constraint %d has non-finite coefficient", ErrBadProblem, i)
			}
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("%w: constraint %d has non-finite RHS", ErrBadProblem, i)
		}
	}
	return nil
}
