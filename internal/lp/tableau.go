package lp

import "math"

// tableau is the dense working state of the simplex method. Column layout:
//
//	[0, n)            structural variables
//	[n, n+nslack)     slack/surplus columns (one per LE/GE row)
//	[n+nslack, ncols) artificial columns (one per GE/EQ row)
//
// rows[i] is the i-th constraint row expressed in the current basis, rhs[i]
// its right-hand side (always ≥ 0 for a feasible basis), and basis[i] the
// column currently basic in row i. obj is the reduced-cost row and objShift
// the objective value of the current basis (with sign such that the solver
// always minimizes).
type tableau struct {
	m, n    int // constraint rows, structural variables
	nslack  int
	nart    int
	ncols   int
	rows    [][]float64
	rhs     []float64
	basis   []int
	obj     []float64
	objShif float64
	tol     float64
	iters   int
	// artStart is the first artificial column; columns ≥ artStart are barred
	// from entering once phase 1 completes.
	artStart int
	inPhase2 bool
}

type iterStatus int8

const (
	optimal iterStatus = iota
	unbounded
	iterLimit
)

// rowInfo records how a constraint row is normalized into the tableau: its
// effective sense after flipping rows with negative RHS.
type rowInfo struct {
	sense Sense
	neg   bool
}

func newTableau(p *Problem, tol float64, ws *Workspace) *tableau {
	m := len(p.Cons)
	n := p.NumVars

	// Count auxiliary columns. Every LE/GE row gets one slack/surplus;
	// every GE/EQ row gets one artificial. Rows are normalized so RHS ≥ 0
	// first, which may flip the sense.
	var info []rowInfo
	if ws != nil {
		info = ws.rowInfos(m)
	} else {
		info = make([]rowInfo, m)
	}
	nslack, nart := 0, 0
	for i, c := range p.Cons {
		s := c.Sense
		neg := c.RHS < 0
		if neg {
			switch s {
			case LE:
				s = GE
			case GE:
				s = LE
			}
		}
		info[i] = rowInfo{sense: s, neg: neg}
		if s != EQ {
			nslack++
		}
		if s != LE {
			nart++
		}
	}

	t := &tableau{
		m:        m,
		n:        n,
		nslack:   nslack,
		nart:     nart,
		ncols:    n + nslack + nart,
		tol:      tol,
		artStart: n + nslack,
	}
	var flat []float64
	if ws != nil {
		flat, t.rows, t.rhs, t.basis, t.obj = ws.grow(m, t.ncols, n)
	} else {
		flat = make([]float64, m*t.ncols)
		t.rows = make([][]float64, m)
		t.rhs = make([]float64, m)
		t.basis = make([]int, m)
		t.obj = make([]float64, t.ncols)
	}
	for i := range t.rows {
		t.rows[i] = flat[i*t.ncols : (i+1)*t.ncols]
	}

	slackCol := n
	artCol := t.artStart
	for i, c := range p.Cons {
		row := t.rows[i]
		sgn := 1.0
		if info[i].neg {
			sgn = -1.0
		}
		for _, term := range c.Terms {
			row[term.Var] += sgn * term.Coef
		}
		t.rhs[i] = sgn * c.RHS
		switch info[i].sense {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
	}

	// Phase-1 objective: minimize the sum of artificials. Price out the
	// initially-basic artificials: obj_j = -Σ_{rows with artificial basic} row_j.
	for j := t.artStart; j < t.ncols; j++ {
		t.obj[j] = 1
	}
	for i := range t.rows {
		if t.basis[i] >= t.artStart {
			for j := 0; j < t.ncols; j++ {
				t.obj[j] -= t.rows[i][j]
			}
			t.objShif -= t.rhs[i]
		}
	}
	return t
}

// objVal returns the current objective value (in the minimizing direction).
func (t *tableau) objVal() float64 { return -t.objShif }

// setPhase2Objective installs the caller's objective (converted to
// minimization) and prices out the current basis.
func (t *tableau) setPhase2Objective(p *Problem) {
	for j := range t.obj {
		t.obj[j] = 0
	}
	t.objShif = 0
	sgn := 1.0
	if p.Maximize {
		sgn = -1.0
	}
	for j, c := range p.Obj {
		t.obj[j] = sgn * c
	}
	for i, bv := range t.basis {
		c := t.obj[bv]
		if c == 0 {
			continue
		}
		row := t.rows[i]
		for j := 0; j < t.ncols; j++ {
			t.obj[j] -= c * row[j]
		}
		t.obj[bv] = 0 // exact, avoids drift
		t.objShif -= c * t.rhs[i]
	}
	t.inPhase2 = true
}

// dropArtificials prepares the tableau for phase 2: artificial columns are
// barred from entering, and any artificial still basic (necessarily at zero
// level) is pivoted out onto a non-artificial column when possible. If a row
// has no eligible pivot the row is redundant and the artificial stays basic
// at zero, which is harmless.
func (t *tableau) dropArtificials() {
	for i := range t.basis {
		if t.basis[i] < t.artStart {
			continue
		}
		row := t.rows[i]
		pivotCol := -1
		for j := 0; j < t.artStart; j++ {
			if math.Abs(row[j]) > t.tol {
				pivotCol = j
				break
			}
		}
		if pivotCol >= 0 {
			t.pivot(i, pivotCol)
		}
	}
}

// iterate runs simplex pivots until optimality, unboundedness, or the
// iteration budget is reached. It starts with Dantzig pricing and falls back
// to Bland's rule after a long degenerate stall, which guarantees
// termination.
func (t *tableau) iterate(maxIter int) iterStatus {
	stall := 0
	bland := false
	const stallLimit = 200
	for {
		if t.iters >= maxIter {
			return iterLimit
		}
		col := t.chooseEntering(bland)
		if col < 0 {
			return optimal
		}
		row := t.chooseLeaving(col)
		if row < 0 {
			return unbounded
		}
		degenerate := t.rhs[row] <= t.tol
		t.pivot(row, col)
		t.iters++
		if degenerate {
			stall++
			if stall >= stallLimit {
				bland = true
			}
		} else {
			stall = 0
			bland = false
		}
	}
}

// chooseEntering returns the entering column, or -1 at optimality.
func (t *tableau) chooseEntering(bland bool) int {
	limit := t.ncols
	if t.inPhase2 {
		limit = t.artStart // artificials may not re-enter
	}
	if bland {
		for j := 0; j < limit; j++ {
			if t.obj[j] < -t.tol {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, -t.tol
	for j := 0; j < limit; j++ {
		if t.obj[j] < bestVal {
			bestVal = t.obj[j]
			best = j
		}
	}
	return best
}

// chooseLeaving runs the ratio test for the entering column, returning the
// pivot row or -1 if the column is unbounded. Ties break toward the smallest
// basis variable index (a lexicographic-ish guard against cycling).
func (t *tableau) chooseLeaving(col int) int {
	bestRow := -1
	bestRatio := math.Inf(1)
	for i := 0; i < t.m; i++ {
		a := t.rows[i][col]
		if a <= t.tol {
			continue
		}
		r := t.rhs[i] / a
		if r < bestRatio-t.tol || (r < bestRatio+t.tol && (bestRow < 0 || t.basis[i] < t.basis[bestRow])) {
			bestRatio = r
			bestRow = i
		}
	}
	return bestRow
}

// pivot makes column col basic in row prow.
//
// The inner loops skip zero entries of the pivot row: subtracting f*0 leaves
// every value bit-identical (only the sign of a zero could differ, which no
// comparison or pivot choice observes), and the tableau stays sparse enough
// through phase 1 that the skip roughly halves the work of the hottest loop
// in the solver.
func (t *tableau) pivot(prow, col int) {
	prowData := t.rows[prow]
	inv := 1 / prowData[col]
	for j := range prowData {
		prowData[j] *= inv
	}
	prowData[col] = 1 // exact
	t.rhs[prow] *= inv

	for i := 0; i < t.m; i++ {
		if i == prow {
			continue
		}
		f := t.rows[i][col]
		if f == 0 {
			continue
		}
		row := t.rows[i][:len(prowData)]
		for j, pv := range prowData {
			if pv != 0 {
				row[j] -= f * pv
			}
		}
		row[col] = 0 // exact
		t.rhs[i] -= f * t.rhs[prow]
		if t.rhs[i] < 0 && t.rhs[i] > -t.tol {
			t.rhs[i] = 0
		}
	}
	f := t.obj[col]
	if f != 0 {
		obj := t.obj[:len(prowData)]
		for j, pv := range prowData {
			if pv != 0 {
				obj[j] -= f * pv
			}
		}
		obj[col] = 0
		t.objShif -= f * t.rhs[prow]
	}
	t.basis[prow] = col
}
