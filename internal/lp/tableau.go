package lp

import "math"

// tableau is the dense working state of the simplex method. Column layout:
//
//	[0, n)            structural variables
//	[n, n+nslack)     slack/surplus columns (one per LE/GE row)
//	[n+nslack, ncols) artificial columns (one per GE/EQ row)
//
// rows[i] is the i-th constraint row expressed in the current basis, rhs[i]
// its right-hand side (always ≥ 0 for a feasible basis), and basis[i] the
// column currently basic in row i. obj is the reduced-cost row and objShift
// the objective value of the current basis (with sign such that the solver
// always minimizes).
type tableau struct {
	m, n    int // constraint rows, structural variables
	nslack  int
	nart    int
	ncols   int
	rows    [][]float64
	rhs     []float64
	basis   []int
	obj     []float64
	objShif float64
	tol     float64
	iters   int
	// artStart is the first artificial column; columns ≥ artStart are barred
	// from entering once phase 1 completes.
	artStart int
	inPhase2 bool
}

type iterStatus int8

const (
	optimal iterStatus = iota
	unbounded
	iterLimit
)

func newTableau(p *Problem, tol float64) *tableau {
	m := len(p.Cons)
	n := p.NumVars

	// Count auxiliary columns. Every LE/GE row gets one slack/surplus;
	// every GE/EQ row gets one artificial. Rows are normalized so RHS ≥ 0
	// first, which may flip the sense.
	type rowInfo struct {
		sense Sense
		neg   bool
	}
	info := make([]rowInfo, m)
	nslack, nart := 0, 0
	for i, c := range p.Cons {
		s := c.Sense
		neg := c.RHS < 0
		if neg {
			switch s {
			case LE:
				s = GE
			case GE:
				s = LE
			}
		}
		info[i] = rowInfo{sense: s, neg: neg}
		if s != EQ {
			nslack++
		}
		if s != LE {
			nart++
		}
	}

	t := &tableau{
		m:        m,
		n:        n,
		nslack:   nslack,
		nart:     nart,
		ncols:    n + nslack + nart,
		rows:     make([][]float64, m),
		rhs:      make([]float64, m),
		basis:    make([]int, m),
		obj:      nil,
		tol:      tol,
		artStart: n + nslack,
	}
	flat := make([]float64, m*t.ncols)
	for i := range t.rows {
		t.rows[i] = flat[i*t.ncols : (i+1)*t.ncols]
	}

	slackCol := n
	artCol := t.artStart
	for i, c := range p.Cons {
		row := t.rows[i]
		sgn := 1.0
		if info[i].neg {
			sgn = -1.0
		}
		for _, term := range c.Terms {
			row[term.Var] += sgn * term.Coef
		}
		t.rhs[i] = sgn * c.RHS
		switch info[i].sense {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
	}

	// Phase-1 objective: minimize the sum of artificials. Price out the
	// initially-basic artificials: obj_j = -Σ_{rows with artificial basic} row_j.
	t.obj = make([]float64, t.ncols)
	for j := t.artStart; j < t.ncols; j++ {
		t.obj[j] = 1
	}
	for i := range t.rows {
		if t.basis[i] >= t.artStart {
			for j := 0; j < t.ncols; j++ {
				t.obj[j] -= t.rows[i][j]
			}
			t.objShif -= t.rhs[i]
		}
	}
	return t
}

// objVal returns the current objective value (in the minimizing direction).
func (t *tableau) objVal() float64 { return -t.objShif }

// setPhase2Objective installs the caller's objective (converted to
// minimization) and prices out the current basis.
func (t *tableau) setPhase2Objective(p *Problem) {
	for j := range t.obj {
		t.obj[j] = 0
	}
	t.objShif = 0
	sgn := 1.0
	if p.Maximize {
		sgn = -1.0
	}
	for j, c := range p.Obj {
		t.obj[j] = sgn * c
	}
	for i, bv := range t.basis {
		c := t.obj[bv]
		if c == 0 {
			continue
		}
		row := t.rows[i]
		for j := 0; j < t.ncols; j++ {
			t.obj[j] -= c * row[j]
		}
		t.obj[bv] = 0 // exact, avoids drift
		t.objShif -= c * t.rhs[i]
	}
	t.inPhase2 = true
}

// dropArtificials prepares the tableau for phase 2: artificial columns are
// barred from entering, and any artificial still basic (necessarily at zero
// level) is pivoted out onto a non-artificial column when possible. If a row
// has no eligible pivot the row is redundant and the artificial stays basic
// at zero, which is harmless.
func (t *tableau) dropArtificials() {
	for i := range t.basis {
		if t.basis[i] < t.artStart {
			continue
		}
		row := t.rows[i]
		pivotCol := -1
		for j := 0; j < t.artStart; j++ {
			if math.Abs(row[j]) > t.tol {
				pivotCol = j
				break
			}
		}
		if pivotCol >= 0 {
			t.pivot(i, pivotCol)
		}
	}
}

// iterate runs simplex pivots until optimality, unboundedness, or the
// iteration budget is reached. It starts with Dantzig pricing and falls back
// to Bland's rule after a long degenerate stall, which guarantees
// termination.
func (t *tableau) iterate(maxIter int) iterStatus {
	stall := 0
	bland := false
	const stallLimit = 200
	for {
		if t.iters >= maxIter {
			return iterLimit
		}
		col := t.chooseEntering(bland)
		if col < 0 {
			return optimal
		}
		row := t.chooseLeaving(col)
		if row < 0 {
			return unbounded
		}
		degenerate := t.rhs[row] <= t.tol
		t.pivot(row, col)
		t.iters++
		if degenerate {
			stall++
			if stall >= stallLimit {
				bland = true
			}
		} else {
			stall = 0
			bland = false
		}
	}
}

// chooseEntering returns the entering column, or -1 at optimality.
func (t *tableau) chooseEntering(bland bool) int {
	limit := t.ncols
	if t.inPhase2 {
		limit = t.artStart // artificials may not re-enter
	}
	if bland {
		for j := 0; j < limit; j++ {
			if t.obj[j] < -t.tol {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, -t.tol
	for j := 0; j < limit; j++ {
		if t.obj[j] < bestVal {
			bestVal = t.obj[j]
			best = j
		}
	}
	return best
}

// chooseLeaving runs the ratio test for the entering column, returning the
// pivot row or -1 if the column is unbounded. Ties break toward the smallest
// basis variable index (a lexicographic-ish guard against cycling).
func (t *tableau) chooseLeaving(col int) int {
	bestRow := -1
	bestRatio := math.Inf(1)
	for i := 0; i < t.m; i++ {
		a := t.rows[i][col]
		if a <= t.tol {
			continue
		}
		r := t.rhs[i] / a
		if r < bestRatio-t.tol || (r < bestRatio+t.tol && (bestRow < 0 || t.basis[i] < t.basis[bestRow])) {
			bestRatio = r
			bestRow = i
		}
	}
	return bestRow
}

// pivot makes column col basic in row prow.
func (t *tableau) pivot(prow, col int) {
	prowData := t.rows[prow]
	inv := 1 / prowData[col]
	for j := 0; j < t.ncols; j++ {
		prowData[j] *= inv
	}
	prowData[col] = 1 // exact
	t.rhs[prow] *= inv

	for i := 0; i < t.m; i++ {
		if i == prow {
			continue
		}
		f := t.rows[i][col]
		if f == 0 {
			continue
		}
		row := t.rows[i]
		for j := 0; j < t.ncols; j++ {
			row[j] -= f * prowData[j]
		}
		row[col] = 0 // exact
		t.rhs[i] -= f * t.rhs[prow]
		if t.rhs[i] < 0 && t.rhs[i] > -t.tol {
			t.rhs[i] = 0
		}
	}
	f := t.obj[col]
	if f != 0 {
		for j := 0; j < t.ncols; j++ {
			t.obj[j] -= f * prowData[j]
		}
		t.obj[col] = 0
		t.objShif -= f * t.rhs[prow]
	}
	t.basis[prow] = col
}
