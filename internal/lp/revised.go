package lp

import "math"

// Dense forces every solve through the dense tableau simplex, bypassing the
// sparse revised-simplex hot path. It is an escape hatch for debugging and
// for parity pinning in tests. The solver reads it once per solve; flip it
// only while no solves are in flight.
var Dense bool

// RevisedMinSize is the crossover at which the sparse revised simplex takes
// over from the dense tableau, measured as rows×columns of the normalized
// problem (slack and artificial columns included). Below it the dense
// tableau is used: on small problems its per-pivot row elimination is only a
// few thousand flops and its pivot arithmetic is the historical, bit-exact
// behavior the recorded serving goldens were captured under. Above it — the
// regime of multi-class fleet formulations, whose MILP subproblems carry
// thousands of rows — the revised path's sparse pricing wins by orders of
// magnitude. Set to 0 to force the revised path everywhere (tests do, to pin
// it against the dense solver on the full corpus).
var RevisedMinSize = 250_000

// The revised simplex keeps the constraint matrix in sparse column form and
// represents the basis inverse as a product of eta matrices (product-form
// inverse), one per pivot, each stored as a sparse column. Per iteration it
// prices by one BTRAN over the eta file plus sparse column dot products, and
// pivots by appending one eta — versus the dense tableau's O(m·ncols) row
// elimination. The allocator's formulations are wide and mostly zeros (a
// per-class capacity row touches only its class's replica columns, a
// prefix-consistency row only one path's flows), which keeps both the
// columns and the etas short.
//
// Column layout, row normalization (RHS ≥ 0, senses flipped), the initial
// slack/artificial basis, Dantzig pricing with the Bland fallback, and the
// smallest-basis-index ratio-test tie-break all mirror tableau.go, so the
// two solvers walk the same vertex sequence up to floating-point noise.
// Whenever the revised path has any doubt about its answer — unboundedness,
// an iteration-limit hit, or a final point that fails a feasibility re-check
// — it abandons the solve and SolveWS re-runs the dense tableau, so callers
// only ever observe a defensible solution.
type revised struct {
	m, n     int // constraint rows, structural variables
	nslack   int
	nart     int
	ncols    int
	artStart int
	tol      float64
	iters    int
	inPhase2 bool

	// Structural columns in compressed sparse column form. colPtr[j] is the
	// END of column j's entries; column j starts at colPtr[j-1] (0 for j=0).
	colPtr []int32
	colRow []int32
	colVal []float64
	// Slack and artificial columns are singletons, stored implicitly: slack
	// k lives in row slackRow[k] with coefficient slackSign[k]; artificial k
	// lives in row artRow[k] with coefficient +1.
	slackRow  []int32
	slackSign []float64
	artRow    []int32

	// Product-form inverse: B⁻¹ = E_k⁻¹·…·E_1⁻¹. Eta e pivots on row
	// etaRow[e] with pivot value etaPiv[e]; its off-pivot nonzeros live in
	// etaIdx/etaVal[etaPtr[e]:etaPtr[e+1]].
	etaRow []int32
	etaPiv []float64
	etaPtr []int32
	etaIdx []int32
	etaVal []float64

	xb    []float64 // current basic variable values (B⁻¹b)
	obj   []float64 // phase-2 structural costs (minimizing direction)
	y     []float64 // BTRAN scratch: y = c_B·B⁻¹
	d     []float64 // FTRAN scratch: d = B⁻¹·A_col
	basis []int     // basis[i] = column basic in row i
	inBas []bool    // per-column basic flag
}

// revisedBuffers holds the reusable working state of the revised simplex so
// repeated solves through one Workspace recycle allocations exactly like the
// dense tableau's buffers do.
type revisedBuffers struct {
	colPtr    []int32
	colRow    []int32
	colVal    []float64
	slackRow  []int32
	slackSign []float64
	artRow    []int32
	etaRow    []int32
	etaPiv    []float64
	etaPtr    []int32
	etaIdx    []int32
	etaVal    []float64
	xb        []float64
	obj       []float64
	y         []float64
	d         []float64
	basis     []int
	inBas     []bool
}

func growF64(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	b = b[:n]
	clear(b)
	return b
}

func growI32(b []int32, n int) []int32 {
	if cap(b) < n {
		return make([]int32, n)
	}
	b = b[:n]
	clear(b)
	return b
}

func growInt(b []int, n int) []int {
	if cap(b) < n {
		return make([]int, n)
	}
	return b[:n]
}

func growBool(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	clear(b)
	return b
}

// revisedEligible reports whether the normalized problem is large enough for
// the revised path (rows×columns ≥ RevisedMinSize).
func revisedEligible(p *Problem) bool {
	if RevisedMinSize <= 0 {
		return true
	}
	m := len(p.Cons)
	ncols := p.NumVars
	for _, c := range p.Cons {
		s := c.Sense
		if c.RHS < 0 {
			switch s {
			case LE:
				s = GE
			case GE:
				s = LE
			}
		}
		if s != EQ {
			ncols++
		}
		if s != LE {
			ncols++
		}
	}
	return m*ncols >= RevisedMinSize
}

// solveRevised attempts the problem with the revised simplex. ok=false means
// the caller should fall back to the dense tableau (numerical doubt or an
// outcome the revised path does not certify); the returned solution is only
// meaningful when ok is true.
func solveRevised(p *Problem, tol float64, maxIter int, ws *Workspace) (*Solution, bool) {
	m := len(p.Cons)
	var rb *revisedBuffers
	var info []rowInfo
	if ws != nil {
		rb = &ws.rev
		info = ws.rowInfos(m)
	} else {
		rb = &revisedBuffers{}
		info = make([]rowInfo, m)
	}
	r := newRevised(p, tol, rb, info)
	defer r.saveEtas(rb)
	if maxIter == 0 {
		maxIter = 200*(r.m+r.ncols) + 2000
	}

	// Phase 1: minimize the sum of artificial variables.
	if r.nart > 0 {
		st := r.iterate(maxIter)
		if st != optimal {
			// iterLimit (and the impossible phase-1 unbounded): let the
			// dense path have the final word.
			return nil, false
		}
		if r.phase1Objective() > 1e-7 {
			return &Solution{Status: Infeasible, Iters: r.iters}, true
		}
		r.dropArtificials()
	}

	// Phase 2: the real objective.
	r.setPhase2Objective(p)
	switch r.iterate(maxIter) {
	case iterLimit:
		return nil, false
	case unbounded:
		// Certifying unboundedness needs an exact ray; defer to dense.
		return nil, false
	}

	var x []float64
	if ws != nil {
		x = ws.solution(p.NumVars)
	} else {
		x = make([]float64, p.NumVars)
	}
	for i, bv := range r.basis {
		if bv < p.NumVars {
			x[bv] = r.xb[i]
		}
	}
	if !pointFeasible(p, x) {
		return nil, false
	}
	obj := 0.0
	for j, c := range p.Obj {
		obj += c * x[j]
	}
	return &Solution{Status: Optimal, X: x, Objective: obj, Iters: r.iters}, true
}

func newRevised(p *Problem, tol float64, rb *revisedBuffers, info []rowInfo) *revised {
	m := len(p.Cons)
	n := p.NumVars

	nslack, nart, nnz := 0, 0, 0
	for i, c := range p.Cons {
		s := c.Sense
		neg := c.RHS < 0
		if neg {
			switch s {
			case LE:
				s = GE
			case GE:
				s = LE
			}
		}
		info[i] = rowInfo{sense: s, neg: neg}
		if s != EQ {
			nslack++
		}
		if s != LE {
			nart++
		}
		nnz += len(c.Terms)
	}

	r := &revised{
		m: m, n: n,
		nslack:   nslack,
		nart:     nart,
		ncols:    n + nslack + nart,
		artStart: n + nslack,
		tol:      tol,
	}

	r.colPtr = growI32(rb.colPtr, n)
	r.colRow = growI32(rb.colRow, nnz)
	r.colVal = growF64(rb.colVal, nnz)
	r.slackRow = growI32(rb.slackRow, nslack)
	r.slackSign = growF64(rb.slackSign, nslack)
	r.artRow = growI32(rb.artRow, nart)
	r.xb = growF64(rb.xb, m)
	r.obj = growF64(rb.obj, n)
	r.y = growF64(rb.y, m)
	r.d = growF64(rb.d, m)
	r.basis = growInt(rb.basis, m)
	r.inBas = growBool(rb.inBas, r.ncols)
	r.etaRow = rb.etaRow[:0]
	r.etaPiv = rb.etaPiv[:0]
	r.etaPtr = append(rb.etaPtr[:0], 0)
	r.etaIdx = rb.etaIdx[:0]
	r.etaVal = rb.etaVal[:0]
	rb.colPtr, rb.colRow, rb.colVal = r.colPtr, r.colRow, r.colVal
	rb.slackRow, rb.slackSign, rb.artRow = r.slackRow, r.slackSign, r.artRow
	rb.xb, rb.obj, rb.y, rb.d = r.xb, r.obj, r.y, r.d
	rb.basis, rb.inBas = r.basis, r.inBas

	// CSC build: count entries per structural column, prefix-sum to starts,
	// fill (advancing each column's cursor), leaving colPtr[j] = end(j).
	for _, c := range p.Cons {
		for _, t := range c.Terms {
			r.colPtr[t.Var]++
		}
	}
	run := int32(0)
	for j := 0; j < n; j++ {
		cnt := r.colPtr[j]
		r.colPtr[j] = run
		run += cnt
	}
	for i, c := range p.Cons {
		sgn := 1.0
		if info[i].neg {
			sgn = -1.0
		}
		for _, t := range c.Terms {
			pos := r.colPtr[t.Var]
			r.colRow[pos] = int32(i)
			r.colVal[pos] = sgn * t.Coef
			r.colPtr[t.Var] = pos + 1
		}
	}

	// Initial basis: slack for LE rows, artificial for GE/EQ rows — all unit
	// columns in distinct rows, so B = I and xb = normalized b.
	si, ai := 0, 0
	for i, c := range p.Cons {
		sgn := 1.0
		if info[i].neg {
			sgn = -1.0
		}
		r.xb[i] = sgn * c.RHS
		switch info[i].sense {
		case LE:
			r.slackRow[si] = int32(i)
			r.slackSign[si] = 1
			r.basis[i] = n + si
			si++
		case GE:
			r.slackRow[si] = int32(i)
			r.slackSign[si] = -1
			si++
			r.artRow[ai] = int32(i)
			r.basis[i] = r.artStart + ai
			ai++
		case EQ:
			r.artRow[ai] = int32(i)
			r.basis[i] = r.artStart + ai
			ai++
		}
		r.inBas[r.basis[i]] = true
	}
	return r
}

// saveEtas writes the (appendable) eta slices back to the workspace buffers
// so their grown capacity is recycled by the next solve.
func (r *revised) saveEtas(rb *revisedBuffers) {
	rb.etaRow, rb.etaPiv, rb.etaPtr = r.etaRow, r.etaPiv, r.etaPtr
	rb.etaIdx, rb.etaVal = r.etaIdx, r.etaVal
}

// colStart returns the first CSC index of structural column j.
func (r *revised) colStart(j int) int32 {
	if j == 0 {
		return 0
	}
	return r.colPtr[j-1]
}

// costOf returns the current phase's cost of a column (minimizing direction).
func (r *revised) costOf(col int) float64 {
	if r.inPhase2 {
		if col < r.n {
			return r.obj[col]
		}
		return 0
	}
	if col >= r.artStart {
		return 1
	}
	return 0
}

// phase1Objective returns the current sum of artificial variable values.
func (r *revised) phase1Objective() float64 {
	s := 0.0
	for i, bv := range r.basis {
		if bv >= r.artStart {
			s += r.xb[i]
		}
	}
	return s
}

// setPhase2Objective installs the caller's objective converted to
// minimization. Reduced costs are priced freshly from y = c_B·B⁻¹ each
// iteration, so no basis price-out pass is needed here.
func (r *revised) setPhase2Objective(p *Problem) {
	sgn := 1.0
	if p.Maximize {
		sgn = -1.0
	}
	for j, c := range p.Obj {
		r.obj[j] = sgn * c
	}
	r.inPhase2 = true
}

// applyEtasT applies the eta-file transposes to y in place (newest to
// oldest): y ← y·B⁻¹ for a y seeded with basic-position values.
func (r *revised) applyEtasT(y []float64) {
	for e := len(r.etaRow) - 1; e >= 0; e-- {
		row := r.etaRow[e]
		s := 0.0
		for k := r.etaPtr[e]; k < r.etaPtr[e+1]; k++ {
			s += r.etaVal[k] * y[r.etaIdx[k]]
		}
		y[row] = (y[row] - s) / r.etaPiv[e]
	}
}

// applyEtas applies the eta file to a column vector v in place (oldest to
// newest): v ← B⁻¹·v for a v seeded with the original column. Etas whose
// pivot position is zero in v are skipped — they cannot change it.
func (r *revised) applyEtas(v []float64) {
	for e := 0; e < len(r.etaRow); e++ {
		row := r.etaRow[e]
		vr := v[row]
		if vr == 0 {
			continue
		}
		vr /= r.etaPiv[e]
		v[row] = vr
		for k := r.etaPtr[e]; k < r.etaPtr[e+1]; k++ {
			v[r.etaIdx[k]] -= r.etaVal[k] * vr
		}
	}
}

// btran computes y = c_B·B⁻¹ for the current phase's costs.
func (r *revised) btran() {
	clear(r.y)
	for k := 0; k < r.m; k++ {
		if c := r.costOf(r.basis[k]); c != 0 {
			r.y[k] = c
		}
	}
	r.applyEtasT(r.y)
}

// reduced returns the reduced cost of a nonbasic column under the current y.
func (r *revised) reduced(j int) float64 {
	switch {
	case j < r.n:
		c := 0.0
		if r.inPhase2 {
			c = r.obj[j]
		}
		s := 0.0
		for k := r.colStart(j); k < r.colPtr[j]; k++ {
			s += r.colVal[k] * r.y[r.colRow[k]]
		}
		return c - s
	case j < r.artStart:
		k := j - r.n
		return -r.slackSign[k] * r.y[r.slackRow[k]]
	default:
		return 1 - r.y[r.artRow[j-r.artStart]]
	}
}

// chooseEntering mirrors the tableau's pricing: Dantzig most-negative (first
// index wins ties) or Bland first-negative, over structural and slack columns
// only once phase 2 bars the artificials. Basic columns are skipped — their
// reduced cost is exactly zero in the tableau, and skipping avoids selecting
// one through floating-point noise here.
func (r *revised) chooseEntering(bland bool) int {
	limit := r.ncols
	if r.inPhase2 {
		limit = r.artStart
	}
	r.btran()
	if bland {
		for j := 0; j < limit; j++ {
			if r.inBas[j] {
				continue
			}
			if r.reduced(j) < -r.tol {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, -r.tol
	for j := 0; j < limit; j++ {
		if r.inBas[j] {
			continue
		}
		if rc := r.reduced(j); rc < bestVal {
			bestVal = rc
			best = j
		}
	}
	return best
}

// ftran computes d = B⁻¹·A_col into r.d.
func (r *revised) ftran(col int) {
	clear(r.d)
	switch {
	case col < r.n:
		for k := r.colStart(col); k < r.colPtr[col]; k++ {
			r.d[r.colRow[k]] += r.colVal[k]
		}
	case col < r.artStart:
		k := col - r.n
		r.d[r.slackRow[k]] = r.slackSign[k]
	default:
		r.d[r.artRow[col-r.artStart]] = 1
	}
	r.applyEtas(r.d)
}

// chooseLeaving runs the ratio test over the FTRAN'd column, with the same
// smallest-basis-index tie-break as the tableau.
func (r *revised) chooseLeaving() int {
	bestRow := -1
	bestRatio := math.Inf(1)
	for i := 0; i < r.m; i++ {
		a := r.d[i]
		if a <= r.tol {
			continue
		}
		ratio := r.xb[i] / a
		if ratio < bestRatio-r.tol || (ratio < bestRatio+r.tol && (bestRow < 0 || r.basis[i] < r.basis[bestRow])) {
			bestRatio = ratio
			bestRow = i
		}
	}
	return bestRow
}

// pivotUpdate makes column col basic in row prow: the FTRAN'd column in r.d
// becomes one more eta of the product-form inverse, and xb is updated by the
// same elimination the tableau applies to its RHS column.
func (r *revised) pivotUpdate(prow, col int) {
	piv := r.d[prow]
	r.etaRow = append(r.etaRow, int32(prow))
	r.etaPiv = append(r.etaPiv, piv)
	xr := r.xb[prow] / piv
	r.xb[prow] = xr
	for i, di := range r.d {
		if di == 0 || i == prow {
			continue
		}
		r.etaIdx = append(r.etaIdx, int32(i))
		r.etaVal = append(r.etaVal, di)
		r.xb[i] -= di * xr
		if r.xb[i] < 0 && r.xb[i] > -r.tol {
			r.xb[i] = 0
		}
	}
	r.etaPtr = append(r.etaPtr, int32(len(r.etaIdx)))
	r.inBas[r.basis[prow]] = false
	r.basis[prow] = col
	r.inBas[col] = true
}

// dropArtificials pivots still-basic artificials (at zero level) out onto the
// first non-artificial column with a nonzero entry in their row, exactly as
// the tableau does before phase 2; redundant rows keep their artificial.
func (r *revised) dropArtificials() {
	for i := 0; i < r.m; i++ {
		if r.basis[i] < r.artStart {
			continue
		}
		// Row i of B⁻¹, via a BTRAN of the unit vector.
		rowi := r.y
		clear(rowi)
		rowi[i] = 1
		r.applyEtasT(rowi)
		pivCol := -1
		for j := 0; j < r.artStart; j++ {
			if r.inBas[j] {
				continue
			}
			v := 0.0
			if j < r.n {
				for k := r.colStart(j); k < r.colPtr[j]; k++ {
					v += r.colVal[k] * rowi[r.colRow[k]]
				}
			} else {
				k := j - r.n
				v = r.slackSign[k] * rowi[r.slackRow[k]]
			}
			if math.Abs(v) > r.tol {
				pivCol = j
				break
			}
		}
		if pivCol >= 0 {
			r.ftran(pivCol)
			r.pivotUpdate(i, pivCol)
		}
	}
}

// iterate runs pivots until optimality, unboundedness, or the iteration
// budget, with the tableau's exact Dantzig→Bland degeneracy escalation.
func (r *revised) iterate(maxIter int) iterStatus {
	stall := 0
	bland := false
	const stallLimit = 200
	for {
		if r.iters >= maxIter {
			return iterLimit
		}
		col := r.chooseEntering(bland)
		if col < 0 {
			return optimal
		}
		r.ftran(col)
		row := r.chooseLeaving()
		if row < 0 {
			return unbounded
		}
		degenerate := r.xb[row] <= r.tol
		r.pivotUpdate(row, col)
		r.iters++
		if degenerate {
			stall++
			if stall >= stallLimit {
				bland = true
			}
		} else {
			stall = 0
			bland = false
		}
	}
}

// pointFeasible re-checks the candidate optimum against the original
// constraints — the revised path's safety net against product-form drift.
// A point that fails here sends the solve back through the dense tableau.
func pointFeasible(p *Problem, x []float64) bool {
	for _, xi := range x {
		if xi < -1e-6 {
			return false
		}
	}
	for _, c := range p.Cons {
		v := 0.0
		for _, t := range c.Terms {
			v += t.Coef * x[t.Var]
		}
		tol := 1e-6 * (1 + math.Abs(c.RHS))
		switch c.Sense {
		case LE:
			if v > c.RHS+tol {
				return false
			}
		case GE:
			if v < c.RHS-tol {
				return false
			}
		case EQ:
			if math.Abs(v-c.RHS) > tol {
				return false
			}
		}
	}
	return true
}
