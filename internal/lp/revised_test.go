package lp

import (
	"math"
	"math/rand"
	"testing"
)

// withDense runs f with the Dense escape hatch forced on, restoring it after.
func withDense(t *testing.T, f func()) {
	t.Helper()
	old := Dense
	Dense = true
	defer func() { Dense = old }()
	f()
}

// forceRevised drops the size crossover for the duration of the test so the
// revised path handles every problem, however small.
func forceRevised(t *testing.T) {
	t.Helper()
	old := RevisedMinSize
	RevisedMinSize = 0
	t.Cleanup(func() { RevisedMinSize = old })
}

// corpusProblems rebuilds the package's fixed test corpus: every hand-written
// problem from lp_test.go, spanning LE/GE/EQ rows, negative RHS
// normalization, degeneracy, redundancy, infeasibility, and unboundedness.
func corpusProblems() map[string]*Problem {
	out := map[string]*Problem{}

	p := NewProblem(2)
	p.Maximize = true
	p.Obj = []float64{3, 2}
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 4)
	p.AddConstraint([]Term{{0, 1}, {1, 3}}, LE, 6)
	out["max-two-vars"] = p

	p = NewProblem(2)
	p.Obj = []float64{0.6, 1}
	p.AddConstraint([]Term{{0, 10}, {1, 4}}, GE, 20)
	p.AddConstraint([]Term{{0, 5}, {1, 5}}, GE, 20)
	p.AddConstraint([]Term{{0, 2}, {1, 6}}, GE, 12)
	out["diet-ge"] = p

	p = NewProblem(2)
	p.Maximize = true
	p.Obj = []float64{1, 2}
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 3)
	p.AddConstraint([]Term{{0, 1}}, LE, 2)
	out["equality"] = p

	p = NewProblem(1)
	p.Obj = []float64{1}
	p.AddConstraint([]Term{{0, 1}}, GE, 5)
	p.AddConstraint([]Term{{0, 1}}, LE, 3)
	out["infeasible"] = p

	p = NewProblem(2)
	p.Maximize = true
	p.Obj = []float64{1, 1}
	p.AddConstraint([]Term{{0, 1}, {1, -1}}, LE, 1)
	out["unbounded"] = p

	p = NewProblem(2)
	p.Obj = []float64{0, 1}
	p.AddConstraint([]Term{{0, 1}, {1, -1}}, LE, -1)
	out["neg-rhs-le"] = p

	p = NewProblem(2)
	p.Obj = []float64{1, 1}
	p.AddConstraint([]Term{{0, 1}, {1, -1}}, EQ, -2)
	out["neg-rhs-eq"] = p

	p = NewProblem(1)
	p.Maximize = true
	p.Obj = []float64{1}
	p.AddConstraint([]Term{{0, 1}, {0, 2}}, LE, 6)
	out["duplicate-terms"] = p

	p = NewProblem(4)
	p.Obj = []float64{-0.75, 150, -0.02, 6}
	p.AddConstraint([]Term{{0, 0.25}, {1, -60}, {2, -0.04}, {3, 9}}, LE, 0)
	p.AddConstraint([]Term{{0, 0.5}, {1, -90}, {2, -0.02}, {3, 3}}, LE, 0)
	p.AddConstraint([]Term{{2, 1}}, LE, 1)
	out["beale"] = p

	p = NewProblem(2)
	p.Maximize = true
	p.Obj = []float64{1, 1}
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 2)
	p.AddConstraint([]Term{{0, 2}, {1, 2}}, EQ, 4)
	out["redundant-eq"] = p

	p = NewProblem(0)
	out["zero-vars"] = p

	return out
}

// checkParity solves p with the revised path (default) and the dense tableau
// (hatch on) and requires identical statuses and matching objectives.
func checkParity(t *testing.T, name string, p *Problem) {
	t.Helper()
	fast, err := Solve(p)
	if err != nil {
		t.Fatalf("%s: revised solve: %v", name, err)
	}
	var dense *Solution
	withDense(t, func() {
		dense, err = Solve(p)
	})
	if err != nil {
		t.Fatalf("%s: dense solve: %v", name, err)
	}
	if fast.Status != dense.Status {
		t.Fatalf("%s: status revised=%v dense=%v", name, fast.Status, dense.Status)
	}
	if fast.Status == Optimal {
		if diff := math.Abs(fast.Objective - dense.Objective); diff > 1e-6*(1+math.Abs(dense.Objective)) {
			t.Fatalf("%s: objective revised=%g dense=%g", name, fast.Objective, dense.Objective)
		}
		for i, c := range p.Cons {
			v := 0.0
			for _, tm := range c.Terms {
				v += tm.Coef * fast.X[tm.Var]
			}
			ok := true
			switch c.Sense {
			case LE:
				ok = v <= c.RHS+1e-6
			case GE:
				ok = v >= c.RHS-1e-6
			case EQ:
				ok = math.Abs(v-c.RHS) <= 1e-6
			}
			if !ok {
				t.Fatalf("%s: revised point violates constraint %d: %g %v %g", name, i, v, c.Sense, c.RHS)
			}
		}
	}
}

// TestRevisedMatchesDenseCorpus pins the revised simplex to the dense
// tableau's status and optimal objective on the fixed corpus.
func TestRevisedMatchesDenseCorpus(t *testing.T) {
	forceRevised(t)
	for name, p := range corpusProblems() {
		checkParity(t, name, p)
	}
}

// TestRevisedMatchesDenseRandom cross-checks revised vs dense on the same
// style of random problems the brute-force test uses, but larger: up to 8
// variables and 12 constraints of every sense, with negative RHS mixed in.
func TestRevisedMatchesDenseRandom(t *testing.T) {
	forceRevised(t)
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		p := NewProblem(n)
		p.Maximize = rng.Intn(2) == 0
		p.Obj = make([]float64, n)
		for j := range p.Obj {
			p.Obj[j] = float64(rng.Intn(11) - 5)
		}
		for j := 0; j < n; j++ {
			p.AddConstraint([]Term{{j, 1}}, LE, float64(1+rng.Intn(10)))
		}
		extra := rng.Intn(5)
		for i := 0; i < extra; i++ {
			terms := make([]Term, 0, n)
			for j := 0; j < n; j++ {
				if c := rng.Intn(7) - 3; c != 0 {
					terms = append(terms, Term{j, float64(c)})
				}
			}
			if len(terms) == 0 {
				continue
			}
			p.AddConstraint(terms, Sense(rng.Intn(3)), float64(rng.Intn(15)-3))
		}
		checkParity(t, "seed", p)
	}
}

// TestRevisedWorkspaceReuse verifies that solving a shape-shifting sequence
// of problems through one shared Workspace yields the same results as fresh
// solves — the buffer-recycling contract of the revised path.
func TestRevisedWorkspaceReuse(t *testing.T) {
	forceRevised(t)
	ws := &Workspace{}
	names := []string{"max-two-vars", "diet-ge", "beale", "equality", "redundant-eq", "neg-rhs-le", "max-two-vars"}
	corpus := corpusProblems()
	for _, name := range names {
		p := corpus[name]
		fresh, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		shared, err := SolveWS(p, Options{}, ws)
		if err != nil {
			t.Fatal(err)
		}
		if fresh.Status != shared.Status || math.Abs(fresh.Objective-shared.Objective) > 1e-9 {
			t.Fatalf("%s: workspace solve diverged: %+v vs %+v", name, shared, fresh)
		}
		for j := range fresh.X {
			if fresh.X[j] != shared.X[j] {
				t.Fatalf("%s: X[%d] workspace=%g fresh=%g", name, j, shared.X[j], fresh.X[j])
			}
		}
	}
}

// TestDenseHatch verifies the escape hatches actually reroute the solve:
// with Dense set (or the problem below the size crossover) the revised
// buffers stay untouched.
func TestDenseHatch(t *testing.T) {
	p := corpusProblems()["diet-ge"]

	ws := &Workspace{}
	forceRevised(t)
	withDense(t, func() {
		if _, err := SolveWS(p, Options{}, ws); err != nil {
			t.Fatal(err)
		}
	})
	if ws.rev.xb != nil {
		t.Fatal("Dense hatch still exercised the revised path")
	}

	// Below the crossover (restored default), small problems go dense too.
	ws2 := &Workspace{}
	old := RevisedMinSize
	RevisedMinSize = 1 << 30
	if _, err := SolveWS(p, Options{}, ws2); err != nil {
		RevisedMinSize = old
		t.Fatal(err)
	}
	RevisedMinSize = old
	if ws2.rev.xb != nil {
		t.Fatal("sub-crossover problem still exercised the revised path")
	}

	if _, err := SolveWS(p, Options{}, ws); err != nil {
		t.Fatal(err)
	}
	if ws.rev.xb == nil {
		t.Fatal("default path did not exercise the revised solver")
	}
}
