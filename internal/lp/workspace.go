package lp

// Workspace holds the reusable buffers of a tableau so that repeated solves
// (the MILP layer solves one LP relaxation per branch-and-bound node) do not
// re-allocate the dense working state every time. The zero value is ready to
// use; buffers grow to the high-water mark of the problems solved through it
// and are then reused.
//
// A Workspace may be reused across problems of different shapes but must not
// be shared by concurrent solves.
type Workspace struct {
	flat  []float64
	rows  [][]float64
	rhs   []float64
	basis []int
	obj   []float64
	info  []rowInfo
	sol   []float64
	rev   revisedBuffers
}

// grow returns buffers sized for m rows and ncols columns, zeroing exactly
// the region a fresh allocation would have zeroed.
func (w *Workspace) grow(m, ncols, nvars int) (flat []float64, rows [][]float64, rhs []float64, basis []int, obj []float64) {
	need := m * ncols
	if cap(w.flat) < need {
		w.flat = make([]float64, need)
	} else {
		w.flat = w.flat[:need]
		clear(w.flat)
	}
	if cap(w.rows) < m {
		w.rows = make([][]float64, m)
	} else {
		w.rows = w.rows[:m]
	}
	if cap(w.rhs) < m {
		w.rhs = make([]float64, m)
		w.basis = make([]int, m)
	} else {
		w.rhs = w.rhs[:m]
		clear(w.rhs)
		w.basis = w.basis[:m]
	}
	if cap(w.obj) < ncols {
		w.obj = make([]float64, ncols)
	} else {
		w.obj = w.obj[:ncols]
		clear(w.obj)
	}
	return w.flat, w.rows, w.rhs, w.basis, w.obj
}

// rowInfos returns a scratch slice for per-row sense normalization.
func (w *Workspace) rowInfos(m int) []rowInfo {
	if cap(w.info) < m {
		w.info = make([]rowInfo, m)
	}
	return w.info[:m]
}

// solution returns a zeroed primal-solution buffer of length n. The buffer
// is owned by the Workspace: it is only valid until the next solve through
// the same Workspace, so callers that keep a solution must copy X.
func (w *Workspace) solution(n int) []float64 {
	if cap(w.sol) < n {
		w.sol = make([]float64, n)
	}
	s := w.sol[:n]
	clear(s)
	return s
}
