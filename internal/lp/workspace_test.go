package lp

import (
	"math/rand"
	"testing"
)

// randomProblem builds a feasible-ish random LP with mixed senses.
func randomProblem(rng *rand.Rand, n, m int) *Problem {
	p := NewProblem(n)
	p.Maximize = rng.Intn(2) == 0
	for j := 0; j < n; j++ {
		p.Obj[j] = rng.Float64()*4 - 2
	}
	for i := 0; i < m; i++ {
		terms := make([]Term, 0, 3)
		for k := 0; k < 3; k++ {
			terms = append(terms, Term{Var: rng.Intn(n), Coef: rng.Float64()*2 - 0.5})
		}
		sense := Sense(rng.Intn(3))
		rhs := rng.Float64() * 10
		if sense == GE {
			rhs = rng.Float64() // keep GE rows satisfiable
		}
		p.AddConstraint(terms, sense, rhs)
	}
	// A box keeps everything bounded so maximization cannot run away.
	for j := 0; j < n; j++ {
		p.AddConstraint([]Term{{Var: j, Coef: 1}}, LE, 50)
	}
	return p
}

// TestWorkspaceSolvesBitIdentical checks that solving through a shared
// Workspace — including a workspace previously used on differently-shaped
// problems — reproduces the fresh-allocation solver bit for bit: same
// status, same pivots, same objective, same primal point.
func TestWorkspaceSolvesBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ws := &Workspace{}
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(10)
		m := 1 + rng.Intn(8)
		p := randomProblem(rng, n, m)

		fresh, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		reused, err := SolveWS(p, Options{}, ws)
		if err != nil {
			t.Fatal(err)
		}
		if fresh.Status != reused.Status || fresh.Iters != reused.Iters {
			t.Fatalf("trial %d: status/iters diverged: fresh %v/%d, ws %v/%d",
				trial, fresh.Status, fresh.Iters, reused.Status, reused.Iters)
		}
		if fresh.Status != Optimal {
			continue
		}
		if fresh.Objective != reused.Objective {
			t.Fatalf("trial %d: objective diverged: %v vs %v", trial, fresh.Objective, reused.Objective)
		}
		for j := range fresh.X {
			if fresh.X[j] != reused.X[j] {
				t.Fatalf("trial %d: x[%d] diverged: %v vs %v", trial, j, fresh.X[j], reused.X[j])
			}
		}
	}
}

// TestWorkspaceSolutionIsOwned documents the aliasing contract: the X of a
// workspace solve is only valid until the next solve through the same
// workspace.
func TestWorkspaceSolutionIsOwned(t *testing.T) {
	p := NewProblem(1)
	p.Maximize = true
	p.Obj = []float64{1}
	p.AddConstraint([]Term{{Var: 0, Coef: 1}}, LE, 3)

	ws := &Workspace{}
	s1, err := SolveWS(p, Options{}, ws)
	if err != nil {
		t.Fatal(err)
	}
	keep := append([]float64(nil), s1.X...)

	q := NewProblem(1)
	q.Maximize = true
	q.Obj = []float64{1}
	q.AddConstraint([]Term{{Var: 0, Coef: 1}}, LE, 7)
	if _, err := SolveWS(q, Options{}, ws); err != nil {
		t.Fatal(err)
	}
	if keep[0] != 3 {
		t.Fatalf("copied solution changed: %v", keep)
	}
	if s1.X[0] == 3 {
		t.Fatalf("expected s1.X to be clobbered by the second solve (got %v); the ownership contract is load-bearing", s1.X)
	}
}

// TestWorkspaceSteadyStateAllocs checks the point of the workspace: repeat
// solves of the same problem shape allocate almost nothing (only the
// Solution header).
func TestWorkspaceSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomProblem(rng, 12, 8)
	ws := &Workspace{}
	if _, err := SolveWS(p, Options{}, ws); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := SolveWS(p, Options{}, ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Fatalf("steady-state solve allocates %v objects per run, want ≤ 4", allocs)
	}
}
