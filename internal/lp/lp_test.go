package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOrDie(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func wantOptimal(t *testing.T, p *Problem, wantObj float64) *Solution {
	t.Helper()
	s := solveOrDie(t, p)
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if math.Abs(s.Objective-wantObj) > 1e-6 {
		t.Fatalf("objective = %g, want %g (x=%v)", s.Objective, wantObj, s.X)
	}
	return s
}

func TestMaximizeTwoVars(t *testing.T) {
	// max 3x + 2y s.t. x+y <= 4, x+3y <= 6 → x=4, y=0, obj 12.
	p := NewProblem(2)
	p.Maximize = true
	p.Obj = []float64{3, 2}
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 4)
	p.AddConstraint([]Term{{0, 1}, {1, 3}}, LE, 6)
	s := wantOptimal(t, p, 12)
	if math.Abs(s.X[0]-4) > 1e-7 || math.Abs(s.X[1]) > 1e-7 {
		t.Fatalf("x = %v, want [4 0]", s.X)
	}
}

func TestMinimizeWithGE(t *testing.T) {
	// Classic diet-style LP:
	// min 0.6x + y s.t. 10x + 4y >= 20, 5x + 5y >= 20, 2x + 6y >= 12 →
	// binding at 5x+5y=20 and 2x+6y=12: x=3, y=1; obj = 2.8.
	p := NewProblem(2)
	p.Obj = []float64{0.6, 1}
	p.AddConstraint([]Term{{0, 10}, {1, 4}}, GE, 20)
	p.AddConstraint([]Term{{0, 5}, {1, 5}}, GE, 20)
	p.AddConstraint([]Term{{0, 2}, {1, 6}}, GE, 12)
	wantOptimal(t, p, 2.8)
}

func TestEqualityConstraint(t *testing.T) {
	// max x + 2y s.t. x + y = 3, x <= 2 → y=3 is best: x=0,y=3, obj 6.
	p := NewProblem(2)
	p.Maximize = true
	p.Obj = []float64{1, 2}
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 3)
	p.AddConstraint([]Term{{0, 1}}, LE, 2)
	s := wantOptimal(t, p, 6)
	if math.Abs(s.X[0]) > 1e-7 || math.Abs(s.X[1]-3) > 1e-7 {
		t.Fatalf("x = %v, want [0 3]", s.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.Obj = []float64{1}
	p.AddConstraint([]Term{{0, 1}}, GE, 5)
	p.AddConstraint([]Term{{0, 1}}, LE, 3)
	s := solveOrDie(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(2)
	p.Maximize = true
	p.Obj = []float64{1, 1}
	p.AddConstraint([]Term{{0, 1}, {1, -1}}, LE, 1)
	s := solveOrDie(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x - y <= -1 with x,y >= 0 means y >= x + 1.
	// min y s.t. x - y <= -1 → x=0, y=1.
	p := NewProblem(2)
	p.Obj = []float64{0, 1}
	p.AddConstraint([]Term{{0, 1}, {1, -1}}, LE, -1)
	s := wantOptimal(t, p, 1)
	if math.Abs(s.X[1]-1) > 1e-7 {
		t.Fatalf("x = %v, want y=1", s.X)
	}
}

func TestNegativeRHSEquality(t *testing.T) {
	// x - y = -2 → y = x + 2; min x + y → x=0, y=2, obj 2.
	p := NewProblem(2)
	p.Obj = []float64{1, 1}
	p.AddConstraint([]Term{{0, 1}, {1, -1}}, EQ, -2)
	wantOptimal(t, p, 2)
}

func TestDuplicateTermsAreSummed(t *testing.T) {
	// (1+2)x <= 6 → x <= 2; max x → 2.
	p := NewProblem(1)
	p.Maximize = true
	p.Obj = []float64{1}
	p.AddConstraint([]Term{{0, 1}, {0, 2}}, LE, 6)
	wantOptimal(t, p, 2)
}

func TestBealeDegeneracyTerminates(t *testing.T) {
	// Beale's classic cycling example. Must terminate (Bland fallback) at
	// the known optimum: min -0.75x1 + 150x2 - 0.02x3 + 6x4 → obj -0.05.
	p := NewProblem(4)
	p.Obj = []float64{-0.75, 150, -0.02, 6}
	p.AddConstraint([]Term{{0, 0.25}, {1, -60}, {2, -0.04}, {3, 9}}, LE, 0)
	p.AddConstraint([]Term{{0, 0.5}, {1, -90}, {2, -0.02}, {3, 3}}, LE, 0)
	p.AddConstraint([]Term{{2, 1}}, LE, 1)
	wantOptimal(t, p, -0.05)
}

func TestRedundantEqualityRows(t *testing.T) {
	// Two copies of the same equality: phase 1 must cope with the
	// redundant artificial row.
	p := NewProblem(2)
	p.Maximize = true
	p.Obj = []float64{1, 1}
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 2)
	p.AddConstraint([]Term{{0, 2}, {1, 2}}, EQ, 4)
	wantOptimal(t, p, 2)
}

func TestZeroVariableProblem(t *testing.T) {
	p := NewProblem(0)
	s := solveOrDie(t, p)
	if s.Status != Optimal || s.Objective != 0 {
		t.Fatalf("got %+v, want trivially optimal 0", s)
	}
}

func TestValidateRejectsBadVarIndex(t *testing.T) {
	p := NewProblem(1)
	p.AddConstraint([]Term{{3, 1}}, LE, 1)
	if _, err := Solve(p); err == nil {
		t.Fatal("want error for out-of-range variable")
	}
}

func TestValidateRejectsNaN(t *testing.T) {
	p := NewProblem(1)
	p.AddConstraint([]Term{{0, math.NaN()}}, LE, 1)
	if _, err := Solve(p); err == nil {
		t.Fatal("want error for NaN coefficient")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	p := NewProblem(1)
	p.Maximize = true
	p.Obj = []float64{1}
	p.AddConstraint([]Term{{0, 1}}, LE, 5)
	q := p.Clone()
	q.AddConstraint([]Term{{0, 1}}, LE, 2)
	sp := wantOptimal(t, p, 5)
	sq := wantOptimal(t, q, 2)
	_ = sp
	_ = sq
	if len(p.Cons) != 1 {
		t.Fatalf("clone leaked a constraint into the original: %d rows", len(p.Cons))
	}
}

// bruteForce finds the optimum of a bounded LP by enumerating basic
// solutions: every subset of n constraints (including the implicit x ≥ 0
// planes) is intersected and checked for feasibility.
type plane struct {
	a   []float64
	rhs float64
}

func bruteForce(p *Problem) (float64, bool) {
	n := p.NumVars
	var planes []plane
	for _, c := range p.Cons {
		a := make([]float64, n)
		for _, t := range c.Terms {
			a[t.Var] += t.Coef
		}
		planes = append(planes, plane{a, c.RHS})
	}
	for j := 0; j < n; j++ {
		a := make([]float64, n)
		a[j] = 1
		planes = append(planes, plane{a, 0})
	}

	feasible := func(x []float64) bool {
		for j := 0; j < n; j++ {
			if x[j] < -1e-7 {
				return false
			}
		}
		for i, c := range p.Cons {
			v := 0.0
			for j := 0; j < n; j++ {
				v += planes[i].a[j] * x[j]
			}
			switch c.Sense {
			case LE:
				if v > c.RHS+1e-7 {
					return false
				}
			case GE:
				if v < c.RHS-1e-7 {
					return false
				}
			case EQ:
				if math.Abs(v-c.RHS) > 1e-7 {
					return false
				}
			}
		}
		return true
	}

	best := math.Inf(-1)
	if !p.Maximize {
		best = math.Inf(1)
	}
	found := false

	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			x, ok := solveSquare(planes, idx, n)
			if !ok || !feasible(x) {
				return
			}
			obj := 0.0
			for j := 0; j < n; j++ {
				obj += p.Obj[j] * x[j]
			}
			found = true
			if p.Maximize {
				if obj > best {
					best = obj
				}
			} else if obj < best {
				best = obj
			}
			return
		}
		for i := start; i < len(planes); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best, found
}

// solveSquare solves the n×n system formed by the selected planes via
// Gaussian elimination with partial pivoting.
func solveSquare(planes []plane, idx []int, n int) ([]float64, bool) {
	a := make([][]float64, n)
	b := make([]float64, n)
	for r := 0; r < n; r++ {
		a[r] = append([]float64(nil), planes[idx[r]].a...)
		b[r] = planes[idx[r]].rhs
	}
	for col := 0; col < n; col++ {
		piv, pv := -1, 1e-9
		for r := col; r < n; r++ {
			if v := math.Abs(a[r][col]); v > pv {
				piv, pv = r, v
			}
		}
		if piv < 0 {
			return nil, false
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		inv := 1 / a[col][col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a[r][j] -= f * a[col][j]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		x[j] = b[j] / a[j][j]
	}
	return x, true
}

// TestAgainstBruteForce cross-checks the simplex against exhaustive vertex
// enumeration on random small, box-bounded problems.
func TestAgainstBruteForce(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(2) // 2 or 3 vars
		p := NewProblem(n)
		p.Maximize = rng.Intn(2) == 0
		p.Obj = make([]float64, n)
		for j := range p.Obj {
			p.Obj[j] = float64(rng.Intn(11) - 5)
		}
		// Box constraints guarantee boundedness.
		for j := 0; j < n; j++ {
			p.AddConstraint([]Term{{j, 1}}, LE, float64(1+rng.Intn(10)))
		}
		extra := rng.Intn(4)
		for i := 0; i < extra; i++ {
			terms := make([]Term, 0, n)
			for j := 0; j < n; j++ {
				if c := rng.Intn(7) - 3; c != 0 {
					terms = append(terms, Term{j, float64(c)})
				}
			}
			if len(terms) == 0 {
				continue
			}
			sense := Sense(rng.Intn(3))
			rhs := float64(rng.Intn(15) - 3)
			p.AddConstraint(terms, sense, rhs)
		}

		s, err := Solve(p)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want, found := bruteForce(p)
		switch s.Status {
		case Optimal:
			if !found {
				t.Logf("seed %d: simplex optimal %g but brute force found nothing", seed, s.Objective)
				return false
			}
			if math.Abs(s.Objective-want) > 1e-5 {
				t.Logf("seed %d: simplex %g vs brute force %g", seed, s.Objective, want)
				return false
			}
			// Verify primal feasibility of the returned point.
			for i, c := range p.Cons {
				v := 0.0
				for _, tm := range c.Terms {
					v += tm.Coef * s.X[tm.Var]
				}
				ok := true
				switch c.Sense {
				case LE:
					ok = v <= c.RHS+1e-6
				case GE:
					ok = v >= c.RHS-1e-6
				case EQ:
					ok = math.Abs(v-c.RHS) <= 1e-6
				}
				if !ok {
					t.Logf("seed %d: constraint %d violated: %g %v %g", seed, i, v, c.Sense, c.RHS)
					return false
				}
			}
		case Infeasible:
			if found {
				t.Logf("seed %d: simplex says infeasible but brute force found %g", seed, want)
				return false
			}
		case Unbounded:
			t.Logf("seed %d: unexpected unbounded on box-bounded problem", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSimplexMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n, m := 120, 60
	p := NewProblem(n)
	p.Maximize = true
	p.Obj = make([]float64, n)
	for j := range p.Obj {
		p.Obj[j] = rng.Float64()
	}
	for i := 0; i < m; i++ {
		terms := make([]Term, 0, n/4)
		for j := 0; j < n; j++ {
			if rng.Intn(4) == 0 {
				terms = append(terms, Term{j, rng.Float64()})
			}
		}
		p.AddConstraint(terms, LE, 5+10*rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
