package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var e Engine
	var got []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.RunAll()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %g, want 5", e.Now())
	}
}

func TestSimultaneousEventsAreFIFO(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1, func() { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", got)
		}
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	var e Engine
	fired := 0
	e.At(1, func() { fired++ })
	e.At(10, func() { fired++ })
	e.Run(5)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %g, want horizon 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	var e Engine
	var at float64
	e.At(2, func() {
		e.After(3, func() { at = e.Now() })
	})
	e.RunAll()
	if at != 5 {
		t.Fatalf("nested event at %g, want 5", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var e Engine
	e.At(10, func() {})
	e.Run(100)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on past scheduling")
		}
	}()
	e.At(1, func() {})
}

func TestStopHaltsRun(t *testing.T) {
	var e Engine
	fired := 0
	e.At(1, func() { fired++; e.Stop() })
	e.At(2, func() { fired++ })
	e.RunAll()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 after Stop", fired)
	}
}

func TestEventsDuringRunAreExecuted(t *testing.T) {
	var e Engine
	count := 0
	var chainFn func()
	chainFn = func() {
		count++
		if count < 100 {
			e.After(0.5, chainFn)
		}
	}
	e.At(0, chainFn)
	e.RunAll()
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
}

// TestCausalOrderProperty schedules random event times and checks execution
// never observes a decreasing clock.
func TestCausalOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var e Engine
		ok := true
		last := -1.0
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			at := rng.Float64() * 100
			e.At(at, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
				// Occasionally schedule follow-ups.
				if rng.Intn(4) == 0 {
					e.After(rng.Float64(), func() {
						if e.Now() < last {
							ok = false
						}
						last = e.Now()
					})
				}
			})
		}
		e.RunAll()
		return ok && e.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
