// Package sim is a minimal discrete-event simulation engine: a virtual
// clock and a binary-heap event queue. It is the substrate under
// internal/cluster, standing in for the paper's real 20-GPU testbed — the
// paper itself runs its parameter sweeps on a discrete-event simulator
// extended from Proteus (§6.1), so this substrate reproduces the published
// methodology, not just approximates it.
package sim

import "container/heap"

// Event is a scheduled callback.
type event struct {
	at  float64
	seq uint64 // FIFO tie-break for simultaneous events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return it
}

// Engine runs events in virtual-time order. Time is in seconds. The zero
// value is ready to use.
type Engine struct {
	h       eventHeap
	now     float64
	seq     uint64
	stopped bool
	events  uint64 // executed events, for instrumentation
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Events returns the number of events executed so far.
func (e *Engine) Events() uint64 { return e.events }

// At schedules fn at absolute virtual time t. Scheduling in the past is a
// programming error and panics, because it would silently corrupt causality.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	heap.Push(&e.h, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn delay seconds from now.
func (e *Engine) After(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the queue empties or the next event
// lies strictly beyond until. The clock finishes at min(until, last event
// time); it never runs backwards.
func (e *Engine) Run(until float64) {
	e.stopped = false
	for len(e.h) > 0 && !e.stopped {
		if e.h[0].at > until {
			break
		}
		ev := heap.Pop(&e.h).(event)
		e.now = ev.at
		e.events++
		ev.fn()
	}
	if until > e.now {
		e.now = until
	}
}

// RunAll executes every pending event (including ones scheduled while
// running) until the queue is empty.
func (e *Engine) RunAll() {
	e.stopped = false
	for len(e.h) > 0 && !e.stopped {
		ev := heap.Pop(&e.h).(event)
		e.now = ev.at
		e.events++
		ev.fn()
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.h) }
