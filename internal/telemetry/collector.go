package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// WorkerClass names a hardware class and how many physical workers it holds,
// in pool order. It mirrors profiles.Class without importing it so the
// telemetry plane stays dependency-free.
type WorkerClass struct {
	Name  string
	Count int
}

// WorkerRow is one worker's current view as maintained by the Collector:
// the per-replica signals a saturation analyzer reads between planning
// rounds, and what Snapshot.Workers exposes publicly.
type WorkerRow struct {
	// Worker is the physical worker index within the pool; Class its
	// hardware class name.
	Worker int
	Class  string
	// Assigned is the task/variant currently loaded ("" when unassigned).
	Assigned string
	// QueueDepth is the number of queued sub-requests; InFlightBatch the
	// size of the batch currently executing (0 when idle).
	QueueDepth    int
	InFlightBatch int
	// Occupancy is the fraction of the last sample window the worker spent
	// executing batches; ServedQPS the sub-requests completed per second
	// over that window.
	Occupancy float64
	ServedQPS float64
	// SpeedFactor is the effective speed multiplier (1 = nominal; a 0.25
	// straggler runs at quarter speed while still reporting Live).
	SpeedFactor float64
	// Live is false while the worker is crashed/down.
	Live bool
	// ServedTotal and BatchesTotal are lifetime counters; SwapsTotal counts
	// model swaps charged to this worker.
	ServedTotal  int64
	BatchesTotal int64
	SwapsTotal   int64
}

// workerState is the collector's internal mutable mirror of one worker.
type workerState struct {
	row WorkerRow

	busySince  float64 // engine time current batch started (-1 when idle)
	busyAccum  float64 // busy seconds accumulated inside the current window
	servedWin  int64   // sub-requests completed inside the current window
	lastSample float64 // engine time of the previous Sample call

	// registry handles (all nil when the collector runs registry-less)
	gQueue, gInflight, gOcc, gQPS, gSpeed, gUp *Gauge
	cServed, cBatches, cSwaps                  *Counter
}

// Collector maintains per-worker state for one tenant's pool, fed by engine
// events (enqueue, batch start/end, swap, fault, assignment) and sampled
// once per engine-clock second into registry gauges. It is safe for
// concurrent use and, with reg == nil, runs registry-less (rows only).
type Collector struct {
	mu      sync.Mutex
	tenant  string
	workers []*workerState

	// Aggregate exposition (pools past the worker-metrics limit): classOf
	// maps worker index to its classAgg entry; nil aggs means full
	// per-worker series.
	classOf []int
	aggs    []*classAgg
}

// classAgg is one hardware class's aggregate registry series, used instead of
// per-worker series when the pool exceeds the worker-metrics limit.
type classAgg struct {
	count                       int
	gWorkers, gQueue, gInflight *Gauge
	gOcc, gQPS, gSpeed, gLive   *Gauge
	cServed, cBatches, cSwaps   *Counter
}

// DefaultWorkerMetricsLimit is the pool size past which a collector stops
// registering per-worker series and degrades to per-class aggregates. At
// fleet scale (1,000+ workers × ~9 series each, per tenant) unbounded
// per-worker cardinality would dominate /metrics; 256 keeps the paper-scale
// testbeds fully visible while capping the fleet regime.
const DefaultWorkerMetricsLimit = 256

// CollectorOption configures NewCollector.
type CollectorOption func(*collectorConfig)

type collectorConfig struct {
	workerLimit int
}

// WithWorkerMetricsLimit sets the largest pool that still gets per-worker
// registry series; bigger pools degrade to per-class aggregate series
// (loki_class_*) while Rows and Snapshot keep full per-worker detail.
// 0 means unlimited (always per-worker); the default is
// DefaultWorkerMetricsLimit.
func WithWorkerMetricsLimit(n int) CollectorOption {
	return func(c *collectorConfig) { c.workerLimit = n }
}

// NewCollector builds a collector for a pool laid out as classes in order
// (worker indices 0..n-1 span the classes' counts, matching both engines'
// physical numbering). reg may be nil to collect rows without exposition.
func NewCollector(reg *Registry, tenant string, classes []WorkerClass, opts ...CollectorOption) *Collector {
	cfg := collectorConfig{workerLimit: DefaultWorkerMetricsLimit}
	for _, o := range opts {
		o(&cfg)
	}
	total := 0
	for _, cl := range classes {
		total += cl.Count
	}
	aggregate := reg != nil && cfg.workerLimit > 0 && total > cfg.workerLimit

	c := &Collector{tenant: tenant}
	phys := 0
	for _, cl := range classes {
		var ag *classAgg
		if aggregate {
			lbl := L("tenant", tenant, "class", cl.Name)
			ag = &classAgg{
				count:     cl.Count,
				gWorkers:  reg.Gauge("loki_class_workers", "Workers in this class (aggregate exposition past the worker-metrics limit).", lbl),
				gQueue:    reg.Gauge("loki_class_queue_depth", "Queued sub-requests summed over the class's workers.", lbl),
				gInflight: reg.Gauge("loki_class_inflight_batch", "In-flight batch sizes summed over the class's workers.", lbl),
				gOcc:      reg.Gauge("loki_class_occupancy", "Mean occupancy over the class's workers.", lbl),
				gQPS:      reg.Gauge("loki_class_served_qps", "Served QPS summed over the class's workers.", lbl),
				gSpeed:    reg.Gauge("loki_class_speed_factor", "Mean effective speed multiplier over the class's workers.", lbl),
				gLive:     reg.Gauge("loki_class_live", "Live workers in the class.", lbl),
				cServed:   reg.Counter("loki_class_served_total", "Lifetime sub-requests completed, summed over the class's workers.", lbl),
				cBatches:  reg.Counter("loki_class_batches_total", "Lifetime batches executed, summed over the class's workers.", lbl),
				cSwaps:    reg.Counter("loki_class_swaps_total", "Model swaps, summed over the class's workers.", lbl),
			}
			ag.gWorkers.Set(0, float64(cl.Count))
			ag.gSpeed.Set(0, 1)
			ag.gLive.Set(0, float64(cl.Count))
			c.aggs = append(c.aggs, ag)
		}
		for i := 0; i < cl.Count; i++ {
			ws := &workerState{
				row:       WorkerRow{Worker: phys, Class: cl.Name, SpeedFactor: 1, Live: true},
				busySince: -1,
			}
			switch {
			case aggregate:
				// Counters are exact: every worker in the class shares the
				// class series, so event-time increments accumulate there.
				// Gauges stay nil (no-op on events) and are folded from the
				// rows once per Sample instead.
				ws.cServed = ag.cServed
				ws.cBatches = ag.cBatches
				ws.cSwaps = ag.cSwaps
				c.classOf = append(c.classOf, len(c.aggs)-1)
			case reg != nil:
				lbl := L("tenant", tenant, "class", cl.Name, "worker", strconv.Itoa(phys))
				ws.gQueue = reg.Gauge("loki_worker_queue_depth", "Queued sub-requests per worker.", lbl)
				ws.gInflight = reg.Gauge("loki_worker_inflight_batch", "Size of the batch currently executing (0 when idle).", lbl)
				ws.gOcc = reg.Gauge("loki_worker_occupancy", "Fraction of the last sample window spent executing.", lbl)
				ws.gQPS = reg.Gauge("loki_worker_served_qps", "Sub-requests completed per second over the last sample window.", lbl)
				ws.gSpeed = reg.Gauge("loki_worker_speed_factor", "Effective speed multiplier (1 = nominal; <1 = straggler).", lbl)
				ws.gUp = reg.Gauge("loki_worker_up", "1 while the worker is live, 0 while down.", lbl)
				ws.cServed = reg.Counter("loki_worker_served_total", "Lifetime sub-requests completed per worker.", lbl)
				ws.cBatches = reg.Counter("loki_worker_batches_total", "Lifetime batches executed per worker.", lbl)
				ws.cSwaps = reg.Counter("loki_worker_swaps_total", "Model swaps charged to this worker.", lbl)
				ws.gSpeed.Set(0, 1)
				ws.gUp.Set(0, 1)
			}
			c.workers = append(c.workers, ws)
			phys++
		}
	}
	return c
}

// at bounds-checks a worker index; events for unknown workers are dropped
// rather than panicking inside an engine's hot path.
func (c *Collector) at(worker int) *workerState {
	if c == nil || worker < 0 || worker >= len(c.workers) {
		return nil
	}
	return c.workers[worker]
}

// Enqueue records that one sub-request joined a worker's queue.
func (c *Collector) Enqueue(now float64, worker int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if ws := c.at(worker); ws != nil {
		ws.row.QueueDepth++
		ws.gQueue.Set(now, float64(ws.row.QueueDepth))
	}
	c.mu.Unlock()
}

// BatchStart records that a worker pulled `batch` sub-requests off its queue
// and began executing them as one batch.
func (c *Collector) BatchStart(now float64, worker, batch int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if ws := c.at(worker); ws != nil {
		ws.row.QueueDepth -= batch
		if ws.row.QueueDepth < 0 {
			ws.row.QueueDepth = 0
		}
		ws.row.InFlightBatch = batch
		ws.busySince = now
		ws.gQueue.Set(now, float64(ws.row.QueueDepth))
		ws.gInflight.Set(now, float64(batch))
	}
	c.mu.Unlock()
}

// BatchEnd records a batch finishing. served is the number of sub-requests
// actually completed (0 when the batch was invalidated by a crash).
func (c *Collector) BatchEnd(now float64, worker, served int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if ws := c.at(worker); ws != nil {
		if ws.busySince >= 0 {
			ws.busyAccum += now - ws.busySince
			ws.busySince = -1
		}
		ws.row.InFlightBatch = 0
		ws.row.BatchesTotal++
		ws.row.ServedTotal += int64(served)
		ws.servedWin += int64(served)
		ws.gInflight.Set(now, 0)
		ws.cBatches.Add(now, 1)
		ws.cServed.Add(now, float64(served))
	}
	c.mu.Unlock()
}

// QueueCleared records a worker's queue being abandoned (reassignment or
// crash): n sub-requests left the queue without executing.
func (c *Collector) QueueCleared(now float64, worker int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if ws := c.at(worker); ws != nil {
		ws.row.QueueDepth = 0
		ws.gQueue.Set(now, 0)
	}
	c.mu.Unlock()
}

// Swap records a model swap charged to the worker.
func (c *Collector) Swap(now float64, worker int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if ws := c.at(worker); ws != nil {
		ws.row.SwapsTotal++
		ws.cSwaps.Add(now, 1)
	}
	c.mu.Unlock()
}

// SetAssigned records the task/variant a worker currently serves ("" when
// the worker is unassigned by the plan).
func (c *Collector) SetAssigned(now float64, worker int, assigned string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if ws := c.at(worker); ws != nil {
		ws.row.Assigned = assigned
	}
	c.mu.Unlock()
}

// SetSpeed records a worker's effective speed factor (fault injection's
// straggler path; 1 restores nominal speed).
func (c *Collector) SetSpeed(now float64, worker int, factor float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if ws := c.at(worker); ws != nil {
		ws.row.SpeedFactor = factor
		ws.gSpeed.Set(now, factor)
	}
	c.mu.Unlock()
}

// SetDown records a worker going down (true) or recovering (false). Going
// down also clears queue and in-flight state, mirroring the engines.
func (c *Collector) SetDown(now float64, worker int, down bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if ws := c.at(worker); ws != nil {
		ws.row.Live = !down
		up := 1.0
		if down {
			up = 0
			ws.row.QueueDepth = 0
			ws.row.InFlightBatch = 0
			ws.busySince = -1
			ws.gQueue.Set(now, 0)
			ws.gInflight.Set(now, 0)
		}
		ws.gUp.Set(now, up)
	}
	c.mu.Unlock()
}

// Sample closes the current window at engine time now: occupancy and served
// QPS are computed over [lastSample, now] and published to the registry,
// then the window resets. Engines call this from their once-per-second
// housekeeping alongside the existing metrics sampling.
func (c *Collector) Sample(now float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	for _, ws := range c.workers {
		win := now - ws.lastSample
		busy := ws.busyAccum
		if ws.busySince >= 0 { // batch still running: charge the elapsed part
			busy += now - ws.busySince
			ws.busySince = now
		}
		occ, qps := 0.0, 0.0
		if win > 0 {
			occ = busy / win
			if occ > 1 {
				occ = 1
			}
			qps = float64(ws.servedWin) / win
		}
		ws.row.Occupancy = occ
		ws.row.ServedQPS = qps
		ws.busyAccum = 0
		ws.servedWin = 0
		ws.lastSample = now
		ws.gOcc.Set(now, occ)
		ws.gQPS.Set(now, qps)
	}
	if c.aggs != nil {
		// Aggregate exposition: fold the per-worker rows into one series set
		// per class. Queue/in-flight/liveness gauges refresh here (once per
		// sample) instead of per event — the cardinality trade the
		// worker-metrics limit buys.
		type fold struct {
			queue, inflight, live int
			occ, qps, speed       float64
		}
		folds := make([]fold, len(c.aggs))
		for i, ws := range c.workers {
			f := &folds[c.classOf[i]]
			f.queue += ws.row.QueueDepth
			f.inflight += ws.row.InFlightBatch
			if ws.row.Live {
				f.live++
			}
			f.occ += ws.row.Occupancy
			f.qps += ws.row.ServedQPS
			f.speed += ws.row.SpeedFactor
		}
		for i, ag := range c.aggs {
			f := folds[i]
			ag.gQueue.Set(now, float64(f.queue))
			ag.gInflight.Set(now, float64(f.inflight))
			ag.gLive.Set(now, float64(f.live))
			ag.gQPS.Set(now, f.qps)
			if ag.count > 0 {
				ag.gOcc.Set(now, f.occ/float64(ag.count))
				ag.gSpeed.Set(now, f.speed/float64(ag.count))
			}
		}
	}
	c.mu.Unlock()
}

// Rows returns a copy of every worker's current row, in worker order.
func (c *Collector) Rows() []WorkerRow {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerRow, len(c.workers))
	for i, ws := range c.workers {
		out[i] = ws.row
	}
	return out
}

// Snapshot renders the collector's full state as a deterministic multi-line
// string, one worker per line — the unit the determinism test compares
// byte-for-byte across identically-seeded runs.
func (c *Collector) Snapshot() string {
	if c == nil {
		return ""
	}
	rows := c.Rows()
	var b strings.Builder
	fmt.Fprintf(&b, "tenant=%s workers=%d\n", c.tenant, len(rows))
	for _, r := range rows {
		fmt.Fprintf(&b, "w%d class=%s assigned=%q q=%d inflight=%d occ=%s qps=%s speed=%s live=%t served=%d batches=%d swaps=%d\n",
			r.Worker, r.Class, r.Assigned, r.QueueDepth, r.InFlightBatch,
			fmtFloat(r.Occupancy), fmtFloat(r.ServedQPS), fmtFloat(r.SpeedFactor),
			r.Live, r.ServedTotal, r.BatchesTotal, r.SwapsTotal)
	}
	return b.String()
}

// SortRows orders worker rows by worker index — a helper for consumers that
// merge rows from several collectors.
func SortRows(rows []WorkerRow) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Worker < rows[j].Worker })
}
