// Package telemetry is the serving system's observability plane: a registry
// of typed counters, gauges, and histograms stamped with engine-clock
// timestamps; a per-worker collector both engines feed on
// enqueue/dequeue/batch/swap/fault events (queue depth, occupancy, in-flight
// batch size, served QPS, effective speed factor — the signals a
// saturation-driven fast loop needs between MILP rounds); and a sampled
// request tracer whose span trees are byte-reproducible on the simulator.
//
// The package is deliberately dependency-free (standard library only) so any
// layer — engines, arbiter, ingress — can record into it without import
// cycles. All types are safe for concurrent use; on the discrete-event
// simulator every update happens on the single event goroutine, so
// registering telemetry perturbs no RNG stream and leaves serving behavior
// bit-for-bit unchanged.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is a metric family's type.
type Kind int

// The three metric kinds of the registry, matching the Prometheus exposition
// TYPE keywords.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Label is one name=value pair attached to a series.
type Label struct {
	Key, Value string
}

// Labels is an ordered label set. Callers may pass keys in any order; the
// registry sorts them by key so the same set always addresses the same
// series.
type Labels []Label

// L is a convenience constructor: L("tenant", "traffic", "worker", "3")
// builds the label set {tenant="traffic", worker="3"}. It panics on an odd
// number of arguments (a programming error, like fmt verb mismatches).
func L(kv ...string) Labels {
	if len(kv)%2 != 0 {
		panic("telemetry: L needs key/value pairs")
	}
	ls := make(Labels, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ls = append(ls, Label{Key: kv[i], Value: kv[i+1]})
	}
	return ls
}

// encode renders the sorted label set in exposition form
// (`{a="x",b="y"}`), which doubles as the series key. Empty sets encode to
// the empty string.
func (ls Labels) encode() string {
	if len(ls) == 0 {
		return ""
	}
	sorted := append(Labels(nil), ls...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// series is one labeled stream within a family. value holds the counter or
// gauge value; histograms use buckets/sum/count instead. atSec is the
// engine-clock time of the last update.
type series struct {
	labels string // encoded label set (sorted)
	value  float64
	atSec  float64

	// Histogram state: cumulative counts are derived at exposition time.
	bucketN []uint64
	sum     float64
	count   uint64
}

// family is one named metric with its help text, kind, and series.
type family struct {
	name    string
	help    string
	kind    Kind
	bounds  []float64 // histogram bucket upper bounds (excluding +Inf)
	byLabel map[string]*series
}

// Registry holds metric families and hands out typed handles. The zero value
// is not usable; build one with NewRegistry. A nil *Registry is a valid
// "telemetry off" value: handle constructors on nil return nil handles whose
// methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty metric registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// lookup finds or creates the (family, series) pair. It panics when the same
// metric name is registered twice with different kinds — a wiring bug better
// caught loudly at construction than rendered as corrupt exposition.
func (r *Registry) lookup(name, help string, kind Kind, bounds []float64, labels Labels) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, byLabel: map[string]*series{}}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as both %s and %s", name, f.kind, kind))
	}
	key := labels.encode()
	s := f.byLabel[key]
	if s == nil {
		s = &series{labels: key}
		if kind == KindHistogram {
			s.bucketN = make([]uint64, len(f.bounds)+1)
		}
		f.byLabel[key] = s
	}
	return s
}

// Counter is a monotonically increasing series handle. A nil *Counter is a
// valid no-op (telemetry off).
type Counter struct {
	r *Registry
	s *series
}

// Counter returns the counter series for the labeled metric, creating family
// and series on first use. Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	return &Counter{r: r, s: r.lookup(name, help, KindCounter, nil, labels)}
}

// Add increments the counter by delta at engine time nowSec. Negative deltas
// are ignored (counters only go up).
func (c *Counter) Add(nowSec, delta float64) {
	if c == nil || delta <= 0 {
		return
	}
	c.r.mu.Lock()
	c.s.value += delta
	c.s.atSec = nowSec
	c.r.mu.Unlock()
}

// Gauge is a settable series handle. A nil *Gauge is a valid no-op.
type Gauge struct {
	r *Registry
	s *series
}

// Gauge returns the gauge series for the labeled metric, creating family and
// series on first use. Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	return &Gauge{r: r, s: r.lookup(name, help, KindGauge, nil, labels)}
}

// Set records the gauge's current value at engine time nowSec.
func (g *Gauge) Set(nowSec, v float64) {
	if g == nil {
		return
	}
	g.r.mu.Lock()
	g.s.value = v
	g.s.atSec = nowSec
	g.r.mu.Unlock()
}

// Histogram is a bucketed distribution handle. A nil *Histogram is a valid
// no-op.
type Histogram struct {
	r      *Registry
	s      *series
	bounds []float64
}

// Histogram returns the histogram series for the labeled metric with the
// given bucket upper bounds (ascending; +Inf is implicit). The bounds of the
// first registration win for the whole family. Returns nil (a no-op handle)
// on a nil registry.
func (r *Registry) Histogram(name, help string, bounds []float64, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	s := r.lookup(name, help, KindHistogram, b, labels)
	r.mu.Lock()
	fb := r.families[name].bounds
	r.mu.Unlock()
	return &Histogram{r: r, s: s, bounds: fb}
}

// Observe records one sample at engine time nowSec.
func (h *Histogram) Observe(nowSec, v float64) {
	if h == nil {
		return
	}
	h.r.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.s.bucketN[i]++
	h.s.sum += v
	h.s.count++
	h.s.atSec = nowSec
	h.r.mu.Unlock()
}

// Point is one series' current state, for programmatic consumers (the future
// saturation analyzer reads these instead of scraping text).
type Point struct {
	// Name is the metric family name; Labels the encoded label set
	// (`{a="x"}`; empty for unlabeled series).
	Name   string
	Labels string
	Kind   Kind
	// Value is the counter/gauge value; histograms report Sum and Count
	// with Value left at Sum for convenience.
	Value float64
	Sum   float64
	Count uint64
	// AtSec is the engine-clock time of the last update (virtual seconds on
	// the simulator, scaled wall seconds on the live engine).
	AtSec float64
}

// Gather returns every series' current state, sorted by name then label set —
// the deterministic programmatic twin of WritePrometheus.
func (r *Registry) Gather() []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Point
	for _, f := range r.families {
		for _, s := range f.byLabel {
			p := Point{Name: f.name, Labels: s.labels, Kind: f.kind, Value: s.value, AtSec: s.atSec}
			if f.kind == KindHistogram {
				p.Sum = s.sum
				p.Count = s.count
				p.Value = s.sum
			}
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by label
// set, HELP/TYPE headers, histogram _bucket/_sum/_count expansion.
// Timestamps are omitted from the exposition — engine-clock seconds are not
// wall milliseconds; programmatic readers get them from Gather. The output
// is deterministic: the same registry state always renders the same bytes.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := r.families[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		keys := make([]string, 0, len(f.byLabel))
		for k := range f.byLabel {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.byLabel[k]
			if f.kind != KindHistogram {
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, fmtFloat(s.value))
				continue
			}
			cum := uint64(0)
			for i, n := range s.bucketN {
				cum += n
				le := "+Inf"
				if i < len(f.bounds) {
					le = fmtFloat(f.bounds[i])
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, withLE(s.labels, le), cum)
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, s.labels, fmtFloat(s.sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", f.name, s.labels, s.count)
		}
	}
	r.mu.Unlock()
	io.WriteString(w, b.String())
}

// withLE splices the le label into an encoded label set.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// fmtFloat renders a metric value with the shortest exact representation,
// keeping the exposition deterministic and diff-friendly.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
