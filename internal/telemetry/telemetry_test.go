package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryExpositionDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("b_total", "b help", L("x", "1")).Add(1, 3)
		r.Counter("b_total", "b help", L("x", "2")).Add(2, 1)
		r.Gauge("a_gauge", "a help", nil).Set(3, 2.5)
		h := r.Histogram("c_seconds", "c help", []float64{0.1, 1}, L("t", "q"))
		h.Observe(4, 0.05)
		h.Observe(5, 0.5)
		h.Observe(6, 7)
		return r
	}
	var b1, b2 bytes.Buffer
	build().WritePrometheus(&b1)
	build().WritePrometheus(&b2)
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	out := b1.String()
	for _, want := range []string{
		"# TYPE a_gauge gauge",
		"# TYPE b_total counter",
		"# TYPE c_seconds histogram",
		`b_total{x="1"} 3`,
		`c_seconds_bucket{t="q",le="0.1"} 1`,
		`c_seconds_bucket{t="q",le="1"} 2`,
		`c_seconds_bucket{t="q",le="+Inf"} 3`,
		`c_seconds_count{t="q"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Families must appear in sorted order.
	if strings.Index(out, "a_gauge") > strings.Index(out, "b_total") {
		t.Error("families not sorted by name")
	}
}

func TestRegistryNilIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x", "h", nil).Add(0, 1)
	r.Gauge("y", "h", nil).Set(0, 1)
	r.Histogram("z", "h", []float64{1}, nil).Observe(0, 1)
	if got := r.Gather(); got != nil {
		t.Fatalf("nil registry Gather = %v, want nil", got)
	}
	var b bytes.Buffer
	r.WritePrometheus(&b)
	if b.Len() != 0 {
		t.Fatalf("nil registry wrote %q", b.String())
	}
}

func TestCollectorWindowMath(t *testing.T) {
	c := NewCollector(nil, "ten", []WorkerClass{{Name: "gpu", Count: 2}})
	// Worker 0: two requests queued, batch of 2 runs 0.5s inside a 1s window.
	c.Enqueue(0.1, 0)
	c.Enqueue(0.2, 0)
	c.BatchStart(0.25, 0, 2)
	c.BatchEnd(0.75, 0, 2)
	c.Sample(1.0)
	rows := c.Rows()
	if rows[0].Occupancy != 0.5 {
		t.Errorf("occupancy = %v, want 0.5", rows[0].Occupancy)
	}
	if rows[0].ServedQPS != 2 {
		t.Errorf("servedQPS = %v, want 2", rows[0].ServedQPS)
	}
	if rows[0].ServedTotal != 2 || rows[0].BatchesTotal != 1 {
		t.Errorf("totals = %+v", rows[0])
	}
	if rows[1].Occupancy != 0 || rows[1].ServedQPS != 0 {
		t.Errorf("idle worker has nonzero window: %+v", rows[1])
	}
	// A still-running batch charges partial busy time to the closing window.
	c.BatchStart(1.2, 0, 1)
	c.Sample(2.0)
	rows = c.Rows()
	if got := rows[0].Occupancy; got < 0.79 || got > 0.81 {
		t.Errorf("partial-batch occupancy = %v, want ~0.8", got)
	}
	if rows[0].InFlightBatch != 1 {
		t.Errorf("inflight = %d, want 1", rows[0].InFlightBatch)
	}
}

func TestCollectorFaultState(t *testing.T) {
	reg := NewRegistry()
	c := NewCollector(reg, "ten", []WorkerClass{{Name: "gpu", Count: 1}})
	c.SetSpeed(5, 0, 0.25)
	c.SetDown(6, 0, true)
	rows := c.Rows()
	if rows[0].SpeedFactor != 0.25 || rows[0].Live {
		t.Fatalf("row = %+v, want speed 0.25 live=false", rows[0])
	}
	var b bytes.Buffer
	reg.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `loki_worker_speed_factor{class="gpu",tenant="ten",worker="0"} 0.25`) {
		t.Errorf("speed factor not exposed:\n%s", out)
	}
	if !strings.Contains(out, `loki_worker_up{class="gpu",tenant="ten",worker="0"} 0`) {
		t.Errorf("down state not exposed:\n%s", out)
	}
	c.SetDown(7, 0, false)
	if rows := c.Rows(); !rows[0].Live {
		t.Error("worker did not come back up")
	}
}

func TestTracerDeterministicSampling(t *testing.T) {
	run := func() []byte {
		tr := NewTracer("ten", 0.5, 42)
		for i := int64(0); i < 40; i++ {
			rt := tr.Start(i, float64(i))
			if rt == nil {
				continue
			}
			tr.AddSpan(rt, Span{Stage: "detect", Worker: 1, Class: "gpu",
				EnqueuedSec: float64(i), StartSec: float64(i) + 0.01, EndSec: float64(i) + 0.05, Batch: 4})
			tr.Finish(rt, float64(i)+0.06, false, false)
		}
		b, err := tr.ExportJSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	b1, b2 := run(), run()
	if !bytes.Equal(b1, b2) {
		t.Fatal("trace export not byte-reproducible for the same seed")
	}
	if !strings.Contains(string(b1), `"stage": "detect"`) {
		t.Fatalf("export missing spans:\n%s", b1)
	}
	tr := NewTracer("ten", 0.5, 42)
	sampled := 0
	for i := int64(0); i < 40; i++ {
		if tr.Start(i, 0) != nil {
			sampled++
		}
	}
	if sampled == 0 || sampled == 40 {
		t.Fatalf("sampling degenerate: %d/40", sampled)
	}
}

func TestTracerStageSummary(t *testing.T) {
	tr := NewTracer("ten", 1, 1)
	for i := 0; i < 100; i++ {
		rt := tr.Start(int64(i), 0)
		tr.AddSpan(rt, Span{Stage: "s", EnqueuedSec: 0, StartSec: float64(i) / 1000, EndSec: float64(i)/1000 + 0.01, Batch: 2})
		tr.Finish(rt, 1, false, false)
	}
	ss := tr.StageSummary()
	if len(ss) != 1 || ss[0].Stage != "s" || ss[0].Count != 100 {
		t.Fatalf("summary = %+v", ss)
	}
	if ss[0].QueueP50 < 0.049 || ss[0].QueueP50 > 0.051 {
		t.Errorf("queue p50 = %v, want ~0.0495", ss[0].QueueP50)
	}
	if ss[0].ExecP50 < 0.0099 || ss[0].ExecP50 > 0.0101 || ss[0].MeanBatch != 2 {
		t.Errorf("summary = %+v", ss[0])
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	rt := tr.Start(1, 0)
	if rt != nil {
		t.Fatal("nil tracer sampled")
	}
	tr.AddSpan(rt, Span{})
	tr.Finish(rt, 0, false, false)
	if tr.Traces() != nil || tr.StageSummary() != nil {
		t.Fatal("nil tracer returned data")
	}
	if NewTracer("x", 0, 1) != nil {
		t.Fatal("prob 0 should return nil tracer")
	}
}

// Past the worker-metrics limit the collector stops registering per-worker
// series and exposes per-class aggregates instead: counters stay exact via
// shared class series, gauges fold once per Sample, and Rows keeps full
// per-worker detail either way.
func TestCollectorWorkerMetricsLimit(t *testing.T) {
	reg := NewRegistry()
	classes := []WorkerClass{{Name: "gpu", Count: 3}, {Name: "cpu", Count: 2}}
	c := NewCollector(reg, "ten", classes, WithWorkerMetricsLimit(4))

	c.Enqueue(0.1, 0)
	c.Enqueue(0.1, 1)
	c.Enqueue(0.1, 3)
	c.BatchStart(0.2, 0, 1)
	c.BatchEnd(0.7, 0, 1)
	c.Swap(0.8, 3)
	c.SetDown(0.9, 4, true)
	c.Sample(1.0)

	if rows := c.Rows(); len(rows) != 5 || rows[4].Live {
		t.Fatalf("rows lost per-worker detail under the limit: %+v", rows)
	}

	var b bytes.Buffer
	reg.WritePrometheus(&b)
	out := b.String()
	if strings.Contains(out, "loki_worker_") {
		t.Fatalf("per-worker series exposed past the limit:\n%s", out)
	}
	for _, want := range []string{
		`loki_class_workers{class="gpu",tenant="ten"} 3`,
		`loki_class_workers{class="cpu",tenant="ten"} 2`,
		`loki_class_queue_depth{class="gpu",tenant="ten"} 1`, // 2 queued, 1 batched off
		`loki_class_queue_depth{class="cpu",tenant="ten"} 1`,
		`loki_class_served_total{class="gpu",tenant="ten"} 1`,
		`loki_class_batches_total{class="gpu",tenant="ten"} 1`,
		`loki_class_swaps_total{class="cpu",tenant="ten"} 1`,
		`loki_class_live{class="cpu",tenant="ten"} 1`,
		`loki_class_live{class="gpu",tenant="ten"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing aggregate series %q in:\n%s", want, out)
		}
	}

	// At or under the limit (and with 0 = unlimited) the per-worker series
	// remain.
	reg2 := NewRegistry()
	NewCollector(reg2, "ten", classes, WithWorkerMetricsLimit(0))
	var b2 bytes.Buffer
	reg2.WritePrometheus(&b2)
	if !strings.Contains(b2.String(), `loki_worker_up{class="gpu",tenant="ten",worker="0"}`) {
		t.Fatalf("unlimited collector lost per-worker series:\n%s", b2.String())
	}
}
