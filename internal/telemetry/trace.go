package telemetry

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Span is one stage of a sampled request's journey: the wait in a worker's
// batch queue plus the batched execution that served it.
type Span struct {
	// Stage is the pipeline task name; Worker/Class identify where it ran.
	Stage  string `json:"stage"`
	Worker int    `json:"worker"`
	Class  string `json:"class"`
	// EnqueuedSec/StartSec/EndSec are engine-clock times: when the
	// sub-request joined the worker queue, when its batch started executing,
	// and when the batch completed. QueueSec and ExecSec are the derived
	// waits (queue = start-enqueued, exec = end-start).
	EnqueuedSec float64 `json:"enqueued_sec"`
	StartSec    float64 `json:"start_sec"`
	EndSec      float64 `json:"end_sec"`
	QueueSec    float64 `json:"queue_sec"`
	ExecSec     float64 `json:"exec_sec"`
	// Batch is the size of the batch this sub-request rode in.
	Batch int `json:"batch"`
}

// ReqTrace is the span tree of one sampled request, from admission to reply.
type ReqTrace struct {
	// ID is the engine's root request id; Tenant the pipeline it belongs to.
	ID     int64  `json:"id"`
	Tenant string `json:"tenant"`
	// ArrivedSec/DoneSec bracket the request on the engine clock; TotalSec
	// is the end-to-end latency (0 while in flight).
	ArrivedSec float64 `json:"arrived_sec"`
	DoneSec    float64 `json:"done_sec"`
	TotalSec   float64 `json:"total_sec"`
	// Dropped marks requests that never completed (shed, stale, fault);
	// Late marks completions past the SLO deadline.
	Dropped bool `json:"dropped"`
	Late    bool `json:"late"`
	// Spans are the stage executions in completion order. All mutation
	// happens under the owning Tracer's lock — ReqTrace itself carries no
	// mutex so copies of finished traces are plain values.
	Spans []Span `json:"spans"`
}

// StageStat is the latency breakdown for one pipeline stage across all
// sampled requests: queue wait and execution percentiles in seconds.
type StageStat struct {
	Stage      string  `json:"stage"`
	Count      int     `json:"count"`
	QueueP50   float64 `json:"queue_p50_sec"`
	QueueP99   float64 `json:"queue_p99_sec"`
	ExecP50    float64 `json:"exec_p50_sec"`
	ExecP99    float64 `json:"exec_p99_sec"`
	MeanBatch  float64 `json:"mean_batch"`
	WorstTotal float64 `json:"worst_total_sec"`
}

const (
	// maxTraces bounds retained span trees (first-N policy: deterministic
	// and cheap); maxStageSamples bounds the per-stage latency reservoirs
	// feeding StageSummary.
	maxTraces       = 512
	maxStageSamples = 4096
)

// stageAgg accumulates queue/exec samples for one stage.
type stageAgg struct {
	queue, exec []float64
	batchSum    float64
	batchN      int
	worst       float64
	count       int
}

// Tracer samples requests at a fixed probability using its own RNG — never
// the engines' streams, so enabling tracing cannot perturb seeded arrival or
// jitter sequences. On the simulator Start is called in deterministic event
// order, making the sampled set (and therefore the exported JSON)
// byte-reproducible for a given seed. A nil *Tracer is a valid "tracing
// off" value: every method is a no-op.
type Tracer struct {
	mu     sync.Mutex
	tenant string
	prob   float64
	rng    *rand.Rand
	traces []*ReqTrace
	stages map[string]*stageAgg
}

// NewTracer builds a tracer for one tenant sampling at probability prob
// (clamped to [0,1]); seed drives the private sampling RNG. prob <= 0
// returns nil — tracing off.
func NewTracer(tenant string, prob float64, seed int64) *Tracer {
	if prob <= 0 {
		return nil
	}
	if prob > 1 {
		prob = 1
	}
	return &Tracer{
		tenant: tenant,
		prob:   prob,
		rng:    rand.New(rand.NewSource(seed)),
		stages: map[string]*stageAgg{},
	}
}

// Start draws the sampling coin for a new root request. It MUST be called
// exactly once per injected request (whether or not sampling hits) so the
// RNG stream stays aligned across runs. Returns the trace to thread through
// the request's lifetime, or nil when the request is not sampled.
func (tr *Tracer) Start(id int64, now float64) *ReqTrace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	hit := tr.rng.Float64() < tr.prob
	if !hit {
		return nil
	}
	rt := &ReqTrace{ID: id, Tenant: tr.tenant, ArrivedSec: now}
	if len(tr.traces) < maxTraces {
		tr.traces = append(tr.traces, rt)
	}
	return rt
}

// AddSpan appends one stage execution to a sampled request and feeds the
// stage aggregates. rt may be nil (unsampled request) — the call is a no-op.
func (tr *Tracer) AddSpan(rt *ReqTrace, s Span) {
	if tr == nil || rt == nil {
		return
	}
	s.QueueSec = s.StartSec - s.EnqueuedSec
	if s.QueueSec < 0 {
		s.QueueSec = 0
	}
	s.ExecSec = s.EndSec - s.StartSec
	tr.mu.Lock()
	rt.Spans = append(rt.Spans, s)
	agg := tr.stages[s.Stage]
	if agg == nil {
		agg = &stageAgg{}
		tr.stages[s.Stage] = agg
	}
	agg.count++
	if len(agg.queue) < maxStageSamples {
		agg.queue = append(agg.queue, s.QueueSec)
		agg.exec = append(agg.exec, s.ExecSec)
	}
	agg.batchSum += float64(s.Batch)
	agg.batchN++
	if tot := s.EndSec - s.EnqueuedSec; tot > agg.worst {
		agg.worst = tot
	}
	tr.mu.Unlock()
}

// Finish closes a sampled request. rt may be nil — no-op.
func (tr *Tracer) Finish(rt *ReqTrace, now float64, dropped, late bool) {
	if tr == nil || rt == nil {
		return
	}
	tr.mu.Lock()
	rt.DoneSec = now
	rt.TotalSec = now - rt.ArrivedSec
	rt.Dropped = dropped
	rt.Late = late
	tr.mu.Unlock()
}

// Traces returns deep copies of the retained span trees in sampling order.
func (tr *Tracer) Traces() []ReqTrace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]ReqTrace, 0, len(tr.traces))
	for _, rt := range tr.traces {
		cp := *rt
		cp.Spans = append([]Span(nil), rt.Spans...)
		out = append(out, cp)
	}
	return out
}

// StageSummary computes the per-stage latency breakdown over every sampled
// span so far, sorted by stage name.
func (tr *Tracer) StageSummary() []StageStat {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]StageStat, 0, len(tr.stages))
	for name, agg := range tr.stages {
		st := StageStat{Stage: name, Count: agg.count, WorstTotal: agg.worst}
		st.QueueP50 = quantile(agg.queue, 0.50)
		st.QueueP99 = quantile(agg.queue, 0.99)
		st.ExecP50 = quantile(agg.exec, 0.50)
		st.ExecP99 = quantile(agg.exec, 0.99)
		if agg.batchN > 0 {
			st.MeanBatch = agg.batchSum / float64(agg.batchN)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// ExportJSON renders the retained traces plus the stage summary as
// deterministic indented JSON — the payload lokiserve writes for
// -trace-out.
func (tr *Tracer) ExportJSON() ([]byte, error) {
	if tr == nil {
		return []byte("{}"), nil
	}
	payload := struct {
		Tenant string      `json:"tenant"`
		Stages []StageStat `json:"stages"`
		Traces []ReqTrace  `json:"traces"`
	}{Tenant: tr.tenant, Stages: tr.StageSummary(), Traces: tr.Traces()}
	return json.MarshalIndent(payload, "", "  ")
}

// quantile returns the q-th quantile of xs (copied and sorted; nearest-rank
// with linear interpolation). Empty input yields 0.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}
