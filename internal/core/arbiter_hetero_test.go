package core

import (
	"sync"
	"testing"
	"time"

	"loki/internal/profiles"
)

func heteroClasses() []profiles.Class {
	return []profiles.Class{
		{Name: "fast", Count: 4, Speed: 2.0, CostPerHour: 3.0},
		{Name: "slow", Count: 12, Speed: 1.0, CostPerHour: 1.0},
	}
}

func heteroTenant(t *testing.T, name string, minShare float64) *Tenant {
	t.Helper()
	g := profiles.TrafficChain()
	classes := heteroClasses()
	prof := (&profiles.Profiler{}).ProfileGraphClasses(g, profiles.Batches, classes)
	meta := NewMetadataStoreHetero(g, classes, prof, 0.250, profiles.Batches)
	alloc, err := NewAllocator(meta, AllocatorOptions{
		NetLatencySec:  0.002,
		KeepWarm:       true,
		Headroom:       0.30,
		SolveTimeLimit: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &Tenant{Name: name, Meta: meta, Alloc: alloc, MinShare: minShare, RouteHeadroom: 0.30}
}

// Per-class floors resolve from the shares, the keep-warm raise keeps every
// tenant runnable, and grant vectors are reported per class.
func TestHeteroFloorsAndClassGrants(t *testing.T) {
	a := heteroTenant(t, "a", 0.5)
	b := heteroTenant(t, "b", 0.5)
	m, err := NewMultiController(16, []*Tenant{a, b})
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range []*Tenant{a, b} {
		if len(tn.floorByClass) != 2 {
			t.Fatalf("tenant %s floorByClass = %v, want per-class vector", tn.Name, tn.floorByClass)
		}
		if tn.floorByClass[0] != 2 || tn.floorByClass[1] != 6 {
			t.Fatalf("tenant %s floors = %v, want [2 6] (half of each class)", tn.Name, tn.floorByClass)
		}
	}
	a.Meta.ObserveDemand(100)
	b.Meta.ObserveDemand(100)
	if err := m.Step(true); err != nil {
		t.Fatal(err)
	}
	cg := m.ClassGrants()
	if len(cg) != 2 || len(cg[0]) != 2 {
		t.Fatalf("ClassGrants = %v, want 2 tenants × 2 classes", cg)
	}
	for c := 0; c < 2; c++ {
		if cg[0][c]+cg[1][c] > m.counts[c] {
			t.Fatalf("class %d oversubscribed: grants %v, count %d", c, cg, m.counts[c])
		}
	}
	total := m.Grants()
	if total[0] != sumInts(cg[0]) || total[1] != sumInts(cg[1]) {
		t.Fatalf("Grants %v disagree with ClassGrants %v", total, cg)
	}
}

// Under joint contention every class's grants stay within its count, capped
// re-solves stay inside their vectors, and both tenants keep at least their
// per-class floors of what they wanted.
func TestHeteroContentionSplitsVectors(t *testing.T) {
	a := heteroTenant(t, "a", 0.5)
	b := heteroTenant(t, "b", 0.5)
	m, err := NewMultiController(16, []*Tenant{a, b})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		a.Meta.ObserveDemand(2500)
		b.Meta.ObserveDemand(2500)
	}
	if err := m.Step(true); err != nil {
		t.Fatal(err)
	}
	cg := m.ClassGrants()
	for c := 0; c < 2; c++ {
		if cg[0][c]+cg[1][c] > m.counts[c] {
			t.Fatalf("class %d oversubscribed under contention: %v (counts %v)", c, cg, m.counts)
		}
	}
	for i := 0; i < 2; i++ {
		plan := m.PlanOf(i)
		if plan == nil {
			t.Fatalf("tenant %d has no plan", i)
		}
		for c, used := range plan.ServersByClass {
			if used > cg[i][c] {
				t.Fatalf("tenant %d uses %d servers of class %d beyond its grant %v", i, used, c, cg[i])
			}
		}
	}
}

// One tenant hungry while the other idles: the hungry tenant's grant vector
// grows into the idle tenant's unused servers of every class, and shrinks
// back when the spike subsides.
func TestHeteroIdleClassCapacityIsLent(t *testing.T) {
	a := heteroTenant(t, "a", 0.5)
	b := heteroTenant(t, "b", 0.5)
	m, err := NewMultiController(16, []*Tenant{a, b})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		a.Meta.ObserveDemand(2500)
		b.Meta.ObserveDemand(40)
	}
	if err := m.Step(true); err != nil {
		t.Fatal(err)
	}
	grants := m.Grants()
	if grants[0] <= 8 {
		t.Fatalf("hungry tenant stuck at its floor: grants %v (class grants %v)", grants, m.ClassGrants())
	}
	for c, cg := 0, m.ClassGrants(); c < 2; c++ {
		if cg[0][c]+cg[1][c] > m.counts[c] {
			t.Fatalf("class %d oversubscribed: %v", c, cg)
		}
	}
}

// The parallel per-tenant solve fan-out produces the same class grants as
// the sequential path — the hetero analogue of the planner parity contract —
// and is race-clean when run under -race.
func TestHeteroParallelMatchesSequential(t *testing.T) {
	run := func(sequential bool) [][]int {
		a := heteroTenant(t, "a", 0.4)
		b := heteroTenant(t, "b", 0.4)
		m, err := NewMultiController(16, []*Tenant{a, b})
		if err != nil {
			t.Fatal(err)
		}
		m.Sequential = sequential
		for i := 0; i < 12; i++ {
			a.Meta.ObserveDemand(1800)
			b.Meta.ObserveDemand(900)
		}
		if err := m.Step(true); err != nil {
			t.Fatal(err)
		}
		return m.ClassGrants()
	}
	par := run(false)
	seq := run(true)
	for i := range par {
		for c := range par[i] {
			if par[i][c] != seq[i][c] {
				t.Fatalf("parallel class grants %v diverge from sequential %v", par, seq)
			}
		}
	}
}

// A tenant whose want concentrates on a scarce contended class must still
// receive a grant vector that can keep its tasks warm: the repair claims the
// tenant's unused floor slice of the other classes back from neighbours (and
// the reclaimed-from neighbour re-solves inside its reduced vector) instead
// of failing the whole allocation round. Regression test for the per-class
// split dropping a grant total below the keep-warm minimum.
func TestHeteroKeepWarmSurvivesClassContention(t *testing.T) {
	mk := func(name string) *Tenant {
		g := profiles.TrafficChain() // 2 tasks → warm = 2
		classes := []profiles.Class{
			{Name: "fast", Count: 2, Speed: 2.0},
			{Name: "slow", Count: 20, Speed: 1.0},
		}
		prof := (&profiles.Profiler{}).ProfileGraphClasses(g, profiles.Batches, classes)
		meta := NewMetadataStoreHetero(g, classes, prof, 0.250, profiles.Batches)
		alloc, err := NewAllocator(meta, AllocatorOptions{
			NetLatencySec: 0.002, KeepWarm: true, Headroom: 0.30,
			SolveTimeLimit: 2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return &Tenant{Name: name, Meta: meta, Alloc: alloc, RouteHeadroom: 0.30}
	}
	x, y, z := mk("x"), mk("y"), mk("z")
	m, err := NewMultiController(22, []*Tenant{x, y, z})
	if err != nil {
		t.Fatal(err)
	}
	// All three tenants hungry: the 2-server fast class is contended, and z
	// wants enough to fill the slow class too.
	for i := 0; i < 12; i++ {
		x.Meta.ObserveDemand(400)
		y.Meta.ObserveDemand(400)
		z.Meta.ObserveDemand(3000)
	}
	if err := m.Step(true); err != nil {
		t.Fatalf("joint step failed under class contention: %v", err)
	}
	cg := m.ClassGrants()
	for i, g := range cg {
		if sumInts(g) < 2 {
			t.Fatalf("tenant %d grant %v below its keep-warm minimum (grants %v)", i, g, cg)
		}
	}
	for c := 0; c < 2; c++ {
		total := 0
		for i := range cg {
			total += cg[i][c]
		}
		if total > m.counts[c] {
			t.Fatalf("class %d oversubscribed after keep-warm repair: %v", c, cg)
		}
	}
}

// Small-share tenants' keep-warm floors land on the roomy class, not the
// scarce fast one: four 1%-share tenants on a fast:4/slow:28 fleet have a
// feasible floor assignment and must construct. Regression test for the
// floor raise piling every tenant onto class 0.
func TestHeteroKeepWarmFloorsAvoidScarceClass(t *testing.T) {
	mk := func(name string) *Tenant {
		g := profiles.TrafficTree() // 3 tasks
		classes := []profiles.Class{
			{Name: "fast", Count: 4, Speed: 2.0},
			{Name: "slow", Count: 28, Speed: 1.0},
		}
		prof := (&profiles.Profiler{}).ProfileGraphClasses(g, profiles.Batches, classes)
		meta := NewMetadataStoreHetero(g, classes, prof, 0.250, profiles.Batches)
		alloc, err := NewAllocator(meta, AllocatorOptions{
			NetLatencySec: 0.002, KeepWarm: true, Headroom: 0.30,
			SolveTimeLimit: 2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return &Tenant{Name: name, Meta: meta, Alloc: alloc, MinShare: 0.01, RouteHeadroom: 0.30}
	}
	tenants := []*Tenant{mk("a"), mk("b"), mk("c"), mk("d")}
	m, err := NewMultiController(32, tenants)
	if err != nil {
		t.Fatalf("feasible floor assignment rejected: %v", err)
	}
	for _, tn := range tenants {
		if tn.floorByClass[0] > 1 {
			t.Fatalf("tenant %s keep-warm floors piled onto the scarce class: %v", tn.Name, tn.floorByClass)
		}
		if sumInts(tn.floorByClass) < 3 {
			t.Fatalf("tenant %s floors %v below keep-warm", tn.Name, tn.floorByClass)
		}
	}
	_ = m
}

// The greedy last-resort plan respects per-class capacity on a mixed fleet:
// with a fast class smaller than the task count, the fastest configs cannot
// all pile onto it — each task reserves a slot on a class that can host it.
// Regression test for greedyPlan oversubscribing a scarce class.
func TestHeteroGreedyPlanRespectsClassCounts(t *testing.T) {
	g := profiles.TrafficTree() // 3 tasks
	classes := []profiles.Class{
		{Name: "fast", Count: 2, Speed: 2.0},
		{Name: "slow", Count: 20, Speed: 0.5},
	}
	prof := (&profiles.Profiler{}).ProfileGraphClasses(g, profiles.Batches, classes)
	meta := NewMetadataStoreHetero(g, classes, prof, 0.250, profiles.Batches)
	a, err := NewAllocator(meta, AllocatorOptions{
		NetLatencySec: 0.002, KeepWarm: true, Headroom: 0.30,
		SolveTimeLimit: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := a.greedyPlan(5000)
	byClass := make([]int, len(classes))
	for _, as := range plan.Assignments {
		byClass[as.Class] += as.Replicas
	}
	for c, n := range byClass {
		if n > classes[c].Count {
			t.Fatalf("greedy plan hosts %d replicas on class %q (capacity %d): %+v",
				n, classes[c].Name, classes[c].Count, plan.Assignments)
		}
	}
	if plan.ServersUsed > a.Opts.Servers {
		t.Fatalf("greedy plan uses %d servers on a %d-server fleet", plan.ServersUsed, a.Opts.Servers)
	}
}

// Concurrent observers against a stepping hetero controller: the per-class
// arbiter path must be race-clean (meaningful under -race, where CI and the
// local suite run it).
func TestHeteroArbiterConcurrentAccess(t *testing.T) {
	a := heteroTenant(t, "a", 0)
	b := heteroTenant(t, "b", 0)
	m, err := NewMultiController(16, []*Tenant{a, b})
	if err != nil {
		t.Fatal(err)
	}
	a.Meta.ObserveDemand(500)
	b.Meta.ObserveDemand(700)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 6; j++ {
				a.Meta.ObserveDemand(float64(300 + 200*i + 50*j))
				if err := m.Step(j%2 == 0); err != nil {
					t.Error(err)
					return
				}
				_ = m.Grants()
				_ = m.ClassGrants()
				_ = m.PlanOf(i % 2)
			}
		}(i)
	}
	wg.Wait()
	for c, cg := 0, m.ClassGrants(); c < 2; c++ {
		if cg[0][c]+cg[1][c] > m.counts[c] {
			t.Fatalf("class %d oversubscribed after concurrent stepping: %v", c, cg)
		}
	}
}
