package core

import (
	"math"
	"testing"

	"loki/internal/pipeline"
	"loki/internal/profiles"
)

// lbGraph is a 2-task chain with two variants at each task.
func lbGraph() *pipeline.Graph {
	return &pipeline.Graph{
		Name: "lb",
		Tasks: []pipeline.Task{
			{ID: 0, Name: "det", Variants: []pipeline.Variant{
				{Name: "fast", Accuracy: 0.8, Alpha: 0.002, Beta: 0.004, MultFactor: 1.5},
				{Name: "best", Accuracy: 1.0, Alpha: 0.004, Beta: 0.008, MultFactor: 2.0},
			}, Children: []pipeline.Child{{Task: 1, BranchRatio: 0.5}}},
			{ID: 1, Name: "cls", Variants: []pipeline.Variant{
				{Name: "fast", Accuracy: 0.9, Alpha: 0.001, Beta: 0.002, MultFactor: 1},
				{Name: "best", Accuracy: 1.0, Alpha: 0.002, Beta: 0.004, MultFactor: 1},
			}},
		},
	}
}

func lbSpecs() []WorkerSpec {
	return []WorkerSpec{
		{ID: 0, Task: 0, Variant: 1, MaxBatch: 4, QPS: 100, LatencySec: 0.04, Accuracy: 1.0, BudgetSec: 0.08},
		{ID: 1, Task: 0, Variant: 0, MaxBatch: 4, QPS: 200, LatencySec: 0.02, Accuracy: 0.8, BudgetSec: 0.04},
		{ID: 2, Task: 1, Variant: 1, MaxBatch: 4, QPS: 150, LatencySec: 0.03, Accuracy: 1.0, BudgetSec: 0.06},
		{ID: 3, Task: 1, Variant: 0, MaxBatch: 4, QPS: 400, LatencySec: 0.01, Accuracy: 0.9, BudgetSec: 0.02},
	}
}

func staticMult(g *pipeline.Graph) func(pipeline.TaskID, int) float64 {
	return func(t pipeline.TaskID, v int) float64 {
		return g.Tasks[t].Variants[v].MultFactor
	}
}

func TestMostAccurateFirstSaturatesBestWorkers(t *testing.T) {
	g := lbGraph()
	routes := MostAccurateFirst(g, lbSpecs(), 150, staticMult(g))
	// Frontend: 100 QPS to the accurate worker 0 (prob 100/150), rest to 1.
	if len(routes.Frontend) != 2 {
		t.Fatalf("frontend entries = %v", routes.Frontend)
	}
	if routes.Frontend[0].Worker != 0 || math.Abs(routes.Frontend[0].Prob-100.0/150) > 1e-9 {
		t.Fatalf("first entry = %+v, want worker 0 with prob 2/3", routes.Frontend[0])
	}
	if routes.Frontend[1].Worker != 1 || math.Abs(routes.Frontend[1].Prob-50.0/150) > 1e-9 {
		t.Fatalf("second entry = %+v", routes.Frontend[1])
	}
}

func TestRoutingProbabilitiesSumToOneUnderCapacity(t *testing.T) {
	g := lbGraph()
	routes := MostAccurateFirst(g, lbSpecs(), 100, staticMult(g))
	sum := 0.0
	for _, e := range routes.Frontend {
		sum += e.Prob
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("frontend probs sum to %g", sum)
	}
	for _, spec := range lbSpecs() {
		if spec.Task != 0 {
			continue
		}
		table := routes.Tables[spec.ID]
		entries := table.PerChild[1]
		if len(entries) == 0 {
			continue
		}
		s := 0.0
		for _, e := range entries {
			s += e.Prob
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("worker %d child probs sum to %g", spec.ID, s)
		}
	}
}

func TestOverloadShedsInsteadOfOverflowing(t *testing.T) {
	g := lbGraph()
	// Total task-0 capacity is 300; demand 600 → exactly half routed.
	routes := MostAccurateFirst(g, lbSpecs(), 600, staticMult(g))
	sum := 0.0
	for _, e := range routes.Frontend {
		sum += e.Prob
	}
	if math.Abs(sum-0.5) > 1e-9 {
		t.Fatalf("frontend probs sum to %g, want 0.5 (capacity/demand)", sum)
	}
}

func TestBackupTableListsLeftoverCapacity(t *testing.T) {
	g := lbGraph()
	routes := MostAccurateFirst(g, lbSpecs(), 100, staticMult(g))
	// Task 0: worker 0 absorbs all 100 → leftover on worker 1 (200).
	b := routes.Backup[0]
	if len(b) != 1 || b[0].Worker != 1 || math.Abs(b[0].Leftover-200) > 1e-9 {
		t.Fatalf("task-0 backup = %+v", b)
	}
	// Task 1 receives 100×2.0×0.5 = 100 ≤ worker 2's 150.
	found := false
	for _, e := range routes.Backup[1] {
		if e.Worker == 3 && math.Abs(e.Leftover-400) < 1e-9 {
			found = true
		}
	}
	if !found {
		t.Fatalf("task-1 backup missing idle worker 3: %+v", routes.Backup[1])
	}
}

func TestZeroDemandStillRoutes(t *testing.T) {
	g := lbGraph()
	routes := MostAccurateFirst(g, lbSpecs(), 0, staticMult(g))
	if len(routes.Frontend) != 1 || routes.Frontend[0].Prob != 1 {
		t.Fatalf("frontend = %+v, want single certain route", routes.Frontend)
	}
	if routes.Frontend[0].Worker != 0 {
		t.Fatalf("zero-demand route goes to worker %d, want the most accurate (0)", routes.Frontend[0].Worker)
	}
}

func TestMultFactorDrivesChildDemand(t *testing.T) {
	g := lbGraph()
	// Demand 100 through the accurate detector (mult 2.0, ratio 0.5) →
	// 100 child queries: worker 2 (acc 1.0, cap 150) takes all of them.
	routes := MostAccurateFirst(g, lbSpecs(), 100, staticMult(g))
	entries := routes.Tables[0].PerChild[1]
	if len(entries) != 1 || entries[0].Worker != 2 {
		t.Fatalf("child routing = %+v, want all to worker 2", entries)
	}
}

func TestExpandPlanAssignsDenseIDs(t *testing.T) {
	plan := &Plan{Assignments: []Assignment{
		{Task: 0, Variant: 1, MaxBatch: 4, Replicas: 3, QPS: 10},
		{Task: 1, Variant: 0, MaxBatch: 2, Replicas: 2, QPS: 20},
	}}
	specs := ExpandPlan(plan)
	if len(specs) != 5 {
		t.Fatalf("got %d specs, want 5", len(specs))
	}
	for i, s := range specs {
		if int(s.ID) != i {
			t.Fatalf("spec %d has ID %d", i, s.ID)
		}
	}
	if specs[3].Task != 1 {
		t.Fatalf("spec 3 task = %d, want 1", specs[3].Task)
	}
}

func TestControllerCachesPlansByDemandBucket(t *testing.T) {
	g := profiles.TrafficChain()
	prof := (&profiles.Profiler{}).ProfileGraph(g, profiles.Batches)
	meta := NewMetadataStore(g, prof, 0.250, profiles.Batches)
	alloc, err := NewAllocator(meta, AllocatorOptions{
		Servers: 20, NetLatencySec: 0.002, KeepWarm: true, Headroom: 0.30,
	})
	if err != nil {
		t.Fatal(err)
	}
	published := 0
	ctrl := NewController(meta, alloc, func(*Plan, *Routes) { published++ })
	meta.ObserveDemand(400)
	if err := ctrl.Step(true); err != nil {
		t.Fatal(err)
	}
	if ctrl.Allocates() != 1 || published != 1 {
		t.Fatalf("allocates=%d published=%d", ctrl.Allocates(), published)
	}
	// Same bucket: no new MILP solve, but routing is refreshed.
	if err := ctrl.Step(true); err != nil {
		t.Fatal(err)
	}
	if ctrl.Allocates() != 1 {
		t.Fatalf("cache miss on identical demand: %d allocates", ctrl.Allocates())
	}
	// Different demand: new solve.
	meta.ObserveDemand(2000)
	meta.ObserveDemand(2000)
	meta.ObserveDemand(2000)
	if err := ctrl.Step(true); err != nil {
		t.Fatal(err)
	}
	if ctrl.Allocates() != 2 {
		t.Fatalf("expected a second allocation, got %d", ctrl.Allocates())
	}
}

func TestControllerReactiveThreshold(t *testing.T) {
	g := profiles.TrafficChain()
	prof := (&profiles.Profiler{}).ProfileGraph(g, profiles.Batches)
	meta := NewMetadataStore(g, prof, 0.250, profiles.Batches)
	alloc, err := NewAllocator(meta, AllocatorOptions{
		Servers: 20, NetLatencySec: 0.002, KeepWarm: true, Headroom: 0.30,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewController(meta, alloc, nil)
	meta.ObserveDemand(400)
	if err := ctrl.Step(true); err != nil {
		t.Fatal(err)
	}
	base := ctrl.Allocates()
	// A small drift must not trigger a reactive solve.
	meta.ObserveDemand(420)
	if err := ctrl.Step(false); err != nil {
		t.Fatal(err)
	}
	if ctrl.Allocates() != base {
		t.Fatal("reactive step reallocated on a small drift")
	}
	if ctrl.Plan() == nil || ctrl.Routes() == nil {
		t.Fatal("controller lost its standing plan")
	}
}

func TestMergeEntriesCoalescesDuplicates(t *testing.T) {
	in := []RouteEntry{{Worker: 1, Prob: 0.3}, {Worker: 2, Prob: 0.2}, {Worker: 1, Prob: 0.1}}
	out := mergeEntries(in)
	if len(out) != 2 {
		t.Fatalf("got %d entries, want 2", len(out))
	}
	if out[0].Worker != 1 || math.Abs(out[0].Prob-0.4) > 1e-12 {
		t.Fatalf("merged entry = %+v", out[0])
	}
}
