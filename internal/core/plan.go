// Package core implements Loki's Controller: the Resource Manager (§4),
// which periodically solves MILPs for hardware and accuracy scaling, the
// Load Balancer (§5) with its MostAccurateFirst routing algorithm and
// backup tables for opportunistic rerouting, and the Metadata Store that
// feeds them both. This package is the paper's primary contribution.
package core

import (
	"fmt"
	"sort"
	"strings"

	"loki/internal/pipeline"
)

// Mode records which scaling regime produced a plan.
type Mode int8

// Scaling regimes (§4).
const (
	// HardwareScaling: demand is served entirely with the most accurate
	// variants, minimizing the number of active servers (step 1).
	HardwareScaling Mode = iota
	// AccuracyScaling: the whole cluster is in use and accuracy is
	// sacrificed just enough to meet demand (step 2).
	AccuracyScaling
	// Saturated: even the least accurate configuration cannot serve the
	// demand; the plan serves the largest possible fraction and the rest
	// must be dropped at runtime (the regime beyond Figure 1's phase 3).
	Saturated
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case HardwareScaling:
		return "hardware-scaling"
	case AccuracyScaling:
		return "accuracy-scaling"
	case Saturated:
		return "saturated"
	default:
		return "unknown"
	}
}

// Assignment is one entry of a resource allocation plan: how many replicas
// of a given model variant to host, and the maximum batch size each replica
// may form (x(i,k) and y(i,k) in Table 1).
type Assignment struct {
	Task     pipeline.TaskID
	Variant  int
	MaxBatch int
	Replicas int

	// Class is the hardware class hosting these replicas (index into the
	// cluster's class set; 0 on a homogeneous cluster) and ClassName its
	// registered name. Latency and throughput below are profiled on this
	// class, so the same variant on a faster class is a distinct assignment.
	Class     int
	ClassName string

	// Profiled characteristics of one replica under this configuration,
	// copied from the Metadata Store at allocation time.
	QPS        float64 // throughput of one replica
	LatencySec float64 // batch processing latency
	Accuracy   float64 // normalized single-model accuracy

	// BudgetSec is the per-task latency budget for requests served by
	// these replicas: twice the batch latency, since a query may wait in
	// the queue for as long as one batch execution (§4.1's SLO/2 rule).
	BudgetSec float64
}

// PathFlow is the fraction of incoming demand the allocator expects to flow
// through one root-to-sink configuration path.
type PathFlow struct {
	Tasks    []pipeline.TaskID
	Variants []int
	Batches  []int
	Fraction float64 // of the demand toward this path's sink
	Accuracy float64 // end-to-end Â(p)
}

// Plan is a complete resource allocation (§2.2.1): variant choice,
// replication factor, and max batch size per hosted variant, plus the
// expected path flows that realize it.
type Plan struct {
	Mode        Mode
	Demand      float64 // demand (QPS) the plan was sized for
	ServersUsed int
	// ServersByClass is ServersUsed broken down per hardware class (indexed
	// like the cluster's class set). The multi-tenant arbiter splits these
	// vectors, not scalar counts, when the pool is contended.
	ServersByClass []int
	// CostPerHour is the plan's dollar rate: active replicas weighted by
	// their class's CostPerHour. Zero on unpriced fleets.
	CostPerHour float64
	// ServedFraction is 1 except in Saturated mode, where it is the
	// fraction of demand the plan can serve.
	ServedFraction float64
	// ExpectedAccuracy is the demand-weighted mean end-to-end accuracy over
	// sinks, assuming flows follow PathFlows.
	ExpectedAccuracy float64
	Assignments      []Assignment
	PathFlows        []PathFlow
	// SolveStats records how the MILP solve went, for §6.5-style reporting.
	SolveStats SolveStats
}

// SolveStats captures optimizer effort for the runtime-overhead experiment.
type SolveStats struct {
	Step        int // 1 = hardware scaling, 2 = accuracy scaling, 3 = saturation
	Nodes       int
	LPIters     int
	Paths       int // config paths after pruning
	Vars        int
	Constraints int
	Proven      bool // solved to proven optimality
	// Truncated marks a plan whose search was cut by a resource limit
	// (wall clock, node budget, stall) rather than ending deterministically.
	// Such plans are timing-dependent; the tenant plan cache treats them as
	// provisional and retries them at fine demand granularity.
	Truncated bool
	// Greedy marks a plan produced by the greedy first pass alone — feasible
	// by construction but never proven optimal. Only the arbiter's
	// greedy-replace budget emits these; plans that went through the branch
	// and bound (even greedy-seeded ones) leave it false.
	Greedy bool
}

// Replicas returns the total replica count of the plan.
func (p *Plan) Replicas() int {
	n := 0
	for _, a := range p.Assignments {
		n += a.Replicas
	}
	return n
}

// Capacity returns the plan's aggregate throughput for a task (replicas ×
// per-replica QPS summed over the task's assignments).
func (p *Plan) Capacity(task pipeline.TaskID) float64 {
	c := 0.0
	for _, a := range p.Assignments {
		if a.Task == task {
			c += float64(a.Replicas) * a.QPS
		}
	}
	return c
}

// ClassUsage returns the replicas the plan hosts on each hardware class,
// keyed by class name, by summing the assignments (hand-built plans without
// class labels report under "default").
func (p *Plan) ClassUsage() map[string]int {
	out := map[string]int{}
	for _, a := range p.Assignments {
		name := a.ClassName
		if name == "" {
			name = "default"
		}
		out[name] += a.Replicas
	}
	return out
}

// String renders a human-readable summary. Hardware-class detail (the
// per-assignment class and the plan's dollar rate) appears only on
// heterogeneous or priced fleets, keeping homogeneous zero-cost output
// identical to the pre-class format.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan[%s] demand=%.1f served=%.0f%% servers=%d acc=%.4f",
		p.Mode, p.Demand, 100*p.ServedFraction, p.ServersUsed, p.ExpectedAccuracy)
	if p.CostPerHour > 0 {
		fmt.Fprintf(&b, " cost=%.2f/h", p.CostPerHour)
	}
	b.WriteString("\n")
	as := append([]Assignment(nil), p.Assignments...)
	sort.Slice(as, func(i, j int) bool {
		if as[i].Task != as[j].Task {
			return as[i].Task < as[j].Task
		}
		if as[i].Variant != as[j].Variant {
			return as[i].Variant < as[j].Variant
		}
		return as[i].Class < as[j].Class
	})
	for _, a := range as {
		fmt.Fprintf(&b, "  task %d variant %d batch %-3d × %-3d (%.1f qps/replica, acc %.3f",
			a.Task, a.Variant, a.MaxBatch, a.Replicas, a.QPS, a.Accuracy)
		if a.ClassName != "" && a.ClassName != "default" {
			fmt.Fprintf(&b, ", class %s", a.ClassName)
		}
		b.WriteString(")\n")
	}
	return b.String()
}
