package core

import (
	"math"
	"sync"

	"loki/internal/forecast"
	"loki/internal/pipeline"
	"loki/internal/profiles"
	"loki/internal/trace"
)

// demandHistoryLen is how many per-second demand samples the store's ring
// retains (about eight minutes) — the §4.2 "recent demand history" record,
// exposed through DemandHistory for diagnostics and tests.
const demandHistoryLen = 512

// MetadataStore holds everything the Resource Manager and Load Balancer
// consult (§3): the pipeline graph, per-variant performance profiles, the
// latency SLO, recent demand history, and the multiplicative factors
// observed by workers and reported through heartbeats. It is safe for
// concurrent use — the live (wall-clock) engine shares it across goroutines.
type MetadataStore struct {
	mu sync.RWMutex

	graph     *pipeline.Graph
	classes   []profiles.Class       // the cluster's hardware classes
	classProf [][][]profiles.Profile // [class][task][variant]
	sloSec    float64
	batches   []int

	demand trace.EWMA // smoothed incoming demand estimate

	// fc, when non-nil, predicts near-future demand for the proactive
	// control plane. It is fed the smoothed estimate after every
	// observation, so a persistence (Last) forecaster reproduces the
	// reactive estimator bit for bit.
	fc forecast.Forecaster

	// hist is a ring of the raw per-second demand samples.
	hist     []float64
	histPos  int
	histLen  int
	lastObs  float64
	lastObsT float64

	// multFactors[task][variant] is an EWMA of the multiplicative factor
	// workers observed while serving that variant; it starts at the
	// profiled value and is refined by heartbeats (§4.2).
	multFactors [][]trace.EWMA

	// liveCounts, when non-nil, is the engine-reported per-class count of
	// servers currently up (fault injection); nil means all up.
	liveCounts []int
}

// NewMetadataStore registers a pipeline, its profiles, and the latency SLO —
// the initial-setup step of §3. The cluster is treated as one homogeneous
// "default" hardware class whose size the Resource Manager supplies
// (AllocatorOptions.Servers); heterogeneous fleets register through
// NewMetadataStoreHetero.
func NewMetadataStore(g *pipeline.Graph, prof [][]profiles.Profile, sloSec float64, batches []int) *MetadataStore {
	return NewMetadataStoreHetero(g,
		[]profiles.Class{{Name: profiles.DefaultClassName, Speed: 1.0}},
		[][][]profiles.Profile{prof}, sloSec, batches)
}

// NewMetadataStoreHetero registers a pipeline with per-class performance
// profiles (classProf indexed [class][task][variant], aligned with classes).
// A single class named "default" with Count 0 defers the cluster size to
// AllocatorOptions.Servers — the homogeneous compatibility path.
func NewMetadataStoreHetero(g *pipeline.Graph, classes []profiles.Class, classProf [][][]profiles.Profile, sloSec float64, batches []int) *MetadataStore {
	m := &MetadataStore{
		graph:     g,
		classes:   append([]profiles.Class(nil), classes...),
		classProf: classProf,
		sloSec:    sloSec,
		batches:   append([]int(nil), batches...),
	}
	m.demand = trace.EWMA{Alpha: 0.35}
	m.multFactors = make([][]trace.EWMA, len(g.Tasks))
	for i := range g.Tasks {
		m.multFactors[i] = make([]trace.EWMA, len(g.Tasks[i].Variants))
		for k := range m.multFactors[i] {
			m.multFactors[i][k] = trace.EWMA{Alpha: 0.2}
			m.multFactors[i][k].Observe(g.Tasks[i].Variants[k].MultFactor)
		}
	}
	return m
}

// Graph returns the registered pipeline graph.
func (m *MetadataStore) Graph() *pipeline.Graph { return m.graph }

// Profiles returns the reference class's profiled performance tables (class
// 0 — on a homogeneous cluster, the only tables there are).
func (m *MetadataStore) Profiles() [][]profiles.Profile { return m.classProf[0] }

// ClassProfiles returns the per-class performance tables, indexed
// [class][task][variant] and aligned with Classes.
func (m *MetadataStore) ClassProfiles() [][][]profiles.Profile { return m.classProf }

// Classes returns the cluster's hardware classes. The homogeneous
// compatibility path registers one "default" class whose Count of 0 defers
// the cluster size to AllocatorOptions.Servers.
func (m *MetadataStore) Classes() []profiles.Class { return m.classes }

// SLO returns the end-to-end latency SLO in seconds.
func (m *MetadataStore) SLO() float64 { return m.sloSec }

// SetLiveClassCounts records the per-class count of servers currently up,
// pushed by the serving engine whenever a fault event fires or recovers (the
// heartbeat timeout of a real fleet). Nil clears the record, restoring the
// static class counts.
func (m *MetadataStore) SetLiveClassCounts(counts []int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if counts == nil {
		m.liveCounts = nil
		return
	}
	m.liveCounts = append([]int(nil), counts...)
}

// LiveClassCounts returns the per-class count of servers currently up — the
// static class counts unless the engine has reported faults. The slice is a
// copy, aligned with Classes.
func (m *MetadataStore) LiveClassCounts() []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.liveCounts != nil {
		return append([]int(nil), m.liveCounts...)
	}
	out := make([]int, len(m.classes))
	for i, cl := range m.classes {
		out[i] = cl.Count
	}
	return out
}

// Batches returns the allowed batch sizes.
func (m *MetadataStore) Batches() []int { return m.batches }

// SetForecaster installs the demand forecaster PredictedDemand consults.
// The store feeds it the smoothed estimate after every observation, so a
// forecast.Last forecaster reproduces the reactive estimator exactly and
// "forecasting off" (nil, the default) and "identity forecaster" are
// indistinguishable. Install before serving starts; the store serializes
// all forecaster access under its own lock.
func (m *MetadataStore) SetForecaster(f forecast.Forecaster) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fc = f
}

// ObserveDemand folds a demand measurement (QPS over the last reporting
// interval, as recorded by the Frontend) into the EWMA estimate. Callers
// with no clock of their own (pre-serving warm-up) get a synthetic
// one-second spacing; engines report through ObserveDemandAt.
func (m *MetadataStore) ObserveDemand(qps float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.observeLocked(m.lastObsT+1, qps)
}

// ObserveDemandAt is ObserveDemand stamped with the engine time of the
// measurement, which the forecaster needs to convert planning horizons into
// sample steps.
func (m *MetadataStore) ObserveDemandAt(t, qps float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.observeLocked(t, qps)
}

func (m *MetadataStore) observeLocked(t, qps float64) {
	m.demand.Observe(qps)
	if m.hist == nil {
		m.hist = make([]float64, demandHistoryLen)
	}
	m.hist[m.histPos] = qps
	m.histPos = (m.histPos + 1) % demandHistoryLen
	if m.histLen < demandHistoryLen {
		m.histLen++
	}
	m.lastObs = qps
	m.lastObsT = t
	if m.fc != nil {
		m.fc.Observe(t, m.demand.Value())
	}
}

// DemandEstimate returns the smoothed demand estimate.
func (m *MetadataStore) DemandEstimate() float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.demand.Value()
}

// PredictedDemand returns the forecaster's demand prediction horizonSec
// seconds ahead. Without a forecaster it returns the smoothed estimate — the
// reactive control plane is the degenerate forecast. The write lock is
// deliberate: forecaster implementations are documented as not safe for
// concurrent use, and that contract permits a Predict that mutates model
// state (memoization, lazy refits), so Predict may never run concurrently
// with itself or Observe.
func (m *MetadataStore) PredictedDemand(horizonSec float64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fc == nil {
		return m.demand.Value()
	}
	p := m.fc.Predict(horizonSec)
	if math.IsNaN(p) || p < 0 {
		return 0
	}
	return p
}

// LastObservedDemand returns the most recent raw per-second demand sample
// (zero before any observation) — the "observed" half of the serving CLIs'
// predicted-vs-observed status line.
func (m *MetadataStore) LastObservedDemand() float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.lastObs
}

// DemandHistory returns up to n of the most recent raw per-second demand
// samples in chronological order.
func (m *MetadataStore) DemandHistory(n int) []float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if n > m.histLen {
		n = m.histLen
	}
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m.hist[((m.histPos-n+i)%demandHistoryLen+demandHistoryLen)%demandHistoryLen]
	}
	return out
}

// ReportMultFactor records a worker-observed multiplicative factor for a
// variant (delivered via heartbeat messages).
func (m *MetadataStore) ReportMultFactor(task pipeline.TaskID, variant int, observed float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.multFactors[task][variant].Observe(observed)
}

// MultFactor returns the current estimate of a variant's multiplicative
// factor.
func (m *MetadataStore) MultFactor(task pipeline.TaskID, variant int) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.multFactors[task][variant].Value()
}
