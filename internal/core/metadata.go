package core

import (
	"sync"

	"loki/internal/pipeline"
	"loki/internal/profiles"
	"loki/internal/trace"
)

// MetadataStore holds everything the Resource Manager and Load Balancer
// consult (§3): the pipeline graph, per-variant performance profiles, the
// latency SLO, recent demand history, and the multiplicative factors
// observed by workers and reported through heartbeats. It is safe for
// concurrent use — the live (wall-clock) engine shares it across goroutines.
type MetadataStore struct {
	mu sync.RWMutex

	graph    *pipeline.Graph
	profiles [][]profiles.Profile // [task][variant]
	sloSec   float64
	batches  []int

	demand trace.EWMA // smoothed incoming demand estimate

	// multFactors[task][variant] is an EWMA of the multiplicative factor
	// workers observed while serving that variant; it starts at the
	// profiled value and is refined by heartbeats (§4.2).
	multFactors [][]trace.EWMA
}

// NewMetadataStore registers a pipeline, its profiles, and the latency SLO —
// the initial-setup step of §3.
func NewMetadataStore(g *pipeline.Graph, prof [][]profiles.Profile, sloSec float64, batches []int) *MetadataStore {
	m := &MetadataStore{
		graph:    g,
		profiles: prof,
		sloSec:   sloSec,
		batches:  append([]int(nil), batches...),
	}
	m.demand = trace.EWMA{Alpha: 0.35}
	m.multFactors = make([][]trace.EWMA, len(g.Tasks))
	for i := range g.Tasks {
		m.multFactors[i] = make([]trace.EWMA, len(g.Tasks[i].Variants))
		for k := range m.multFactors[i] {
			m.multFactors[i][k] = trace.EWMA{Alpha: 0.2}
			m.multFactors[i][k].Observe(g.Tasks[i].Variants[k].MultFactor)
		}
	}
	return m
}

// Graph returns the registered pipeline graph.
func (m *MetadataStore) Graph() *pipeline.Graph { return m.graph }

// Profiles returns the profiled performance tables.
func (m *MetadataStore) Profiles() [][]profiles.Profile { return m.profiles }

// SLO returns the end-to-end latency SLO in seconds.
func (m *MetadataStore) SLO() float64 { return m.sloSec }

// Batches returns the allowed batch sizes.
func (m *MetadataStore) Batches() []int { return m.batches }

// ObserveDemand folds a demand measurement (QPS over the last reporting
// interval, as recorded by the Frontend) into the EWMA estimate.
func (m *MetadataStore) ObserveDemand(qps float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.demand.Observe(qps)
}

// DemandEstimate returns the smoothed demand estimate.
func (m *MetadataStore) DemandEstimate() float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.demand.Value()
}

// ReportMultFactor records a worker-observed multiplicative factor for a
// variant (delivered via heartbeat messages).
func (m *MetadataStore) ReportMultFactor(task pipeline.TaskID, variant int, observed float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.multFactors[task][variant].Observe(observed)
}

// MultFactor returns the current estimate of a variant's multiplicative
// factor.
func (m *MetadataStore) MultFactor(task pipeline.TaskID, variant int) float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.multFactors[task][variant].Value()
}
