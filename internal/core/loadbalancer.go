package core

import (
	"sort"

	"loki/internal/pipeline"
)

// WorkerID identifies one worker (one hosted model-variant replica).
type WorkerID int

// WorkerSpec describes the configuration a worker must host: which variant
// of which task, the maximum batch size, and the profiled characteristics
// the Load Balancer and drop policies need at routing time.
type WorkerSpec struct {
	ID       WorkerID
	Task     pipeline.TaskID
	Variant  int
	MaxBatch int
	// Class is the hardware class this replica must be hosted on (index into
	// the cluster's class set, with ClassName its registered name); the
	// engines place the spec on a physical worker of that class and swap
	// models only within it. QPS and LatencySec are profiled on the class,
	// so the Load Balancer's capacity fill weights routes by class-specific
	// service rate for free.
	Class      int
	ClassName  string
	QPS        float64
	LatencySec float64
	Accuracy   float64
	BudgetSec  float64
}

// ExpandPlan flattens a plan into one WorkerSpec per replica, assigning
// dense worker IDs.
func ExpandPlan(plan *Plan) []WorkerSpec {
	var specs []WorkerSpec
	for _, a := range plan.Assignments {
		for r := 0; r < a.Replicas; r++ {
			specs = append(specs, WorkerSpec{
				ID:         WorkerID(len(specs)),
				Task:       a.Task,
				Variant:    a.Variant,
				MaxBatch:   a.MaxBatch,
				Class:      a.Class,
				ClassName:  a.ClassName,
				QPS:        a.QPS,
				LatencySec: a.LatencySec,
				Accuracy:   a.Accuracy,
				BudgetSec:  a.BudgetSec,
			})
		}
	}
	return specs
}

// RouteEntry is one row of a routing table: forward with probability Prob to
// Worker.
type RouteEntry struct {
	Worker WorkerID
	Prob   float64
}

// WorkerTable is the routing table pushed to one worker: for every child
// task, where to forward the intermediate queries this worker emits.
type WorkerTable struct {
	PerChild map[pipeline.TaskID][]RouteEntry
}

// BackupEntry lists a downstream worker with leftover capacity, used by
// opportunistic rerouting (§5.2): a straggler can be redirected to a backup
// worker whose profiled execution time fits its remaining budget.
type BackupEntry struct {
	Worker   WorkerID
	Leftover float64 // unallocated QPS
	ExecSec  float64 // profiled batch execution time
	Accuracy float64
}

// Routes is the complete output of one Load Balancer run.
type Routes struct {
	Specs    []WorkerSpec
	Frontend []RouteEntry                      // demand entry points (root-task workers)
	Tables   map[WorkerID]*WorkerTable         // per-worker forwarding tables
	Backup   map[pipeline.TaskID][]BackupEntry // leftover capacity per task
}

// MostAccurateFirst implements Algorithm 1: walk the pipeline graph in
// topological order, assign each task's incoming demand to its workers in
// non-increasing order of single-model accuracy, compute each worker's
// outgoing demand through its variant's multiplicative factor and the edge
// branch ratios, and fill the children the same way. Because the end-to-end
// accuracy is monotone in single-model accuracies, saturating the most
// accurate workers first maximizes end-to-end pipeline accuracy for the
// demand being routed (§5.1).
//
// multFactor returns the current estimate of a variant's multiplicative
// factor (typically MetadataStore.MultFactor, which folds in heartbeat
// observations). Demand beyond total capacity is spread over a task's
// workers proportionally to capacity — queues absorb it and the drop
// policies decide its fate at runtime.
func MostAccurateFirst(g *pipeline.Graph, specs []WorkerSpec, demand float64,
	multFactor func(pipeline.TaskID, int) float64) *Routes {

	type state struct {
		spec     *WorkerSpec
		incoming float64
		capacity float64 // remaining unallocated QPS
	}
	byTask := make([][]*state, len(g.Tasks))
	for i := range specs {
		s := &state{spec: &specs[i], capacity: specs[i].QPS}
		byTask[s.spec.Task] = append(byTask[s.spec.Task], s)
	}
	for _, ws := range byTask {
		sort.Slice(ws, func(i, j int) bool {
			a, b := ws[i].spec, ws[j].spec
			if a.Accuracy != b.Accuracy {
				return a.Accuracy > b.Accuracy
			}
			if a.QPS != b.QPS {
				return a.QPS > b.QPS
			}
			return a.ID < b.ID
		})
	}

	routes := &Routes{
		Specs:  specs,
		Tables: make(map[WorkerID]*WorkerTable, len(specs)),
		Backup: make(map[pipeline.TaskID][]BackupEntry),
	}
	for i := range specs {
		routes.Tables[specs[i].ID] = &WorkerTable{PerChild: map[pipeline.TaskID][]RouteEntry{}}
	}

	// fill assigns `amount` of demand to the task's workers most accurate
	// first, returning the route entries with probabilities relative to
	// `amount`. Overflow beyond total capacity is spread proportionally to
	// worker capacity.
	fill := func(task pipeline.TaskID, amount float64) []RouteEntry {
		ws := byTask[task]
		if len(ws) == 0 {
			return nil
		}
		if amount <= 0 {
			// No measurable demand: send everything to the most accurate
			// worker so stray requests still have a route.
			ws[0].incoming += amount
			return []RouteEntry{{Worker: ws[0].spec.ID, Prob: 1}}
		}
		var entries []RouteEntry
		remaining := amount
		for _, w := range ws {
			if remaining <= 1e-12 {
				break
			}
			if w.capacity <= 1e-12 {
				continue
			}
			routed := remaining
			if w.capacity < routed {
				routed = w.capacity
			}
			w.capacity -= routed
			w.incoming += routed
			remaining -= routed
			entries = append(entries, RouteEntry{Worker: w.spec.ID, Prob: routed / amount})
		}
		// Overload: probabilities sum below 1 and the remainder is left
		// unrouted. The unroutable share is shed at the routing point
		// (frontend admission control / forwarding drop) instead of being
		// spread over already-full queues, which would push every queued
		// request past its deadline and turn a capacity shortfall into a
		// total outage.
		return mergeEntries(entries)
	}

	routes.Frontend = fill(0, demand)

	for _, task := range g.TopoOrder() {
		t := &g.Tasks[task]
		for _, w := range byTask[task] {
			for _, child := range t.Children {
				out := w.incoming * multFactor(task, w.spec.Variant) * child.BranchRatio
				entries := fill(child.Task, out)
				routes.Tables[w.spec.ID].PerChild[child.Task] = entries
			}
		}
	}

	// Backup tables: workers with leftover capacity, most accurate first.
	for task := range g.Tasks {
		var b []BackupEntry
		for _, w := range byTask[task] {
			if w.capacity > 1e-9 {
				b = append(b, BackupEntry{
					Worker:   w.spec.ID,
					Leftover: w.capacity,
					ExecSec:  w.spec.LatencySec,
					Accuracy: w.spec.Accuracy,
				})
			}
		}
		sort.Slice(b, func(i, j int) bool {
			if b[i].Accuracy != b[j].Accuracy {
				return b[i].Accuracy > b[j].Accuracy
			}
			return b[i].ExecSec < b[j].ExecSec
		})
		if len(b) > 0 {
			routes.Backup[pipeline.TaskID(task)] = b
		}
	}
	return routes
}

// mergeEntries coalesces duplicate workers (a worker can receive both a
// capacity share and an overflow share).
func mergeEntries(entries []RouteEntry) []RouteEntry {
	if len(entries) < 2 {
		return entries
	}
	idx := map[WorkerID]int{}
	out := entries[:0]
	for _, e := range entries {
		if j, ok := idx[e.Worker]; ok {
			out[j].Prob += e.Prob
			continue
		}
		idx[e.Worker] = len(out)
		out = append(out, e)
	}
	return out
}
