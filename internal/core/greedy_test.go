package core

import (
	"math"
	"testing"
	"time"

	"loki/internal/lp"
	"loki/internal/milp"
)

// greedySeedFor builds the (demand, step) model and runs the greedy first
// pass against it, returning the model and the seed (nil when the greedy
// found no fitting combo).
func greedySeedFor(t *testing.T, a *Allocator, demand float64, step stepKind) (*builtLP, []float64) {
	t.Helper()
	st := a.state
	st.mu.Lock()
	defer st.mu.Unlock()
	bl := a.builtFor(demand, step)
	for cl, row := range bl.clusterRows {
		bl.prob.Cons[row].RHS = float64(a.counts[cl])
	}
	return bl, a.greedySeed(demand, step, bl)
}

// verifyModelPoint checks x against every constraint of the step model, the
// integrality of every replica-count variable, and the per-class server
// budgets.
func verifyModelPoint(t *testing.T, a *Allocator, bl *builtLP, x []float64) {
	t.Helper()
	const tol = 1e-6
	if len(x) != bl.nvars {
		t.Fatalf("seed has %d vars, model has %d", len(x), bl.nvars)
	}
	for j, v := range x {
		if v < -tol {
			t.Fatalf("seed var %d negative: %v", j, v)
		}
	}
	totals := make([]int, len(a.classes))
	for ci, vi := range bl.cfgVar {
		if vi < 0 {
			continue
		}
		v := x[vi]
		if math.Abs(v-math.Round(v)) > tol {
			t.Fatalf("replica count var %d not integral: %v", vi, v)
		}
		totals[a.cfgs[ci].class] += int(math.Round(v))
	}
	for cl, n := range totals {
		if n > a.counts[cl] {
			t.Fatalf("class %d uses %d replicas, budget %d", cl, n, a.counts[cl])
		}
	}
	for i, c := range bl.prob.Cons {
		lhs := 0.0
		for _, tm := range c.Terms {
			lhs += tm.Coef * x[tm.Var]
		}
		ok := true
		switch c.Sense {
		case lp.LE:
			ok = lhs <= c.RHS+tol
		case lp.GE:
			ok = lhs >= c.RHS-tol
		default:
			ok = math.Abs(lhs-c.RHS) <= tol
		}
		if !ok {
			t.Fatalf("seed violates constraint %d: lhs=%v %v rhs=%v", i, lhs, c.Sense, c.RHS)
		}
	}
}

// The greedy first pass must only ever hand the branch and bound points that
// satisfy the step model exactly: every constraint, integral replica counts,
// and the per-class budgets. Covered across tree, chain, and heterogeneous
// fleets at several demands and steps.
func TestGreedySeedFeasible(t *testing.T) {
	allocs := []struct {
		name string
		a    *Allocator
	}{
		{"tree", treeAllocator(t, 20, 0.250)},
		{"chain", chainAllocator(t, 20, 0.250)},
		{"hetero", heteroTenant(t, "h", 0).Alloc.(*Allocator)},
	}
	steps := []stepKind{stepHardware, stepAccuracy, stepSaturation}
	seeded := 0
	for _, tc := range allocs {
		for _, d := range []float64{0, 35, 90, 180, 400, 900} {
			for _, step := range steps {
				bl, x := greedySeedFor(t, tc.a, d, step)
				if x == nil {
					continue
				}
				seeded++
				verifyModelPoint(t, tc.a, bl, x)
			}
		}
	}
	if seeded == 0 {
		t.Fatal("greedy produced no seed on any fixture — the warm start path is dead")
	}
}

// On proof-seeking searches the greedy warm start must never change the
// result: solving the hardware-scaling model with and without the seed has to
// return the identical status, objective, and solution vector. This is the
// contract solveStep relies on to keep recorded goldens bit-identical.
func TestGreedyWarmStartProofParity(t *testing.T) {
	a := treeAllocator(t, 20, 0.250)
	seeded := false
	for _, d := range []float64{40, 110, 230} {
		bl, gx := greedySeedFor(t, a, d, stepHardware)
		if gx == nil {
			continue
		}
		seeded = true
		mask := make([]bool, bl.nvars)
		for _, vi := range bl.cfgVar {
			if vi >= 0 {
				mask[vi] = true
			}
		}
		prob := &milp.Problem{LP: bl.prob, Integer: mask}
		cold, err := milp.SolveWithOptions(prob, milp.Options{ObjIntegral: true})
		if err != nil {
			t.Fatal(err)
		}
		warm, err := milp.SolveWithOptions(prob, milp.Options{
			ObjIntegral: true,
			WarmStarts:  [][]float64{gx},
		})
		if err != nil {
			t.Fatal(err)
		}
		if cold.Status != milp.Optimal {
			t.Fatalf("demand %v: cold solve status %v, want proven optimal", d, cold.Status)
		}
		if warm.Status != cold.Status || warm.Objective != cold.Objective {
			t.Fatalf("demand %v: warm (%v, %v) differs from cold (%v, %v)",
				d, warm.Status, warm.Objective, cold.Status, cold.Objective)
		}
		if len(warm.X) != len(cold.X) {
			t.Fatalf("demand %v: solution lengths differ", d)
		}
		for j := range cold.X {
			if warm.X[j] != cold.X[j] {
				t.Fatalf("demand %v: x[%d] warm %v != cold %v", d, j, warm.X[j], cold.X[j])
			}
		}
	}
	if !seeded {
		t.Fatal("greedy produced no hardware-step seed at any demand")
	}
}

// A greedy plan is feasible but never proven optimal, so the MILP's plan can
// only ever match or beat it: on hardware scaling the solver must never use
// more servers than the greedy deployment. Equivalently, a greedy objective
// worse than the MILP's is never returned from the seeded solve. Also pins
// that standalone greedy plans are marked and capped correctly, and that the
// regular Allocate path never returns a greedy-only plan.
func TestGreedyPlanNeverBeatsMILP(t *testing.T) {
	a := treeAllocator(t, 20, 0.250)
	sawGreedy := false
	for _, d := range []float64{0, 40, 90, 180, 320} {
		gp, ok := a.GreedyAllocate(d, nil)
		if !ok {
			continue
		}
		sawGreedy = true
		if !gp.SolveStats.Greedy {
			t.Fatalf("demand %v: standalone greedy plan not marked Greedy", d)
		}
		sum := 0
		for cl, n := range gp.ServersByClass {
			if n > a.counts[cl] {
				t.Fatalf("demand %v: greedy plan uses %d servers of class %d, budget %d",
					d, n, cl, a.counts[cl])
			}
			sum += n
		}
		if sum != gp.ServersUsed {
			t.Fatalf("demand %v: ServersByClass sums to %d, ServersUsed %d", d, sum, gp.ServersUsed)
		}
		mp, err := a.Allocate(d)
		if err != nil {
			t.Fatal(err)
		}
		if mp.SolveStats.Greedy {
			t.Fatalf("demand %v: Allocate returned a greedy-only plan", d)
		}
		if mp.Mode == HardwareScaling && gp.Mode == HardwareScaling &&
			mp.ServersUsed > gp.ServersUsed {
			t.Fatalf("demand %v: MILP plan uses %d servers, greedy found %d — the search returned a worse objective than its seed",
				d, mp.ServersUsed, gp.ServersUsed)
		}
	}
	if !sawGreedy {
		t.Fatal("GreedyAllocate never produced a plan")
	}

	// Caps are honored like Capped views: the greedy plan fits the cap, and
	// an absurd cap is rejected rather than violated.
	if gp, ok := a.GreedyAllocate(150, []int{12}); ok {
		if gp.ServersUsed > 12 {
			t.Fatalf("capped greedy plan uses %d servers, cap 12", gp.ServersUsed)
		}
	}
	if _, ok := a.GreedyAllocate(150, []int{12, 9}); ok {
		t.Fatal("greedy accepted a caps vector with the wrong class count")
	}
}

// The arbiter's greedy-replace budget: zero (the default) must keep the
// arbiter fully MILP-driven — bit-identical to the pre-greedy behavior —
// while a positive budget replaces some barely-moved dirty tenants with
// greedy plans that still respect their grants.
func TestArbiterGreedyReplaceBudget(t *testing.T) {
	drive := func(m *MultiController, tenants []*Tenant) {
		t.Helper()
		d := 100.0
		for round := 0; round < 16; round++ {
			for _, tn := range tenants {
				for i := 0; i < 12; i++ {
					tn.Meta.ObserveDemand(d)
				}
			}
			if err := m.Step(true); err != nil {
				t.Fatal(err)
			}
			grants := m.Grants()
			for i, tn := range tenants {
				plan := m.PlanOf(i)
				if plan == nil {
					t.Fatalf("round %d: tenant %s has no plan", round, tn.Name)
				}
				if plan.ServersUsed > grants[i] {
					t.Fatalf("round %d: tenant %s plan uses %d servers, grant %d",
						round, tn.Name, plan.ServersUsed, grants[i])
				}
			}
			d *= 1.05 // 5% drift: inside the 20% move window, across cache buckets
		}
	}

	mk := func() (*MultiController, []*Tenant) {
		t.Helper()
		pool := 40
		a := arbiterTenant(t, "a", pool, 0)
		b := arbiterTenant(t, "b", pool, 0)
		a.Alloc.(*Allocator).Opts.SolveTimeLimit = 2 * time.Second
		b.Alloc.(*Allocator).Opts.SolveTimeLimit = 2 * time.Second
		m, err := NewMultiController(pool, []*Tenant{a, b})
		if err != nil {
			t.Fatal(err)
		}
		return m, []*Tenant{a, b}
	}

	m0, t0 := mk()
	drive(m0, t0)
	if n := m0.GreedyReplaced(); n != 0 {
		t.Fatalf("budget 0 produced %d greedy replacements, want none", n)
	}
	for i := range t0 {
		if plan := m0.PlanOf(i); plan.SolveStats.Greedy {
			t.Fatalf("budget 0: tenant %d holds a greedy plan", i)
		}
	}

	m1, t1 := mk()
	m1.GreedyReplaceBudget = 2
	drive(m1, t1)
	if n := m1.GreedyReplaced(); n == 0 {
		t.Fatal("positive budget never replaced a plan greedily")
	}
	perf := t1[0].Alloc.(*Allocator).Perf()
	if perf.GreedyPlans == 0 && t1[1].Alloc.(*Allocator).Perf().GreedyPlans == 0 {
		t.Fatal("GreedyReplaced > 0 but no allocator counted a greedy plan")
	}
}
