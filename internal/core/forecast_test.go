package core

import (
	"testing"

	"loki/internal/forecast"
	"loki/internal/profiles"
)

// recordingPlanner captures the demand each Allocate call plans for.
type recordingPlanner struct {
	demands []float64
	servers int
}

func (r *recordingPlanner) Allocate(demand float64) (*Plan, error) {
	r.demands = append(r.demands, demand)
	return &Plan{ServersUsed: r.servers}, nil
}

func (r *recordingPlanner) AllocateCapped(demand float64, caps []int) (*Plan, error) {
	r.demands = append(r.demands, demand)
	total := 0
	for _, n := range caps {
		total += n
	}
	return &Plan{ServersUsed: total}, nil
}

// stubForecaster predicts a fixed value regardless of history.
type stubForecaster struct{ pred float64 }

func (s *stubForecaster) Observe(t, rate float64)         {}
func (s *stubForecaster) Predict(horizon float64) float64 { return s.pred }

func forecastMeta(t *testing.T) *MetadataStore {
	t.Helper()
	g := profiles.TrafficChain()
	prof := (&profiles.Profiler{}).ProfileGraph(g, profiles.Batches)
	return NewMetadataStore(g, prof, 0.250, profiles.Batches)
}

// The controller plans for the forecaster's prediction when it exceeds the
// smoothed estimate (proactive scale-up) and for the estimate when the
// prediction is lower (reactive scale-down — the hysteresis).
func TestControllerPlansAgainstPrediction(t *testing.T) {
	meta := forecastMeta(t)
	fc := &stubForecaster{}
	meta.SetForecaster(fc)
	rec := &recordingPlanner{servers: 4}
	c := NewController(meta, rec, nil)

	meta.ObserveDemand(100)
	fc.pred = 400 // spike forecast: plan for the prediction
	if err := c.Step(true); err != nil {
		t.Fatal(err)
	}
	if got := rec.demands[len(rec.demands)-1]; got != 400 {
		t.Fatalf("planned for %v, want the 400 QPS prediction", got)
	}

	fc.pred = 10 // decay forecast: scale-down still follows the estimate
	if err := c.Step(true); err != nil {
		t.Fatal(err)
	}
	if got := rec.demands[len(rec.demands)-1]; got != meta.DemandEstimate() {
		t.Fatalf("planned for %v, want the smoothed estimate %v (scale-down hysteresis)",
			got, meta.DemandEstimate())
	}
}

// A prediction crossing the reallocation threshold triggers an unforced
// re-plan before the demand estimate itself moves: the spike is provisioned
// during the ramp.
func TestPredictionTriggersEarlyReallocation(t *testing.T) {
	meta := forecastMeta(t)
	fc := &stubForecaster{pred: 100}
	meta.SetForecaster(fc)
	rec := &recordingPlanner{servers: 2}
	c := NewController(meta, rec, nil)

	meta.ObserveDemand(100)
	if err := c.Step(true); err != nil {
		t.Fatal(err)
	}
	n := len(rec.demands)

	// Estimate unchanged, but the forecaster now sees a spike coming.
	fc.pred = 300
	if err := c.Step(false); err != nil {
		t.Fatal(err)
	}
	if len(rec.demands) != n+1 {
		t.Fatalf("unforced step with a 3x prediction did not re-plan (solves %d -> %d)", n, len(rec.demands))
	}
	if got := rec.demands[len(rec.demands)-1]; got != 300 {
		t.Fatalf("early re-plan used %v, want 300", got)
	}
}

// In the joint desire pass, a tenant whose forecaster predicts a spike
// raises its want before its demand moves — claiming idle neighbour servers
// proactively.
func TestArbiterDesirePassUsesPrediction(t *testing.T) {
	const pool = 20
	mk := func() (*Tenant, *recordingPlanner) {
		rec := &recordingPlanner{servers: 3}
		return &Tenant{Meta: forecastMeta(t), Alloc: rec}, rec
	}
	a, recA := mk()
	b, recB := mk()
	fc := &stubForecaster{pred: 50}
	a.Meta.SetForecaster(fc)
	m, err := NewMultiController(pool, []*Tenant{a, b})
	if err != nil {
		t.Fatal(err)
	}
	a.Meta.ObserveDemand(50)
	b.Meta.ObserveDemand(50)
	if err := m.Step(true); err != nil {
		t.Fatal(err)
	}

	fc.pred = 800 // tenant a's forecasted spike; estimates unchanged
	if err := m.Step(true); err != nil {
		t.Fatal(err)
	}
	if got := recA.demands[len(recA.demands)-1]; got != 800 {
		t.Fatalf("tenant a desire pass planned for %v, want the 800 QPS prediction", got)
	}
	if got := recB.demands[len(recB.demands)-1]; got != b.Meta.DemandEstimate() {
		t.Fatalf("tenant b desire pass planned for %v, want its own estimate %v", got, b.Meta.DemandEstimate())
	}
}

// PredictedDemand without a forecaster returns the smoothed estimate — the
// exact float the reactive planner uses, so max(est, pred) degenerates to
// est bit for bit.
func TestPredictedDemandDefaultsToEstimate(t *testing.T) {
	meta := forecastMeta(t)
	for _, q := range []float64{100, 180, 90, 260.5} {
		meta.ObserveDemand(q)
		if got, want := meta.PredictedDemand(10), meta.DemandEstimate(); got != want {
			t.Fatalf("PredictedDemand = %v, want estimate %v", got, want)
		}
	}
}

// The store feeds the forecaster the smoothed estimate, so a Last forecaster
// predicts exactly the estimate (the identity guarantee), and the raw
// history ring keeps the unsmoothed samples.
func TestMetadataFeedsForecasterSmoothedSignal(t *testing.T) {
	meta := forecastMeta(t)
	meta.SetForecaster(&forecast.Last{})
	samples := []float64{100, 300, 50, 220}
	for i, q := range samples {
		meta.ObserveDemandAt(float64(i+1), q)
	}
	if got, want := meta.PredictedDemand(10), meta.DemandEstimate(); got != want {
		t.Fatalf("Last forecaster predicts %v, want the smoothed estimate %v", got, want)
	}
	hist := meta.DemandHistory(len(samples))
	for i, q := range samples {
		if hist[i] != q {
			t.Fatalf("history[%d] = %v, want raw sample %v", i, hist[i], q)
		}
	}
	if got := meta.LastObservedDemand(); got != 220 {
		t.Fatalf("LastObservedDemand = %v, want 220", got)
	}
}

// The history ring wraps without losing order.
func TestDemandHistoryRingWraps(t *testing.T) {
	meta := forecastMeta(t)
	n := demandHistoryLen + 37
	for i := 0; i < n; i++ {
		meta.ObserveDemandAt(float64(i), float64(i))
	}
	hist := meta.DemandHistory(demandHistoryLen)
	if len(hist) != demandHistoryLen {
		t.Fatalf("history length %d, want %d", len(hist), demandHistoryLen)
	}
	for i, v := range hist {
		if want := float64(n - demandHistoryLen + i); v != want {
			t.Fatalf("history[%d] = %v, want %v", i, v, want)
		}
	}
	if got := meta.DemandHistory(0); got != nil {
		t.Fatalf("DemandHistory(0) = %v, want nil", got)
	}
}
