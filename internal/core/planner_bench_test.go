package core

import (
	"testing"
	"time"

	"loki/internal/profiles"
)

// benchAllocator builds the traffic-analysis allocator the planner
// benchmarks solve against.
func benchAllocator(b *testing.B, disableReuse bool) *Allocator {
	b.Helper()
	g := profiles.TrafficTree()
	prof := (&profiles.Profiler{}).ProfileGraph(g, profiles.Batches)
	meta := NewMetadataStore(g, prof, 0.250, profiles.Batches)
	a, err := NewAllocator(meta, AllocatorOptions{
		Servers: 20, NetLatencySec: 0.002, KeepWarm: true,
		Headroom: 0.30, SolveTimeLimit: 2 * time.Second,
		DisableReuse: disableReuse,
	})
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkAllocate measures one uncapped Resource Manager solve over a
// cycling demand walk — the desire-pass workload — with the planner's
// cross-solve memory on (the default) and off.
func BenchmarkAllocate(b *testing.B) {
	demands := []float64{110, 230, 180, 320, 140, 280}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"reuse", false}, {"cold", true}} {
		b.Run(mode.name, func(b *testing.B) {
			a := benchAllocator(b, mode.disable)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.Allocate(demands[i%len(demands)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAllocateCapped measures capped re-solves at a fixed demand over
// cycling server budgets — the contention workload the arbiter generates —
// which is where the (demand, step) model memo pays: only the cluster
// row's RHS changes between iterations on the reuse path.
func BenchmarkAllocateCapped(b *testing.B) {
	caps := []int{12, 14, 10, 16, 13}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"reuse", false}, {"cold", true}} {
		b.Run(mode.name, func(b *testing.B) {
			a := benchAllocator(b, mode.disable)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.AllocateCapped(210, []int{caps[i%len(caps)]}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
