package core

import (
	"testing"
	"time"

	"loki/internal/profiles"
)

// benchAllocator builds the traffic-analysis allocator the planner
// benchmarks solve against.
func benchAllocator(b *testing.B, disableReuse bool) *Allocator {
	b.Helper()
	g := profiles.TrafficTree()
	prof := (&profiles.Profiler{}).ProfileGraph(g, profiles.Batches)
	meta := NewMetadataStore(g, prof, 0.250, profiles.Batches)
	a, err := NewAllocator(meta, AllocatorOptions{
		Servers: 20, NetLatencySec: 0.002, KeepWarm: true,
		Headroom: 0.30, SolveTimeLimit: 2 * time.Second,
		DisableReuse: disableReuse,
	})
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkAllocate measures one uncapped Resource Manager solve over a
// cycling demand walk — the desire-pass workload — with the planner's
// cross-solve memory on (the default) and off.
func BenchmarkAllocate(b *testing.B) {
	demands := []float64{110, 230, 180, 320, 140, 280}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"reuse", false}, {"cold", true}} {
		b.Run(mode.name, func(b *testing.B) {
			a := benchAllocator(b, mode.disable)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.Allocate(demands[i%len(demands)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// The tenant plan cache key is a value type packing up to maxKeyClasses
// per-class caps inline; building it must not allocate — at fleet scale every
// tenant constructs one per round, and the old string-concat key put that on
// the hot path's garbage bill.
func TestPlanKeyNoAlloc(t *testing.T) {
	caps := []int{4, 12, 7}
	spilled := false
	allocs := testing.AllocsPerRun(200, func() {
		k := planKey(17, caps)
		if k.big != "" {
			spilled = true
		}
	})
	if spilled {
		t.Fatal("3-class caps spilled to the string overflow key")
	}
	if allocs != 0 {
		t.Fatalf("planKey allocates %.1f objects per call, want 0", allocs)
	}

	// Past maxKeyClasses the key degrades to the string encoding but stays
	// correct: distinct caps produce distinct keys.
	wide := make([]int, maxKeyClasses+2)
	wide[maxKeyClasses] = 9
	other := append([]int(nil), wide...)
	other[maxKeyClasses] = 10
	if planKey(3, wide) == planKey(3, other) {
		t.Fatal("overflow keys collide for distinct caps")
	}
	if planKey(3, wide) != planKey(3, wide) {
		t.Fatal("overflow key not reproducible")
	}
}

// A tenant plan-cache hit is allocation-free end to end: key construction,
// lookup, and the reuse decision. This is what keeps clean tenants cheap in
// the incremental re-solve path.
func TestTenantCacheHitNoAlloc(t *testing.T) {
	tn := arbiterTenant(t, "a", 20, 0)
	if _, err := tn.solve(210, []int{14}, legacyBucketRatio); err != nil {
		t.Fatal(err)
	}
	caps := []int{14}
	var solveErr error
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := tn.solve(210, caps, legacyBucketRatio); err != nil {
			solveErr = err
		}
	})
	if solveErr != nil {
		t.Fatal(solveErr)
	}
	if allocs != 0 {
		t.Fatalf("cache-hit solve allocates %.1f objects per call, want 0", allocs)
	}
}

// BenchmarkAllocateCapped measures capped re-solves at a fixed demand over
// cycling server budgets — the contention workload the arbiter generates —
// which is where the (demand, step) model memo pays: only the cluster
// row's RHS changes between iterations on the reuse path.
func BenchmarkAllocateCapped(b *testing.B) {
	caps := []int{12, 14, 10, 16, 13}
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"reuse", false}, {"cold", true}} {
		b.Run(mode.name, func(b *testing.B) {
			a := benchAllocator(b, mode.disable)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.AllocateCapped(210, []int{caps[i%len(caps)]}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
