package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"loki/internal/lp"
	"loki/internal/milp"
	"loki/internal/pipeline"
	"loki/internal/profiles"
)

// AllocatorOptions tunes the Resource Manager's optimization (§4).
type AllocatorOptions struct {
	// Servers is the cluster size S. On a heterogeneous fleet (the Metadata
	// Store registers several hardware classes, or one class with a positive
	// Count) the per-class counts are authoritative and Servers must either
	// be zero or equal their sum.
	Servers int
	// NetLatencySec is the homogeneous per-hop communication latency
	// subtracted from the SLO during allocation (§4.2).
	NetLatencySec float64
	// MinPathAccuracy, if positive, prunes configuration paths whose
	// end-to-end accuracy falls below it (§1 notes deployments usually
	// impose a minimum acceptable accuracy).
	MinPathAccuracy float64
	// Headroom inflates the demand the allocator provisions for, absorbing
	// sub-interval arrival bursts. 0.05 means 5%.
	Headroom float64
	// KeepWarm keeps at least one replica per task even at zero demand so
	// the pipeline never goes cold.
	KeepWarm bool
	// SolveTimeLimit bounds each MILP solve; zero means 5s. The solver is
	// anytime, so hitting the limit degrades optimality, not correctness.
	SolveTimeLimit time.Duration
	// DisableReuse turns off the planner's cross-solve memory: the
	// (demand, step) LP model memo and the warm-start seeds carried from
	// one adaptation round to the next. Solves whose searches terminate
	// deterministically (optimality proof or gap test) return identical
	// plans either way — reuse only changes how fast they get there and
	// which incumbent a time-limited search has in hand when truncated.
	// The escape hatch exists for A/B measurement and for the public
	// WithPlannerCache(false) option.
	DisableReuse bool
	// DisableStall turns off the wall-clock stall cutoff, letting every
	// search run its full time budget. Solves whose natural duration falls
	// between the stall arming delay (a quarter of SolveTimeLimit) and the
	// limit itself are wall-clock sensitive with the cutoff on; offline
	// experiment drivers that pick generous budgets precisely to get
	// reproducible, exhaustive solves set this. Implied by DisableReuse.
	DisableStall bool
}

// Allocator is the Resource Manager's optimization engine. It owns the
// config-path formulation of the paper's MILPs: the augmented graph over
// (variant, batch) configurations, whose paths have constant latency, so the
// latency SLO (Constraints 4-7) is enforced exactly by pruning infeasible
// paths up front rather than with big-M indicator rows.
type Allocator struct {
	Meta *MetadataStore
	Opts AllocatorOptions

	// classes are the cluster's hardware classes and counts their effective
	// per-class server counts (the homogeneous path resolves the single
	// default class to Opts.Servers). Capped views override counts only.
	classes []profiles.Class
	counts  []int
	// priced is true when any class carries a positive CostPerHour, turning
	// the cost-aware objective terms on. A zero-cost fleet keeps the
	// pre-class objectives bit for bit.
	priced bool

	cfgs        []config  // all latency-feasible configurations
	byTask      [][]int   // config indices per task
	paths       []cfgPath // all feasible root-to-sink config paths
	sinkOf      []int     // canonical sink index per task (index into sinks)
	sinks       []pipeline.TaskID
	pathsBySink [][]int // path indices grouped by terminal sink

	// state is the reusable solving machinery (model memo, warm starts,
	// tableau workspace), shared with every Capped view. Its mutex makes
	// the allocator safe for concurrent use.
	state *solverState
}

// config is one deployable unit: a model variant at a fixed max batch size
// hosted on one hardware class (latency and throughput are class-specific).
type config struct {
	task    pipeline.TaskID
	variant int
	batch   int
	class   int     // hardware class index
	lat     float64 // profiled batch latency on the class (seconds)
	qps     float64 // profiled per-replica throughput on the class
	acc     float64 // normalized accuracy
}

// cfgPath is a root-to-sink path through the configuration graph.
type cfgPath struct {
	cfgs     []int     // config index per hop
	mults    []float64 // m(p, hop): requests reaching hop per root query
	totalLat float64
	acc      float64 // end-to-end Â(p)
	sink     int     // index into a.sinks
}

// NewAllocator builds the configuration graph for the store's pipeline.
func NewAllocator(meta *MetadataStore, opts AllocatorOptions) (*Allocator, error) {
	a := &Allocator{Meta: meta, Opts: opts, state: newSolverState()}
	a.classes = meta.Classes()
	a.counts = make([]int, len(a.classes))
	total := 0
	for i, cl := range a.classes {
		a.counts[i] = cl.Count
		total += cl.Count
		if cl.CostPerHour > 0 {
			a.priced = true
		}
	}
	if len(a.classes) == 1 && a.counts[0] == 0 {
		// Homogeneous compatibility path: the single default class takes its
		// size from the classic Servers option.
		a.counts[0] = opts.Servers
		total = opts.Servers
	}
	if a.Opts.Servers == 0 {
		a.Opts.Servers = total
	} else if a.Opts.Servers != total {
		return nil, fmt.Errorf("core: Servers option (%d) disagrees with the hardware classes' total count (%d)", a.Opts.Servers, total)
	}
	if a.Opts.Servers <= 0 {
		return nil, fmt.Errorf("core: allocator needs a positive cluster size, got %d", a.Opts.Servers)
	}
	if err := meta.Graph().Validate(); err != nil {
		return nil, err
	}
	a.build()
	if len(a.paths) == 0 {
		return nil, fmt.Errorf("core: no configuration path fits the %.0fms SLO — even batch-1 latencies of the fastest variants exceed the compute budget", meta.SLO()*1e3)
	}
	return a, nil
}

// build enumerates configurations and feasible paths.
func (a *Allocator) build() {
	g := a.Meta.Graph()
	classProf := a.Meta.ClassProfiles()

	a.byTask = make([][]int, len(g.Tasks))
	for i := range g.Tasks {
		for k := range g.Tasks[i].Variants {
			for cl := range a.classes {
				p := &classProf[cl][i][k]
				// Dominated-configuration pruning, per (variant, class): a
				// larger batch size that improves throughput by under 5%
				// mostly adds latency — the variant has saturated — and is
				// dropped. This shrinks the path set multiplicatively at a
				// worst-case cost of a few percent of capacity, well below
				// the provisioning headroom. Classes are never pruned
				// against each other: a slower class's configurations stay
				// available, because its servers are a separate capacity
				// (and cost) pool.
				bestQPS := 0.0
				for j, b := range p.Batches {
					if j > 0 && p.QPS[j] < bestQPS*1.05 {
						continue
					}
					if p.QPS[j] > bestQPS {
						bestQPS = p.QPS[j]
					}
					a.byTask[i] = append(a.byTask[i], len(a.cfgs))
					a.cfgs = append(a.cfgs, config{
						task:    pipeline.TaskID(i),
						variant: k,
						batch:   b,
						class:   cl,
						lat:     p.LatencySec[j],
						qps:     p.QPS[j],
						acc:     g.Tasks[i].Variants[k].Accuracy,
					})
				}
			}
		}
	}

	a.sinks = g.Sinks()
	sinkIdx := map[pipeline.TaskID]int{}
	for s, id := range a.sinks {
		sinkIdx[id] = s
	}

	// Canonical sink per task: the first sink reachable from it. The
	// consistency constraints make every sink's flow decomposition agree,
	// so capacity accounting may use any one of them.
	a.sinkOf = make([]int, len(g.Tasks))
	var firstSink func(id pipeline.TaskID) int
	firstSink = func(id pipeline.TaskID) int {
		if g.Tasks[id].IsSink() {
			return sinkIdx[id]
		}
		best := len(a.sinks)
		for _, c := range g.Tasks[id].Children {
			if s := firstSink(c.Task); s < best {
				best = s
			}
		}
		return best
	}
	for i := range g.Tasks {
		a.sinkOf[i] = firstSink(pipeline.TaskID(i))
	}

	// Enumerate feasible config paths for every task path. The compute
	// budget per path is SLO/2 minus one network hop per server traversed
	// (§4.1 halves the SLO to cover queueing; §4.2 subtracts
	// communication).
	budgetFor := func(hops int) float64 {
		return a.Meta.SLO()/2 - float64(hops)*a.Opts.NetLatencySec
	}
	// Sink count per task (over the whole graph): a task reachable by more
	// than one sink is "shared" — its configurations participate in the
	// cross-sink consistency constraints and must therefore never be
	// Pareto-pruned within a single sink's path family, or the families
	// would keep disjoint config sets and consistency would force all flow
	// to zero.
	sinkCount := make([]int, len(g.Tasks))
	for _, tp := range g.TaskPaths() {
		for _, id := range tp.Tasks {
			sinkCount[id]++
		}
	}

	a.pathsBySink = make([][]int, len(a.sinks))
	for _, tp := range g.TaskPaths() {
		budget := budgetFor(len(tp.Tasks))
		sink := sinkIdx[tp.Tasks[len(tp.Tasks)-1]]

		// Configs per hop grouped by variant.
		hops := len(tp.Tasks)
		byVariant := make([]map[int][]int, hops)
		for h, task := range tp.Tasks {
			byVariant[h] = map[int][]int{}
			for _, ci := range a.byTask[task] {
				v := a.cfgs[ci].variant
				byVariant[h][v] = append(byVariant[h][v], ci)
			}
		}

		// For each variant sequence, enumerate latency-feasible batch
		// combos and keep only Pareto-maximal ones: accuracy is identical
		// across combos of a sequence and, once feasible, only per-hop
		// throughput matters to the LP, so a combo componentwise dominated
		// in throughput can never improve a plan. This cuts the path set
		// from the product of batch counts to roughly its staircase
		// frontier.
		variantChoice := make([]int, hops)
		cfgChoice := make([]int, hops)
		var combos [][]int
		var enumBatches func(hop int, lat float64)
		enumBatches = func(hop int, lat float64) {
			if hop == hops {
				combos = append(combos, append([]int(nil), cfgChoice...))
				return
			}
			for _, ci := range byVariant[hop][variantChoice[hop]] {
				if nl := lat + a.cfgs[ci].lat; nl <= budget {
					cfgChoice[hop] = ci
					enumBatches(hop+1, nl)
				}
			}
		}
		shared := make([]bool, hops)
		for h, id := range tp.Tasks {
			shared[h] = sinkCount[id] > 1
		}
		emit := func() {
			combos = combos[:0]
			enumBatches(0, 0)
			for i, combo := range combos {
				dominated := false
				for j, other := range combos {
					if i == j {
						continue
					}
					// Only combos identical at every shared hop — and on the
					// same hardware class at every hop — compete; dominance
					// is judged on the exclusive hops' throughput alone.
					// Cross-class combos are incomparable: each class is its
					// own capacity pool with its own cost, so a
					// lower-throughput combo on a cheaper or emptier class
					// can still improve a plan.
					geq, strict, comparable := true, false, true
					for h := range combo {
						if shared[h] {
							if other[h] != combo[h] {
								comparable = false
								break
							}
							continue
						}
						if a.cfgs[other[h]].class != a.cfgs[combo[h]].class {
							comparable = false
							break
						}
						qa, qb := a.cfgs[other[h]].qps, a.cfgs[combo[h]].qps
						if qa < qb {
							geq = false
							break
						}
						if qa > qb {
							strict = true
						}
					}
					if comparable && geq && (strict || j < i) { // ties: keep the first
						dominated = true
						break
					}
				}
				if dominated {
					continue
				}
				pth := cfgPath{cfgs: append([]int(nil), combo...), sink: sink}
				pth.acc = 1
				pth.mults = make([]float64, hops)
				m := 1.0
				for h, ci := range combo {
					c := &a.cfgs[ci]
					pth.totalLat += c.lat
					m *= tp.BranchRatios[h]
					pth.mults[h] = m
					m *= a.Meta.MultFactor(c.task, c.variant)
					pth.acc *= c.acc
				}
				if a.Opts.MinPathAccuracy > 0 && pth.acc < a.Opts.MinPathAccuracy {
					continue
				}
				a.pathsBySink[sink] = append(a.pathsBySink[sink], len(a.paths))
				a.paths = append(a.paths, pth)
			}
		}
		var enumVariants func(hop int)
		enumVariants = func(hop int) {
			if hop == hops {
				emit()
				return
			}
			for v := range g.Tasks[tp.Tasks[hop]].Variants {
				variantChoice[hop] = v
				enumVariants(hop + 1)
			}
		}
		enumVariants(0)
	}
}

// Allocate runs the Resource Manager's two-step optimization for the given
// demand estimate: hardware scaling first (Eq. 11), accuracy scaling if that
// is infeasible (Eq. 12), and a saturation fallback that serves the largest
// possible fraction of demand when even full accuracy scaling cannot keep
// up.
func (a *Allocator) Allocate(demand float64) (*Plan, error) {
	d := demand * (1 + a.Opts.Headroom)
	if d < 0 {
		d = 0
	}

	// Step 1: hardware scaling with the most accurate variants only.
	if plan, ok, err := a.solveStep(d, stepHardware); err != nil {
		return nil, err
	} else if ok {
		return plan, nil
	}
	// Step 2: accuracy scaling across the whole cluster.
	if plan, ok, err := a.solveStep(d, stepAccuracy); err != nil {
		return nil, err
	} else if ok {
		return plan, nil
	}
	// Step 3: saturation — maximize the served fraction.
	plan, ok, err := a.solveStep(d, stepSaturation)
	if err != nil {
		return nil, err
	}
	if !ok {
		// Last resort: a greedy bottleneck-proportional plan. Reached only
		// if even the saturation search exhausts its budget without an
		// incumbent.
		return a.greedyPlan(d), nil
	}
	return plan, nil
}

// Capped returns a view of the allocator whose per-class server counts are
// bounded to caps (one entry per hardware class, in class order). The
// configuration graph, paths, and solving machinery are shared (they depend
// only on the SLO, not the cluster size), so the view is cheap: a capped
// solve reuses the parent's built LP model for the same demand and step and
// only swaps the per-class capacity rows' right-hand sides, rather than
// rebuilding the whole formulation. Multi-tenant arbitration uses it to
// re-solve a pipeline inside its granted partition of the shared pool.
func (a *Allocator) Capped(caps []int) *Allocator {
	b := *a
	b.counts = append([]int(nil), caps...)
	b.Opts.Servers = 0
	for _, n := range caps {
		b.Opts.Servers += n
	}
	return &b
}

// AllocateCapped is Allocate with the per-class server counts temporarily
// bounded to caps (the CappedPlanner hook for multi-tenant arbitration). The
// grant vector must have one entry per hardware class and its total must
// cover one replica per task — below that no plan can serve the pipeline at
// all, and the saturation fallbacks would overshoot the cap.
func (a *Allocator) AllocateCapped(demand float64, caps []int) (*Plan, error) {
	if err := a.checkCaps(caps); err != nil {
		return nil, err
	}
	return a.Capped(caps).Allocate(demand)
}

// checkCaps validates a per-class grant vector against the class set and the
// keep-warm minimum.
func (a *Allocator) checkCaps(caps []int) error {
	if len(caps) != len(a.classes) {
		return fmt.Errorf("core: capped allocation got %d class grants for %d hardware classes", len(caps), len(a.classes))
	}
	total := 0
	for i, n := range caps {
		if n < 0 {
			return fmt.Errorf("core: negative grant %d for hardware class %q", n, a.classes[i].Name)
		}
		total += n
	}
	if total <= 0 {
		return fmt.Errorf("core: capped allocation needs a positive server budget, got %d", total)
	}
	if warm := len(a.Meta.Graph().Tasks); total < warm {
		return fmt.Errorf("core: capped allocation of %d servers cannot hold one replica of each of %d tasks", total, warm)
	}
	return nil
}

// greedyPlan builds a throughput-first fallback: every task gets its
// fastest latency-feasible configuration, servers are split proportionally
// to per-task load, and the served fraction is whatever the bottleneck
// sustains. It exists so the Resource Manager always returns a usable plan
// even when the optimizer is starved of time.
func (a *Allocator) greedyPlan(demand float64) *Plan {
	g := a.Meta.Graph()
	// Fastest feasible config per task, reserving one server slot on the
	// chosen class per task: on a mixed fleet the fastest configs all live
	// on the fastest class, which may be smaller than the task count, and a
	// choice the class cannot host would leave replicas unplaced at the
	// engines. When every class with feasible configs is fully reserved
	// (cluster smaller than the pipeline), fall back to the overall fastest
	// — the pre-class behavior.
	classFree := append([]int(nil), a.counts...)
	best := make([]int, len(g.Tasks))
	for i := range g.Tasks {
		best[i] = -1
		fastest := -1
		for _, ci := range a.byTask[i] {
			if fastest < 0 || a.cfgs[ci].qps > a.cfgs[fastest].qps {
				fastest = ci
			}
			if classFree[a.cfgs[ci].class] <= 0 {
				continue
			}
			if best[i] < 0 || a.cfgs[ci].qps > a.cfgs[best[i]].qps {
				best[i] = ci
			}
		}
		if best[i] < 0 {
			best[i] = fastest
		} else {
			classFree[a.cfgs[best[i]].class]--
		}
	}
	// Per-task demand multiplier using the chosen variants.
	load := make([]float64, len(g.Tasks))
	var walk func(id pipeline.TaskID, mult float64)
	walk = func(id pipeline.TaskID, mult float64) {
		load[id] += mult
		c := &a.cfgs[best[id]]
		out := mult * a.Meta.MultFactor(id, c.variant)
		for _, ch := range g.Tasks[id].Children {
			walk(ch.Task, out*ch.BranchRatio)
		}
	}
	walk(0, 1)

	weight := 0.0
	for i := range g.Tasks {
		weight += load[i] / a.cfgs[best[i]].qps
	}
	plan := &Plan{Mode: Saturated, Demand: demand, ServedFraction: 1}
	served := math.Inf(1)
	counts := make([]int, len(g.Tasks))
	total := 0
	for i := range g.Tasks {
		share := (load[i] / a.cfgs[best[i]].qps) / weight
		counts[i] = int(math.Max(1, math.Floor(share*float64(a.Opts.Servers))))
		total += counts[i]
	}
	// Rounding the small shares up to one replica can overshoot the budget;
	// shed replicas from the largest tasks so capped (multi-tenant) plans
	// never exceed their partition.
	for total > a.Opts.Servers {
		biggest := -1
		for i, n := range counts {
			if n > 1 && (biggest < 0 || n > counts[biggest]) {
				biggest = i
			}
		}
		if biggest < 0 {
			break
		}
		counts[biggest]--
		total--
	}
	// The fastest configurations may pile onto one hardware class; shed the
	// same way per class so the fallback plan respects every class's count.
	// (On a homogeneous cluster the total shed above already did this.)
	for cl := range a.classes {
		for {
			classTotal := 0
			for i := range g.Tasks {
				if a.cfgs[best[i]].class == cl {
					classTotal += counts[i]
				}
			}
			if classTotal <= a.counts[cl] {
				break
			}
			biggest := -1
			for i, n := range counts {
				if a.cfgs[best[i]].class == cl && n > 1 && (biggest < 0 || n > counts[biggest]) {
					biggest = i
				}
			}
			if biggest < 0 {
				break
			}
			counts[biggest]--
		}
	}
	plan.ServersByClass = make([]int, len(a.classes))
	for i := range g.Tasks {
		n := counts[i]
		c := &a.cfgs[best[i]]
		plan.Assignments = append(plan.Assignments, Assignment{
			Task: c.task, Variant: c.variant, MaxBatch: c.batch, Replicas: n,
			Class: c.class, ClassName: a.classes[c.class].Name,
			QPS: c.qps, LatencySec: c.lat, Accuracy: c.acc, BudgetSec: 2 * c.lat,
		})
		plan.ServersUsed += n
		plan.ServersByClass[c.class] += n
		plan.CostPerHour += float64(n) * a.classes[c.class].CostPerHour
		if cap := float64(n) * c.qps / load[i]; cap < served {
			served = cap
		}
	}
	if demand > 0 {
		plan.ServedFraction = math.Min(1, served/demand)
	}
	acc := 0.0
	for _, tp := range g.TaskPaths() {
		pa := 1.0
		for _, id := range tp.Tasks {
			pa *= a.cfgs[best[id]].acc
		}
		acc += pa
	}
	plan.ExpectedAccuracy = acc / float64(len(g.TaskPaths()))
	plan.SolveStats = SolveStats{Step: 3}
	return plan
}

// AllocateHardwareOnly restricts the allocator to hardware scaling with the
// most accurate variants, the InferLine-like baseline regime: minimize
// servers while demand fits, and beyond that serve the largest possible
// fraction at fixed accuracy using the whole cluster. Loki itself never
// calls this; internal/baselines does.
func (a *Allocator) AllocateHardwareOnly(demand float64) (*Plan, error) {
	d := demand * (1 + a.Opts.Headroom)
	if d < 0 {
		d = 0
	}
	if plan, ok, err := a.solveStep(d, stepHardware); err != nil {
		return nil, err
	} else if ok {
		return plan, nil
	}
	plan, ok, err := a.solveStep(d, stepHardwareSat)
	if err != nil {
		return nil, err
	}
	if !ok {
		return a.greedyPlan(d), nil
	}
	return plan, nil
}

type stepKind int8

const (
	stepHardware stepKind = iota + 1
	stepAccuracy
	stepSaturation
	// stepHardwareSat is the saturation objective restricted to the most
	// accurate variants (the InferLine-like baseline past cluster
	// capacity).
	stepHardwareSat
)

// solveStep solves one of the three MILPs against the memoized step model.
// Variable layout:
//
//	[0, P)      c_p   continuous path flows
//	[P]         f     served fraction (step 3 only; fixed 1 otherwise)
//	[P+1, ...)  n_u   integer replica counts per used config
func (a *Allocator) solveStep(demand float64, step stepKind) (*Plan, bool, error) {
	st := a.state
	st.mu.Lock()
	defer st.mu.Unlock()

	bl := a.builtFor(demand, step)
	useCfg, cfgVar, nvars, clusterRows, prob := bl.useCfg, bl.cfgVar, bl.nvars, bl.clusterRows, bl.prob
	// The memoized model is shared across per-class caps (Capped views); only
	// the class capacity rows' RHS differ between them, so swap them in.
	for cl, row := range clusterRows {
		prob.Cons[row].RHS = float64(a.counts[cl])
	}

	P := len(a.paths)
	fVar := P

	intMask := make([]bool, nvars)
	for _, vi := range cfgVar {
		if vi >= 0 {
			intMask[vi] = true
		}
	}

	mkPlan := func(x []float64, stats SolveStats) *Plan {
		plan := a.extractPlan(x, useCfg, cfgVar, fVar, demand, step)
		stats.Step = int(step)
		stats.Paths = len(a.paths)
		stats.Vars = nvars
		stats.Constraints = len(prob.Cons)
		plan.SolveStats = stats
		// Every extracted point is integer-feasible for its model, which
		// makes it the natural warm start for the next round's solve of
		// the same step (it is re-verified against the new demand and cap
		// before use).
		if !a.Opts.DisableReuse {
			st.lastX[step] = append([]float64(nil), x...)
		}
		return plan
	}

	relax, err := lp.SolveWS(prob, lp.Options{}, &st.ws)
	if err != nil {
		return nil, false, err
	}
	if relax.Status == lp.Infeasible {
		return nil, false, nil
	}

	// Ceil heuristic: round every replica count up. Capacity rows only get
	// slacker, so the point stays feasible unless a class capacity
	// constraint breaks. For steps 2 and 3 the objective depends only on the
	// flows (plus, on priced fleets, a cost term the rounding can only
	// overestimate within the gap tolerance), so a fitting rounded point is
	// outright optimal; for step 1 it seeds the branch and bound with a
	// strong incumbent.
	fits := func(totals []int) bool {
		for cl, n := range totals {
			if n > a.counts[cl] {
				return false
			}
		}
		return true
	}
	var seed []float64
	relaxX := []float64(nil)
	if relax.Status == lp.Optimal {
		relaxX = relax.X
		x, totals := a.ceilReplicas(relaxX, cfgVar)
		if fits(totals) {
			if step != stepHardware && !a.priced {
				return mkPlan(x, SolveStats{Nodes: 1, LPIters: relax.Iters, Proven: true}), true, nil
			}
			seed = x
		}
	}
	if seed == nil && step != stepHardware {
		// The rounded point overflows some class. Re-solve the relaxation
		// with tightened class budgets until rounding fits — a fast,
		// slightly conservative feasible point to seed the search. The
		// first iteration reuses the relaxation already solved above (the
		// budgets start untightened, so it is the identical LP); later
		// iterations swap the budgets into the shared model's class rows,
		// which are restored before the branch-and-bound runs.
		budgets := make([]float64, len(a.counts))
		for cl, n := range a.counts {
			budgets[cl] = float64(n)
		}
		x0 := relaxX
		for iter := 0; iter < 6; iter++ {
			x, totals := a.ceilReplicas(x0, cfgVar)
			if x == nil {
				break
			}
			if fits(totals) {
				seed = x
				break
			}
			under := false
			for cl, n := range totals {
				if n > a.counts[cl] {
					budgets[cl] -= float64(n - a.counts[cl])
					if budgets[cl] < 0 {
						under = true
					}
				}
			}
			if under {
				break
			}
			for cl, row := range clusterRows {
				prob.Cons[row].RHS = budgets[cl]
			}
			x0 = a.relaxOrNil(prob)
		}
		for cl, row := range clusterRows {
			prob.Cons[row].RHS = float64(a.counts[cl])
		}
	}

	opts := milp.Options{
		TimeLimit: a.Opts.SolveTimeLimit,
		Incumbent: seed,
		Workspace: &st.ws,
	}
	if opts.TimeLimit == 0 {
		opts.TimeLimit = 2 * time.Second
	}
	// Warm-start the search from the previous round's solution of the same
	// step: the variable layout per step is fixed, so the old point either
	// verifies against the new demand and cap (and prunes the tree from
	// node one) or is silently dropped.
	if !a.Opts.DisableReuse {
		if wx := st.lastX[step]; len(wx) == nvars {
			opts.WarmStarts = [][]float64{wx}
		}
	}
	// Greedy first pass: a priority-ordered path choice with ceiling-sized
	// replicas, offered as an additional warm start — but only to
	// proof-seeking searches, where the MILP's warm-start contract makes the
	// result bit-identical with or without it (the seed prunes from node one
	// and never displaces an equally good solution the search finds itself).
	// Gap-tolerant searches use warm starts as a strictly-better fallback,
	// where a lucky greedy point could displace a within-gap incumbent and
	// change which of several near-optimal plans a deterministic run
	// returns; those searches run unseeded to keep plans reproducible.
	if step == stepHardware && !a.priced {
		if gx := a.greedySeed(demand, step, bl); gx != nil {
			opts.WarmStarts = append(opts.WarmStarts, gx)
		}
	}
	// Stall cutoff: once a quarter of the budget is burned, a search whose
	// best solution has not improved for ~a hundred nodes — and whose
	// plateau spans at least half its explored tree — is returning
	// diminishing bounds only; stop it and keep the incumbent (or fall
	// through to the next regime) instead of burning the rest of the
	// control period. Solves that finish inside the arming delay — all the
	// reproducibility-sensitive ones — never reach it, and searches that
	// keep improving are never cut however slow the host. DisableStall
	// opts out explicitly, and DisableReuse turns the cutoff off with the
	// rest of the fast path, so the escape hatch recovers the exhaustive
	// (full-budget) solver exactly.
	if !a.Opts.DisableReuse && !a.Opts.DisableStall {
		opts.StallAfter = opts.TimeLimit / 4
		opts.StallNodes = 96
	}
	if step == stepHardware && !a.priced {
		// Minimize an integer count: bounds round to whole servers. (On a
		// priced fleet the objective is a dollar rate, not a count, so the
		// integral-bound rounding does not apply.)
		opts.ObjIntegral = true
	} else if step == stepHardware {
		// Cost-minimizing hardware scaling: chase the proof only to within
		// the same tolerance accuracy scaling uses — sub-percent dollar
		// differences are below provisioning noise.
		opts.RelGap = 0.01
	} else {
		// Replica counts are integral, so on a 20-server cluster the true
		// optimum sits ≈1% below the fractional relaxation bound; chasing a
		// tighter proof than that burns the whole time budget for accuracy
		// differences far below profiling noise.
		opts.RelGap = 0.01
	}

	st.milpSolves++
	res, err := milp.SolveWithOptions(&milp.Problem{LP: prob, Integer: intMask}, opts)
	if err != nil {
		return nil, false, err
	}
	switch res.Status {
	case milp.Infeasible:
		return nil, false, nil
	case milp.Optimal, milp.Feasible:
		return mkPlan(res.X, SolveStats{
			Nodes: res.Nodes, LPIters: res.LPIters,
			Proven: res.Status == milp.Optimal, Truncated: res.Truncated,
		}), true, nil
	default:
		// Search budget exhausted without an incumbent. Fall back to the
		// heuristic seed when we have one; otherwise report infeasible-for-
		// this-step so Allocate falls through to the next regime.
		if seed != nil {
			return mkPlan(seed, SolveStats{Nodes: res.Nodes, LPIters: res.LPIters, Truncated: true}), true, nil
		}
		return nil, false, nil
	}
}

// ceilReplicas rounds the replica variables of a relaxation point up to
// integers, returning the rounded point and the per-class replica totals.
func (a *Allocator) ceilReplicas(x []float64, cfgVar []int) ([]float64, []int) {
	if x == nil {
		return nil, nil
	}
	out := append([]float64(nil), x...)
	totals := make([]int, len(a.classes))
	for ci, vi := range cfgVar {
		if vi >= 0 {
			out[vi] = math.Ceil(out[vi] - 1e-9)
			totals[a.cfgs[ci].class] += int(out[vi])
		}
	}
	return out, totals
}

// relaxOrNil solves the LP relaxation through the shared workspace,
// returning its point (workspace-owned; valid until the next solve) or nil.
// Callers hold a.state.mu.
func (a *Allocator) relaxOrNil(p *lp.Problem) []float64 {
	s, err := lp.SolveWS(p, lp.Options{}, &a.state.ws)
	if err != nil || s.Status != lp.Optimal {
		return nil
	}
	return s.X
}

// buildLP constructs the LP for one step. It returns the set of usable
// configs, the variable index of each config's replica count (-1 if the
// config is not usable in this step), the variable count, the per-class
// capacity row indices, and the problem.
func (a *Allocator) buildLP(demand float64, step stepKind) (useCfg []bool, cfgVar []int, nvars int, clusterRows []int, prob *lp.Problem) {
	g := a.Meta.Graph()
	P := len(a.paths)
	fVar := P

	// Step 1 admits only each task's most accurate variant (Eq. 8-10).
	bestVariant := make([]int, len(g.Tasks))
	for i := range g.Tasks {
		bestVariant[i] = g.Tasks[i].MostAccurate()
	}
	fixedVariants := step == stepHardware || step == stepHardwareSat
	saturating := step == stepSaturation || step == stepHardwareSat
	usable := func(c *config) bool {
		return !fixedVariants || c.variant == bestVariant[c.task]
	}

	useCfg = make([]bool, len(a.cfgs))
	usablePath := make([]bool, P)
	for pi := range a.paths {
		ok := true
		for _, ci := range a.paths[pi].cfgs {
			if !usable(&a.cfgs[ci]) {
				ok = false
				break
			}
		}
		usablePath[pi] = ok
		if ok {
			for _, ci := range a.paths[pi].cfgs {
				useCfg[ci] = true
			}
		}
	}

	cfgVar = make([]int, len(a.cfgs))
	nvars = P + 1
	for ci := range a.cfgs {
		if useCfg[ci] {
			cfgVar[ci] = nvars
			nvars++
		} else {
			cfgVar[ci] = -1
		}
	}

	prob = lp.NewProblem(nvars)

	// Flow conservation per sink: Σ_{p∈P_s} c_p = f (Σ c_p = 1 when f is
	// pinned). Unusable paths are forced to zero flow.
	for _, pidx := range a.pathsBySink {
		terms := make([]lp.Term, 0, len(pidx)+1)
		for _, pi := range pidx {
			if usablePath[pi] {
				terms = append(terms, lp.Term{Var: pi, Coef: 1})
			} else {
				prob.AddConstraint([]lp.Term{{Var: pi, Coef: 1}}, lp.LE, 0)
			}
		}
		terms = append(terms, lp.Term{Var: fVar, Coef: -1})
		prob.AddConstraint(terms, lp.EQ, 0)
	}
	if saturating {
		prob.AddConstraint([]lp.Term{{Var: fVar, Coef: 1}}, lp.LE, 1)
	} else {
		prob.AddConstraint([]lp.Term{{Var: fVar, Coef: 1}}, lp.EQ, 1)
	}

	// Flow consistency at shared config prefixes: a request visits the
	// tasks above a branch point once, so the fraction of traffic that
	// follows a given sequence of configurations down to a branching task
	// must be the same no matter which sink's path family measures it.
	// (Per-prefix equality is strictly stronger than per-config equality
	// and is what makes the per-sink capacity accounting in Eq. 2 well
	// defined, because the workload multiplier m(p, hop) depends on the
	// whole prefix.) A prefix with usable continuations toward one sink but
	// none toward another is forced to zero flow: deploying it would doom
	// the unreachable sink's sub-requests to SLO violations.
	type prefixKey struct {
		hop  int
		last int // config id at the prefix's final hop
		key  string
	}
	prefixSinks := map[prefixKey]map[int][]lp.Term{}
	var keyBuf []byte
	for pi := range a.paths {
		if !usablePath[pi] {
			continue
		}
		pth := &a.paths[pi]
		keyBuf = keyBuf[:0]
		for h, ci := range pth.cfgs {
			keyBuf = append(keyBuf, byte(ci), byte(ci>>8), byte(ci>>16))
			k := prefixKey{hop: h, last: ci, key: string(keyBuf)}
			m := prefixSinks[k]
			if m == nil {
				m = map[int][]lp.Term{}
				prefixSinks[k] = m
			}
			m[pth.sink] = append(m[pth.sink], lp.Term{Var: pi, Coef: 1})
		}
	}
	// Sinks reachable from each task (over usable paths) determine where
	// equality rows are needed.
	taskSinks := make([]map[int]bool, len(g.Tasks))
	for i := range taskSinks {
		taskSinks[i] = map[int]bool{}
	}
	for pi := range a.paths {
		if !usablePath[pi] {
			continue
		}
		for _, ci := range a.paths[pi].cfgs {
			taskSinks[a.cfgs[ci].task][a.paths[pi].sink] = true
		}
	}
	// Emit the consistency rows in a deterministic order (sorted prefix
	// keys, then ascending sink): constraint row order decides simplex
	// tie-breaks, and iterating the map directly would randomize which of
	// several equally optimal vertices a solve returns from one model
	// build to the next.
	prefixKeys := make([]prefixKey, 0, len(prefixSinks))
	for k := range prefixSinks {
		prefixKeys = append(prefixKeys, k)
	}
	sort.Slice(prefixKeys, func(i, j int) bool {
		a, b := prefixKeys[i], prefixKeys[j]
		if a.hop != b.hop {
			return a.hop < b.hop
		}
		if a.last != b.last {
			return a.last < b.last
		}
		return a.key < b.key
	})
	for _, k := range prefixKeys {
		perSink := prefixSinks[k]
		reachable := taskSinks[a.cfgs[k.last].task]
		if len(reachable) < 2 {
			continue
		}
		ref := -1
		for s := range reachable {
			if ref < 0 || s < ref {
				ref = s
			}
		}
		refTerms := perSink[ref] // nil means flow 0 through this prefix
		for s := 0; s < len(a.sinks); s++ {
			if s == ref || !reachable[s] {
				continue
			}
			terms := perSink[s]
			if len(refTerms) == 0 && len(terms) == 0 {
				continue
			}
			row := append(append([]lp.Term(nil), refTerms...), negate(terms)...)
			prob.AddConstraint(row, lp.EQ, 0)
		}
	}

	// Capacity (Eq. 2): demand arriving at each config, accounted through
	// its task's canonical sink (the smallest sink with usable paths
	// through the task — the same reference the consistency rows use, so
	// the decomposition is well defined), must not exceed its replicas'
	// aggregate throughput.
	for ci := range a.cfgs {
		if !useCfg[ci] {
			continue
		}
		c := &a.cfgs[ci]
		canon := -1
		for s := range taskSinks[c.task] {
			if canon < 0 || s < canon {
				canon = s
			}
		}
		var terms []lp.Term
		if canon >= 0 {
			for _, pi := range a.pathsBySink[canon] {
				if !usablePath[pi] {
					continue
				}
				pth := &a.paths[pi]
				for h, pci := range pth.cfgs {
					if pci == ci {
						terms = append(terms, lp.Term{Var: pi, Coef: demand * pth.mults[h]})
					}
				}
			}
		}
		terms = append(terms, lp.Term{Var: cfgVar[ci], Coef: -c.qps})
		prob.AddConstraint(terms, lp.LE, 0)
	}

	// Cluster size (Eq. 3), one capacity row per hardware class: the
	// replicas hosted on a class must fit that class's server count. On a
	// homogeneous cluster this is the classic single cluster-size row.
	clusterRows = make([]int, len(a.classes))
	for cl := range a.classes {
		var clusterTerms []lp.Term
		for ci := range a.cfgs {
			if useCfg[ci] && a.cfgs[ci].class == cl {
				clusterTerms = append(clusterTerms, lp.Term{Var: cfgVar[ci], Coef: 1})
			}
		}
		clusterRows[cl] = prob.AddConstraint(clusterTerms, lp.LE, float64(a.counts[cl]))
	}

	// Keep-warm: at least one replica per task.
	if a.Opts.KeepWarm {
		for i := range g.Tasks {
			var terms []lp.Term
			for _, ci := range a.byTask[i] {
				if useCfg[ci] {
					terms = append(terms, lp.Term{Var: cfgVar[ci], Coef: 1})
				}
			}
			if len(terms) > 0 {
				prob.AddConstraint(terms, lp.GE, 1)
			}
		}
	}

	// Objective.
	switch step {
	case stepHardware:
		// Minimize active servers (Eq. 11). On a priced fleet the weight is
		// each class's dollar rate instead — the INFaaS-style cost-aware
		// variant — with a tiny per-replica epsilon so even a zero-cost
		// class never deploys replicas for free. A fleet with no costs at
		// all keeps the classic unit weights bit for bit.
		prob.Maximize = false
		for ci := range a.cfgs {
			if useCfg[ci] {
				w := 1.0
				if a.priced {
					w = a.classes[a.cfgs[ci].class].CostPerHour + serverCostEps
				}
				prob.SetObjectiveTerm(cfgVar[ci], w)
			}
		}
	case stepAccuracy, stepSaturation, stepHardwareSat:
		// Maximize system accuracy (Eq. 12): the sink-averaged,
		// flow-weighted end-to-end accuracy. Saturation adds a large
		// reward on the served fraction, making the objective
		// lexicographic: serve as much as possible, then as accurately as
		// possible. On a priced fleet a small per-replica cost penalty
		// breaks ties between accuracy-equivalent deployments toward the
		// cheaper classes; its scale keeps any induced accuracy loss well
		// inside the solver's 1% gap tolerance, and zero-cost fleets add no
		// terms at all.
		prob.Maximize = true
		w := 1.0 / float64(len(a.sinks))
		for pi := range a.paths {
			if usablePath[pi] {
				prob.SetObjectiveTerm(pi, w*a.paths[pi].acc)
			}
		}
		if a.priced {
			for ci := range a.cfgs {
				if useCfg[ci] {
					cost := a.classes[a.cfgs[ci].class].CostPerHour + serverCostEps
					prob.SetObjectiveTerm(cfgVar[ci], -accuracyCostEps*cost)
				}
			}
		}
		if saturating {
			prob.SetObjectiveTerm(fVar, 1000)
		}
	}
	return useCfg, cfgVar, nvars, clusterRows, prob
}

// serverCostEps keeps every replica weakly penalized in the cost-aware
// hardware-scaling objective, so a class priced at zero is still never
// deployed gratuitously; accuracyCostEps scales the cost tie-breaker mixed
// into the accuracy-scaling objective (small enough that trading real
// accuracy for cost stays inside the solver's gap tolerance).
const (
	serverCostEps   = 1e-6
	accuracyCostEps = 1e-4
)

func negate(terms []lp.Term) []lp.Term {
	out := make([]lp.Term, len(terms))
	for i, t := range terms {
		out[i] = lp.Term{Var: t.Var, Coef: -t.Coef}
	}
	return out
}

// extractPlan converts a solver point into a Plan.
func (a *Allocator) extractPlan(x []float64, useCfg []bool, cfgVar []int, fVar int, demand float64, step stepKind) *Plan {
	plan := &Plan{
		Demand:         demand,
		ServedFraction: 1,
	}
	switch step {
	case stepHardware:
		plan.Mode = HardwareScaling
	case stepAccuracy:
		plan.Mode = AccuracyScaling
	case stepSaturation, stepHardwareSat:
		plan.Mode = Saturated
		plan.ServedFraction = x[fVar]
	}

	plan.ServersByClass = make([]int, len(a.classes))
	for ci := range a.cfgs {
		if !useCfg[ci] {
			continue
		}
		n := int(math.Round(x[cfgVar[ci]]))
		if n <= 0 {
			continue
		}
		c := &a.cfgs[ci]
		plan.Assignments = append(plan.Assignments, Assignment{
			Task:       c.task,
			Variant:    c.variant,
			MaxBatch:   c.batch,
			Replicas:   n,
			Class:      c.class,
			ClassName:  a.classes[c.class].Name,
			QPS:        c.qps,
			LatencySec: c.lat,
			Accuracy:   c.acc,
			BudgetSec:  2 * c.lat,
		})
		plan.ServersUsed += n
		plan.ServersByClass[c.class] += n
		plan.CostPerHour += float64(n) * a.classes[c.class].CostPerHour
	}

	g := a.Meta.Graph()
	accSum, flowSum := 0.0, 0.0
	for pi, pth := range a.paths {
		frac := x[pi]
		if frac < 1e-9 {
			continue
		}
		tasks := make([]pipeline.TaskID, len(pth.cfgs))
		variants := make([]int, len(pth.cfgs))
		batches := make([]int, len(pth.cfgs))
		for h, ci := range pth.cfgs {
			tasks[h] = a.cfgs[ci].task
			variants[h] = a.cfgs[ci].variant
			batches[h] = a.cfgs[ci].batch
		}
		plan.PathFlows = append(plan.PathFlows, PathFlow{
			Tasks: tasks, Variants: variants, Batches: batches,
			Fraction: frac, Accuracy: pth.acc,
		})
		accSum += frac * pth.acc
		flowSum += frac
	}
	if flowSum > 0 {
		plan.ExpectedAccuracy = accSum / flowSum
	} else {
		plan.ExpectedAccuracy = g.MaxAccuracy()
	}
	return plan
}

// MaxCapacity estimates the largest demand (QPS) the cluster can fully serve
// by bisecting on Allocate feasibility at the given accuracy floor. It is
// used by the Figure-1 capacity analysis.
func (a *Allocator) MaxCapacity(lo, hi float64) float64 {
	for i := 0; i < 24 && hi-lo > 0.5; i++ {
		mid := (lo + hi) / 2
		plan, err := a.Allocate(mid)
		if err == nil && plan.Mode != Saturated {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
