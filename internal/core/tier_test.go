package core

import (
	"reflect"
	"testing"
)

func TestSplitPoolTieredUniformDelegates(t *testing.T) {
	// Same tiers + floors that fit: bit-identical to splitPool, the
	// golden-compatibility contract.
	wants := []int{8, 7}
	floors := []int{5, 5}
	got := splitPoolTiered(10, wants, floors, []int{0, 0})
	want := splitPool(10, wants, floors)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("uniform tiers: got %v, want splitPool's %v", got, want)
	}
}

func TestSplitPoolTieredStrictPrecedence(t *testing.T) {
	cases := []struct {
		name   string
		pool   int
		wants  []int
		floors []int
		tiers  []int
		want   []int
	}{
		{
			// The high tier's full want is served before the low tier,
			// regardless of the low tier's floor.
			name: "high tier first", pool: 12,
			wants: []int{10, 10}, floors: []int{6, 6}, tiers: []int{1, 0},
			want: []int{10, 2},
		},
		{
			// Registration order does not matter, tier does.
			name: "order independent", pool: 12,
			wants: []int{10, 10}, floors: []int{6, 6}, tiers: []int{0, 1},
			want: []int{2, 10},
		},
		{
			// Nothing left for the low tier at all.
			name: "low tier starved", pool: 8,
			wants: []int{10, 10}, floors: []int{6, 6}, tiers: []int{1, 0},
			want: []int{8, 0},
		},
		{
			// Peers within one level share by the splitPool arithmetic.
			name: "peers share a level", pool: 14,
			wants: []int{10, 6, 6}, floors: []int{6, 4, 4}, tiers: []int{1, 0, 0},
			want: []int{10, 2, 2},
		},
		{
			// Three levels drain top-down.
			name: "three levels", pool: 15,
			wants: []int{6, 6, 6}, floors: []int{4, 4, 4}, tiers: []int{2, 1, 0},
			want: []int{6, 6, 3},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := splitPoolTiered(tc.pool, tc.wants, tc.floors, tc.tiers)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("splitPoolTiered(%d, %v, %v, %v) = %v, want %v",
					tc.pool, tc.wants, tc.floors, tc.tiers, got, tc.want)
			}
			if s := sumInts(got); s > tc.pool {
				t.Fatalf("grants %v exceed the pool %d", got, tc.pool)
			}
		})
	}
}

func TestPackTieredContiguousBlocks(t *testing.T) {
	// Two classes (12 + 6 live), distinct tiers, both tenants hungry: the
	// high tier takes its whole want from the largest class, the low tier
	// gets whatever is left packed from where the high tier stopped — one
	// block plus at most one boundary fragment, never slivers everywhere.
	counts := []int{12, 6}
	wants := [][]int{{8, 4}, {8, 4}}
	floors := [][]int{{6, 4}, {6, 4}}
	got := packTiered(counts, wants, floors, []int{1, 0})
	want := [][]int{{12, 0}, {0, 6}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("packTiered = %v, want %v", got, want)
	}
	for c := range counts {
		used := 0
		for i := range got {
			used += got[i][c]
		}
		if used > counts[c] {
			t.Fatalf("class %d oversubscribed: %v vs %d live", c, got, counts[c])
		}
	}
}

func TestPackTieredLargestClassFirst(t *testing.T) {
	// When the later class is larger, packing starts there: the high tier's
	// block must land on the biggest (most plannable) run of servers.
	counts := []int{4, 10}
	wants := [][]int{{3, 4}, {3, 4}}
	floors := [][]int{{2, 5}, {2, 5}}
	got := packTiered(counts, wants, floors, []int{1, 0})
	if got[0][1] != 7 || got[0][0] != 0 {
		t.Fatalf("high tier should fill the larger class first: got %v", got)
	}
}

func TestDropFragmentPrefersBetterPlan(t *testing.T) {
	// A served plan is final: no retry, the plan comes back unchanged.
	tn := &Tenant{}
	full := &Plan{ServedFraction: 1.0}
	if got := tn.dropFragment(full, 240, []int{1, 6}, 1.04); got != full {
		t.Fatalf("fully-served plan should not be retried")
	}
	// A single-class grant has no fragment to drop.
	sat := &Plan{ServedFraction: 0.5}
	if got := tn.dropFragment(sat, 240, []int{0, 6}, 1.04); got != sat {
		t.Fatalf("single-class grant should not be retried")
	}
}
