package core

import (
	"math"
	"testing"
	"time"

	"loki/internal/pipeline"
	"loki/internal/profiles"
)

func chainAllocator(t *testing.T, servers int, sloSec float64) *Allocator {
	t.Helper()
	g := profiles.TrafficChain()
	prof := (&profiles.Profiler{}).ProfileGraph(g, profiles.Batches)
	meta := NewMetadataStore(g, prof, sloSec, profiles.Batches)
	a, err := NewAllocator(meta, AllocatorOptions{
		Servers: servers, NetLatencySec: 0.002, KeepWarm: true,
		Headroom:       0.30, // the serving default; see experiments.RunConfig
		SolveTimeLimit: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func treeAllocator(t *testing.T, servers int, sloSec float64) *Allocator {
	t.Helper()
	g := profiles.TrafficTree()
	prof := (&profiles.Profiler{}).ProfileGraph(g, profiles.Batches)
	meta := NewMetadataStore(g, prof, sloSec, profiles.Batches)
	a, err := NewAllocator(meta, AllocatorOptions{
		Servers: servers, NetLatencySec: 0.002, KeepWarm: true,
		Headroom:       0.30,
		SolveTimeLimit: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// expectedTaskLoad computes the demand every task of a plan must absorb,
// propagating the plan's path flows and the variants' multiplicative
// factors, for feasibility checking.
func expectedTaskLoad(t *testing.T, a *Allocator, plan *Plan, demand float64) map[pipeline.TaskID]float64 {
	t.Helper()
	g := a.Meta.Graph()
	load := map[pipeline.TaskID]float64{}
	sinks := g.Sinks()
	sinkOf := map[pipeline.TaskID]bool{}
	for _, s := range sinks {
		sinkOf[s] = true
	}
	// Use the first sink's flow decomposition per task, mirroring the
	// allocator's canonical accounting.
	seen := map[pipeline.TaskID]map[string]bool{}
	for _, pf := range plan.PathFlows {
		m := 1.0
		key := ""
		for h, task := range pf.Tasks {
			_, ratio := g.Parent(task)
			if h == 0 {
				ratio = 1
			}
			m *= ratio
			key += string(rune('A'+pf.Variants[h])) + string(rune('a'+h))
			if seen[task] == nil {
				seen[task] = map[string]bool{}
			}
			// Each sink decomposition counts a prefix once; accumulate per
			// distinct sink to avoid double counting across sinks. Use the
			// sink of the path.
			sk := key + "|" + string(rune('0'+pf.Tasks[len(pf.Tasks)-1]))
			_ = sk
			load[task] += demand * pf.Fraction * m
			v := g.Tasks[task].Variants[pf.Variants[h]]
			m *= v.MultFactor
		}
	}
	return load
}

func TestHardwareScalingAtLowDemand(t *testing.T) {
	a := chainAllocator(t, 20, 0.250)
	plan, err := a.Allocate(100)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Mode != HardwareScaling {
		t.Fatalf("mode = %v, want hardware-scaling", plan.Mode)
	}
	if plan.ServersUsed >= 20 {
		t.Fatalf("low demand should not need the whole cluster, used %d", plan.ServersUsed)
	}
	if math.Abs(plan.ExpectedAccuracy-1.0) > 1e-9 {
		t.Fatalf("hardware scaling must keep max accuracy, got %g", plan.ExpectedAccuracy)
	}
	// Only most accurate variants hosted.
	g := a.Meta.Graph()
	for _, as := range plan.Assignments {
		if as.Variant != g.Tasks[as.Task].MostAccurate() {
			t.Fatalf("hardware scaling hosted non-best variant %d of task %d", as.Variant, as.Task)
		}
	}
}

func TestKeepWarmAtZeroDemand(t *testing.T) {
	a := chainAllocator(t, 20, 0.250)
	plan, err := a.Allocate(0)
	if err != nil {
		t.Fatal(err)
	}
	perTask := map[pipeline.TaskID]int{}
	for _, as := range plan.Assignments {
		perTask[as.Task] += as.Replicas
	}
	for i := range a.Meta.Graph().Tasks {
		if perTask[pipeline.TaskID(i)] < 1 {
			t.Fatalf("task %d has no warm replica", i)
		}
	}
}

func TestAccuracyScalingKicksInPastClusterLimit(t *testing.T) {
	a := chainAllocator(t, 20, 0.250)
	plan, err := a.Allocate(900)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Mode != AccuracyScaling {
		t.Fatalf("mode = %v, want accuracy-scaling", plan.Mode)
	}
	if plan.ExpectedAccuracy >= 1.0 {
		t.Fatal("accuracy scaling should sacrifice some accuracy")
	}
	if plan.ExpectedAccuracy < 0.85 {
		t.Fatalf("accuracy dropped too far at moderate overload: %g", plan.ExpectedAccuracy)
	}
}

func TestSaturationBeyondMaxCapacity(t *testing.T) {
	a := chainAllocator(t, 20, 0.250)
	plan, err := a.Allocate(4000)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Mode != Saturated {
		t.Fatalf("mode = %v, want saturated", plan.Mode)
	}
	if plan.ServedFraction >= 1 || plan.ServedFraction <= 0 {
		t.Fatalf("served fraction = %g, want in (0,1)", plan.ServedFraction)
	}
}

func TestServerCountGrowsWithDemand(t *testing.T) {
	a := chainAllocator(t, 20, 0.250)
	prev := 0
	for _, d := range []float64{50, 150, 300, 450} {
		plan, err := a.Allocate(d)
		if err != nil {
			t.Fatal(err)
		}
		if plan.ServersUsed < prev {
			t.Fatalf("servers shrank from %d to %d at demand %g", prev, plan.ServersUsed, d)
		}
		prev = plan.ServersUsed
	}
}

func TestAccuracyMonotoneNonIncreasingInDemand(t *testing.T) {
	a := chainAllocator(t, 20, 0.250)
	prev := 1.1
	for _, d := range []float64{400, 700, 1000, 1300, 1600} {
		plan, err := a.Allocate(d)
		if err != nil {
			t.Fatal(err)
		}
		// Allow the solver's 0.2% gap plus a hair of slack.
		if plan.ExpectedAccuracy > prev+0.005 {
			t.Fatalf("accuracy rose from %.4f to %.4f at demand %g", prev, plan.ExpectedAccuracy, d)
		}
		prev = plan.ExpectedAccuracy
	}
}

func TestPlanRespectsClusterSize(t *testing.T) {
	for _, d := range []float64{100, 600, 1200, 3000} {
		a := chainAllocator(t, 20, 0.250)
		plan, err := a.Allocate(d)
		if err != nil {
			t.Fatal(err)
		}
		if plan.ServersUsed > 20 {
			t.Fatalf("plan uses %d servers on a 20-server cluster (demand %g)", plan.ServersUsed, d)
		}
		if got := plan.Replicas(); got != plan.ServersUsed {
			t.Fatalf("Replicas() = %d, ServersUsed = %d", got, plan.ServersUsed)
		}
	}
}

func TestPlanCapacityCoversLoad(t *testing.T) {
	a := chainAllocator(t, 20, 0.250)
	for _, d := range []float64{200, 800, 1500} {
		plan, err := a.Allocate(d)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Mode == Saturated {
			continue
		}
		load := expectedTaskLoad(t, a, plan, d)
		for task, l := range load {
			if cap := plan.Capacity(task); cap < l*0.999 {
				t.Fatalf("demand %g: task %d capacity %.1f < load %.1f", d, task, cap, l)
			}
		}
	}
}

func TestPathFlowsRespectSLOBudget(t *testing.T) {
	a := chainAllocator(t, 20, 0.250)
	plan, err := a.Allocate(1200)
	if err != nil {
		t.Fatal(err)
	}
	prof := a.Meta.Profiles()
	for _, pf := range plan.PathFlows {
		lat := 0.0
		for h, task := range pf.Tasks {
			l, ok := prof[task][pf.Variants[h]].Latency(pf.Batches[h])
			if !ok {
				t.Fatalf("unprofiled batch %d", pf.Batches[h])
			}
			lat += l
		}
		budget := 0.250/2 - float64(len(pf.Tasks))*0.002
		if lat > budget+1e-9 {
			t.Fatalf("path latency %.1fms exceeds budget %.1fms", lat*1e3, budget*1e3)
		}
	}
}

func TestPathFlowsSumToServedFractionPerSink(t *testing.T) {
	a := treeAllocator(t, 20, 0.250)
	for _, d := range []float64{300, 900} {
		plan, err := a.Allocate(d)
		if err != nil {
			t.Fatal(err)
		}
		bySink := map[pipeline.TaskID]float64{}
		for _, pf := range plan.PathFlows {
			bySink[pf.Tasks[len(pf.Tasks)-1]] += pf.Fraction
		}
		for sink, sum := range bySink {
			if math.Abs(sum-plan.ServedFraction) > 1e-6 {
				t.Fatalf("demand %g sink %d: flows sum to %.6f, want %.6f", d, sink, sum, plan.ServedFraction)
			}
		}
		if len(bySink) != 2 {
			t.Fatalf("want flows toward both sinks, got %v", bySink)
		}
	}
}

func TestTreePipelineConsistencyAcrossSinks(t *testing.T) {
	// The fraction of traffic served by each detector variant must agree
	// between the car-classification and facial-recognition decompositions.
	a := treeAllocator(t, 20, 0.250)
	plan, err := a.Allocate(700)
	if err != nil {
		t.Fatal(err)
	}
	perSink := map[pipeline.TaskID]map[int]float64{}
	for _, pf := range plan.PathFlows {
		sink := pf.Tasks[len(pf.Tasks)-1]
		if perSink[sink] == nil {
			perSink[sink] = map[int]float64{}
		}
		perSink[sink][pf.Variants[0]] += pf.Fraction
	}
	if len(perSink) != 2 {
		t.Fatalf("want 2 sinks, got %d", len(perSink))
	}
	var sinks []pipeline.TaskID
	for s := range perSink {
		sinks = append(sinks, s)
	}
	for v, frac := range perSink[sinks[0]] {
		if math.Abs(perSink[sinks[1]][v]-frac) > 1e-6 {
			t.Fatalf("detector variant %d: flow %.4f via sink %d vs %.4f via sink %d",
				v, frac, sinks[0], perSink[sinks[1]][v], sinks[1])
		}
	}
}

func TestTightSLOIsRejectedWhenInfeasible(t *testing.T) {
	g := profiles.TrafficChain()
	prof := (&profiles.Profiler{}).ProfileGraph(g, profiles.Batches)
	// 20ms SLO: even batch-1 latencies exceed the halved budget.
	meta := NewMetadataStore(g, prof, 0.020, profiles.Batches)
	if _, err := NewAllocator(meta, AllocatorOptions{Servers: 20}); err == nil {
		t.Fatal("want error for an SLO no path can meet")
	}
}

func TestTighterSLONeverImprovesAccuracy(t *testing.T) {
	prev := -1.0
	for _, slo := range []float64{0.150, 0.200, 0.300, 0.400} {
		a := chainAllocator(t, 20, slo)
		plan, err := a.Allocate(1000)
		if err != nil {
			t.Fatal(err)
		}
		acc := plan.ExpectedAccuracy * plan.ServedFraction
		if acc < prev-0.01 {
			t.Fatalf("served accuracy fell from %.4f to %.4f when relaxing SLO to %v", prev, acc, slo)
		}
		prev = acc
	}
}

func TestMinPathAccuracyFloor(t *testing.T) {
	g := profiles.TrafficChain()
	prof := (&profiles.Profiler{}).ProfileGraph(g, profiles.Batches)
	meta := NewMetadataStore(g, prof, 0.250, profiles.Batches)
	a, err := NewAllocator(meta, AllocatorOptions{
		Servers: 20, NetLatencySec: 0.002, MinPathAccuracy: 0.85,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := a.Allocate(2500) // deep overload
	if err != nil {
		t.Fatal(err)
	}
	for _, pf := range plan.PathFlows {
		if pf.Accuracy < 0.85 {
			t.Fatalf("path accuracy %.3f below the 0.85 floor", pf.Accuracy)
		}
	}
}

func TestFigure1PhaseBoundaries(t *testing.T) {
	// The calibration target from Figure 1: hardware scaling saturates
	// around 560 QPS on 20 servers, and accuracy scaling extends capacity
	// to roughly 2.5-3.5× that.
	a := chainAllocator(t, 20, 0.250)
	hwLimit := 0.0
	for d := 400.0; d <= 800; d += 20 {
		plan, err := a.Allocate(d)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Mode == HardwareScaling {
			hwLimit = d
		}
	}
	if hwLimit < 450 || hwLimit > 700 {
		t.Fatalf("hardware-scaling limit %.0f QPS, want ≈560 (450-700)", hwLimit)
	}
	maxCap := a.MaxCapacity(hwLimit, 4000)
	if ratio := maxCap / hwLimit; ratio < 2.0 || ratio > 4.0 {
		t.Fatalf("capacity gain %.2f×, want 2-4× (paper: ≈2.7-3.1×)", ratio)
	}
}

func TestGreedyPlanFallback(t *testing.T) {
	a := chainAllocator(t, 20, 0.250)
	plan := a.greedyPlan(5000)
	if plan.Mode != Saturated {
		t.Fatalf("mode = %v", plan.Mode)
	}
	if plan.ServersUsed == 0 || plan.ServersUsed > 20 {
		t.Fatalf("greedy plan uses %d servers", plan.ServersUsed)
	}
	if plan.ServedFraction <= 0 || plan.ServedFraction > 1 {
		t.Fatalf("served fraction %g", plan.ServedFraction)
	}
}

func TestBudgetsAreTwiceBatchLatency(t *testing.T) {
	a := chainAllocator(t, 20, 0.250)
	plan, err := a.Allocate(500)
	if err != nil {
		t.Fatal(err)
	}
	for _, as := range plan.Assignments {
		if math.Abs(as.BudgetSec-2*as.LatencySec) > 1e-12 {
			t.Fatalf("budget %.4f != 2×latency %.4f", as.BudgetSec, as.LatencySec)
		}
	}
}
