package core

import (
	"sync"

	"loki/internal/lp"
)

// solverState is the Allocator's reusable solving machinery, shared between
// an allocator and every Capped view derived from it (the views differ only
// in the per-class server bounds, which are RHS values). It memoizes built
// LP models per (demand, step) — the arbiter's capacity-splitting loop
// solves the same demand under several grant vectors, and only the class
// capacity rows' RHS differ between those solves — remembers the last
// solution per optimization step as a warm start for the next adaptation
// round, and recycles the LP tableau buffers across every solve.
//
// All access is serialized by mu, which makes an Allocator (and its capped
// views) safe for concurrent use; the multi-tenant arbiter's parallel
// per-tenant solves rely on tenants owning distinct allocators, so the lock
// is uncontended on the hot path.
type solverState struct {
	mu    sync.Mutex
	ws    lp.Workspace
	built map[builtKey]*builtLP
	lastX map[stepKind][]float64

	milpSolves  int
	modelBuilds int
	modelReuses int
	greedyPlans int
}

// builtKey identifies a built LP model: the exact demand (capacity-row
// coefficients scale with it) and the optimization step (variable layout and
// objective). The per-class server bounds are deliberately absent — they are
// swapped on the shared model per solve.
type builtKey struct {
	demand float64
	step   stepKind
}

// builtLP is one constructed step model plus the metadata needed to extract
// plans from its solution vectors.
type builtLP struct {
	useCfg      []bool
	cfgVar      []int
	nvars       int
	clusterRows []int // per-class capacity rows, in class order
	prob        *lp.Problem
}

// maxBuiltModels bounds the model memo; demand levels churn continuously in
// a serving system, so the map is cleared wholesale when full rather than
// tracking recency.
const maxBuiltModels = 64

func newSolverState() *solverState {
	return &solverState{
		built: map[builtKey]*builtLP{},
		lastX: map[stepKind][]float64{},
	}
}

// SolverPerf aggregates the allocator's solver-level effort counters.
type SolverPerf struct {
	// MILPSolves counts branch-and-bound invocations.
	MILPSolves int
	// ModelBuilds and ModelReuses count LP model constructions and
	// (demand, step) memo hits.
	ModelBuilds, ModelReuses int
	// GreedyPlans counts plans served by the greedy pass alone (no branch
	// and bound at all) through GreedyAllocate.
	GreedyPlans int
}

// Perf returns the allocator's accumulated solver effort counters.
func (a *Allocator) Perf() SolverPerf {
	st := a.state
	st.mu.Lock()
	defer st.mu.Unlock()
	return SolverPerf{
		MILPSolves:  st.milpSolves,
		ModelBuilds: st.modelBuilds,
		ModelReuses: st.modelReuses,
		GreedyPlans: st.greedyPlans,
	}
}

// builtFor returns the memoized model for (demand, step), building it on a
// miss. Callers hold st.mu.
func (a *Allocator) builtFor(demand float64, step stepKind) *builtLP {
	st := a.state
	key := builtKey{demand: demand, step: step}
	if !a.Opts.DisableReuse {
		if bl, ok := st.built[key]; ok {
			st.modelReuses++
			return bl
		}
	}
	useCfg, cfgVar, nvars, clusterRows, prob := a.buildLP(demand, step)
	bl := &builtLP{useCfg: useCfg, cfgVar: cfgVar, nvars: nvars, clusterRows: clusterRows, prob: prob}
	st.modelBuilds++
	if !a.Opts.DisableReuse {
		if len(st.built) >= maxBuiltModels {
			clear(st.built)
		}
		st.built[key] = bl
	}
	return bl
}
