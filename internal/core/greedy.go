package core

import (
	"math"
	"sort"
)

// This file is the planner's greedy first pass: a priority-ordered O(n×m)
// solver over the same configuration-path model the MILPs use. It picks one
// config path per sink — consistent at shared tasks, so every consistency
// constraint holds by construction — and sizes replica counts by ceiling
// division, producing an integer-feasible point in the step model's exact
// variable layout. solveStep hands that point to the branch and bound as a
// warm start (where the MILP's contract guarantees it never displaces an
// equally good search result), and the arbiter's greedy-replace budget can
// use the same machinery to refresh a barely-moved tenant's plan without any
// branch and bound at all.

// greedyAttemptBudget bounds the combo backtracking. One path per sink almost
// always succeeds on the first few candidates; the budget only matters on
// adversarial multi-sink graphs, where the greedy simply gives up and the
// MILP runs unseeded.
const greedyAttemptBudget = 2048

// greedySeed builds an integer-feasible point for the (demand, step) model in
// bl's variable layout ([0,P) path flows, [P] the served fraction f, replica
// counts above). It returns nil when no fitting path combination was found
// within the attempt budget; callers treat that as "no seed", never as proof
// of infeasibility. Deterministic for a given (demand, step, model).
func (a *Allocator) greedySeed(demand float64, step stepKind, bl *builtLP) []float64 {
	fixedCost := step == stepHardware || step == stepHardwareSat

	// Estimated cost per path at full demand: fractional replicas weighted by
	// class dollar rate on priced fleets. This orders candidates; exact
	// integer sizing happens in greedyAssemble.
	cost := make([]float64, len(a.paths))
	usable := make([]bool, len(a.paths))
	for pi := range a.paths {
		pth := &a.paths[pi]
		ok := true
		c := 0.0
		for h, ci := range pth.cfgs {
			if bl.cfgVar[ci] < 0 {
				ok = false
				break
			}
			w := 1.0
			if a.priced {
				w = a.classes[a.cfgs[ci].class].CostPerHour + serverCostEps
			}
			c += w * demand * pth.mults[h] / a.cfgs[ci].qps
		}
		usable[pi] = ok
		cost[pi] = c
	}

	// Candidate paths per sink: hardware steps chase the cheapest deployment
	// (variants are already pinned to the most accurate by the usable mask),
	// accuracy steps the most accurate path first, cost as tie-break. Path
	// index breaks remaining ties for determinism.
	cands := make([][]int, len(a.sinks))
	for s := range a.sinks {
		for _, pi := range a.pathsBySink[s] {
			if usable[pi] {
				cands[s] = append(cands[s], pi)
			}
		}
		if len(cands[s]) == 0 {
			return nil
		}
		c := cands[s]
		sort.SliceStable(c, func(x, y int) bool {
			px, py := c[x], c[y]
			if !fixedCost && a.paths[px].acc != a.paths[py].acc {
				return a.paths[px].acc > a.paths[py].acc
			}
			if cost[px] != cost[py] {
				return cost[px] < cost[py]
			}
			return px < py
		})
	}

	// Depth-first combo search: one candidate per sink, consistent at shared
	// tasks (identical config wherever a task appears), capacity-checked at
	// the leaf. The first fitting combo in priority order wins.
	cfgOf := make([]int, len(a.byTask))
	for i := range cfgOf {
		cfgOf[i] = -1
	}
	chosen := make([]int, len(a.sinks))
	attempts := 0
	var pick func(s int) []float64
	pick = func(s int) []float64 {
		if s == len(a.sinks) {
			return a.greedyAssemble(demand, step, bl, chosen)
		}
		for _, pi := range cands[s] {
			if attempts >= greedyAttemptBudget {
				return nil
			}
			attempts++
			ok := true
			for _, ci := range a.paths[pi].cfgs {
				if t := int(a.cfgs[ci].task); cfgOf[t] >= 0 && cfgOf[t] != ci {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			var set []int
			for _, ci := range a.paths[pi].cfgs {
				if t := int(a.cfgs[ci].task); cfgOf[t] < 0 {
					cfgOf[t] = ci
					set = append(set, t)
				}
			}
			chosen[s] = pi
			if x := pick(s + 1); x != nil {
				return x
			}
			for _, t := range set {
				cfgOf[t] = -1
			}
		}
		return nil
	}
	return pick(0)
}

// greedyAssemble sizes a chosen path combo into a full solution vector, or
// nil when no served fraction makes its replicas fit the per-class budgets.
func (a *Allocator) greedyAssemble(demand float64, step stepKind, bl *builtLP, chosen []int) []float64 {
	saturating := step == stepSaturation || step == stepHardwareSat
	P := len(a.paths)
	fVar := P

	// Demand arriving at each chosen config at f=1. The combo is consistent
	// at shared tasks, so every chosen path that visits a config reports the
	// same multiplier; the first path's value stands.
	loads := make([]float64, len(a.cfgs))
	used := make([]bool, len(a.cfgs))
	for _, pi := range chosen {
		pth := &a.paths[pi]
		for h, ci := range pth.cfgs {
			if !used[ci] {
				used[ci] = true
				loads[ci] = demand * pth.mults[h]
			}
		}
	}
	// Keep-warm coverage for tasks on no chosen path (side branches of a
	// sink served through a different task path): one replica of the task's
	// first usable config idles there.
	if a.Opts.KeepWarm {
		onPath := make([]bool, len(a.byTask))
		for ci, u := range used {
			if u {
				onPath[a.cfgs[ci].task] = true
			}
		}
		for t := range a.byTask {
			if onPath[t] {
				continue
			}
			for _, ci := range a.byTask[t] {
				if bl.cfgVar[ci] >= 0 {
					used[ci] = true
					break
				}
			}
		}
	}

	try := func(f float64) ([]float64, bool) {
		x := make([]float64, bl.nvars)
		totals := make([]int, len(a.classes))
		for ci := range a.cfgs {
			if !used[ci] {
				continue
			}
			n := int(math.Ceil(f*loads[ci]/a.cfgs[ci].qps - 1e-9))
			if n < 1 && a.Opts.KeepWarm {
				n = 1
			}
			if n < 0 {
				n = 0
			}
			x[bl.cfgVar[ci]] = float64(n)
			totals[a.cfgs[ci].class] += n
		}
		for cl, n := range totals {
			if n > a.counts[cl] {
				return nil, false
			}
		}
		x[fVar] = f
		for _, pi := range chosen {
			x[pi] = f
		}
		return x, true
	}

	if x, ok := try(1); ok {
		return x
	}
	if !saturating {
		return nil
	}
	// Saturation: shrink the served fraction to the continuous capacity bound
	// of the tightest class, then walk down a little further if the ceilings
	// still overflow.
	f := 1.0
	for cl := range a.classes {
		r := 0.0
		for ci := range a.cfgs {
			if used[ci] && a.cfgs[ci].class == cl {
				r += loads[ci] / a.cfgs[ci].qps
			}
		}
		if r > 0 {
			if fc := float64(a.counts[cl]) / r; fc < f {
				f = fc
			}
		}
	}
	for i := 0; i < 30 && f > 1e-9; i++ {
		if x, ok := try(f); ok {
			return x
		}
		f *= 0.97
	}
	return nil
}

// GreedyPlanner is implemented by planners that can produce a feasible (not
// necessarily optimal) plan without running any branch and bound. The
// arbiter's greedy-replace budget consults it for tenants whose demand barely
// moved; planners without it simply always take the MILP path.
type GreedyPlanner interface {
	// GreedyAllocate returns a greedy plan under the given per-class caps
	// (nil caps means the planner's full cluster), or false when the greedy
	// pass found no fitting deployment — the caller falls back to the MILP.
	GreedyAllocate(demand float64, caps []int) (*Plan, bool)
}

// GreedyAllocate runs the greedy first pass as a standalone planner: hardware
// scaling if the demand fits at full accuracy, accuracy scaling otherwise. It
// never runs the saturation regime — a pool too small for even the greedy
// accuracy pass is a real contention event that deserves the full solver —
// and reports false in that case.
func (a *Allocator) GreedyAllocate(demand float64, caps []int) (*Plan, bool) {
	al := a
	if caps != nil {
		if err := a.checkCaps(caps); err != nil {
			return nil, false
		}
		al = a.Capped(caps)
	}
	d := demand * (1 + al.Opts.Headroom)
	if d < 0 {
		d = 0
	}
	st := al.state
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, step := range []stepKind{stepHardware, stepAccuracy} {
		bl := al.builtFor(d, step)
		for cl, row := range bl.clusterRows {
			bl.prob.Cons[row].RHS = float64(al.counts[cl])
		}
		x := al.greedySeed(d, step, bl)
		if x == nil {
			continue
		}
		plan := al.extractPlan(x, bl.useCfg, bl.cfgVar, len(al.paths), d, step)
		plan.SolveStats = SolveStats{Step: int(step), Greedy: true}
		st.greedyPlans++
		return plan, true
	}
	return nil, false
}
