package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"loki/internal/profiles"
	"loki/internal/telemetry"
)

// Control is the engine-facing controller surface: the serving backends
// drive whichever controller they are given through this interface, so the
// single-pipeline Controller and the multi-tenant MultiController are
// interchangeable behind an engine's housekeeping loop.
type Control interface {
	// Step runs one Resource Manager invocation; force skips the
	// change-threshold check (used on the periodic interval).
	Step(force bool) error
	// Rebalance refreshes routing tables against the standing plan(s)
	// without re-solving any MILP.
	Rebalance()
}

var (
	_ Control = (*Controller)(nil)
	_ Control = (*MultiController)(nil)
)

// CappedPlanner is a Planner that can additionally solve under a temporary
// server budget smaller than its configured cluster size. The
// MultiController requires it for every tenant when more than one pipeline
// shares the pool, because contention is resolved by re-solving each
// pipeline's allocation inside its granted partition.
type CappedPlanner interface {
	Planner
	// AllocateCapped is Allocate with the per-class server counts bounded to
	// caps (one entry per hardware class) for this solve only. Homogeneous
	// pools pass a single-element vector.
	AllocateCapped(demand float64, caps []int) (*Plan, error)
}

// Tenant is one pipeline registered with a MultiController: its own
// Metadata Store (demand estimate, profiles, SLO), its own planner, and the
// share of the shared pool it is guaranteed under contention. Publish
// delivers the tenant's plan and routing tables to the serving engine.
type Tenant struct {
	Name string
	Meta *MetadataStore
	// Alloc produces this tenant's allocation plans. With more than one
	// tenant it must implement CappedPlanner.
	Alloc Planner
	// MinShare is the fraction of the pool this tenant is guaranteed when
	// combined demand exceeds the pool. Zero means "unreserved": the
	// unreserved tenants split whatever fraction the explicit shares leave
	// over, equally. Shares only bind under contention — an idle tenant's
	// unneeded guarantee is lent to whoever wants it. On a heterogeneous
	// pool the share applies per hardware class: the floor is a slice of
	// every class, so the guarantee covers fast hardware too.
	MinShare float64
	// RouteHeadroom inflates the demand handed to MostAccurateFirst, as in
	// Controller.RouteHeadroom.
	RouteHeadroom float64
	// ForecastHorizonSec is how far ahead this tenant's forecaster is
	// consulted when planning (zero means DefaultForecastHorizonSec).
	ForecastHorizonSec float64
	// DemandCapQPS, when positive, caps the demand this tenant plans and
	// routes for. Admission-fronted tenants set it to the largest rate the
	// pool can serve within the SLO (Allocator.MaxCapacity): offered demand
	// beyond it is the admission controller's to shed at the door, not the
	// planner's to absorb with a saturated throughput-optimal plan whose
	// oversized batches miss the SLO by construction. Zero means uncapped —
	// the planner degrades through accuracy scaling into saturation as
	// demand grows, exactly as without admission.
	DemandCapQPS float64
	// Publish delivers a new plan and routing tables to the serving engine.
	Publish func(plan *Plan, routes *Routes)

	// Tier orders degradation across tenants. When the pool cannot cover
	// every tenant's want — or, after an outage, not even every tenant's
	// floor — higher tiers are satisfied first and lower tiers are cut
	// first: floors are granted tier by tier, and leftover capacity flows
	// to the highest unmet tier before any lower one sees a server. Equal
	// tiers everywhere (the default, zero) reproduce the tier-free
	// proportional split bit for bit.
	Tier int

	// CacheDisabled turns the tenant's plan cache off: every solve call
	// reaches the planner. The escape hatch behind the public
	// WithPlannerCache(false) option.
	CacheDisabled bool

	// floorByClass is the resolved per-tenant contention guarantee in whole
	// servers, per hardware class; its total never drops below one replica
	// slot per task.
	floorByClass []int

	cache     map[tenantPlanKey]cachedPlan
	plan      *Plan
	routes    *Routes
	planDmd   float64
	grant     []int // per-class servers currently granted
	allocates int
	truncated int // fresh solves whose branch & bound hit a resource limit

	// Incremental re-solve tracking. lastDesire is the last desire-pass plan
	// with the quantized buckets and pool caps it was solved under;
	// cappedPlan records whether the standing plan came from a capped
	// re-solve inside a grant. A tenant whose planning demand stayed in its
	// bucket with everything else unchanged is "clean" for the round: the
	// arbiter reuses its plans verbatim — bit-identical to what the plan
	// cache would return — without touching the cache or the solver.
	lastDesire     *Plan
	desireBucket   int
	desireFine     int
	lastDesireCaps []int
	cappedPlan     bool
	greedyReplaced int // MILP solves replaced by the greedy pass
}

// cachedPlan is one plan-cache entry plus the fine-granularity demand
// bucket it was solved in, which gates reuse of truncated plans.
type cachedPlan struct {
	plan *Plan
	// fineBucket is demandBucket(demand, legacyBucketRatio) at solve time.
	fineBucket int
}

// maxKeyClasses is how many hardware classes a plan-cache key holds inline.
// Real fleets have a handful of classes; anything larger falls back to an
// allocated string encoding.
const maxKeyClasses = 8

// capsOverflow marks a key whose grant vector spilled into the big field.
const capsOverflow = int8(-2)

// tenantPlanKey caches plans per (quantized demand, grant vector) pair: the
// same demand under a different per-class grant is a different MILP. The
// grant vector is packed into a fixed-size array so building a key on the
// per-round lookup path allocates nothing; n is -1 for uncapped solves.
type tenantPlanKey struct {
	bucket int
	n      int8
	caps   [maxKeyClasses]int32
	big    string
}

// planKey builds the cache key for a (quantized demand, grant vector) pair
// without allocating (except on >maxKeyClasses-class fleets).
func planKey(bucket int, caps []int) tenantPlanKey {
	k := tenantPlanKey{bucket: bucket, n: -1}
	switch {
	case caps == nil:
	case len(caps) <= maxKeyClasses:
		k.n = int8(len(caps))
		for i, n := range caps {
			k.caps[i] = int32(n)
		}
	default:
		k.n = capsOverflow
		k.big = encodeCaps(caps)
	}
	return k
}

// encodeCaps renders a per-class grant vector as a compact string — the
// cache-key overflow encoding for fleets with more classes than the inline
// array holds.
func encodeCaps(caps []int) string {
	if caps == nil {
		return ""
	}
	var b strings.Builder
	for i, n := range caps {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(n))
	}
	return b.String()
}

// legacyBucketRatio is the single-pipeline plan-cache granularity (≈4%).
// It predates the threshold-consistent quantization and is kept for the
// single-tenant paths so their seeded runs stay bit-for-bit reproducible
// against the recorded goldens.
const legacyBucketRatio = 1.04

// solve runs the tenant's planner through its plan cache, quantizing demand
// at the given geometric ratio. A nil caps vector solves at the planner's
// own full cluster size; a non-nil per-class grant vector requires the
// CappedPlanner solve. When CacheDisabled is set every call solves fresh.
// Safe for concurrent use across distinct tenants (each tenant owns its
// cache); callers serialize calls for the same tenant.
func (t *Tenant) solve(demand float64, caps []int, ratio float64) (*Plan, error) {
	if t.cache == nil {
		t.cache = map[tenantPlanKey]cachedPlan{}
	}
	key := planKey(demandBucket(demand, ratio), caps)
	fine := demandBucket(demand, legacyBucketRatio)
	if !t.CacheDisabled {
		if e, ok := t.cache[key]; ok {
			// A plan whose search was truncated by a resource limit is
			// provisional: it is reused only within the fine legacy bucket
			// it was solved in, so wide threshold-quantized buckets never
			// pin a timing-degraded plan across a whole demand band — once
			// demand drifts a few percent the solve is retried (warm-
			// started from the provisional plan, so quality only ratchets
			// up). Deterministically terminated plans get the full bucket.
			if !e.plan.SolveStats.Truncated || e.fineBucket == fine {
				return e.plan, nil
			}
		}
	}
	var plan *Plan
	var err error
	if caps == nil {
		plan, err = t.Alloc.Allocate(demand)
	} else {
		plan, err = t.Alloc.(CappedPlanner).AllocateCapped(demand, caps)
	}
	if err != nil {
		return nil, err
	}
	if !t.CacheDisabled {
		t.cache[key] = cachedPlan{plan: plan, fineBucket: fine}
	}
	t.allocates++
	if plan.SolveStats.Truncated {
		t.truncated++
	}
	return plan, nil
}

// moved reports whether demand deviates from the standing plan's demand by
// at least thr (relative, with a 1-QPS floor on the base).
func (t *Tenant) moved(demand, thr float64) bool {
	base := math.Max(t.planDmd, 1)
	return math.Abs(demand-t.planDmd)/base >= thr
}

// DefaultForecastHorizonSec is the planning horizon when none is configured:
// the Resource Manager's 10-second periodic interval, so a forecast covers
// exactly the window until the next guaranteed re-plan.
const DefaultForecastHorizonSec = 10

// planningDemand is the demand the Resource Manager provisions for: the
// smoothed estimate, raised to the forecaster's horizon prediction when that
// is higher. The asymmetry is deliberate hysteresis — scale-up is proactive
// (the prediction leads the estimate into a spike, so capacity and swap
// pauses are paid during the ramp, not at the crest) while scale-down stays
// reactive (a predicted decay never shrinks capacity below what current
// smoothed demand justifies, so a jittery forecaster cannot thrash the
// cluster). Without a forecaster PredictedDemand returns the estimate and
// this is exactly the reactive demand, bit for bit.
func (t *Tenant) planningDemand() float64 {
	est := t.Meta.DemandEstimate()
	h := t.ForecastHorizonSec
	if h == 0 {
		h = DefaultForecastHorizonSec
	}
	if pred := t.Meta.PredictedDemand(h); pred > est {
		est = pred
	}
	if t.DemandCapQPS > 0 && est > t.DemandCapQPS {
		return t.DemandCapQPS
	}
	return est
}

// MultiController is the multi-tenant Resource Manager: it arbitrates one
// shared server pool across several pipelines. Each adaptation round runs a
// capacity-splitting outer loop around per-tenant MILP solves:
//
//  1. Desire pass — every tenant solves unconstrained (cap = whole pool) for
//     its own demand estimate; the plan's server count is what the tenant
//     "wants".
//  2. If the wants fit the pool, everyone gets their unconstrained plan —
//     this is the common case, and it is what lets a traffic spike in one
//     pipeline steal servers another pipeline is not using.
//  3. Otherwise the pool is contended: every tenant is granted
//     min(want, floor) where floor is its guaranteed share, the leftover is
//     split across still-hungry tenants proportionally to unmet want
//     (largest-remainder rounding), and each constrained tenant re-solves
//     inside its grant — degrading to accuracy scaling or saturation within
//     its partition rather than starving a neighbour.
//
// The sum of grants never exceeds the pool, so the per-tenant engines'
// active workers always fit the shared cluster.
type MultiController struct {
	// ReallocateThreshold is the relative demand change (in any tenant)
	// that triggers re-allocation before the periodic interval elapses.
	// Zero means 0.2.
	ReallocateThreshold float64

	// GreedyReplaceBudget, when positive, lets up to that many MILP solves
	// per round be replaced by the planner's greedy first pass. Eligible are
	// tenants that need a fresh solve (plan-cache miss: a bucket boundary
	// crossed, a changed grant) but whose demand moved less than one cache
	// bucket since their standing plan — the solves most likely to return a
	// near-identical plan at full branch-and-bound price. Replacements are
	// deterministic (registration order) and greedy plans are provisional:
	// they are never cached, and demand drifting a fine bucket re-solves
	// them properly. Zero (the default) keeps every solve on the MILP,
	// bit-identical to the pre-greedy arbiter.
	GreedyReplaceBudget int

	// Sequential forces the per-tenant solves of each allocation round to
	// run one after another instead of fanning out across goroutines. The
	// grant split is deterministic either way (solves are independent and
	// results are assembled in registration order); the escape hatch
	// exists for debugging and for the public WithParallelPlanning(false)
	// option.
	Sequential bool

	// OnGrants, when non-nil, observes every joint allocation: the step
	// counter and the per-tenant server grants (summed across hardware
	// classes), in registration order. It is called with the controller
	// lock held and must not call back in.
	OnGrants func(step int, grants []int)

	mu      sync.Mutex
	pool    int
	classes []profiles.Class // the shared pool's hardware classes
	counts  []int            // resolved per-class server counts
	tenants []*Tenant
	steps   int

	// live, when non-nil, is the per-class count of servers currently up
	// (ObserveCapacity): the capacity the outer loop splits instead of the
	// static counts. capChanged forces the next unforced Step to
	// re-allocate even if no tenant's demand moved, so the arbiter reacts
	// to a crash or recovery within a round instead of waiting out the RM
	// period.
	live       []int
	capChanged bool

	// tel, when non-nil, publishes planner diagnostics (round count, last
	// round's solve time, per-tenant truncated solves and grants) to a
	// telemetry registry — the structured replacement for the LOKI_PROBE
	// print-based diagnostics in internal/experiments.
	tel *plannerTelemetry
}

// plannerTelemetry holds the arbiter's registry handles. Counters are fed
// deltas so the series stay monotone; AtSec carries the planner step counter
// (the arbiter has no engine clock of its own).
type plannerTelemetry struct {
	rounds    *telemetry.Counter
	roundSec  *telemetry.Gauge
	truncated []*telemetry.Counter // per tenant, registration order
	grants    []*telemetry.Gauge   // per tenant, registration order
	lastTrunc []int
}

// CapacityObserver is implemented by controllers that re-plan against live
// (post-fault) capacity. The serving engines push per-class up-server counts
// here whenever a fault event fires or recovers.
type CapacityObserver interface {
	ObserveCapacity(liveByClass []int)
}

// ObserveCapacity installs the pool's current per-class up-server counts
// (clamped to the static class sizes) and schedules a re-allocation on the
// next controller step. Observing full capacity again drops the override, so
// fault-free operation stays on the legacy code path.
func (m *MultiController) ObserveCapacity(liveByClass []int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	live := make([]int, len(m.counts))
	same := true
	for c := range live {
		n := m.counts[c]
		if c < len(liveByClass) {
			n = liveByClass[c]
		}
		if n < 0 {
			n = 0
		}
		if n > m.counts[c] {
			n = m.counts[c]
		}
		live[c] = n
		if n != m.counts[c] {
			same = false
		}
	}
	if same {
		m.live = nil
	} else {
		m.live = live
	}
	m.capChanged = true
}

// SetTelemetry points the arbiter at a telemetry registry: every allocation
// round then publishes loki_planner_rounds_total, loki_planner_round_seconds
// (last round's wall-clock solve time), and per-tenant
// loki_planner_truncated_solves_total counters and loki_planner_grant_servers
// gauges. A nil registry turns publication off. Call after every tenant has
// been registered.
func (m *MultiController) SetTelemetry(reg *telemetry.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if reg == nil {
		m.tel = nil
		return
	}
	pt := &plannerTelemetry{
		rounds:    reg.Counter("loki_planner_rounds_total", "Joint allocation rounds executed.", nil),
		roundSec:  reg.Gauge("loki_planner_round_seconds", "Wall-clock duration of the last allocation round.", nil),
		lastTrunc: make([]int, len(m.tenants)),
	}
	for i, t := range m.tenants {
		lbl := telemetry.L("tenant", t.Name)
		pt.truncated = append(pt.truncated,
			reg.Counter("loki_planner_truncated_solves_total", "MILP solves cut short by a resource limit, per tenant.", lbl))
		pt.grants = append(pt.grants,
			reg.Gauge("loki_planner_grant_servers", "Servers granted in the last allocation round, per tenant.", lbl))
		pt.lastTrunc[i] = t.truncated
	}
	m.tel = pt
}

// LiveCounts returns the per-class server counts the arbiter currently plans
// against: the static class sizes, reduced by any observed faults.
func (m *MultiController) LiveCounts() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.live != nil {
		return append([]int(nil), m.live...)
	}
	return append([]int(nil), m.counts...)
}

// liveCountsLocked is LiveCounts for callers already holding the lock; it
// returns the internal slice, which callers must not mutate.
func (m *MultiController) liveCountsLocked() []int {
	if m.live != nil {
		return m.live
	}
	return m.counts
}

// bucketRatio is the plan-cache quantization for this controller's tenants.
// With a single tenant it is the fine legacy granularity (bit-compatible
// with the recorded single-pipeline goldens). With several tenants sharing
// the pool it widens to 1 + ReallocateThreshold, making the cache
// consistent with the arbiter's own adaptation threshold: a demand the
// controller would not consider "moved" on an unforced step maps to the
// bucket of the plan already standing, so periodic forced re-allocations
// stop re-solving MILPs for demand wiggles the control policy has declared
// immaterial.
func (m *MultiController) bucketRatio() float64 {
	if len(m.tenants) == 1 {
		return legacyBucketRatio
	}
	thr := m.ReallocateThreshold
	if thr == 0 {
		thr = 0.2
	}
	return 1 + thr
}

// NewMultiController validates the tenant set against the pool and wires
// the arbiter. It fails when the pool cannot hold one replica per task of
// every tenant simultaneously (the joint keep-warm minimum), when explicit
// MinShares oversubscribe the pool, when several tenants share the pool but
// one of their planners cannot solve under a server cap, or when the
// tenants describe the shared pool's hardware classes differently.
func NewMultiController(pool int, tenants []*Tenant) (*MultiController, error) {
	if pool <= 0 {
		return nil, fmt.Errorf("core: multi-tenant pool needs a positive server count, got %d", pool)
	}
	if len(tenants) == 0 {
		return nil, fmt.Errorf("core: no tenants registered")
	}
	// The hardware classes are a property of the one shared pool: every
	// tenant must register the identical class set.
	classes := tenants[0].Meta.Classes()
	for _, t := range tenants[1:] {
		if !profiles.SameClasses(classes, t.Meta.Classes()) {
			return nil, fmt.Errorf("core: tenant %q describes different hardware classes than tenant %q — the shared pool has one class set", t.Name, tenants[0].Name)
		}
	}
	counts := make([]int, len(classes))
	total := 0
	for i, cl := range classes {
		counts[i] = cl.Count
		total += cl.Count
	}
	if len(classes) == 1 && counts[0] == 0 {
		counts[0] = pool
		total = pool
	}
	if total != pool {
		return nil, fmt.Errorf("core: pool size %d disagrees with the hardware classes' total count %d", pool, total)
	}
	reserved := 0.0
	unreserved := 0
	for _, t := range tenants {
		if t.MinShare < 0 || t.MinShare > 1 {
			return nil, fmt.Errorf("core: tenant %q MinShare %.3f outside [0,1]", t.Name, t.MinShare)
		}
		if t.MinShare == 0 {
			unreserved++
		}
		reserved += t.MinShare
		if len(tenants) > 1 {
			if _, ok := t.Alloc.(CappedPlanner); !ok {
				return nil, fmt.Errorf("core: tenant %q planner cannot solve under a server cap; multi-tenant arbitration requires a CappedPlanner", t.Name)
			}
		}
	}
	if reserved > 1+1e-9 {
		return nil, fmt.Errorf("core: MinShares sum to %.3f > 1", reserved)
	}
	implicit := 0.0
	if unreserved > 0 {
		implicit = (1 - reserved) / float64(unreserved)
	}
	minTotal := 0
	floorTotal := make([]int, len(classes))
	for _, t := range tenants {
		share := t.MinShare
		if share == 0 {
			share = implicit
		}
		// WithShare floors apply per class: the guarantee is a slice of
		// every class, so a guaranteed tenant keeps access to fast hardware
		// under contention, not just to some servers somewhere.
		t.floorByClass = make([]int, len(classes))
		floorSum := 0
		for c := range classes {
			t.floorByClass[c] = int(math.Floor(share * float64(counts[c])))
			floorSum += t.floorByClass[c]
		}
		// Keep-warm raise: the floor total must hold one replica per task.
		// Raise class floors where capacity remains, visiting the largest
		// classes first (ties by index): small-share tenants' keep-warm
		// replicas then land on the roomy classes instead of piling onto a
		// scarce fast class and spuriously oversubscribing its floors.
		warm := len(t.Meta.Graph().Tasks)
		order := make([]int, len(classes))
		for c := range order {
			order[c] = c
		}
		sort.SliceStable(order, func(x, y int) bool { return counts[order[x]] > counts[order[y]] })
		for _, c := range order {
			for t.floorByClass[c] < counts[c] && floorSum < warm {
				t.floorByClass[c]++
				floorSum++
			}
		}
		if floorSum < warm {
			return nil, fmt.Errorf("core: tenant %q cannot keep %d tasks warm within the pool", t.Name, warm)
		}
		t.cache = map[tenantPlanKey]cachedPlan{}
		minTotal += warm
		for c := range classes {
			floorTotal[c] += t.floorByClass[c]
		}
	}
	if minTotal > pool {
		return nil, fmt.Errorf("core: pool of %d servers cannot keep %d tenant tasks warm (one replica each)", pool, minTotal)
	}
	// Floors are raised to each tenant's keep-warm task count, which can
	// push their sum past a class even when the raw shares fit; splitPool
	// grants up to every floor under contention, so an oversubscribed floor
	// set would break the Σ grants ≤ count invariant.
	for c := range classes {
		if floorTotal[c] > counts[c] {
			return nil, fmt.Errorf("core: contention floors need %d servers of class %q (shares plus keep-warm minimums) but it holds %d", floorTotal[c], classes[c].Name, counts[c])
		}
	}
	return &MultiController{pool: pool, classes: classes, counts: counts, tenants: tenants}, nil
}

// Pool returns the shared pool size.
func (m *MultiController) Pool() int { return m.pool }

// Tenants returns the number of registered tenants.
func (m *MultiController) Tenants() int { return len(m.tenants) }

// Step runs one joint Resource Manager invocation across all tenants:
// estimate each tenant's demand, rerun the capacity-splitting outer loop if
// forced or any tenant's demand moved past the threshold, and publish every
// tenant's plan and routing tables.
func (m *MultiController) Step(force bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.steps++

	// Per-tenant planning demand: the smoothed estimate, or the forecaster's
	// envelope when it predicts higher — so one tenant's forecasted spike
	// raises its want in the desire pass and claims idle neighbour servers
	// before the spike arrives.
	demands := make([]float64, len(m.tenants))
	for i, t := range m.tenants {
		demands[i] = t.planningDemand()
	}

	thr := m.ReallocateThreshold
	if thr == 0 {
		thr = 0.2
	}
	if !force {
		// A capacity change (crash, outage, recovery) counts as movement:
		// the arbiter re-plans against the live pool within a round.
		moved := m.capChanged
		for i, t := range m.tenants {
			if moved {
				break
			}
			if t.plan == nil || t.moved(demands[i], thr) {
				moved = true
			}
		}
		if !moved {
			return nil
		}
	}

	if err := m.allocateLocked(demands); err != nil {
		return err
	}
	m.capChanged = false
	for i, t := range m.tenants {
		t.planDmd = demands[i]
		t.publish(demands[i])
	}
	return nil
}

// allocateLocked is the capacity-splitting outer loop over per-class grant
// vectors. Both solve passes fan out across tenants — each tenant's MILP is
// independent of the others' — while the grant split between them stays
// deterministic: per-class wants are gathered at a barrier, each class is
// split with the same largest-remainder arithmetic as ever, idle capacity in
// uncontended classes is lent to the constrained tenants (so a pipeline cut
// on fast hardware may substitute slow hardware in its capped re-solve), and
// results are assembled in registration order.
func (m *MultiController) allocateLocked(demands []float64) error {
	var roundStart time.Time
	if m.tel != nil {
		roundStart = time.Now()
	}
	ratio := m.bucketRatio()
	counts := m.liveCountsLocked()
	nc := len(counts)

	// Desire pass: unconstrained solves at the planner's full cluster size
	// (= the whole pool). While a fault holds servers down the pass is
	// capped at the live per-class counts instead: a desire solved against
	// the healthy pool shape would keep wanting the dead class (leaving the
	// surviving classes formally uncontended and the tier ordering idle)
	// where the same demand re-aimed at the survivors makes the real
	// contention — and the tier-ordered split of it — visible. With every
	// server up desireCaps stays nil and the pass is bit-identical to the
	// fault-free system.
	var desireCaps []int
	if m.live != nil {
		desireCaps = counts
	}

	// Dirty tracking: a tenant re-solves only when something that feeds its
	// plan actually moved — the quantized demand bucket (the fine legacy
	// bucket too for provisional truncated/greedy plans, mirroring the plan
	// cache's reuse gate), the pool caps the desire pass runs under, or a
	// disabled cache. Clean tenants reuse last round's plans verbatim, which
	// is bit-identical to the cache hit the solve would have returned.
	dirty := make([]bool, len(m.tenants))
	for i, t := range m.tenants {
		provisional := t.lastDesire != nil &&
			(t.lastDesire.SolveStats.Truncated || t.lastDesire.SolveStats.Greedy)
		dirty[i] = t.CacheDisabled || t.lastDesire == nil ||
			!equalInts(t.lastDesireCaps, desireCaps) ||
			demandBucket(demands[i], ratio) != t.desireBucket ||
			(provisional && demandBucket(demands[i], legacyBucketRatio) != t.desireFine)
	}
	// Greedy-replace pass, decided before the fan-out so the budget is spent
	// in registration order: dirty tenants whose demand moved less than one
	// cache bucket get the greedy first pass instead of a full MILP solve.
	useGreedy := make([]bool, len(m.tenants))
	if budget := m.GreedyReplaceBudget; budget > 0 {
		width := ratio - 1
		for i, t := range m.tenants {
			if budget == 0 {
				break
			}
			if !dirty[i] || t.plan == nil || t.moved(demands[i], width) {
				continue
			}
			if _, ok := t.Alloc.(GreedyPlanner); !ok {
				continue
			}
			useGreedy[i] = true
			budget--
		}
	}

	wants := make([][]int, len(m.tenants))
	plans := make([]*Plan, len(m.tenants))
	err := m.forEachTenant(func(i int, t *Tenant) error {
		if desireCaps != nil && sumInts(desireCaps) < len(t.Meta.Graph().Tasks) {
			// The whole live pool is below this tenant's keep-warm
			// minimum — no feasible plan exists for anyone; serve an
			// idle plan until servers recover.
			plans[i] = &Plan{}
			return nil
		}
		if !dirty[i] {
			plans[i] = t.lastDesire
			return nil
		}
		var plan *Plan
		if useGreedy[i] {
			if gp, ok := t.Alloc.(GreedyPlanner).GreedyAllocate(demands[i], desireCaps); ok {
				plan = gp
				t.greedyReplaced++
			}
		}
		if plan == nil {
			var err error
			plan, err = t.solve(demands[i], desireCaps, ratio)
			if err != nil {
				return fmt.Errorf("core: tenant %q allocation: %w", t.Name, err)
			}
		}
		plans[i] = plan
		t.lastDesire = plan
		t.desireBucket = demandBucket(demands[i], ratio)
		t.desireFine = demandBucket(demands[i], legacyBucketRatio)
		t.lastDesireCaps = copyOrNil(desireCaps)
		return nil
	})
	if err != nil {
		return err
	}
	for i, plan := range plans {
		wants[i] = m.classWants(plan)
	}
	contended := false
	for c := 0; c < nc; c++ {
		total := 0
		for i := range wants {
			total += wants[i][c]
		}
		if total > counts[c] {
			contended = true
		}
	}

	grants := make([][]int, len(m.tenants))
	for i := range grants {
		grants[i] = append([]int(nil), wants[i]...)
	}
	constrained := make([]bool, len(m.tenants))
	if contended {
		// Split every class across tenants: min(want, floor) plus a
		// largest-remainder share of the class's leftover. When tenants
		// carry distinct tiers the split instead runs on tenant totals with
		// strict tier precedence and packs classes contiguously, so a
		// squeezed tier is left with one plannable block instead of
		// fragments of every class.
		tiers := make([]int, len(m.tenants))
		distinct := false
		for i, t := range m.tenants {
			tiers[i] = t.Tier
			if t.Tier != m.tenants[0].Tier {
				distinct = true
			}
		}
		if distinct {
			floors := make([][]int, len(m.tenants))
			for i, t := range m.tenants {
				floors[i] = t.floorByClass
			}
			grants = packTiered(counts, wants, floors, tiers)
		} else {
			for c := 0; c < nc; c++ {
				wantsC := make([]int, len(m.tenants))
				floorsC := make([]int, len(m.tenants))
				for i, t := range m.tenants {
					wantsC[i] = wants[i][c]
					floorsC[i] = t.floorByClass[c]
				}
				grantsC := splitPoolTiered(counts[c], wantsC, floorsC, tiers)
				for i := range m.tenants {
					grants[i][c] = grantsC[i]
				}
			}
		}
		for i := range m.tenants {
			for c := 0; c < nc; c++ {
				if grants[i][c] < wants[i][c] {
					constrained[i] = true
				}
			}
		}
		m.lendSlack(counts, grants, constrained)
		m.ensureWarm(counts, grants, wants, constrained)
		err := m.forEachTenant(func(i int, t *Tenant) error {
			if !constrained[i] {
				return nil
			}
			// Clean tenant, same grant as last round, standing plan already
			// solved inside it: reuse verbatim. (The cache would return the
			// identical plan; this skips the lookups and the dropFragment
			// retry.)
			if !dirty[i] && t.cappedPlan && t.plan != nil && equalInts(grants[i], t.grant) {
				plans[i] = t.plan
				return nil
			}
			if sumInts(grants[i]) < len(t.Meta.Graph().Tasks) {
				// An outage can shrink the pool below the joint keep-warm
				// minimum; no feasible plan fits this grant. Publish an
				// idle plan rather than keeping a stale one: a stale plan
				// keeps routing onto capacity that is dead or granted to
				// higher tiers, so its queries drop at dark queues, while
				// an idle plan drives the tenant's admission rate to zero
				// and its traffic sheds gracefully (429 + Retry-After)
				// until recovery re-plans it.
				plans[i] = &Plan{}
				return nil
			}
			var plan *Plan
			if useGreedy[i] {
				if gp, ok := t.Alloc.(GreedyPlanner).GreedyAllocate(demands[i], grants[i]); ok {
					plan = gp
					t.greedyReplaced++
				}
			}
			if plan == nil {
				var err error
				plan, err = t.solve(demands[i], grants[i], ratio)
				if err != nil {
					return fmt.Errorf("core: tenant %q capped allocation (%v servers): %w", t.Name, grants[i], err)
				}
				if distinct {
					plan = t.dropFragment(plan, demands[i], grants[i], ratio)
				}
			}
			plans[i] = plan
			return nil
		})
		if err != nil {
			return err
		}
	}
	for i, t := range m.tenants {
		t.plan = plans[i]
		t.grant = grants[i]
		t.cappedPlan = constrained[i]
	}
	if m.OnGrants != nil {
		totals := make([]int, len(m.tenants))
		for i := range m.tenants {
			totals[i] = sumInts(grants[i])
		}
		m.OnGrants(m.steps, totals)
	}
	if m.tel != nil {
		// AtSec carries the planner step counter; the round-duration gauge is
		// the only wall-clock (nondeterministic) value published here.
		at := float64(m.steps)
		m.tel.rounds.Add(at, 1)
		m.tel.roundSec.Set(at, time.Since(roundStart).Seconds())
		for i, t := range m.tenants {
			if d := t.truncated - m.tel.lastTrunc[i]; d > 0 {
				m.tel.truncated[i].Add(at, float64(d))
				m.tel.lastTrunc[i] = t.truncated
			}
			m.tel.grants[i].Set(at, float64(sumInts(grants[i])))
		}
	}
	return nil
}

// classWants returns a plan's per-class server demand as a vector sized to
// the pool's class set, falling back to summing assignments for planners
// that do not fill ServersByClass (hand-built or baseline plans on the
// homogeneous path).
func (m *MultiController) classWants(plan *Plan) []int {
	out := make([]int, len(m.counts))
	if len(plan.ServersByClass) == len(out) {
		copy(out, plan.ServersByClass)
		return out
	}
	for _, a := range plan.Assignments {
		c := a.Class
		if c < 0 || c >= len(out) {
			c = 0
		}
		out[c] += a.Replicas
	}
	return out
}

// lendSlack distributes every class's unallocated servers across the
// constrained tenants (largest remainder of an equal split, ties broken by
// registration order) and then, as a last resort, raises any constrained
// tenant whose total grant dropped below its keep-warm minimum from whatever
// class capacity remains. Idle hardware is never stranded while some tenant
// is being cut — the vector analogue of "an idle tenant's guarantee is lent
// to whoever wants it".
func (m *MultiController) lendSlack(counts []int, grants [][]int, constrained []bool) {
	nHungry := 0
	for _, c := range constrained {
		if c {
			nHungry++
		}
	}
	if nHungry == 0 {
		return
	}
	for c := range counts {
		free := counts[c]
		for i := range grants {
			free -= grants[i][c]
		}
		if free <= 0 {
			continue
		}
		each := free / nHungry
		rem := free - each*nHungry
		for i := range grants {
			if !constrained[i] {
				continue
			}
			grants[i][c] += each
			if rem > 0 {
				grants[i][c]++
				rem--
			}
		}
	}
}

// ensureWarm guarantees every tenant's grant vector can hold one replica per
// task, which the capped solve requires. A per-class split can land below
// that even though the floors cover it: min(want, floor) takes nothing from
// classes the tenant did not ask for, so a tenant that concentrated its want
// on a contended class may be cut there while its floor slice of the other
// classes sits granted to neighbours. The repair claims capacity — free
// servers first, then servers granted to other tenants *above their own
// floors* (largest excess first, lowest index on ties) — only in classes
// where the tenant is still below its floor, and never pushes a donor below
// its floors or its own keep-warm minimum; the floor validation in
// NewMultiController guarantees that much capacity exists. Shrunk donors are
// marked constrained so they re-solve inside their reduced vectors.
func (m *MultiController) ensureWarm(counts []int, grants [][]int, wants [][]int, constrained []bool) {
	warms := make([]int, len(m.tenants))
	for i, t := range m.tenants {
		warms[i] = len(t.Meta.Graph().Tasks)
	}
	for i, t := range m.tenants {
		need := warms[i] - sumInts(grants[i])
		if need <= 0 {
			continue
		}
		constrained[i] = true
		for c := 0; c < len(counts) && need > 0; c++ {
			claim := t.floorByClass[c] - grants[i][c]
			if claim > need {
				claim = need
			}
			if claim <= 0 {
				continue
			}
			free := counts[c]
			for j := range grants {
				free -= grants[j][c]
			}
			if free > claim {
				free = claim
			}
			if free > 0 {
				grants[i][c] += free
				need -= free
				claim -= free
			}
			for claim > 0 {
				donor, excess := -1, 0
				for j := range m.tenants {
					if j == i {
						continue
					}
					e := grants[j][c] - m.tenants[j].floorByClass[c]
					if spare := sumInts(grants[j]) - warms[j]; spare < e {
						e = spare
					}
					if e > excess {
						donor, excess = j, e
					}
				}
				if donor < 0 {
					break
				}
				d := excess
				if d > claim {
					d = claim
				}
				grants[donor][c] -= d
				grants[i][c] += d
				need -= d
				claim -= d
				if grants[donor][c] < wants[donor][c] {
					constrained[donor] = true
				}
			}
		}
	}
}

func sumInts(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// equalInts reports element-wise equality, distinguishing nil from non-nil
// (a nil caps vector means an uncapped solve, not a zero-length one).
func equalInts(a, b []int) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// copyOrNil clones a slice, preserving nil.
func copyOrNil(xs []int) []int {
	if xs == nil {
		return nil
	}
	return append([]int(nil), xs...)
}

// forEachTenant runs fn once per tenant. Unless Sequential is set (or the
// host has a single execution slot, where fanning out only adds scheduling
// noise to wall-clock-budgeted solves), calls run concurrently on bounded
// goroutines — one in flight per tenant, at most GOMAXPROCS at once. fn
// receives a distinct tenant per call, so per-tenant state (plan cache,
// allocator) needs no extra locking. The first error in registration order
// wins.
func (m *MultiController) forEachTenant(fn func(i int, t *Tenant) error) error {
	limit := runtime.GOMAXPROCS(0)
	if m.Sequential || limit <= 1 || len(m.tenants) <= 1 {
		for i, t := range m.tenants {
			if err := fn(i, t); err != nil {
				return err
			}
		}
		return nil
	}
	if limit > len(m.tenants) {
		limit = len(m.tenants)
	}
	sem := make(chan struct{}, limit)
	errs := make([]error, len(m.tenants))
	var wg sync.WaitGroup
	for i, t := range m.tenants {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, t *Tenant) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(i, t)
		}(i, t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// splitPool splits one capacity pool (the whole cluster, or one hardware
// class of it): each tenant gets min(want, floor), then the leftover is
// split across still-hungry tenants proportionally to unmet want, with
// largest-remainder rounding (ties broken by registration order, for
// determinism).
func splitPool(pool int, wants, floors []int) []int {
	grants := make([]int, len(wants))
	left := pool
	unmetSum := 0
	for i := range wants {
		g := wants[i]
		if g > floors[i] {
			g = floors[i]
		}
		grants[i] = g
		left -= g
		unmetSum += wants[i] - g
	}
	if left <= 0 || unmetSum == 0 {
		return grants
	}
	type frac struct {
		idx int
		rem float64
	}
	fracs := make([]frac, 0, len(wants))
	used := 0
	for i := range wants {
		unmet := wants[i] - grants[i]
		if unmet <= 0 {
			continue
		}
		quota := float64(left) * float64(unmet) / float64(unmetSum)
		whole := int(math.Floor(quota))
		if whole > unmet {
			whole = unmet
		}
		grants[i] += whole
		used += whole
		fracs = append(fracs, frac{idx: i, rem: quota - float64(whole)})
	}
	sort.SliceStable(fracs, func(a, b int) bool { return fracs[a].rem > fracs[b].rem })
	for _, f := range fracs {
		if used >= left {
			break
		}
		if grants[f.idx] < wants[f.idx] {
			grants[f.idx]++
			used++
		}
	}
	return grants
}

// splitPoolTiered is splitPool with tier-ordered degradation. When every
// tenant carries the same tier and the floors fit the pool (the fault-free
// default), it delegates to splitPool so existing runs stay bit-identical.
// Otherwise tiers take strict precedence: a higher tier's full want is
// served before any lower tier sees a server, so under a shortage the
// damage concentrates on the lowest tiers — they shed at the front door
// while the high tiers keep their SLOs. Peers within one tier share by the
// same floor-then-largest-remainder arithmetic as splitPool; when what
// remains for a tier cannot even cover its floors, the remainder is
// apportioned across those floors.
func splitPoolTiered(pool int, wants, floors, tiers []int) []int {
	uniform := true
	for _, t := range tiers {
		if t != tiers[0] {
			uniform = false
			break
		}
	}
	fit := 0
	for i := range wants {
		f := wants[i]
		if f > floors[i] {
			f = floors[i]
		}
		fit += f
	}
	if uniform && fit <= pool {
		return splitPool(pool, wants, floors)
	}

	levels := append([]int(nil), tiers...)
	sort.Sort(sort.Reverse(sort.IntSlice(levels)))
	levels = dedupInts(levels)

	grants := make([]int, len(wants))
	left := pool
	for _, lv := range levels {
		if left <= 0 {
			break
		}
		var idxs, wantsL, floorsL []int
		for i := range wants {
			if tiers[i] != lv {
				continue
			}
			idxs = append(idxs, i)
			wantsL = append(wantsL, wants[i])
			floorsL = append(floorsL, floors[i])
		}
		var grantsL []int
		switch {
		case sumInts(wantsL) <= left:
			grantsL = wantsL
		default:
			fitL := 0
			mins := make([]int, len(wantsL))
			for k := range wantsL {
				mins[k] = wantsL[k]
				if mins[k] > floorsL[k] {
					mins[k] = floorsL[k]
				}
				fitL += mins[k]
			}
			if fitL >= left {
				grantsL = apportion(left, mins)
			} else {
				grantsL = splitPool(left, wantsL, floorsL)
			}
		}
		for k, g := range grantsL {
			grants[idxs[k]] = g
		}
		left -= sumInts(grantsL)
	}
	return grants
}

// dropFragment retries an under-serving capped solve without the grant's
// smallest class. The branch-and-bound planner truncates on mixed caps like
// [1,6] — a sliver of one class next to a block of another — and the
// truncated search can land on a plan worth half the rate of simply planning
// the block alone ([0,6]). When the solve left demand unserved and the grant
// spans several classes, one extra (cached) solve with the smallest class
// zeroed checks that; the better plan wins, and the orphaned sliver stays
// granted but idle.
func (t *Tenant) dropFragment(plan *Plan, demand float64, caps []int, ratio float64) *Plan {
	if plan.ServedFraction >= 0.999 {
		return plan
	}
	small, nonzero := -1, 0
	for c, n := range caps {
		if n <= 0 {
			continue
		}
		nonzero++
		if small < 0 || n < caps[small] {
			small = c
		}
	}
	if nonzero < 2 {
		return plan
	}
	alt := append([]int(nil), caps...)
	alt[small] = 0
	altPlan, err := t.solve(demand, alt, ratio)
	if err != nil || altPlan.ServedFraction <= plan.ServedFraction {
		return plan
	}
	return altPlan
}

// packTiered grants servers across tenants AND classes when tiers are
// distinct. Per-class tiered splits can strand a low tier with small slivers
// of several classes, and the planner cannot compose a useful plan out of
// fragments (a grant of 5+2 across two classes plans barely half the rate of
// 7 in one class). So the strict split runs on tenant totals — a higher
// tier's whole demand is served before a lower tier sees a server — and the
// totals are then laid out contiguously along the class list, largest live
// class first: the top tier fills from the biggest (most plannable) class,
// each following tenant starts where the previous one stopped, and at most
// one class boundary lands inside any tenant's grant.
func packTiered(counts []int, wants [][]int, floors [][]int, tiers []int) [][]int {
	totalWants := make([]int, len(wants))
	totalFloors := make([]int, len(wants))
	for i := range wants {
		totalWants[i] = sumInts(wants[i])
		totalFloors[i] = sumInts(floors[i])
	}
	totals := splitPoolTiered(sumInts(counts), totalWants, totalFloors, tiers)

	order := make([]int, len(counts))
	for c := range order {
		order[c] = c
	}
	sort.SliceStable(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })

	levels := append([]int(nil), tiers...)
	sort.Sort(sort.Reverse(sort.IntSlice(levels)))
	levels = dedupInts(levels)

	remaining := append([]int(nil), counts...)
	grants := make([][]int, len(wants))
	for i := range grants {
		grants[i] = make([]int, len(counts))
	}
	for _, lv := range levels {
		for i := range wants {
			if tiers[i] != lv {
				continue
			}
			need := totals[i]
			for _, c := range order {
				if need <= 0 {
					break
				}
				take := min(need, remaining[c])
				grants[i][c] = take
				remaining[c] -= take
				need -= take
			}
		}
	}
	return grants
}

// apportion distributes up to total units across recipients proportionally
// to their weights (never exceeding a recipient's weight), with the same
// largest-remainder rounding and tie-breaking as splitPool.
func apportion(total int, weights []int) []int {
	out := make([]int, len(weights))
	sumW := sumInts(weights)
	if sumW == 0 || total <= 0 {
		return out
	}
	if total >= sumW {
		copy(out, weights)
		return out
	}
	type frac struct {
		idx int
		rem float64
	}
	fracs := make([]frac, 0, len(weights))
	used := 0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		quota := float64(total) * float64(w) / float64(sumW)
		whole := int(math.Floor(quota))
		if whole > w {
			whole = w
		}
		out[i] = whole
		used += whole
		fracs = append(fracs, frac{idx: i, rem: quota - float64(whole)})
	}
	sort.SliceStable(fracs, func(a, b int) bool { return fracs[a].rem > fracs[b].rem })
	for _, f := range fracs {
		if used >= total {
			break
		}
		if out[f.idx] < weights[f.idx] {
			out[f.idx]++
			used++
		}
	}
	return out
}

// dedupInts collapses runs of equal values in a sorted slice.
func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// publish rebuilds one tenant's routing tables for the given demand and
// pushes plan+routes to its engine. Callers hold the controller lock.
func (t *Tenant) publish(demand float64) {
	specs := ExpandPlan(t.plan)
	t.routes = MostAccurateFirst(t.Meta.Graph(), specs, demand*(1+t.RouteHeadroom), t.Meta.MultFactor)
	if t.Publish != nil {
		t.Publish(t.plan, t.routes)
	}
}

// Rebalance reruns MostAccurateFirst for every tenant against its standing
// plan with a fresh planning demand (the Load Balancer's
// between-allocations refresh).
func (m *MultiController) Rebalance() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, t := range m.tenants {
		if t.plan == nil {
			continue
		}
		t.publish(t.planningDemand())
	}
}

// PlanOf returns tenant i's standing plan (nil before the first Step).
func (m *MultiController) PlanOf(i int) *Plan {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tenants[i].plan
}

// RoutesOf returns tenant i's standing routing tables (nil before the first
// Step).
func (m *MultiController) RoutesOf(i int) *Routes {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tenants[i].routes
}

// Grants returns the servers currently granted to each tenant (summed over
// hardware classes), in registration order. The sum never exceeds the pool.
func (m *MultiController) Grants() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, len(m.tenants))
	for i, t := range m.tenants {
		out[i] = sumInts(t.grant)
	}
	return out
}

// ClassGrants returns each tenant's standing grant vector (servers per
// hardware class, in class order), in registration order. Per class, the
// column sums never exceed that class's server count.
func (m *MultiController) ClassGrants() [][]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([][]int, len(m.tenants))
	for i, t := range m.tenants {
		out[i] = append([]int(nil), t.grant...)
	}
	return out
}

// Classes returns the shared pool's hardware classes with resolved counts.
func (m *MultiController) Classes() []profiles.Class {
	out := append([]profiles.Class(nil), m.classes...)
	for i := range out {
		out[i].Count = m.counts[i]
	}
	return out
}

// Floors returns each tenant's resolved contention guarantee in servers
// (summed over hardware classes).
func (m *MultiController) Floors() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, len(m.tenants))
	for i, t := range m.tenants {
		out[i] = sumInts(t.floorByClass)
	}
	return out
}

// Allocates returns the total number of MILP invocations (plan-cache
// misses) across all tenants.
func (m *MultiController) Allocates() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, t := range m.tenants {
		n += t.allocates
	}
	return n
}

// TruncatedSolves returns the total number of fresh MILP solves whose branch
// & bound search was cut short by a resource limit, across all tenants — the
// same signal the loki_planner_truncated_solves_total telemetry counter
// publishes per tenant.
func (m *MultiController) TruncatedSolves() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, t := range m.tenants {
		n += t.truncated
	}
	return n
}

// GreedyReplaced returns the total number of MILP solves replaced by the
// greedy first pass under the GreedyReplaceBudget, across all tenants.
func (m *MultiController) GreedyReplaced() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, t := range m.tenants {
		n += t.greedyReplaced
	}
	return n
}

// AllocatesOf returns tenant i's MILP invocations.
func (m *MultiController) AllocatesOf(i int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tenants[i].allocates
}
