package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
)

// Control is the engine-facing controller surface: the serving backends
// drive whichever controller they are given through this interface, so the
// single-pipeline Controller and the multi-tenant MultiController are
// interchangeable behind an engine's housekeeping loop.
type Control interface {
	// Step runs one Resource Manager invocation; force skips the
	// change-threshold check (used on the periodic interval).
	Step(force bool) error
	// Rebalance refreshes routing tables against the standing plan(s)
	// without re-solving any MILP.
	Rebalance()
}

var (
	_ Control = (*Controller)(nil)
	_ Control = (*MultiController)(nil)
)

// CappedPlanner is a Planner that can additionally solve under a temporary
// server budget smaller than its configured cluster size. The
// MultiController requires it for every tenant when more than one pipeline
// shares the pool, because contention is resolved by re-solving each
// pipeline's allocation inside its granted partition.
type CappedPlanner interface {
	Planner
	// AllocateCapped is Allocate with the cluster size bounded to servers
	// for this solve only.
	AllocateCapped(demand float64, servers int) (*Plan, error)
}

// Tenant is one pipeline registered with a MultiController: its own
// Metadata Store (demand estimate, profiles, SLO), its own planner, and the
// share of the shared pool it is guaranteed under contention. Publish
// delivers the tenant's plan and routing tables to the serving engine.
type Tenant struct {
	Name string
	Meta *MetadataStore
	// Alloc produces this tenant's allocation plans. With more than one
	// tenant it must implement CappedPlanner.
	Alloc Planner
	// MinShare is the fraction of the pool this tenant is guaranteed when
	// combined demand exceeds the pool. Zero means "unreserved": the
	// unreserved tenants split whatever fraction the explicit shares leave
	// over, equally. Shares only bind under contention — an idle tenant's
	// unneeded guarantee is lent to whoever wants it.
	MinShare float64
	// RouteHeadroom inflates the demand handed to MostAccurateFirst, as in
	// Controller.RouteHeadroom.
	RouteHeadroom float64
	// ForecastHorizonSec is how far ahead this tenant's forecaster is
	// consulted when planning (zero means DefaultForecastHorizonSec).
	ForecastHorizonSec float64
	// Publish delivers a new plan and routing tables to the serving engine.
	Publish func(plan *Plan, routes *Routes)

	// CacheDisabled turns the tenant's plan cache off: every solve call
	// reaches the planner. The escape hatch behind the public
	// WithPlannerCache(false) option.
	CacheDisabled bool

	// floorServers is the resolved per-tenant guarantee in whole servers,
	// never below one replica slot per task.
	floorServers int

	cache     map[tenantPlanKey]cachedPlan
	plan      *Plan
	routes    *Routes
	planDmd   float64
	grant     int
	allocates int
}

// cachedPlan is one plan-cache entry plus the fine-granularity demand
// bucket it was solved in, which gates reuse of truncated plans.
type cachedPlan struct {
	plan *Plan
	// fineBucket is demandBucket(demand, legacyBucketRatio) at solve time.
	fineBucket int
}

// tenantPlanKey caches plans per (quantized demand, server cap) pair: the
// same demand under a different grant is a different MILP.
type tenantPlanKey struct {
	bucket int
	cap    int
}

// uncappedServers marks a solve at the planner's own full cluster size (the
// single-pipeline code path and the joint desire pass).
const uncappedServers = -1

// legacyBucketRatio is the single-pipeline plan-cache granularity (≈4%).
// It predates the threshold-consistent quantization and is kept for the
// single-tenant paths so their seeded runs stay bit-for-bit reproducible
// against the recorded goldens.
const legacyBucketRatio = 1.04

// solve runs the tenant's planner through its plan cache, quantizing demand
// at the given geometric ratio. cap == uncappedServers uses the planner's
// own Allocate; a non-negative cap requires the CappedPlanner solve. When
// CacheDisabled is set every call solves fresh. Safe for concurrent use
// across distinct tenants (each tenant owns its cache); callers serialize
// calls for the same tenant.
func (t *Tenant) solve(demand float64, cap int, ratio float64) (*Plan, error) {
	if t.cache == nil {
		t.cache = map[tenantPlanKey]cachedPlan{}
	}
	key := tenantPlanKey{bucket: demandBucket(demand, ratio), cap: cap}
	fine := demandBucket(demand, legacyBucketRatio)
	if !t.CacheDisabled {
		if e, ok := t.cache[key]; ok {
			// A plan whose search was truncated by a resource limit is
			// provisional: it is reused only within the fine legacy bucket
			// it was solved in, so wide threshold-quantized buckets never
			// pin a timing-degraded plan across a whole demand band — once
			// demand drifts a few percent the solve is retried (warm-
			// started from the provisional plan, so quality only ratchets
			// up). Deterministically terminated plans get the full bucket.
			if !e.plan.SolveStats.Truncated || e.fineBucket == fine {
				return e.plan, nil
			}
		}
	}
	var plan *Plan
	var err error
	if cap == uncappedServers {
		plan, err = t.Alloc.Allocate(demand)
	} else {
		plan, err = t.Alloc.(CappedPlanner).AllocateCapped(demand, cap)
	}
	if err != nil {
		return nil, err
	}
	if !t.CacheDisabled {
		t.cache[key] = cachedPlan{plan: plan, fineBucket: fine}
	}
	t.allocates++
	return plan, nil
}

// moved reports whether demand deviates from the standing plan's demand by
// at least thr (relative, with a 1-QPS floor on the base).
func (t *Tenant) moved(demand, thr float64) bool {
	base := math.Max(t.planDmd, 1)
	return math.Abs(demand-t.planDmd)/base >= thr
}

// DefaultForecastHorizonSec is the planning horizon when none is configured:
// the Resource Manager's 10-second periodic interval, so a forecast covers
// exactly the window until the next guaranteed re-plan.
const DefaultForecastHorizonSec = 10

// planningDemand is the demand the Resource Manager provisions for: the
// smoothed estimate, raised to the forecaster's horizon prediction when that
// is higher. The asymmetry is deliberate hysteresis — scale-up is proactive
// (the prediction leads the estimate into a spike, so capacity and swap
// pauses are paid during the ramp, not at the crest) while scale-down stays
// reactive (a predicted decay never shrinks capacity below what current
// smoothed demand justifies, so a jittery forecaster cannot thrash the
// cluster). Without a forecaster PredictedDemand returns the estimate and
// this is exactly the reactive demand, bit for bit.
func (t *Tenant) planningDemand() float64 {
	est := t.Meta.DemandEstimate()
	h := t.ForecastHorizonSec
	if h == 0 {
		h = DefaultForecastHorizonSec
	}
	if pred := t.Meta.PredictedDemand(h); pred > est {
		return pred
	}
	return est
}

// MultiController is the multi-tenant Resource Manager: it arbitrates one
// shared server pool across several pipelines. Each adaptation round runs a
// capacity-splitting outer loop around per-tenant MILP solves:
//
//  1. Desire pass — every tenant solves unconstrained (cap = whole pool) for
//     its own demand estimate; the plan's server count is what the tenant
//     "wants".
//  2. If the wants fit the pool, everyone gets their unconstrained plan —
//     this is the common case, and it is what lets a traffic spike in one
//     pipeline steal servers another pipeline is not using.
//  3. Otherwise the pool is contended: every tenant is granted
//     min(want, floor) where floor is its guaranteed share, the leftover is
//     split across still-hungry tenants proportionally to unmet want
//     (largest-remainder rounding), and each constrained tenant re-solves
//     inside its grant — degrading to accuracy scaling or saturation within
//     its partition rather than starving a neighbour.
//
// The sum of grants never exceeds the pool, so the per-tenant engines'
// active workers always fit the shared cluster.
type MultiController struct {
	// ReallocateThreshold is the relative demand change (in any tenant)
	// that triggers re-allocation before the periodic interval elapses.
	// Zero means 0.2.
	ReallocateThreshold float64

	// Sequential forces the per-tenant solves of each allocation round to
	// run one after another instead of fanning out across goroutines. The
	// grant split is deterministic either way (solves are independent and
	// results are assembled in registration order); the escape hatch
	// exists for debugging and for the public WithParallelPlanning(false)
	// option.
	Sequential bool

	// OnGrants, when non-nil, observes every joint allocation: the step
	// counter and the per-tenant server grants, in registration order. It
	// is called with the controller lock held and must not call back in.
	OnGrants func(step int, grants []int)

	mu      sync.Mutex
	pool    int
	tenants []*Tenant
	steps   int
}

// bucketRatio is the plan-cache quantization for this controller's tenants.
// With a single tenant it is the fine legacy granularity (bit-compatible
// with the recorded single-pipeline goldens). With several tenants sharing
// the pool it widens to 1 + ReallocateThreshold, making the cache
// consistent with the arbiter's own adaptation threshold: a demand the
// controller would not consider "moved" on an unforced step maps to the
// bucket of the plan already standing, so periodic forced re-allocations
// stop re-solving MILPs for demand wiggles the control policy has declared
// immaterial.
func (m *MultiController) bucketRatio() float64 {
	if len(m.tenants) == 1 {
		return legacyBucketRatio
	}
	thr := m.ReallocateThreshold
	if thr == 0 {
		thr = 0.2
	}
	return 1 + thr
}

// NewMultiController validates the tenant set against the pool and wires
// the arbiter. It fails when the pool cannot hold one replica per task of
// every tenant simultaneously (the joint keep-warm minimum), when explicit
// MinShares oversubscribe the pool, or when several tenants share the pool
// but one of their planners cannot solve under a server cap.
func NewMultiController(pool int, tenants []*Tenant) (*MultiController, error) {
	if pool <= 0 {
		return nil, fmt.Errorf("core: multi-tenant pool needs a positive server count, got %d", pool)
	}
	if len(tenants) == 0 {
		return nil, fmt.Errorf("core: no tenants registered")
	}
	reserved := 0.0
	unreserved := 0
	for _, t := range tenants {
		if t.MinShare < 0 || t.MinShare > 1 {
			return nil, fmt.Errorf("core: tenant %q MinShare %.3f outside [0,1]", t.Name, t.MinShare)
		}
		if t.MinShare == 0 {
			unreserved++
		}
		reserved += t.MinShare
		if len(tenants) > 1 {
			if _, ok := t.Alloc.(CappedPlanner); !ok {
				return nil, fmt.Errorf("core: tenant %q planner cannot solve under a server cap; multi-tenant arbitration requires a CappedPlanner", t.Name)
			}
		}
	}
	if reserved > 1+1e-9 {
		return nil, fmt.Errorf("core: MinShares sum to %.3f > 1", reserved)
	}
	implicit := 0.0
	if unreserved > 0 {
		implicit = (1 - reserved) / float64(unreserved)
	}
	minTotal := 0
	floorTotal := 0
	for _, t := range tenants {
		share := t.MinShare
		if share == 0 {
			share = implicit
		}
		floor := int(math.Floor(share * float64(pool)))
		if warm := len(t.Meta.Graph().Tasks); floor < warm {
			floor = warm
		}
		t.floorServers = floor
		t.cache = map[tenantPlanKey]cachedPlan{}
		minTotal += len(t.Meta.Graph().Tasks)
		floorTotal += floor
	}
	if minTotal > pool {
		return nil, fmt.Errorf("core: pool of %d servers cannot keep %d tenant tasks warm (one replica each)", pool, minTotal)
	}
	// Floors are raised to each tenant's keep-warm task count, which can
	// push their sum past the pool even when the raw shares fit; splitPool
	// grants up to every floor under contention, so an oversubscribed floor
	// set would break the Σ grants ≤ pool invariant.
	if floorTotal > pool {
		return nil, fmt.Errorf("core: contention floors need %d servers (shares plus keep-warm minimums) but the pool holds %d", floorTotal, pool)
	}
	return &MultiController{pool: pool, tenants: tenants}, nil
}

// Pool returns the shared pool size.
func (m *MultiController) Pool() int { return m.pool }

// Tenants returns the number of registered tenants.
func (m *MultiController) Tenants() int { return len(m.tenants) }

// Step runs one joint Resource Manager invocation across all tenants:
// estimate each tenant's demand, rerun the capacity-splitting outer loop if
// forced or any tenant's demand moved past the threshold, and publish every
// tenant's plan and routing tables.
func (m *MultiController) Step(force bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.steps++

	// Per-tenant planning demand: the smoothed estimate, or the forecaster's
	// envelope when it predicts higher — so one tenant's forecasted spike
	// raises its want in the desire pass and claims idle neighbour servers
	// before the spike arrives.
	demands := make([]float64, len(m.tenants))
	for i, t := range m.tenants {
		demands[i] = t.planningDemand()
	}

	thr := m.ReallocateThreshold
	if thr == 0 {
		thr = 0.2
	}
	if !force {
		moved := false
		for i, t := range m.tenants {
			if t.plan == nil || t.moved(demands[i], thr) {
				moved = true
				break
			}
		}
		if !moved {
			return nil
		}
	}

	if err := m.allocateLocked(demands); err != nil {
		return err
	}
	for i, t := range m.tenants {
		t.planDmd = demands[i]
		t.publish(demands[i])
	}
	return nil
}

// allocateLocked is the capacity-splitting outer loop. Both solve passes
// fan out across tenants — each tenant's MILP is independent of the others'
// — while the grant split between them stays deterministic: wants are
// gathered at a barrier, split with the same largest-remainder arithmetic
// as ever, and results are assembled in registration order.
func (m *MultiController) allocateLocked(demands []float64) error {
	ratio := m.bucketRatio()

	// Desire pass: unconstrained solves at the planner's full cluster size
	// (= the pool).
	wants := make([]int, len(m.tenants))
	plans := make([]*Plan, len(m.tenants))
	err := m.forEachTenant(func(i int, t *Tenant) error {
		plan, err := t.solve(demands[i], uncappedServers, ratio)
		if err != nil {
			return fmt.Errorf("core: tenant %q allocation: %w", t.Name, err)
		}
		plans[i] = plan
		return nil
	})
	if err != nil {
		return err
	}
	total := 0
	for i, plan := range plans {
		wants[i] = plan.ServersUsed
		total += plan.ServersUsed
	}

	grants := append([]int(nil), wants...)
	if total > m.pool {
		grants = splitPool(m.pool, wants, m.tenants)
		err := m.forEachTenant(func(i int, t *Tenant) error {
			if grants[i] >= wants[i] {
				return nil
			}
			plan, err := t.solve(demands[i], grants[i], ratio)
			if err != nil {
				return fmt.Errorf("core: tenant %q capped allocation (%d servers): %w", t.Name, grants[i], err)
			}
			plans[i] = plan
			return nil
		})
		if err != nil {
			return err
		}
	}
	for i, t := range m.tenants {
		t.plan = plans[i]
		t.grant = grants[i]
	}
	if m.OnGrants != nil {
		m.OnGrants(m.steps, append([]int(nil), grants...))
	}
	return nil
}

// forEachTenant runs fn once per tenant. Unless Sequential is set (or the
// host has a single execution slot, where fanning out only adds scheduling
// noise to wall-clock-budgeted solves), calls run concurrently on bounded
// goroutines — one in flight per tenant, at most GOMAXPROCS at once. fn
// receives a distinct tenant per call, so per-tenant state (plan cache,
// allocator) needs no extra locking. The first error in registration order
// wins.
func (m *MultiController) forEachTenant(fn func(i int, t *Tenant) error) error {
	limit := runtime.GOMAXPROCS(0)
	if m.Sequential || limit <= 1 || len(m.tenants) <= 1 {
		for i, t := range m.tenants {
			if err := fn(i, t); err != nil {
				return err
			}
		}
		return nil
	}
	if limit > len(m.tenants) {
		limit = len(m.tenants)
	}
	sem := make(chan struct{}, limit)
	errs := make([]error, len(m.tenants))
	var wg sync.WaitGroup
	for i, t := range m.tenants {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, t *Tenant) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(i, t)
		}(i, t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// splitPool grants each tenant min(want, floor), then splits the leftover
// across still-hungry tenants proportionally to unmet want, with
// largest-remainder rounding (ties broken by registration order, for
// determinism).
func splitPool(pool int, wants []int, tenants []*Tenant) []int {
	grants := make([]int, len(wants))
	left := pool
	unmetSum := 0
	for i, t := range tenants {
		g := wants[i]
		if g > t.floorServers {
			g = t.floorServers
		}
		grants[i] = g
		left -= g
		unmetSum += wants[i] - g
	}
	if left <= 0 || unmetSum == 0 {
		return grants
	}
	type frac struct {
		idx int
		rem float64
	}
	fracs := make([]frac, 0, len(wants))
	used := 0
	for i := range tenants {
		unmet := wants[i] - grants[i]
		if unmet <= 0 {
			continue
		}
		quota := float64(left) * float64(unmet) / float64(unmetSum)
		whole := int(math.Floor(quota))
		if whole > unmet {
			whole = unmet
		}
		grants[i] += whole
		used += whole
		fracs = append(fracs, frac{idx: i, rem: quota - float64(whole)})
	}
	sort.SliceStable(fracs, func(a, b int) bool { return fracs[a].rem > fracs[b].rem })
	for _, f := range fracs {
		if used >= left {
			break
		}
		if grants[f.idx] < wants[f.idx] {
			grants[f.idx]++
			used++
		}
	}
	return grants
}

// publish rebuilds one tenant's routing tables for the given demand and
// pushes plan+routes to its engine. Callers hold the controller lock.
func (t *Tenant) publish(demand float64) {
	specs := ExpandPlan(t.plan)
	t.routes = MostAccurateFirst(t.Meta.Graph(), specs, demand*(1+t.RouteHeadroom), t.Meta.MultFactor)
	if t.Publish != nil {
		t.Publish(t.plan, t.routes)
	}
}

// Rebalance reruns MostAccurateFirst for every tenant against its standing
// plan with a fresh planning demand (the Load Balancer's
// between-allocations refresh).
func (m *MultiController) Rebalance() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, t := range m.tenants {
		if t.plan == nil {
			continue
		}
		t.publish(t.planningDemand())
	}
}

// PlanOf returns tenant i's standing plan (nil before the first Step).
func (m *MultiController) PlanOf(i int) *Plan {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tenants[i].plan
}

// RoutesOf returns tenant i's standing routing tables (nil before the first
// Step).
func (m *MultiController) RoutesOf(i int) *Routes {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tenants[i].routes
}

// Grants returns the servers currently granted to each tenant, in
// registration order. The sum never exceeds the pool.
func (m *MultiController) Grants() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, len(m.tenants))
	for i, t := range m.tenants {
		out[i] = t.grant
	}
	return out
}

// Floors returns each tenant's resolved contention guarantee in servers.
func (m *MultiController) Floors() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, len(m.tenants))
	for i, t := range m.tenants {
		out[i] = t.floorServers
	}
	return out
}

// Allocates returns the total number of MILP invocations (plan-cache
// misses) across all tenants.
func (m *MultiController) Allocates() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, t := range m.tenants {
		n += t.allocates
	}
	return n
}

// AllocatesOf returns tenant i's MILP invocations.
func (m *MultiController) AllocatesOf(i int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tenants[i].allocates
}
