package core

import (
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"loki/internal/profiles"
)

// coldAllocator mirrors treeAllocator with the planner's cross-solve memory
// disabled — the from-scratch reference the fast path is compared against.
func coldTreeAllocator(t *testing.T, servers int) *Allocator {
	t.Helper()
	g := profiles.TrafficTree()
	prof := (&profiles.Profiler{}).ProfileGraph(g, profiles.Batches)
	meta := NewMetadataStore(g, prof, 0.250, profiles.Batches)
	a, err := NewAllocator(meta, AllocatorOptions{
		Servers: servers, NetLatencySec: 0.002, KeepWarm: true,
		Headroom: 0.30, SolveTimeLimit: 30 * time.Second,
		DisableReuse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestCappedSolveReusesBuiltModel: a capped re-solve at the same demand must
// reuse the desire pass's built LP model (only the cluster row's RHS
// differs) instead of rebuilding the formulation.
func TestCappedSolveReusesBuiltModel(t *testing.T) {
	a := treeAllocator(t, 20, 0.250)
	if _, err := a.Allocate(150); err != nil {
		t.Fatal(err)
	}
	builds := a.Perf().ModelBuilds
	if builds == 0 {
		t.Fatal("expected at least one model build")
	}
	if _, err := a.AllocateCapped(150, []int{12}); err != nil {
		t.Fatal(err)
	}
	perf := a.Perf()
	if perf.ModelReuses == 0 {
		t.Fatalf("capped re-solve rebuilt the model: %+v", perf)
	}
}

// TestReusePreservesPlans drives the warm/memoized allocator and a
// from-scratch one through the same demand walk (all solves deterministic —
// generous time limit) and requires identical plans throughout, including
// capped re-solves. This is the allocator-level statement of the PR's
// "reuse must not change any emitted plan" contract.
func TestReusePreservesPlans(t *testing.T) {
	g := profiles.TrafficTree()
	prof := (&profiles.Profiler{}).ProfileGraph(g, profiles.Batches)
	meta := NewMetadataStore(g, prof, 0.250, profiles.Batches)
	fast, err := NewAllocator(meta, AllocatorOptions{
		Servers: 20, NetLatencySec: 0.002, KeepWarm: true,
		Headroom: 0.30, SolveTimeLimit: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	cold := coldTreeAllocator(t, 20)

	rng := rand.New(rand.NewSource(9))
	demand := 120.0
	for step := 0; step < 12; step++ {
		demand = math.Max(20, demand*(0.85+rng.Float64()*0.4))
		pf, err := fast.Allocate(demand)
		if err != nil {
			t.Fatal(err)
		}
		pc, err := cold.Allocate(demand)
		if err != nil {
			t.Fatal(err)
		}
		comparePlans(t, "uncapped", demand, pf, pc)

		cap := 8 + rng.Intn(8)
		pf, err = fast.AllocateCapped(demand, []int{cap})
		if err != nil {
			t.Fatal(err)
		}
		pc, err = cold.AllocateCapped(demand, []int{cap})
		if err != nil {
			t.Fatal(err)
		}
		comparePlans(t, "capped", demand, pf, pc)
	}
	if fast.Perf().ModelReuses == 0 {
		t.Fatal("fast allocator never reused a model; the test is not exercising the reuse path")
	}
}

// comparePlans requires two plans to describe the identical allocation
// (solver-effort stats aside, which legitimately differ under reuse).
func comparePlans(t *testing.T, what string, demand float64, a, b *Plan) {
	t.Helper()
	if a.Mode != b.Mode || a.ServersUsed != b.ServersUsed ||
		a.ServedFraction != b.ServedFraction || a.ExpectedAccuracy != b.ExpectedAccuracy ||
		!reflect.DeepEqual(a.Assignments, b.Assignments) || !reflect.DeepEqual(a.PathFlows, b.PathFlows) {
		t.Fatalf("%s plan at demand %.1f diverged under reuse:\nfast: %+v\ncold: %+v", what, demand, a, b)
	}
}

// TestDemandBucketConsistentWithThreshold pins the arbiter's cache
// quantization to its adaptation threshold: demands the controller would
// treat as "moved" (≥ threshold apart, relative) never share a cache
// bucket, so coarser caching can only coalesce demand levels the control
// policy already declared immaterial.
func TestDemandBucketConsistentWithThreshold(t *testing.T) {
	const thr = 0.2
	ratio := 1 + thr
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5000; trial++ {
		d := 1 + rng.Float64()*2000
		up := d * (1 + thr) // exactly at the threshold: moved() fires
		if demandBucket(d, ratio) == demandBucket(up, ratio) {
			t.Fatalf("demands %.3f and %.3f are %.0f%% apart (moved) but share bucket %d",
				d, up, thr*100, demandBucket(d, ratio))
		}
		// And bucket-mates stay within the indifference band.
		lo := math.Pow(ratio, float64(demandBucket(d, ratio))-0.5)
		hi := math.Pow(ratio, float64(demandBucket(d, ratio))+0.5)
		if hi/lo > ratio*(1+1e-9) {
			t.Fatalf("bucket %d spans ratio %.4f > %.4f", demandBucket(d, ratio), hi/lo, ratio)
		}
	}
	// The single-tenant paths keep the legacy fine granularity.
	mc := &MultiController{tenants: []*Tenant{{}}}
	if got := mc.bucketRatio(); got != legacyBucketRatio {
		t.Fatalf("single-tenant bucket ratio = %v, want legacy %v", got, legacyBucketRatio)
	}
	mc2 := &MultiController{tenants: []*Tenant{{}, {}}}
	if got := mc2.bucketRatio(); got != 1.2 {
		t.Fatalf("multi-tenant bucket ratio = %v, want 1.2 (1 + default threshold)", got)
	}
	mc2.ReallocateThreshold = 0.1
	if got := mc2.bucketRatio(); math.Abs(got-1.1) > 1e-12 {
		t.Fatalf("multi-tenant bucket ratio = %v, want 1.1", got)
	}
}

// TestParallelPlanningMatchesSequential drives two identical two-tenant
// controllers — one fanning solves out across goroutines, one strictly
// sequential — through the same contended demand walk and requires
// identical grants and plans at every step. GOMAXPROCS is raised so the
// parallel path really runs concurrently even on small CI hosts.
func TestParallelPlanningMatchesSequential(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	build := func(sequential bool) *MultiController {
		var tenants []*Tenant
		for _, name := range []string{"chain-a", "chain-b"} {
			g := profiles.TrafficChain()
			prof := (&profiles.Profiler{Seed: 11}).ProfileGraph(g, profiles.Batches)
			meta := NewMetadataStore(g, prof, 0.250, profiles.Batches)
			alloc, err := NewAllocator(meta, AllocatorOptions{
				Servers: 10, NetLatencySec: 0.002, KeepWarm: true,
				Headroom: 0.30, SolveTimeLimit: 30 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			tenants = append(tenants, &Tenant{Name: name, Meta: meta, Alloc: alloc})
		}
		mc, err := NewMultiController(10, tenants)
		if err != nil {
			t.Fatal(err)
		}
		mc.Sequential = sequential
		return mc
	}
	par := build(false)
	seq := build(true)

	rng := rand.New(rand.NewSource(4))
	for step := 0; step < 8; step++ {
		// Walk both controllers through identical demand observations,
		// spiking tenant 0 so the pool contends and capped re-solves run.
		d0 := 100 + rng.Float64()*500
		d1 := 80 + rng.Float64()*300
		for _, mc := range []*MultiController{par, seq} {
			mc.tenants[0].Meta.ObserveDemand(d0)
			mc.tenants[1].Meta.ObserveDemand(d1)
			if err := mc.Step(true); err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(par.Grants(), seq.Grants()) {
			t.Fatalf("step %d: grants diverged: parallel %v, sequential %v", step, par.Grants(), seq.Grants())
		}
		for i := range par.tenants {
			comparePlans(t, par.tenants[i].Name, d0, par.PlanOf(i), seq.PlanOf(i))
		}
	}
}
