package core

import (
	"math"
	"sync"
)

// Controller ties the Resource Manager and Load Balancer together (§3). A
// serving engine (the discrete-event cluster or the live wall-clock engine)
// drives it: Step runs the Resource Manager's periodic allocation (with a
// plan cache over quantized demand levels, since re-solving an identical
// MILP every control period would be wasted work on a real cluster too),
// and Rebalance refreshes only the routing tables between allocations, as
// §5.1 describes.
// Planner produces a resource allocation plan for a demand estimate. The
// MILP-based Allocator is Loki's planner; the baselines in
// internal/baselines (InferLine-like hardware scaling, Proteus-like
// pipeline-agnostic accuracy scaling) plug in here too, so every approach
// runs on the identical serving substrate.
type Planner interface {
	Allocate(demand float64) (*Plan, error)
}

type Controller struct {
	Meta  *MetadataStore
	Alloc Planner

	// Publish delivers a new plan and routing tables to the serving
	// engine. Called whenever either changes.
	Publish func(plan *Plan, routes *Routes)

	// ReallocateThreshold is the relative demand change that triggers
	// re-allocation before the periodic interval elapses. Zero means 0.2.
	ReallocateThreshold float64

	// RouteHeadroom inflates the demand handed to MostAccurateFirst, so the
	// greedy fill loads every worker to 1/(1+RouteHeadroom) of its profiled
	// capacity instead of exactly 100%. Batch queues at critical load build
	// unbounded waits; this is the slack that keeps queueing delay inside
	// the SLO/2 allowance. Should match the allocator's Headroom.
	RouteHeadroom float64

	mu        sync.Mutex
	cache     map[int]*Plan
	plan      *Plan
	routes    *Routes
	planDmd   float64 // demand the current plan was built for
	allocates int     // MILP invocations (cache misses), for overhead stats
	steps     int
}

// NewController wires a controller.
func NewController(meta *MetadataStore, alloc Planner, publish func(*Plan, *Routes)) *Controller {
	return &Controller{
		Meta:    meta,
		Alloc:   alloc,
		Publish: publish,
		cache:   map[int]*Plan{},
	}
}

// demandBucket quantizes demand to ≈4% granularity for plan caching.
func demandBucket(d float64) int {
	if d < 1 {
		return 0
	}
	return int(math.Round(math.Log(d) / math.Log(1.04)))
}

// Step runs one Resource Manager invocation: estimate demand, allocate
// (through the cache), and rebuild routing tables. force skips the
// change-threshold check (used on the periodic interval).
func (c *Controller) Step(force bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	demand := c.Meta.DemandEstimate()
	c.steps++

	thr := c.ReallocateThreshold
	if thr == 0 {
		thr = 0.2
	}
	if !force && c.plan != nil {
		base := math.Max(c.planDmd, 1)
		if math.Abs(demand-c.planDmd)/base < thr {
			return nil
		}
	}

	bucket := demandBucket(demand)
	plan, ok := c.cache[bucket]
	if !ok {
		var err error
		plan, err = c.Alloc.Allocate(demand)
		if err != nil {
			return err
		}
		c.cache[bucket] = plan
		c.allocates++
	}
	c.plan = plan
	c.planDmd = demand
	c.publishLocked(demand)
	return nil
}

// Rebalance reruns MostAccurateFirst with the current demand estimate
// against the standing plan (the Load Balancer's between-allocations
// refresh).
func (c *Controller) Rebalance() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.plan == nil {
		return
	}
	c.publishLocked(c.Meta.DemandEstimate())
}

func (c *Controller) publishLocked(demand float64) {
	specs := ExpandPlan(c.plan)
	c.routes = MostAccurateFirst(c.Meta.Graph(), specs, demand*(1+c.RouteHeadroom), c.Meta.MultFactor)
	if c.Publish != nil {
		c.Publish(c.plan, c.routes)
	}
}

// Plan returns the standing plan (nil before the first Step).
func (c *Controller) Plan() *Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.plan
}

// Routes returns the standing routing tables (nil before the first Step).
func (c *Controller) Routes() *Routes {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.routes
}

// Allocates returns the number of MILP invocations performed (cache
// misses).
func (c *Controller) Allocates() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.allocates
}
