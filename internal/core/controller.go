package core

import (
	"math"
	"sync"
)

// Planner produces a resource allocation plan for a demand estimate. The
// MILP-based Allocator is Loki's planner; the baselines in
// internal/baselines (InferLine-like hardware scaling, Proteus-like
// pipeline-agnostic accuracy scaling) plug in here too, so every approach
// runs on the identical serving substrate.
type Planner interface {
	Allocate(demand float64) (*Plan, error)
}

// Controller ties the Resource Manager and Load Balancer together (§3) for
// a single pipeline. A serving engine (the discrete-event cluster or the
// live wall-clock engine) drives it: Step runs the Resource Manager's
// periodic allocation (with a plan cache over quantized demand levels,
// since re-solving an identical MILP every control period would be wasted
// work on a real cluster too), and Rebalance refreshes only the routing
// tables between allocations, as §5.1 describes. Its step/cache/publish
// machinery is the shared Tenant state also used per pipeline by the
// multi-tenant MultiController, so the single- and multi-tenant control
// planes cannot drift.
type Controller struct {
	Meta  *MetadataStore
	Alloc Planner

	// Publish delivers a new plan and routing tables to the serving
	// engine. Called whenever either changes.
	Publish func(plan *Plan, routes *Routes)

	// ReallocateThreshold is the relative demand change that triggers
	// re-allocation before the periodic interval elapses. Zero means 0.2.
	ReallocateThreshold float64

	// RouteHeadroom inflates the demand handed to MostAccurateFirst, so the
	// greedy fill loads every worker to 1/(1+RouteHeadroom) of its profiled
	// capacity instead of exactly 100%. Batch queues at critical load build
	// unbounded waits; this is the slack that keeps queueing delay inside
	// the SLO/2 allowance. Should match the allocator's Headroom.
	RouteHeadroom float64

	// ForecastHorizonSec is how far ahead the Metadata Store's forecaster
	// is consulted when planning (zero means DefaultForecastHorizonSec, the
	// RM's periodic interval). Irrelevant without a forecaster installed.
	ForecastHorizonSec float64

	mu    sync.Mutex
	state Tenant // plan cache, standing plan/routes, allocate counter
	steps int
}

// NewController wires a controller.
func NewController(meta *MetadataStore, alloc Planner, publish func(*Plan, *Routes)) *Controller {
	return &Controller{Meta: meta, Alloc: alloc, Publish: publish}
}

// stateLocked mirrors the controller's public fields (settable after
// construction) into the embedded tenant state and returns it.
func (c *Controller) stateLocked() *Tenant {
	t := &c.state
	t.Meta, t.Alloc, t.Publish, t.RouteHeadroom = c.Meta, c.Alloc, c.Publish, c.RouteHeadroom
	t.ForecastHorizonSec = c.ForecastHorizonSec
	return t
}

// demandBucket quantizes demand geometrically for plan caching: two demands
// share a bucket when they differ by less than roughly ratio-1 (relative).
// The single-pipeline controller uses the fine legacyBucketRatio; the
// multi-tenant arbiter widens the buckets to its adaptation threshold — see
// MultiController.bucketRatio.
func demandBucket(d, ratio float64) int {
	if d < 1 {
		return 0
	}
	return int(math.Round(math.Log(d) / math.Log(ratio)))
}

// Step runs one Resource Manager invocation: estimate demand, allocate
// (through the cache), and rebuild routing tables. force skips the
// change-threshold check (used on the periodic interval).
func (c *Controller) Step(force bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.stateLocked()
	demand := t.planningDemand()
	c.steps++

	thr := c.ReallocateThreshold
	if thr == 0 {
		thr = 0.2
	}
	if !force && t.plan != nil && !t.moved(demand, thr) {
		return nil
	}

	plan, err := t.solve(demand, nil, legacyBucketRatio)
	if err != nil {
		return err
	}
	t.plan = plan
	t.planDmd = demand
	t.publish(demand)
	return nil
}

// Rebalance reruns MostAccurateFirst with the current planning demand
// against the standing plan (the Load Balancer's between-allocations
// refresh).
func (c *Controller) Rebalance() {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.stateLocked()
	if t.plan == nil {
		return
	}
	t.publish(t.planningDemand())
}

// Plan returns the standing plan (nil before the first Step).
func (c *Controller) Plan() *Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state.plan
}

// Routes returns the standing routing tables (nil before the first Step).
func (c *Controller) Routes() *Routes {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state.routes
}

// Allocates returns the number of MILP invocations performed (cache
// misses).
func (c *Controller) Allocates() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state.allocates
}
