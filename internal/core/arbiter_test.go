package core

import (
	"testing"
	"time"

	"loki/internal/profiles"
)

func arbiterTenant(t *testing.T, name string, pool int, minShare float64) *Tenant {
	t.Helper()
	g := profiles.TrafficChain()
	prof := (&profiles.Profiler{}).ProfileGraph(g, profiles.Batches)
	meta := NewMetadataStore(g, prof, 0.250, profiles.Batches)
	alloc, err := NewAllocator(meta, AllocatorOptions{
		Servers:        pool,
		NetLatencySec:  0.002,
		KeepWarm:       true,
		Headroom:       0.30,
		SolveTimeLimit: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &Tenant{Name: name, Meta: meta, Alloc: alloc, MinShare: minShare, RouteHeadroom: 0.30}
}

// splitPool: floors bind under contention, leftover goes to the hungry
// proportionally, and the result never exceeds the pool.
func TestSplitPool(t *testing.T) {
	cases := []struct {
		pool   int
		wants  []int
		floors []int
		want   []int
	}{
		// Both hungry beyond their floors: floors hold.
		{20, []int{20, 20}, []int{10, 10}, []int{10, 10}},
		// One idle: the hungry tenant takes the idle guarantee.
		{20, []int{20, 3}, []int{10, 10}, []int{17, 3}},
		// Uneven floors.
		{20, []int{18, 18}, []int{14, 6}, []int{14, 6}},
		// Leftover split proportionally to unmet want (12 vs 2 over 8 spare).
		{24, []int{20, 10}, []int{8, 8}, []int{15, 9}},
		// Three tenants, one idle.
		{30, []int{25, 25, 2}, []int{10, 10, 10}, []int{14, 14, 2}},
	}
	for i, c := range cases {
		got := splitPool(c.pool, c.wants, c.floors)
		total := 0
		for j := range got {
			if got[j] != c.want[j] {
				t.Errorf("case %d: splitPool(%d, %v, floors %v) = %v, want %v",
					i, c.pool, c.wants, c.floors, got, c.want)
				break
			}
			total += got[j]
		}
		if total > c.pool {
			t.Errorf("case %d: grants %v exceed pool %d", i, got, c.pool)
		}
	}
}

// A spike in one tenant steals the idle tenant's unused servers on the next
// adaptation round, and hands them back when the spike subsides.
func TestJointAllocationStealsIdleAndReturns(t *testing.T) {
	const pool = 20
	a := arbiterTenant(t, "a", pool, 0.5)
	b := arbiterTenant(t, "b", pool, 0.5)
	m, err := NewMultiController(pool, []*Tenant{a, b})
	if err != nil {
		t.Fatal(err)
	}

	// Quiet start: both small.
	a.Meta.ObserveDemand(100)
	b.Meta.ObserveDemand(100)
	if err := m.Step(true); err != nil {
		t.Fatal(err)
	}
	quiet := m.Grants()
	if quiet[0]+quiet[1] > pool {
		t.Fatalf("quiet grants %v exceed pool", quiet)
	}

	// a spikes far beyond its 10-server guarantee while b idles.
	for i := 0; i < 12; i++ {
		a.Meta.ObserveDemand(1800)
	}
	if err := m.Step(true); err != nil {
		t.Fatal(err)
	}
	spiked := m.Grants()
	if spiked[0] <= pool/2 {
		t.Fatalf("spike did not steal idle servers: grants %v (floors %v)", spiked, m.Floors())
	}
	if spiked[0]+spiked[1] > pool {
		t.Fatalf("spiked grants %v exceed pool", spiked)
	}
	if plan := m.PlanOf(0); plan.ServersUsed > spiked[0] {
		t.Fatalf("tenant a plan uses %d servers beyond its %d grant", plan.ServersUsed, spiked[0])
	}
	if m.RoutesOf(0) == nil || m.RoutesOf(1) == nil {
		t.Fatal("routes missing after joint step")
	}

	// Spike subsides: the grant shrinks back.
	for i := 0; i < 12; i++ {
		a.Meta.ObserveDemand(100)
	}
	if err := m.Step(true); err != nil {
		t.Fatal(err)
	}
	after := m.Grants()
	if after[0] >= spiked[0] {
		t.Fatalf("grant did not shrink after the spike: %v → %v", spiked, after)
	}
}

// Under joint contention both tenants hold their guaranteed floors and the
// constrained re-solves stay inside the grants.
func TestJointContentionRespectsFloors(t *testing.T) {
	const pool = 20
	a := arbiterTenant(t, "a", pool, 0.5)
	b := arbiterTenant(t, "b", pool, 0.5)
	m, err := NewMultiController(pool, []*Tenant{a, b})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		a.Meta.ObserveDemand(2500)
		b.Meta.ObserveDemand(2500)
	}
	if err := m.Step(true); err != nil {
		t.Fatal(err)
	}
	g := m.Grants()
	if g[0] != pool/2 || g[1] != pool/2 {
		t.Fatalf("contended grants %v, want equal floors %d", g, pool/2)
	}
	for i := 0; i < 2; i++ {
		if plan := m.PlanOf(i); plan == nil || plan.ServersUsed > g[i] {
			t.Fatalf("tenant %d plan exceeds its grant %d: %+v", i, g[i], plan)
		}
	}
}

// The reactive step only re-solves when some tenant's demand moved past the
// threshold.
func TestJointReactiveThreshold(t *testing.T) {
	const pool = 20
	a := arbiterTenant(t, "a", pool, 0)
	b := arbiterTenant(t, "b", pool, 0)
	m, err := NewMultiController(pool, []*Tenant{a, b})
	if err != nil {
		t.Fatal(err)
	}
	a.Meta.ObserveDemand(400)
	b.Meta.ObserveDemand(400)
	if err := m.Step(true); err != nil {
		t.Fatal(err)
	}
	base := m.Allocates()

	// Small wiggle: no new solve.
	a.Meta.ObserveDemand(410)
	if err := m.Step(false); err != nil {
		t.Fatal(err)
	}
	if m.Allocates() != base {
		t.Fatalf("reactive step re-solved on a %d→%d wiggle", 400, 410)
	}

	// Big move in one tenant: re-solve happens (cache may still absorb it,
	// so check the step actually ran by watching the published plan demand).
	for i := 0; i < 12; i++ {
		b.Meta.ObserveDemand(1200)
	}
	if err := m.Step(false); err != nil {
		t.Fatal(err)
	}
	if m.Allocates() == base {
		t.Fatalf("reactive step ignored a 3× demand move")
	}
}

// Constructor validation: bad shares, uncappable planners, impossible pools.
func TestMultiControllerValidation(t *testing.T) {
	const pool = 20
	if _, err := NewMultiController(0, []*Tenant{arbiterTenant(t, "a", pool, 0)}); err == nil {
		t.Fatal("zero pool accepted")
	}
	if _, err := NewMultiController(pool, nil); err == nil {
		t.Fatal("empty tenant set accepted")
	}
	if _, err := NewMultiController(pool, []*Tenant{
		arbiterTenant(t, "a", pool, 0.7), arbiterTenant(t, "b", pool, 0.7),
	}); err == nil {
		t.Fatal("oversubscribed MinShares accepted")
	}
	if _, err := NewMultiController(pool, []*Tenant{arbiterTenant(t, "a", pool, 1.5)}); err == nil {
		t.Fatal("MinShare > 1 accepted")
	}
	// Pool smaller than the joint keep-warm minimum (2 tasks per tenant).
	if _, err := NewMultiController(3, []*Tenant{
		arbiterTenant(t, "a", pool, 0), arbiterTenant(t, "b", pool, 0),
	}); err == nil {
		t.Fatal("pool below the joint keep-warm minimum accepted")
	}
	// Floors oversubscribe once keep-warm raises kick in: on a 10-server
	// pool, a 0.9 share (floor 9) plus an unreserved 2-task tenant (floor
	// raised to 2) needs 11 — splitPool would grant past the pool.
	if _, err := NewMultiController(10, []*Tenant{
		arbiterTenant(t, "a", pool, 0.9), arbiterTenant(t, "b", pool, 0),
	}); err == nil {
		t.Fatal("oversubscribed contention floors accepted")
	}
	// A bare Planner (no capped solve) is fine alone but not on a shared pool.
	bare := &Tenant{Name: "bare", Meta: arbiterTenant(t, "x", pool, 0).Meta, Alloc: plannerOnly{}}
	if _, err := NewMultiController(pool, []*Tenant{bare}); err != nil {
		t.Fatalf("single uncapped tenant rejected: %v", err)
	}
	if _, err := NewMultiController(pool, []*Tenant{bare, arbiterTenant(t, "b", pool, 0)}); err == nil {
		t.Fatal("uncapped planner accepted on a shared pool")
	}
}

type plannerOnly struct{}

func (plannerOnly) Allocate(float64) (*Plan, error) { return &Plan{}, nil }
