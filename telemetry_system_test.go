package loki_test

import (
	"bytes"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strings"
	"testing"
	"time"

	"loki"
)

// telemetryArtifacts is everything one seeded run's telemetry plane produced:
// the public worker rows, the trace export bytes, and the per-worker slice of
// the Prometheus exposition.
type telemetryArtifacts struct {
	workers []loki.WorkerStatus
	traces  []byte
	expo    string
	report  *loki.Report
}

// telemetryRun drives a seeded simulator run under a fault schedule — two
// permanent stragglers plus a crash with a timed recovery — and collects the
// telemetry artifacts. The sample probability is raised so the trace export
// is substantial enough for byte comparison to mean something.
func telemetryRun(t *testing.T, seed int64) telemetryArtifacts {
	t.Helper()
	sys, err := loki.New(loki.TrafficAnalysisPipeline(),
		loki.WithServers(8),
		loki.WithSeed(seed),
		loki.WithTraceSampling(0.25),
		loki.WithFaults(
			loki.FaultEvent{At: 6 * time.Second, Kind: loki.FaultStraggler, N: 2, Factor: 0.25},
			loki.FaultEvent{At: 10 * time.Second, Kind: loki.FaultCrash, N: 1, RecoverAfter: 8 * time.Second},
		))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Feed(loki.RampTrace(60, 60, 8, 3)); err != nil {
		t.Fatal(err)
	}
	if err := sys.Stop(); err != nil {
		t.Fatal(err)
	}
	var traces bytes.Buffer
	if err := sys.WriteTraces(&traces); err != nil {
		t.Fatal(err)
	}
	var expo strings.Builder
	sys.Telemetry().WritePrometheus(&expo)
	return telemetryArtifacts{
		workers: sys.Snapshot().Workers,
		traces:  traces.Bytes(),
		expo:    workerExpositionLines(expo.String()),
		report:  sys.Report(),
	}
}

// workerExpositionLines filters an exposition down to its loki_worker_*
// lines — the engine-clock-driven slice that must be deterministic
// (loki_planner_round_seconds is wall-clock and legitimately varies).
func workerExpositionLines(expo string) string {
	var out []string
	for _, line := range strings.Split(expo, "\n") {
		if strings.HasPrefix(line, "loki_worker_") ||
			strings.HasPrefix(line, "# HELP loki_worker_") ||
			strings.HasPrefix(line, "# TYPE loki_worker_") {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestTelemetryDeterminism pins the telemetry plane's headline guarantee: on
// the simulator the same seed and fault schedule reproduce the collector
// rows, the sampled trace export, and the per-worker exposition byte for
// byte — mirroring TestFaultDeterminism for the observability path. The
// tracer draws from its own seeded stream, so sampling must not perturb the
// serving run either: the Reports must match the usual goldens' shape run
// to run.
func TestTelemetryDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full serving runs; skipped in -short")
	}
	a := telemetryRun(t, 7)
	b := telemetryRun(t, 7)
	if !reflect.DeepEqual(a.workers, b.workers) {
		t.Errorf("worker rows diverged:\n%+v\n%+v", a.workers, b.workers)
	}
	if !bytes.Equal(a.traces, b.traces) {
		t.Errorf("trace exports diverged (%d vs %d bytes)", len(a.traces), len(b.traces))
	}
	if a.expo != b.expo {
		t.Errorf("worker exposition diverged:\n%s\n---\n%s", a.expo, b.expo)
	}
	if !reflect.DeepEqual(a.report, b.report) {
		t.Errorf("reports diverged:\n%+v\n%+v", a.report, b.report)
	}

	// The artifacts must be substantive, not identically empty.
	if len(a.workers) != 8 {
		t.Fatalf("want 8 worker rows, got %d", len(a.workers))
	}
	var served int64
	straggling := 0
	for _, w := range a.workers {
		served += w.ServedTotal
		if w.SpeedFactor == 0.25 && w.Live {
			straggling++
		}
		if !w.Live {
			t.Errorf("worker %d still down after recovery: %+v", w.Worker, w)
		}
	}
	if served == 0 {
		t.Error("no worker served anything")
	}
	// Two permanent stragglers were injected; at least one survives the
	// crash/recovery overlap with its 0.25 factor intact and live.
	if straggling == 0 {
		t.Errorf("no live straggler row at factor 0.25: %+v", a.workers)
	}
	if len(a.traces) < 100 {
		t.Errorf("trace export suspiciously small: %q", a.traces)
	}
	if !strings.Contains(a.expo, `loki_worker_queue_depth{class="default",tenant="default",worker="0"}`) {
		t.Errorf("exposition lacks the labeled queue-depth gauge:\n%s", a.expo)
	}
	// Tracing sampled a subset: stage summaries reach the Report.
	if len(a.report.Stages) == 0 {
		t.Error("report carries no stage latency summary")
	}
	if a.report.LatencyP50 <= 0 || a.report.LatencyP99 < a.report.LatencyP50 {
		t.Errorf("latency quantiles implausible: p50=%v p99=%v", a.report.LatencyP50, a.report.LatencyP99)
	}
}

// expositionLine matches one sample line of the Prometheus text format:
// a metric name, an optional sorted label set, and a value.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9.eE+N-]+(Inf|an)?$`)

// TestMetricsEndpoint scrapes GET /metrics off the HTTP front door and
// checks the exposition contract: the version=0.0.4 text content type,
// format-valid lines with HELP/TYPE headers, per-worker gauges labeled by
// tenant/class/worker, and the planner's structured counters.
func TestMetricsEndpoint(t *testing.T) {
	ms, err := loki.NewMulti(loki.WithServers(6), loki.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.AddPipeline("traffic", loki.TrafficAnalysisPipeline()); err != nil {
		t.Fatal(err)
	}
	if err := ms.Feed("traffic", loki.RampTrace(40, 40, 4, 3)); err != nil {
		t.Fatal(err)
	}
	if err := ms.Stop(); err != nil {
		t.Fatal(err)
	}

	rr := httptest.NewRecorder()
	ms.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /metrics = %d, want 200", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 text exposition type", ct)
	}
	body := rr.Body.String()
	types := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		switch {
		case line == "" || strings.HasPrefix(line, "# HELP "):
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if len(f) != 4 || (f[3] != "counter" && f[3] != "gauge" && f[3] != "histogram") {
				t.Errorf("malformed TYPE header: %q", line)
			}
			types[f[2]] = true
		default:
			if !expositionLine.MatchString(line) {
				t.Errorf("malformed exposition line: %q", line)
			}
		}
	}
	for _, want := range []string{
		`loki_worker_queue_depth{class="default",tenant="traffic",worker="0"}`,
		`loki_worker_occupancy{class="default",tenant="traffic",worker="0"}`,
		`loki_worker_inflight_batch{class="default",tenant="traffic",worker="5"}`,
		`loki_worker_speed_factor{class="default",tenant="traffic",worker="0"} 1`,
		`loki_worker_up{class="default",tenant="traffic",worker="0"} 1`,
		`loki_planner_rounds_total`,
		`loki_planner_grant_servers{tenant="traffic"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
	for _, name := range []string{"loki_worker_queue_depth", "loki_worker_served_total", "loki_planner_rounds_total"} {
		if !types[name] {
			t.Errorf("exposition lacks a TYPE header for %s", name)
		}
	}
}

// TestTelemetryOff pins the WithTelemetry(false) escape hatch: no registry,
// no worker rows, an empty trace export, and no /metrics route.
func TestTelemetryOff(t *testing.T) {
	ms, err := loki.NewMulti(loki.WithServers(4), loki.WithSeed(3), loki.WithTelemetry(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.AddPipeline("traffic", loki.TrafficAnalysisPipeline()); err != nil {
		t.Fatal(err)
	}
	if err := ms.Feed("traffic", loki.RampTrace(20, 20, 2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := ms.Stop(); err != nil {
		t.Fatal(err)
	}
	if ms.Telemetry() != nil {
		t.Error("Telemetry() should be nil with telemetry off")
	}
	snap, err := ms.Snapshot("traffic")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Workers != nil {
		t.Errorf("Snapshot.Workers should be nil with telemetry off, got %d rows", len(snap.Workers))
	}
	var traces bytes.Buffer
	if err := ms.WriteTraces(&traces); err != nil {
		t.Fatal(err)
	}
	// One registered pipeline → one empty export object.
	if s := strings.TrimSpace(traces.String()); s != "[\n  {}\n]" {
		t.Errorf("trace export should be one empty object, got %q", s)
	}
	rr := httptest.NewRecorder()
	ms.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 404 {
		t.Errorf("GET /metrics with telemetry off = %d, want 404", rr.Code)
	}
	r, err := ms.Report("traffic")
	if err != nil {
		t.Fatal(err)
	}
	if r.Stages != nil {
		t.Errorf("Report.Stages should be nil with telemetry off, got %+v", r.Stages)
	}
}
