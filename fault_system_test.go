package loki_test

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"loki"
)

// eventLog collects fault-observer callbacks. The observer may fire from an
// engine goroutine, so access is locked.
type eventLog struct {
	mu     sync.Mutex
	events []string
}

func (l *eventLog) observe(timeSec float64, event string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, fmt.Sprintf("t=%.0f %s", timeSec, event))
}

func (l *eventLog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.events...)
}

// chaosReports runs the canonical chaos scenario on the simulator: two
// pipelines share a reserved+spot pool, the spot class suffers a mid-run
// outage with a timed recovery, and admission control fronts both tenants.
// It returns the per-pipeline reports and the observed fault events.
func chaosReports(t *testing.T, seed int64, tiered bool) (map[string]*loki.Report, []string) {
	t.Helper()
	var log eventLog
	ms, err := loki.NewMulti(
		loki.WithSeed(seed),
		loki.WithHardware(
			loki.HardwareClass{Name: "res", Count: 8, Speed: 1.0},
			loki.HardwareClass{Name: "spot", Count: 4, Speed: 1.0},
		),
		loki.WithAdmission(true),
		// The InferLine baseline skips the MILP MaxCapacity bisection at
		// build time (tens of seconds); tiers, live-count re-planning, and
		// admission shedding are arbiter-level and identical under it.
		loki.WithBaseline(loki.BaselineInferLine),
		loki.WithSolveTimeLimit(10*time.Second),
		loki.WithFaults(loki.FaultEvent{
			At: 12 * time.Second, Kind: loki.FaultOutage,
			Class: "spot", RecoverAfter: 12 * time.Second,
		}),
		loki.WithFaultObserver(log.observe),
	)
	if err != nil {
		t.Fatal(err)
	}
	goldTier, freeTier := 0, 0
	if tiered {
		goldTier = 1
	}
	slo := 250 * time.Millisecond
	if err := ms.AddPipeline("gold", loki.TrafficAnalysisPipeline(),
		loki.WithTier(goldTier, slo)); err != nil {
		t.Fatal(err)
	}
	if err := ms.AddPipeline("free", loki.TrafficAnalysisPipeline(),
		loki.WithTier(freeTier, slo)); err != nil {
		t.Fatal(err)
	}
	// 95 QPS per pipeline fits the healthy 12-server pool with room to
	// spare but overflows the 8 survivors of the spot outage — contention
	// comes from the fault, not from baseline overload.
	steady := loki.RampTrace(95, 95, 10, 4)
	if err := ms.FeedAll(map[string]*loki.Trace{"gold": steady, "free": steady}); err != nil {
		t.Fatal(err)
	}
	if err := ms.Stop(); err != nil {
		t.Fatal(err)
	}
	return ms.Reports(), log.snapshot()
}

// TestFaultDeterminism pins the injector's headline guarantee: on the
// simulator the same seed and the same fault schedule reproduce the same run
// bit for bit — whole Reports by DeepEqual, rendered reports by bytes, and
// the fault event log verbatim.
func TestFaultDeterminism(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("two full chaos runs; skipped in -short and race builds")
	}
	r1, ev1 := chaosReports(t, 11, true)
	r2, ev2 := chaosReports(t, 11, true)
	if !reflect.DeepEqual(ev1, ev2) {
		t.Errorf("fault event logs diverged:\n%v\n%v", ev1, ev2)
	}
	for _, name := range []string{"gold", "free"} {
		if !reflect.DeepEqual(r1[name], r2[name]) {
			t.Errorf("pipeline %q reports diverged:\n%+v\n%+v", name, r1[name], r2[name])
		}
		if r1[name].String() != r2[name].String() {
			t.Errorf("pipeline %q rendered reports differ:\n%s\n%s", name, r1[name], r2[name])
		}
	}
	if len(ev1) != 2 {
		t.Fatalf("want outage + recovery events, got %v", ev1)
	}
	if !strings.Contains(ev1[0], "outage spot") || !strings.Contains(ev1[1], "recover spot") {
		t.Errorf("unexpected event log: %v", ev1)
	}
}

// badness is a report's total SLO damage: requests shed at the front door,
// dropped in the system, or answered late.
func badness(r *loki.Report) int64 { return r.Shed + r.Dropped + r.Late }

// TestTieredOutageShedsLowTierFirst checks the degradation order: with the
// spot class down the pool cannot cover both pipelines, so the tiered run
// must concentrate the damage on the tier-0 pipeline — mostly as graceful
// front-door shedding — while the tier-1 pipeline rides out the outage with
// a low violation ratio. The untiered control gives the same pipeline no
// such protection.
func TestTieredOutageShedsLowTierFirst(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("two full chaos runs; skipped in -short and race builds")
	}
	tiered, _ := chaosReports(t, 11, true)
	g, f := tiered["gold"], tiered["free"]
	if g.Completed == 0 || f.Completed == 0 {
		t.Fatalf("chaos run served nothing: gold=%+v free=%+v", g, f)
	}
	t.Logf("tiered: gold bad=%d (shed=%d viol=%.3f) free bad=%d (shed=%d)",
		badness(g), g.Shed, g.SLOViolationRatio, badness(f), f.Shed)
	if badness(f) <= badness(g) {
		t.Errorf("tiered outage should degrade the low tier first: gold bad=%d, free bad=%d",
			badness(g), badness(f))
	}
	if f.Shed <= g.Shed {
		t.Errorf("the low tier's damage should be graceful shedding: gold shed %d, free shed %d",
			g.Shed, f.Shed)
	}
	if g.SLOViolationRatio > 0.15 {
		t.Errorf("the high tier should ride out the outage, violation ratio %.3f", g.SLOViolationRatio)
	}
	untiered, _ := chaosReports(t, 11, false)
	ug := untiered["gold"]
	t.Logf("untiered: gold bad=%d (shed=%d viol=%.3f)", badness(ug), ug.Shed, ug.SLOViolationRatio)
	if badness(ug) <= badness(g) {
		t.Errorf("tiering should improve the high tier's outage: tiered bad=%d, untiered bad=%d",
			badness(g), badness(ug))
	}
}

// TestParseFaultsPublic exercises the exported CLI-grammar parser.
func TestParseFaultsPublic(t *testing.T) {
	evs, err := loki.ParseFaults("crash@30s:class=a100:n=2:recover=20s,outage@60:class=spot,straggle@10s:n=4:factor=0.25")
	if err != nil {
		t.Fatal(err)
	}
	want := []loki.FaultEvent{
		{At: 30 * time.Second, Kind: loki.FaultCrash, Class: "a100", N: 2, RecoverAfter: 20 * time.Second},
		{At: 60 * time.Second, Kind: loki.FaultOutage, Class: "spot"},
		{At: 10 * time.Second, Kind: loki.FaultStraggler, N: 4, Factor: 0.25},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Errorf("ParseFaults mismatch:\n got %+v\nwant %+v", evs, want)
	}
	if evs, err := loki.ParseFaults(""); err != nil || evs != nil {
		t.Errorf("empty spec should be (nil, nil), got (%v, %v)", evs, err)
	}
	for _, bad := range []string{"meteor@10s", "crash@-5s", "crash@10s:n=zero"} {
		if _, err := loki.ParseFaults(bad); err == nil {
			t.Errorf("ParseFaults(%q) should fail", bad)
		}
	}
}

// TestWallclockCrashRecover is the live-engine end-to-end: real goroutine
// workers, a mid-run two-server crash with a timed recovery, and the system
// must keep serving through it and report every server back up afterwards.
// Run under -race in CI; assertions are timing-lenient (counts and liveness,
// never latency).
func TestWallclockCrashRecover(t *testing.T) {
	var log eventLog
	sys, err := loki.New(loki.TrafficAnalysisPipeline(),
		loki.WithSeed(4),
		loki.WithServers(8),
		loki.WithEngine(loki.Wallclock),
		loki.WithTimeScale(0.05),
		loki.WithFaults(loki.FaultEvent{
			At: 2 * time.Second, Kind: loki.FaultCrash, N: 2, RecoverAfter: 2 * time.Second,
		}),
		loki.WithFaultObserver(log.observe),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Feed(loki.RampTrace(120, 120, 8, 1)); err != nil {
		t.Fatal(err)
	}
	// The fault timeline runs on scaled wall time; wait (generously) for the
	// crash and its recovery before shutting down.
	deadline := time.Now().Add(10 * time.Second)
	for len(log.snapshot()) < 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	snap := sys.Snapshot()
	if err := sys.Stop(); err != nil {
		t.Fatal(err)
	}
	events := log.snapshot()
	if len(events) != 2 || !strings.Contains(events[0], "crash") || !strings.Contains(events[1], "recover") {
		t.Fatalf("want crash then recover, got %v", events)
	}
	if snap.LiveServers != 8 {
		t.Errorf("after recovery every server should be live, got %d/8", snap.LiveServers)
	}
	rep := sys.Report()
	if rep.Completed == 0 {
		t.Errorf("system served nothing through the crash: %+v", rep)
	}
}
