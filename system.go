package loki

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"loki/internal/core"
	"loki/internal/engine"
	"loki/internal/experiments"
	"loki/internal/metrics"
)

// ErrStopped is returned by Submit and Feed after Stop.
var ErrStopped = errors.New("loki: system is stopped")

// System is a long-lived serving instance: a cluster of workers, the
// Resource Manager and Load Balancer reacting to live demand, and an online
// request frontend. Build one with New, inject traffic with Submit or Feed,
// observe it with Snapshot, Plan, and Routes, and drain it with Stop.
//
// On the default Simulated engine, virtual time advances only while Feed or
// Stop runs, so the System must be driven from a single goroutine; on the
// Wallclock engine, Submit and Snapshot are safe to call concurrently with a
// running Feed.
type System struct {
	cfg  config
	pipe *Pipeline
	meta *core.MetadataStore
	ctrl *core.Controller
	eng  engine.Engine
	col  *metrics.Collector

	mu         sync.Mutex
	primed     bool
	engStarted bool
	stopped    bool
}

func approachFor(b Baseline) experiments.Approach {
	switch b {
	case BaselineInferLine:
		return experiments.InferLine
	case BaselineProteus:
		return experiments.Proteus
	default:
		return experiments.Loki
	}
}

// New stands up a serving system for the pipeline: it profiles the model
// variants, wires the Resource Manager (Loki's MILP or a baseline via
// WithBaseline), and prepares the engine selected by WithEngine. The system
// idles until traffic arrives: the first Feed (or Submit) runs the initial
// allocation and starts the engine.
func New(p *Pipeline, opts ...Option) (*System, error) {
	if p == nil {
		return nil, fmt.Errorf("loki: nil pipeline")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := buildConfig(opts)

	meta, aopts := metaAndOpts(p, c)
	planner, proteus, err := experiments.NewPlanner(approachFor(c.baseline), meta, aopts)
	if err != nil {
		return nil, err
	}

	col := metrics.NewCollector(30, c.servers)
	ecfg := engine.Config{
		Meta:           meta,
		Policy:         c.pol,
		Collector:      col,
		Servers:        c.servers,
		SLOSec:         c.slo.Seconds(),
		NetLatencySec:  c.netLatency.Seconds(),
		Seed:           c.seed,
		SwapLatencySec: c.swap.Seconds(),
		ExecJitter:     c.jitter,
		TimeScale:      c.timeScale,
	}
	if proteus != nil {
		ecfg.OnTaskDemand = proteus.ObserveTaskDemand
	}

	eng, err := engine.New(engine.Kind(c.engine), ecfg)
	if err != nil {
		return nil, err
	}

	ctrl := core.NewController(meta, planner, eng.ApplyPlan)
	ctrl.RouteHeadroom = c.headroomOrDefault()

	// The engine starts lazily on the first Submit/Feed, after the prime:
	// an idle wallclock engine would otherwise tick 0-QPS demand
	// observations into the estimator while the caller prepares traffic.
	return &System{cfg: c, pipe: p, meta: meta, ctrl: ctrl, eng: eng, col: col}, nil
}

// primeLocked runs the first allocation if none has happened yet. qps > 0
// seeds the demand estimate (Feed uses the trace's opening rate, matching
// the pre-warm of a batch run); qps == 0 allocates a keep-warm minimal plan.
func (s *System) primeLocked(qps float64) error {
	if s.primed {
		return nil
	}
	if qps > 0 {
		s.meta.ObserveDemand(qps)
	}
	if err := s.ctrl.Step(true); err != nil {
		return err
	}
	s.primed = true
	return nil
}

// startLocked launches the engine on the first injection (after priming).
func (s *System) startLocked() error {
	if s.engStarted {
		return nil
	}
	if err := s.eng.Start(s.ctrl); err != nil {
		return err
	}
	s.engStarted = true
	return nil
}

// Submit admits one request at the system's current time. On the Simulated
// engine the request is processed when virtual time next advances (a Feed or
// Stop call); on the Wallclock engine it is served immediately. The context
// is checked for cancellation before admission.
func (s *System) Submit(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return ErrStopped
	}
	if err := s.primeLocked(0); err != nil {
		s.mu.Unlock()
		return err
	}
	if err := s.startLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	s.mu.Unlock()
	return s.eng.Submit()
}

// Feed plays a workload trace's Poisson arrival process through the system,
// blocking until the last arrival has been admitted (virtual time on the
// Simulated engine, scaled wall time on Wallclock). The first Feed also
// pre-warms the Resource Manager for the trace's opening demand. Traces can
// be fed back to back; requests still in flight keep draining across calls.
func (s *System) Feed(tr *Trace) error {
	if tr == nil || len(tr.QPS) == 0 {
		return fmt.Errorf("loki: empty trace")
	}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return ErrStopped
	}
	if err := s.primeLocked(tr.QPS[0]); err != nil {
		s.mu.Unlock()
		return err
	}
	if err := s.startLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	s.mu.Unlock()
	return s.eng.Feed(tr)
}

// Stop gracefully drains in-flight requests and shuts the system down.
// Idempotent; after Stop, Submit and Feed return ErrStopped while Snapshot,
// Plan, Routes, and Report keep working on the final state.
func (s *System) Stop() error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil
	}
	s.stopped = true
	started := s.engStarted
	s.mu.Unlock()
	if !started {
		return nil
	}
	return s.eng.Stop()
}

// Snapshot is a point-in-time view of a running System.
type Snapshot struct {
	// TimeSec is the engine time in seconds since New (virtual on the
	// Simulated engine, scaled wall time on Wallclock).
	TimeSec float64
	// Request totals so far.
	Arrivals, Completed, Dropped, Rerouted int64
	// InFlight is the number of admitted requests not yet resolved.
	InFlight int64
	// ActiveServers counts workers currently hosting a model variant.
	ActiveServers int
	// Allocates counts Resource Manager MILP invocations (plan-cache
	// misses) so far.
	Allocates int
}

// Snapshot returns live counters without disturbing the run.
func (s *System) Snapshot() Snapshot {
	st := s.eng.Stats()
	return Snapshot{
		TimeSec:       s.eng.Now(),
		Arrivals:      st.Injected,
		Completed:     st.Completed,
		Dropped:       st.Dropped,
		Rerouted:      st.Rerouted,
		InFlight:      st.Injected - st.Completed - st.Dropped,
		ActiveServers: s.eng.ActiveServers(),
		Allocates:     s.ctrl.Allocates(),
	}
}

// Plan returns the Resource Manager's standing allocation plan (nil before
// the first allocation).
func (s *System) Plan() *Plan { return s.ctrl.Plan() }

// Routes returns the Load Balancer's standing routing tables (nil before
// the first allocation).
func (s *System) Routes() *Routes { return s.ctrl.Routes() }

// Report summarizes the run so far (or the whole run, after Stop) with the
// §6.1 metrics.
func (s *System) Report() *Report {
	sum := s.col.Summarize()
	st := s.eng.Stats()
	return &Report{
		Accuracy:          sum.MeanAccuracy,
		SLOViolationRatio: sum.ViolationRatio,
		MeanServers:       sum.MeanServers,
		MinServers:        sum.MinServers,
		MaxServers:        sum.MaxServers,
		MeanLatency:       time.Duration(sum.MeanLatency * float64(time.Second)),
		Arrivals:          int64(sum.Arrivals),
		Completed:         int64(sum.Completed),
		Late:              int64(sum.Late),
		Dropped:           int64(sum.Dropped),
		Rerouted:          st.Rerouted,
		Series:            s.col.Series(),
	}
}
