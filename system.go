package loki

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"loki/internal/baselines"
	"loki/internal/core"
	"loki/internal/experiments"
	"loki/internal/ingress"
)

// ErrStopped is returned by Submit and Feed after Stop.
var ErrStopped = errors.New("loki: system is stopped")

// ErrOverloaded is the sentinel Submit errors match (errors.Is) when an
// admission controller armed by WithAdmission sheds the request: the
// pipeline is over its granted rate (or saturated) and the caller should
// back off for the RetryAfter hint rather than retry immediately. The HTTP
// front door translates it to 429 + Retry-After.
var ErrOverloaded = ingress.ErrShed

// RetryAfter extracts the back-off hint from an ErrOverloaded error: how
// long until the shedding pipeline expects capacity again. ok is false when
// err carries no admission decision.
func RetryAfter(err error) (d time.Duration, ok bool) {
	var se *ingress.ShedError
	if !errors.As(err, &se) {
		return 0, false
	}
	return time.Duration(se.RetryAfterSec * float64(time.Second)), true
}

// defaultPipeline names the single tenant a System registers with its
// underlying MultiSystem.
const defaultPipeline = "default"

// System is a long-lived serving instance for one pipeline: a cluster of
// workers, the Resource Manager and Load Balancer reacting to live demand,
// and an online request frontend. Build one with New, inject traffic with
// Submit or Feed, observe it with Snapshot, Plan, and Routes, and drain it
// with Stop.
//
// A System is a thin wrapper over a single-tenant MultiSystem — the same
// control plane that arbitrates several pipelines on a shared pool runs
// here with one tenant holding the whole pool, so single- and multi-tenant
// serving behave identically. Use NewMulti to share the pool across
// pipelines.
//
// On the default Simulated engine, virtual time advances only while Feed or
// Stop runs, so the System must be driven from a single goroutine; on the
// Wallclock engine, Submit and Snapshot are safe to call concurrently with a
// running Feed.
type System struct {
	ms *MultiSystem
}

// approachFor maps the public Baseline knob onto the experiments wiring.
func approachFor(b Baseline) experiments.Approach {
	switch b {
	case BaselineInferLine:
		return experiments.InferLine
	case BaselineProteus:
		return experiments.Proteus
	default:
		return experiments.Loki
	}
}

// newPlannerFor builds a tenant's planner for the selected strategy; the
// Proteus return is non-nil only for that baseline (its per-task demand
// observer must be wired into the engine).
func newPlannerFor(b Baseline, meta *core.MetadataStore, aopts core.AllocatorOptions) (core.Planner, *baselines.Proteus, error) {
	return experiments.NewPlanner(approachFor(b), meta, aopts)
}

// New stands up a serving system for the pipeline: it profiles the model
// variants, wires the Resource Manager (Loki's MILP or a baseline via
// WithBaseline), and prepares the engine selected by WithEngine. The system
// idles until traffic arrives: the first Feed (or Submit) runs the initial
// allocation and starts the engine.
func New(p *Pipeline, opts ...Option) (*System, error) {
	if p == nil {
		return nil, fmt.Errorf("loki: nil pipeline")
	}
	ms, err := NewMulti(opts...)
	if err != nil {
		return nil, err
	}
	if err := ms.AddPipeline(defaultPipeline, p); err != nil {
		return nil, err
	}
	// Build eagerly so engine and controller configuration errors surface
	// from New, as they always have, rather than from the first injection.
	ms.mu.Lock()
	err = ms.buildLocked()
	ms.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return &System{ms: ms}, nil
}

// Submit admits one request at the system's current time. On the Simulated
// engine the request is processed when virtual time next advances (a Feed or
// Stop call); on the Wallclock engine it is served immediately. The context
// is checked for cancellation before admission.
func (s *System) Submit(ctx context.Context) error {
	return s.ms.Submit(ctx, defaultPipeline)
}

// Feed plays a workload trace's Poisson arrival process through the system,
// blocking until the last arrival has been admitted (virtual time on the
// Simulated engine, scaled wall time on Wallclock). The first Feed also
// pre-warms the Resource Manager for the trace's opening demand. Traces can
// be fed back to back; requests still in flight keep draining across calls.
func (s *System) Feed(tr *Trace) error {
	return s.ms.Feed(defaultPipeline, tr)
}

// Stop gracefully drains in-flight requests and shuts the system down.
// Idempotent; after Stop, Submit and Feed return ErrStopped while Snapshot,
// Plan, Routes, and Report keep working on the final state.
func (s *System) Stop() error { return s.ms.Stop() }

// Snapshot is a point-in-time view of a running System.
type Snapshot struct {
	// TimeSec is the engine time in seconds since New (virtual on the
	// Simulated engine, scaled wall time on Wallclock).
	TimeSec float64
	// Arrivals, Completed, Dropped, and Rerouted are request totals so far.
	Arrivals, Completed, Dropped, Rerouted int64
	// Shed counts requests refused by admission control (WithAdmission);
	// they are not part of Arrivals. Zero when no controller is armed.
	Shed int64
	// InFlight is the number of admitted requests not yet resolved.
	InFlight int64
	// ActiveServers counts workers currently hosting a model variant.
	ActiveServers int
	// ActiveServersByClass breaks ActiveServers down per hardware class
	// (keyed by class name). Nil on homogeneous systems.
	ActiveServersByClass map[string]int
	// GrantedServersByClass breaks GrantedServers down per hardware class.
	// Nil on homogeneous systems.
	GrantedServersByClass map[string]int
	// GrantedServers is the partition of the pool the joint allocator
	// currently grants this pipeline: its standing plan's server count when
	// the pool is uncontended (the rest of the pool is idle headroom any
	// tenant may grow into), and its arbitrated share under contention.
	GrantedServers int
	// Allocates counts Resource Manager MILP invocations (plan-cache
	// misses) so far.
	Allocates int
	// ObservedDemand is the most recent raw per-second demand sample the
	// Frontend reported (zero before the first housekeeping tick).
	ObservedDemand float64
	// PredictedDemand is the forecaster's demand prediction at the planning
	// horizon (see WithForecaster). Without a forecaster it equals the
	// smoothed demand estimate — the value the reactive planner uses.
	PredictedDemand float64
	// AdmittedQPS and ShedQPS are the admission controller's live gauges —
	// admitted and shed request rates over the trailing few seconds. Zero
	// without WithAdmission.
	AdmittedQPS, ShedQPS float64
	// GrantedRateQPS is the admission controller's current target rate: the
	// frontend capacity the joint allocator granted this pipeline on the
	// last adaptation round. Zero without WithAdmission (use GrantedRate for
	// the derivation on admission-free systems).
	GrantedRateQPS float64
	// LiveServers is the number of pool servers currently up — the pool
	// size minus servers crashed by the fault injector (WithFaults). It
	// equals the pool size when no fault is active.
	LiveServers int
	// LiveServersByClass breaks LiveServers down per hardware class. Nil on
	// homogeneous systems.
	LiveServersByClass map[string]int
	// Workers holds one live telemetry row per pool worker — queue depth,
	// in-flight batch, occupancy, served QPS, speed factor, liveness — as
	// maintained by the per-worker collector. Nil under WithTelemetry(false)
	// or before the control plane is built.
	Workers []WorkerStatus
}

// Snapshot returns live counters without disturbing the run.
func (s *System) Snapshot() Snapshot {
	snap, _ := s.ms.Snapshot(defaultPipeline)
	return snap
}

// Plan returns the Resource Manager's standing allocation plan (nil before
// the first allocation).
func (s *System) Plan() *Plan {
	plan, _ := s.ms.Plan(defaultPipeline)
	return plan
}

// Routes returns the Load Balancer's standing routing tables (nil before
// the first allocation).
func (s *System) Routes() *Routes {
	routes, _ := s.ms.Routes(defaultPipeline)
	return routes
}

// Report summarizes the run so far (or the whole run, after Stop) with the
// §6.1 metrics.
func (s *System) Report() *Report {
	r, _ := s.ms.Report(defaultPipeline)
	r.Pipeline = "" // a single-pipeline report needs no tenant label
	return r
}

// GrantedRate returns the frontend capacity the Resource Manager currently
// grants the pipeline, in requests per second — the rate an armed admission
// controller admits at (zero before the first allocation).
func (s *System) GrantedRate() float64 {
	qps, _ := s.ms.GrantedRate(defaultPipeline)
	return qps
}

// Telemetry returns the system's metric registry (nil under
// WithTelemetry(false)) — see MultiSystem.Telemetry.
func (s *System) Telemetry() *TelemetryRegistry { return s.ms.Telemetry() }

// WriteTraces writes the sampled request traces as indented JSON — see
// MultiSystem.WriteTraces.
func (s *System) WriteTraces(w io.Writer) error { return s.ms.WriteTraces(w) }

// ServeHTTP exposes the system's single pipeline over HTTP under the name
// "default" (POST /v1/default/infer, GET /v1/default/snapshot, GET
// /healthz) — see MultiSystem.ServeHTTP.
func (s *System) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.ms.ServeHTTP(w, r) }

// Drain puts the HTTP front door into draining mode (503 on new requests)
// while in-flight work keeps being served; follow with Stop. See
// MultiSystem.Drain.
func (s *System) Drain() { s.ms.Drain() }
