package loki

import (
	"time"

	"loki/internal/core"
	"loki/internal/forecast"
)

// ForecasterKind selects the demand-prediction model behind WithForecaster
// and WithPipelineForecaster. Every kind is wrapped in the InferLine-style
// envelope by default (max prediction over the planning horizon, inflated by
// WithForecastHeadroom); WithForecastEnvelope(false) exposes the raw point
// prediction instead.
type ForecasterKind int

const (
	// ForecastLast is the persistence model: it predicts that demand stays
	// at the current smoothed estimate. It is the default, and serving with
	// it is bit-for-bit identical to serving without a forecaster — the
	// reactive control plane is the degenerate forecast.
	ForecastLast ForecasterKind = iota
	// ForecastTrend extrapolates a sliding-window linear regression over
	// the smoothed demand signal (window set by WithForecastWindow) —
	// cheap, and swings within a few seconds of a flash-crowd onset.
	ForecastTrend
	// ForecastHoltWinters runs double exponential smoothing (level+trend),
	// extended to triple smoothing with a learned seasonal profile when
	// WithForecastSeason sets a period — the model for diurnal traces.
	ForecastHoltWinters
)

// String names the forecaster kind.
func (k ForecasterKind) String() string {
	switch k {
	case ForecastLast:
		return "last"
	case ForecastTrend:
		return "trend"
	case ForecastHoltWinters:
		return "holtwinters"
	default:
		return "unknown"
	}
}

// forecastConfig is the resolved forecaster selection for a system or one
// pipeline. The zero value means "not configured": the pipeline inherits
// the system default, and a system without one serves reactively.
type forecastConfig struct {
	set         bool
	kind        ForecasterKind
	window      int
	season      int
	headroom    float64
	horizon     time.Duration
	envelopeOff bool
}

// ForecastOption tunes a forecaster selected with WithForecaster or
// WithPipelineForecaster.
type ForecastOption func(*forecastConfig)

// WithForecastWindow sets the ForecastTrend regression window in samples
// (per-second demand reports; default 30).
func WithForecastWindow(n int) ForecastOption {
	return func(c *forecastConfig) { c.window = n }
}

// WithForecastSeason sets the ForecastHoltWinters seasonal period in samples
// (per-second demand reports). Zero, the default, disables seasonality and
// runs plain level+trend smoothing; a diurnal trace wants its cycle length
// here, and needs one full period of history before the seasonal term
// engages.
func WithForecastSeason(n int) ForecastOption {
	return func(c *forecastConfig) { c.season = n }
}

// WithForecastHeadroom inflates the enveloped prediction by 1+h — the
// InferLine-style provisioning margin for forecast error. The default is 0,
// which keeps ForecastLast an exact identity; 0.1 is a reasonable margin for
// real forecasting. Ignored when WithForecastEnvelope is off.
func WithForecastHeadroom(h float64) ForecastOption {
	return func(c *forecastConfig) { c.headroom = h }
}

// WithForecastHorizon sets how far ahead the Resource Manager plans
// (default 10s, its own periodic interval, so each forecast covers exactly
// the window until the next guaranteed re-plan).
func WithForecastHorizon(d time.Duration) ForecastOption {
	return func(c *forecastConfig) { c.horizon = d }
}

// WithForecastEnvelope toggles the envelope combinator (default on): the
// planner sees the maximum prediction over the whole horizon rather than the
// point prediction at its end, so a forecast that crests mid-period still
// provisions for the crest. Off, the raw point prediction is used and
// WithForecastHeadroom is ignored.
func WithForecastEnvelope(on bool) ForecastOption {
	return func(c *forecastConfig) { c.envelopeOff = !on }
}

// WithForecaster installs a demand forecaster: the Resource Manager then
// plans every pipeline against max(current smoothed estimate, predicted
// demand over the planning horizon), so capacity for a predicted spike is
// provisioned — and model-swap pauses are paid — during the ramp rather than
// at the crest. Scale-down deliberately keeps following the smoothed
// estimate (a predicted decay never shrinks capacity early), the hysteresis
// that prevents a jittery forecaster from thrashing the cluster. On a
// MultiSystem the forecasted demand also drives the joint desire pass, so a
// pipeline with a predicted spike claims idle neighbour servers proactively.
//
// The default is ForecastLast, whose predictions equal the smoothed estimate:
// serving behavior is bit-for-bit identical to a system without the option.
// On a MultiSystem this sets the default that WithPipelineForecaster
// overrides per pipeline.
func WithForecaster(kind ForecasterKind, opts ...ForecastOption) Option {
	return func(c *config) { c.fc = newForecastConfig(kind, opts) }
}

// WithPipelineForecaster sets this pipeline's demand forecaster, overriding
// the system-wide WithForecaster default. See WithForecaster for how
// predictions enter planning.
func WithPipelineForecaster(kind ForecasterKind, opts ...ForecastOption) PipelineOption {
	return func(c *pipelineConfig) { c.fc = newForecastConfig(kind, opts) }
}

func newForecastConfig(kind ForecasterKind, opts []ForecastOption) forecastConfig {
	fc := forecastConfig{set: true, kind: kind}
	for _, o := range opts {
		o(&fc)
	}
	return fc
}

// horizonSec resolves the planning horizon in seconds.
func (fc forecastConfig) horizonSec() float64 {
	if fc.horizon <= 0 {
		return core.DefaultForecastHorizonSec
	}
	return fc.horizon.Seconds()
}

// build constructs a fresh forecaster instance — each pipeline owns its own
// model state — or nil when no forecaster was configured.
func (fc forecastConfig) build() forecast.Forecaster {
	if !fc.set {
		return nil
	}
	var base forecast.Forecaster
	switch fc.kind {
	case ForecastTrend:
		base = &forecast.Trend{Window: fc.window}
	case ForecastHoltWinters:
		base = &forecast.HoltWinters{Period: fc.season}
	default:
		base = &forecast.Last{}
	}
	if fc.envelopeOff {
		return base
	}
	return &forecast.Envelope{Base: base, HorizonSec: fc.horizonSec(), Headroom: fc.headroom}
}
