package loki

import (
	"fmt"
	"sort"
	"sync"

	"loki/internal/profiles"
)

// The variant-profile registry: named families of model variants
// (accuracy/latency profiles) that pipelines draw from. The paper's five
// families — "yolov5", "efficientnet", "vgg", "resnet", "clip-vit" — are
// pre-registered; RegisterVariantFamily adds custom ones.

var (
	familyMu sync.RWMutex
	families = map[string][]Variant{}
)

func init() {
	for name, f := range profiles.Families() {
		families[name] = f
	}
}

// RegisterVariantFamily adds a named variant family to the registry. Every
// variant must carry a well-formed profile (accuracy in (0,1], positive β,
// non-negative α and multiplicative factor). Re-registering an existing name
// is an error; the built-in families cannot be replaced.
func RegisterVariantFamily(name string, variants []Variant) error {
	if name == "" {
		return fmt.Errorf("loki: variant family needs a name")
	}
	if len(variants) == 0 {
		return fmt.Errorf("loki: variant family %q is empty", name)
	}
	// A single-task graph reuses the pipeline validator for the profiles.
	probe := &Pipeline{Name: name, Tasks: []Task{{Name: name, Variants: variants}}}
	if err := probe.Validate(); err != nil {
		return err
	}
	familyMu.Lock()
	defer familyMu.Unlock()
	if _, dup := families[name]; dup {
		return fmt.Errorf("loki: variant family %q already registered", name)
	}
	families[name] = append([]Variant(nil), variants...)
	return nil
}

// VariantFamily returns a copy of the named family's variants.
func VariantFamily(name string) ([]Variant, error) {
	familyMu.RLock()
	defer familyMu.RUnlock()
	f, ok := families[name]
	if !ok {
		return nil, fmt.Errorf("loki: unknown variant family %q", name)
	}
	return append([]Variant(nil), f...), nil
}

// MustVariantFamily is VariantFamily for literal pipeline definitions; it
// panics on an unknown name.
func MustVariantFamily(name string) []Variant {
	f, err := VariantFamily(name)
	if err != nil {
		panic(err)
	}
	return f
}

// VariantFamilies lists the registered family names, sorted.
func VariantFamilies() []string {
	familyMu.RLock()
	defer familyMu.RUnlock()
	out := make([]string, 0, len(families))
	for name := range families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
