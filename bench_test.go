// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6). Each benchmark runs a scaled-down version of the corresponding
// experiment per iteration and reports the headline quantities as custom
// metrics, so `go test -bench=. -benchmem` reproduces the whole evaluation
// in one pass. cmd/lokiexp runs the full-size versions.
package loki_test

import (
	"testing"
	"time"

	"loki"
	"loki/internal/core"
	"loki/internal/experiments"
	"loki/internal/profiles"
	"loki/internal/trace"
)

// BenchmarkFigure1CapacityPhases sweeps demand over the two-task traffic
// chain and reports the phase boundaries and capacity gains of Figure 1.
func BenchmarkFigure1CapacityPhases(b *testing.B) {
	var last *experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure1(20, 0.250, 11)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.HardwareLimitQPS, "hwlimit_qps")
	b.ReportMetric(last.Phase2CapacityGain, "phase2_gain_x")
	b.ReportMetric(last.TotalCapacityGain, "total_gain_x")
	b.ReportMetric(100*(1-last.AccuracyAtPhase2), "phase2_accdrop_%")
}

// BenchmarkFigure3AccuracyThroughput profiles the EfficientNet family
// (Figure 3's tradeoff curve).
func BenchmarkFigure3AccuracyThroughput(b *testing.B) {
	var rows []experiments.Fig3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure3()
	}
	b.ReportMetric(rows[0].MaxQPS, "b0_qps")
	b.ReportMetric(rows[len(rows)-1].MaxQPS, "b7_qps")
	b.ReportMetric(rows[0].MaxQPS/rows[len(rows)-1].MaxQPS, "qps_spread_x")
}

// BenchmarkFigure5TrafficAnalysis runs the three-system comparison on the
// traffic-analysis pipeline (Figure 5) on a shortened trace.
func BenchmarkFigure5TrafficAnalysis(b *testing.B) {
	var last *experiments.ComparisonResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Comparison(experiments.CompareConfig{
			TrafficNotSocial: true, Seed: 11, TraceSteps: 48, StepSec: 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.ViolationGainVsProteus, "violgain_vs_proteus_x")
	b.ReportMetric(last.CapacityGainVsInferLine, "capgain_vs_inferline_x")
	b.ReportMetric(last.ServerGainVsProteus, "servergain_vs_proteus_x")
	b.ReportMetric(last.Loki.Summary.MeanAccuracy, "loki_accuracy")
	b.ReportMetric(last.Loki.Summary.ViolationRatio, "loki_violations")
}

// BenchmarkFigure6SocialMedia runs the same comparison on the social-media
// pipeline (Figure 6).
func BenchmarkFigure6SocialMedia(b *testing.B) {
	var last *experiments.ComparisonResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Comparison(experiments.CompareConfig{
			TrafficNotSocial: false, Seed: 11, TraceSteps: 48, StepSec: 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.ViolationGainVsProteus, "violgain_vs_proteus_x")
	b.ReportMetric(last.CapacityGainVsInferLine, "capgain_vs_inferline_x")
	b.ReportMetric(last.Loki.Summary.MeanAccuracy, "loki_accuracy")
}

// BenchmarkFigure7DroppingAblation compares the four §5.2 early-dropping
// mechanisms (Figure 7).
func BenchmarkFigure7DroppingAblation(b *testing.B) {
	var rows []experiments.Fig7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure7(3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].ViolationRatio, "nodrop_viol")
	b.ReportMetric(rows[1].ViolationRatio, "lasttask_viol")
	b.ReportMetric(rows[2].ViolationRatio, "pertask_viol")
	b.ReportMetric(rows[3].ViolationRatio, "opportunistic_viol")
}

// BenchmarkFigure8SLOSensitivity sweeps the latency SLO (Figure 8).
func BenchmarkFigure8SLOSensitivity(b *testing.B) {
	var rows []experiments.Fig8Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure8(3, []float64{200, 300, 400})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if !r.Feasible {
			continue
		}
		switch r.SLOMs {
		case 200:
			b.ReportMetric(r.ViolationRatio, "viol_at_200ms")
		case 400:
			b.ReportMetric(r.ViolationRatio, "viol_at_400ms")
		}
	}
}

// BenchmarkSimulatorValidation runs the §6.2 sim-vs-prototype comparison on
// a compressed trace (the live engine runs in scaled wall-clock time, so
// iterations are inherently slow).
func BenchmarkSimulatorValidation(b *testing.B) {
	var last *experiments.ValidationResult
	for i := 0; i < b.N; i++ {
		// TimeScale 0.5 keeps scheduler jitter and controller wall time
		// small relative to scaled time; stronger compression inflates the
		// live engine's violations artificially.
		r, err := experiments.Validate(experiments.ValidateConfig{
			Seed: 5, PeakQPS: 350, TraceSteps: 16, StepSec: 4, TimeScale: 0.5,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.AccuracyDeltaPct, "acc_delta_%")
	b.ReportMetric(last.ViolationDeltaPct, "viol_delta_pp")
	b.ReportMetric(last.ServersDeltaPct, "servers_delta_%")
}

// BenchmarkResourceManagerMILP measures one Resource Manager allocation
// (§6.5; paper: ≈500 ms with Gurobi).
func BenchmarkResourceManagerMILP(b *testing.B) {
	g := profiles.TrafficTree()
	prof := (&profiles.Profiler{}).ProfileGraph(g, profiles.Batches)
	meta := core.NewMetadataStore(g, prof, 0.250, profiles.Batches)
	alloc, err := core.NewAllocator(meta, core.AllocatorOptions{
		Servers: 20, NetLatencySec: 0.002, KeepWarm: true,
		Headroom: 0.30, SolveTimeLimit: 2 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	demands := []float64{300, 700, 1100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alloc.Allocate(demands[i%len(demands)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoadBalancerRouting measures one MostAccurateFirst run (§6.5;
// paper: ≈0.15 ms).
func BenchmarkLoadBalancerRouting(b *testing.B) {
	g := profiles.TrafficTree()
	prof := (&profiles.Profiler{}).ProfileGraph(g, profiles.Batches)
	meta := core.NewMetadataStore(g, prof, 0.250, profiles.Batches)
	alloc, err := core.NewAllocator(meta, core.AllocatorOptions{
		Servers: 20, NetLatencySec: 0.002, KeepWarm: true, Headroom: 0.30,
	})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := alloc.Allocate(900)
	if err != nil {
		b.Fatal(err)
	}
	specs := core.ExpandPlan(plan)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.MostAccurateFirst(g, specs, 900, meta.MultFactor)
	}
}

// BenchmarkEndToEndServe measures a full public-API serving run per
// iteration (not a paper figure; tracks overall system throughput).
func BenchmarkEndToEndServe(b *testing.B) {
	pipe := loki.TrafficAnalysisPipeline()
	tr := loki.AzureTrace(1, 24, 5, 800)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loki.Serve(pipe, tr, loki.WithSeed(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterEventThroughput measures raw simulator speed: simulated
// requests processed per wall second at a fixed demand.
func BenchmarkClusterEventThroughput(b *testing.B) {
	pipe := loki.TrafficAnalysisPipeline()
	tr := &trace.Trace{Interval: 10, QPS: []float64{500, 500, 500}}
	b.ResetTimer()
	total := 0.0
	for i := 0; i < b.N; i++ {
		rep, err := loki.Serve(pipe, tr, loki.WithSeed(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		total += float64(rep.Arrivals)
	}
	b.ReportMetric(total/b.Elapsed().Seconds(), "sim_requests/s")
}

// BenchmarkMultiTenantContention runs the shared-pool contention experiment
// per iteration (two pipelines, one pool, a mid-run spike) and reports each
// tenant's SLO attainment plus the partition movement. The recorded baseline
// lives in BENCH_multitenant.json.
func BenchmarkMultiTenantContention(b *testing.B) {
	var last *experiments.MultiTenantResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.MultiTenant(experiments.MultiTenantConfig{
			Servers: 20, Seed: 11, TraceSteps: 24, StepSec: 5,
			PeakA: 350, PeakB: 250, SpikeMult: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	a, s := last.Tenants[0], last.Tenants[1]
	b.ReportMetric(a.Summary.ViolationRatio, "traffic_viol")
	b.ReportMetric(s.Summary.ViolationRatio, "social_viol")
	b.ReportMetric(a.Summary.MeanAccuracy, "traffic_acc")
	b.ReportMetric(s.Summary.MeanAccuracy, "social_acc")
	b.ReportMetric(float64(a.MaxGrant-a.MinGrant), "traffic_grant_swing")
	b.ReportMetric(float64(last.Allocates), "milp_solves")
}

// BenchmarkHeteroAllocate measures one Resource Manager allocation on a
// homogeneous 20-server pool versus the 3-class heterogeneous fleet of the
// hetero experiment (24 servers, class-expanded configuration graph), over a
// cycling demand walk. The hetero MILP carries one capacity row per class
// and |classes|× the configurations, so its solve time bounds the cost of
// the hardware-class refactor; milp_solves counts branch-and-bound
// invocations per iteration. The recorded baseline lives in
// BENCH_hetero.json.
func BenchmarkHeteroAllocate(b *testing.B) {
	fleets := []struct {
		name    string
		classes []profiles.Class
	}{
		{"homogeneous", profiles.DefaultClasses(20)},
		{"hetero3", []profiles.Class{
			{Name: "a100", Count: 4, Speed: 2.0, CostPerHour: 3.2},
			{Name: "v100", Count: 8, Speed: 1.0, CostPerHour: 1.2},
			{Name: "t4", Count: 12, Speed: 0.5, CostPerHour: 0.55},
		}},
	}
	demands := []float64{150, 350, 600, 250, 500}
	for _, f := range fleets {
		b.Run(f.name, func(b *testing.B) {
			g := profiles.TrafficTree()
			prof := (&profiles.Profiler{}).ProfileGraphClasses(g, profiles.Batches, f.classes)
			meta := core.NewMetadataStoreHetero(g, f.classes, prof, 0.250, profiles.Batches)
			alloc, err := core.NewAllocator(meta, core.AllocatorOptions{
				NetLatencySec: 0.002, KeepWarm: true,
				Headroom: 0.30, SolveTimeLimit: 2 * time.Second,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := alloc.Allocate(demands[i%len(demands)]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(alloc.Perf().MILPSolves)/float64(b.N), "milp_solves")
		})
	}
}

// BenchmarkFleetRound runs one fleet-scale planning cell per iteration —
// 100 servers, 12 chain tenants, 3 hardware classes, 8 measured arbitration
// rounds on a seeded ±4% demand walk, greedy-replace budget armed versus off
// on the identical walk — and reports the greedy arm's round-latency
// percentiles plus both arms' branch-and-bound counts. The regression
// canaries for the planner-scaling work: round_p95_ms must stay well under
// the 100 ms fleet target and milp_solves must stay at least 3× below
// milp_solves_off. The recorded full-grid baseline (up to 1000 servers ×
// 24 tenants) lives in BENCH_fleet.json.
func BenchmarkFleetRound(b *testing.B) {
	var last experiments.FleetCell
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fleet(experiments.FleetConfig{
			Servers: []int{100}, Tenants: []int{12}, Classes: []int{3},
			Rounds: 8, Seed: 11,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = r.Cells[0]
	}
	b.ReportMetric(last.P50Millis, "round_p50_ms")
	b.ReportMetric(last.P95Millis, "round_p95_ms")
	b.ReportMetric(float64(last.MILPSolves), "milp_solves")
	b.ReportMetric(float64(last.MILPSolvesNoGreedy), "milp_solves_off")
	b.ReportMetric(last.SolveReduction, "solve_reduction_x")
	b.ReportMetric(100*last.GreedyHitRate, "greedy_hit_%")
	b.ReportMetric(last.AllocsPerRound, "allocs_per_round")
}

// BenchmarkIngressOverload runs the HTTP front-door overload sweep per
// iteration (open vs admission-controlled door, 1x and 2x the measured
// capacity, wall-clock engine over real sockets) and reports each point's
// attainment and goodput — the regression canaries for the ingress
// subsystem: admitted attainment must hold at 2x while the open door rots,
// and admission goodput at 2x must strictly beat the open door's. The
// recorded full-sweep baseline lives in BENCH_ingress.json.
func BenchmarkIngressOverload(b *testing.B) {
	var last *experiments.IngressResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ingress(experiments.IngressConfig{
			Seed: 11, Mults: []float64{1.0, 2.0}, DurSec: 8, WarmupSec: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.CapacityQPS, "capacity_qps")
	b.ReportMetric(last.Baseline[0].Attainment, "open_1x_slo")
	b.ReportMetric(last.Baseline[1].Attainment, "open_2x_slo")
	b.ReportMetric(last.Baseline[1].GoodputQPS, "open_2x_goodput")
	b.ReportMetric(last.Admitted[0].Attainment, "adm_1x_slo")
	b.ReportMetric(last.Admitted[1].Attainment, "adm_2x_slo")
	b.ReportMetric(last.Admitted[1].GoodputQPS, "adm_2x_goodput")
	b.ReportMetric(100*last.Admitted[1].ShedRate, "adm_2x_shed_%")
}

// BenchmarkChaosOutage runs the chaos grid's headline cell per iteration —
// a whole-class spot outage with timed recovery, tiered vs untiered, on the
// quick trace — and reports the during-fault goodput of every (arm, tenant)
// pair plus the tiered arm's post-recovery gap to the oracle. The
// regression canaries for the failure model: the tiered arm must hold the
// high tier through the outage (tiered_gold_during ≥ 0.95) while the
// untiered arm degrades both tenants, and recovery must land within 2% of
// the fault-free oracle. The recorded full-length baseline lives in
// BENCH_chaos.json.
func BenchmarkChaosOutage(b *testing.B) {
	var last *experiments.ChaosResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Chaos(experiments.ChaosConfig{
			Seed: 11, Quick: true, Faults: []string{"outage"},
		})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, cell := range last.Cells {
		arm := "untiered"
		if cell.Tiered {
			arm = "tiered"
		}
		for _, t := range cell.Tenants {
			b.ReportMetric(t.During.GoodputRatio, arm+"_"+t.Name+"_during")
			if cell.Tiered {
				b.ReportMetric(t.After.GoodputRatio-t.OracleAfter.GoodputRatio, arm+"_"+t.Name+"_recovery_gap")
			}
		}
	}
}

// BenchmarkTelemetryOverhead measures the telemetry plane's cost on the
// simulator's hot path: the same seeded serving run with the collector,
// registry, and request tracer fully armed ("on") versus the
// WithTelemetry(false) escape hatch ("off"). Telemetry consumes no RNG
// stream, so both arms serve bit-identical runs and the throughput delta is
// pure observation overhead; the acceptance bound is a < 5% regression of
// sim_requests/s on versus off. The recorded baseline lives in
// BENCH_telemetry.json.
func BenchmarkTelemetryOverhead(b *testing.B) {
	pipe := loki.TrafficAnalysisPipeline()
	tr := &trace.Trace{Interval: 10, QPS: []float64{500, 500, 500}}
	arms := []struct {
		name string
		opts []loki.Option
	}{
		{"off", []loki.Option{loki.WithTelemetry(false)}},
		{"on", nil},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			total := 0.0
			for i := 0; i < b.N; i++ {
				opts := append([]loki.Option{loki.WithSeed(int64(i))}, arm.opts...)
				rep, err := loki.Serve(pipe, tr, opts...)
				if err != nil {
					b.Fatal(err)
				}
				total += float64(rep.Arrivals)
			}
			b.ReportMetric(total/b.Elapsed().Seconds(), "sim_requests/s")
		})
	}
}

// BenchmarkForecastSpike runs the proactive-provisioning experiment per
// iteration (reactive vs trend vs Holt-Winters on an identical flash crowd
// and an identical diurnal cycle) and reports every run's window SLO
// attainment — spike-window for the flash crowd, whole-run for diurnal —
// the regression canaries for the forecasting subsystem. The recorded
// baseline lives in BENCH_forecast.json.
func BenchmarkForecastSpike(b *testing.B) {
	var last []*experiments.ForecastResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Forecast(experiments.ForecastConfig{
			Seed: 11, TraceSteps: 24, StepSec: 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, res := range last {
		suffix := "_spike_slo"
		if res.Scenario == "diurnal" {
			suffix = "_diurnal_slo"
		}
		for _, o := range res.Outcomes {
			b.ReportMetric(o.WindowAttainment, o.Name+suffix)
		}
	}
}
