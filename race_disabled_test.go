//go:build !race

package loki_test

const raceEnabled = false
