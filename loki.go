// Package loki is a serving system for ML inference pipelines with joint
// hardware and accuracy scaling, reproducing "Loki: A System for Serving ML
// Inference Pipelines with Hardware and Accuracy Scaling" (HPDC 2024).
//
// A pipeline is a rooted tree of tasks; each task is served by a family of
// model variants trading accuracy for throughput. Loki's Resource Manager
// periodically solves a MILP that first tries to serve the demand with the
// most accurate variants on as few servers as possible (hardware scaling)
// and, once the cluster is exhausted, picks the variant mix that sacrifices
// the least end-to-end accuracy while meeting demand and the latency SLO
// (accuracy scaling). Its Load Balancer routes queries to the most accurate
// workers first and rescues stragglers by opportunistically rerouting them
// to faster workers with leftover capacity.
//
// The primary API is the long-lived System: build a pipeline (canned or via
// the PipelineBuilder), stand the system up, and inject requests online —
// either one at a time (Submit) or as a whole workload trace (Feed):
//
//	sys, err := loki.New(loki.TrafficAnalysisPipeline(),
//	    loki.WithServers(20),
//	    loki.WithSLO(250*time.Millisecond))
//	if err != nil { ... }
//	if err := sys.Feed(loki.AzureTrace(1, 96, 10, 1100)); err != nil { ... }
//	if err := sys.Stop(); err != nil { ... }
//	fmt.Println(sys.Report())
//
// While running, Snapshot, Plan, and Routes observe the live system state.
// WithEngine selects the serving backend: the discrete-event simulator
// (default, virtual time) or the wall-clock engine with real goroutine
// workers. Serve remains as the one-call batch form — it is exactly
// New → Feed → Stop → Report.
//
// Custom pipelines are assembled with NewPipeline:
//
//	pipe, err := loki.NewPipeline("traffic-analysis").
//	    Task("object-detection", loki.MustVariantFamily("yolov5")...).
//	    Child("car-classification", 0.70, loki.MustVariantFamily("efficientnet")...).
//	    Child("facial-recognition", 0.30, loki.MustVariantFamily("vgg")...).
//	    Build()
//
// with variant accuracy/latency profiles drawn from the registry
// (RegisterVariantFamily adds custom families). The lower-level building
// blocks (allocation plans, routing tables) are exposed through the Plan and
// Routes types and the cmd/ tools; the experiments regenerating every figure
// of the paper live in internal/experiments behind cmd/lokiexp.
//
// Several pipelines can share one server pool: build a MultiSystem with
// NewMulti, register each pipeline with AddPipeline (per-pipeline SLO,
// policy, and contention guarantee via PipelineOptions), and serve
// concurrent traces with FeedAll. The joint Resource Manager re-partitions
// the pool across pipelines on every adaptation round — see ARCHITECTURE.md
// for the layer map and the multi-tenant control flow. A System built with
// New is exactly a MultiSystem with a single registered pipeline holding
// the whole pool.
package loki

import (
	"fmt"
	"time"

	"loki/internal/core"
	"loki/internal/fault"
	"loki/internal/metrics"
	"loki/internal/pipeline"
	"loki/internal/policy"
	"loki/internal/profiles"
	"loki/internal/telemetry"
	"loki/internal/trace"
)

// Pipeline is an inference pipeline: a rooted tree of tasks.
type Pipeline = pipeline.Graph

// Task is one stage of a pipeline.
type Task = pipeline.Task

// TaskID indexes a task within its pipeline.
type TaskID = pipeline.TaskID

// Child is a task→task edge with its branch ratio.
type Child = pipeline.Child

// Variant is one model variant: accuracy, batch-latency profile, and
// multiplicative factor.
type Variant = pipeline.Variant

// Trace is a demand series driving a serving run.
type Trace = trace.Trace

// Plan is a resource allocation: model variants, replica counts, and max
// batch sizes (the Resource Manager's output).
type Plan = core.Plan

// Routes are the routing tables MostAccurateFirst produces.
type Routes = core.Routes

// Policy is an early-dropping mechanism applied at task boundaries.
type Policy = policy.Policy

// The four §5.2 policies.
var (
	NoDropPolicy        Policy = policy.NoDrop{}
	LastTaskPolicy      Policy = policy.LastTask{}
	PerTaskPolicy       Policy = policy.PerTask{}
	OpportunisticPolicy Policy = policy.Opportunistic{}
)

// Canned pipelines from the paper's evaluation.

// TrafficAnalysisPipeline returns the Figure 2a pipeline: YOLOv5 object
// detection feeding EfficientNet car classification and VGG facial
// recognition.
func TrafficAnalysisPipeline() *Pipeline { return profiles.TrafficTree() }

// TrafficChainPipeline returns the two-task chain of Figure 1.
func TrafficChainPipeline() *Pipeline { return profiles.TrafficChain() }

// SocialMediaPipeline returns the Figure 2b pipeline: ResNet image
// classification feeding CLIP-ViT captioning.
func SocialMediaPipeline() *Pipeline { return profiles.SocialMedia() }

// Canned workloads.

// AzureTrace synthesizes a diurnal trace shaped like the Azure Functions
// workload, scaled to the given peak QPS.
func AzureTrace(seed int64, steps int, stepSec, peakQPS float64) *Trace {
	return trace.AzureLike(seed, steps, stepSec).ScaleToPeak(peakQPS)
}

// TwitterTrace synthesizes a diurnal trace with bursts shaped like the
// Twitter streaming workload.
func TwitterTrace(seed int64, steps int, stepSec, peakQPS float64) *Trace {
	return trace.TwitterLike(seed, steps, stepSec).ScaleToPeak(peakQPS)
}

// RampTrace is a linear demand ramp.
func RampTrace(startQPS, endQPS float64, steps int, stepSec float64) *Trace {
	return trace.Ramp(startQPS, endQPS, steps, stepSec)
}

// DiurnalTrace is a deterministic day/night cycle: the rate swings
// sinusoidally between trough and peak, completing `periods` full cycles
// over the trace. Noise-free and exactly periodic — the reference workload
// for seasonal forecasters (see WithForecaster).
func DiurnalTrace(steps int, stepSec, troughQPS, peakQPS float64, periods int) *Trace {
	return trace.Diurnal(steps, stepSec, troughQPS, peakQPS, periods)
}

// FlashCrowdTrace is a flat base rate with a sudden mult× burst over the
// window [startFrac, startFrac+durFrac) of the trace — the spike workload
// of the proactive-serving experiments.
func FlashCrowdTrace(baseQPS float64, steps int, stepSec, startFrac, durFrac, mult float64) *Trace {
	return trace.FlashCrowd(baseQPS, steps, stepSec, startFrac, durFrac, mult)
}

// Baseline selects an alternative resource-management strategy for Serve.
type Baseline int

// Baselines from §6.1. BaselineNone runs Loki itself.
const (
	BaselineNone      Baseline = iota // Loki: hardware + accuracy scaling
	BaselineInferLine                 // hardware scaling only, fixed variants
	BaselineProteus                   // pipeline-agnostic per-task accuracy scaling
)

// Option configures a serving system (New, NewMulti, Serve) or a planning
// entry point (PlanFor, MaxCapacity). Pool-level knobs (WithServers,
// WithSeed, WithEngine, WithNetworkLatency, WithHeadroom) always apply to
// the whole system; per-pipeline knobs (WithSLO, WithPolicy, WithBaseline)
// set the defaults that a MultiSystem's PipelineOptions may override for
// individual pipelines.
type Option func(*config)

type config struct {
	servers    int
	hardware   []HardwareClass
	slo        time.Duration
	netLatency time.Duration
	seed       int64
	pol        Policy
	baseline   Baseline
	headroom   float64
	swap       time.Duration
	solveLimit time.Duration
	jitter     float64
	minAcc     float64
	engine     EngineKind
	timeScale  float64
	fc         forecastConfig
	admission  bool
	faults     []FaultEvent
	onFault    func(timeSec float64, event string)
	// telemetryOff records WithTelemetry(false): the per-worker collectors,
	// the metric registry, and the request tracer are all skipped.
	telemetryOff bool
	// traceProb is the request-tracing sample probability; traceSet records
	// an explicit WithTraceSampling (zero then means "trace nothing" rather
	// than the 1/64 default).
	traceProb float64
	traceSet  bool
	// workerMetricsLimit caps per-worker /metrics cardinality (see
	// WithWorkerMetricsLimit); workerMetricsSet records an explicit option
	// (zero then means unlimited rather than the collector default).
	workerMetricsLimit int
	workerMetricsSet   bool
	// Zero values mean "on": the fast planning path is the default and
	// these record the escape hatches.
	plannerCacheOff     bool
	parallelPlanningOff bool
}

// headroomOrDefault returns the configured over-provisioning factor, falling
// back to the paper's 0.30 default.
func (c config) headroomOrDefault() float64 {
	if c.headroom == 0 {
		return 0.30
	}
	return c.headroom
}

// WithServers sets the cluster size (default 20, the paper's testbed). On a
// MultiSystem this is the shared pool every registered pipeline draws from.
// WithHardware supersedes it: with explicit hardware classes the pool size
// is the classes' total count.
func WithServers(n int) Option { return func(c *config) { c.servers = n } }

// HardwareClass describes one class of a heterogeneous cluster: Count
// servers of the same accelerator generation, each executing at Speed × the
// profiled reference speed (1.0 = the paper's GTX 1080 Ti testbed) and
// costing CostPerHour dollars per active server-hour (0 disables cost
// accounting for the class). The Resource Manager plans replicas per
// (variant, batch, class), keeps one capacity constraint per class, and the
// engines swap models only within a class.
type HardwareClass struct {
	Name        string
	Count       int
	Speed       float64
	CostPerHour float64
}

// WithHardware declares the cluster's hardware classes, replacing the
// homogeneous pool of WithServers with a mixed fleet. The pool size becomes
// the classes' total count. The default — equivalent to omitting the option
// — is a single class named "default" holding WithServers servers at Speed
// 1.0 and zero cost, which reproduces the homogeneous system bit for bit.
//
//	loki.WithHardware(
//	    loki.HardwareClass{Name: "a100", Count: 4, Speed: 2.0, CostPerHour: 3.5},
//	    loki.HardwareClass{Name: "v100", Count: 8, Speed: 1.0, CostPerHour: 1.2},
//	    loki.HardwareClass{Name: "cpu", Count: 16, Speed: 0.25, CostPerHour: 0.2})
//
// When any class carries a positive CostPerHour, hardware scaling minimizes
// the fleet's dollar rate instead of its server count (INFaaS-style), and
// Report gains ServerCostHours/CostPerQuery.
func WithHardware(classes ...HardwareClass) Option {
	return func(c *config) { c.hardware = append([]HardwareClass(nil), classes...) }
}

// ParseHardware parses a fleet specification of the form
// "a100:4@2.0,v100:8@1.0,cpu:16@0.25" — comma-separated name:count@speed
// entries, each with an optional fourth @cost-per-hour part
// ("a100:4@2.0@3.5") — as accepted by the serving CLIs' -hardware flag. An
// empty spec returns nil (keep the homogeneous default).
func ParseHardware(spec string) ([]HardwareClass, error) {
	classes, err := profiles.ParseClasses(spec)
	if err != nil || classes == nil {
		return nil, err
	}
	out := make([]HardwareClass, len(classes))
	for i, cl := range classes {
		out[i] = HardwareClass{Name: cl.Name, Count: cl.Count, Speed: cl.Speed, CostPerHour: cl.CostPerHour}
	}
	return out, nil
}

// WithSLO sets the end-to-end latency SLO (default 250 ms). On a
// MultiSystem it is the default for pipelines that do not set their own via
// WithPipelineSLO. The SLO shapes planning, not just measurement: the
// Resource Manager prunes configuration paths whose latency cannot fit it,
// so an SLO no variant combination can meet fails at construction.
func WithSLO(d time.Duration) Option { return func(c *config) { c.slo = d } }

// WithNetworkLatency sets the per-hop communication latency (default 2 ms).
func WithNetworkLatency(d time.Duration) Option {
	return func(c *config) { c.netLatency = d }
}

// WithSeed fixes all stochastic choices (profiling noise, routing draws,
// Poisson arrivals and fan-out). On the Simulated engine a fixed seed makes
// whole runs bit-for-bit reproducible; multi-tenant systems derive disjoint
// per-pipeline RNG streams from it.
func WithSeed(s int64) Option { return func(c *config) { c.seed = s } }

// WithPolicy selects the early-dropping policy (default opportunistic
// rerouting). The policy is a serving-time mechanism and composes freely
// with WithBaseline: the baseline replaces the Resource Manager's planning
// strategy, while the policy governs what workers do with straggling
// requests under whichever plan is standing. On a MultiSystem it is the
// default that WithPipelinePolicy overrides per pipeline.
func WithPolicy(p Policy) Option { return func(c *config) { c.pol = p } }

// WithBaseline serves with a baseline planning strategy instead of Loki's
// MILP (see Baseline). Only the planner changes — engine, routing, drop
// policy (WithPolicy), and metrics stay identical, which is what makes the
// §6 comparisons apples-to-apples. On a MultiSystem it is the default that
// WithPipelineBaseline overrides per pipeline; note BaselineProteus cannot
// share a pool (it has no capped solve).
func WithBaseline(b Baseline) Option { return func(c *config) { c.baseline = b } }

// WithHeadroom sets the capacity over-provisioning factor (default 0.30).
// It inflates both the demand the Resource Manager plans for and the demand
// the Load Balancer routes for, keeping batch-queue waits inside the SLO/2
// allowance at critical load.
func WithHeadroom(h float64) Option { return func(c *config) { c.headroom = h } }

// WithSwapLatency models the model-load pause when a worker changes variant.
func WithSwapLatency(d time.Duration) Option { return func(c *config) { c.swap = d } }

// WithSolveTimeLimit bounds each Resource Manager MILP solve (default 500 ms).
func WithSolveTimeLimit(d time.Duration) Option {
	return func(c *config) { c.solveLimit = d }
}

// WithExecutionJitter adds relative noise to batch execution latencies.
func WithExecutionJitter(j float64) Option { return func(c *config) { c.jitter = j } }

// WithMinAccuracy sets a floor on end-to-end path accuracy: accuracy
// scaling never routes queries through variant combinations below it (§1
// notes deployments usually impose a minimum acceptable accuracy, which
// bounds how far accuracy scaling may go). Demand beyond the floored
// capacity is shed instead.
func WithMinAccuracy(a float64) Option { return func(c *config) { c.minAcc = a } }

// WithPlannerCache toggles the Resource Manager's fast planning path
// (default on): the per-pipeline plan cache over quantized demand levels,
// the memoized LP models that capped re-solves share with the desire pass,
// the warm-start seeds carried from one adaptation round to the next, and
// the stall cutoff on wall-clock-budgeted searches. Proof-terminated
// solves return identical plans either way; gap-terminated solves follow
// the identical search and may only be upgraded, within the gap tolerance,
// by a verified warm start; wall-clock-truncated solves are anytime and
// timing-dependent in both modes. WithPlannerCache(false) is the
// from-scratch, full-budget escape hatch for measurement and debugging.
func WithPlannerCache(on bool) Option {
	return func(c *config) { c.plannerCacheOff = !on }
}

// WithParallelPlanning toggles the multi-tenant arbiter's per-tenant solve
// fan-out (default on): each adaptation round's desire pass and capped
// re-solves run on bounded goroutines (at most GOMAXPROCS in flight), since
// every pipeline's MILP is independent. The grant split across pipelines is
// deterministic either way — wants are gathered at a barrier and split with
// the same arithmetic. Single-pipeline systems have nothing to fan out;
// WithParallelPlanning(false) forces strictly sequential solves.
func WithParallelPlanning(on bool) Option {
	return func(c *config) { c.parallelPlanningOff = !on }
}

// WithAdmission arms per-pipeline admission control and load shedding
// (default off). Each pipeline gets a token-bucket admission controller in
// front of its queues whose target rate follows the capacity the joint
// allocator actually granted it — the summed service rate of its root-task
// replicas, refreshed on every plan publication — plus a saturation limit on
// in-flight work. Arrivals beyond the admitted rate are shed immediately:
// Submit returns ErrOverloaded (carrying a Retry-After hint, see RetryAfter)
// and the HTTP front door answers 429, instead of letting excess requests
// queue past their SLO. Shed requests still count toward the demand the
// planner observes, so a shedding system scales up and the admitted rate
// follows.
func WithAdmission(on bool) Option { return func(c *config) { c.admission = on } }

// WithTelemetry toggles the telemetry plane (default on): per-worker
// collectors fed by the serving engines (queue depth, occupancy, in-flight
// batch size, served QPS, speed factor, live state), the metric registry
// behind MultiSystem.Telemetry and the HTTP front door's GET /metrics
// exposition, and sampled request tracing. Telemetry is pure observation —
// it consumes no RNG stream and perturbs no serving decision, so runs are
// bit-identical with it on or off. WithTelemetry(false) is the
// zero-overhead escape hatch for benchmarking.
func WithTelemetry(on bool) Option { return func(c *config) { c.telemetryOff = !on } }

// WithTraceSampling sets the request-tracing sample probability in [0, 1]
// (default 1/64). Sampled requests record a span per pipeline stage — queue
// wait, execution time, batch size, worker, and hardware class — exported as
// JSON by MultiSystem.WriteTraces and summarized per stage in Report.Stages.
// On the Simulated engine sampling draws from its own seeded stream, so the
// sampled set is deterministic for a fixed seed. Zero traces nothing;
// WithTelemetry(false) disables tracing regardless.
func WithTraceSampling(p float64) Option {
	return func(c *config) { c.traceProb = p; c.traceSet = true }
}

// WithWorkerMetricsLimit sets the largest tenant pool that still gets
// per-worker series on /metrics (default 256; 0 means unlimited). Bigger
// pools degrade to per-class aggregate series — queue depth, in-flight
// batches, live count, served QPS, mean occupancy and speed — which keeps
// exposition cardinality bounded at fleet scale while Snapshot.Workers
// retains full per-worker detail.
func WithWorkerMetricsLimit(n int) Option {
	return func(c *config) { c.workerMetricsLimit = n; c.workerMetricsSet = true }
}

// WorkerStatus is one worker's live telemetry row: queue depth, in-flight
// batch, occupancy and served QPS over the last sampling window, speed
// factor and liveness from the fault injector, and cumulative served/batch/
// swap totals. Snapshot.Workers carries one per pool worker.
type WorkerStatus = telemetry.WorkerRow

// StageLatency aggregates the sampled traces of one pipeline stage: queue
// and execution latency quantiles, mean batch size, and the worst sampled
// end-to-end time. Report.Stages carries one per stage that served a
// sampled request.
type StageLatency = telemetry.StageStat

// RequestTrace is one sampled request's span tree as recorded by the
// request tracer (see WithTraceSampling).
type RequestTrace = telemetry.ReqTrace

// TraceSpan is one stage-level span of a RequestTrace.
type TraceSpan = telemetry.Span

// TelemetryRegistry is the system's metric registry: every counter, gauge,
// and histogram the telemetry plane maintains, queryable programmatically
// (Gather) or rendered in Prometheus text exposition format
// (WritePrometheus) — the same bytes the HTTP front door serves on
// GET /metrics.
type TelemetryRegistry = telemetry.Registry

// MetricPoint is one metric sample returned by TelemetryRegistry.Gather.
type MetricPoint = telemetry.Point

// FaultKind enumerates the failure modes the fault injector can produce.
type FaultKind int

const (
	// FaultCrash takes N servers of a hardware class down; their queued
	// and in-flight work is lost.
	FaultCrash FaultKind = iota
	// FaultOutage takes a whole hardware class down at once (the spot pool
	// vanishes).
	FaultOutage
	// FaultStraggler multiplies the execution speed of N servers by Factor
	// (0.25 = four times slower) without dropping their work.
	FaultStraggler
)

// FaultEvent is one scheduled fault. At is measured from the start of
// serving. Class names the hardware class hit (empty = the pool's first
// class); N bounds how many servers are affected (ignored by FaultOutage);
// Factor is the straggler speed multiplier; RecoverAfter, when positive,
// undoes the fault that long after it fires (zero = permanent).
type FaultEvent struct {
	At           time.Duration
	Kind         FaultKind
	Class        string
	N            int
	Factor       float64
	RecoverAfter time.Duration
}

// WithFaults installs a deterministic fault schedule into the serving
// engines (default none). A crashed worker drops its queued and in-flight
// batches, leaves the load balancer's route table, and stops counting toward
// class capacity: the metadata stores and Snapshot report the live per-class
// counts, and the arbiter re-plans against them within one adaptation round
// (keep-warm repair plus per-class re-solves) instead of waiting out the RM
// period. With no faults configured every code path is bit-identical to the
// fault-free system. Same seed, same schedule — same run, on the simulator
// bit for bit.
//
//	loki.WithFaults(loki.FaultEvent{
//	    At: 30 * time.Second, Kind: loki.FaultOutage,
//	    Class: "spot", RecoverAfter: 20 * time.Second})
func WithFaults(events ...FaultEvent) Option {
	return func(c *config) { c.faults = append([]FaultEvent(nil), events...) }
}

// ParseFaults parses the CLI fault grammar accepted by the serving CLIs'
// -fault flag: comma-separated kind@time[:key=value]... events, where kind
// is crash, outage, or straggle, time is a Go duration or plain seconds, and
// the keys are class=<name>, n=<count>, factor=<mult>, recover=<duration>.
//
//	crash@30s:class=a100:n=2:recover=20s,outage@60s:class=spot:recover=30s
//
// An empty spec returns nil (no faults).
func ParseFaults(spec string) ([]FaultEvent, error) {
	sched, err := fault.Parse(spec)
	if err != nil || sched == nil {
		return nil, err
	}
	out := make([]FaultEvent, len(sched.Events))
	for i, e := range sched.Events {
		out[i] = FaultEvent{
			At:           time.Duration(e.At * float64(time.Second)),
			Kind:         FaultKind(e.Kind),
			Class:        e.Class,
			N:            e.N,
			Factor:       e.Factor,
			RecoverAfter: time.Duration(e.RecoverAfter * float64(time.Second)),
		}
	}
	return out, nil
}

// WithFaultObserver registers a callback invoked on every fault and recovery
// event with the engine's time in seconds and a human-readable description
// (the serving CLIs log these in the status line). The callback may fire
// from an engine goroutine; it must not call back into the system.
func WithFaultObserver(fn func(timeSec float64, event string)) Option {
	return func(c *config) { c.onFault = fn }
}

// faultSchedule converts the configured events to the internal schedule.
func (c config) faultSchedule() *fault.Schedule {
	if len(c.faults) == 0 {
		return nil
	}
	s := &fault.Schedule{}
	for _, e := range c.faults {
		s.Events = append(s.Events, fault.Event{
			At:           e.At.Seconds(),
			Kind:         fault.Kind(e.Kind),
			Class:        e.Class,
			N:            e.N,
			Factor:       e.Factor,
			RecoverAfter: e.RecoverAfter.Seconds(),
		})
	}
	return s
}

// Report is the outcome of a serving run.
type Report struct {
	// Pipeline labels which pipeline the totals belong to. Empty on a
	// single-pipeline System report; set to the registered name on
	// MultiSystem reports (and "all" on AggregateReport), so mixed-tenant
	// numbers are never silently summed.
	Pipeline string
	// Accuracy is the mean end-to-end accuracy over answered requests
	// (normalized; 1.0 = every task used its most accurate variant).
	Accuracy float64
	// SLOViolationRatio is the fraction of requests that finished past
	// their deadline or were dropped.
	SLOViolationRatio float64
	// MeanServers / MinServers / MaxServers track hardware scaling.
	MeanServers, MinServers, MaxServers float64
	// MeanLatency is the mean end-to-end response time of answered
	// requests.
	MeanLatency time.Duration
	// Requests breakdown.
	Arrivals, Completed, Late, Dropped, Rerouted int64
	// Admitted and Shed are admission-control totals: requests that passed a
	// pipeline's admission controller and requests it refused. Both stay zero
	// unless WithAdmission armed one — shed requests are not Arrivals (they
	// never entered the system), so offered load is Arrivals + Shed.
	Admitted, Shed int64
	// MeanServersByClass breaks MeanServers down per hardware class (keyed
	// by class name). Nil on runs without hardware-class accounting.
	MeanServersByClass map[string]float64
	// ServerCostHours is the run's accrued server cost in dollars: active
	// servers × their class's CostPerHour, integrated over the run. Zero on
	// unpriced fleets (every CostPerHour zero), where cost accounting is
	// off and Report output is unchanged.
	ServerCostHours float64
	// CostPerQuery is ServerCostHours divided by answered requests
	// (completed plus late), the INFaaS-style serving cost. Zero on
	// unpriced fleets.
	CostPerQuery float64
	// LatencyP50 and LatencyP99 are end-to-end response-time quantiles over
	// answered requests, interpolated from the collector's latency histogram.
	// Zero when nothing was answered.
	LatencyP50, LatencyP99 time.Duration
	// Stages summarizes the sampled request traces per pipeline stage (queue
	// and execution latency quantiles, mean batch size). Nil when tracing is
	// off (WithTelemetry(false) or WithTraceSampling(0)) or nothing was
	// sampled. Aggregate reports do not carry it.
	Stages []StageLatency
	// Series holds per-bucket time series for plotting.
	Series []SeriesPoint
}

// SeriesPoint is one metrics bucket of a run.
type SeriesPoint = metrics.Point

// String summarizes the report in one line, prefixed with the pipeline
// label when the report belongs to one tenant of a shared pool. Cost
// columns appear only when the fleet accrued any cost, so zero-cost
// (homogeneous) reports render byte-identically to the pre-hardware-class
// format.
func (r *Report) String() string {
	label := ""
	if r.Pipeline != "" {
		label = fmt.Sprintf("pipeline=%s ", r.Pipeline)
	}
	s := fmt.Sprintf("%saccuracy=%.4f slo-violations=%.4f servers=%.1f (min %.0f, max %.0f) requests=%d (late %d, dropped %d)",
		label, r.Accuracy, r.SLOViolationRatio, r.MeanServers, r.MinServers, r.MaxServers,
		r.Arrivals, r.Late, r.Dropped)
	// The shed column appears only when an admission controller was armed
	// (Admitted > 0 or Shed > 0), so admission-free reports render
	// byte-identically to the historical format.
	if r.Admitted > 0 || r.Shed > 0 {
		s += fmt.Sprintf(" shed=%d", r.Shed)
	}
	if r.ServerCostHours > 0 {
		s += fmt.Sprintf(" cost=$%.2f ($%.6f/query)", r.ServerCostHours, r.CostPerQuery)
	}
	return s
}

func buildConfig(opts []Option) config {
	c := config{
		servers:    20,
		slo:        250 * time.Millisecond,
		netLatency: 2 * time.Millisecond,
		pol:        OpportunisticPolicy,
		solveLimit: 500 * time.Millisecond,
	}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Serve runs the pipeline against the workload and reports the §6.1
// metrics. It is the batch form of the System API — exactly
// New → Feed → Stop → Report — and is deterministic for a fixed seed on the
// default simulated engine.
func Serve(p *Pipeline, tr *Trace, opts ...Option) (*Report, error) {
	sys, err := New(p, opts...)
	if err != nil {
		return nil, err
	}
	if err := sys.Feed(tr); err != nil {
		sys.Stop()
		return nil, err
	}
	if err := sys.Stop(); err != nil {
		return nil, err
	}
	return sys.Report(), nil
}

// resolvedClasses maps the config's hardware onto the internal class set:
// the explicit WithHardware fleet, or the homogeneous default of one class
// holding all WithServers servers. It also returns the pool's total size.
func (c config) resolvedClasses() ([]profiles.Class, int, error) {
	if len(c.hardware) == 0 {
		return profiles.DefaultClasses(c.servers), c.servers, nil
	}
	classes := make([]profiles.Class, len(c.hardware))
	for i, h := range c.hardware {
		classes[i] = profiles.Class{Name: h.Name, Count: h.Count, Speed: h.Speed, CostPerHour: h.CostPerHour}
	}
	if err := profiles.ValidateClasses(classes); err != nil {
		return nil, 0, err
	}
	return classes, profiles.TotalCount(classes), nil
}

// telemetryClasses maps the internal hardware classes onto the telemetry
// collector's worker layout (name and count per class, in class order —
// matching the engines' physical worker numbering).
func telemetryClasses(classes []profiles.Class) []telemetry.WorkerClass {
	out := make([]telemetry.WorkerClass, len(classes))
	for i, cl := range classes {
		out[i] = telemetry.WorkerClass{Name: cl.Name, Count: cl.Count}
	}
	return out
}

// metaAndOpts builds the Model Profiler → Metadata Store stage shared by
// every entry point, plus the allocator options derived from the config.
// Every hardware class is profiled separately (per-class latency curves),
// and the allocator sizes itself from the class counts.
func metaAndOpts(p *Pipeline, c config) (*core.MetadataStore, core.AllocatorOptions, error) {
	classes, total, err := c.resolvedClasses()
	if err != nil {
		return nil, core.AllocatorOptions{}, err
	}
	prof := (&profiles.Profiler{Seed: c.seed}).ProfileGraphClasses(p, profiles.Batches, classes)
	meta := core.NewMetadataStoreHetero(p, classes, prof, c.slo.Seconds(), profiles.Batches)
	return meta, core.AllocatorOptions{
		Servers:         total,
		NetLatencySec:   c.netLatency.Seconds(),
		KeepWarm:        true,
		Headroom:        c.headroomOrDefault(),
		MinPathAccuracy: c.minAcc,
		SolveTimeLimit:  c.solveLimit,
		DisableReuse:    c.plannerCacheOff,
	}, nil
}

// newAllocStack builds the full MetadataStore + MILP Allocator stack used by
// the capacity-planning entry points.
func newAllocStack(p *Pipeline, c config) (*core.MetadataStore, *core.Allocator, error) {
	meta, aopts, err := metaAndOpts(p, c)
	if err != nil {
		return nil, nil, err
	}
	alloc, err := core.NewAllocator(meta, aopts)
	if err != nil {
		return nil, nil, err
	}
	return meta, alloc, nil
}

// PlanFor runs the Resource Manager once for a demand level, returning the
// optimal allocation plan (useful for capacity planning without a full
// serving run).
func PlanFor(p *Pipeline, demandQPS float64, opts ...Option) (*Plan, error) {
	_, alloc, err := newAllocStack(p, buildConfig(opts))
	if err != nil {
		return nil, err
	}
	return alloc.Allocate(demandQPS)
}

// MaxCapacity estimates the largest demand (QPS) the cluster can fully serve
// with accuracy scaling enabled.
func MaxCapacity(p *Pipeline, opts ...Option) (float64, error) {
	_, alloc, err := newAllocStack(p, buildConfig(opts))
	if err != nil {
		return 0, err
	}
	return alloc.MaxCapacity(0, 20000), nil
}
