package loki

// EngineKind selects the serving backend behind a System. Both backends run
// the identical Resource Manager, Load Balancer, routing tables, and drop
// policies; they differ only in how time passes and how workers execute.
type EngineKind int

// The values mirror internal/engine.Kind one-to-one.
const (
	// Simulated is the discrete-event simulator: virtual time, bit-exact
	// determinism for a fixed seed, and runs as fast as events can be
	// processed. The default.
	Simulated EngineKind = iota
	// Wallclock is the real-time engine: goroutine workers whose inference
	// occupies them for the profiled batch latency in (scaled) wall time —
	// the paper's prototype role in the §6.2 simulator-validation
	// experiment.
	Wallclock
)

// String names the engine kind.
func (k EngineKind) String() string {
	switch k {
	case Simulated:
		return "simulated"
	case Wallclock:
		return "wallclock"
	default:
		return "unknown"
	}
}

// WithEngine selects the serving backend (default Simulated).
func WithEngine(k EngineKind) Option { return func(c *config) { c.engine = k } }

// WithTimeScale compresses the Wallclock engine's real time: wall-clock
// duration = profiled duration × scale. 1.0 runs in real time; 0.1 runs a
// ten-minute trace in one minute. Ignored by the Simulated engine.
func WithTimeScale(scale float64) Option { return func(c *config) { c.timeScale = scale } }
