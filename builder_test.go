package loki_test

import (
	"reflect"
	"strings"
	"testing"

	"loki"
)

func trafficMirror(t *testing.T) *loki.Pipeline {
	t.Helper()
	pipe, err := loki.NewPipeline("traffic-analysis").
		Task("object-detection", loki.MustVariantFamily("yolov5")...).
		Child("car-classification", 0.70, loki.MustVariantFamily("efficientnet")...).
		Child("facial-recognition", 0.30, loki.MustVariantFamily("vgg")...).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return pipe
}

func TestBuilderMirrorsTrafficTree(t *testing.T) {
	built := trafficMirror(t)
	canned := loki.TrafficAnalysisPipeline()
	if !reflect.DeepEqual(built, canned) {
		t.Fatalf("builder graph differs from canned tree:\n%+v\nvs\n%+v", built, canned)
	}
}

// The acceptance check: a builder-assembled mirror of the canned traffic
// pipeline serves a trace with identical summary metrics.
func TestBuilderPipelineServesIdentically(t *testing.T) {
	tr := loki.AzureTrace(1, 16, 5, 500)
	fromBuilder, err := loki.Serve(trafficMirror(t), tr, loki.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	fromCanned, err := loki.Serve(loki.TrafficAnalysisPipeline(), tr, loki.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromBuilder, fromCanned) {
		t.Fatalf("reports differ:\n%v\nvs\n%v", fromBuilder, fromCanned)
	}
}

func TestBuilderMirrorsSocialMediaWithOutput(t *testing.T) {
	built, err := loki.NewPipeline("social-media").
		Task("image-classification", loki.MustVariantFamily("resnet")...).
		Child("image-captioning", 0.90, loki.MustVariantFamily("clip-vit")...).
		Output("image-classification").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(built, loki.SocialMediaPipeline()) {
		t.Fatal("builder graph differs from canned social-media pipeline")
	}
}

func TestBuilderValidationErrors(t *testing.T) {
	fam := loki.MustVariantFamily("yolov5")

	cases := []struct {
		name string
		b    *loki.PipelineBuilder
		want string
	}{
		{
			name: "unknown parent",
			b: loki.NewPipeline("p").
				Task("a", fam...).
				ChildOf("nope", "b", 0.5, fam...),
			want: "unknown parent",
		},
		{
			name: "empty variant family",
			b: loki.NewPipeline("p").
				Task("a", fam...).
				Child("b", 0.5),
			want: "empty variant family",
		},
		{
			name: "duplicate task",
			b: loki.NewPipeline("p").
				Task("a", fam...).
				Child("a", 0.5, fam...),
			want: "duplicate task",
		},
		{
			name: "child before root",
			b:    loki.NewPipeline("p").Child("b", 0.5, fam...),
			want: "declare the root",
		},
		{
			name: "second root",
			b: loki.NewPipeline("p").
				Task("a", fam...).
				Task("b", fam...),
			want: "already has a root",
		},
		{
			name: "cycle via link to root",
			b: loki.NewPipeline("p").
				Task("a", fam...).
				Child("b", 1.0, fam...).
				Link("b", "a", 0.5),
			want: "cycle",
		},
		{
			name: "two parents via link",
			b: loki.NewPipeline("p").
				Task("a", fam...).
				Child("b", 1.0, fam...).
				Child("c", 1.0, fam...).
				Link("c", "b", 0.5),
			want: "not a rooted tree",
		},
		{
			name: "bad branch ratio",
			b: loki.NewPipeline("p").
				Task("a", fam...).
				Child("b", 1.7, fam...),
			want: "branch ratio",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.b.Build()
			if err == nil {
				t.Fatalf("Build succeeded (%+v), want error containing %q", g, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestBuilderAtDescends(t *testing.T) {
	fam := loki.MustVariantFamily("yolov5")
	g, err := loki.NewPipeline("deep").
		Task("a", fam...).
		Child("b", 0.8, fam...).
		At("b").
		Child("c", 0.5, fam...).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Tasks) != 3 || len(g.Tasks[1].Children) != 1 || g.Tasks[1].Children[0].Task != 2 {
		t.Fatalf("expected a→b→c chain, got %+v", g.Tasks)
	}
}

func TestVariantFamilyRegistry(t *testing.T) {
	names := loki.VariantFamilies()
	for _, want := range []string{"yolov5", "efficientnet", "vgg", "resnet", "clip-vit"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("built-in family %q missing from %v", want, names)
		}
	}

	if _, err := loki.VariantFamily("no-such-family"); err == nil {
		t.Fatal("unknown family lookup must fail")
	}
	if err := loki.RegisterVariantFamily("", nil); err == nil {
		t.Fatal("nameless registration must fail")
	}
	if err := loki.RegisterVariantFamily("custom-empty", nil); err == nil {
		t.Fatal("empty registration must fail")
	}
	if err := loki.RegisterVariantFamily("yolov5", loki.MustVariantFamily("vgg")); err == nil {
		t.Fatal("re-registering a built-in must fail")
	}
	bad := []loki.Variant{{Name: "bad", Accuracy: 1.5, Alpha: 0.001, Beta: 0.001, MultFactor: 1}}
	if err := loki.RegisterVariantFamily("custom-bad", bad); err == nil {
		t.Fatal("out-of-range accuracy must fail")
	}

	custom := []loki.Variant{
		{Name: "tiny", Accuracy: 0.8, RawAccuracy: 0.6, Alpha: 0.001, Beta: 0.0005, MultFactor: 1},
		{Name: "big", Accuracy: 1.0, RawAccuracy: 0.75, Alpha: 0.003, Beta: 0.0015, MultFactor: 1},
	}
	if err := loki.RegisterVariantFamily("custom-ok", custom); err != nil {
		t.Fatal(err)
	}
	got := loki.MustVariantFamily("custom-ok")
	if len(got) != 2 || got[0].Name != "tiny" {
		t.Fatalf("registry returned %+v", got)
	}
	// The registry hands out copies: mutating the result must not corrupt it.
	got[0].Accuracy = 0.1
	if loki.MustVariantFamily("custom-ok")[0].Accuracy != 0.8 {
		t.Fatal("registry returned a shared slice")
	}

	// A registered family serves through the builder end to end.
	pipe, err := loki.NewPipeline("custom").
		Task("only", loki.MustVariantFamily("custom-ok")...).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := loki.Serve(pipe, loki.RampTrace(50, 150, 8, 2), loki.WithServers(8), loki.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Arrivals == 0 {
		t.Fatal("custom pipeline served no traffic")
	}
}
