package loki_test

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"loki"
)

// Golden numbers recorded from the single-pipeline serving path before the
// multi-tenant refactor. New(p, ...) is now a thin wrapper over a
// one-tenant MultiSystem, and these runs must still reproduce the old
// reports bit for bit: same plans, same routing, same RNG streams.
func TestSinglePipelineParityWithSeedBehavior(t *testing.T) {
	type golden struct {
		name                       string
		pipe                       *loki.Pipeline
		tr                         *loki.Trace
		opts                       []loki.Option
		accuracy, viol             float64
		meanSrv, minSrv, maxSrv    float64
		meanLat                    time.Duration
		arr, comp, late, drop, rer int64
	}
	cases := []golden{
		// The configs stay in regimes whose MILPs terminate by optimality
		// proof or gap test, not by the wall-clock solve limit — a solve
		// that runs out of clock returns whatever incumbent it has, which
		// varies with machine load and would make bit-exact goldens flaky.
		// The roomy WithSolveTimeLimit keeps that true even on a loaded
		// machine (the chain ramp's saturated tail can outlive the default
		// 500 ms budget under CPU contention); on an idle machine the limit
		// never binds, so the recorded numbers are unchanged.
		{
			name: "traffic-azure",
			pipe: loki.TrafficAnalysisPipeline(),
			tr:   loki.AzureTrace(1, 24, 5, 450),
			opts: []loki.Option{loki.WithServers(20), loki.WithSeed(3),
				loki.WithSolveTimeLimit(10 * time.Second)},
			accuracy: 1, viol: 0.12064040889957907,
			meanSrv: 9, minSrv: 3, maxSrv: 17,
			meanLat: 135222678 * time.Nanosecond,
			arr:     26608, comp: 23398, late: 2839, drop: 371, rer: 4,
		},
		{
			name: "chain-ramp-pertask",
			pipe: loki.TrafficChainPipeline(),
			tr:   loki.RampTrace(100, 900, 16, 5),
			opts: []loki.Option{loki.WithServers(10), loki.WithSeed(7), loki.WithPolicy(loki.PerTaskPolicy),
				loki.WithSolveTimeLimit(10 * time.Second)},
			accuracy: 0.926743384192844, viol: 0.09052684269803529,
			meanSrv: 9.080459770114942, minSrv: 7.241379310344827, maxSrv: 10,
			meanLat: 87080850 * time.Nanosecond,
			arr:     39955, comp: 36338, late: 449, drop: 3168, rer: 0,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r, err := loki.Serve(c.pipe, c.tr, c.opts...)
			if err != nil {
				t.Fatal(err)
			}
			check := func(what string, got, want float64) {
				t.Helper()
				if got != want {
					t.Errorf("%s = %v, want %v (seed behavior changed)", what, got, want)
				}
			}
			check("Accuracy", r.Accuracy, c.accuracy)
			check("SLOViolationRatio", r.SLOViolationRatio, c.viol)
			check("MeanServers", r.MeanServers, c.meanSrv)
			check("MinServers", r.MinServers, c.minSrv)
			check("MaxServers", r.MaxServers, c.maxSrv)
			check("MeanLatency", float64(r.MeanLatency), float64(c.meanLat))
			check("Arrivals", float64(r.Arrivals), float64(c.arr))
			check("Completed", float64(r.Completed), float64(c.comp))
			check("Late", float64(r.Late), float64(c.late))
			check("Dropped", float64(r.Dropped), float64(c.drop))
			check("Rerouted", float64(r.Rerouted), float64(c.rer))
		})
	}
}

// Two pipelines served concurrently on one shared pool: each gets its own
// routing table and a labeled per-pipeline report, and the grants always
// fit the pool.
func TestMultiTenantSharedPool(t *testing.T) {
	ms, err := loki.NewMulti(loki.WithServers(24), loki.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.AddPipeline("traffic", loki.TrafficAnalysisPipeline(), loki.WithShare(0.4)); err != nil {
		t.Fatal(err)
	}
	if err := ms.AddPipeline("social", loki.SocialMediaPipeline(),
		loki.WithShare(0.3), loki.WithPipelineSLO(300*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	err = ms.FeedAll(map[string]*loki.Trace{
		"traffic": loki.AzureTrace(1, 24, 5, 500),
		"social":  loki.TwitterTrace(2, 24, 5, 300),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Stop(); err != nil {
		t.Fatal(err)
	}

	grants := ms.Grants()
	if g := grants["traffic"] + grants["social"]; g > 24 {
		t.Fatalf("grants %v exceed the pool", grants)
	}
	for _, name := range []string{"traffic", "social"} {
		routes, err := ms.Routes(name)
		if err != nil || routes == nil {
			t.Fatalf("pipeline %q has no routing tables (err %v)", name, err)
		}
		r, err := ms.Report(name)
		if err != nil {
			t.Fatal(err)
		}
		if r.Pipeline != name {
			t.Fatalf("report labeled %q, want %q", r.Pipeline, name)
		}
		if !strings.Contains(r.String(), "pipeline="+name) {
			t.Fatalf("report string lacks the pipeline label: %s", r)
		}
		if r.Arrivals == 0 || r.Completed == 0 {
			t.Fatalf("pipeline %q served nothing: %s", name, r)
		}
		snap, err := ms.Snapshot(name)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Completed+snap.Dropped != snap.Arrivals || snap.InFlight != 0 {
			t.Fatalf("pipeline %q conservation after drain: %+v", name, snap)
		}
	}
	// The routing tables are per pipeline, not shared.
	rt, _ := ms.Routes("traffic")
	rs, _ := ms.Routes("social")
	if rt == rs {
		t.Fatal("pipelines share one routing table")
	}
	agg := ms.AggregateReport()
	rt1, _ := ms.Report("traffic")
	rt2, _ := ms.Report("social")
	if agg.Pipeline != "all" || agg.Arrivals != rt1.Arrivals+rt2.Arrivals {
		t.Fatalf("aggregate mismatch: %s vs %s + %s", agg, rt1, rt2)
	}
}

// Combined demand far beyond the pool: the joint allocator degrades both
// pipelines gracefully inside their partitions (saturation → shed load)
// instead of erroring or letting one tenant starve the other below its
// guaranteed share.
func TestMultiTenantContentionDegradesGracefully(t *testing.T) {
	ms, err := loki.NewMulti(loki.WithServers(10), loki.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.AddPipeline("a", loki.TrafficChainPipeline(), loki.WithShare(0.5)); err != nil {
		t.Fatal(err)
	}
	if err := ms.AddPipeline("b", loki.TrafficChainPipeline(), loki.WithShare(0.5)); err != nil {
		t.Fatal(err)
	}
	// Each trace alone would need well over 10 servers.
	err = ms.FeedAll(map[string]*loki.Trace{
		"a": loki.RampTrace(2000, 2500, 10, 5),
		"b": loki.RampTrace(2000, 2500, 10, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Stop(); err != nil {
		t.Fatal(err)
	}
	grants := ms.Grants()
	if grants["a"]+grants["b"] > 10 {
		t.Fatalf("contended grants %v exceed the pool", grants)
	}
	for _, name := range []string{"a", "b"} {
		if grants[name] < 2 {
			t.Fatalf("pipeline %q squeezed below its keep-warm floor: %v", name, grants)
		}
		r, _ := ms.Report(name)
		if r.Completed == 0 {
			t.Fatalf("pipeline %q starved outright under contention: %s", name, r)
		}
		if r.SLOViolationRatio == 0 {
			t.Fatalf("pipeline %q shows no degradation under 2× oversubscription: %s", name, r)
		}
	}
}

// An induced spike in one pipeline triggers a joint re-allocation that
// reassigns idle servers without squeezing the quiet pipeline below its
// share, and the quiet pipeline keeps meeting its SLO.
func TestMultiTenantSpikeStealsIdleServers(t *testing.T) {
	ms, err := loki.NewMulti(loki.WithServers(20), loki.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.AddPipeline("spiky", loki.TrafficChainPipeline(), loki.WithShare(0.5)); err != nil {
		t.Fatal(err)
	}
	if err := ms.AddPipeline("quiet", loki.TrafficChainPipeline(), loki.WithShare(0.5)); err != nil {
		t.Fatal(err)
	}
	spike := loki.RampTrace(200, 200, 30, 5).WithSpike(0.4, 0.6, 8) // 200 → 1600 qps mid-run
	flat := loki.RampTrace(150, 150, 30, 5)
	if err := ms.FeedAll(map[string]*loki.Trace{"spiky": spike, "quiet": flat}); err != nil {
		t.Fatal(err)
	}
	grants := ms.Grants()
	if err := ms.Stop(); err != nil {
		t.Fatal(err)
	}
	if grants["spiky"]+grants["quiet"] > 20 {
		t.Fatalf("grants %v exceed the pool", grants)
	}
	// The spike outgrows the spiky pipeline's 10-server guarantee; the extra
	// servers can only have come from the quiet tenant's idle share.
	if grants["spiky"] <= 10 {
		t.Fatalf("spike did not steal idle servers: grants %v", grants)
	}
	if grants["quiet"] < 2 {
		t.Fatalf("quiet pipeline lost its keep-warm floor: %v", grants)
	}
	quiet, _ := ms.Report("quiet")
	if quiet.SLOViolationRatio > 0.10 {
		t.Fatalf("quiet pipeline degraded during the neighbour's spike: %s", quiet)
	}
	spiky, _ := ms.Report("spiky")
	if spiky.Completed == 0 {
		t.Fatalf("spiky pipeline served nothing: %s", spiky)
	}
}

// Registration and lookup error paths.
func TestMultiTenantRegistrationErrors(t *testing.T) {
	ms, err := loki.NewMulti(loki.WithServers(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.AddPipeline("", loki.TrafficChainPipeline()); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := ms.AddPipeline("all", loki.TrafficChainPipeline()); err == nil {
		t.Fatal("reserved aggregate name accepted")
	}
	if err := ms.AddPipeline("a", nil); err == nil {
		t.Fatal("nil pipeline accepted")
	}
	if err := ms.AddPipeline("a", loki.TrafficChainPipeline()); err != nil {
		t.Fatal(err)
	}
	if err := ms.AddPipeline("a", loki.SocialMediaPipeline()); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := ms.AddPipeline("b", loki.TrafficChainPipeline(), loki.WithShare(1.5)); err == nil {
		t.Fatal("share > 1 accepted")
	}
	if _, err := ms.Report("nope"); !errors.Is(err, loki.ErrUnknownPipeline) {
		t.Fatalf("Report(nope) = %v, want ErrUnknownPipeline", err)
	}
	if err := ms.Feed("nope", loki.RampTrace(10, 10, 2, 1)); !errors.Is(err, loki.ErrUnknownPipeline) {
		t.Fatalf("Feed(nope) = %v, want ErrUnknownPipeline", err)
	}
	if err := ms.Feed("a", loki.RampTrace(10, 20, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := ms.AddPipeline("late", loki.TrafficChainPipeline()); err == nil {
		t.Fatal("registration stayed open after traffic was injected")
	}
	if err := ms.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := ms.Feed("a", loki.RampTrace(10, 10, 2, 1)); !errors.Is(err, loki.ErrStopped) {
		t.Fatalf("Feed after Stop = %v, want ErrStopped", err)
	}
}

// The Proteus baseline cannot solve under a server cap, so a shared pool
// must reject it at build time rather than silently oversubscribing.
func TestMultiTenantRejectsUncappablePlanner(t *testing.T) {
	ms, err := loki.NewMulti(loki.WithServers(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.AddPipeline("p", loki.TrafficChainPipeline(),
		loki.WithPipelineBaseline(loki.BaselineProteus)); err != nil {
		t.Fatal(err)
	}
	if err := ms.AddPipeline("q", loki.TrafficChainPipeline()); err != nil {
		t.Fatal(err)
	}
	err = ms.FeedAll(map[string]*loki.Trace{"p": loki.RampTrace(10, 10, 2, 1)})
	if err == nil || !strings.Contains(err.Error(), "CappedPlanner") {
		t.Fatalf("uncappable planner accepted on a shared pool: %v", err)
	}
}

// An InferLine-managed pipeline can share the pool (it supports capped
// solves), and mixed planners serve side by side.
func TestMultiTenantMixedPlanners(t *testing.T) {
	ms, err := loki.NewMulti(loki.WithServers(20), loki.WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.AddPipeline("loki", loki.TrafficChainPipeline()); err != nil {
		t.Fatal(err)
	}
	if err := ms.AddPipeline("inferline", loki.TrafficChainPipeline(),
		loki.WithPipelineBaseline(loki.BaselineInferLine)); err != nil {
		t.Fatal(err)
	}
	err = ms.FeedAll(map[string]*loki.Trace{
		"loki":      loki.RampTrace(100, 600, 12, 5),
		"inferline": loki.RampTrace(100, 600, 12, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Stop(); err != nil {
		t.Fatal(err)
	}
	for name, r := range ms.Reports() {
		if r.Completed == 0 {
			t.Fatalf("pipeline %q served nothing: %s", name, r)
		}
	}
}

// A spike overlay must not mutate the original trace and must scale only
// the window.
func TestTraceWithSpike(t *testing.T) {
	base := loki.RampTrace(100, 100, 10, 1)
	spiked := base.WithSpike(0.5, 0.2, 3)
	for i, q := range base.QPS {
		if q != 100 {
			t.Fatalf("base trace mutated at %d: %v", i, q)
		}
	}
	want := []float64{100, 100, 100, 100, 100, 300, 300, 100, 100, 100}
	for i, q := range spiked.QPS {
		if math.Abs(q-want[i]) > 1e-9 {
			t.Fatalf("spiked[%d] = %v, want %v", i, q, want[i])
		}
	}
}

// Multi-tenant serving on the wall-clock engine: both pipelines' traces play
// concurrently in real (scaled) time; only one housekeeping loop steps the
// joint controller.
func TestMultiTenantWallclock(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time run (~3s wall)")
	}
	ms, err := loki.NewMulti(loki.WithServers(16), loki.WithSeed(6),
		loki.WithEngine(loki.Wallclock), loki.WithTimeScale(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.AddPipeline("a", loki.TrafficChainPipeline()); err != nil {
		t.Fatal(err)
	}
	if err := ms.AddPipeline("b", loki.TrafficChainPipeline()); err != nil {
		t.Fatal(err)
	}
	err = ms.FeedAll(map[string]*loki.Trace{
		"a": loki.RampTrace(100, 300, 6, 2),
		"b": loki.RampTrace(100, 300, 6, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		snap, err := ms.Snapshot(name)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Arrivals == 0 || snap.Completed == 0 {
			t.Fatalf("pipeline %q served nothing on the wallclock engine: %+v", name, snap)
		}
		if snap.Completed+snap.Dropped != snap.Arrivals {
			t.Fatalf("pipeline %q conservation: %+v", name, snap)
		}
	}
	grants := ms.Grants()
	if grants["a"]+grants["b"] > 16 {
		t.Fatalf("grants %v exceed the pool", grants)
	}
}
