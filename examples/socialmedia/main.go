// Social media: serve the classification→captioning pipeline against a
// bursty Twitter-like workload and show how Loki trades accuracy for
// throughput as bursts arrive (the paper's Figure 6 scenario), including
// the effect of the early-dropping policy choice.
package main

import (
	"fmt"
	"log"
	"time"

	"loki"
)

func main() {
	pipe := loki.SocialMediaPipeline()
	workload := loki.TwitterTrace(7, 96, 10, 1600)

	for _, pol := range []loki.Policy{loki.NoDropPolicy, loki.OpportunisticPolicy} {
		r, err := loki.Serve(pipe, workload,
			loki.WithServers(20),
			loki.WithSLO(250*time.Millisecond),
			loki.WithSeed(7),
			loki.WithPolicy(pol),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %s (rerouted %d)\n", pol.Name(), r, r.Rerouted)
	}

	// Capacity planning: what demand can this cluster absorb at all?
	maxCap, err := loki.MaxCapacity(pipe, loki.WithServers(20), loki.WithSLO(250*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmax fully-served demand with accuracy scaling: %.0f QPS\n", maxCap)

	// And what does the allocation look like at half of that?
	plan, err := loki.PlanFor(pipe, maxCap/2, loki.WithServers(20))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan at %.0f QPS:\n%s", maxCap/2, plan)
}
