// Quickstart for the online API: assemble the traffic-analysis pipeline
// with the PipelineBuilder and the variant registry, stand up a long-lived
// System, feed it a diurnal workload, observe it, and drain it. (The other
// examples use the one-call batch form, loki.Serve, which wraps this exact
// lifecycle.)
package main

import (
	"fmt"
	"log"
	"time"

	"loki"
)

func main() {
	// The same tree as loki.TrafficAnalysisPipeline(), built by hand:
	// YOLOv5 object detection feeding EfficientNet car classification (70%
	// of detected objects) and VGG facial recognition (30%).
	pipe, err := loki.NewPipeline("traffic-analysis").
		Task("object-detection", loki.MustVariantFamily("yolov5")...).
		Child("car-classification", 0.70, loki.MustVariantFamily("efficientnet")...).
		Child("facial-recognition", 0.30, loki.MustVariantFamily("vgg")...).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	sys, err := loki.New(pipe,
		loki.WithServers(20),
		loki.WithSLO(250*time.Millisecond),
		loki.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}

	// One compressed "day" of diurnal demand, peak 1100 QPS.
	workload := loki.AzureTrace(1, 96, 10, 1100)
	if err := sys.Feed(workload); err != nil {
		log.Fatal(err)
	}

	// The system is live: inspect the standing allocation and counters.
	snap := sys.Snapshot()
	fmt.Printf("after the trace: %d arrivals, %d in flight, %d active servers, %d plan solves\n",
		snap.Arrivals, snap.InFlight, snap.ActiveServers, snap.Allocates)
	if plan := sys.Plan(); plan != nil {
		fmt.Printf("standing plan  : %d servers, expected accuracy %.4f\n",
			plan.ServersUsed, plan.ExpectedAccuracy)
	}

	// Drain in-flight requests and report the §6.1 metrics.
	if err := sys.Stop(); err != nil {
		log.Fatal(err)
	}
	report := sys.Report()

	fmt.Println("pipeline :", pipe.Name)
	fmt.Println("result   :", report)
	fmt.Printf("mean end-to-end latency: %v\n\n", report.MeanLatency)

	fmt.Println("time(s)  demand(qps)  accuracy  servers  slo-violations")
	for _, p := range report.Series {
		fmt.Printf("%7.0f  %11.1f  %8.4f  %7.1f  %14.4f\n",
			p.TimeSec, p.DemandQPS, p.Accuracy, p.Servers, p.ViolationRatio)
	}
}
