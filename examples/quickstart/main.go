// Quickstart: serve the traffic-analysis pipeline on a 20-server cluster
// against a diurnal workload and print the headline metrics.
package main

import (
	"fmt"
	"log"
	"time"

	"loki"
)

func main() {
	pipe := loki.TrafficAnalysisPipeline()
	workload := loki.AzureTrace(1, 96, 10, 1100) // one compressed "day", peak 1100 QPS

	report, err := loki.Serve(pipe, workload,
		loki.WithServers(20),
		loki.WithSLO(250*time.Millisecond),
		loki.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("pipeline :", pipe.Name)
	fmt.Println("result   :", report)
	fmt.Printf("mean end-to-end latency: %v\n\n", report.MeanLatency)

	fmt.Println("time(s)  demand(qps)  accuracy  servers  slo-violations")
	for _, p := range report.Series {
		fmt.Printf("%7.0f  %11.1f  %8.4f  %7.1f  %14.4f\n",
			p.TimeSec, p.DemandQPS, p.Accuracy, p.Servers, p.ViolationRatio)
	}
}
