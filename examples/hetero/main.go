// The heterogeneous-hardware quickstart: one pipeline served on a mixed
// fleet of accelerator classes. WithHardware declares the fleet — counts,
// relative speeds, dollar rates — and the Resource Manager plans replicas
// per (variant, batch, class): accurate heavy variants land on the fast
// a100s, small fast variants pack onto the cheap t4s, and the report rolls
// per-class occupancy up into cost accounting. For comparison the same
// trace is then served on a speed- and budget-equivalent uniform fleet,
// which typically costs more per query at no better SLO attainment.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"loki"
)

func serve(name string, classes ...loki.HardwareClass) *loki.Report {
	sys, err := loki.New(loki.TrafficAnalysisPipeline(),
		loki.WithSLO(250*time.Millisecond),
		loki.WithSeed(11),
		loki.WithHardware(classes...))
	if err != nil {
		log.Fatal(err)
	}
	// A diurnal day at up to 700 QPS.
	if err := sys.Feed(loki.AzureTrace(11, 48, 10, 700)); err != nil {
		log.Fatal(err)
	}
	if err := sys.Stop(); err != nil {
		log.Fatal(err)
	}

	if plan := sys.Plan(); plan != nil {
		usage := plan.ClassUsage()
		names := make([]string, 0, len(usage))
		for n := range usage {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("%s standing plan: %d servers, $%.2f/h —", name, plan.ServersUsed, plan.CostPerHour)
		for _, n := range names {
			fmt.Printf(" %s:%d", n, usage[n])
		}
		fmt.Println()
	}
	rep := sys.Report()
	fmt.Printf("%s report: %s\n\n", name, rep)
	return rep
}

func main() {
	// The mixed fleet: 4 fast expensive a100s, 8 mid v100s, 12 slow cheap
	// t4s. Aggregate speed 4×2.0 + 8×1.0 + 12×0.5 = 22 at $29.0/h full-on.
	het := serve("hetero",
		loki.HardwareClass{Name: "a100", Count: 4, Speed: 2.0, CostPerHour: 3.2},
		loki.HardwareClass{Name: "v100", Count: 8, Speed: 1.0, CostPerHour: 1.2},
		loki.HardwareClass{Name: "t4", Count: 12, Speed: 0.5, CostPerHour: 0.55})

	// The uniform twin: same server count, same aggregate speed and budget,
	// one mid-range SKU — the purchase an operator would otherwise make.
	hom := serve("uniform",
		loki.HardwareClass{Name: "uniform", Count: 24, Speed: 22.0 / 24, CostPerHour: 29.0 / 24})

	if hom.CostPerQuery > 0 {
		fmt.Printf("hetero cost per query: $%.7f vs uniform $%.7f (%.1f%% cheaper)\n",
			het.CostPerQuery, hom.CostPerQuery, 100*(1-het.CostPerQuery/hom.CostPerQuery))
	}
}
