// The multi-tenant quickstart: two pipelines share one 24-server pool. The
// traffic-analysis pipeline carries a flash-crowd spike mid-run; the joint
// Resource Manager re-partitions the pool on each adaptation round so the
// spike steals the social pipeline's idle servers, while the WithShare
// guarantees bound how far either tenant can be squeezed under contention.
package main

import (
	"fmt"
	"log"
	"time"

	"loki"
)

func main() {
	sys, err := loki.NewMulti(
		loki.WithServers(24),
		loki.WithSLO(250*time.Millisecond),
		loki.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Each pipeline gets its own SLO, drop policy, and contention guarantee;
	// unset knobs inherit the system-wide options above.
	if err := sys.AddPipeline("traffic", loki.TrafficAnalysisPipeline(),
		loki.WithShare(0.5)); err != nil {
		log.Fatal(err)
	}
	if err := sys.AddPipeline("social", loki.SocialMediaPipeline(),
		loki.WithShare(0.3),
		loki.WithPipelineSLO(300*time.Millisecond)); err != nil {
		log.Fatal(err)
	}

	// Serve both traces concurrently on the shared pool. WithSpike triples
	// the traffic pipeline's demand over the middle fifth of the run.
	traffic := loki.AzureTrace(1, 48, 5, 400).WithSpike(0.4, 0.2, 3)
	social := loki.TwitterTrace(2, 48, 5, 250)
	if err := sys.FeedAll(map[string]*loki.Trace{
		"traffic": traffic,
		"social":  social,
	}); err != nil {
		log.Fatal(err)
	}

	grants := sys.Grants()
	if err := sys.Stop(); err != nil {
		log.Fatal(err)
	}

	for _, name := range sys.Pipelines() {
		report, err := sys.Report(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(report)
		fmt.Printf("  final grant: %d of 24 servers\n", grants[name])
	}
	fmt.Println(sys.AggregateReport())
}
