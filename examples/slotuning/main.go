// SLO tuning: sweep the end-to-end latency SLO for the traffic-analysis
// pipeline and report how accuracy and violation ratio respond — the
// paper's Figure 8 experiment, exposed through the public API. Useful for
// picking the loosest SLO an application can tolerate.
package main

import (
	"fmt"
	"time"

	"loki"
)

func main() {
	pipe := loki.TrafficAnalysisPipeline()
	workload := loki.AzureTrace(3, 72, 10, 1100)

	fmt.Printf("%8s %12s %12s %12s\n", "slo(ms)", "accuracy", "slo-viol", "servers")
	for _, ms := range []int{150, 200, 250, 300, 350, 400} {
		r, err := loki.Serve(pipe, workload,
			loki.WithServers(20),
			loki.WithSLO(time.Duration(ms)*time.Millisecond),
			loki.WithSeed(3),
		)
		if err != nil {
			// Very tight SLOs are infeasible: even the fastest variants at
			// batch size 1 cannot finish within the compute budget.
			fmt.Printf("%8d %12s %12s %12s  (%v)\n", ms, "-", "-", "-", errShort(err))
			continue
		}
		fmt.Printf("%8d %12.4f %12.4f %12.1f\n", ms, r.Accuracy, r.SLOViolationRatio, r.MeanServers)
	}
}

func errShort(err error) string {
	s := err.Error()
	if len(s) > 60 {
		s = s[:60] + "..."
	}
	return s
}
