// Traffic analysis: compare Loki against the InferLine-like (hardware
// scaling only) and Proteus-like (pipeline-agnostic accuracy scaling)
// baselines on the video-analytics pipeline of the paper's Figure 5.
package main

import (
	"fmt"
	"log"
	"time"

	"loki"
)

func main() {
	pipe := loki.TrafficAnalysisPipeline()
	workload := loki.AzureTrace(11, 96, 10, 1100)

	type arm struct {
		name     string
		baseline loki.Baseline
	}
	arms := []arm{
		{"loki", loki.BaselineNone},
		{"inferline (hw only)", loki.BaselineInferLine},
		{"proteus (per-task)", loki.BaselineProteus},
	}

	fmt.Printf("%-22s %10s %12s %10s %10s\n", "system", "accuracy", "slo-viol", "servers", "min-srv")
	var lokiViol, proteusViol float64
	for _, a := range arms {
		r, err := loki.Serve(pipe, workload,
			loki.WithServers(20),
			loki.WithSLO(250*time.Millisecond),
			loki.WithSeed(11),
			loki.WithBaseline(a.baseline),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10.4f %12.4f %10.1f %10.0f\n",
			a.name, r.Accuracy, r.SLOViolationRatio, r.MeanServers, r.MinServers)
		switch a.baseline {
		case loki.BaselineNone:
			lokiViol = r.SLOViolationRatio
		case loki.BaselineProteus:
			proteusViol = r.SLOViolationRatio
		}
	}
	if lokiViol > 0 {
		fmt.Printf("\nLoki reduces SLO violations %.1f× vs pipeline-agnostic accuracy scaling (paper: ≥10×)\n",
			proteusViol/lokiViol)
	}
}
