package loki_test

import (
	"testing"
	"time"

	"loki"
)

func TestServeQuickstart(t *testing.T) {
	report, err := loki.Serve(
		loki.TrafficAnalysisPipeline(),
		loki.AzureTrace(1, 24, 5, 600),
		loki.WithServers(20),
		loki.WithSLO(250*time.Millisecond),
		loki.WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if report.Arrivals == 0 {
		t.Fatal("no traffic served")
	}
	if report.Accuracy <= 0.5 || report.Accuracy > 1.0 {
		t.Fatalf("accuracy = %g", report.Accuracy)
	}
	if report.SLOViolationRatio > 0.25 {
		t.Fatalf("violations = %g", report.SLOViolationRatio)
	}
	if report.MeanServers <= 0 || report.MaxServers > 20 {
		t.Fatalf("servers = %g..%g", report.MinServers, report.MaxServers)
	}
	if len(report.Series) == 0 {
		t.Fatal("no series")
	}
	if report.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestServeBaselines(t *testing.T) {
	tr := loki.AzureTrace(2, 16, 5, 500)
	pipe := loki.SocialMediaPipeline()
	for _, b := range []loki.Baseline{loki.BaselineInferLine, loki.BaselineProteus} {
		r, err := loki.Serve(pipe, tr, loki.WithBaseline(b), loki.WithSeed(2))
		if err != nil {
			t.Fatalf("baseline %d: %v", b, err)
		}
		if r.Arrivals == 0 {
			t.Fatalf("baseline %d served nothing", b)
		}
	}
}

func TestServeWithEachPolicy(t *testing.T) {
	tr := loki.AzureTrace(3, 12, 5, 400)
	pipe := loki.TrafficChainPipeline()
	for _, p := range []loki.Policy{loki.NoDropPolicy, loki.LastTaskPolicy, loki.PerTaskPolicy, loki.OpportunisticPolicy} {
		if _, err := loki.Serve(pipe, tr, loki.WithPolicy(p), loki.WithSeed(3)); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
	}
}

func TestPlanForScalesWithDemand(t *testing.T) {
	pipe := loki.TrafficChainPipeline()
	low, err := loki.PlanFor(pipe, 100, loki.WithServers(20))
	if err != nil {
		t.Fatal(err)
	}
	high, err := loki.PlanFor(pipe, 450, loki.WithServers(20))
	if err != nil {
		t.Fatal(err)
	}
	if low.ServersUsed >= high.ServersUsed {
		t.Fatalf("servers %d → %d; more demand must use more servers", low.ServersUsed, high.ServersUsed)
	}
	if low.ExpectedAccuracy < 1-1e-9 {
		t.Fatalf("low demand should keep max accuracy, got %g", low.ExpectedAccuracy)
	}
}

func TestMaxCapacityExceedsHardwareLimit(t *testing.T) {
	pipe := loki.TrafficChainPipeline()
	maxCap, err := loki.MaxCapacity(pipe, loki.WithServers(20))
	if err != nil {
		t.Fatal(err)
	}
	// Hardware-only capacity is ≈560 QPS; accuracy scaling extends it well
	// beyond (Figure 1's whole point).
	if maxCap < 1000 {
		t.Fatalf("max capacity = %.0f, want >1000 QPS with accuracy scaling", maxCap)
	}
}

func TestMinAccuracyFloorLimitsScaling(t *testing.T) {
	pipe := loki.TrafficChainPipeline()
	// At deep overload without a floor, accuracy scaling reaches ≈0.48;
	// with a 0.9 floor every used path must stay above it.
	plan, err := loki.PlanFor(pipe, 1800, loki.WithServers(20), loki.WithMinAccuracy(0.9))
	if err != nil {
		t.Fatal(err)
	}
	for _, pf := range plan.PathFlows {
		if pf.Accuracy < 0.9 {
			t.Fatalf("path accuracy %.3f below the 0.9 floor", pf.Accuracy)
		}
	}
	// The floor costs capacity: the floored cluster cannot fully serve what
	// the unfloored one can.
	unfloored, err := loki.MaxCapacity(pipe, loki.WithServers(20))
	if err != nil {
		t.Fatal(err)
	}
	floored, err := loki.MaxCapacity(pipe, loki.WithServers(20), loki.WithMinAccuracy(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if floored >= unfloored {
		t.Fatalf("floored capacity %.0f ≥ unfloored %.0f", floored, unfloored)
	}
}

func TestInfeasibleSLOSurfacesError(t *testing.T) {
	if _, err := loki.Serve(
		loki.TrafficAnalysisPipeline(),
		loki.AzureTrace(1, 6, 5, 100),
		loki.WithSLO(10*time.Millisecond),
	); err == nil {
		t.Fatal("a 10 ms end-to-end SLO must be rejected")
	}
}
