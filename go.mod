module loki

go 1.24
