package loki_test

import (
	"reflect"
	"testing"
	"time"

	"loki"
)

// The default forecaster (Last, identity) must not perturb serving at all:
// a run with WithForecaster(ForecastLast) — and one with an explicit zero
// headroom and envelope on, the documented defaults — reproduces the
// no-forecaster run bit for bit, field by field. This is the guarantee that
// lets the forecasting path live permanently wired into the controllers
// rather than behind a branch: the golden single-tenant parity suite keeps
// pinning both.
func TestForecasterLastParity(t *testing.T) {
	cases := []struct {
		name string
		pipe *loki.Pipeline
		tr   *loki.Trace
		opts []loki.Option
	}{
		{
			name: "traffic-azure",
			pipe: loki.TrafficAnalysisPipeline(),
			tr:   loki.AzureTrace(1, 24, 5, 450),
			opts: []loki.Option{loki.WithServers(20), loki.WithSeed(3)},
		},
		{
			name: "chain-flashcrowd",
			pipe: loki.TrafficChainPipeline(),
			tr:   loki.FlashCrowdTrace(150, 20, 5, 0.4, 0.3, 2.5),
			opts: []loki.Option{loki.WithServers(10), loki.WithSeed(7)},
		},
	}
	variants := []struct {
		name string
		opt  loki.Option
	}{
		{"last", loki.WithForecaster(loki.ForecastLast)},
		{"last-explicit-defaults", loki.WithForecaster(loki.ForecastLast,
			loki.WithForecastHeadroom(0), loki.WithForecastEnvelope(true),
			loki.WithForecastHorizon(10*time.Second))},
	}
	if raceEnabled {
		// The chain cases run near saturation, where MILP solves can hit the
		// wall-clock solve limit under the race detector's ~10x slowdown;
		// truncated solves return timing-dependent incumbents, so bit-for-bit
		// comparisons are only meaningful uninstrumented (the recorded golden
		// suite has the same sensitivity).
		t.Skip("race-detector slowdown makes wall-clock-budgeted solves nondeterministic")
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			base, err := loki.Serve(c.pipe, c.tr, c.opts...)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range variants {
				got, err := loki.Serve(c.pipe, c.tr, append(append([]loki.Option{}, c.opts...), v.opt)...)
				if err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				if !reflect.DeepEqual(base, got) {
					t.Fatalf("%s diverged from the reactive run:\n  base %v\n  got  %v", v.name, base, got)
				}
			}
		})
	}
}

// A non-identity forecaster must actually change planning: on a flash-crowd
// trace the proactive run provisions at least as many peak servers, and its
// Snapshot exposes a prediction decoupled from the estimate.
func TestForecasterChangesProvisioning(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector slowdown makes wall-clock-budgeted solves nondeterministic")
	}
	pipe := loki.TrafficChainPipeline()
	tr := loki.FlashCrowdTrace(150, 20, 5, 0.4, 0.3, 2.5)
	opts := []loki.Option{loki.WithServers(10), loki.WithSeed(7)}

	reactive, err := loki.Serve(pipe, tr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	proactive, err := loki.Serve(pipe, tr, append(append([]loki.Option{}, opts...),
		loki.WithForecaster(loki.ForecastHoltWinters, loki.WithForecastHeadroom(0.1)))...)
	if err != nil {
		t.Fatal(err)
	}
	if proactive.MaxServers < reactive.MaxServers {
		t.Fatalf("proactive peaked at %.0f servers, reactive at %.0f — forecasting should never provision less at the spike",
			proactive.MaxServers, reactive.MaxServers)
	}
	if proactive.MeanServers <= 0 {
		t.Fatal("proactive run reported no server usage")
	}
}
