package loki_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"loki"
)

// Admission control on the simulated engine: virtual time stands still
// between Submits, so once the granted burst is consumed every further
// Submit must shed with ErrOverloaded and a positive Retry-After hint.
func TestAdmissionShedsOnSimulatedSubmit(t *testing.T) {
	sys, err := loki.New(loki.TrafficChainPipeline(),
		loki.WithServers(8), loki.WithSeed(1), loki.WithAdmission(true))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	admitted, shed := 0, 0
	var firstShed error
	for i := 0; i < 100000 && shed == 0; i++ {
		if err := sys.Submit(ctx); err != nil {
			if !errors.Is(err, loki.ErrOverloaded) {
				t.Fatalf("Submit failed with a non-admission error: %v", err)
			}
			firstShed = err
			shed++
			continue
		}
		admitted++
	}
	if shed == 0 {
		t.Fatal("100k submits at one virtual instant never shed")
	}
	if admitted == 0 {
		t.Fatal("the granted burst admitted nothing before shedding")
	}
	if d, ok := loki.RetryAfter(firstShed); !ok || d <= 0 {
		t.Fatalf("RetryAfter(%v) = (%v, %v), want a positive hint", firstShed, d, ok)
	}
	snap := sys.Snapshot()
	if snap.Shed == 0 || snap.Arrivals != int64(admitted) {
		t.Fatalf("snapshot shed=%d arrivals=%d, want shed>0 and arrivals=%d", snap.Shed, snap.Arrivals, admitted)
	}
	if snap.GrantedRateQPS <= 0 {
		t.Fatalf("GrantedRateQPS = %g, want the granted rate after the first publication", snap.GrantedRateQPS)
	}
	if err := sys.Stop(); err != nil {
		t.Fatal(err)
	}
	if r := sys.Report(); r.Shed != snap.Shed || r.Admitted != snap.Arrivals {
		t.Fatalf("report admitted=%d shed=%d, want %d/%d", r.Admitted, r.Shed, snap.Arrivals, snap.Shed)
	}
}

// The granted-rate derivation is exposed with or without admission control:
// after serving real demand the standing routes must carry a positive
// frontend rate at least as large as the demand they were planned for.
func TestGrantedRateFollowsPlan(t *testing.T) {
	sys, err := loki.New(loki.TrafficChainPipeline(),
		loki.WithServers(12), loki.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Feed(loki.RampTrace(200, 200, 4, 2)); err != nil {
		t.Fatal(err)
	}
	if err := sys.Stop(); err != nil {
		t.Fatal(err)
	}
	if qps := sys.GrantedRate(); qps < 200 {
		t.Fatalf("GrantedRate = %g, want ≥ the 200 qps the plan was sized for", qps)
	}
	// Without WithAdmission nothing is shed and the admission gauges are
	// inert.
	snap := sys.Snapshot()
	if snap.Shed != 0 || snap.GrantedRateQPS != 0 {
		t.Fatalf("admission-free system reports admission state: %+v", snap)
	}
}

// End-to-end over real sockets: two tenants share one pool behind the HTTP
// front door; one is driven far past its grant and must see 429s with
// sensible Retry-After hints, while the other tenant's trickle is admitted
// untouched and meets its SLO.
func TestIngressHTTPTwoTenants(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time run (~2s wall)")
	}
	ms, err := loki.NewMulti(loki.WithServers(16), loki.WithSeed(7),
		loki.WithEngine(loki.Wallclock), loki.WithTimeScale(0.25),
		loki.WithAdmission(true))
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.AddPipeline("hot", loki.TrafficChainPipeline()); err != nil {
		t.Fatal(err)
	}
	if err := ms.AddPipeline("cold", loki.TrafficChainPipeline()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(ms)
	defer srv.Close()
	client := srv.Client()

	if resp, err := client.Get(srv.URL + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz = %v, %v", resp, err)
	} else {
		resp.Body.Close()
	}

	post := func(pipeline string) *http.Response {
		resp, err := client.Post(srv.URL+"/v1/"+pipeline+"/infer", "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Errorf("infer(%s): %v", pipeline, err)
			return nil
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	// The hot tenant: 3000 requests as fast as 60 connections can push them
	// — far past any keep-warm grant. The cold tenant: a 30ms-paced trickle
	// riding alongside.
	var hotOK, hotShed, hotOther, badRetry atomic.Int64
	var coldOK, coldBad atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 60; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp := post("hot")
				if resp == nil {
					continue
				}
				switch resp.StatusCode {
				case http.StatusAccepted:
					hotOK.Add(1)
				case http.StatusTooManyRequests:
					hotShed.Add(1)
					if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 || ra > 10 {
						badRetry.Add(1)
					}
				default:
					hotOther.Add(1)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			if resp := post("cold"); resp != nil {
				if resp.StatusCode == http.StatusAccepted {
					coldOK.Add(1)
				} else {
					coldBad.Add(1)
				}
			}
			time.Sleep(30 * time.Millisecond)
		}
	}()
	wg.Wait()

	if hotShed.Load() == 0 {
		t.Fatalf("hot tenant was never shed (ok=%d other=%d)", hotOK.Load(), hotOther.Load())
	}
	if hotOK.Load() == 0 {
		t.Fatal("hot tenant's granted burst admitted nothing")
	}
	if hotOther.Load() != 0 {
		t.Fatalf("hot tenant saw %d unexpected statuses", hotOther.Load())
	}
	if badRetry.Load() != 0 {
		t.Fatalf("%d shed responses carried a nonsensical Retry-After", badRetry.Load())
	}
	if coldBad.Load() != 0 {
		t.Fatalf("cold tenant refused %d of %d requests while hot overloaded",
			coldBad.Load(), coldBad.Load()+coldOK.Load())
	}

	// The snapshot endpoint reflects the shed traffic.
	resp, err := client.Get(srv.URL + "/v1/hot/snapshot")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("snapshot = %v, %v", resp, err)
	}
	var snap loki.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Shed != hotShed.Load() {
		t.Fatalf("snapshot.Shed = %d, want the %d observed 429s", snap.Shed, hotShed.Load())
	}
	if snap.GrantedRateQPS <= 0 {
		t.Fatalf("snapshot.GrantedRateQPS = %g, want positive", snap.GrantedRateQPS)
	}

	// Drain: new work is refused, health flips, observation stays up.
	ms.Drain()
	if resp := post("hot"); resp != nil && resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining infer = %d, want 503", resp.StatusCode)
	}
	if resp, err := client.Get(srv.URL + "/healthz"); err != nil || resp.StatusCode != 503 {
		t.Fatalf("draining healthz = %v, %v", resp, err)
	} else {
		resp.Body.Close()
	}
	if err := ms.Stop(); err != nil {
		t.Fatal(err)
	}

	// The cold tenant's admitted population must be unharmed: everything it
	// offered was admitted, nothing shed, and (race-detector slowdown aside)
	// its SLO attainment stays high.
	cold, err := ms.Report("cold")
	if err != nil {
		t.Fatal(err)
	}
	if cold.Shed != 0 || cold.Arrivals != coldOK.Load() {
		t.Fatalf("cold report shed=%d arrivals=%d, want 0/%d", cold.Shed, cold.Arrivals, coldOK.Load())
	}
	if !raceEnabled && cold.SLOViolationRatio > 0.25 {
		t.Fatalf("cold tenant harmed by hot overload: violations %.3f", cold.SLOViolationRatio)
	}
	hot, err := ms.Report("hot")
	if err != nil {
		t.Fatal(err)
	}
	if hot.Shed != hotShed.Load() || hot.Admitted != hotOK.Load() {
		t.Fatalf("hot report admitted=%d shed=%d, want %d/%d",
			hot.Admitted, hot.Shed, hotOK.Load(), hotShed.Load())
	}
}
