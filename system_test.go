package loki_test

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"loki"
)

// The acceptance check: Serve is a thin wrapper over the System lifecycle,
// so for a fixed seed the two produce the same Report.
func TestServeEqualsSystemLifecycle(t *testing.T) {
	pipe := loki.TrafficAnalysisPipeline()
	tr := loki.AzureTrace(1, 16, 5, 500)
	opts := []loki.Option{loki.WithServers(20), loki.WithSeed(11)}

	batch, err := loki.Serve(pipe, tr, opts...)
	if err != nil {
		t.Fatal(err)
	}

	sys, err := loki.New(pipe, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Feed(tr); err != nil {
		t.Fatal(err)
	}
	if err := sys.Stop(); err != nil {
		t.Fatal(err)
	}
	online := sys.Report()

	if !reflect.DeepEqual(batch, online) {
		t.Fatalf("reports differ:\nServe:  %v\nSystem: %v", batch, online)
	}
}

func TestSubmitOnline(t *testing.T) {
	sys, err := loki.New(loki.TrafficChainPipeline(), loki.WithServers(10), loki.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const n = 50
	for i := 0; i < n; i++ {
		if err := sys.Submit(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Stop(); err != nil {
		t.Fatal(err)
	}
	snap := sys.Snapshot()
	if snap.Arrivals != n {
		t.Fatalf("arrivals = %d, want %d", snap.Arrivals, n)
	}
	if snap.Completed+snap.Dropped != n || snap.InFlight != 0 {
		t.Fatalf("conservation after drain: %+v", snap)
	}
	if snap.Completed == 0 {
		t.Fatal("no submitted request completed — first-Submit priming failed")
	}
}

func TestSubmitAndFeedAfterStop(t *testing.T) {
	sys, err := loki.New(loki.TrafficChainPipeline(), loki.WithServers(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Stop(); err != nil {
		t.Fatalf("Stop must be idempotent, got %v", err)
	}
	if err := sys.Submit(context.Background()); !errors.Is(err, loki.ErrStopped) {
		t.Fatalf("Submit after Stop = %v, want ErrStopped", err)
	}
	if err := sys.Feed(loki.RampTrace(10, 20, 4, 1)); !errors.Is(err, loki.ErrStopped) {
		t.Fatalf("Feed after Stop = %v, want ErrStopped", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sys2, err := loki.New(loki.TrafficChainPipeline(), loki.WithServers(10))
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Stop()
	if err := sys2.Submit(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit with cancelled context = %v", err)
	}
}

func TestObservationHooks(t *testing.T) {
	sys, err := loki.New(loki.TrafficAnalysisPipeline(), loki.WithServers(20), loki.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Plan() != nil || sys.Routes() != nil {
		t.Fatal("plan/routes must be nil before the first allocation")
	}
	if err := sys.Feed(loki.AzureTrace(5, 8, 5, 400)); err != nil {
		t.Fatal(err)
	}
	plan := sys.Plan()
	routes := sys.Routes()
	if plan == nil || routes == nil {
		t.Fatal("plan/routes must be live after Feed")
	}
	if plan.ServersUsed <= 0 {
		t.Fatalf("plan uses %d servers", plan.ServersUsed)
	}
	snap := sys.Snapshot()
	if snap.Arrivals == 0 || snap.TimeSec <= 0 || snap.Allocates == 0 {
		t.Fatalf("snapshot not live: %+v", snap)
	}
	if snap.ActiveServers <= 0 {
		t.Fatalf("no active servers: %+v", snap)
	}
	if err := sys.Stop(); err != nil {
		t.Fatal(err)
	}
	if sys.Plan() == nil {
		t.Fatal("plan must survive Stop")
	}
}

func TestFeedBackToBack(t *testing.T) {
	sys, err := loki.New(loki.TrafficChainPipeline(), loki.WithServers(10), loki.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Feed(loki.RampTrace(50, 100, 6, 2)); err != nil {
		t.Fatal(err)
	}
	mid := sys.Snapshot().Arrivals
	if mid == 0 {
		t.Fatal("first trace injected nothing")
	}
	if err := sys.Feed(loki.RampTrace(100, 50, 6, 2)); err != nil {
		t.Fatal(err)
	}
	if err := sys.Stop(); err != nil {
		t.Fatal(err)
	}
	snap := sys.Snapshot()
	if snap.Arrivals <= mid {
		t.Fatalf("second Feed added nothing: %d → %d", mid, snap.Arrivals)
	}
	if snap.Completed+snap.Dropped != snap.Arrivals {
		t.Fatalf("conservation across feeds: %+v", snap)
	}
}

// Sim-vs-wallclock parity through the shared Engine interface: the same
// workload served by both backends of a System must land on comparable
// metrics (the §6.2 validation property, at unit-test scale).
func TestSimWallclockParity(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time run (~6s wall)")
	}
	if raceEnabled {
		t.Skip("race-detector slowdown breaks wall-clock timing bounds")
	}
	pipe := loki.TrafficAnalysisPipeline()
	tr := loki.AzureTrace(4, 12, 2, 300)

	run := func(kind loki.EngineKind) *loki.Report {
		t.Helper()
		sys, err := loki.New(pipe,
			loki.WithServers(20), loki.WithSeed(4),
			loki.WithEngine(kind), loki.WithTimeScale(0.25))
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Feed(tr); err != nil {
			t.Fatal(err)
		}
		if err := sys.Stop(); err != nil {
			t.Fatal(err)
		}
		return sys.Report()
	}

	sim := run(loki.Simulated)
	live := run(loki.Wallclock)

	if sim.Arrivals == 0 || live.Arrivals == 0 {
		t.Fatalf("no traffic: sim %d, live %d", sim.Arrivals, live.Arrivals)
	}
	if d := math.Abs(sim.Accuracy - live.Accuracy); d > 0.10 {
		t.Fatalf("accuracy delta %.3f (sim %.3f, live %.3f)", d, sim.Accuracy, live.Accuracy)
	}
	if d := math.Abs(sim.SLOViolationRatio - live.SLOViolationRatio); d > 0.20 {
		t.Fatalf("violation delta %.3f (sim %.3f, live %.3f)",
			d, sim.SLOViolationRatio, live.SLOViolationRatio)
	}
}

func TestWallclockSubmitDuringRun(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time run")
	}
	sys, err := loki.New(loki.TrafficChainPipeline(),
		loki.WithServers(10), loki.WithSeed(6),
		loki.WithEngine(loki.Wallclock), loki.WithTimeScale(0.25))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if err := sys.Submit(ctx); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Snapshot is concurrency-safe on the wallclock engine.
	if snap := sys.Snapshot(); snap.Arrivals == 0 {
		t.Fatalf("no arrivals recorded: %+v", snap)
	}
	if err := sys.Stop(); err != nil {
		t.Fatal(err)
	}
	snap := sys.Snapshot()
	if snap.Arrivals != 20 || snap.Completed+snap.Dropped != 20 {
		t.Fatalf("lifecycle counters: %+v", snap)
	}
	if snap.Completed == 0 {
		t.Fatal("no request completed on the wallclock engine")
	}
}
