package loki

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"loki/internal/core"
	"loki/internal/engine"
	"loki/internal/ingress"
	"loki/internal/metrics"
	"loki/internal/telemetry"
)

// ErrUnknownPipeline is returned when a MultiSystem method names a pipeline
// that was never registered with AddPipeline.
var ErrUnknownPipeline = errors.New("loki: unknown pipeline")

// pipelineConfig holds the per-pipeline knobs of a multi-tenant System.
// Zero values inherit the system-wide Option defaults.
type pipelineConfig struct {
	slo      time.Duration
	pol      Policy
	share    float64
	baseline Baseline
	baseSet  bool
	fc       forecastConfig
	tier     int
}

// PipelineOption configures one pipeline registered with
// MultiSystem.AddPipeline. System-wide Options (WithSLO, WithPolicy,
// WithBaseline) set the defaults; PipelineOptions override them per
// pipeline.
type PipelineOption func(*pipelineConfig)

// WithPipelineSLO sets this pipeline's end-to-end latency SLO, overriding
// the system-wide WithSLO default.
func WithPipelineSLO(d time.Duration) PipelineOption {
	return func(c *pipelineConfig) { c.slo = d }
}

// WithPipelinePolicy sets this pipeline's early-dropping policy, overriding
// the system-wide WithPolicy default.
func WithPipelinePolicy(p Policy) PipelineOption {
	return func(c *pipelineConfig) { c.pol = p }
}

// WithShare guarantees this pipeline a minimum fraction of the server pool
// when combined demand exceeds it. Pipelines without an explicit share split
// the unreserved fraction equally. Shares only bind under contention: an
// idle pipeline's guarantee is lent to whoever needs it and reclaimed on the
// next adaptation round.
func WithShare(f float64) PipelineOption {
	return func(c *pipelineConfig) { c.share = f }
}

// WithPipelineBaseline plans this pipeline with a baseline strategy instead
// of Loki's MILP, overriding the system-wide WithBaseline default. On a
// shared pool the baseline must support capped solves (BaselineInferLine
// does; BaselineProteus is single-tenant only).
func WithPipelineBaseline(b Baseline) PipelineOption {
	return func(c *pipelineConfig) { c.baseline = b; c.baseSet = true }
}

// WithTier assigns this pipeline a service tier and, when slo is positive,
// its latency SLO in one stroke. Higher tiers are higher priority; the
// default tier is 0. Tiers only matter when capacity is short — an outage, a
// crash, or plain contention: the joint arbiter grants floors tier by tier
// from the top and spills leftover capacity to the highest unmet tier first,
// so a shrinking pool degrades the lowest tiers first while high-tier SLOs
// hold. Admission follows the grants (a low tier's rate falls first, so its
// traffic sheds first), and the tier rides on every ShedError and 429. With
// uniform tiers the split is bit-identical to the tier-free system.
func WithTier(tier int, slo time.Duration) PipelineOption {
	return func(c *pipelineConfig) {
		c.tier = tier
		if slo > 0 {
			c.slo = slo
		}
	}
}

// msTenant is one registered pipeline with its per-tenant control-plane
// pieces (built eagerly by AddPipeline so configuration errors surface
// there).
type msTenant struct {
	name    string
	pipe    *Pipeline
	pcfg    pipelineConfig
	meta    *core.MetadataStore
	planner core.Planner
	col     *metrics.Collector
	ecfg    engine.TenantConfig
	// adm is the pipeline's admission controller (nil unless WithAdmission
	// armed one); its target rate is refreshed on every plan publication.
	adm *ingress.Admission
	// fcHorizon is the resolved forecast planning horizon in seconds.
	fcHorizon float64
	// tel and tracer are the pipeline's telemetry collector and request
	// tracer, built in buildLocked (nil under WithTelemetry(false); tracer
	// also nil at sample probability zero).
	tel    *telemetry.Collector
	tracer *telemetry.Tracer
}

// MultiSystem serves several pipelines on one shared server pool. Register
// pipelines with AddPipeline, then inject traffic per pipeline (Submit,
// Feed) or for all at once (FeedAll); the joint Resource Manager partitions
// the pool across pipelines on every adaptation round, so a traffic spike
// in one pipeline steals servers another is not using, while WithShare
// guarantees hold under contention. Each pipeline keeps its own routing
// tables, metrics, and Report.
//
// The first injection freezes registration and stands the control plane up;
// the same engine-threading rules as System apply (single goroutine on the
// Simulated engine, concurrent use on Wallclock).
type MultiSystem struct {
	cfg config

	mu         sync.Mutex
	byName     map[string]int
	tenants    []*msTenant
	built      bool
	primed     bool
	engStarted bool
	stopped    bool

	eng  engine.MultiEngine
	ctrl *core.MultiController

	// reg is the telemetry plane's metric registry, shared by every tenant's
	// collector and the joint planner (nil under WithTelemetry(false)).
	reg *telemetry.Registry

	// HTTP front door state (see ServeHTTP and Drain). draining is atomic so
	// the handler's fast path never takes m.mu.
	httpOnce sync.Once
	httpSrv  *ingress.Server
	draining atomic.Bool
}

// NewMulti creates an empty multi-tenant serving system over a shared pool
// sized by WithServers. System-wide Options set pool-level knobs (servers,
// seed, engine, network latency) and the per-pipeline defaults (SLO,
// policy, baseline) that AddPipeline's PipelineOptions may override.
func NewMulti(opts ...Option) (*MultiSystem, error) {
	c := buildConfig(opts)
	// With explicit hardware classes the pool size is their total count;
	// validate the fleet here so a bad WithHardware fails at construction.
	if _, total, err := c.resolvedClasses(); err != nil {
		return nil, err
	} else if len(c.hardware) > 0 {
		c.servers = total
	}
	if c.servers <= 0 {
		return nil, fmt.Errorf("loki: multi-tenant pool needs a positive server count, got %d", c.servers)
	}
	m := &MultiSystem{cfg: c, byName: map[string]int{}}
	if !c.telemetryOff {
		m.reg = telemetry.NewRegistry()
	}
	return m, nil
}

// AddPipeline registers a pipeline under a unique name. It validates the
// pipeline, profiles its variants, and builds its planner immediately, so
// infeasible configurations (for example an SLO no variant can meet) fail
// here. Registration closes once traffic has been injected.
func (m *MultiSystem) AddPipeline(name string, p *Pipeline, opts ...PipelineOption) error {
	if name == "" {
		return fmt.Errorf("loki: pipeline needs a name")
	}
	if name == "all" {
		return fmt.Errorf("loki: pipeline name %q is reserved for AggregateReport", name)
	}
	if p == nil {
		return fmt.Errorf("loki: nil pipeline")
	}
	if err := p.Validate(); err != nil {
		return err
	}
	pc := pipelineConfig{}
	for _, o := range opts {
		o(&pc)
	}
	if pc.slo == 0 {
		pc.slo = m.cfg.slo
	}
	if pc.pol == nil {
		pc.pol = m.cfg.pol
	}
	if !pc.baseSet {
		pc.baseline = m.cfg.baseline
	}
	if !pc.fc.set {
		pc.fc = m.cfg.fc
	}
	if pc.share < 0 || pc.share >= 1 {
		return fmt.Errorf("loki: pipeline %q share %.3f outside [0,1)", name, pc.share)
	}
	if pc.tier < 0 {
		return fmt.Errorf("loki: pipeline %q tier %d is negative", name, pc.tier)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.built {
		return fmt.Errorf("loki: pipeline registration is closed once traffic has been injected")
	}
	if _, dup := m.byName[name]; dup {
		return fmt.Errorf("loki: pipeline %q already registered", name)
	}

	tc := m.cfg
	tc.slo = pc.slo
	meta, aopts, err := metaAndOpts(p, tc)
	if err != nil {
		return err
	}
	if f := pc.fc.build(); f != nil {
		meta.SetForecaster(f)
	}
	planner, proteus, err := newPlannerFor(pc.baseline, meta, aopts)
	if err != nil {
		return err
	}
	col := metrics.NewCollector(30, m.cfg.servers)
	// Arm per-class occupancy (and, when priced, cost) accounting on
	// heterogeneous or priced fleets; the plain homogeneous zero-cost path
	// keeps its recorded reports bit for bit.
	if classes := meta.Classes(); len(classes) > 1 || classes[0].CostPerHour > 0 {
		names := make([]string, len(classes))
		costs := make([]float64, len(classes))
		for i, cl := range classes {
			names[i] = cl.Name
			costs[i] = cl.CostPerHour
		}
		col.SetClasses(names, costs)
	}
	t := &msTenant{
		name:      name,
		pipe:      p,
		pcfg:      pc,
		meta:      meta,
		planner:   planner,
		col:       col,
		fcHorizon: pc.fc.horizonSec(),
		ecfg: engine.TenantConfig{
			Meta:      meta,
			Policy:    pc.pol,
			Collector: col,
			SLOSec:    pc.slo.Seconds(),
			Tier:      pc.tier,
		},
	}
	if proteus != nil {
		t.ecfg.OnTaskDemand = proteus.ObserveTaskDemand
	}
	if m.cfg.admission {
		t.adm = ingress.NewAdmission(ingress.Config{
			SLOSec: pc.slo.Seconds(),
			// Granted routes carry the planner's headroom-inflated ceiling;
			// admit at the demand the plan was actually sized for.
			TargetUtilization: 1 / (1 + m.cfg.headroomOrDefault()),
		})
		t.ecfg.Admission = t.adm
	}
	m.byName[name] = len(m.tenants)
	m.tenants = append(m.tenants, t)
	return nil
}

// Pipelines lists the registered pipeline names in registration order.
func (m *MultiSystem) Pipelines() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.tenants))
	for i, t := range m.tenants {
		out[i] = t.name
	}
	return out
}

// buildLocked stands the shared control plane up: the multi-tenant engine
// over the shared pool and the joint controller that partitions it. Called
// under m.mu on the first injection (or eagerly by New for the
// single-pipeline wrapper).
func (m *MultiSystem) buildLocked() error {
	if m.built {
		return nil
	}
	if len(m.tenants) == 0 {
		return fmt.Errorf("loki: no pipelines registered")
	}
	classes, _, err := m.cfg.resolvedClasses()
	if err != nil {
		return err
	}
	mc := engine.MultiConfig{
		Servers:        m.cfg.servers,
		Classes:        classes,
		NetLatencySec:  m.cfg.netLatency.Seconds(),
		Seed:           m.cfg.seed,
		SwapLatencySec: m.cfg.swap.Seconds(),
		ExecJitter:     m.cfg.jitter,
		TimeScale:      m.cfg.timeScale,
		Faults:         m.cfg.faultSchedule(),
		OnFault:        m.cfg.onFault,
	}
	for i, t := range m.tenants {
		if m.reg != nil {
			// The collector mirrors the engine's physical worker layout
			// (class by class, in class order); the tracer samples from its
			// own seeded stream, disjoint from the per-tenant cluster
			// (seed+1+2i) and arrival (seed+2+2i) streams, so telemetry
			// never perturbs serving.
			var colOpts []telemetry.CollectorOption
			if m.cfg.workerMetricsSet {
				colOpts = append(colOpts, telemetry.WithWorkerMetricsLimit(m.cfg.workerMetricsLimit))
			}
			t.tel = telemetry.NewCollector(m.reg, t.name, telemetryClasses(classes), colOpts...)
			prob := m.cfg.traceProb
			if !m.cfg.traceSet {
				prob = 1.0 / 64
			}
			t.tracer = telemetry.NewTracer(t.name, prob, m.cfg.seed+9001+2*int64(i))
			t.ecfg.Telemetry = t.tel
			t.ecfg.Tracer = t.tracer
		}
		mc.Tenants = append(mc.Tenants, t.ecfg)
	}
	eng, err := engine.NewMulti(engine.Kind(m.cfg.engine), mc)
	if err != nil {
		return err
	}
	ctenants := make([]*core.Tenant, len(m.tenants))
	for i, t := range m.tenants {
		i, adm := i, t.adm
		// An admission-fronted tenant never has to plan for overload: the
		// front door sheds whatever the pool cannot serve within the SLO, so
		// cap its planning demand at that capacity. Without the cap an
		// overload pushes the planner into a saturated throughput-optimal
		// plan whose oversized batches miss the SLO by construction, and
		// admission throttling arrivals into such a plan only starves its
		// batches. MaxCapacity bisects ~24 solves; it runs once, here, at
		// control-plane build time.
		var demandCap float64
		if adm != nil {
			if alloc, ok := t.planner.(*core.Allocator); ok {
				demandCap = alloc.MaxCapacity(0, 20000)
			}
		}
		ctenants[i] = &core.Tenant{
			Name:               t.name,
			Tier:               t.pcfg.tier,
			Meta:               t.meta,
			Alloc:              t.planner,
			MinShare:           t.pcfg.share,
			RouteHeadroom:      m.cfg.headroomOrDefault(),
			ForecastHorizonSec: t.fcHorizon,
			DemandCapQPS:       demandCap,
			CacheDisabled:      m.cfg.plannerCacheOff,
			Publish: func(plan *core.Plan, routes *core.Routes) {
				eng.ApplyPlan(i, plan, routes)
				if adm != nil {
					// The admission target follows every publication: the
					// granted capacity is the summed service rate of the
					// root-task replicas just routed. Publications repeat
					// every rebalance, so SetRate must be (and is) a no-op
					// at a steady rate.
					adm.SetRate(eng.Now(), ingress.FrontendRate(routes))
				}
			},
		}
	}
	ctrl, err := core.NewMultiController(m.cfg.servers, ctenants)
	if err != nil {
		return err
	}
	ctrl.Sequential = m.cfg.parallelPlanningOff
	ctrl.SetTelemetry(m.reg)
	m.eng = eng
	m.ctrl = ctrl
	m.built = true
	return nil
}

// primeLocked runs the first joint allocation if none has happened yet.
// openQPS seeds each tenant's demand estimate (nil or zero entries allocate
// keep-warm minimal plans).
func (m *MultiSystem) primeLocked(openQPS []float64) error {
	if m.primed {
		return nil
	}
	for i, t := range m.tenants {
		if openQPS != nil && openQPS[i] > 0 {
			t.meta.ObserveDemand(openQPS[i])
		}
	}
	if err := m.ctrl.Step(true); err != nil {
		return err
	}
	m.primed = true
	return nil
}

// startLocked launches the engine on the first injection (after priming).
func (m *MultiSystem) startLocked() error {
	if m.engStarted {
		return nil
	}
	if err := m.eng.Start(m.ctrl); err != nil {
		return err
	}
	m.engStarted = true
	return nil
}

// admit is the shared build→prime→start preamble of every injection path.
// Callers hold m.mu.
func (m *MultiSystem) admit(openQPS []float64) error {
	if m.stopped {
		return ErrStopped
	}
	if err := m.buildLocked(); err != nil {
		return err
	}
	if err := m.primeLocked(openQPS); err != nil {
		return err
	}
	return m.startLocked()
}

func (m *MultiSystem) index(name string) (int, error) {
	i, ok := m.byName[name]
	if !ok {
		return 0, fmt.Errorf("%w %q", ErrUnknownPipeline, name)
	}
	return i, nil
}

// Submit admits one request for the named pipeline at the system's current
// time. The context is checked for cancellation before admission.
func (m *MultiSystem) Submit(ctx context.Context, pipeline string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	i, err := m.index(pipeline)
	if err == nil {
		err = m.admit(nil)
	}
	m.mu.Unlock()
	if err != nil {
		return err
	}
	return m.eng.Submit(i)
}

// Feed plays a workload trace through the named pipeline, blocking until
// the last arrival has been admitted. Other pipelines idle (their keep-warm
// plans stand) but keep serving whatever is in flight. On the Simulated
// engine the traces of successive Feed calls play back to back in virtual
// time; use FeedAll to overlap traces.
func (m *MultiSystem) Feed(pipeline string, tr *Trace) error {
	if tr == nil || len(tr.QPS) == 0 {
		return fmt.Errorf("loki: empty trace")
	}
	m.mu.Lock()
	i, err := m.index(pipeline)
	var traces []*Trace
	if err == nil {
		traces = make([]*Trace, len(m.tenants))
		traces[i] = tr
		open := make([]float64, len(m.tenants))
		open[i] = tr.QPS[0]
		err = m.admit(open)
	}
	m.mu.Unlock()
	if err != nil {
		return err
	}
	return m.eng.FeedAll(traces)
}

// FeedAll plays one trace per named pipeline concurrently on the shared
// pool — the multi-tenant serving run. Pipelines absent from the map idle.
// It blocks until the last arrival of the longest trace has been admitted.
func (m *MultiSystem) FeedAll(traces map[string]*Trace) error {
	if len(traces) == 0 {
		return fmt.Errorf("loki: FeedAll needs at least one trace")
	}
	m.mu.Lock()
	arr := make([]*Trace, len(m.tenants))
	open := make([]float64, len(m.tenants))
	var err error
	for name, tr := range traces {
		var i int
		if i, err = m.index(name); err != nil {
			break
		}
		if tr == nil || len(tr.QPS) == 0 {
			err = fmt.Errorf("loki: empty trace for pipeline %q", name)
			break
		}
		arr[i] = tr
		open[i] = tr.QPS[0]
	}
	if err == nil {
		err = m.admit(open)
	}
	m.mu.Unlock()
	if err != nil {
		return err
	}
	return m.eng.FeedAll(arr)
}

// Stop gracefully drains in-flight requests of every pipeline and shuts the
// system down. Idempotent; after Stop, Submit and Feed return ErrStopped
// while the observation methods keep working on the final state.
func (m *MultiSystem) Stop() error {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return nil
	}
	m.stopped = true
	started := m.engStarted
	m.mu.Unlock()
	if !started {
		return nil
	}
	return m.eng.Stop()
}

// Snapshot returns live counters for the named pipeline without disturbing
// the run (zeros before the first injection).
func (m *MultiSystem) Snapshot(pipeline string) (Snapshot, error) {
	m.mu.Lock()
	i, err := m.index(pipeline)
	built := m.built
	var t *msTenant
	if err == nil {
		t = m.tenants[i]
	}
	m.mu.Unlock()
	if err != nil {
		return Snapshot{}, err
	}
	if !built {
		return Snapshot{}, nil
	}
	st := m.eng.Stats(i)
	snap := Snapshot{
		TimeSec:         m.eng.Now(),
		Arrivals:        st.Injected,
		Completed:       st.Completed,
		Dropped:         st.Dropped,
		Rerouted:        st.Rerouted,
		Shed:            st.Shed,
		InFlight:        st.Injected - st.Completed - st.Dropped,
		ActiveServers:   m.eng.ActiveServers(i),
		GrantedServers:  m.ctrl.Grants()[i],
		Allocates:       m.ctrl.AllocatesOf(i),
		ObservedDemand:  t.meta.LastObservedDemand(),
		PredictedDemand: t.meta.PredictedDemand(t.fcHorizon),
	}
	if t.adm != nil {
		snap.AdmittedQPS, snap.ShedQPS = t.adm.Rates(snap.TimeSec)
		snap.GrantedRateQPS = t.adm.Rate()
	}
	snap.Workers = t.tel.Rows()
	live := t.meta.LiveClassCounts()
	for _, n := range live {
		snap.LiveServers += n
	}
	if classes := t.meta.Classes(); len(classes) > 1 {
		active := m.eng.ActiveByClass(i)
		grants := m.ctrl.ClassGrants()[i]
		snap.ActiveServersByClass = map[string]int{}
		snap.GrantedServersByClass = map[string]int{}
		snap.LiveServersByClass = map[string]int{}
		for c, cl := range classes {
			if c < len(active) {
				snap.ActiveServersByClass[cl.Name] = active[c]
			}
			if c < len(grants) {
				snap.GrantedServersByClass[cl.Name] = grants[c]
			}
			if c < len(live) {
				snap.LiveServersByClass[cl.Name] = live[c]
			}
		}
	}
	return snap, nil
}

// Plan returns the named pipeline's standing allocation plan (nil before
// the first allocation).
func (m *MultiSystem) Plan(pipeline string) (*Plan, error) {
	m.mu.Lock()
	i, err := m.index(pipeline)
	built := m.built
	m.mu.Unlock()
	if err != nil || !built {
		return nil, err
	}
	return m.ctrl.PlanOf(i), nil
}

// Routes returns the named pipeline's standing routing tables (nil before
// the first allocation).
func (m *MultiSystem) Routes(pipeline string) (*Routes, error) {
	m.mu.Lock()
	i, err := m.index(pipeline)
	built := m.built
	m.mu.Unlock()
	if err != nil || !built {
		return nil, err
	}
	return m.ctrl.RoutesOf(i), nil
}

// Grants returns the servers currently granted to each pipeline by the
// joint allocator. The values sum to at most the pool size.
func (m *MultiSystem) Grants() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int, len(m.tenants))
	if !m.built {
		for _, t := range m.tenants {
			out[t.name] = 0
		}
		return out
	}
	g := m.ctrl.Grants()
	for i, t := range m.tenants {
		out[t.name] = g[i]
	}
	return out
}

// GrantedRate returns the named pipeline's granted frontend capacity in
// requests per second: the summed service rate of the root-task replicas in
// its standing routing tables — the rate an armed admission controller
// admits at. Zero before the first allocation; available with or without
// WithAdmission.
func (m *MultiSystem) GrantedRate(pipeline string) (float64, error) {
	m.mu.Lock()
	i, err := m.index(pipeline)
	built := m.built
	m.mu.Unlock()
	if err != nil || !built {
		return 0, err
	}
	return ingress.FrontendRate(m.ctrl.RoutesOf(i)), nil
}

// ServeHTTP exposes the system over HTTP (the ingress front door):
//
//	POST /v1/{pipeline}/infer     admit one request (202, or 429 + Retry-After
//	                              when WithAdmission sheds it)
//	GET  /v1/{pipeline}/snapshot  live Snapshot as JSON
//	GET  /metrics                 Prometheus text exposition of the telemetry
//	                              plane (absent under WithTelemetry(false))
//	GET  /healthz                 200 while serving, 503 while draining
//
// The first request freezes pipeline registration (like the first injection).
// Mount it on any http.Server; handlers are safe for concurrent use on the
// Wallclock engine, which is the engine a networked front door wants —
// virtual time does not advance between requests on the Simulated engine.
func (m *MultiSystem) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	m.httpOnce.Do(func() {
		var metricsFn func(io.Writer)
		if reg := m.reg; reg != nil {
			metricsFn = func(w io.Writer) { reg.WritePrometheus(w) }
		}
		m.httpSrv = ingress.NewServer(ingress.ServerConfig{
			Pipelines: m.Pipelines(),
			Submit:    m.Submit,
			Snapshot: func(pipeline string) (any, error) {
				return m.Snapshot(pipeline)
			},
			Draining: m.draining.Load,
			Metrics:  metricsFn,
		})
	})
	m.httpSrv.ServeHTTP(w, r)
}

// Drain puts the HTTP front door into draining mode: infer requests and
// health checks answer 503 (telling load balancers to stop sending traffic)
// while in-flight work keeps being served and the observation endpoints stay
// up. Draining is one-way; follow with Stop to wait out the in-flight work.
// Direct Submit and Feed calls are unaffected.
func (m *MultiSystem) Drain() { m.draining.Store(true) }

// Report summarizes the named pipeline's run so far with the §6.1 metrics,
// labeled with the pipeline name.
func (m *MultiSystem) Report(pipeline string) (*Report, error) {
	m.mu.Lock()
	i, err := m.index(pipeline)
	m.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return m.reportOf(i), nil
}

func (m *MultiSystem) reportOf(i int) *Report {
	m.mu.Lock()
	t := m.tenants[i]
	built := m.built
	eng := m.eng
	m.mu.Unlock()
	sum := t.col.Summarize()
	var rerouted int64
	if built {
		rerouted = eng.Stats(i).Rerouted
	}
	r := summaryToReport(sum, rerouted)
	r.Pipeline = t.name
	r.Series = t.col.Series()
	r.Stages = t.tracer.StageSummary()
	return r
}

// Telemetry returns the system's metric registry: per-worker serving gauges,
// planner counters, and everything else the telemetry plane maintains, for
// programmatic access (Gather) or Prometheus-text rendering
// (WritePrometheus — the bytes GET /metrics serves). Nil under
// WithTelemetry(false).
func (m *MultiSystem) Telemetry() *TelemetryRegistry { return m.reg }

// WriteTraces writes every pipeline's sampled request traces as indented
// JSON: an array with one {tenant, stages, traces} object per registered
// pipeline, in registration order. Stages carries the per-stage latency
// summary (Report.Stages); traces the individual span trees. With tracing
// off (WithTelemetry(false) or WithTraceSampling(0)) each entry is empty.
// The serving CLIs expose this as lokiserve -trace-out.
func (m *MultiSystem) WriteTraces(w io.Writer) error {
	m.mu.Lock()
	tenants := append([]*msTenant(nil), m.tenants...)
	m.mu.Unlock()
	exports := make([]json.RawMessage, 0, len(tenants))
	for _, t := range tenants {
		b, err := t.tracer.ExportJSON()
		if err != nil {
			return err
		}
		exports = append(exports, b)
	}
	b, err := json.MarshalIndent(exports, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// Reports returns every pipeline's Report, keyed by name.
func (m *MultiSystem) Reports() map[string]*Report {
	m.mu.Lock()
	n := len(m.tenants)
	m.mu.Unlock()
	out := make(map[string]*Report, n)
	for i := 0; i < n; i++ {
		r := m.reportOf(i)
		out[r.Pipeline] = r
	}
	return out
}

// AggregateReport merges every pipeline's metrics into one pool-wide Report
// labeled "all": request counts sum; accuracy, violation ratio, and latency
// are weighted across pipelines; the server columns add per-pipeline means
// (the pipelines partition one pool, so the sums are the pool's activity).
// Series is nil — per-pipeline time series stay on the per-pipeline
// Reports, so mixed-tenant numbers are never silently summed.
func (m *MultiSystem) AggregateReport() *Report {
	m.mu.Lock()
	tenants := append([]*msTenant(nil), m.tenants...)
	built := m.built
	eng := m.eng
	m.mu.Unlock()
	sums := make([]metrics.Summary, len(tenants))
	var rerouted int64
	for i, t := range tenants {
		sums[i] = t.col.Summarize()
		if built {
			rerouted += eng.Stats(i).Rerouted
		}
	}
	r := summaryToReport(metrics.Merge(sums...), rerouted)
	r.Pipeline = "all"
	return r
}

// summaryToReport maps a metrics summary (plus the engine's reroute count)
// onto the public Report shape.
func summaryToReport(sum metrics.Summary, rerouted int64) *Report {
	r := &Report{
		Accuracy:          sum.MeanAccuracy,
		SLOViolationRatio: sum.ViolationRatio,
		MeanServers:       sum.MeanServers,
		MinServers:        sum.MinServers,
		MaxServers:        sum.MaxServers,
		MeanLatency:       time.Duration(sum.MeanLatency * float64(time.Second)),
		LatencyP50:        time.Duration(sum.LatencyP50 * float64(time.Second)),
		LatencyP99:        time.Duration(sum.LatencyP99 * float64(time.Second)),
		Arrivals:          int64(sum.Arrivals),
		Completed:         int64(sum.Completed),
		Late:              int64(sum.Late),
		Dropped:           int64(sum.Dropped),
		Rerouted:          rerouted,
		Admitted:          int64(sum.Admitted),
		Shed:              int64(sum.Shed),
		ServerCostHours:   sum.CostHours,
	}
	if len(sum.ClassNames) > 0 {
		r.MeanServersByClass = map[string]float64{}
		for i, name := range sum.ClassNames {
			r.MeanServersByClass[name] = sum.MeanServersByClass[i]
		}
	}
	if answered := r.Completed + r.Late; answered > 0 && r.ServerCostHours > 0 {
		r.CostPerQuery = r.ServerCostHours / float64(answered)
	}
	return r
}
