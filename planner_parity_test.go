package loki_test

import (
	"reflect"
	"testing"
	"time"

	"loki"
)

// TestPlannerFastPathParity pins the fast planning path (plan cache, model
// memo, warm starts, parallel per-tenant solves — all default-on) to the
// sequential from-scratch path on the golden serving scenarios: the whole
// Report, time series included, must be byte-identical with and without the
// escape hatches. These scenarios keep every MILP in its deterministic
// regime (terminated by proof or gap test, never by the wall clock), which
// is exactly where the fast path promises to change nothing but speed.
func TestPlannerFastPathParity(t *testing.T) {
	cases := []struct {
		name string
		pipe *loki.Pipeline
		tr   *loki.Trace
		opts []loki.Option
	}{
		// The roomy solve limit keeps every MILP deterministic (proof- or
		// gap-terminated) even on a loaded machine; it never binds on an
		// idle one. Without it the chain ramp's saturated tail can truncate
		// on the wall clock under CPU contention, where the two compared
		// runs may legitimately hold different incumbents.
		{
			name: "traffic-azure",
			pipe: loki.TrafficAnalysisPipeline(),
			tr:   loki.AzureTrace(1, 24, 5, 450),
			opts: []loki.Option{loki.WithServers(20), loki.WithSeed(3),
				loki.WithSolveTimeLimit(10 * time.Second)},
		},
		{
			name: "chain-ramp-pertask",
			pipe: loki.TrafficChainPipeline(),
			tr:   loki.RampTrace(100, 900, 16, 5),
			opts: []loki.Option{loki.WithServers(10), loki.WithSeed(7), loki.WithPolicy(loki.PerTaskPolicy),
				loki.WithSolveTimeLimit(10 * time.Second)},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fast, err := loki.Serve(c.pipe, c.tr, c.opts...)
			if err != nil {
				t.Fatal(err)
			}
			coldOpts := append(append([]loki.Option{}, c.opts...),
				loki.WithPlannerCache(false), loki.WithParallelPlanning(false))
			cold, err := loki.Serve(c.pipe, c.tr, coldOpts...)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fast, cold) {
				t.Errorf("fast planning path diverged from cold path\nfast: %v\ncold: %v", fast, cold)
			}
		})
	}
}

// TestPlannerFastPathParityMultiTenant runs the parallelism half of the
// contract through the multi-tenant arbiter (two pipelines, shared pool):
// fanned-out per-tenant solves must produce byte-identical per-pipeline
// reports to strictly sequential ones. The WithPlannerCache hatch is
// deliberately not part of this comparison: on a shared pool the plan cache
// quantizes demand at the arbiter's adaptation threshold, so disabling it
// legitimately re-solves demands the cached path coalesces — a policy
// difference, not a solver one (the solver-level reuse parity is pinned by
// TestReusePreservesPlans in internal/core).
func TestPlannerFastPathParityMultiTenant(t *testing.T) {
	run := func(hatches ...loki.Option) map[string]*loki.Report {
		t.Helper()
		opts := append([]loki.Option{
			loki.WithServers(20),
			loki.WithSeed(11),
			loki.WithSolveTimeLimit(10 * time.Second),
		}, hatches...)
		sys, err := loki.NewMulti(opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.AddPipeline("traffic", loki.TrafficAnalysisPipeline()); err != nil {
			t.Fatal(err)
		}
		if err := sys.AddPipeline("social", loki.SocialMediaPipeline()); err != nil {
			t.Fatal(err)
		}
		err = sys.FeedAll(map[string]*loki.Trace{
			"traffic": loki.AzureTrace(2, 16, 5, 260),
			"social":  loki.TwitterTrace(3, 16, 5, 180),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Stop(); err != nil {
			t.Fatal(err)
		}
		out := map[string]*loki.Report{}
		for _, name := range sys.Pipelines() {
			r, err := sys.Report(name)
			if err != nil {
				t.Fatal(err)
			}
			out[name] = r
		}
		return out
	}

	fast := run()
	sequential := run(loki.WithParallelPlanning(false))
	for name, fr := range fast {
		if !reflect.DeepEqual(fr, sequential[name]) {
			t.Errorf("pipeline %q: parallel planning diverged from sequential\nparallel:   %v\nsequential: %v", name, fr, sequential[name])
		}
	}
}
