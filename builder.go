package loki

import (
	"errors"
	"fmt"
)

// PipelineBuilder assembles custom inference pipelines as rooted task trees.
// The first Task call declares the root; Child grows the tree under a cursor
// task (the root, or wherever At last moved it); Build validates the result.
//
//	pipe, err := loki.NewPipeline("traffic-analysis").
//	    Task("object-detection", loki.MustVariantFamily("yolov5")...).
//	    Child("car-classification", 0.70, loki.MustVariantFamily("efficientnet")...).
//	    Child("facial-recognition", 0.30, loki.MustVariantFamily("vgg")...).
//	    Build()
//
// Construction errors (duplicate names, unknown parents, empty variant
// families) accumulate and surface from Build, so calls chain without
// intermediate checks. A builder is single-use: Build hands over its graph.
// The built pipeline works everywhere a canned one does — Serve, New, or a
// MultiSystem's AddPipeline (each registration profiles it independently,
// so one pipeline value may back several tenants).
type PipelineBuilder struct {
	g      *Pipeline
	index  map[string]TaskID
	cursor TaskID
	errs   []error
}

// NewPipeline starts a builder for a pipeline with the given name.
func NewPipeline(name string) *PipelineBuilder {
	return &PipelineBuilder{
		g:      &Pipeline{Name: name},
		index:  map[string]TaskID{},
		cursor: -1,
	}
}

func (b *PipelineBuilder) errf(format string, args ...any) *PipelineBuilder {
	b.errs = append(b.errs, fmt.Errorf("loki: "+format, args...))
	return b
}

// addTask appends a task vertex, returning its ID (or -1 on error).
func (b *PipelineBuilder) addTask(name string, variants []Variant) TaskID {
	if name == "" {
		b.errf("task needs a name")
		return -1
	}
	if _, dup := b.index[name]; dup {
		b.errf("duplicate task %q", name)
		return -1
	}
	if len(variants) == 0 {
		b.errf("task %q has an empty variant family", name)
		return -1
	}
	id := TaskID(len(b.g.Tasks))
	b.g.Tasks = append(b.g.Tasks, Task{
		ID:       id,
		Name:     name,
		Variants: append([]Variant(nil), variants...),
	})
	b.index[name] = id
	return id
}

// Task declares the pipeline's root task and sets the cursor on it. A
// pipeline has exactly one root; grow the tree with Child and ChildOf.
func (b *PipelineBuilder) Task(name string, variants ...Variant) *PipelineBuilder {
	if len(b.g.Tasks) > 0 {
		return b.errf("Task(%q): pipeline already has a root %q; use Child or ChildOf", name, b.g.Tasks[0].Name)
	}
	if id := b.addTask(name, variants); id >= 0 {
		b.cursor = id
	}
	return b
}

// Child declares a new task as a child of the cursor task. branchRatio is
// the fraction of the parent's output queries that flow down this edge (in
// (0, 1]). The cursor stays on the parent, so consecutive Child calls add
// siblings; use At to descend.
func (b *PipelineBuilder) Child(name string, branchRatio float64, variants ...Variant) *PipelineBuilder {
	if b.cursor < 0 {
		return b.errf("Child(%q): declare the root with Task first", name)
	}
	return b.childOf(b.cursor, name, branchRatio, variants)
}

// ChildOf declares a new task as a child of the named parent.
func (b *PipelineBuilder) ChildOf(parent, name string, branchRatio float64, variants ...Variant) *PipelineBuilder {
	pid, ok := b.index[parent]
	if !ok {
		return b.errf("ChildOf(%q, %q): unknown parent task %q", parent, name, parent)
	}
	return b.childOf(pid, name, branchRatio, variants)
}

func (b *PipelineBuilder) childOf(parent TaskID, name string, branchRatio float64, variants []Variant) *PipelineBuilder {
	id := b.addTask(name, variants)
	if id < 0 {
		return b
	}
	b.g.Tasks[parent].Children = append(b.g.Tasks[parent].Children,
		Child{Task: id, BranchRatio: branchRatio})
	return b
}

// At moves the cursor to a declared task, so Child calls attach under it.
func (b *PipelineBuilder) At(name string) *PipelineBuilder {
	id, ok := b.index[name]
	if !ok {
		return b.errf("At(%q): unknown task", name)
	}
	b.cursor = id
	return b
}

// Output marks the named task as a pipeline output even though it has
// children (an interior sink, like the social-media pipeline's
// classification stage). Leaves are outputs regardless.
func (b *PipelineBuilder) Output(name string) *PipelineBuilder {
	id, ok := b.index[name]
	if !ok {
		return b.errf("Output(%q): unknown task", name)
	}
	b.g.Tasks[id].Output = true
	return b
}

// Link adds an edge between two already-declared tasks. Pipelines must stay
// rooted trees, so a Link that forms a cycle, reaches the root, or gives a
// task two parents is rejected by Build.
func (b *PipelineBuilder) Link(parent, child string, branchRatio float64) *PipelineBuilder {
	pid, pok := b.index[parent]
	cid, cok := b.index[child]
	if !pok {
		return b.errf("Link(%q, %q): unknown task %q", parent, child, parent)
	}
	if !cok {
		return b.errf("Link(%q, %q): unknown task %q", parent, child, child)
	}
	// The graph under construction is a tree, so a cycle can only arise by
	// linking a task to one of its ancestors (the root included).
	for id := pid; id >= 0; {
		if id == cid {
			return b.errf("Link(%q, %q): would create a cycle", parent, child)
		}
		id, _ = b.g.Parent(id)
	}
	b.g.Tasks[pid].Children = append(b.g.Tasks[pid].Children,
		Child{Task: cid, BranchRatio: branchRatio})
	return b
}

// Build validates the assembled pipeline and returns it. All accumulated
// construction errors and any structural violation (not a rooted tree,
// malformed variant profile, bad branch ratio) are reported.
func (b *PipelineBuilder) Build() (*Pipeline, error) {
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	return b.g, nil
}
