//go:build race

package loki_test

// raceEnabled reports whether the race detector is instrumenting this build.
// Its ~10x slowdown breaks the wall-clock engine's timing assumptions, so
// real-time parity tests skip themselves under -race.
const raceEnabled = true
