// Command lokiload is a closed-loop HTTP load generator for the loki ingress
// front door (lokiserve -listen). It plays an open-loop Poisson arrival
// schedule from the workload-trace generator against POST
// /v1/{pipeline}/infer through a bounded connection pool, and reports per
// pipeline how much of the offered load was accepted (202), shed (429 +
// Retry-After), or failed outright.
//
// One pipeline at a steady rate:
//
//	lokiload -url http://localhost:8080 -pipeline traffic -qps 400 -dur 10s
//
// Two tenants, each at its own rate, swept across overload multipliers (each
// sweep point runs -dur seconds at mult×qps):
//
//	lokiload -url http://localhost:8080 -pipeline traffic,social -qps 400,200 -sweep 0.5,1,2 -out sweep.json
//
// With -retries N, each shed request is re-sent up to N times after sleeping
// for the server's Retry-After hint (with jitter); the report then separates
// requests salvaged by retrying (retried-ok) from those shed for good.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"loki/internal/ingress"
	"loki/internal/trace"
)

// phaseResult is one sweep point: every pipeline driven at mult × its base
// QPS for the phase duration.
type phaseResult struct {
	Mult        float64                       `json:"mult"`
	DurationSec float64                       `json:"duration_sec"`
	Pipelines   map[string]ingress.LoadResult `json:"pipelines"`
}

func main() {
	url := flag.String("url", "http://localhost:8080", "base URL of the lokiserve front door")
	pipeNames := flag.String("pipeline", "traffic", "pipeline name(s) to drive (comma-separated)")
	qpsList := flag.String("qps", "400", "base offered rate(s) in QPS (comma-separated, one per pipeline)")
	sweep := flag.String("sweep", "1", "overload multipliers swept over the base rates (comma-separated)")
	durFlag := flag.Duration("dur", 10*time.Second, "duration per sweep point")
	conns := flag.Int("conns", 64, "connection-pool bound per pipeline (closed-loop limit)")
	retries := flag.Int("retries", 0, "per-request retry budget on 429s, honoring Retry-After with jitter")
	seed := flag.Int64("seed", 1, "random seed for the Poisson arrival schedule")
	out := flag.String("out", "", "write the sweep results as JSON to this file")
	flag.Parse()

	names := strings.Split(*pipeNames, ",")
	qstrs := strings.Split(*qpsList, ",")
	base := make([]float64, len(names))
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
		s := strings.TrimSpace(qstrs[min(i, len(qstrs)-1)])
		q, err := strconv.ParseFloat(s, 64)
		if err != nil || q <= 0 {
			log.Fatalf("bad qps %q: want a positive rate", s)
		}
		base[i] = q
	}
	var mults []float64
	for _, s := range strings.Split(*sweep, ",") {
		m, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || m <= 0 {
			log.Fatalf("bad sweep multiplier %q", s)
		}
		mults = append(mults, m)
	}

	// One shared client so every pipeline's pool draws from one socket budget.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *conns * len(names),
		MaxIdleConnsPerHost: *conns * len(names),
	}}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	dur := durFlag.Seconds()

	var phases []phaseResult
	for pi, mult := range mults {
		if ctx.Err() != nil {
			break
		}
		ph := phaseResult{Mult: mult, DurationSec: dur, Pipelines: map[string]ingress.LoadResult{}}
		var mu sync.Mutex
		var wg sync.WaitGroup
		for i, name := range names {
			wg.Add(1)
			go func(i int, name string) {
				defer wg.Done()
				q := base[i] * mult
				g := &ingress.LoadGen{BaseURL: *url, Pipeline: name, Conns: *conns, Retries: *retries, Client: client}
				rng := rand.New(rand.NewSource(*seed + int64(pi*len(names)+i)))
				res, err := g.Run(ctx, trace.Ramp(q, q, 1, dur), rng)
				if err != nil && ctx.Err() == nil {
					log.Printf("[%s] %v", name, err)
				}
				mu.Lock()
				ph.Pipelines[name] = res
				mu.Unlock()
			}(i, name)
		}
		wg.Wait()
		for i, name := range names {
			res := ph.Pipelines[name]
			fmt.Printf("mult=%.2g [%-8s] offered=%.0f qps sent=%-7d accepted=%-7d shed=%-6d errors=%-5d retries=%-5d retried-ok=%-5d shed-rate=%.1f%% retry-after=%.1fs max-lag=%.2fs\n",
				mult, name, base[i]*mult, res.Sent, res.Accepted, res.Shed, res.Errors,
				res.Retries, res.RetriedOK,
				pct(res.Shed, res.Sent), res.RetryAfterMeanSec, res.MaxLagSec)
		}
		phases = append(phases, ph)
	}

	if *out != "" && len(phases) > 0 {
		buf, err := json.MarshalIndent(phases, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
	// Give in-flight server work a beat, then show the authoritative counters.
	time.Sleep(200 * time.Millisecond)
	for _, name := range names {
		printSnapshot(client, *url, name)
	}
}

func pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// printSnapshot fetches the server-side view so shed/admitted totals can be
// cross-checked against the client-side counts above.
func printSnapshot(client *http.Client, url, pipeline string) {
	resp, err := client.Get(fmt.Sprintf("%s/v1/%s/snapshot", url, pipeline))
	if err != nil {
		log.Printf("snapshot(%s): %v", pipeline, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Printf("snapshot(%s): HTTP %d", pipeline, resp.StatusCode)
		return
	}
	var snap struct {
		Arrivals  int64   `json:"Arrivals"`
		Completed int64   `json:"Completed"`
		Dropped   int64   `json:"Dropped"`
		Shed      int64   `json:"Shed"`
		InFlight  int64   `json:"InFlight"`
		Granted   float64 `json:"GrantedRateQPS"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		log.Printf("snapshot(%s): %v", pipeline, err)
		return
	}
	fmt.Printf("server  [%-8s] admitted=%-7d completed=%-7d dropped=%-5d shed=%-6d inflight=%-5d granted-rate=%.0f qps\n",
		pipeline, snap.Arrivals, snap.Completed, snap.Dropped, snap.Shed, snap.InFlight, snap.Granted)
}
