// Command lokiexp regenerates the tables and figures of the paper's
// evaluation (§6). Each figure prints the same series/rows the paper plots,
// plus the headline ratios with the paper's numbers alongside.
//
// Usage:
//
//	lokiexp -fig 1          # capacity phases (Figure 1)
//	lokiexp -fig 3          # accuracy-throughput tradeoff (Figure 3)
//	lokiexp -fig 5          # traffic-analysis end-to-end comparison (Figure 5)
//	lokiexp -fig 6          # social-media end-to-end comparison (Figure 6)
//	lokiexp -fig 7          # early-dropping ablation (Figure 7)
//	lokiexp -fig 8          # SLO sensitivity (Figure 8)
//	lokiexp -fig hetero      # mixed accelerator fleet vs uniform fleet
//	lokiexp -fig multitenant # shared-pool contention across two pipelines
//	lokiexp -fig fleet       # planning-round latency at 100-1000 servers
//	lokiexp -fig forecast   # reactive vs proactive (forecast-driven) serving
//	lokiexp -fig ingress    # HTTP front door: admission control under overload
//	lokiexp -fig chaos      # fault injection: crash/outage/straggler × tiers
//	lokiexp -fig validate   # simulator-vs-prototype validation (§6.2)
//	lokiexp -fig runtime    # Resource Manager / Load Balancer overhead (§6.5)
//	lokiexp -fig all        # everything
//
// Performance work attaches pprof evidence with the profiling flags, e.g.
//
//	lokiexp -fig multitenant -cpuprofile cpu.prof -memprofile mem.prof
//	go tool pprof -top cpu.prof
package main

import (
	"flag"
	"fmt"
	"os"
	goruntime "runtime"
	"runtime/pprof"
	"time"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1, 3, 5, 6, 7, 8, hetero, multitenant, fleet, forecast, ingress, chaos, validate, runtime, all")
	seed := flag.Int64("seed", 11, "random seed")
	servers := flag.Int("servers", 20, "cluster size")
	sloMs := flag.Float64("slo", 250, "latency SLO in milliseconds")
	quick := flag.Bool("quick", false, "smaller traces for a fast pass")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			goruntime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	run := func(name string, f func() error) {
		fmt.Printf("==================== %s ====================\n", name)
		t0 := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	all := *fig == "all"
	if all || *fig == "1" {
		run("Figure 1: hardware→accuracy scaling phases", func() error {
			return figure1(*servers, *sloMs/1000, *quick)
		})
	}
	if all || *fig == "3" {
		run("Figure 3: accuracy-throughput tradeoff", figure3)
	}
	if all || *fig == "5" {
		run("Figure 5: traffic-analysis comparison", func() error {
			return comparison(true, *seed, *servers, *sloMs/1000, *quick)
		})
	}
	if all || *fig == "6" {
		run("Figure 6: social-media comparison", func() error {
			return comparison(false, *seed, *servers, *sloMs/1000, *quick)
		})
	}
	if all || *fig == "7" {
		run("Figure 7: early-dropping ablation", func() error {
			return figure7(*seed)
		})
	}
	if all || *fig == "8" {
		run("Figure 8: SLO sensitivity", func() error {
			return figure8(*seed)
		})
	}
	if all || *fig == "hetero" {
		run("Hetero: mixed accelerator fleet vs speed-equivalent uniform", func() error {
			return hetero(*seed, *sloMs/1000, *quick)
		})
	}
	if all || *fig == "fleet" {
		run("Fleet: planning rounds at 100-1000 servers, greedy vs MILP-only", func() error {
			return fleet(*seed, *sloMs/1000, *quick)
		})
	}
	if all || *fig == "multitenant" {
		run("Multi-tenant: shared-pool contention", func() error {
			return multitenant(*seed, *servers, *sloMs/1000, *quick)
		})
	}
	if all || *fig == "forecast" {
		run("Forecast: reactive vs proactive provisioning", func() error {
			return forecastFig(*seed, *servers, *sloMs/1000, *quick)
		})
	}
	if all || *fig == "ingress" {
		run("Ingress: admission control under overload (real sockets)", func() error {
			return ingressFig(*seed, *servers, *sloMs/1000, *quick)
		})
	}
	if all || *fig == "chaos" {
		run("Chaos: fault injection, tiers, and degradation order", func() error {
			return chaos(*seed, *sloMs/1000, *quick)
		})
	}
	if all || *fig == "validate" {
		run("§6.2: simulator validation", func() error {
			return validate(*seed, *quick)
		})
	}
	if all || *fig == "runtime" {
		run("§6.5: runtime overhead", func() error {
			return runtime(*servers, *sloMs/1000)
		})
	}
}
