package main

import (
	"fmt"

	"loki/internal/experiments"
)

func figure1(servers int, sloSec float64, quick bool) error {
	steps := 22
	if quick {
		steps = 11
	}
	r, err := experiments.Figure1(servers, sloSec, steps)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatFigure1(r))
	return nil
}

func figure3() error {
	fmt.Println(experiments.FormatFigure3(experiments.Figure3()))
	return nil
}

func comparison(traffic bool, seed int64, servers int, sloSec float64, quick bool) error {
	steps := 144
	if quick {
		steps = 72
	}
	r, err := experiments.Comparison(experiments.CompareConfig{
		TrafficNotSocial: traffic,
		Servers:          servers,
		SLOSec:           sloSec,
		Seed:             seed,
		TraceSteps:       steps,
		StepSec:          10,
	})
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatComparison(r))
	return nil
}

func figure7(seed int64) error {
	rows, err := experiments.Figure7(seed)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatFigure7(rows))
	return nil
}

func figure8(seed int64) error {
	rows, err := experiments.Figure8(seed, nil)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatFigure8(rows))
	return nil
}

func validate(seed int64, quick bool) error {
	cfg := experiments.ValidateConfig{Seed: seed}
	if quick {
		cfg.TraceSteps = 10
		cfg.StepSec = 4
		cfg.TimeScale = 0.5
	}
	r, err := experiments.Validate(cfg)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatValidation(r))
	return nil
}

func runtime(servers int, sloSec float64) error {
	r, err := experiments.Runtime(servers, sloSec)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatRuntime(r))
	return nil
}

func forecastFig(seed int64, servers int, sloSec float64, quick bool) error {
	steps := 36
	if quick {
		steps = 24
	}
	r, err := experiments.Forecast(experiments.ForecastConfig{
		Servers: servers, SLOSec: sloSec, Seed: seed,
		TraceSteps: steps, StepSec: 10,
	})
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatForecast(r))
	return nil
}

func hetero(seed int64, sloSec float64, quick bool) error {
	steps, stepSec := 48, 10.0
	if quick {
		steps, stepSec = 24, 5.0
	}
	r, err := experiments.Hetero(experiments.HeteroConfig{
		SLOSec: sloSec, Seed: seed, TraceSteps: steps, StepSec: stepSec,
	})
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatHetero(r))
	return nil
}

func ingressFig(seed int64, servers int, sloSec float64, quick bool) error {
	cfg := experiments.IngressConfig{Servers: servers, SLOSec: sloSec, Seed: seed}
	if quick {
		// Warmup must outlast the fresh bucket's burst allowance (BurstSec of
		// capacity) plus the time the plan's headroom needs to drain it, or
		// the quick 2x point measures the start-up transient, not steady state.
		cfg.Mults = []float64{1.0, 2.0}
		cfg.DurSec = 8
		cfg.WarmupSec = 5
	}
	r, err := experiments.Ingress(cfg)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatIngress(r))
	return nil
}

func chaos(seed int64, sloSec float64, quick bool) error {
	r, err := experiments.Chaos(experiments.ChaosConfig{
		SLOSec: sloSec, Seed: seed, Quick: quick,
	})
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatChaos(r))
	return nil
}

func fleet(seed int64, sloSec float64, quick bool) error {
	r, err := experiments.Fleet(experiments.FleetConfig{
		SLOSec: sloSec, Seed: seed, Quick: quick,
	})
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatFleet(r))
	return nil
}

func multitenant(seed int64, servers int, sloSec float64, quick bool) error {
	steps := 48
	if quick {
		steps = 24
	}
	r, err := experiments.MultiTenant(experiments.MultiTenantConfig{
		Servers: servers, SLOSec: sloSec, Seed: seed,
		TraceSteps: steps, StepSec: 10,
	})
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatMultiTenant(r))
	return nil
}
