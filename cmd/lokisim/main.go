// Command lokisim runs one serving simulation with explicit parameters and
// prints the summary plus the time series.
//
// Example:
//
//	lokisim -pipeline traffic -trace azure -peak 1100 -servers 20 -slo 250ms -approach loki
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"loki"
)

func main() {
	pipeName := flag.String("pipeline", "traffic", "pipeline: traffic, chain, social")
	traceName := flag.String("trace", "azure", "workload: azure, twitter, ramp")
	peak := flag.Float64("peak", 1100, "trace peak (QPS)")
	steps := flag.Int("steps", 96, "trace steps")
	stepSec := flag.Float64("step", 10, "seconds per trace step")
	servers := flag.Int("servers", 20, "cluster size (superseded by -hardware)")
	hardware := flag.String("hardware", "", "hardware classes, e.g. a100:4@2.0,v100:8@1.0,cpu:16@0.25 (name:count@speed[@cost/h]; blank = homogeneous -servers pool)")
	slo := flag.Duration("slo", 250*time.Millisecond, "end-to-end latency SLO")
	seed := flag.Int64("seed", 1, "random seed")
	approach := flag.String("approach", "loki", "resource manager: loki, inferline, proteus")
	polName := flag.String("policy", "opportunistic", "drop policy: none, lasttask, pertask, opportunistic")
	engName := flag.String("engine", "sim", "serving backend: sim (virtual time), live (wall clock)")
	timeScale := flag.Float64("timescale", 0.5, "wall-time compression for -engine live")
	series := flag.Bool("series", true, "print the time series")
	flag.Parse()

	var pipe *loki.Pipeline
	switch *pipeName {
	case "traffic":
		pipe = loki.TrafficAnalysisPipeline()
	case "chain":
		pipe = loki.TrafficChainPipeline()
	case "social":
		pipe = loki.SocialMediaPipeline()
	default:
		log.Fatalf("unknown pipeline %q", *pipeName)
	}

	var tr *loki.Trace
	switch *traceName {
	case "azure":
		tr = loki.AzureTrace(*seed, *steps, *stepSec, *peak)
	case "twitter":
		tr = loki.TwitterTrace(*seed, *steps, *stepSec, *peak)
	case "ramp":
		tr = loki.RampTrace(*peak/10, *peak, *steps, *stepSec)
	default:
		log.Fatalf("unknown trace %q", *traceName)
	}

	opts := []loki.Option{
		loki.WithServers(*servers),
		loki.WithSLO(*slo),
		loki.WithSeed(*seed),
	}
	poolDesc := fmt.Sprintf("%d servers", *servers)
	if *hardware != "" {
		classes, err := loki.ParseHardware(*hardware)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, loki.WithHardware(classes...))
		total := 0
		for _, c := range classes {
			total += c.Count
		}
		poolDesc = fmt.Sprintf("%d servers (%s)", total, *hardware)
	}
	switch *approach {
	case "loki":
	case "inferline":
		opts = append(opts, loki.WithBaseline(loki.BaselineInferLine))
	case "proteus":
		opts = append(opts, loki.WithBaseline(loki.BaselineProteus))
	default:
		log.Fatalf("unknown approach %q", *approach)
	}
	switch *polName {
	case "none":
		opts = append(opts, loki.WithPolicy(loki.NoDropPolicy))
	case "lasttask":
		opts = append(opts, loki.WithPolicy(loki.LastTaskPolicy))
	case "pertask":
		opts = append(opts, loki.WithPolicy(loki.PerTaskPolicy))
	case "opportunistic":
		opts = append(opts, loki.WithPolicy(loki.OpportunisticPolicy))
	default:
		log.Fatalf("unknown policy %q", *polName)
	}
	switch *engName {
	case "sim":
	case "live":
		opts = append(opts, loki.WithEngine(loki.Wallclock), loki.WithTimeScale(*timeScale))
	default:
		log.Fatalf("unknown engine %q", *engName)
	}

	report, err := loki.Serve(pipe, tr, opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s | %s | peak %.0f qps | %s | SLO %v | %s/%s | engine %s\n",
		pipe.Name, *traceName, *peak, poolDesc, *slo, *approach, *polName, *engName)
	fmt.Println(report)
	fmt.Printf("mean latency %v, rerouted %d\n", report.MeanLatency, report.Rerouted)
	if len(report.MeanServersByClass) > 0 {
		fmt.Printf("mean occupancy by class:")
		for _, name := range sortedClassNames(report.MeanServersByClass) {
			fmt.Printf(" %s=%.1f", name, report.MeanServersByClass[name])
		}
		fmt.Println()
	}
	if *series {
		fmt.Printf("\n%8s %12s %10s %9s %10s\n", "time(s)", "demand", "accuracy", "servers", "slo-viol")
		for _, p := range report.Series {
			fmt.Printf("%8.0f %12.1f %10.4f %9.1f %10.4f\n",
				p.TimeSec, p.DemandQPS, p.Accuracy, p.Servers, p.ViolationRatio)
		}
	}
}

// sortedClassNames returns the map's keys in sorted order so the occupancy
// line is stable run to run.
func sortedClassNames(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
